package nprt_test

// End-to-end tests for the command-line tools: build each binary once into
// a temp dir, then drive it the way a user would. These tests need the `go`
// toolchain on PATH (always true under `go test`).

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "nprt-bins")
	if err != nil {
		panic(err)
	}
	binDir = dir
	build := exec.Command("go", "build", "-o", binDir, "./cmd/...")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		os.RemoveAll(dir)
		panic("building cmds: " + err.Error())
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func runTool(t *testing.T, name string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, name), args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestE2ESchedcheck(t *testing.T) {
	out, err := runTool(t, "schedcheck", "-case", "Rnd5")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"accurate mode: schedulable=false",
		"imprecise mode: schedulable=true", "individual slacks", "preemptive EDF reference"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	out, err = runTool(t, "schedcheck", "-list")
	if err != nil || !strings.Contains(out, "Rnd13") {
		t.Errorf("-list: %v\n%s", err, out)
	}
	if _, err = runTool(t, "schedcheck", "-case", "nope"); err == nil {
		t.Error("unknown case accepted")
	}
}

// exitCode runs a tool and reports the process exit code (0 on success).
func exitCode(t *testing.T, name string, args ...string) (int, string) {
	t.Helper()
	out, err := runTool(t, name, args...)
	if err == nil {
		return 0, out
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return ee.ExitCode(), out
}

// TestE2ESchedcheckExitCodes pins the scripting contract: 0 for an
// imprecise-schedulable set, 2 for invalid input, 3 for a valid but
// unschedulable set.
func TestE2ESchedcheckExitCodes(t *testing.T) {
	if code, out := exitCode(t, "schedcheck", "-case", "Rnd5"); code != 0 {
		t.Errorf("Rnd5 exit %d, want 0\n%s", code, out)
	}
	// Rnd2 is not schedulable even in imprecise mode (Table I): the report
	// still prints, but the exit code says unschedulable.
	code, out := exitCode(t, "schedcheck", "-case", "Rnd2")
	if code != 3 {
		t.Errorf("Rnd2 exit %d, want 3\n%s", code, out)
	}
	if !strings.Contains(out, "imprecise mode: schedulable=false") {
		t.Errorf("Rnd2 report missing verdict:\n%s", out)
	}
	if code, out := exitCode(t, "schedcheck", "-case", "nope"); code != 2 {
		t.Errorf("unknown case exit %d, want 2\n%s", code, out)
	}
	if code, out := exitCode(t, "schedcheck", "-file", "/no/such/file.json"); code != 2 {
		t.Errorf("missing file exit %d, want 2\n%s", code, out)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"not":"a task array"`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out := exitCode(t, "schedcheck", "-file", bad); code != 2 {
		t.Errorf("malformed JSON exit %d, want 2\n%s", code, out)
	}
	if code, out := exitCode(t, "schedcheck"); code != 2 {
		t.Errorf("no-args exit %d, want 2\n%s", code, out)
	}
}

func TestE2EImpsched(t *testing.T) {
	out, err := runTool(t, "impsched", "-case", "Rnd1", "-method", "EDF+ESR", "-hp", "20")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"method:", "deadline misses:", "mean error:", "mode counts:"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Gantt path.
	out, err = runTool(t, "impsched", "-case", "Rnd1", "-method", "Flipped EDF", "-hp", "5", "-gantt")
	if err != nil || !strings.Contains(out, "|") {
		t.Errorf("gantt: %v\n%s", err, out)
	}
	// Method listing and error path.
	out, err = runTool(t, "impsched", "-methods")
	if err != nil || !strings.Contains(out, "DP(C)") {
		t.Errorf("-methods: %v\n%s", err, out)
	}
	if _, err = runTool(t, "impsched", "-case", "Rnd1", "-method", "bogus"); err == nil {
		t.Error("bogus method accepted")
	}
}

func TestE2EImpschedTraceCSV(t *testing.T) {
	csvPath := filepath.Join(t.TempDir(), "trace.csv")
	out, err := runTool(t, "impsched", "-case", "Rnd1", "-method", "EDF-Imprecise",
		"-hp", "3", "-tracecsv", csvPath)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "task,index,mode") {
		t.Errorf("trace CSV header wrong: %.80s", data)
	}
	if lines := strings.Count(string(data), "\n"); lines != 1+3*13 {
		t.Errorf("trace CSV has %d lines, want %d", lines, 1+3*13)
	}
}

func TestE2EPaperbench(t *testing.T) {
	out, err := runTool(t, "paperbench", "table1")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "TABLE I") || !strings.Contains(out, "IDCT") {
		t.Errorf("table1 output:\n%s", out)
	}
	csvDir := t.TempDir()
	out, err = runTool(t, "paperbench", "table4", "-csv", csvDir)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if _, err := os.Stat(filepath.Join(csvDir, "table4.json")); err != nil {
		t.Errorf("CSV artifact missing: %v", err)
	}
	if _, err = runTool(t, "paperbench", "bogus"); err == nil {
		t.Error("unknown artifact accepted")
	}
}

// TestE2EPaperbenchILPProfile drives the offline ILP bench end to end with
// a parallel branch-and-bound and both profilers attached: the -cpuprofile /
// -memprofile plumbing must wrap the ILP solves (not only the simulation
// artifacts), so both profile files must come back non-empty alongside the
// JSON artifact.
func TestE2EPaperbenchILPProfile(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	out, err := runTool(t, "paperbench", "ilp",
		"-ilpworkers", "2", "-cpuprofile", cpu, "-memprofile", mem, "-csv", dir)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"OFFLINE MODE-ILP SOLVER BENCH", "Rnd13", "feasible"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	for _, f := range []string{cpu, mem} {
		fi, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", f)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "ilp.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"best_bound\"") {
		t.Errorf("ilp.json lacks solver fields: %.120s", data)
	}
}

func TestE2ETaskgenRoundTrip(t *testing.T) {
	out, err := runTool(t, "taskgen", "-tasks", "3", "-jobs", "12", "-util", "1.4", "-seed", "5")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	file := filepath.Join(t.TempDir(), "tasks.json")
	if err := os.WriteFile(file, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	check, err := runTool(t, "schedcheck", "-file", file)
	if err != nil {
		t.Fatalf("schedcheck on generated set: %v\n%s", err, check)
	}
	if !strings.Contains(check, "taskset{n=3") {
		t.Errorf("generated set not loaded:\n%s", check)
	}
	// Dumping a built-in case also works.
	out, err = runTool(t, "taskgen", "-case", "Rnd1")
	if err != nil || !strings.Contains(out, "Rnd1-t0") {
		t.Errorf("-case dump: %v\n%.120s", err, out)
	}
}

// TestE2EExamples builds and runs every example end-to-end so the
// documentation programs can never rot.
func TestE2EExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow-ish; skipped with -short")
	}
	examples, err := filepath.Glob("examples/*")
	if err != nil || len(examples) == 0 {
		t.Fatalf("globbing examples: %v (%d found)", err, len(examples))
	}
	for _, dir := range examples {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			bin := filepath.Join(t.TempDir(), filepath.Base(dir))
			build := exec.Command("go", "build", "-o", bin, "./"+dir)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			out, err := exec.Command(bin).CombinedOutput()
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			if len(out) == 0 {
				t.Error("example produced no output")
			}
			lower := strings.ToLower(string(out))
			if strings.Contains(lower, "panic") || strings.Contains(lower, "violation:") {
				t.Errorf("example output looks broken:\n%s", out)
			}
		})
	}
}

func TestE2EPlanSaveLoad(t *testing.T) {
	plan := filepath.Join(t.TempDir(), "plan.json")
	out, err := runTool(t, "impsched", "-case", "Rnd1", "-method", "ILP+Post+OA",
		"-hp", "5", "-saveplan", plan)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "plan written") {
		t.Errorf("no save confirmation:\n%s", out)
	}
	out, err = runTool(t, "impsched", "-case", "Rnd1", "-hp", "5", "-loadplan", plan)
	if err != nil {
		t.Fatalf("load: %v\n%s", err, out)
	}
	if !strings.Contains(out, "loaded-plan+OA") {
		t.Errorf("loaded plan not used:\n%s", out)
	}
	// Loading against the wrong case must fail.
	if _, err := runTool(t, "impsched", "-case", "Rnd3", "-hp", "2", "-loadplan", plan); err == nil {
		t.Error("plan accepted against the wrong set")
	}
	// -saveplan on an online method must fail.
	if _, err := runTool(t, "impsched", "-case", "Rnd1", "-method", "EDF+ESR",
		"-saveplan", filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Error("-saveplan accepted for an online method")
	}
}

// TestE2EImpserve drives the long-running runtime daemon: generate a churn
// tape, serve it to the horizon, then prove the checkpoint contract — a
// run cut at an early horizon and resumed from its snapshot must end with
// the same digest as the uninterrupted run.
func TestE2EImpserve(t *testing.T) {
	dir := t.TempDir()
	tape := filepath.Join(dir, "tape.json")
	out, err := runTool(t, "impserve", "-gen", "200", "-seed", "3", "-tape", tape)
	if err != nil {
		t.Fatalf("gen: %v\n%s", err, out)
	}

	full, err := runTool(t, "impserve", "-tape", tape, "-quiet")
	if err != nil {
		t.Fatalf("full run: %v\n%s", err, full)
	}
	wantDigest := digestLine(t, full)

	cut := filepath.Join(dir, "cut.json")
	out, err = runTool(t, "impserve", "-tape", tape, "-epochs", "60", "-checkpoint", cut, "-quiet")
	if err != nil {
		t.Fatalf("cut run: %v\n%s", err, out)
	}
	resumed, err := runTool(t, "impserve", "-tape", tape, "-restore", cut, "-quiet")
	if err != nil {
		t.Fatalf("resumed run: %v\n%s", err, resumed)
	}
	if got := digestLine(t, resumed); got != wantDigest {
		t.Errorf("resumed digest %s, uninterrupted %s", got, wantDigest)
	}
	if !strings.Contains(resumed, "restored:") {
		t.Errorf("no restore confirmation:\n%s", resumed)
	}

	// Input-validation exit code: a missing tape is 2.
	if code, _ := exitCode(t, "impserve", "-tape", filepath.Join(dir, "nope.json")); code != 2 {
		t.Errorf("missing tape exit %d, want 2", code)
	}
	if code, _ := exitCode(t, "impserve"); code != 2 {
		t.Errorf("no-args exit %d, want 2", code)
	}
}

// digestLine extracts the "digest: <hex>" summary line.
func digestLine(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "digest:") {
			return strings.TrimSpace(strings.TrimPrefix(line, "digest:"))
		}
	}
	t.Fatalf("no digest line in:\n%s", out)
	return ""
}

// TestE2EImpserveSignal: SIGINT against a running daemon must finish the
// epoch in flight, write the checkpoint, and exit with code 4 — and the
// checkpoint must be restorable.
func TestE2EImpserveSignal(t *testing.T) {
	dir := t.TempDir()
	tape := filepath.Join(dir, "tape.json")
	if out, err := runTool(t, "impserve", "-gen", "200", "-seed", "3", "-tape", tape); err != nil {
		t.Fatalf("gen: %v\n%s", err, out)
	}
	ckpt := filepath.Join(dir, "sig.json")

	// An unreachable horizon keeps the daemon running until the signal.
	cmd := exec.Command(filepath.Join(binDir, "impserve"),
		"-tape", tape, "-epochs", "1000000000", "-hp", "50", "-checkpoint", ckpt, "-quiet")
	var buf strings.Builder
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 4 {
		t.Fatalf("exit %v, want code 4\n%s", err, buf.String())
	}

	// How far did it get before the signal? Resume a few epochs past that.
	var at int64
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "epochs:") {
			if _, err := fmt.Sscanf(line, "epochs: %d", &at); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
		}
	}
	if at == 0 {
		t.Fatalf("no epochs line in:\n%s", buf.String())
	}
	out, err := runTool(t, "impserve", "-tape", tape, "-restore", ckpt, "-quiet", "-hp", "50",
		"-epochs", strconv.FormatInt(at+5, 10))
	if err != nil {
		t.Fatalf("restore after signal: %v\n%s", err, out)
	}
	if !strings.Contains(out, "restored:") {
		t.Errorf("checkpoint from signal not restored:\n%s", out)
	}
}

// TestE2EPaperbenchChurn exercises the churn soak artifact end to end.
func TestE2EPaperbenchChurn(t *testing.T) {
	dir := t.TempDir()
	out, err := runTool(t, "paperbench", "churn", "-events", "300", "-csv", dir)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "CHURN SOAK") {
		t.Errorf("churn output:\n%s", out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "churn.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"engines_match\": true") &&
		!strings.Contains(string(data), "\"engines_match\":true") {
		t.Errorf("churn.json lacks engine agreement: %.200s", data)
	}
	if _, err := os.Stat(filepath.Join(dir, "churn.csv")); err != nil {
		t.Errorf("churn.csv missing: %v", err)
	}
}

// TestE2EImpserveDurable proves the -dir mode contract: journaling is
// invisible to the run identity (durable digest == in-memory digest), and
// a process killed at an fsync boundary recovers bit-identically.
func TestE2EImpserveDurable(t *testing.T) {
	dir := t.TempDir()
	tape := filepath.Join(dir, "tape.json")
	if out, err := runTool(t, "impserve", "-gen", "24", "-seed", "7", "-tape", tape); err != nil {
		t.Fatalf("gen: %v\n%s", err, out)
	}

	mem, err := runTool(t, "impserve", "-tape", tape, "-quiet")
	if err != nil {
		t.Fatalf("in-memory run: %v\n%s", err, mem)
	}
	wantDigest := digestLine(t, mem)

	dur, err := runTool(t, "impserve", "-tape", tape, "-quiet", "-dir", filepath.Join(dir, "clean"))
	if err != nil {
		t.Fatalf("durable run: %v\n%s", err, dur)
	}
	if got := digestLine(t, dur); got != wantDigest {
		t.Errorf("durable digest %s, in-memory %s", got, wantDigest)
	}
	var fsyncs int
	if _, err := fmt.Sscanf(fieldLine(t, dur, "fsyncs:"), "%d", &fsyncs); err != nil || fsyncs == 0 {
		t.Fatalf("no fsyncs count in:\n%s", dur)
	}

	// Kill mid-run at an fsync boundary; the recovery run must resume from
	// durable state and finish with the uncrashed digest.
	crashDir := filepath.Join(dir, "crash")
	code, out := exitCode(t, "impserve", "-tape", tape, "-quiet", "-dir", crashDir,
		"-crash-after-fsync", strconv.Itoa(fsyncs/2))
	if code != 7 {
		t.Fatalf("crash run exit %d, want 7\n%s", code, out)
	}
	rec, err := runTool(t, "impserve", "-tape", tape, "-quiet", "-dir", crashDir)
	if err != nil {
		t.Fatalf("recovery run: %v\n%s", err, rec)
	}
	if !strings.Contains(rec, "restored:") {
		t.Errorf("no restore confirmation:\n%s", rec)
	}
	if got := digestLine(t, rec); got != wantDigest {
		t.Errorf("recovered digest %s, uncrashed %s", got, wantDigest)
	}
}

// fieldLine extracts the value of a "label:  value" summary line.
func fieldLine(t *testing.T, out, label string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, label) {
			return strings.TrimSpace(strings.TrimPrefix(line, label))
		}
	}
	t.Fatalf("no %q line in:\n%s", label, out)
	return ""
}

// TestE2EImpserveSweep runs the self-exec crash-point sweep on a small
// tape and checks the JSON artifact: every kill point recovered.
func TestE2EImpserveSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep re-executes the binary dozens of times; skipped with -short")
	}
	dir := t.TempDir()
	artifact := filepath.Join(dir, "sweep.json")
	out, err := runTool(t, "impserve", "-sweep", "-gen", "8", "-seed", "5",
		"-sweep-engine", "indexed", "-sweep-out", artifact)
	if err != nil {
		t.Fatalf("sweep: %v\n%s", err, out)
	}
	if !strings.Contains(out, "crash points recovered") {
		t.Errorf("sweep summary missing:\n%s", out)
	}
	data, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Engines []struct {
			Engine string `json:"engine"`
			Fsyncs int    `json:"fsyncs"`
			AllOK  bool   `json:"all_ok"`
		} `json:"engines"`
		AllOK bool `json:"all_ok"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("artifact: %v\n%.200s", err, data)
	}
	if !report.AllOK || len(report.Engines) != 1 || !report.Engines[0].AllOK {
		t.Errorf("sweep artifact not all-ok: %+v", report)
	}
	if report.Engines[0].Fsyncs < 10 {
		t.Errorf("suspiciously few crash points: %d", report.Engines[0].Fsyncs)
	}
}

// TestE2EImpserveStrict pins -strict tape validation: churn tapes carry
// deliberate stale events and must be rejected with line numbers, while a
// clean tape passes.
func TestE2EImpserveStrict(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{
  "events": [
    {"epoch": 0, "op": "remove", "name": "ghost"}
  ]
}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out := exitCode(t, "impserve", "-tape", bad, "-strict", "-epochs", "2", "-quiet")
	if code != 2 {
		t.Fatalf("strict ghost-remove exit %d, want 2\n%s", code, out)
	}
	if !strings.Contains(out, "line 3") || !strings.Contains(out, "unknown task") {
		t.Errorf("strict rejection lacks line/cause:\n%s", out)
	}
	// The same tape is tolerated (stale request) without -strict.
	if code, out := exitCode(t, "impserve", "-tape", bad, "-epochs", "2", "-quiet"); code != 0 {
		t.Errorf("lenient ghost-remove exit %d, want 0\n%s", code, out)
	}
	// A generated churn tape deliberately contains stale events: strict
	// mode must refuse it too.
	tape := filepath.Join(dir, "churn.json")
	if out, err := runTool(t, "impserve", "-gen", "64", "-seed", "3", "-tape", tape); err != nil {
		t.Fatalf("gen: %v\n%s", err, out)
	}
	if code, out := exitCode(t, "impserve", "-tape", tape, "-strict", "-epochs", "2", "-quiet"); code != 2 {
		t.Errorf("strict churn tape exit %d, want 2\n%s", code, out)
	}
}

// TestE2EImpserveServe drives the supervised HTTP service: readiness
// flips after recovery, admissions land over HTTP, SIGTERM drains
// gracefully (exit 0), and a restart restores the admitted state.
func TestE2EImpserveServe(t *testing.T) {
	dir := t.TempDir()
	stateDir := filepath.Join(dir, "state")

	start := func() (*exec.Cmd, string, *lockedBuf) {
		cmd := exec.Command(filepath.Join(binDir, "impserve"),
			"-dir", stateDir, "-listen", "127.0.0.1:0", "-epoch-interval", "10ms")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		buf := &lockedBuf{}
		cmd.Stderr = buf
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// First line announces the bound address; everything after goes to
		// the shared buffer (locked: the drain goroutine keeps writing
		// while the test reads) for later assertions.
		sc := bufio.NewScanner(stdout)
		var addr string
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(buf, line)
			if strings.HasPrefix(line, "listening:") {
				addr = strings.TrimSpace(strings.TrimPrefix(line, "listening:"))
				break
			}
		}
		if addr == "" {
			cmd.Process.Kill()
			t.Fatalf("no listening line; output so far:\n%s", buf.String())
		}
		go func() {
			for sc.Scan() {
				fmt.Fprintln(buf, sc.Text())
			}
		}()
		return cmd, "http://" + addr, buf
	}

	waitReady := func(base string) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get(base + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("service never became ready: %v", err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	cmd, base, _ := start()
	waitReady(base)

	// Admit one task over HTTP.
	body := `{"op":"add","task":{"task":{"Name":"web1","Period":40,"WCETAccurate":8,"WCETImprecise":3,
		"ExecAccurate":{"Mean":4,"Sigma":1,"Min":1,"Max":8},
		"ExecImprecise":{"Mean":1.5,"Sigma":0.4,"Min":1,"Max":3},
		"Error":{"Mean":2,"Sigma":0.5}}}}`
	resp, err := http.Post(base+"/admit", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	admitOut, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admit: %d: %s", resp.StatusCode, admitOut)
	}
	// Malformed admissions are rejected at the door.
	resp, err = http.Post(base+"/admit", "application/json", strings.NewReader(`{"op":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad admit: %d, want 400", resp.StatusCode)
	}

	// /state reflects the admission.
	resp, err = http.Get(base + "/state")
	if err != nil {
		t.Fatal(err)
	}
	stateOut, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st struct {
		Ready    bool   `json:"ready"`
		Tasks    int    `json:"tasks"`
		Admitted uint64 `json:"admitted"`
		Digest   string `json:"digest"`
	}
	if err := json.Unmarshal(stateOut, &st); err != nil {
		t.Fatalf("state: %v\n%s", err, stateOut)
	}
	if !st.Ready || st.Tasks != 1 || st.Admitted != 1 || st.Digest == "" {
		t.Errorf("state after admit: %s", stateOut)
	}

	// Graceful drain on SIGTERM: exit 0 and a drained marker.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("serve exit: %v", err)
	}

	// Restart on the same directory: state restores, service is ready
	// again, and the admitted task survived the restart.
	cmd, base, buf := start()
	waitReady(base)
	resp, err = http.Get(base + "/state")
	if err != nil {
		t.Fatal(err)
	}
	stateOut, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(stateOut, &st); err != nil {
		t.Fatalf("state: %v\n%s", err, stateOut)
	}
	if st.Tasks != 1 {
		t.Errorf("restarted state lost the task: %s", stateOut)
	}
	if !strings.Contains(buf.String(), "restored:") {
		t.Errorf("restart printed no restore line:\n%s", buf.String())
	}
	cmd.Process.Signal(syscall.SIGTERM)
	cmd.Wait()
}

// TestE2EImpserveBatchIngest covers the group-commit ingest path end to
// end against the real binary: /admit/batch decisions in order, commit
// stats on /state, a loadgen run with zero errors, and a SIGTERM drain
// racing concurrent admissions — every acknowledged admission must
// survive into the restarted incarnation.
func TestE2EImpserveBatchIngest(t *testing.T) {
	dir := t.TempDir()
	stateDir := filepath.Join(dir, "state")

	start := func() (*exec.Cmd, string) {
		cmd := exec.Command(filepath.Join(binDir, "impserve"),
			"-dir", stateDir, "-listen", "127.0.0.1:0",
			"-epoch-interval", "10ms", "-queue", "64", "-commit-delay", "200us")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = io.Discard
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(stdout)
		var addr string
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "listening:"); ok {
				addr = strings.TrimSpace(rest)
				break
			}
		}
		if addr == "" {
			cmd.Process.Kill()
			t.Fatal("no listening line")
		}
		go func() {
			for sc.Scan() {
			}
		}()
		base := "http://" + addr
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get(base + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("service never became ready: %v", err)
			}
			time.Sleep(20 * time.Millisecond)
		}
		return cmd, base
	}

	addBody := func(name string) string {
		return `{"op":"add","task":{"task":{"Name":"` + name + `","Period":40,"WCETAccurate":8,"WCETImprecise":3,
			"ExecAccurate":{"Mean":4,"Sigma":1,"Min":1,"Max":8},
			"ExecImprecise":{"Mean":1.5,"Sigma":0.4,"Min":1,"Max":3},
			"Error":{"Mean":2,"Sigma":0.5}}}}`
	}
	readState := func(base string) (applied uint64, raw string) {
		resp, err := http.Get(base + "/state")
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st struct {
			EventsApplied uint64 `json:"events_applied"`
		}
		if err := json.Unmarshal(out, &st); err != nil {
			t.Fatalf("state: %v\n%s", err, out)
		}
		return st.EventsApplied, string(out)
	}

	cmd, base := start()

	// Batch admission: duplicate b1 inside the batch → per-event error in
	// position, the others admitted.
	batch := "[" + addBody("b1") + "," + addBody("b2") + "," + addBody("b1") + "]"
	resp, err := http.Post(base+"/admit/batch", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	batchOut, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch admit: %d: %s", resp.StatusCode, batchOut)
	}
	var decs struct {
		Decisions []struct {
			Error string `json:"error"`
		} `json:"decisions"`
	}
	if err := json.Unmarshal(batchOut, &decs); err != nil {
		t.Fatalf("batch response: %v\n%s", err, batchOut)
	}
	if len(decs.Decisions) != 3 || decs.Decisions[0].Error != "" ||
		decs.Decisions[1].Error != "" || decs.Decisions[2].Error == "" {
		t.Fatalf("batch decisions out of order or miscounted: %s", batchOut)
	}
	applied, raw := readState(base)
	if applied != 3 {
		t.Errorf("events_applied %d after one 3-event batch, want 3: %s", applied, raw)
	}
	if !strings.Contains(raw, `"records_per_sync"`) {
		t.Errorf("state has no commit stats: %s", raw)
	}

	// A short closed-loop loadgen run: zero errors at trivial load.
	reportPath := filepath.Join(dir, "loadgen.json")
	lg := exec.Command(filepath.Join(binDir, "loadgen"),
		"-url", base, "-mode", "closed", "-conns", "4", "-batch", "2",
		"-duration", "500ms", "-fail-on-error", "-out", reportPath)
	if out, err := lg.CombinedOutput(); err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out)
	}
	repOut, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Requests uint64 `json:"requests"`
		Errors   uint64 `json:"errors"`
	}
	if err := json.Unmarshal(repOut, &rep); err != nil {
		t.Fatalf("loadgen report: %v\n%s", err, repOut)
	}
	if rep.Requests == 0 || rep.Errors != 0 {
		t.Fatalf("loadgen report: %s", repOut)
	}

	// SIGTERM racing concurrent admissions: every 200/409 answer is a
	// durability promise; 503s (shed mid-drain) and connection errors
	// (process gone) promise nothing.
	before, _ := readState(base)
	var accepted, attempts atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				attempts.Add(1)
				resp, err := http.Post(base+"/admit", "application/json",
					strings.NewReader(addBody(fmt.Sprintf("race%d-%d", g, i))))
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusConflict {
					accepted.Add(1)
				}
			}
		}(g)
	}
	time.Sleep(20 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := cmd.Wait(); err != nil {
		t.Fatalf("drain exit: %v", err)
	}

	cmd, base = start()
	after, raw := readState(base)
	if after < before+accepted.Load() {
		t.Errorf("restart lost acknowledged admissions: %d applied, want ≥ %d+%d: %s",
			after, before, accepted.Load(), raw)
	}
	if after > before+attempts.Load() {
		t.Errorf("restart invented admissions: %d applied, only %d attempted after %d: %s",
			after, attempts.Load(), before, raw)
	}
	cmd.Process.Signal(syscall.SIGTERM)
	cmd.Wait()
}

// lockedBuf is a mutex-guarded output sink: the child-process drain
// goroutine writes while the test goroutine reads.
type lockedBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestE2EImpserveFsck pins the offline scrub contract: a clean replicated
// store scrubs to exit 0, and a silently flipped byte in the middle of a
// replica WAL — damage that recovery's torn-tail repair would truncate
// away without noticing — turns into exit 6 with a per-file report.
func TestE2EImpserveFsck(t *testing.T) {
	dir := t.TempDir()
	tape := filepath.Join(dir, "tape.json")
	if out, err := runTool(t, "impserve", "-gen", "40", "-seed", "5", "-tape", tape); err != nil {
		t.Fatalf("gen: %v\n%s", err, out)
	}
	state := filepath.Join(dir, "state")
	if out, err := runTool(t, "impserve", "-tape", tape, "-dir", state,
		"-shards", "2", "-replicas", "1", "-quiet"); err != nil {
		t.Fatalf("play: %v\n%s", err, out)
	}

	code, out := exitCode(t, "impserve", "-fsck", "-dir", state)
	if code != 0 {
		t.Fatalf("clean store scrub exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "0 corrupt") || !strings.Contains(out, "shard-001.r1") {
		t.Errorf("clean scrub summary missing journals:\n%s", out)
	}

	// Flip one byte early in a follower's WAL: a sealed region far from
	// the tail, where only a CRC walk would ever notice.
	segs, err := filepath.Glob(filepath.Join(state, "shard-001.r1", "wal", "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no replica segments (%v): %v", segs, err)
	}
	f, err := os.OpenFile(segs[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0x41}, 200); err != nil {
		t.Fatal(err)
	}
	f.Close()

	code, out = exitCode(t, "impserve", "-fsck", "-dir", state)
	if code != 6 {
		t.Fatalf("corrupt store scrub exit %d, want 6:\n%s", code, out)
	}
	if !strings.Contains(out, "CORRUPT") || !strings.Contains(out, "shard-001.r1") {
		t.Errorf("corrupt report missing the damaged file:\n%s", out)
	}
}
