package ilp

import (
	"math"

	"nprt/internal/lp"
)

// heurTol is the feasibility tolerance for the rounding check.
const heurTol = 1e-6

// heuristic runs the root-node primal heuristic: first plain rounding of
// the root relaxation (free), then — only if rounding is infeasible — a
// bounded dive that repeatedly fixes the most fractional integral variable
// to its nearest integer and re-solves. Any integral point found becomes
// the starting incumbent, which lets the best-first search prune
// aggressively from the first node. The heuristic is a pure function of the
// root relaxation and runs identically under every Workers setting and
// bound encoding, preserving the solver's determinism guarantee.
func (st *bbState) heuristic(root *node) error {
	xr := roundIntegral(st.p, root.sol.X)
	if st.roundingFeasible(xr) {
		obj := 0.0
		for j, c := range st.p.LP.C {
			obj += c * xr[j]
		}
		st.tryIncumbent(xr, obj)
		return nil
	}
	return st.dive(root)
}

// roundingFeasible reports whether x satisfies every constraint row and the
// base variable bounds within heurTol.
func (st *bbState) roundingFeasible(x []float64) bool {
	for j := range x {
		if x[j] < st.baseLo[j]-heurTol || x[j] > st.baseUp[j]+heurTol {
			return false
		}
	}
	for _, r := range st.p.LP.Rows {
		dot := 0.0
		for j, c := range r.Coef {
			dot += c * x[j]
		}
		switch r.Sense {
		case lp.LE:
			if dot > r.RHS+heurTol {
				return false
			}
		case lp.GE:
			if dot < r.RHS-heurTol {
				return false
			}
		case lp.EQ:
			if math.Abs(dot-r.RHS) > heurTol {
				return false
			}
		}
	}
	return true
}

// dive fixes one fractional variable per iteration (to its nearest integer,
// via a ≥/≤ pair chained onto temporary nodes so both bound encodings share
// the code path) and re-solves. When the nearest integer cuts off every
// solution the dive retries the other side of the fraction before giving
// up — on the offline mode ILP that one-step backtrack is what turns an
// infeasible round-down (accurate mode misses a deadline) into the always-
// feasible round-up (imprecise mode), so the dive reliably produces a
// starting incumbent. Dive nodes never enter the open heap.
func (st *bbState) dive(root *node) error {
	numInt := 0
	for _, isInt := range st.p.Integer {
		if isInt {
			numInt++
		}
	}
	cur, curSol := root, root.sol
	for iter := 0; iter <= numInt+8; iter++ {
		j, _ := mostFractional(st.p, curSol.X)
		if j == -1 {
			st.tryIncumbent(roundIntegral(st.p, curSol.X), curSol.Objective)
			return nil
		}
		x := curSol.X[j]
		near := math.Round(x)
		far := math.Floor(x)
		if far == near {
			far = math.Ceil(x)
		}
		var s *lp.Solution
		for _, v := range [2]float64{near, far} {
			geNode := &node{parent: cur, j: j, v: v, upper: false}
			leNode := &node{parent: geNode, j: j, v: v, upper: true}
			fixed, err := st.solveNode(0, leNode)
			if err != nil {
				return err
			}
			if fixed.Status == lp.Optimal {
				s, cur = fixed, leNode
				break
			}
		}
		if s == nil {
			return nil // both directions cut off all solutions; abandon
		}
		curSol = s
	}
	return nil
}
