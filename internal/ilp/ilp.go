// Package ilp is a branch-and-bound integer linear programming solver built
// on the internal/lp bounded-variable simplex. It is the engine behind the
// paper's offline ILP scheduling (§IV-A): best-first search on the LP
// relaxation bound, most-fractional branching, a root rounding/diving
// primal heuristic, and node/time budgets with incumbent return so a large
// hyper-period can still produce a usable (if not proven-optimal) schedule
// — mirroring the paper's "seconds to minutes" solver runs.
//
// Branching tightens a native variable bound (lb/ub) instead of appending a
// dense constraint row, so the simplex tableau does not grow with tree
// depth; the historical dense-row encoding is retained behind
// Options.DenseRowBounds and proven result-equivalent by the package's
// differential tests. The search can fan LP relaxation solves over a
// bounded worker pool (Options.Workers); sequence-numbered tie-breaking
// keeps the explored node order — and therefore the incumbent, objective,
// node count, BestBound and Status — bit-identical to a serial run.
package ilp

import (
	"math"
	"sort"
	"sync"
	"time"

	"nprt/internal/lp"
	"nprt/internal/pq"
)

// Problem is an LP with integrality requirements on a subset of variables.
type Problem struct {
	LP      *lp.Problem
	Integer []bool // len == LP.NumVars; true = must be integral
}

// NewProblem returns an ILP over n variables, none integral yet.
func NewProblem(n int) *Problem {
	return &Problem{LP: lp.NewProblem(n), Integer: make([]bool, n)}
}

// SetInteger marks variable j integral.
func (p *Problem) SetInteger(j int) { p.Integer[j] = true }

// SetBinary marks variable j integral with native bounds [0, 1].
func (p *Problem) SetBinary(j int) {
	p.Integer[j] = true
	p.LP.SetBounds(j, 0, 1)
}

// Status is a solve outcome.
type Status int8

// Solve outcomes.
const (
	// Optimal: proven optimal integral solution.
	Optimal Status = iota
	// Feasible: an integral incumbent was found but the search hit a budget
	// before proving optimality.
	Feasible
	// Infeasible: no integral solution exists.
	Infeasible
	// Unbounded: the relaxation is unbounded below.
	Unbounded
	// Limit: a budget was hit before any incumbent was found.
	Limit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "limit"
	}
	return "?"
}

// Options bounds and shapes the search.
type Options struct {
	MaxNodes  int           // 0 = default 100000
	TimeLimit time.Duration // 0 = none; checked every 64 nodes
	// Workers > 1 solves LP relaxations of frontier nodes concurrently.
	// The explored node sequence is decided by (bound, sequence number)
	// alone, so every output field is bit-identical to Workers == 1 —
	// the same Parallel==Serial discipline the experiment drivers use.
	// (A TimeLimit is the one wall-clock-dependent budget; runs that rely
	// on bit-identical output should bound MaxNodes instead.)
	Workers int
	// DenseRowBounds encodes each branching bound as a dense constraint
	// row appended to the node's LP, the pre-bounded-simplex formulation.
	// Kept for differential testing; slower, identical results.
	DenseRowBounds bool
	// DisableHeuristic skips the root rounding/diving primal heuristic.
	DisableHeuristic bool
	// OnIncumbent, when non-nil, observes each improving integral solution.
	OnIncumbent func(x []float64, obj float64)
}

// Solution is the branch-and-bound result.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	Nodes     int     // explored branch-and-bound nodes
	BestBound float64 // global lower bound at termination
}

const intTol = 1e-6

// node is one branch-and-bound tree node. Its bound restrictions are the
// chain of (j, v, upper) records up the parent links; they are materialized
// into a bounds (or row) scratch buffer only when the node's relaxation is
// solved, so a node costs O(1) memory regardless of depth.
type node struct {
	parent *node
	j      int     // branched variable; -1 on the root
	v      float64 // bound value
	upper  bool    // true: x_j ≤ v, false: x_j ≥ v
	bound  float64 // parent relaxation objective (lower bound)
	seq    int64   // global insertion number; total-orders equal bounds
	sol    *lp.Solution
	err    error // deferred speculative-solve error
}

// nodeLess is the best-first order: smallest parent bound, then insertion
// sequence. It is a total order (seq is unique), which is what makes the
// explored sequence independent of heap layout and worker count.
func nodeLess(a, b *node) bool {
	if a.bound != b.bound {
		return a.bound < b.bound
	}
	return a.seq < b.seq
}

// bbState carries one Solve invocation's search state and scratch pools.
type bbState struct {
	p       *Problem
	opt     Options
	workers int

	open *pq.Heap[*node]
	seq  int64
	sol  *Solution

	solvers        []*lp.Solver
	baseLo, baseUp []float64
	lo, up         [][]float64 // per-worker materialized bounds
	chains         [][]*node   // per-worker chain-collection scratch
	dense          []denseScratch
}

// denseScratch pools the row and coefficient buffers of the legacy
// dense-row encoding (one per worker).
type denseScratch struct {
	rows  []lp.Constraint
	coefs [][]float64
	set   []int // index last set to 1 in coefs[i]; -1 when fresh
}

// coef returns the i-th pooled coefficient vector: all zeros except a 1 at
// column j. Only the previously set entry is cleared, so reuse is O(1).
func (d *denseScratch) coef(n, i, j int) []float64 {
	for len(d.coefs) <= i {
		d.coefs = append(d.coefs, make([]float64, n))
		d.set = append(d.set, -1)
	}
	c := d.coefs[i]
	if d.set[i] >= 0 {
		c[d.set[i]] = 0
	}
	c[j] = 1
	d.set[i] = j
	return c
}

// Solve runs best-first branch and bound.
func Solve(p *Problem, opt Options) (*Solution, error) {
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 100000
	}
	deadline := time.Time{}
	if opt.TimeLimit > 0 {
		deadline = time.Now().Add(opt.TimeLimit)
	}
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}

	n := p.LP.NumVars
	st := &bbState{
		p: p, opt: opt, workers: workers,
		open:   pq.New(nodeLess),
		sol:    &Solution{Status: Limit, Objective: math.Inf(1), BestBound: math.Inf(-1)},
		baseLo: make([]float64, n),
		baseUp: make([]float64, n),
	}
	for j := 0; j < n; j++ {
		st.baseLo[j], st.baseUp[j] = 0, math.Inf(1)
		if p.LP.Lo != nil {
			st.baseLo[j] = p.LP.Lo[j]
		}
		if p.LP.Up != nil {
			st.baseUp[j] = p.LP.Up[j]
		}
	}
	st.solvers = make([]*lp.Solver, workers)
	st.lo = make([][]float64, workers)
	st.up = make([][]float64, workers)
	st.chains = make([][]*node, workers)
	st.dense = make([]denseScratch, workers)
	for w := 0; w < workers; w++ {
		st.solvers[w] = new(lp.Solver)
		st.lo[w] = make([]float64, n)
		st.up[w] = make([]float64, n)
	}
	sol := st.sol

	// Solve the root relaxation up front: the heuristic needs it, and the
	// cached result is reused when the root is processed below.
	root := &node{j: -1, bound: math.Inf(-1), seq: 0}
	st.seq = 1
	rootSol, err := st.solveNode(0, root)
	if err != nil {
		return nil, err
	}
	root.sol = rootSol
	if !opt.DisableHeuristic && rootSol.Status == lp.Optimal {
		if err := st.heuristic(root); err != nil {
			return nil, err
		}
	}
	st.open.Push(root)

	budgetHit := false
	batch := make([]*node, 0, workers)
	var wg sync.WaitGroup
	for st.open.Len() > 0 && !budgetHit {
		// Fill a batch of the best frontier nodes, in heap order.
		batch = batch[:0]
		for len(batch) < workers && st.open.Len() > 0 {
			nd, _ := st.open.Pop()
			batch = append(batch, nd)
		}

		// Speculatively solve the batch's relaxations concurrently. A
		// relaxation is a pure function of the node's bound chain, so
		// speculation can waste work (a node the serial order would have
		// pruned) but can never change any result. Errors are recorded on
		// the node and surfaced only if the node is actually processed.
		if workers > 1 && len(batch) > 1 {
			for i, nd := range batch {
				if nd.sol != nil || nd.err != nil {
					continue
				}
				wg.Add(1)
				go func(w int, nd *node) {
					defer wg.Done()
					nd.sol, nd.err = st.solveNode(w, nd)
				}(i, nd)
			}
			wg.Wait()
		}

		// Process strictly in (bound, seq) order; this loop is serial in
		// every mode and is the only place search state mutates.
		for bi, nd := range batch {
			if sol.Nodes >= maxNodes ||
				(!deadline.IsZero() && sol.Nodes&63 == 0 && time.Now().After(deadline)) {
				budgetHit = true
				st.pushBack(batch[bi:])
				break
			}
			// A child pushed by an earlier batch element may now precede
			// this node in the serial order: requeue the tail and refill.
			if minNd, ok := st.open.Peek(); ok && nodeLess(minNd, nd) {
				st.pushBack(batch[bi:])
				break
			}
			// Prune against the incumbent.
			if nd.bound >= sol.Objective-1e-9 {
				nd.sol, nd.err = nil, nil
				continue
			}
			if nd.err != nil {
				return nil, nd.err
			}
			if nd.sol == nil { // serial mode solves lazily, after the prune check
				if nd.sol, err = st.solveNode(0, nd); err != nil {
					return nil, err
				}
			}
			rel := nd.sol
			nd.sol = nil
			sol.Nodes++
			switch rel.Status {
			case lp.Infeasible:
				continue
			case lp.Unbounded:
				if nd.parent == nil {
					// An unbounded root relaxation means the ILP itself is
					// unbounded or pathological; scheduling models never are.
					sol.Status = Unbounded
					return sol, nil
				}
				continue
			}
			if rel.Objective >= sol.Objective-1e-9 {
				continue // bound prune
			}

			branchVar, _ := mostFractional(p, rel.X)
			if branchVar == -1 {
				// Integral solution: candidate incumbent.
				st.tryIncumbent(roundIntegral(p, rel.X), rel.Objective)
				continue
			}
			v := rel.X[branchVar]
			down := &node{parent: nd, j: branchVar, v: math.Floor(v), upper: true,
				bound: rel.Objective, seq: st.seq}
			up := &node{parent: nd, j: branchVar, v: math.Ceil(v), upper: false,
				bound: rel.Objective, seq: st.seq + 1}
			st.seq += 2
			st.open.Push(down)
			st.open.Push(up)
		}
	}

	// Compute the final global bound from the remaining open nodes.
	sol.BestBound = sol.Objective
	for _, nd := range st.open.Items() {
		if nd.bound < sol.BestBound {
			sol.BestBound = nd.bound
		}
	}

	if !budgetHit && st.open.Len() == 0 {
		if sol.Status == Feasible {
			sol.Status = Optimal
			sol.BestBound = sol.Objective
		} else {
			// The whole tree was explored without an integral incumbent.
			sol.Status = Infeasible
		}
	}
	return sol, nil
}

// pushBack returns unprocessed batch nodes to the open heap; their cached
// relaxation solutions ride along, so no work is repeated.
func (st *bbState) pushBack(nodes []*node) {
	for _, nd := range nodes {
		st.open.Push(nd)
	}
}

// tryIncumbent installs x (already integral-rounded) as the incumbent when
// it improves the objective.
func (st *bbState) tryIncumbent(x []float64, obj float64) {
	if obj < st.sol.Objective-1e-9 {
		st.sol.Objective = obj
		st.sol.X = x
		st.sol.Status = Feasible
		if st.opt.OnIncumbent != nil {
			st.opt.OnIncumbent(x, obj)
		}
	}
}

// solveNode materializes nd's bound chain and solves its LP relaxation with
// worker w's pooled simplex.
func (st *bbState) solveNode(w int, nd *node) (*lp.Solution, error) {
	if st.opt.DenseRowBounds {
		return st.solveNodeDense(w, nd)
	}
	lo, up := st.lo[w], st.up[w]
	copy(lo, st.baseLo)
	copy(up, st.baseUp)
	ch := st.chains[w][:0]
	for x := nd; x != nil && x.j >= 0; x = x.parent {
		ch = append(ch, x)
	}
	st.chains[w] = ch
	for _, b := range ch {
		if b.upper {
			if b.v < up[b.j] {
				up[b.j] = b.v
			}
		} else {
			if b.v > lo[b.j] {
				lo[b.j] = b.v
			}
		}
	}
	sub := lp.Problem{NumVars: st.p.LP.NumVars, C: st.p.LP.C, Rows: st.p.LP.Rows, Lo: lo, Up: up}
	return st.solvers[w].Solve(&sub)
}

// solveNodeDense is the retained legacy encoding: every branching bound
// becomes a dense single-variable row appended to the base model, in
// root-to-leaf order (the historical formulation).
func (st *bbState) solveNodeDense(w int, nd *node) (*lp.Solution, error) {
	ch := st.chains[w][:0]
	for x := nd; x != nil && x.j >= 0; x = x.parent {
		ch = append(ch, x)
	}
	st.chains[w] = ch
	d := &st.dense[w]
	rows := append(d.rows[:0], st.p.LP.Rows...)
	n := st.p.LP.NumVars
	for i := len(ch) - 1; i >= 0; i-- {
		b := ch[i]
		sense := lp.GE
		if b.upper {
			sense = lp.LE
		}
		rows = append(rows, lp.Constraint{Coef: d.coef(n, len(ch)-1-i, b.j), Sense: sense, RHS: b.v})
	}
	d.rows = rows[:0]
	sub := lp.Problem{NumVars: n, C: st.p.LP.C, Rows: rows, Lo: st.p.LP.Lo, Up: st.p.LP.Up}
	return st.solvers[w].Solve(&sub)
}

// mostFractional returns the integral variable farthest from an integer in
// x (most-fractional branching), or -1 when x is integral.
func mostFractional(p *Problem, x []float64) (int, float64) {
	branchVar, frac := -1, 0.0
	for j := 0; j < p.LP.NumVars; j++ {
		if !p.Integer[j] {
			continue
		}
		f := math.Abs(x[j] - math.Round(x[j]))
		if f > intTol && f > frac {
			branchVar, frac = j, f
		}
	}
	return branchVar, frac
}

// roundIntegral snaps integral variables to their nearest integers and
// returns a copy.
func roundIntegral(p *Problem, x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for j, isInt := range p.Integer {
		if isInt {
			out[j] = math.Round(out[j])
		}
	}
	return out
}

// SortedFractionalVars is a test helper exposing branching order logic:
// indices of integral variables sorted by descending fractionality in x.
func SortedFractionalVars(p *Problem, x []float64) []int {
	var vars []int
	for j := range p.Integer {
		if p.Integer[j] {
			if f := math.Abs(x[j] - math.Round(x[j])); f > intTol {
				vars = append(vars, j)
			}
		}
	}
	sort.Slice(vars, func(a, b int) bool {
		fa := math.Abs(x[vars[a]] - math.Round(x[vars[a]]))
		fb := math.Abs(x[vars[b]] - math.Round(x[vars[b]]))
		return fa > fb
	})
	return vars
}
