// Package ilp is a branch-and-bound integer linear programming solver built
// on the internal/lp simplex. It is the engine behind the paper's offline
// ILP scheduling (§IV-A): best-first search on the LP relaxation bound,
// most-fractional branching, and node/time budgets with incumbent return so
// a large hyper-period can still produce a usable (if not proven-optimal)
// schedule — mirroring the paper's "seconds to minutes" solver runs.
package ilp

import (
	"math"
	"sort"
	"time"

	"nprt/internal/lp"
)

// Problem is an LP with integrality requirements on a subset of variables.
type Problem struct {
	LP      *lp.Problem
	Integer []bool // len == LP.NumVars; true = must be integral
}

// NewProblem returns an ILP over n variables, none integral yet.
func NewProblem(n int) *Problem {
	return &Problem{LP: lp.NewProblem(n), Integer: make([]bool, n)}
}

// SetInteger marks variable j integral.
func (p *Problem) SetInteger(j int) { p.Integer[j] = true }

// Status is a solve outcome.
type Status int8

// Solve outcomes.
const (
	// Optimal: proven optimal integral solution.
	Optimal Status = iota
	// Feasible: an integral incumbent was found but the search hit a budget
	// before proving optimality.
	Feasible
	// Infeasible: no integral solution exists.
	Infeasible
	// Unbounded: the relaxation is unbounded below.
	Unbounded
	// Limit: a budget was hit before any incumbent was found.
	Limit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "limit"
	}
	return "?"
}

// Options bounds the search.
type Options struct {
	MaxNodes  int           // 0 = default 100000
	TimeLimit time.Duration // 0 = none
	// OnIncumbent, when non-nil, observes each improving integral solution.
	OnIncumbent func(x []float64, obj float64)
}

// Solution is the branch-and-bound result.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	Nodes     int     // explored branch-and-bound nodes
	BestBound float64 // global lower bound at termination
}

const intTol = 1e-6

// bound is one branching restriction x_j (sense) v.
type boundT struct {
	j     int
	sense lp.Sense
	v     float64
}

type node struct {
	bounds []boundT
	bound  float64 // parent relaxation objective (lower bound)
}

// Solve runs best-first branch and bound.
func Solve(p *Problem, opt Options) (*Solution, error) {
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 100000
	}
	deadline := time.Time{}
	if opt.TimeLimit > 0 {
		deadline = time.Now().Add(opt.TimeLimit)
	}

	sol := &Solution{Status: Limit, Objective: math.Inf(1), BestBound: math.Inf(-1)}

	open := []*node{{bound: math.Inf(-1)}}
	pop := func() *node {
		// Best-first: smallest parent bound explored first.
		best := 0
		for i := 1; i < len(open); i++ {
			if open[i].bound < open[best].bound {
				best = i
			}
		}
		n := open[best]
		open[best] = open[len(open)-1]
		open = open[:len(open)-1]
		return n
	}

	relaxed := func(bounds []boundT) (*lp.Solution, error) {
		sub := &lp.Problem{NumVars: p.LP.NumVars, C: p.LP.C, Rows: p.LP.Rows}
		if len(bounds) > 0 {
			rows := make([]lp.Constraint, len(p.LP.Rows), len(p.LP.Rows)+len(bounds))
			copy(rows, p.LP.Rows)
			for _, b := range bounds {
				coef := make([]float64, p.LP.NumVars)
				coef[b.j] = 1
				rows = append(rows, lp.Constraint{Coef: coef, Sense: b.sense, RHS: b.v})
			}
			sub.Rows = rows
		}
		return lp.Solve(sub)
	}

	budgetHit := false
	for len(open) > 0 {
		if sol.Nodes >= maxNodes || (!deadline.IsZero() && time.Now().After(deadline)) {
			budgetHit = true
			break
		}
		nd := pop()
		// Prune against the incumbent.
		if nd.bound >= sol.Objective-1e-9 {
			continue
		}
		rel, err := relaxed(nd.bounds)
		if err != nil {
			return nil, err
		}
		sol.Nodes++
		switch rel.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			if len(nd.bounds) == 0 {
				// An unbounded root relaxation means the ILP itself is
				// unbounded or pathological; scheduling models never are.
				sol.Status = Unbounded
				return sol, nil
			}
			continue
		}
		if rel.Objective >= sol.Objective-1e-9 {
			continue // bound prune
		}

		// Find the most fractional integral variable.
		branchVar, frac := -1, 0.0
		for j := 0; j < p.LP.NumVars; j++ {
			if !p.Integer[j] {
				continue
			}
			f := math.Abs(rel.X[j] - math.Round(rel.X[j]))
			if f > intTol && f > frac {
				branchVar, frac = j, f
			}
		}
		if branchVar == -1 {
			// Integral solution: new incumbent.
			obj := rel.Objective
			if obj < sol.Objective-1e-9 {
				sol.Objective = obj
				sol.X = roundIntegral(p, rel.X)
				sol.Status = Feasible
				if opt.OnIncumbent != nil {
					opt.OnIncumbent(sol.X, obj)
				}
			}
			continue
		}

		v := rel.X[branchVar]
		down := append(append([]boundT(nil), nd.bounds...),
			boundT{branchVar, lp.LE, math.Floor(v)})
		up := append(append([]boundT(nil), nd.bounds...),
			boundT{branchVar, lp.GE, math.Ceil(v)})
		open = append(open, &node{bounds: down, bound: rel.Objective},
			&node{bounds: up, bound: rel.Objective})
	}

	// Compute the final global bound from the remaining open nodes.
	sol.BestBound = sol.Objective
	for _, nd := range open {
		if nd.bound < sol.BestBound {
			sol.BestBound = nd.bound
		}
	}

	if !budgetHit && len(open) == 0 {
		if sol.Status == Feasible {
			sol.Status = Optimal
			sol.BestBound = sol.Objective
		} else {
			// The whole tree was explored without an integral incumbent.
			sol.Status = Infeasible
		}
	}
	return sol, nil
}

// roundIntegral snaps integral variables to their nearest integers and
// returns a copy.
func roundIntegral(p *Problem, x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for j, isInt := range p.Integer {
		if isInt {
			out[j] = math.Round(out[j])
		}
	}
	return out
}

// SortedFractionalVars is a test helper exposing branching order logic:
// indices of integral variables sorted by descending fractionality in x.
func SortedFractionalVars(p *Problem, x []float64) []int {
	var vars []int
	for j := range p.Integer {
		if p.Integer[j] {
			if f := math.Abs(x[j] - math.Round(x[j])); f > intTol {
				vars = append(vars, j)
			}
		}
	}
	sort.Slice(vars, func(a, b int) bool {
		fa := math.Abs(x[vars[a]] - math.Round(x[vars[a]]))
		fb := math.Abs(x[vars[b]] - math.Round(x[vars[b]]))
		return fa > fb
	})
	return vars
}
