// Differential and determinism tests for the branch-and-bound overhaul:
//
//   - native bounds vs the retained dense-row encoding on every Table-I
//     offline model and on randomized mixed ILPs;
//   - parallel (Workers > 1) vs serial bit-identical output;
//   - a tight TimeLimit still returning Feasible with the root incumbent.
//
// This file lives in package ilp_test so it can import internal/offline and
// internal/workload (which themselves import ilp) without a cycle.
package ilp_test

import (
	"math"
	"testing"
	"time"

	"nprt/internal/ilp"
	"nprt/internal/lp"
	"nprt/internal/offline"
	"nprt/internal/rng"
	"nprt/internal/task"
	"nprt/internal/workload"
)

// tableINodeBudget caps the search on the Table-I models so the suite stays
// fast: small models reach Optimal/Infeasible well inside it, and on the
// large Rnd10–Rnd13 instances (which no cuts-free branch-and-bound proves
// optimal in test time — the LP integrality gap is several per cent) both
// configurations explore exactly this many nodes, making their incumbents
// comparable.
const tableINodeBudget = 200

// tableIModels builds the §IV-A mode ILP for every Table-I case under the
// deepest-mode EDF order.
func tableIModels(t *testing.T) (names []string, models []*ilp.Problem) {
	t.Helper()
	cases, err := workload.CachedCases()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		s := c.MustSet()
		order, err := offline.EDFOrder(s, task.Deepest)
		if err != nil {
			t.Fatalf("%s: EDF order: %v", c.Name, err)
		}
		names = append(names, c.Name)
		models = append(models, offline.BuildModeILP(s, order))
	}
	if len(models) != 14 {
		t.Fatalf("expected the 14 Table-I models, got %d", len(models))
	}
	return names, models
}

// integralFeasible verifies x against every row and native bound of p and
// that integral variables are integers — an incumbent check independent of
// the solver internals.
func integralFeasible(p *ilp.Problem, x []float64) bool {
	const tol = 1e-6
	for j := range x {
		lo, up := 0.0, math.Inf(1)
		if p.LP.Lo != nil {
			lo = p.LP.Lo[j]
		}
		if p.LP.Up != nil {
			up = p.LP.Up[j]
		}
		if x[j] < lo-tol || x[j] > up+tol {
			return false
		}
		if p.Integer[j] && math.Abs(x[j]-math.Round(x[j])) > tol {
			return false
		}
	}
	for _, r := range p.LP.Rows {
		dot := 0.0
		for j, c := range r.Coef {
			dot += c * x[j]
		}
		switch r.Sense {
		case lp.LE:
			if dot > r.RHS+tol {
				return false
			}
		case lp.GE:
			if dot < r.RHS-tol {
				return false
			}
		case lp.EQ:
			if math.Abs(dot-r.RHS) > tol {
				return false
			}
		}
	}
	return true
}

// TestTableIDenseRowDifferential: on all 14 Table-I offline models the new
// native-bound path and the retained dense-row path must agree in status;
// where the search terminates (Optimal / Infeasible) they must agree in
// objective and mode assignment, and every budget-limited incumbent must be
// independently verified integral-feasible.
func TestTableIDenseRowDifferential(t *testing.T) {
	names, models := tableIModels(t)
	for i, p := range models {
		name := names[i]
		nat, err := ilp.Solve(p, ilp.Options{MaxNodes: tableINodeBudget})
		if err != nil {
			t.Fatalf("%s native: %v", name, err)
		}
		den, err := ilp.Solve(p, ilp.Options{MaxNodes: tableINodeBudget, DenseRowBounds: true})
		if err != nil {
			t.Fatalf("%s dense: %v", name, err)
		}
		if nat.Status != den.Status {
			t.Errorf("%s: status native=%v dense=%v", name, nat.Status, den.Status)
			continue
		}
		switch nat.Status {
		case ilp.Optimal:
			if math.Abs(nat.Objective-den.Objective) > 1e-6 {
				t.Errorf("%s: optimal objective native=%.9f dense=%.9f", name, nat.Objective, den.Objective)
			}
			for j := range p.Integer {
				if p.Integer[j] && math.Round(nat.X[j]) != math.Round(den.X[j]) {
					t.Errorf("%s: assignment differs at y[%d]: native=%g dense=%g", name, j, nat.X[j], den.X[j])
					break
				}
			}
		case ilp.Feasible:
			// Budget-limited: floating-point pivot differences between the
			// two tableau shapes may legitimately steer the trees apart, so
			// compare incumbent *validity*, not identity.
			if !integralFeasible(p, nat.X) {
				t.Errorf("%s: native incumbent infeasible", name)
			}
			if !integralFeasible(p, den.X) {
				t.Errorf("%s: dense incumbent infeasible", name)
			}
		}
		if nat.Status == ilp.Optimal || nat.Status == ilp.Feasible {
			if !integralFeasible(p, nat.X) {
				t.Errorf("%s: native solution fails independent feasibility check", name)
			}
		}
	}
}

// TestLegacyModelEncodingAgrees pits the full historical stack — row-encoded
// model (BuildModeILPRowBounds) + dense-row branching + no heuristic —
// against the new native stack on every Table-I case that terminates within
// the budget: proven statuses and optimal objectives must coincide.
func TestLegacyModelEncodingAgrees(t *testing.T) {
	cases, err := workload.CachedCases()
	if err != nil {
		t.Fatal(err)
	}
	terminated := 0
	for _, c := range cases {
		s := c.MustSet()
		order, err := offline.EDFOrder(s, task.Deepest)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		nat, err := ilp.Solve(offline.BuildModeILP(s, order), ilp.Options{MaxNodes: tableINodeBudget})
		if err != nil {
			t.Fatal(err)
		}
		if nat.Status != ilp.Optimal && nat.Status != ilp.Infeasible {
			continue // budget-limited: legacy explores a same-size but possibly different tree
		}
		leg, err := ilp.Solve(offline.BuildModeILPRowBounds(s, order),
			ilp.Options{MaxNodes: 100000, DenseRowBounds: true, DisableHeuristic: true})
		if err != nil {
			t.Fatal(err)
		}
		if leg.Status != nat.Status {
			t.Errorf("%s: status legacy=%v native=%v", c.Name, leg.Status, nat.Status)
			continue
		}
		if nat.Status == ilp.Optimal && math.Abs(leg.Objective-nat.Objective) > 1e-6 {
			t.Errorf("%s: objective legacy=%.9f native=%.9f", c.Name, leg.Objective, nat.Objective)
		}
		terminated++
	}
	if terminated < 5 {
		t.Fatalf("only %d cases terminated; the equivalence check lost its teeth", terminated)
	}
}

// TestTableIParallelBitIdentical: for every Table-I model and several worker
// counts, the parallel search must reproduce the serial run bit for bit —
// status, objective, incumbent vector, node count, and best bound. This is
// the determinism contract that makes -ilpworkers safe to flip in the
// experiment harness.
func TestTableIParallelBitIdentical(t *testing.T) {
	names, models := tableIModels(t)
	for i, p := range models {
		name := names[i]
		serial, err := ilp.Solve(p, ilp.Options{MaxNodes: tableINodeBudget})
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, w := range []int{2, 4, 8} {
			par, err := ilp.Solve(p, ilp.Options{MaxNodes: tableINodeBudget, Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if par.Status != serial.Status || par.Objective != serial.Objective ||
				par.Nodes != serial.Nodes || par.BestBound != serial.BestBound {
				t.Errorf("%s workers=%d: {%v %.12f nodes=%d bound=%.12f} != serial {%v %.12f nodes=%d bound=%.12f}",
					name, w, par.Status, par.Objective, par.Nodes, par.BestBound,
					serial.Status, serial.Objective, serial.Nodes, serial.BestBound)
			}
			if len(par.X) != len(serial.X) {
				t.Errorf("%s workers=%d: incumbent length %d != %d", name, w, len(par.X), len(serial.X))
				continue
			}
			for j := range par.X {
				if par.X[j] != serial.X[j] {
					t.Errorf("%s workers=%d: X[%d]=%v != serial %v (must be bit-identical)", name, w, j, par.X[j], serial.X[j])
					break
				}
			}
		}
	}
}

// TestRandomILPDifferential solves ≥100 randomized mixed ILPs to completion
// under every configuration (native / dense-row / parallel) and requires
// identical status and objective, with parallel additionally bit-identical
// to serial.
func TestRandomILPDifferential(t *testing.T) {
	r := rng.New(0xD1FF2026)
	for trial := 0; trial < 120; trial++ {
		nBin := 3 + int(r.Uint64()%4)  // 3..6 binaries
		nCont := int(r.Uint64() % 3)   // 0..2 continuous
		nRows := 2 + int(r.Uint64()%4) // 2..5 rows
		n := nBin + nCont
		p := ilp.NewProblem(n)
		for j := 0; j < nBin; j++ {
			p.SetBinary(j)
			p.LP.C[j] = float64(int(r.Uint64()%21)) - 10
		}
		for j := nBin; j < n; j++ {
			p.LP.C[j] = float64(int(r.Uint64()%11)) - 5
			p.LP.SetBounds(j, 0, float64(1+r.Uint64()%9))
		}
		for i := 0; i < nRows; i++ {
			coef := make([]float64, n)
			for j := range coef {
				coef[j] = float64(int(r.Uint64()%9)) - 4
			}
			sense := lp.Sense(r.Uint64() % 3)
			rhs := float64(int(r.Uint64()%17)) - 4
			p.LP.AddConstraint(coef, sense, rhs, "")
		}

		nat, err := ilp.Solve(p, ilp.Options{})
		if err != nil {
			t.Fatalf("trial %d native: %v", trial, err)
		}
		den, err := ilp.Solve(p, ilp.Options{DenseRowBounds: true})
		if err != nil {
			t.Fatalf("trial %d dense: %v", trial, err)
		}
		if nat.Status != den.Status {
			t.Fatalf("trial %d: status native=%v dense=%v", trial, nat.Status, den.Status)
		}
		if nat.Status == ilp.Optimal {
			if math.Abs(nat.Objective-den.Objective) > 1e-6 {
				t.Fatalf("trial %d: objective native=%.9f dense=%.9f", trial, nat.Objective, den.Objective)
			}
			if !integralFeasible(p, nat.X) || !integralFeasible(p, den.X) {
				t.Fatalf("trial %d: optimal solution fails feasibility check", trial)
			}
		}
		par, err := ilp.Solve(p, ilp.Options{Workers: 4})
		if err != nil {
			t.Fatalf("trial %d parallel: %v", trial, err)
		}
		if par.Status != nat.Status || par.Objective != nat.Objective ||
			par.Nodes != nat.Nodes || par.BestBound != nat.BestBound {
			t.Fatalf("trial %d: parallel not bit-identical: {%v %.12f %d} vs {%v %.12f %d}",
				trial, par.Status, par.Objective, par.Nodes, nat.Status, nat.Objective, nat.Nodes)
		}
	}
}

// TestTightTimeLimitKeepsIncumbent (satellite of the TimeLimit batching
// change): even a time limit that expires before the first budget check —
// budgets are only probed every 64 nodes — must return Feasible with the
// root heuristic's incumbent on a large model, never Limit.
func TestTightTimeLimitKeepsIncumbent(t *testing.T) {
	names, models := tableIModels(t)
	for i, name := range names {
		if name != "Rnd10" {
			continue
		}
		p := models[i]
		sol, err := ilp.Solve(p, ilp.Options{TimeLimit: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != ilp.Feasible {
			t.Fatalf("status = %v, want feasible (incumbent from root heuristic)", sol.Status)
		}
		if math.IsInf(sol.Objective, 1) || !integralFeasible(p, sol.X) {
			t.Fatalf("incumbent invalid: obj=%v", sol.Objective)
		}
		return
	}
	t.Fatal("Rnd10 not found")
}
