package ilp

import (
	"math"
	"testing"
	"time"

	"nprt/internal/lp"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

// Knapsack-style: maximize 8a+11b+6c+4d (binary) with 5a+7b+4c+3d <= 14.
// Optimum: a=b=c=1 → value 25, weight 16? No: 5+7+4=16 > 14. Correct
// optimum is a=1,b=1,d=1: 8+11+4=23, weight 15 > 14. Recheck: feasible sets
// of weight <= 14: {a,b}=12→19, {b,c,d}=14→21, {a,c,d}=12→18, {a,b,d} no.
// Optimum 21 at b=c=d=1.
func TestBinaryKnapsack(t *testing.T) {
	p := NewProblem(4)
	p.LP.C = []float64{-8, -11, -6, -4}
	p.LP.AddConstraint([]float64{5, 7, 4, 3}, lp.LE, 14, "cap")
	for j := 0; j < 4; j++ {
		p.SetInteger(j)
		p.LP.AddBound(j, lp.LE, 1, "bin")
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !almost(sol.Objective, -21) {
		t.Errorf("objective = %g, want -21", sol.Objective)
	}
	want := []float64{0, 1, 1, 1}
	for j := range want {
		if !almost(sol.X[j], want[j]) {
			t.Errorf("x = %v, want %v", sol.X, want)
			break
		}
	}
}

func TestIntegerRounding(t *testing.T) {
	// min -x s.t. x <= 3.7, x integer → x = 3.
	p := NewProblem(1)
	p.LP.C = []float64{-1}
	p.LP.AddBound(0, lp.LE, 3.7, "")
	p.SetInteger(0)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almost(sol.X[0], 3) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestMixedIntegerProblem(t *testing.T) {
	// min -2x - y, x integer, y continuous; x+y <= 4.5, x <= 2.3.
	// Relaxation picks x=2.3; branching forces x=2, y=2.5 → -6.5
	// (vs x=0,y=4.5 → -4.5).
	p := NewProblem(2)
	p.LP.C = []float64{-2, -1}
	p.LP.AddConstraint([]float64{1, 1}, lp.LE, 4.5, "")
	p.LP.AddBound(0, lp.LE, 2.3, "")
	p.SetInteger(0)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almost(sol.Objective, -6.5) {
		t.Fatalf("sol = %+v", sol)
	}
	if !almost(sol.X[0], 2) || !almost(sol.X[1], 2.5) {
		t.Errorf("x = %v", sol.X)
	}
}

func TestIntegerInfeasible(t *testing.T) {
	// 2x = 3 with x integer has no solution.
	p := NewProblem(1)
	p.LP.C = []float64{1}
	p.LP.AddConstraint([]float64{2}, lp.EQ, 3, "")
	p.SetInteger(0)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestLPInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.LP.C = []float64{1}
	p.LP.AddBound(0, lp.LE, 1, "")
	p.LP.AddBound(0, lp.GE, 2, "")
	p.SetInteger(0)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v", sol.Status)
	}
}

func TestUnboundedRoot(t *testing.T) {
	p := NewProblem(1)
	p.LP.C = []float64{-1}
	p.SetInteger(0)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestNodeBudgetReturnsIncumbent(t *testing.T) {
	// A 12-variable knapsack where one node is not enough to prove
	// optimality, but incumbents are found along the way.
	n := 12
	p := NewProblem(n)
	weights := []float64{3, 5, 7, 9, 11, 13, 4, 6, 8, 10, 12, 14}
	for j := 0; j < n; j++ {
		p.LP.C[j] = -float64(j + 2)
		p.SetInteger(j)
		p.LP.AddBound(j, lp.LE, 1, "")
	}
	p.LP.AddConstraint(weights, lp.LE, 31, "cap")

	full, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Status != Optimal {
		t.Fatalf("full solve status = %v", full.Status)
	}

	var incumbents int
	limited, err := Solve(p, Options{MaxNodes: 5, OnIncumbent: func([]float64, float64) { incumbents++ }})
	if err != nil {
		t.Fatal(err)
	}
	if limited.Status != Feasible && limited.Status != Optimal && limited.Status != Limit {
		t.Fatalf("limited status = %v", limited.Status)
	}
	if limited.Status == Feasible {
		if limited.Objective < full.Objective-1e-9 {
			t.Error("incumbent better than optimum — impossible")
		}
		if incumbents == 0 {
			t.Error("OnIncumbent never fired")
		}
		if limited.BestBound > limited.Objective+1e-9 {
			t.Errorf("bound %g above incumbent %g", limited.BestBound, limited.Objective)
		}
	}
}

func TestSchedulingShapedILP(t *testing.T) {
	// Two jobs in fixed order, binary mode choice y_k: durations are
	// 6−4·y_k (accurate 6, imprecise 2), deadline of job 2 is 9, job 1 is 6;
	// starts s_1 = 0, s_2 = dur_1. Minimize error 3·y_1 + 5·y_2.
	// Accurate both: finish = 12 > 9 → at least one imprecise; choosing
	// y_1=1 (error 3): finish = 2+6 = 8 ≤ 9 and job1 finish 2 ≤ 6. Optimal.
	// Variables: y1, y2.
	p := NewProblem(2)
	p.LP.C = []float64{3, 5}
	// Job1 finish: 6 − 4y1 ≤ 6 (always true). Job2 finish: (6−4y1)+(6−4y2) ≤ 9
	// → −4y1 −4y2 ≤ −3 → 4y1+4y2 ≥ 3.
	p.LP.AddConstraint([]float64{4, 4}, lp.GE, 3, "deadline2")
	for j := 0; j < 2; j++ {
		p.SetInteger(j)
		p.LP.AddBound(j, lp.LE, 1, "bin")
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almost(sol.Objective, 3) {
		t.Fatalf("sol = %+v", sol)
	}
	if !almost(sol.X[0], 1) || !almost(sol.X[1], 0) {
		t.Errorf("x = %v, want [1 0]", sol.X)
	}
}

func TestSortedFractionalVars(t *testing.T) {
	p := NewProblem(3)
	p.SetInteger(0)
	p.SetInteger(2)
	x := []float64{0.5, 0.4, 0.9}
	vars := SortedFractionalVars(p, x)
	// Var 0 has fractionality 0.5, var 2 has 0.1; var 1 is continuous.
	if len(vars) != 2 || vars[0] != 0 || vars[1] != 2 {
		t.Errorf("vars = %v, want [0 2]", vars)
	}
	if got := SortedFractionalVars(p, []float64{1, 0.3, 2}); len(got) != 0 {
		t.Errorf("integral point should have no fractional vars: %v", got)
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Feasible: "feasible", Infeasible: "infeasible",
		Unbounded: "unbounded", Limit: "limit", Status(9): "?",
	} {
		if s.String() != want {
			t.Errorf("Status(%d) = %q, want %q", s, s.String(), want)
		}
	}
}

func TestTimeLimitReturnsGracefully(t *testing.T) {
	// A 16-variable knapsack with a 1ns budget: the solver must stop at the
	// budget without error, reporting Limit or whatever incumbent it found.
	n := 16
	p := NewProblem(n)
	weights := make([]float64, n)
	for j := 0; j < n; j++ {
		p.LP.C[j] = -float64(j%7 + 2)
		weights[j] = float64(j%5 + 3)
		p.SetInteger(j)
		p.LP.AddBound(j, lp.LE, 1, "")
	}
	p.LP.AddConstraint(weights, lp.LE, 23, "cap")
	sol, err := Solve(p, Options{TimeLimit: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	switch sol.Status {
	case Limit, Feasible, Optimal: // all acceptable under a tiny budget
	default:
		t.Errorf("status = %v", sol.Status)
	}
}
