package rt

import (
	"testing"

	"nprt/internal/esr"
	"nprt/internal/imprecise"
	"nprt/internal/offline"
	"nprt/internal/policy"
	"nprt/internal/sim"
	"nprt/internal/task"
	"nprt/internal/trace"
	"nprt/internal/workload"
)

func newtonFixture(t *testing.T) (*task.Set, []workload.NRTaskInfo) {
	t.Helper()
	c, infos, err := workload.NewtonCase()
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Set()
	if err != nil {
		t.Fatal(err)
	}
	return s, infos
}

func TestNRSamplerBoundsAndDeterminism(t *testing.T) {
	s, infos := newtonFixture(t)
	sa := NewNRSampler(infos, 1)
	sb := NewNRSampler(infos, 1)
	for i := 0; i < s.Len(); i++ {
		tk := s.Task(i)
		for jIdx := 0; jIdx < 20; jIdx++ {
			j := s.Job(i, jIdx)
			for _, m := range []task.Mode{task.Accurate, task.Imprecise} {
				da := sa.ExecTime(tk, j, m)
				db := sb.ExecTime(tk, j, m)
				if da != db {
					t.Fatalf("nondeterministic exec time for %v %s", j, m)
				}
				if da < 1 || da > tk.WCET(m) {
					t.Fatalf("exec time %d outside [1,%d]", da, tk.WCET(m))
				}
				if m == task.Imprecise {
					ea, eb := sa.Error(tk, j, m), sb.Error(tk, j, m)
					if ea != eb {
						t.Fatalf("nondeterministic error for %v", j)
					}
					if ea < 0 {
						t.Fatalf("negative error %g", ea)
					}
				}
			}
		}
	}
	if sa.Solves == 0 {
		t.Error("no real solves recorded")
	}
}

func TestNRSamplerAccurateFasterThanWCET(t *testing.T) {
	// Accurate solves should usually finish well under WCET (the margin in
	// the Table IV derivation), which is what the online methods exploit.
	s, infos := newtonFixture(t)
	sampler := NewNRSampler(infos, 2)
	under := 0
	const jobs = 50
	for jIdx := 0; jIdx < jobs; jIdx++ {
		j := s.Job(0, jIdx)
		if sampler.ExecTime(s.Task(0), j, task.Accurate) < s.Task(0).WCETAccurate {
			under++
		}
	}
	if under < jobs/2 {
		t.Errorf("only %d/%d accurate runs under WCET", under, jobs)
	}
}

func TestPrototypeRunAllMethods(t *testing.T) {
	s, infos := newtonFixture(t)
	mkPolicies := func() []sim.Policy {
		ilpPost, err := offline.NewILPPostOABestEffort(s)
		if err != nil {
			t.Fatal(err)
		}
		flipped, err := offline.NewFlippedEDFBestEffort(s)
		if err != nil {
			t.Fatal(err)
		}
		return []sim.Policy{policy.NewEDFImprecise(), esr.New(), flipped, ilpPost}
	}
	var impreciseErr, bestErr float64
	for i, p := range mkPolicies() {
		res, err := sim.Run(s, p, sim.Config{
			Hyperperiods: 20,
			Sampler:      NewNRSampler(infos, 3),
			TraceLimit:   -1,
		})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Misses.Events != 0 {
			t.Errorf("%s: %d deadline misses in the prototype run", p.Name(), res.Misses.Events)
		}
		vs := trace.Validate(res.Trace, trace.Options{RequireDeadlines: true, WCETBounds: true, Set: s})
		if len(vs) != 0 {
			t.Errorf("%s: trace violations: %v", p.Name(), vs[0])
		}
		switch i {
		case 0:
			impreciseErr = res.MeanError()
		case 3:
			bestErr = res.MeanError()
		}
	}
	// Figure 5's headline: ILP+Post+OA ≪ EDF-Imprecise.
	if bestErr >= impreciseErr {
		t.Errorf("ILP+Post+OA error %g not below EDF-Imprecise %g", bestErr, impreciseErr)
	}
}

func TestMeasureWallClock(t *testing.T) {
	eq := imprecise.NewtonEquations()[0]
	p := MeasureWallClock(eq, 1e-5, 50, 9)
	if p.MaxNanos <= 0 || p.MeanNanos <= 0 || p.MaxNanos < int64(p.MeanNanos) {
		t.Errorf("implausible profile: %+v", p)
	}
	if p.String() == "" {
		t.Error("empty String")
	}
}
