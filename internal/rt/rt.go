// Package rt is the reproduction's stand-in for the paper's Linux 4.6 /
// ARM Cortex-A53 prototype (§VI-B). The original ran three periodic
// Newton–Raphson solvers under the scheduling policies on real hardware;
// a garbage-collected Go runtime on shared infrastructure cannot honour
// hard real-time wall-clock deadlines, so this package executes the *real*
// computations — actual Newton–Raphson solves with tight or loose
// convergence criteria — and charges their measured iteration counts to
// the simulator's virtual clock at a calibrated per-iteration cost.
// Errors are likewise *measured*, not sampled: each job's loose-mode root
// is compared against the tight-mode root of the same instance.
//
// The package also provides wall-clock measurement of the kernels (used by
// examples/newton and for re-deriving Table IV on the host machine).
package rt

import (
	"fmt"
	"time"

	"nprt/internal/imprecise"
	"nprt/internal/rng"
	"nprt/internal/task"
	"nprt/internal/workload"
)

// NRSampler is a sim.Sampler that actually runs Newton–Raphson for every
// job: the execution time is the real iteration count converted to virtual
// time, and the error is the real deviation between the loose- and
// tight-criterion roots of the same equation instance.
type NRSampler struct {
	eqs   []*imprecise.Equation
	infos []workload.NRTaskInfo
	seed  uint64

	// lastError caches the measured error of the most recent execution per
	// task, keyed by job index (the engine asks ExecTime first, then Error).
	lastError map[task.JobKey]float64

	// Solves counts real kernel invocations (diagnostics).
	Solves int64
}

// NewNRSampler builds the real-execution sampler for the Newton case.
func NewNRSampler(infos []workload.NRTaskInfo, seed uint64) *NRSampler {
	return &NRSampler{
		eqs:       imprecise.NewtonEquations(),
		infos:     infos,
		seed:      seed,
		lastError: make(map[task.JobKey]float64),
	}
}

// instanceParam derives the job's equation parameter deterministically, so
// repeated runs and different policies see identical instances.
func (s *NRSampler) instanceParam(eq *imprecise.Equation, j task.Job) float64 {
	st := rng.New(s.seed + uint64(j.TaskID)*1000003 + uint64(j.Index)*7919)
	return eq.ParamLo + (eq.ParamHi-eq.ParamLo)*st.Float64()
}

// ExecTime runs the real solver in the requested mode and converts its
// iteration count to virtual time (capped at the declared WCET, exactly as
// a WCET-enforced runtime would abort an overrunning job).
func (s *NRSampler) ExecTime(t *task.Task, j task.Job, m task.Mode) task.Time {
	idx := j.TaskID
	eq := s.eqs[idx]
	info := s.infos[idx]
	a := s.instanceParam(eq, j)

	tol := info.TolAccurate
	if m == task.Imprecise {
		tol = info.TolImprecise
	}
	res := eq.Solve(a, tol)
	s.Solves++

	if m == task.Imprecise {
		tight := eq.Solve(a, info.TolAccurate)
		err := res.Root - tight.Root
		if err < 0 {
			err = -err
		}
		s.lastError[j.Key()] = err
	}

	d := task.Time(float64(res.Iterations) * info.IterCostMicros)
	if d < 1 {
		d = 1
	}
	if w := t.WCET(m); d > w {
		d = w
	}
	return d
}

// Error returns the measured imprecision error of the job's execution.
func (s *NRSampler) Error(_ *task.Task, j task.Job, _ task.Mode) float64 {
	e, ok := s.lastError[j.Key()]
	if ok {
		delete(s.lastError, j.Key())
	}
	return e
}

// WallClockProfile measures real wall-clock execution of one equation
// family at a tolerance over `trials` random instances — the Table IV
// measurement procedure run on the host machine. Virtual-time experiments
// do not depend on it; it exists for the prototype example and for
// re-calibrating IterCostMicros against real hardware.
type WallClockProfile struct {
	Name      string
	Tol       float64
	MaxNanos  int64
	MeanNanos float64
}

// MeasureWallClock profiles the kernel with real timers.
func MeasureWallClock(eq *imprecise.Equation, tol float64, trials int, seed uint64) WallClockProfile {
	r := rng.New(seed)
	p := WallClockProfile{Name: eq.Name, Tol: tol}
	var total int64
	for i := 0; i < trials; i++ {
		a := eq.ParamLo + (eq.ParamHi-eq.ParamLo)*r.Float64()
		start := time.Now()
		eq.Solve(a, tol)
		ns := time.Since(start).Nanoseconds()
		total += ns
		if ns > p.MaxNanos {
			p.MaxNanos = ns
		}
	}
	p.MeanNanos = float64(total) / float64(trials)
	return p
}

// String renders the profile.
func (p WallClockProfile) String() string {
	return fmt.Sprintf("%s tol=%g: max %d ns, mean %.0f ns", p.Name, p.Tol, p.MaxNanos, p.MeanNanos)
}
