package task_test

import (
	"bytes"
	"strings"
	"testing"

	"nprt/internal/task"
)

// FuzzDecodeJSON hammers the external-input boundary: arbitrary bytes must
// either decode into a valid set or come back as an error — never a panic —
// and an accepted set must survive an encode/decode round trip unchanged.
func FuzzDecodeJSON(f *testing.F) {
	f.Add([]byte(`[{"name":"a","period":10,"wcet_accurate":4,"wcet_imprecise":2,"error":{"mean":1}}]`))
	f.Add([]byte(`[{"name":"a","period":10,"wcet_accurate":4,"wcet_imprecise":2},
	               {"name":"b","period":20,"wcet_accurate":8,"wcet_imprecise":3}]`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"name":"x","period":-5,"wcet_accurate":4,"wcet_imprecise":2}]`))
	// Imprecise WCET above accurate: invalid by construction.
	f.Add([]byte(`[{"name":"x","period":10,"wcet_accurate":2,"wcet_imprecise":4}]`))
	f.Add([]byte(`[{"name":"x","period":10,"wcet_accurate":4,"wcet_imprecise":2,"typo_field":1}]`))
	// Hyper-period overflow bait: huge coprime periods.
	f.Add([]byte(`[{"name":"x","period":4611686018427387903,"wcet_accurate":4,"wcet_imprecise":2},
	               {"name":"y","period":4611686018427387902,"wcet_accurate":4,"wcet_imprecise":2}]`))
	f.Add([]byte(`[{"name":"x","period":1e999}]`))
	f.Add([]byte(`{"not":"an array"}`))
	f.Add([]byte(`[{`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := task.DecodeJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if s.Hyperperiod() <= 0 {
			t.Fatalf("accepted set with hyper-period %d", s.Hyperperiod())
		}
		var buf bytes.Buffer
		if err := s.EncodeJSON(&buf); err != nil {
			t.Fatalf("re-encoding accepted set: %v", err)
		}
		s2, err := task.DecodeJSON(&buf)
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v\n%s", err, buf.String())
		}
		if got, want := s2.String(), s.String(); got != want {
			t.Fatalf("round trip changed the set:\n%s\nvs\n%s", got, want)
		}
		// Every accepted task must hold the structural invariants the
		// schedulers rely on (x <= w, positive period, ordered by period).
		for i := 0; i < s.Len(); i++ {
			tk := s.Task(i)
			if tk.WCETImprecise > tk.WCETAccurate || tk.Period <= 0 {
				t.Fatalf("accepted invalid task %+v", tk)
			}
			if i > 0 && s.Task(i-1).Period > tk.Period {
				t.Fatalf("tasks not sorted by period at %d", i)
			}
			if strings.ContainsFunc(tk.Name, func(r rune) bool { return r < 0x20 || r == 0x7f }) {
				// Names flow into CSV and log lines unescaped.
				t.Fatalf("accepted task name with control character: %q", tk.Name)
			}
		}
	})
}
