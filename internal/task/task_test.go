package task

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func validTask(name string, period, w, x Time) Task {
	return Task{Name: name, Period: period, WCETAccurate: w, WCETImprecise: x}
}

func TestNewSortsByPeriodAndAssignsIDs(t *testing.T) {
	s, err := New([]Task{
		validTask("slow", 100, 30, 10),
		validTask("fast", 10, 3, 1),
		validTask("mid", 50, 20, 5),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	wantOrder := []string{"fast", "mid", "slow"}
	for i, w := range wantOrder {
		if got := s.Task(i).Name; got != w {
			t.Errorf("task[%d].Name = %q, want %q", i, got, w)
		}
		if s.Task(i).ID != i {
			t.Errorf("task[%d].ID = %d, want %d", i, s.Task(i).ID, i)
		}
	}
	if got, want := s.Hyperperiod(), Time(100); got != want {
		t.Errorf("Hyperperiod = %d, want %d", got, want)
	}
}

func TestNewStableForEqualPeriods(t *testing.T) {
	s, err := New([]Task{
		validTask("a", 20, 5, 2),
		validTask("b", 20, 6, 3),
		validTask("c", 20, 7, 4),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i, want := range []string{"a", "b", "c"} {
		if got := s.Task(i).Name; got != want {
			t.Errorf("task[%d] = %q, want %q (stable sort)", i, got, want)
		}
	}
}

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(nil); err != ErrEmptySet {
		t.Errorf("New(nil) error = %v, want ErrEmptySet", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		task Task
		want string
	}{
		{"zero period", Task{Name: "t", Period: 0, WCETAccurate: 2, WCETImprecise: 1}, "period"},
		{"negative release", Task{Name: "t", Period: 10, Release: -1, WCETAccurate: 2, WCETImprecise: 1}, "release"},
		{"zero accurate wcet", Task{Name: "t", Period: 10, WCETAccurate: 0, WCETImprecise: 1}, "accurate WCET"},
		{"zero imprecise wcet", Task{Name: "t", Period: 10, WCETAccurate: 2, WCETImprecise: 0}, "imprecise WCET"},
		{"imprecise not below accurate", Task{Name: "t", Period: 10, WCETAccurate: 2, WCETImprecise: 2}, "below accurate"},
		{"wcet exceeds period", Task{Name: "t", Period: 10, WCETAccurate: 11, WCETImprecise: 2}, "exceeds period"},
		{"negative B", Task{Name: "t", Period: 10, WCETAccurate: 5, WCETImprecise: 2, MaxConsecutiveImprecise: -1}, "MaxConsecutiveImprecise"},
		{"negative mean error", Task{Name: "t", Period: 10, WCETAccurate: 5, WCETImprecise: 2, Error: Dist{Mean: -1}}, "mean error"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.task.Validate()
			if err == nil {
				t.Fatalf("Validate accepted invalid task %+v", c.task)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("Validate error %q does not mention %q", err, c.want)
			}
			if _, err := New([]Task{c.task}); err == nil {
				t.Errorf("New accepted invalid task %+v", c.task)
			}
		})
	}
}

func TestModeString(t *testing.T) {
	if Accurate.String() != "accurate" || Imprecise.String() != "imprecise" {
		t.Errorf("Mode.String: got %q/%q", Accurate, Imprecise)
	}
	if got := Mode(7).String(); got != "level7" {
		t.Errorf("Mode(7).String() = %q", got)
	}
	if Deepest.String() != "deepest" {
		t.Errorf("Deepest.String() = %q", Deepest.String())
	}
}

func TestWCETAndExecDistSelection(t *testing.T) {
	tk := Task{
		Period: 10, WCETAccurate: 8, WCETImprecise: 3,
		ExecAccurate:  Dist{Mean: 5},
		ExecImprecise: Dist{Mean: 2},
	}
	if tk.WCET(Accurate) != 8 || tk.WCET(Imprecise) != 3 {
		t.Errorf("WCET selection wrong: %d/%d", tk.WCET(Accurate), tk.WCET(Imprecise))
	}
	if tk.ExecDist(Accurate).Mean != 5 || tk.ExecDist(Imprecise).Mean != 2 {
		t.Errorf("ExecDist selection wrong")
	}
}

func TestJobMaterialization(t *testing.T) {
	s := MustNew([]Task{
		{Name: "a", Period: 10, Release: 3, WCETAccurate: 4, WCETImprecise: 1},
	})
	j := s.Job(0, 0)
	if j.Release != 3 || j.Deadline != 13 {
		t.Errorf("job 0: release/deadline = %d/%d, want 3/13", j.Release, j.Deadline)
	}
	j = s.Job(0, 5)
	if j.Release != 53 || j.Deadline != 63 {
		t.Errorf("job 5: release/deadline = %d/%d, want 53/63", j.Release, j.Deadline)
	}
	if j.Key() != (JobKey{TaskID: 0, Index: 5}) {
		t.Errorf("Key = %+v", j.Key())
	}
}

func TestJobsWithinOneHyperperiod(t *testing.T) {
	s := MustNew([]Task{
		validTask("a", 10, 3, 1),
		validTask("b", 20, 5, 2),
	})
	jobs := s.JobsWithin(0, s.Hyperperiod())
	if want := s.JobsPerHyperperiod(); len(jobs) != want {
		t.Fatalf("JobsWithin returned %d jobs, want %d", len(jobs), want)
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Release < jobs[i-1].Release {
			t.Errorf("jobs not sorted by release at %d", i)
		}
	}
	for _, j := range jobs {
		if j.Release < 0 || j.Deadline > s.Hyperperiod() {
			t.Errorf("job %v outside [0,P]", j)
		}
		if j.Deadline-j.Release != s.Task(j.TaskID).Period {
			t.Errorf("job %v window is not one period", j)
		}
	}
}

func TestJobsWithinOffsetWindow(t *testing.T) {
	s := MustNew([]Task{validTask("a", 10, 3, 1)})
	jobs := s.JobsWithin(25, 60)
	// Releases at 30, 40, 50 have deadlines 40, 50, 60 inside [25,60].
	if len(jobs) != 3 {
		t.Fatalf("got %d jobs, want 3: %v", len(jobs), jobs)
	}
	if jobs[0].Release != 30 || jobs[2].Deadline != 60 {
		t.Errorf("window edges wrong: %v", jobs)
	}
}

func TestJobsWithinRespectsPhase(t *testing.T) {
	s := MustNew([]Task{
		{Name: "a", Period: 10, Release: 4, WCETAccurate: 3, WCETImprecise: 1},
	})
	jobs := s.JobsWithin(0, 30)
	// Releases 4 (d=14) and 14 (d=24) fit; 24 (d=34) does not.
	if len(jobs) != 2 || jobs[0].Release != 4 || jobs[1].Release != 14 {
		t.Errorf("phase handling wrong: %v", jobs)
	}
}

func TestUtilizationAndJobsPerHyperperiod(t *testing.T) {
	s := MustNew([]Task{
		validTask("a", 10, 4, 1),  // U_acc 0.4, U_imp 0.1
		validTask("b", 20, 10, 4), // U_acc 0.5, U_imp 0.2
	})
	if got := s.UtilizationAccurate(); got < 0.899 || got > 0.901 {
		t.Errorf("UtilizationAccurate = %g, want 0.9", got)
	}
	if got := s.UtilizationImprecise(); got < 0.299 || got > 0.301 {
		t.Errorf("UtilizationImprecise = %g, want 0.3", got)
	}
	if got := s.JobsPerHyperperiod(); got != 3 {
		t.Errorf("JobsPerHyperperiod = %d, want 3", got)
	}
}

func TestSuperPeriod(t *testing.T) {
	mk := func(b1, b2 int) *Set {
		return MustNew([]Task{
			{Name: "a", Period: 10, WCETAccurate: 3, WCETImprecise: 1, MaxConsecutiveImprecise: b1},
			{Name: "b", Period: 20, WCETAccurate: 5, WCETImprecise: 2, MaxConsecutiveImprecise: b2},
		})
	}
	s := mk(1, 2) // lcm(2,3) = 6
	sp, f, capped := s.SuperPeriod(0)
	if f != 6 || sp != 6*s.Hyperperiod() || capped {
		t.Errorf("SuperPeriod = (%d,%d,%v), want factor 6 uncapped", sp, f, capped)
	}
	sp, f, capped = s.SuperPeriod(4)
	if f != 4 || !capped || sp != 4*s.Hyperperiod() {
		t.Errorf("capped SuperPeriod = (%d,%d,%v), want factor 4 capped", sp, f, capped)
	}
	s = mk(0, 0) // no constraints
	_, f, capped = s.SuperPeriod(0)
	if f != 1 || capped {
		t.Errorf("unconstrained SuperPeriod factor = %d, want 1", f)
	}
}

func TestScalePreservesInvariants(t *testing.T) {
	s := MustNew([]Task{
		{Name: "a", Period: 100, WCETAccurate: 40, WCETImprecise: 10,
			ExecAccurate: Dist{Mean: 30, Sigma: 2, Min: 4, Max: 40}},
		{Name: "b", Period: 200, WCETAccurate: 90, WCETImprecise: 30},
	})
	for _, k := range []float64{0.25, 0.5, 1.0, 1.5} {
		scaled, err := s.Scale(k)
		if err != nil {
			t.Fatalf("Scale(%g): %v", k, err)
		}
		for i := 0; i < scaled.Len(); i++ {
			tk := scaled.Task(i)
			if tk.WCETImprecise >= tk.WCETAccurate || tk.WCETImprecise < 1 {
				t.Errorf("Scale(%g) task %d broke WCET ordering: w=%d x=%d",
					k, i, tk.WCETAccurate, tk.WCETImprecise)
			}
			if tk.Period != s.Task(i).Period {
				t.Errorf("Scale(%g) changed period", k)
			}
		}
	}
	scaled, _ := s.Scale(0.5)
	if got := scaled.Task(1).WCETAccurate; got != 45 {
		t.Errorf("Scale(0.5) accurate WCET = %d, want 45", got)
	}
	if got := scaled.Task(0).ExecAccurate.Mean; got != 15 {
		t.Errorf("Scale(0.5) exec mean = %g, want 15", got)
	}
}

func TestScaleExtremeShrinkClamps(t *testing.T) {
	s := MustNew([]Task{validTask("a", 100, 4, 2)})
	scaled, err := s.Scale(0.01)
	if err != nil {
		t.Fatalf("Scale: %v", err)
	}
	tk := scaled.Task(0)
	if tk.WCETImprecise < 1 || tk.WCETImprecise >= tk.WCETAccurate {
		t.Errorf("clamping failed: w=%d x=%d", tk.WCETAccurate, tk.WCETImprecise)
	}
}

func TestGCDLCM(t *testing.T) {
	cases := []struct{ a, b, gcd, lcm Time }{
		{4, 6, 2, 12},
		{7, 13, 1, 91},
		{10, 10, 10, 10},
		{1, 9, 1, 9},
	}
	for _, c := range cases {
		if g := GCD(c.a, c.b); g != c.gcd {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, g, c.gcd)
		}
		if l := LCM(c.a, c.b); l != c.lcm {
			t.Errorf("LCM(%d,%d) = %d, want %d", c.a, c.b, l, c.lcm)
		}
	}
	if LCM(0, 5) != 0 || LCM(5, 0) != 0 {
		t.Error("LCM with non-positive input should report 0")
	}
}

func TestHyperperiodOverflowDetected(t *testing.T) {
	// Periods chosen as large coprime numbers so the LCM overflows int64.
	_, err := New([]Task{
		validTask("a", 1<<40, 10, 5),
		validTask("b", (1<<40)+1, 10, 5),
		validTask("c", (1<<40)+3, 10, 5),
	})
	if err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Errorf("overflow not detected: %v", err)
	}
}

func TestStringOutputs(t *testing.T) {
	s := MustNew([]Task{validTask("a", 10, 3, 1)})
	if out := s.String(); !strings.Contains(out, "taskset{n=1") || !strings.Contains(out, "a") {
		t.Errorf("Set.String output unexpected: %q", out)
	}
	j := s.Job(0, 1)
	if got := j.String(); got != "τ(0,1)[10,20)" {
		t.Errorf("Job.String = %q", got)
	}
}

// Property: GCD divides both arguments and LCM is a common multiple, for
// arbitrary positive inputs.
func TestGCDLCMProperties(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := Time(a)+1, Time(b)+1
		g := GCD(x, y)
		l := LCM(x, y)
		return x%g == 0 && y%g == 0 && l%x == 0 && l%y == 0 && g*l == x*y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: JobsWithin(0,P) release times tile the hyper-period exactly.
func TestJobsWithinCoverageProperty(t *testing.T) {
	f := func(p1, p2 uint8) bool {
		a := Time(p1%50) + 2
		b := Time(p2%50) + 2
		s := MustNew([]Task{
			validTask("a", a, 2, 1),
			validTask("b", b, 2, 1),
		})
		jobs := s.JobsWithin(0, s.Hyperperiod())
		counts := map[int]int{}
		for _, j := range jobs {
			counts[j.TaskID]++
		}
		for i := 0; i < s.Len(); i++ {
			if Time(counts[i]) != s.Hyperperiod()/s.Task(i).Period {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestScaleMultiLevel(t *testing.T) {
	s := MustNew([]Task{{
		Name: "a", Period: 100, WCETAccurate: 40, WCETImprecise: 20,
		ExtraLevels: []Level{
			{WCET: 10, Error: Dist{Mean: 5}, Exec: Dist{Mean: 6, Sigma: 1, Min: 1, Max: 10}},
			{WCET: 4, Error: Dist{Mean: 9}},
		},
	}})
	scaled, err := s.Scale(0.5)
	if err != nil {
		t.Fatal(err)
	}
	tk := scaled.Task(0)
	if tk.ExtraLevels[0].WCET != 5 || tk.ExtraLevels[1].WCET != 2 {
		t.Errorf("level WCETs = %d/%d, want 5/2", tk.ExtraLevels[0].WCET, tk.ExtraLevels[1].WCET)
	}
	if tk.ExtraLevels[0].Exec.Mean != 3 {
		t.Errorf("level exec dist not scaled: %+v", tk.ExtraLevels[0].Exec)
	}
	if tk.ExtraLevels[0].Error.Mean != 5 {
		t.Errorf("level error stats must not scale: %+v", tk.ExtraLevels[0].Error)
	}
	if err := tk.Validate(); err != nil {
		t.Errorf("scaled multi-level task invalid: %v", err)
	}
	// Extreme shrink must either stay strictly decreasing or error out.
	if tiny, err := s.Scale(0.01); err == nil {
		if err := tiny.Task(0).Validate(); err != nil {
			t.Errorf("extreme scale produced invalid task: %v", err)
		}
	}
}

func TestJSONRoundTripWithLevels(t *testing.T) {
	s := MustNew([]Task{{
		Name: "a", Period: 100, WCETAccurate: 40, WCETImprecise: 20,
		Error:       Dist{Mean: 2, Sigma: 1},
		ExtraLevels: []Level{{WCET: 10, Error: Dist{Mean: 5}}},
	}})
	var b strings.Builder
	if err := s.EncodeJSON(&b); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, b.String())
	}
	tk := back.Task(0)
	if tk.NumModes() != 3 || tk.WCET(Deepest) != 10 || tk.ErrorDist(Mode(2)).Mean != 5 {
		t.Errorf("levels lost in round trip: %+v", tk)
	}
}

func TestDecodeJSONErrors(t *testing.T) {
	if _, err := DecodeJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := DecodeJSON(strings.NewReader(`[{"Period":0,"Name":"x"}]`)); err == nil {
		t.Error("invalid task accepted")
	}
	if _, err := DecodeJSON(strings.NewReader(`[{"Bogus":1}]`)); err == nil {
		t.Error("unknown field accepted")
	}
}

// The sentinel-error contract: New rejects each invalid boundary combination
// with an error matching the right sentinel, and accepts the legal
// boundaries — including a task whose utilization is exactly 1.0.
func TestNewBoundaryValidation(t *testing.T) {
	bad := []struct {
		name string
		task Task
		want error
	}{
		{"zero period", Task{Period: 0, WCETAccurate: 2, WCETImprecise: 1}, ErrNonPositivePeriod},
		{"negative period", Task{Period: -10, WCETAccurate: 2, WCETImprecise: 1}, ErrNonPositivePeriod},
		{"negative release", Task{Period: 10, Release: -1, WCETAccurate: 2, WCETImprecise: 1}, ErrNegativeRelease},
		{"zero accurate wcet", Task{Period: 10, WCETAccurate: 0, WCETImprecise: 1}, ErrNonPositiveWCET},
		{"negative accurate wcet", Task{Period: 10, WCETAccurate: -2, WCETImprecise: 1}, ErrNonPositiveWCET},
		{"zero imprecise wcet", Task{Period: 10, WCETAccurate: 2, WCETImprecise: 0}, ErrNonPositiveWCET},
		{"negative imprecise wcet", Task{Period: 10, WCETAccurate: 2, WCETImprecise: -1}, ErrNonPositiveWCET},
		{"x equals w", Task{Period: 10, WCETAccurate: 5, WCETImprecise: 5}, ErrModeOrder},
		{"x above w", Task{Period: 10, WCETAccurate: 5, WCETImprecise: 6}, ErrModeOrder},
		{"w above period", Task{Period: 10, WCETAccurate: 11, WCETImprecise: 2}, ErrWCETExceedsPeriod},
		{"negative B", Task{Period: 10, WCETAccurate: 5, WCETImprecise: 2, MaxConsecutiveImprecise: -1}, ErrBadStatistic},
		{"negative mean error", Task{Period: 10, WCETAccurate: 5, WCETImprecise: 2, Error: Dist{Mean: -1}}, ErrBadStatistic},
		{"control character name", Task{Name: "a\nb", Period: 10, WCETAccurate: 5, WCETImprecise: 2}, ErrBadName},
		{"level not below x", Task{Period: 10, WCETAccurate: 5, WCETImprecise: 2,
			ExtraLevels: []Level{{WCET: 2}}}, ErrBadLevel},
		{"level zero wcet", Task{Period: 10, WCETAccurate: 5, WCETImprecise: 2,
			ExtraLevels: []Level{{WCET: 0}}}, ErrBadLevel},
		{"level negative error", Task{Period: 10, WCETAccurate: 5, WCETImprecise: 3,
			ExtraLevels: []Level{{WCET: 2, Error: Dist{Mean: -1}}}}, ErrBadLevel},
	}
	for _, c := range bad {
		t.Run(c.name, func(t *testing.T) {
			_, err := New([]Task{c.task})
			if err == nil {
				t.Fatalf("New accepted invalid task %+v", c.task)
			}
			if !errors.Is(err, c.want) {
				t.Errorf("New error %q does not wrap sentinel %q", err, c.want)
			}
		})
	}

	good := []struct {
		name string
		task Task
	}{
		{"utilization exactly 1.0", Task{Period: 10, WCETAccurate: 10, WCETImprecise: 3}},
		{"minimal mode gap", Task{Period: 10, WCETAccurate: 2, WCETImprecise: 1}},
		{"zero release", Task{Period: 10, Release: 0, WCETAccurate: 2, WCETImprecise: 1}},
		{"B zero (no constraint)", Task{Period: 10, WCETAccurate: 2, WCETImprecise: 1, MaxConsecutiveImprecise: 0}},
	}
	for _, c := range good {
		t.Run(c.name, func(t *testing.T) {
			s, err := New([]Task{c.task})
			if err != nil {
				t.Fatalf("New rejected legal boundary task: %v", err)
			}
			if c.name == "utilization exactly 1.0" && s.UtilizationAccurate() != 1.0 {
				t.Errorf("utilization = %g, want exactly 1.0", s.UtilizationAccurate())
			}
		})
	}
}
