// Package task defines the periodic task model used throughout nprt:
// tasks with accurate and imprecise worst-case execution times, the jobs
// they release, hyper-period and super-period arithmetic, and validation.
//
// All times are virtual microseconds held in int64 (Time). Keeping time
// integral makes the schedulability conditions of Jeffay et al. and the
// offline optimizers exact; there is no floating-point drift anywhere in
// the feasibility math.
package task

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Time is a point or duration on the virtual timeline, in microseconds.
type Time = int64

// Mode is the accuracy level of one job execution. A non-preemptive job
// commits to its mode when it starts and cannot change mid-flight.
type Mode uint8

const (
	// Accurate runs the full computation: WCET w_i, zero error.
	Accurate Mode = iota
	// Imprecise runs the reduced computation: WCET x_i < w_i, and the
	// execution produces a single-valued error with task-specific statistics.
	Imprecise
)

// Deepest selects each task's most imprecise level. The paper notes that
// additional imprecision levels do not change its algorithms structurally
// (§II-C); tasks may declare ExtraLevels beyond Imprecise, and mode values
// 2, 3, … address them. Deepest clamps to whatever each task declares, so
// it is the safe "all-in imprecision" mode for feasibility analysis.
const Deepest Mode = 255

// String returns "accurate", "imprecise" or "level<k>".
func (m Mode) String() string {
	switch m {
	case Accurate:
		return "accurate"
	case Imprecise:
		return "imprecise"
	case Deepest:
		return "deepest"
	default:
		return fmt.Sprintf("level%d", uint8(m))
	}
}

// Level is one additional imprecision level beyond Imprecise: a smaller
// WCET traded for a larger error.
type Level struct {
	WCET  Time
	Exec  Dist // actual execution time distribution (optional)
	Error Dist // error statistics of one execution at this level
}

// Dist describes the distribution of a random, truncated-Gaussian quantity
// such as an actual execution time or an imprecision error. Sampling is done
// by internal/rng; the task package only carries the parameters so that a
// task set is a plain value with no behavioural dependencies.
type Dist struct {
	Mean  float64 // mean of the underlying Gaussian
	Sigma float64 // standard deviation of the underlying Gaussian
	Min   float64 // lower truncation bound (inclusive)
	Max   float64 // upper truncation bound (inclusive); Max<=Min disables truncation above
}

// IsZero reports whether the distribution is entirely unset.
func (d Dist) IsZero() bool {
	return d == Dist{}
}

// Task is one periodic task τ_i. Its jobs are released every Period starting
// at Release, and each job's deadline is the next release (implicit-deadline
// periodic model, exactly the model of the paper: d_{i,j} = r_{i,j} + p_i =
// r_{i,j+1}).
type Task struct {
	ID   int    // dense index, assigned by the Set
	Name string // human-readable label, e.g. "idct-1080p"

	Period  Time // p_i > 0
	Release Time // r_{i,1} >= 0, first release (phase)

	// Worst-case execution times per mode. 0 < WCETImprecise < WCETAccurate.
	WCETAccurate  Time // w_i
	WCETImprecise Time // x_i

	// Actual execution time distributions per mode (virtual microseconds).
	// If unset, execution is deterministic at the mode's WCET.
	ExecAccurate  Dist
	ExecImprecise Dist

	// Error statistics of one imprecise execution. Error.Mean is e_i, the
	// pre-characterized mean error used by the offline optimizers. Accurate
	// executions never incur error.
	Error Dist

	// MaxConsecutiveImprecise is B_i for the cumulative-error model
	// (Problem 2): the number of consecutive jobs in imprecise mode must not
	// exceed it. Zero means the task has no cumulative constraint
	// (independent-error model).
	MaxConsecutiveImprecise int

	// ExtraLevels are additional imprecision levels beyond Imprecise, in
	// strictly decreasing WCET order (mode 2 addresses ExtraLevels[0], and
	// so on). Most of the paper uses a single imprecision level; the
	// multi-level generalization it sketches in §II-C is supported by the
	// ESR and offline-DP schedulers.
	ExtraLevels []Level
}

// NumModes returns the number of accuracy levels the task declares
// (2 for the paper's standard accurate/imprecise pair).
func (t *Task) NumModes() int { return 2 + len(t.ExtraLevels) }

// ClampMode maps any mode (including Deepest) onto a level the task
// declares.
func (t *Task) ClampMode(m Mode) Mode {
	if m == Accurate {
		return Accurate
	}
	if max := Mode(t.NumModes() - 1); m > max {
		return max
	}
	return m
}

// WCET returns the worst-case execution time for the given mode, clamped to
// the task's deepest declared level.
func (t *Task) WCET(m Mode) Time {
	switch m = t.ClampMode(m); m {
	case Accurate:
		return t.WCETAccurate
	case Imprecise:
		return t.WCETImprecise
	default:
		return t.ExtraLevels[int(m)-2].WCET
	}
}

// ExecDist returns the actual-execution-time distribution for a mode
// (clamped like WCET).
func (t *Task) ExecDist(m Mode) Dist {
	switch m = t.ClampMode(m); m {
	case Accurate:
		return t.ExecAccurate
	case Imprecise:
		return t.ExecImprecise
	default:
		return t.ExtraLevels[int(m)-2].Exec
	}
}

// ErrorDist returns the error distribution of one execution at the given
// mode: the zero distribution for accurate runs, Error for Imprecise, and
// the level's own statistics beyond that.
func (t *Task) ErrorDist(m Mode) Dist {
	switch m = t.ClampMode(m); m {
	case Accurate:
		return Dist{}
	case Imprecise:
		return t.Error
	default:
		return t.ExtraLevels[int(m)-2].Error
	}
}

// MeanError returns e_i, the pre-characterized mean imprecision error.
func (t *Task) MeanError() float64 { return t.Error.Mean }

// UtilizationAccurate returns w_i/p_i.
func (t *Task) UtilizationAccurate() float64 {
	return float64(t.WCETAccurate) / float64(t.Period)
}

// UtilizationImprecise returns x_i/p_i.
func (t *Task) UtilizationImprecise() float64 {
	return float64(t.WCETImprecise) / float64(t.Period)
}

// Sentinel validation errors. Validate (and therefore New) wraps each
// rejection around one of these, so callers that screen external input — the
// CLI front-ends mapping to exit codes, the runtime admission controller
// building structured verdicts — can classify failures with errors.Is
// instead of parsing messages.
var (
	// ErrNonPositivePeriod rejects p_i <= 0.
	ErrNonPositivePeriod = errors.New("period must be positive")
	// ErrNegativeRelease rejects r_{i,1} < 0.
	ErrNegativeRelease = errors.New("release must be non-negative")
	// ErrNonPositiveWCET rejects w_i <= 0 or x_i <= 0.
	ErrNonPositiveWCET = errors.New("WCET must be positive")
	// ErrModeOrder rejects x_i >= w_i: the imprecise level must be a strict
	// reduction or the mode pair is meaningless.
	ErrModeOrder = errors.New("imprecise WCET must be below accurate WCET")
	// ErrWCETExceedsPeriod rejects w_i > p_i (the job could never meet its
	// implicit deadline even alone on the processor).
	ErrWCETExceedsPeriod = errors.New("WCET exceeds period")
	// ErrBadName rejects names with control characters, which would corrupt
	// CSV artifacts and log lines.
	ErrBadName = errors.New("name contains control character")
	// ErrBadStatistic rejects negative error means and malformed
	// consecutive-imprecise budgets.
	ErrBadStatistic = errors.New("invalid task statistic")
	// ErrBadLevel rejects extra imprecision levels that are not strictly
	// decreasing in WCET or carry negative error means.
	ErrBadLevel = errors.New("invalid extra imprecision level")
)

// Validate reports the first modelling error in the task, if any. Every
// rejection wraps one of the sentinel errors above.
func (t *Task) Validate() error {
	switch {
	case t.Period <= 0:
		return fmt.Errorf("task %q: period %d: %w", t.Name, t.Period, ErrNonPositivePeriod)
	case t.Release < 0:
		return fmt.Errorf("task %q: release %d: %w", t.Name, t.Release, ErrNegativeRelease)
	case t.WCETAccurate <= 0:
		return fmt.Errorf("task %q: accurate WCET %d: %w", t.Name, t.WCETAccurate, ErrNonPositiveWCET)
	case t.WCETImprecise <= 0:
		return fmt.Errorf("task %q: imprecise WCET %d: %w", t.Name, t.WCETImprecise, ErrNonPositiveWCET)
	case t.WCETImprecise >= t.WCETAccurate:
		return fmt.Errorf("task %q: imprecise WCET %d vs accurate WCET %d: %w",
			t.Name, t.WCETImprecise, t.WCETAccurate, ErrModeOrder)
	case t.WCETAccurate > t.Period:
		return fmt.Errorf("task %q: accurate WCET %d exceeds period %d (job can never meet its deadline): %w",
			t.Name, t.WCETAccurate, t.Period, ErrWCETExceedsPeriod)
	case t.MaxConsecutiveImprecise < 0:
		return fmt.Errorf("task %q: MaxConsecutiveImprecise %d must be non-negative: %w",
			t.Name, t.MaxConsecutiveImprecise, ErrBadStatistic)
	case t.Error.Mean < 0:
		return fmt.Errorf("task %q: mean error %g must be non-negative: %w",
			t.Name, t.Error.Mean, ErrBadStatistic)
	}
	// Names flow into CSV artifacts and log lines unescaped; control
	// characters (found by fuzzing the JSON loader) would corrupt both.
	for _, r := range t.Name {
		if r < 0x20 || r == 0x7f {
			return fmt.Errorf("task %q: %w %q", t.Name, ErrBadName, r)
		}
	}
	prev := t.WCETImprecise
	for i, lv := range t.ExtraLevels {
		if lv.WCET < 1 || lv.WCET >= prev {
			return fmt.Errorf("task %q: extra level %d WCET %d must be in [1, %d): %w",
				t.Name, i, lv.WCET, prev, ErrBadLevel)
		}
		if lv.Error.Mean < 0 {
			return fmt.Errorf("task %q: extra level %d mean error %g must be non-negative: %w",
				t.Name, i, lv.Error.Mean, ErrBadLevel)
		}
		prev = lv.WCET
	}
	return nil
}

// Job is the j-th occurrence τ_{i,j} of a periodic task. Jobs are values;
// identity is (TaskID, Index).
type Job struct {
	TaskID   int
	Index    int  // 0-based occurrence number j
	Release  Time // r_{i,j} = r_{i,1} + j*p_i
	Deadline Time // d_{i,j} = r_{i,j} + p_i
}

// Key returns a compact unique identity for the job.
func (j Job) Key() JobKey { return JobKey{TaskID: j.TaskID, Index: j.Index} }

// String renders the job as "τ(task,index)[r,d)".
func (j Job) String() string {
	return fmt.Sprintf("τ(%d,%d)[%d,%d)", j.TaskID, j.Index, j.Release, j.Deadline)
}

// JobKey identifies a job without its timing data.
type JobKey struct {
	TaskID int
	Index  int
}

// Set is an immutable-by-convention collection of periodic tasks sorted by
// non-decreasing period, the order required by Theorem 1. Construct with New.
type Set struct {
	tasks []Task
	hyper Time
}

// ErrEmptySet is returned when constructing a Set with no tasks.
var ErrEmptySet = errors.New("task: empty task set")

// New validates the tasks, sorts them by non-decreasing period (stable, so
// callers' relative order of equal periods is kept), assigns dense IDs in
// the sorted order, and computes the hyper-period.
func New(tasks []Task) (*Set, error) {
	if len(tasks) == 0 {
		return nil, ErrEmptySet
	}
	ts := make([]Task, len(tasks))
	copy(ts, tasks)
	sort.SliceStable(ts, func(a, b int) bool { return ts[a].Period < ts[b].Period })
	hyper := Time(1)
	for i := range ts {
		if ts[i].Name == "" {
			ts[i].Name = fmt.Sprintf("task%d", i)
		}
		ts[i].ID = i
		if err := ts[i].Validate(); err != nil {
			return nil, err
		}
		hyper = LCM(hyper, ts[i].Period)
		if hyper <= 0 {
			return nil, fmt.Errorf("task: hyper-period overflows int64 at task %q", ts[i].Name)
		}
	}
	return &Set{tasks: ts, hyper: hyper}, nil
}

// MustNew is New but panics on error. It exists for tests and for
// package-internal tables whose contents are compile-time constants, where a
// validation failure is a bug in this repository rather than a runtime
// condition. Code handling external input — JSON files, generator output,
// anything a user can influence — must call New and propagate the error
// instead; the CLI front-ends map those errors to an "invalid input" exit
// code rather than a crash.
func MustNew(tasks []Task) *Set {
	s, err := New(tasks)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of tasks.
func (s *Set) Len() int { return len(s.tasks) }

// Task returns the i-th task (sorted by period). The pointer aliases the
// set's storage; callers must not mutate it.
func (s *Set) Task(i int) *Task { return &s.tasks[i] }

// Tasks returns the underlying slice (sorted by period). Read-only.
func (s *Set) Tasks() []Task { return s.tasks }

// Hyperperiod returns P = lcm(p_1..p_n).
func (s *Set) Hyperperiod() Time { return s.hyper }

// MaxRelease returns the latest first-release among the tasks.
func (s *Set) MaxRelease() Time {
	var m Time
	for i := range s.tasks {
		if s.tasks[i].Release > m {
			m = s.tasks[i].Release
		}
	}
	return m
}

// UtilizationAccurate returns Σ w_i/p_i.
func (s *Set) UtilizationAccurate() float64 {
	u := 0.0
	for i := range s.tasks {
		u += s.tasks[i].UtilizationAccurate()
	}
	return u
}

// UtilizationImprecise returns Σ x_i/p_i.
func (s *Set) UtilizationImprecise() float64 {
	u := 0.0
	for i := range s.tasks {
		u += s.tasks[i].UtilizationImprecise()
	}
	return u
}

// JobsPerHyperperiod returns Σ P/p_i, the number of jobs in one hyper-period.
func (s *Set) JobsPerHyperperiod() int {
	n := 0
	for i := range s.tasks {
		n += int(s.hyper / s.tasks[i].Period)
	}
	return n
}

// Job materializes job τ_{taskID, index}.
func (s *Set) Job(taskID, index int) Job {
	t := &s.tasks[taskID]
	r := t.Release + Time(index)*t.Period
	return Job{TaskID: taskID, Index: index, Release: r, Deadline: r + t.Period}
}

// JobsWithin returns every job whose [release, deadline] window lies entirely
// inside [from, to], sorted by (release, deadline, task). This is the job
// population "∀ τ_{i,j} | [r_{i,j}, d_{i,j}] ⊆ [0, P]" used by the offline
// formulations when called as JobsWithin(0, P).
func (s *Set) JobsWithin(from, to Time) []Job {
	var jobs []Job
	for i := range s.tasks {
		t := &s.tasks[i]
		// First index with release >= from.
		j := 0
		if t.Release < from {
			j = int((from - t.Release + t.Period - 1) / t.Period)
		}
		for {
			jb := s.Job(i, j)
			if jb.Deadline > to {
				break
			}
			jobs = append(jobs, jb)
			j++
		}
	}
	SortJobs(jobs)
	return jobs
}

// SortJobs orders jobs by (release, deadline, taskID, index): the canonical
// traversal order used by the offline schedulers.
func SortJobs(jobs []Job) {
	sort.Slice(jobs, func(a, b int) bool {
		ja, jb := jobs[a], jobs[b]
		if ja.Release != jb.Release {
			return ja.Release < jb.Release
		}
		if ja.Deadline != jb.Deadline {
			return ja.Deadline < jb.Deadline
		}
		if ja.TaskID != jb.TaskID {
			return ja.TaskID < jb.TaskID
		}
		return ja.Index < jb.Index
	})
}

// SuperPeriod returns the super period of §V-B: the minimum whole number of
// hyper-periods covering all phases of every task's consecutive-imprecise
// budget, i.e. P · lcm_i(B_i + 1) over tasks with a cumulative constraint.
// maxFactor caps the multiplier (0 means no cap); the capped flag reports
// whether the cap was hit.
func (s *Set) SuperPeriod(maxFactor int64) (sp Time, factor int64, capped bool) {
	factor = 1
	for i := range s.tasks {
		b := s.tasks[i].MaxConsecutiveImprecise
		if b <= 0 {
			continue
		}
		factor = LCM(factor, int64(b)+1)
		if maxFactor > 0 && factor > maxFactor {
			return s.hyper * maxFactor, maxFactor, true
		}
	}
	return s.hyper * factor, factor, false
}

// Scale returns a copy of the set with every WCET and execution-time
// distribution multiplied by k (a utilization-scaling knob for the
// error-vs-utilization sweeps). Periods, releases and error statistics are
// unchanged. Scaled WCETs are clamped to at least 1 and imprecise strictly
// below accurate.
func (s *Set) Scale(k float64) (*Set, error) {
	ts := make([]Task, len(s.tasks))
	copy(ts, s.tasks)
	for i := range ts {
		ts[i].WCETAccurate = scaleTime(ts[i].WCETAccurate, k)
		ts[i].WCETImprecise = scaleTime(ts[i].WCETImprecise, k)
		if ts[i].WCETImprecise >= ts[i].WCETAccurate {
			ts[i].WCETImprecise = ts[i].WCETAccurate - 1
		}
		if ts[i].WCETImprecise <= 0 {
			ts[i].WCETImprecise = 1
			if ts[i].WCETAccurate <= 1 {
				ts[i].WCETAccurate = 2
			}
		}
		ts[i].ExecAccurate = scaleDist(ts[i].ExecAccurate, k)
		ts[i].ExecImprecise = scaleDist(ts[i].ExecImprecise, k)
		if len(ts[i].ExtraLevels) > 0 {
			levels := make([]Level, len(ts[i].ExtraLevels))
			copy(levels, ts[i].ExtraLevels)
			prev := ts[i].WCETImprecise
			for l := range levels {
				levels[l].WCET = scaleTime(levels[l].WCET, k)
				if levels[l].WCET >= prev {
					levels[l].WCET = prev - 1
				}
				if levels[l].WCET < 1 {
					levels[l].WCET = 1
					// Keep strict decrease by nudging shallower levels up.
					if prev <= 1 {
						return nil, fmt.Errorf("task: scaling %q by %g collapses its levels", ts[i].Name, k)
					}
				}
				levels[l].Exec = scaleDist(levels[l].Exec, k)
				prev = levels[l].WCET
			}
			ts[i].ExtraLevels = levels
		}
	}
	return New(ts)
}

func scaleTime(t Time, k float64) Time {
	v := Time(float64(t)*k + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

func scaleDist(d Dist, k float64) Dist {
	if d.IsZero() {
		return d
	}
	return Dist{Mean: d.Mean * k, Sigma: d.Sigma * k, Min: d.Min * k, Max: d.Max * k}
}

// String renders a short multi-line summary of the set.
func (s *Set) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "taskset{n=%d P=%d U_acc=%.3f U_imp=%.3f}\n",
		len(s.tasks), s.hyper, s.UtilizationAccurate(), s.UtilizationImprecise())
	for i := range s.tasks {
		t := &s.tasks[i]
		fmt.Fprintf(&b, "  %-14s p=%-8d w=%-7d x=%-7d e=%-8.3g B=%d\n",
			t.Name, t.Period, t.WCETAccurate, t.WCETImprecise, t.Error.Mean,
			t.MaxConsecutiveImprecise)
	}
	return b.String()
}

// DecodeJSON reads a JSON array of Task values from r and builds a Set.
// Unknown fields are rejected to catch typos in hand-written files.
func DecodeJSON(r io.Reader) (*Set, error) {
	var tasks []Task
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tasks); err != nil {
		return nil, fmt.Errorf("task: decoding task set: %w", err)
	}
	return New(tasks)
}

// EncodeJSON writes the set's tasks as an indented JSON array.
func (s *Set) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.tasks)
}

// GCD returns the greatest common divisor of two positive times.
func GCD(a, b Time) Time {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of two positive times, or 0 when an
// input is non-positive or the result would overflow int64 (checked by New).
func LCM(a, b Time) Time {
	if a <= 0 || b <= 0 {
		return 0
	}
	q := a / GCD(a, b)
	if q > math.MaxInt64/b {
		return 0
	}
	return q * b
}
