package pq

import (
	"sort"
	"testing"
	"testing/quick"
)

func intHeap() *Heap[int] {
	return New(func(a, b int) bool { return a < b })
}

func TestEmptyBehaviour(t *testing.T) {
	h := intHeap()
	if !h.Empty() || h.Len() != 0 {
		t.Error("fresh heap not empty")
	}
	if _, ok := h.Peek(); ok {
		t.Error("Peek on empty heap returned ok")
	}
	if _, ok := h.Pop(); ok {
		t.Error("Pop on empty heap returned ok")
	}
}

func TestPushPopOrdering(t *testing.T) {
	h := intHeap()
	in := []int{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	for _, v := range in {
		h.Push(v)
	}
	if h.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", h.Len(), len(in))
	}
	for want := 0; want < len(in); want++ {
		if v, ok := h.Peek(); !ok || v != want {
			t.Fatalf("Peek = %d,%v, want %d", v, ok, want)
		}
		v, ok := h.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = %d,%v, want %d", v, ok, want)
		}
	}
	if !h.Empty() {
		t.Error("heap not empty after draining")
	}
}

func TestDuplicates(t *testing.T) {
	h := intHeap()
	for _, v := range []int{3, 3, 1, 1, 2} {
		h.Push(v)
	}
	got := make([]int, 0, 5)
	for !h.Empty() {
		v, _ := h.Pop()
		got = append(got, v)
	}
	want := []int{1, 1, 2, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestClear(t *testing.T) {
	h := intHeap()
	for i := 0; i < 10; i++ {
		h.Push(i)
	}
	h.Clear()
	if !h.Empty() {
		t.Error("Clear did not empty heap")
	}
	h.Push(42)
	if v, _ := h.Pop(); v != 42 {
		t.Error("heap unusable after Clear")
	}
}

func TestRemoveFunc(t *testing.T) {
	h := intHeap()
	for _, v := range []int{5, 3, 8, 1, 9} {
		h.Push(v)
	}
	v, ok := h.RemoveFunc(func(x int) bool { return x == 8 })
	if !ok || v != 8 {
		t.Fatalf("RemoveFunc(8) = %d,%v", v, ok)
	}
	if _, ok := h.RemoveFunc(func(x int) bool { return x == 100 }); ok {
		t.Error("RemoveFunc matched a missing item")
	}
	var got []int
	for !h.Empty() {
		v, _ := h.Pop()
		got = append(got, v)
	}
	want := []int{1, 3, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("after removal: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after removal got %v, want %v", got, want)
		}
	}
}

func TestRemoveFuncRoot(t *testing.T) {
	h := intHeap()
	for _, v := range []int{4, 7, 5} {
		h.Push(v)
	}
	if v, ok := h.RemoveFunc(func(x int) bool { return x == 4 }); !ok || v != 4 {
		t.Fatalf("remove root failed: %d,%v", v, ok)
	}
	if v, _ := h.Pop(); v != 5 {
		t.Errorf("heap order broken after root removal: got %d", v)
	}
}

func TestRemoveFuncLast(t *testing.T) {
	h := intHeap()
	h.Push(1)
	h.Push(2)
	// items layout: [1 2]; remove index 1 (the last element).
	if v, ok := h.RemoveFunc(func(x int) bool { return x == 2 }); !ok || v != 2 {
		t.Fatalf("remove last failed: %d,%v", v, ok)
	}
	if v, _ := h.Pop(); v != 1 {
		t.Error("heap broken after last removal")
	}
}

func TestStructsWithTieBreak(t *testing.T) {
	type job struct{ deadline, seq int }
	h := New(func(a, b job) bool {
		if a.deadline != b.deadline {
			return a.deadline < b.deadline
		}
		return a.seq < b.seq
	})
	h.Push(job{10, 2})
	h.Push(job{10, 1})
	h.Push(job{5, 3})
	want := []job{{5, 3}, {10, 1}, {10, 2}}
	for _, w := range want {
		v, _ := h.Pop()
		if v != w {
			t.Fatalf("got %+v, want %+v", v, w)
		}
	}
}

// Property: popping everything yields a sorted permutation of the input.
func TestHeapSortProperty(t *testing.T) {
	f := func(in []int) bool {
		h := intHeap()
		for _, v := range in {
			h.Push(v)
		}
		out := make([]int, 0, len(in))
		for !h.Empty() {
			v, _ := h.Pop()
			out = append(out, v)
		}
		if len(out) != len(in) {
			return false
		}
		want := append([]int(nil), in...)
		sort.Ints(want)
		for i := range want {
			if out[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: RemoveFunc of an arbitrary element keeps the heap valid.
func TestRemoveFuncProperty(t *testing.T) {
	f := func(in []uint8, pick uint8) bool {
		if len(in) == 0 {
			return true
		}
		h := intHeap()
		for _, v := range in {
			h.Push(int(v))
		}
		target := int(in[int(pick)%len(in)])
		if _, ok := h.RemoveFunc(func(x int) bool { return x == target }); !ok {
			return false
		}
		prev := -1
		for !h.Empty() {
			v, _ := h.Pop()
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// --- IndexedHeap -------------------------------------------------------------

func indexedHeap() *IndexedHeap[int, int] {
	return NewIndexed[int](func(a, b int) bool { return a < b })
}

func TestIndexedEmptyBehaviour(t *testing.T) {
	h := indexedHeap()
	if !h.Empty() || h.Len() != 0 {
		t.Error("fresh heap not empty")
	}
	if _, ok := h.Peek(); ok {
		t.Error("Peek on empty heap returned ok")
	}
	if _, _, ok := h.Pop(); ok {
		t.Error("Pop on empty heap returned ok")
	}
	if _, ok := h.Remove(1); ok {
		t.Error("Remove on empty heap returned ok")
	}
	if _, ok := h.PeekExcluding(1); ok {
		t.Error("PeekExcluding on empty heap returned ok")
	}
}

func TestIndexedPushPopOrdering(t *testing.T) {
	h := indexedHeap()
	in := []int{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	for i, v := range in {
		if !h.Push(i, v) {
			t.Fatalf("Push(%d) rejected", i)
		}
	}
	if !h.Contains(3) { // forces the lazy index, arming duplicate detection
		t.Fatal("Contains(3) = false")
	}
	if h.Push(3, 99) {
		t.Error("duplicate key accepted")
	}
	if h.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", h.Len(), len(in))
	}
	for want := 0; want < len(in); want++ {
		if v, ok := h.Peek(); !ok || v != want {
			t.Fatalf("Peek = %d,%v, want %d", v, ok, want)
		}
		k, v, ok := h.Pop()
		if !ok || v != want || in[k] != v {
			t.Fatalf("Pop = key %d value %d,%v, want value %d", k, v, ok, want)
		}
	}
	if !h.Empty() {
		t.Error("heap not empty after draining")
	}
}

func TestIndexedRemoveByKey(t *testing.T) {
	h := indexedHeap()
	in := []int{5, 3, 8, 1, 9}
	for i, v := range in {
		h.Push(i, v)
	}
	if v, ok := h.Remove(2); !ok || v != 8 {
		t.Fatalf("Remove(2) = %d,%v, want 8", v, ok)
	}
	if h.Contains(2) {
		t.Error("removed key still present")
	}
	if _, ok := h.Remove(2); ok {
		t.Error("double removal succeeded")
	}
	want := []int{1, 3, 5, 9}
	for _, w := range want {
		_, v, ok := h.Pop()
		if !ok || v != w {
			t.Fatalf("Pop = %d,%v, want %d", v, ok, w)
		}
	}
}

func TestIndexedPeekExcluding(t *testing.T) {
	h := indexedHeap()
	h.Push(0, 4)
	if _, ok := h.PeekExcluding(0); ok {
		t.Error("excluding the only item should find nothing")
	}
	if v, ok := h.PeekExcluding(9); !ok || v != 4 {
		t.Errorf("excluding absent key = %d,%v, want 4", v, ok)
	}
	h.Push(1, 7)
	if v, ok := h.PeekExcluding(0); !ok || v != 7 {
		t.Errorf("two items, root excluded = %d,%v, want 7", v, ok)
	}
	h.Push(2, 5)
	// Root is 4 (key 0); children 7 and 5: excluded root → smaller child.
	if v, ok := h.PeekExcluding(0); !ok || v != 5 {
		t.Errorf("three items, root excluded = %d,%v, want 5", v, ok)
	}
	// Excluding a non-root key leaves the minimum untouched.
	if v, ok := h.PeekExcluding(1); !ok || v != 4 {
		t.Errorf("non-root excluded = %d,%v, want 4", v, ok)
	}
}

func TestIndexedClearKeepsUsable(t *testing.T) {
	h := indexedHeap()
	for i := 0; i < 10; i++ {
		h.Push(i, 100-i)
	}
	h.Clear()
	if !h.Empty() || h.Contains(3) {
		t.Error("Clear left state behind")
	}
	if !h.Push(3, 42) {
		t.Error("key unusable after Clear")
	}
	if _, v, _ := h.Pop(); v != 42 {
		t.Error("heap unusable after Clear")
	}
}

// Property: interleaved keyed removals keep the heap a valid min-heap and
// the position index consistent.
func TestIndexedRemoveProperty(t *testing.T) {
	f := func(in []uint8, picks []uint8) bool {
		h := indexedHeap()
		for i, v := range in {
			h.Push(i, int(v))
		}
		removed := map[int]bool{}
		for _, p := range picks {
			if len(in) == 0 {
				break
			}
			k := int(p) % len(in)
			_, ok := h.Remove(k)
			if ok == removed[k] {
				return false // removal succeeded twice or failed while present
			}
			removed[k] = true
		}
		prev := -1
		count := 0
		for !h.Empty() {
			k, v, _ := h.Pop()
			if v < prev || removed[k] || int(in[k]) != v {
				return false
			}
			prev = v
			count++
		}
		return count == len(in)-len(removed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: PeekExcluding(k) equals the minimum over all items whose key is
// not k, computed by brute force.
func TestIndexedPeekExcludingProperty(t *testing.T) {
	f := func(in []uint8, pick uint8) bool {
		h := indexedHeap()
		for i, v := range in {
			h.Push(i, int(v))
		}
		exclude := 0
		if len(in) > 0 {
			exclude = int(pick) % len(in)
		}
		want, found := 0, false
		for i, v := range in {
			if i == exclude {
				continue
			}
			if !found || int(v) < want {
				want, found = int(v), true
			}
		}
		got, ok := h.PeekExcluding(exclude)
		if ok != found {
			return false
		}
		return !found || got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
