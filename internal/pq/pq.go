// Package pq provides a small generic binary-heap priority queue used for
// EDF ready queues, release event queues and the offline schedulers'
// frontier sets. It is a value-oriented alternative to container/heap: no
// interface boxing, no Push/Pop method boilerplate at call sites.
package pq

// Heap is a binary min-heap ordered by less. The zero value with a nil less
// is not usable; construct with New.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// New returns an empty heap ordered by less.
func New[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len returns the number of queued items.
func (h *Heap[T]) Len() int { return len(h.items) }

// Empty reports whether the heap has no items.
func (h *Heap[T]) Empty() bool { return len(h.items) == 0 }

// Push adds an item.
func (h *Heap[T]) Push(v T) {
	h.items = append(h.items, v)
	h.up(len(h.items) - 1)
}

// Peek returns the minimum item without removing it. ok is false when empty.
func (h *Heap[T]) Peek() (v T, ok bool) {
	if len(h.items) == 0 {
		return v, false
	}
	return h.items[0], true
}

// Pop removes and returns the minimum item. ok is false when empty.
func (h *Heap[T]) Pop() (v T, ok bool) {
	if len(h.items) == 0 {
		return v, false
	}
	v = h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return v, true
}

// Items returns the backing slice in heap order (not sorted). Read-only;
// primarily for policies that must scan all pending items.
func (h *Heap[T]) Items() []T { return h.items }

// Clear removes all items but keeps the capacity.
func (h *Heap[T]) Clear() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

// RemoveFunc removes the first item satisfying match and returns it.
// ok is false when no item matches. O(n) scan plus O(log n) fix-up.
func (h *Heap[T]) RemoveFunc(match func(T) bool) (v T, ok bool) {
	for i := range h.items {
		if match(h.items[i]) {
			v = h.items[i]
			last := len(h.items) - 1
			h.items[i] = h.items[last]
			var zero T
			h.items[last] = zero
			h.items = h.items[:last]
			if i < last {
				if !h.up(i) {
					h.down(i)
				}
			}
			return v, true
		}
	}
	return v, false
}

func (h *Heap[T]) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
		moved = true
	}
	return moved
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			smallest = right
		}
		if !h.less(h.items[smallest], h.items[i]) {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
