// Package pq provides a small generic binary-heap priority queue used for
// EDF ready queues, release event queues and the offline schedulers'
// frontier sets. It is a value-oriented alternative to container/heap: no
// interface boxing, no Push/Pop method boilerplate at call sites.
package pq

// Heap is a binary min-heap ordered by less. The zero value with a nil less
// is not usable; construct with New.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// New returns an empty heap ordered by less.
func New[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len returns the number of queued items.
func (h *Heap[T]) Len() int { return len(h.items) }

// Empty reports whether the heap has no items.
func (h *Heap[T]) Empty() bool { return len(h.items) == 0 }

// Push adds an item.
func (h *Heap[T]) Push(v T) {
	h.items = append(h.items, v)
	h.up(len(h.items) - 1)
}

// Peek returns the minimum item without removing it. ok is false when empty.
func (h *Heap[T]) Peek() (v T, ok bool) {
	if len(h.items) == 0 {
		return v, false
	}
	return h.items[0], true
}

// Pop removes and returns the minimum item. ok is false when empty.
func (h *Heap[T]) Pop() (v T, ok bool) {
	if len(h.items) == 0 {
		return v, false
	}
	v = h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return v, true
}

// Items returns the backing slice in heap order (not sorted). Read-only;
// primarily for policies that must scan all pending items.
func (h *Heap[T]) Items() []T { return h.items }

// Clear removes all items but keeps the capacity.
func (h *Heap[T]) Clear() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

// RemoveFunc removes the first item satisfying match and returns it.
// ok is false when no item matches. O(n) scan plus O(log n) fix-up.
func (h *Heap[T]) RemoveFunc(match func(T) bool) (v T, ok bool) {
	for i := range h.items {
		if match(h.items[i]) {
			v = h.items[i]
			last := len(h.items) - 1
			h.items[i] = h.items[last]
			var zero T
			h.items[last] = zero
			h.items = h.items[:last]
			if i < last {
				if !h.up(i) {
					h.down(i)
				}
			}
			return v, true
		}
	}
	return v, false
}

func (h *Heap[T]) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
		moved = true
	}
	return moved
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			smallest = right
		}
		if !h.less(h.items[smallest], h.items[i]) {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

// IndexedHeap is a binary min-heap whose items are addressable by a unique
// comparable key: Peek is O(1) and removal by key is O(log n), versus the
// O(n) scan RemoveFunc needs on a plain Heap.
//
// Layout: items live in stable slots (nodes) and the heap orders int32 slot
// ids, so a sift step moves one int and updates one int position field. The
// key→slot map is lazy: it is first built when a caller actually addresses
// a non-minimum key (Contains, or Remove of a non-root), and from then on
// maintained with exactly one map write per Push and per Pop/Remove — never
// during sifts. A workload that only ever pushes and removes the minimum
// (an EDF dispatch loop) therefore pays no hashing at all.
//
// Keys must be unique. While the index is live a duplicate Push is detected
// and rejected; before that the check is skipped, so pushing a duplicate
// key is a caller bug that later keyed removals may misresolve.
//
// Determinism note: the heap's internal layout depends on insertion order,
// but when less is a total order (no two distinct items compare equal) the
// minimum — and therefore Peek/Pop/PeekExcluding — is unique regardless of
// layout. The simulator's EDF ordering (deadline, release, task ID, index)
// is such a total order, which is what makes the indexed engine
// bit-identical to the linear-scan reference.
type IndexedHeap[K comparable, T any] struct {
	less    func(a, b T) bool
	nodes   []inode[K, T]
	heap    []int32     // heap position -> slot id into nodes
	free    []int32     // recycled slot ids
	slot    map[K]int32 // key -> slot id; nil semantics are in `indexed`
	indexed bool        // slot map is live (built by ensureIndex)
	scratch []T         // reused by Items
}

// inode is one stable item slot of an IndexedHeap.
type inode[K comparable, T any] struct {
	key  K
	item T
	pos  int32 // current heap position of this slot
}

// NewIndexed returns an empty indexed heap ordered by less.
func NewIndexed[K comparable, T any](less func(a, b T) bool) *IndexedHeap[K, T] {
	return &IndexedHeap[K, T]{less: less}
}

// ensureIndex builds the key→slot map from the live heap entries.
func (h *IndexedHeap[K, T]) ensureIndex() {
	if h.indexed {
		return
	}
	if h.slot == nil {
		h.slot = make(map[K]int32, len(h.heap))
	}
	for _, s := range h.heap {
		h.slot[h.nodes[s].key] = s
	}
	h.indexed = true
}

// Len returns the number of queued items.
func (h *IndexedHeap[K, T]) Len() int { return len(h.heap) }

// Empty reports whether the heap has no items.
func (h *IndexedHeap[K, T]) Empty() bool { return len(h.heap) == 0 }

// Push adds an item under key. It reports false (and stores nothing) when
// the key is already present.
func (h *IndexedHeap[K, T]) Push(key K, v T) bool {
	if h.indexed {
		if _, dup := h.slot[key]; dup {
			return false
		}
	}
	var s int32
	if n := len(h.free); n > 0 {
		s = h.free[n-1]
		h.free = h.free[:n-1]
	} else {
		s = int32(len(h.nodes))
		h.nodes = append(h.nodes, inode[K, T]{})
	}
	i := int32(len(h.heap))
	h.nodes[s] = inode[K, T]{key: key, item: v, pos: i}
	h.heap = append(h.heap, s)
	if h.indexed {
		h.slot[key] = s
	}
	h.up(i)
	return true
}

// Peek returns the minimum item without removing it. ok is false when empty.
func (h *IndexedHeap[K, T]) Peek() (v T, ok bool) {
	if len(h.heap) == 0 {
		return v, false
	}
	return h.nodes[h.heap[0]].item, true
}

// PeekExcluding returns the minimum item whose key differs from exclude.
// Because the root's children are each the minimum of their subtree, this is
// O(1): when the root is excluded the answer is the smaller child.
func (h *IndexedHeap[K, T]) PeekExcluding(exclude K) (v T, ok bool) {
	n := len(h.heap)
	if n == 0 {
		return v, false
	}
	if h.nodes[h.heap[0]].key != exclude {
		return h.nodes[h.heap[0]].item, true
	}
	switch {
	case n == 1:
		return v, false
	case n == 2:
		return h.nodes[h.heap[1]].item, true
	default:
		l, r := h.nodes[h.heap[1]].item, h.nodes[h.heap[2]].item
		if h.less(r, l) {
			return r, true
		}
		return l, true
	}
}

// Pop removes and returns the minimum item and its key. ok is false when
// empty.
func (h *IndexedHeap[K, T]) Pop() (key K, v T, ok bool) {
	if len(h.heap) == 0 {
		return key, v, false
	}
	s := h.heap[0]
	key, v = h.nodes[s].key, h.nodes[s].item
	if h.indexed {
		delete(h.slot, key)
	}
	h.deleteAt(0, s)
	return key, v, true
}

// Remove deletes the item stored under key. ok is false when the key is not
// present. O(log n); O(1) map traffic.
func (h *IndexedHeap[K, T]) Remove(key K) (v T, ok bool) {
	if len(h.heap) == 0 {
		return v, false
	}
	s := h.heap[0]
	if h.nodes[s].key != key {
		h.ensureIndex()
		var present bool
		if s, present = h.slot[key]; !present {
			return v, false
		}
	}
	v = h.nodes[s].item
	if h.indexed {
		delete(h.slot, key)
	}
	h.deleteAt(h.nodes[s].pos, s)
	return v, true
}

// Contains reports whether key is queued.
func (h *IndexedHeap[K, T]) Contains(key K) bool {
	h.ensureIndex()
	_, ok := h.slot[key]
	return ok
}

// Items appends every queued item to an internal scratch buffer and returns
// it, in unspecified order. The slice is read-only and valid only until the
// next call to any IndexedHeap method.
func (h *IndexedHeap[K, T]) Items() []T {
	h.scratch = h.scratch[:0]
	for _, s := range h.heap {
		h.scratch = append(h.scratch, h.nodes[s].item)
	}
	return h.scratch
}

// Clear removes all items but keeps the capacity of the backing arrays, so
// a pooled heap re-used across simulation runs stops allocating once warm.
func (h *IndexedHeap[K, T]) Clear() {
	for i := range h.nodes {
		h.nodes[i] = inode[K, T]{}
	}
	h.nodes = h.nodes[:0]
	h.heap = h.heap[:0]
	h.free = h.free[:0]
	h.scratch = h.scratch[:0]
	clear(h.slot)
	h.indexed = false
}

// deleteAt removes heap position i (holding slot s): the last heap entry
// takes its place and sifts, and the slot returns to the free list.
func (h *IndexedHeap[K, T]) deleteAt(i int32, s int32) {
	h.nodes[s] = inode[K, T]{}
	h.free = append(h.free, s)
	last := int32(len(h.heap) - 1)
	moved := h.heap[last]
	h.heap = h.heap[:last]
	if i == last {
		return
	}
	h.heap[i] = moved
	h.nodes[moved].pos = i
	if !h.up(i) {
		h.down(i)
	}
}

// up sifts heap position i toward the root, reporting whether it moved.
// The sifted slot rides a hole: ancestors shift down one position each and
// the slot is written once at its final position.
func (h *IndexedHeap[K, T]) up(i int32) bool {
	s := h.heap[i]
	start := i
	for i > 0 {
		parent := (i - 1) / 2
		p := h.heap[parent]
		if !h.less(h.nodes[s].item, h.nodes[p].item) {
			break
		}
		h.heap[i] = p
		h.nodes[p].pos = i
		i = parent
	}
	if i == start {
		return false
	}
	h.heap[i] = s
	h.nodes[s].pos = i
	return true
}

// down sifts heap position i toward the leaves, hole-style like up.
func (h *IndexedHeap[K, T]) down(i int32) {
	s := h.heap[i]
	n := int32(len(h.heap))
	start := i
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		c := h.heap[left]
		ci := left
		if right := left + 1; right < n {
			if rc := h.heap[right]; h.less(h.nodes[rc].item, h.nodes[c].item) {
				c, ci = rc, right
			}
		}
		if !h.less(h.nodes[c].item, h.nodes[s].item) {
			break
		}
		h.heap[i] = c
		h.nodes[c].pos = i
		i = ci
	}
	if i != start {
		h.heap[i] = s
		h.nodes[s].pos = i
	}
}
