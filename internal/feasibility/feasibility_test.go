package feasibility

import (
	"math"
	"testing"
	"testing/quick"

	"nprt/internal/task"
)

func set(t *testing.T, tasks ...task.Task) *task.Set {
	t.Helper()
	s, err := task.New(tasks)
	if err != nil {
		t.Fatalf("task.New: %v", err)
	}
	return s
}

func tk(name string, p, w, x task.Time) task.Task {
	return task.Task{Name: name, Period: p, WCETAccurate: w, WCETImprecise: x}
}

func TestUtilizationConditionOnly(t *testing.T) {
	// Single task: condition 2 is vacuous, condition 1 decides.
	s := set(t, tk("a", 10, 5, 2))
	rep := Check(s, task.Accurate)
	if !rep.Schedulable {
		t.Errorf("single task with U=0.5 should be schedulable: %+v", rep.Violations)
	}
	if math.Abs(rep.Utilization-0.5) > 1e-12 {
		t.Errorf("utilization = %g, want 0.5", rep.Utilization)
	}
	if math.Abs(rep.GammaUtil-2) > 1e-12 {
		t.Errorf("gammaUtil = %g, want 2", rep.GammaUtil)
	}
}

func TestOverUtilizationFailsCondition1(t *testing.T) {
	s := set(t, tk("a", 10, 6, 2), tk("b", 10, 6, 2))
	rep := Check(s, task.Accurate)
	if rep.Schedulable {
		t.Fatal("U=1.2 set reported schedulable")
	}
	if len(rep.Violations) == 0 || rep.Violations[0].Condition != 1 {
		t.Errorf("expected condition-1 violation, got %+v", rep.Violations)
	}
	// Imprecise mode (U=0.4) passes both conditions here.
	if !Schedulable(s, task.Imprecise) {
		t.Error("imprecise mode should be schedulable")
	}
}

// The classic non-preemptive blocking pathology: a low-utilization set that
// fails condition 2 because a long job of the large-period task blocks the
// small-period task.
func TestBlockingFailsCondition2DespiteLowUtilization(t *testing.T) {
	s := set(t,
		tk("fast", 10, 2, 1),
		tk("blocker", 100, 30, 9),
	)
	rep := Check(s, task.Accurate)
	if rep.Utilization >= 1 {
		t.Fatalf("test premise broken: U=%g", rep.Utilization)
	}
	if rep.Schedulable {
		t.Fatal("blocking set reported schedulable in accurate mode")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Condition == 2 {
			found = true
			// Demand at L must exceed L.
			if v.Demand <= v.L {
				t.Errorf("violation not actually violating: %+v", v)
			}
		}
	}
	if !found {
		t.Error("no condition-2 violation recorded")
	}
	if !Schedulable(s, task.Imprecise) {
		t.Error("imprecise mode (short blocker) should be schedulable")
	}
}

func TestCondition2BoundaryExact(t *testing.T) {
	// Demand exactly equal to L must pass (<=, not <).
	// tasks: (p=4, w=2), (p=9, w=3). For i=2, L in (4,9):
	// L=5: 3 + floor(4/4)*2 = 5 <= 5 ✓ (exactly tight)
	// L=6: 3 + floor(5/4)*2 = 5 <= 6 ✓
	// L=7: 3 + 2 = 5; L=8: 3 + floor(7/4)*2 = 5.
	s := set(t, tk("a", 4, 2, 1), tk("b", 9, 3, 1))
	rep := Check(s, task.Accurate)
	if !rep.Schedulable {
		t.Errorf("tight-but-feasible set rejected: %+v", rep.Violations)
	}
	// γ_min should be exactly 1 at L=5 (demand 5).
	if math.Abs(rep.GammaMin-1) > 1e-12 {
		t.Errorf("GammaMin = %g, want 1 (tight at L=5)", rep.GammaMin)
	}
	if rep.ArgMinL != 5 {
		t.Errorf("ArgMinL = %d, want 5", rep.ArgMinL)
	}
}

func TestCondition2OneOverBoundaryFails(t *testing.T) {
	// Same as above but w_2 = 4: demand at L=5 is 6 > 5 → infeasible.
	s := set(t, tk("a", 4, 2, 1), tk("b", 9, 4, 1))
	rep := Check(s, task.Accurate)
	if rep.Schedulable {
		t.Error("demand L+1 at L=5 should be infeasible")
	}
}

func TestGammaMinMatchesManualComputation(t *testing.T) {
	// tasks: (p=10, x=2), (p=30, x=6) in imprecise mode.
	// Condition 1: U = 0.2 + 0.2 = 0.4 → γ = 2.5.
	// Condition 2, i=2, L in (10,30):
	//   γ^L = L / (6 + floor((L-1)/10)*2)
	//   L=11: 11/(6+2)=1.375 ; L=20: 20/(6+2)=2.5 ; L=21: 21/(6+4)=2.1 ;
	//   minimum is at L=11: 1.375.
	s := set(t, tk("a", 10, 5, 2), tk("b", 30, 20, 6))
	rep := Check(s, task.Imprecise)
	if !rep.Schedulable {
		t.Fatalf("set should be schedulable imprecise: %+v", rep.Violations)
	}
	if math.Abs(rep.GammaMin-1.375) > 1e-12 {
		t.Errorf("GammaMin = %g, want 1.375", rep.GammaMin)
	}
	if rep.ArgMinTask != 1 || rep.ArgMinL != 11 {
		t.Errorf("argmin = (task %d, L %d), want (1, 11)", rep.ArgMinTask, rep.ArgMinL)
	}
}

func TestIndividualSlacks(t *testing.T) {
	// From TestGammaMinMatchesManualComputation: γ_min = 1.375, so
	// ψ_1 = 0.375*2 = 0.75 → 0 (integer), ψ_2 = 0.375*6 = 2.25 → 2.
	s := set(t, tk("a", 10, 5, 2), tk("b", 30, 20, 6))
	sl := IndividualSlacks(s)
	if sl[0] != 0 || sl[1] != 2 {
		t.Errorf("IndividualSlacks = %v, want [0 2]", sl)
	}
}

func TestIndividualSlacksZeroWhenInfeasible(t *testing.T) {
	s := set(t, tk("a", 10, 9, 6), tk("b", 10, 9, 6))
	sl := IndividualSlacks(s)
	for i, v := range sl {
		if v != 0 {
			t.Errorf("slack[%d] = %d, want 0 for infeasible set", i, v)
		}
	}
}

func TestViolationStringAndCap(t *testing.T) {
	// A grossly infeasible set should cap recorded violations.
	s := set(t,
		tk("a", 10, 9, 8),
		tk("b", 1000, 900, 800),
	)
	rep := Check(s, task.Accurate)
	if rep.Schedulable {
		t.Fatal("set should be infeasible")
	}
	if len(rep.Violations) > maxViolationsKept {
		t.Errorf("violations not capped: %d", len(rep.Violations))
	}
	for _, v := range rep.Violations {
		if v.String() == "" {
			t.Error("empty violation string")
		}
	}
}

func TestDemandCurve(t *testing.T) {
	s := set(t, tk("a", 10, 5, 2), tk("b", 30, 20, 6))
	ls, ds := DemandCurve(s, 1, task.Imprecise)
	if len(ls) != len(ds) || len(ls) != int(30-10-1) {
		t.Fatalf("curve length = %d, want 19", len(ls))
	}
	// Spot-check L=11 → demand 8 and L=21 → demand 10.
	for k, L := range ls {
		switch L {
		case 11:
			if ds[k] != 8 {
				t.Errorf("demand(11) = %d, want 8", ds[k])
			}
		case 21:
			if ds[k] != 10 {
				t.Errorf("demand(21) = %d, want 10", ds[k])
			}
		}
	}
	if ls, ds := DemandCurve(s, 0, task.Accurate); ls != nil || ds != nil {
		t.Error("DemandCurve(0) should be empty")
	}
}

// Property: scaling all WCETs down never turns a schedulable set
// unschedulable (monotonicity of both conditions).
func TestMonotonicityUnderWCETScaling(t *testing.T) {
	f := func(p1, p2, w1, w2 uint8) bool {
		pa := task.Time(p1%30) + 5
		pb := task.Time(p2%60) + 10
		wa := task.Time(w1%uint8(pa)) + 1
		wb := task.Time(w2%uint8(pb)) + 1
		if wa < 2 {
			wa = 2
		}
		if wb < 2 {
			wb = 2
		}
		s, err := task.New([]task.Task{
			tk("a", pa, wa, wa/2), tk("b", pb, wb, wb/2),
		})
		if err != nil {
			return true // invalid random draw; skip
		}
		accurate := Schedulable(s, task.Accurate)
		imprecise := Schedulable(s, task.Imprecise)
		// Imprecise WCETs are at most the accurate WCETs, so accurate
		// schedulability must imply imprecise schedulability.
		return !accurate || imprecise
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: γ_min >= 1 exactly when the imprecise-mode set is schedulable.
func TestGammaMinConsistentWithVerdict(t *testing.T) {
	f := func(p1, p2, x1, x2 uint8) bool {
		pa := task.Time(p1%30) + 5
		pb := task.Time(p2%60) + 10
		xa := task.Time(x1)%pa/2 + 1
		xb := task.Time(x2)%pb/2 + 1
		s, err := task.New([]task.Task{
			{Name: "a", Period: pa, WCETAccurate: xa * 2, WCETImprecise: xa},
			{Name: "b", Period: pb, WCETAccurate: xb * 2, WCETImprecise: xb},
		})
		if err != nil {
			return true
		}
		rep := Check(s, task.Imprecise)
		if rep.Schedulable {
			return rep.GammaMin >= 1
		}
		return rep.GammaMin < 1 || rep.Utilization > 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// FastSchedulable must agree with the exhaustive Check on random sets.
func TestFastSchedulableMatchesExhaustive(t *testing.T) {
	f := func(p1, p2, p3, w1, w2, w3 uint8) bool {
		periods := []task.Time{
			task.Time(p1%29) + 3,
			task.Time(p2%61) + 10,
			task.Time(p3%97) + 20,
		}
		tasks := make([]task.Task, 3)
		for i, p := range periods {
			w := task.Time([]uint8{w1, w2, w3}[i])%p + 1
			x := w / 2
			if x < 1 {
				x = 1
			}
			if x >= w {
				w = x + 1
			}
			if w > p {
				w = p
				if x >= w {
					x = w - 1
				}
				if x < 1 {
					return true // degenerate draw
				}
			}
			tasks[i] = task.Task{Name: "t", Period: p, WCETAccurate: w, WCETImprecise: x}
		}
		s, err := task.New(tasks)
		if err != nil {
			return true
		}
		for _, m := range []task.Mode{task.Accurate, task.Imprecise} {
			if FastSchedulable(s, m) != Schedulable(s, m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

func TestFastSchedulableKnownCases(t *testing.T) {
	// Condition-2 blocker from the package tests.
	s := set(t, tk("fast", 10, 2, 1), tk("blocker", 100, 30, 9))
	if FastSchedulable(s, task.Accurate) {
		t.Error("blocker set accepted")
	}
	if !FastSchedulable(s, task.Imprecise) {
		t.Error("imprecise blocker set rejected")
	}
	// Tight-but-feasible boundary case.
	s = set(t, tk("a", 4, 2, 1), tk("b", 9, 3, 1))
	if !FastSchedulable(s, task.Accurate) {
		t.Error("tight feasible set rejected")
	}
	s = set(t, tk("a", 4, 2, 1), tk("b", 9, 4, 1))
	if FastSchedulable(s, task.Accurate) {
		t.Error("one-over boundary accepted")
	}
}

// Profiles must agree with mode-wise Check in both admission profiles.
func TestProfilesMatchesCheck(t *testing.T) {
	s := task.MustNew([]task.Task{
		{Name: "a", Period: 10, WCETAccurate: 6, WCETImprecise: 2},
		{Name: "b", Period: 20, WCETAccurate: 9, WCETImprecise: 3},
	})
	acc, deep := Profiles(s)
	if want := Check(s, task.Accurate); !sameReport(acc, want) {
		t.Errorf("accurate profile diverges from Check")
	}
	if want := Check(s, task.Deepest); !sameReport(deep, want) {
		t.Errorf("deepest profile diverges from Check")
	}
	if acc.Schedulable {
		t.Error("overloaded accurate profile reported schedulable")
	}
	if !deep.Schedulable {
		t.Error("imprecise profile should be schedulable")
	}
}

// sameReport compares the scalar verdict fields of two Reports.
func sameReport(a, b Report) bool {
	return a.Schedulable == b.Schedulable && a.Utilization == b.Utilization &&
		a.GammaUtil == b.GammaUtil && a.GammaMin == b.GammaMin &&
		a.ArgMinTask == b.ArgMinTask && a.ArgMinL == b.ArgMinL &&
		len(a.Violations) == len(b.Violations)
}
