// Package feasibility implements the non-preemptive schedulability theory
// the paper builds on: Theorem 1 of Jeffay, Stanat and Martel (RTSS 1991)
// for periodic tasks on a uniprocessor, the per-condition scaling factors γ
// of §III, and the individual slack ψ_{i,j} = (γ_min − 1)·x_i that EDF+ESR
// reclaims online.
//
// Condition (1): Σ w_i/p_i ≤ 1.
// Condition (2): for every task i > 1 (tasks sorted by non-decreasing
// period) and every integer L with p_1 < L < p_i,
//
//	w_i + Σ_{j<i} ⌊(L−1)/p_j⌋ · w_j ≤ L.
//
// The check is exact integer arithmetic and pseudo-polynomial (O(n·p_n)),
// exactly as in the paper.
package feasibility

import (
	"fmt"
	"math"
	"sort"

	"nprt/internal/task"
)

// Mode selects which WCET column the analysis uses.
func wcet(t *task.Task, m task.Mode) task.Time { return t.WCET(m) }

// Violation describes one failed Theorem-1 condition.
type Violation struct {
	Condition int       // 1 or 2
	TaskIndex int       // i (0-based, period-sorted) for condition 2; -1 for condition 1
	L         task.Time // interval length for condition 2; 0 for condition 1
	Demand    task.Time // left-hand side of condition 2, 0 for condition 1
	Util      float64   // utilization for condition 1
}

// String renders the violation for diagnostics.
func (v Violation) String() string {
	if v.Condition == 1 {
		return fmt.Sprintf("condition 1: utilization %.4f > 1", v.Util)
	}
	return fmt.Sprintf("condition 2: task %d, L=%d, demand %d > L", v.TaskIndex, v.L, v.Demand)
}

// Report is the full result of a Theorem-1 check.
type Report struct {
	Schedulable bool
	Utilization float64
	Violations  []Violation // empty when schedulable; first few when not

	// GammaUtil is γ from condition 1 (1/utilization); GammaMin is the
	// minimum over γ and every γ_i^L. When the set is schedulable in the
	// analyzed mode, GammaMin >= 1.
	GammaUtil float64
	GammaMin  float64

	// ArgMin records which condition produced GammaMin (diagnostics).
	ArgMinTask int
	ArgMinL    task.Time
}

// maxViolationsKept bounds Report.Violations so a wildly infeasible set does
// not allocate one record per L.
const maxViolationsKept = 16

// Check runs Theorem 1 on the set with every job in the given mode and also
// computes the scaling factors γ of §III. Tasks in the set are already
// period-sorted by construction (task.New).
func Check(s *task.Set, m task.Mode) Report {
	n := s.Len()
	rep := Report{Schedulable: true, ArgMinTask: -1}

	// Condition (1) and γ from it.
	u := 0.0
	for i := 0; i < n; i++ {
		t := s.Task(i)
		u += float64(wcet(t, m)) / float64(t.Period)
	}
	rep.Utilization = u
	rep.GammaUtil = math.Inf(1)
	if u > 0 {
		rep.GammaUtil = 1 / u
	}
	rep.GammaMin = rep.GammaUtil
	if u > 1 {
		rep.Schedulable = false
		rep.Violations = append(rep.Violations, Violation{Condition: 1, TaskIndex: -1, Util: u})
	}

	// Condition (2) and the γ_i^L family, evaluated only at the demand step
	// points. The left-hand side is piecewise constant in L, jumping at
	// L = k·p_j + 1, while both the right-hand side L and γ = L/demand grow
	// strictly within each plateau — so the binding comparison and the γ
	// minimum of every plateau sit at its first L. Visiting plateau starts in
	// ascending order therefore reproduces the exhaustive scan bit for bit
	// (the same GammaMin at the same first-attaining ArgMinL), and the
	// violation list is reconstructed exactly by expanding the violating
	// prefix of each plateau: demand d > L holds precisely for L ≤ d−1.
	// checkExhaustive retains the unit-stride scan as the differential oracle.
	p1 := s.Task(0).Period
	var steps []task.Time // plateau starts, reused across rows
	for i := 1; i < n; i++ {
		ti := s.Task(i)
		if ti.Period < p1+2 {
			continue // interval (p_1, p_i) holds no integer L
		}
		steps = steps[:0]
		steps = append(steps, p1+1)
		for j := 0; j < i; j++ {
			pj := s.Task(j).Period
			for L := pj + 1; L < ti.Period; L += pj {
				if L <= p1+1 {
					continue
				}
				steps = append(steps, L)
			}
		}
		sort.Slice(steps, func(a, b int) bool { return steps[a] < steps[b] })
		uniq := steps[:1]
		for _, L := range steps[1:] {
			if L != uniq[len(uniq)-1] {
				uniq = append(uniq, L)
			}
		}
		for si, L := range uniq {
			demand := wcet(ti, m)
			for j := 0; j < i; j++ {
				tj := s.Task(j)
				demand += (L - 1) / tj.Period * wcet(tj, m)
			}
			if demand > L {
				rep.Schedulable = false
				// Every L' in [L, min(plateauEnd, demand−1)] violates with
				// the same constant demand; emit them all, as the
				// exhaustive scan would, up to the report cap.
				end := ti.Period - 1
				if si+1 < len(uniq) {
					end = uniq[si+1] - 1
				}
				if v := demand - 1; v < end {
					end = v
				}
				for lv := L; lv <= end && len(rep.Violations) < maxViolationsKept; lv++ {
					rep.Violations = append(rep.Violations,
						Violation{Condition: 2, TaskIndex: i, L: lv, Demand: demand})
				}
			}
			if demand > 0 {
				if g := float64(L) / float64(demand); g < rep.GammaMin {
					rep.GammaMin = g
					rep.ArgMinTask = i
					rep.ArgMinL = L
				}
			}
		}
	}
	return rep
}

// checkExhaustive is the original unit-stride Theorem-1 scan over every
// integer L in (p_1, p_i). It is retained solely as the oracle for the
// differential tests proving the step-point Check identical.
func checkExhaustive(s *task.Set, m task.Mode) Report {
	n := s.Len()
	rep := Report{Schedulable: true, ArgMinTask: -1}

	u := 0.0
	for i := 0; i < n; i++ {
		t := s.Task(i)
		u += float64(wcet(t, m)) / float64(t.Period)
	}
	rep.Utilization = u
	rep.GammaUtil = math.Inf(1)
	if u > 0 {
		rep.GammaUtil = 1 / u
	}
	rep.GammaMin = rep.GammaUtil
	if u > 1 {
		rep.Schedulable = false
		rep.Violations = append(rep.Violations, Violation{Condition: 1, TaskIndex: -1, Util: u})
	}

	p1 := s.Task(0).Period
	for i := 1; i < n; i++ {
		ti := s.Task(i)
		for L := p1 + 1; L < ti.Period; L++ {
			demand := wcet(ti, m)
			for j := 0; j < i; j++ {
				tj := s.Task(j)
				demand += (L - 1) / tj.Period * wcet(tj, m)
			}
			if demand > L {
				rep.Schedulable = false
				if len(rep.Violations) < maxViolationsKept {
					rep.Violations = append(rep.Violations,
						Violation{Condition: 2, TaskIndex: i, L: L, Demand: demand})
				}
			}
			if demand > 0 {
				if g := float64(L) / float64(demand); g < rep.GammaMin {
					rep.GammaMin = g
					rep.ArgMinTask = i
					rep.ArgMinL = L
				}
			}
		}
	}
	return rep
}

// Schedulable is a convenience wrapper returning only the verdict.
func Schedulable(s *task.Set, m task.Mode) bool {
	return Check(s, m).Schedulable
}

// Profiles runs Theorem 1 in both admission profiles: every job accurate,
// and every job at its deepest imprecise level — the profile whose pass
// underwrites the EDF+ESR zero-miss guarantee. The runtime admission
// controller (internal/runtime) screens every Add/Remove against this pair:
// accurate-pass means full admission, deepest-only-pass means admission in a
// degraded (imprecision-reliant) regime, deepest-fail means rejection.
func Profiles(s *task.Set) (accurate, deepest Report) {
	return Check(s, task.Accurate), Check(s, task.Deepest)
}

// FastSchedulable evaluates Theorem 1 checking condition (2) only at its
// step points. The left-hand side w_i + Σ ⌊(L−1)/p_j⌋·w_j is piecewise
// constant in L and only jumps at L = k·p_j + 1, while the right-hand side
// grows with L — so within each plateau the binding comparison is at the
// plateau's first L. Checking the step points (plus the interval's lower
// boundary p_1 + 1) is therefore exact, and reduces the scan from O(p_n)
// values of L to O(Σ p_i/p_j) of them. Equivalence with Check is fuzzed in
// the package tests.
func FastSchedulable(s *task.Set, m task.Mode) bool {
	n := s.Len()
	u := 0.0
	for i := 0; i < n; i++ {
		t := s.Task(i)
		u += float64(wcet(t, m)) / float64(t.Period)
	}
	if u > 1 {
		return false
	}
	p1 := s.Task(0).Period
	for i := 1; i < n; i++ {
		ti := s.Task(i)
		demandAt := func(L task.Time) task.Time {
			demand := wcet(ti, m)
			for j := 0; j < i; j++ {
				tj := s.Task(j)
				demand += (L - 1) / tj.Period * wcet(tj, m)
			}
			return demand
		}
		// Candidate L values: interval start and each step point.
		if L := p1 + 1; L < ti.Period && demandAt(L) > L {
			return false
		}
		for j := 0; j < i; j++ {
			pj := s.Task(j).Period
			for L := pj + 1; L < ti.Period; L += pj {
				if L <= p1+1 {
					continue
				}
				if demandAt(L) > L {
					return false
				}
			}
		}
	}
	return true
}

// IndividualSlacks returns ψ_i = (γ_min − 1)·x_i for every task, computed
// from the deepest-imprecision analysis: the slack every job intrinsically
// owns because the schedulability conditions hold with margin γ_min. For
// tasks with the paper's single imprecision level this is exactly the
// imprecise-mode analysis. When the set is not schedulable even at the
// deepest levels (γ_min < 1) all slacks are zero — EDF+ESR then has no
// offline guarantee and runs purely best-effort.
func IndividualSlacks(s *task.Set) []task.Time {
	rep := Check(s, task.Deepest)
	out := make([]task.Time, s.Len())
	if rep.GammaMin <= 1 {
		return out
	}
	margin := rep.GammaMin - 1
	for i := 0; i < s.Len(); i++ {
		out[i] = task.Time(margin * float64(s.Task(i).WCET(task.Deepest)))
	}
	return out
}

// DemandCurve returns, for diagnostic and test purposes, the condition-2
// demand of task i at each L in (p_1, p_i) as parallel slices. Task i must
// have index >= 1.
func DemandCurve(s *task.Set, i int, m task.Mode) (ls []task.Time, demands []task.Time) {
	if i <= 0 || i >= s.Len() {
		return nil, nil
	}
	p1 := s.Task(0).Period
	ti := s.Task(i)
	for L := p1 + 1; L < ti.Period; L++ {
		demand := wcet(ti, m)
		for j := 0; j < i; j++ {
			tj := s.Task(j)
			demand += (L - 1) / tj.Period * wcet(tj, m)
		}
		ls = append(ls, L)
		demands = append(demands, demand)
	}
	return ls, demands
}
