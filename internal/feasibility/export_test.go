package feasibility

// CheckExhaustive exposes the unit-stride oracle to the external
// differential tests (feasibility_test), which also need internal/workload
// and therefore cannot live in this package.
var CheckExhaustive = checkExhaustive
