package feasibility

import (
	"math"
	"sort"

	"nprt/internal/task"
)

// Incremental caches the Theorem-1 condition-2 state of one admitted task
// set so that placement probes — "would this candidate be schedulable on
// this shard?" — do not recompute Profiles from scratch. It is the hot path
// of feasibility-aware bin-packing (internal/cluster), where every Add
// probes every candidate shard.
//
// Cached state: the set in task.New order (stable period sort) and, per
// condition-2 row i ≥ 1, the exact minimum margin min_L (L − demand_i(L))
// over all integer L in (p_1, p_i), for both admission profiles. Because
// demand is piecewise constant, jumping only at L = k·p_j + 1, that minimum
// is attained at a plateau start, so each row scan visits only the demand
// step points (same argument as Check).
//
// A probe for candidate c virtually inserts c at its task.New position (the
// upper bound of its period, mirroring the stable sort of "existing specs +
// appended candidate" that runtime.Add performs) and decides each row:
//
//   - rows before the insertion point are untouched by c (their prior-task
//     sets and intervals are unchanged) — cached verdicts stand;
//   - the candidate's own row is scanned fresh;
//   - a row at or after the insertion point gains at most
//     ⌊(p_i−2)/p_c⌋·w_c demand at any L in its interval, so if its cached
//     margin exceeds that bound the row provably still passes — for every L,
//     including the new step points c introduces — and is skipped;
//     otherwise it is rescanned with c included.
//
// Condition 1 is recomputed per probe as a float sum in merged order, which
// keeps the verdict bit-identical to Check's (float addition order matters).
// A candidate with a period strictly below the current minimum widens every
// row's interval (p_1 changes); that rare case falls back to a full scan.
//
// The verdicts returned by Probe are proven bit-identical to running
// feasibility.Profiles on the rebuilt set by the differential tests in
// incremental_test.go. Incremental is not safe for concurrent use.
type Incremental struct {
	names   []string
	periods []task.Time
	wA, wD  []task.Time // WCET at task.Accurate / task.Deepest

	rows []incRow // rows[i] for i ≥ 1; rows[0] unused

	steps []task.Time // scratch: plateau starts, reused across scans
}

type incRow struct {
	empty            bool // interval (p_1, p_i) holds no integer L
	marginA, marginD task.Time
}

func (r incRow) okA() bool { return r.empty || r.marginA >= 0 }
func (r incRow) okD() bool { return r.empty || r.marginD >= 0 }

// NewIncremental builds the cache for the given tasks (insertion order, as
// runtime.Runtime.Tasks() reports them); the slice is copied and stable
// period-sorted exactly as task.New would.
func NewIncremental(tasks []task.Task) *Incremental {
	inc := &Incremental{}
	inc.Reset(tasks)
	return inc
}

// Reset replaces the cached set.
func (inc *Incremental) Reset(tasks []task.Task) {
	ts := make([]task.Task, len(tasks))
	copy(ts, tasks)
	sort.SliceStable(ts, func(a, b int) bool { return ts[a].Period < ts[b].Period })
	n := len(ts)
	inc.names = make([]string, n)
	inc.periods = make([]task.Time, n)
	inc.wA = make([]task.Time, n)
	inc.wD = make([]task.Time, n)
	for i := range ts {
		inc.names[i] = ts[i].Name
		inc.periods[i] = ts[i].Period
		inc.wA[i] = ts[i].WCET(task.Accurate)
		inc.wD[i] = ts[i].WCET(task.Deepest)
	}
	inc.rows = make([]incRow, n)
	for i := 1; i < n; i++ {
		inc.rows[i] = inc.scanRow(i, -1, 0, 0, 0)
	}
}

// Len returns the number of cached tasks.
func (inc *Incremental) Len() int { return len(inc.periods) }

// Has reports whether a task with the given name is cached. It makes
// mirror maintenance idempotent: after a shard reopen rebuilds the mirror
// from recovered state, an in-flight admission's reconcile can no longer
// know whether its optimistic Add survived — membership is the truth.
func (inc *Incremental) Has(name string) bool {
	for _, n := range inc.names {
		if n == name {
			return true
		}
	}
	return false
}

// Names returns the cached task names in period-sorted cache order.
func (inc *Incremental) Names() []string {
	return append([]string(nil), inc.names...)
}

// Utilization returns the condition-1 utilization of the cached set in the
// given mode, summed in set order (bit-identical to Check's sum).
func (inc *Incremental) Utilization(m task.Mode) float64 {
	u := 0.0
	for i := range inc.periods {
		w := inc.wA[i]
		if m != task.Accurate {
			w = inc.wD[i]
		}
		u += float64(w) / float64(inc.periods[i])
	}
	return u
}

// insertPos returns the task.New position of a candidate with period p: the
// upper bound among equal periods (stable sort of "existing + appended").
func (inc *Incremental) insertPos(p task.Time) int {
	return sort.Search(len(inc.periods), func(i int) bool { return inc.periods[i] > p })
}

// mergedAt resolves merged index mi with a candidate virtually inserted at
// k (k < 0: no candidate; arrays indexed directly).
func (inc *Incremental) mergedAt(mi, k int, cp, cwA, cwD task.Time) (p, wa, wd task.Time) {
	if k < 0 || mi < k {
		return inc.periods[mi], inc.wA[mi], inc.wD[mi]
	}
	if mi == k {
		return cp, cwA, cwD
	}
	return inc.periods[mi-1], inc.wA[mi-1], inc.wD[mi-1]
}

// scanRow computes the exact minimum condition-2 margins of the row at
// merged index mi, with a candidate virtually inserted at k (or k < 0 for
// the cached arrays as-is), visiting only demand plateau starts.
func (inc *Incremental) scanRow(mi, k int, cp, cwA, cwD task.Time) incRow {
	p1, _, _ := inc.mergedAt(0, k, cp, cwA, cwD)
	pi, wiA, wiD := inc.mergedAt(mi, k, cp, cwA, cwD)
	if pi < p1+2 {
		return incRow{empty: true}
	}
	st := inc.steps[:0]
	st = append(st, p1+1)
	for j := 0; j < mi; j++ {
		pj, _, _ := inc.mergedAt(j, k, cp, cwA, cwD)
		for L := pj + 1; L < pi; L += pj {
			if L <= p1+1 {
				continue
			}
			st = append(st, L)
		}
	}
	row := incRow{marginA: math.MaxInt64, marginD: math.MaxInt64}
	for _, L := range st {
		dA, dD := wiA, wiD
		for j := 0; j < mi; j++ {
			pj, wjA, wjD := inc.mergedAt(j, k, cp, cwA, cwD)
			jobs := (L - 1) / pj
			dA += jobs * wjA
			dD += jobs * wjD
		}
		if m := L - dA; m < row.marginA {
			row.marginA = m
		}
		if m := L - dD; m < row.marginD {
			row.marginD = m
		}
	}
	inc.steps = st[:0]
	return row
}

// Probe reports whether the cached set plus candidate c would pass Theorem 1
// in the accurate and deepest profiles — bit-identical to
// feasibility.Profiles(task.New(existing..., c)) verdicts — without
// mutating the cache.
func (inc *Incremental) Probe(c *task.Task) (accurateOK, deepestOK bool) {
	cp := c.Period
	cwA, cwD := c.WCET(task.Accurate), c.WCET(task.Deepest)
	n := len(inc.periods)

	// Condition 1, merged order.
	k := inc.insertPos(cp)
	uA, uD := 0.0, 0.0
	for mi := 0; mi <= n; mi++ {
		p, wa, wd := inc.mergedAt(mi, k, cp, cwA, cwD)
		uA += float64(wa) / float64(p)
		uD += float64(wd) / float64(p)
	}
	okA, okD := !(uA > 1), !(uD > 1)
	if n == 0 {
		return okA, okD
	}

	if cp < inc.periods[0] {
		// Candidate becomes the new first task: every interval (p_1, p_i)
		// widens. Rare; scan all merged rows from scratch.
		for mi := 1; mi <= n && (okA || okD); mi++ {
			row := inc.scanRow(mi, k, cp, cwA, cwD)
			okA = okA && row.okA()
			okD = okD && row.okD()
		}
		return okA, okD
	}

	// Rows before the insertion point: untouched by c.
	for i := 1; i < k && (okA || okD); i++ {
		okA = okA && inc.rows[i].okA()
		okD = okD && inc.rows[i].okD()
	}
	// The candidate's own row (merged index k; k ≥ 1 here).
	if okA || okD {
		row := inc.scanRow(k, k, cp, cwA, cwD)
		okA = okA && row.okA()
		okD = okD && row.okD()
	}
	// Rows at or after the insertion point: skip when the cached margin
	// covers the worst-case added demand, else rescan with c included.
	for i := maxInt(k, 1); i < n && (okA || okD); i++ {
		r := inc.rows[i]
		if r.empty {
			continue // interval unchanged (p_1 fixed): still no L to check
		}
		addA := (inc.periods[i] - 2) / cp * cwA
		addD := (inc.periods[i] - 2) / cp * cwD
		scan := false
		if okA {
			if r.marginA < 0 {
				okA = false // already failing; added demand cannot help
			} else if r.marginA < addA {
				scan = true
			}
		}
		if okD {
			if r.marginD < 0 {
				okD = false
			} else if r.marginD < addD {
				scan = true
			}
		}
		if scan && (okA || okD) {
			row := inc.scanRow(i+1, k, cp, cwA, cwD)
			okA = okA && row.okA()
			okD = okD && row.okD()
		}
	}
	return okA, okD
}

// Add commits candidate c to the cache (the caller has decided to place it,
// e.g. after the shard runtime admitted it). Rows from the insertion point
// on are rescanned so cached margins stay exact.
func (inc *Incremental) Add(c *task.Task) {
	k := inc.insertPos(c.Period)
	inc.names = append(inc.names, "")
	copy(inc.names[k+1:], inc.names[k:])
	inc.names[k] = c.Name
	inc.periods = append(inc.periods, 0)
	copy(inc.periods[k+1:], inc.periods[k:])
	inc.periods[k] = c.Period
	inc.wA = append(inc.wA, 0)
	copy(inc.wA[k+1:], inc.wA[k:])
	inc.wA[k] = c.WCET(task.Accurate)
	inc.wD = append(inc.wD, 0)
	copy(inc.wD[k+1:], inc.wD[k:])
	inc.wD[k] = c.WCET(task.Deepest)
	inc.rows = append(inc.rows, incRow{})
	copy(inc.rows[k+1:], inc.rows[k:])
	from := k
	if k == 0 {
		from = 1 // p_1 changed: every row's interval moved
	}
	for i := from; i < len(inc.periods); i++ {
		inc.rows[i] = inc.scanRow(i, -1, 0, 0, 0)
	}
}

// Remove drops the named task from the cache, rescanning affected rows.
// It reports whether the name was present.
func (inc *Incremental) Remove(name string) bool {
	r := -1
	for i, n := range inc.names {
		if n == name {
			r = i
			break
		}
	}
	if r < 0 {
		return false
	}
	inc.names = append(inc.names[:r], inc.names[r+1:]...)
	inc.periods = append(inc.periods[:r], inc.periods[r+1:]...)
	inc.wA = append(inc.wA[:r], inc.wA[r+1:]...)
	inc.wD = append(inc.wD[:r], inc.wD[r+1:]...)
	inc.rows = inc.rows[:len(inc.rows)-1]
	from := r
	if r == 0 {
		from = 1
	}
	for i := from; i < len(inc.periods); i++ {
		inc.rows[i] = inc.scanRow(i, -1, 0, 0, 0)
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
