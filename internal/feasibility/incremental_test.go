package feasibility_test

import (
	"math/rand"
	"testing"

	"nprt/internal/feasibility"
	"nprt/internal/task"
	"nprt/internal/workload"
)

// reportsEqual compares every field of two Reports, including the full
// violation lists.
func reportsEqual(a, b feasibility.Report) bool {
	if a.Schedulable != b.Schedulable || a.Utilization != b.Utilization ||
		a.GammaUtil != b.GammaUtil || a.GammaMin != b.GammaMin ||
		a.ArgMinTask != b.ArgMinTask || a.ArgMinL != b.ArgMinL ||
		len(a.Violations) != len(b.Violations) {
		return false
	}
	for i := range a.Violations {
		if a.Violations[i] != b.Violations[i] {
			return false
		}
	}
	return true
}

// The step-point Check must reproduce the unit-stride oracle bit for bit on
// every Table-I set in every mode.
func TestCheckStepPointMatchesExhaustiveTableI(t *testing.T) {
	cases, err := workload.CachedCases()
	if err != nil {
		t.Fatalf("CachedCases: %v", err)
	}
	modes := []task.Mode{task.Accurate, task.Imprecise, task.Deepest}
	for _, c := range cases {
		s, err := c.Set()
		if err != nil {
			t.Fatalf("case %s: %v", c.Name, err)
		}
		for _, m := range modes {
			got := feasibility.Check(s, m)
			want := feasibility.CheckExhaustive(s, m)
			if !reportsEqual(got, want) {
				t.Errorf("case %s mode %d: step-point Check diverges:\n got %+v\nwant %+v",
					c.Name, m, got, want)
			}
		}
	}
}

// Random sets, including infeasible ones with long violation runs and
// equal-period ties.
func TestCheckStepPointMatchesExhaustiveRandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(71))
	for trial := 0; trial < 400; trial++ {
		n := 2 + rnd.Intn(4)
		tasks := make([]task.Task, n)
		for i := range tasks {
			p := task.Time(3 + rnd.Intn(120))
			if i > 0 && rnd.Intn(4) == 0 {
				p = tasks[i-1].Period // force period ties
			}
			w := task.Time(1 + rnd.Intn(int(p)+4)) // may exceed p: infeasible draws
			x := w / 2
			if x < 1 {
				x = 1
			}
			if x >= w {
				w = x + 1
			}
			tasks[i] = task.Task{Name: "r", Period: p, WCETAccurate: w, WCETImprecise: x}
		}
		s, err := task.New(tasks)
		if err != nil {
			continue
		}
		for _, m := range []task.Mode{task.Accurate, task.Deepest} {
			got := feasibility.Check(s, m)
			want := feasibility.CheckExhaustive(s, m)
			if !reportsEqual(got, want) {
				t.Fatalf("trial %d mode %d: diverges for %v:\n got %+v\nwant %+v",
					trial, m, tasks, got, want)
			}
		}
	}
}

// probeOracle is what Incremental.Probe promises to match: the verdicts of
// a full Profiles run over task.New(existing specs in insertion order, then
// the candidate appended) — exactly how runtime.Add builds its candidate
// set. The bool reports whether the oracle is defined (task.New succeeded).
func probeOracle(t *testing.T, specs []task.Task, c task.Task) (accOK, deepOK, ok bool) {
	t.Helper()
	cand := append(append([]task.Task(nil), specs...), c)
	s, err := task.New(cand)
	if err != nil {
		return false, false, false
	}
	acc, deep := feasibility.Profiles(s)
	return acc.Schedulable, deep.Schedulable, true
}

func checkProbe(t *testing.T, inc *feasibility.Incremental, specs []task.Task, c task.Task, ctx string) {
	t.Helper()
	wantA, wantD, ok := probeOracle(t, specs, c)
	if !ok {
		return
	}
	gotA, gotD := inc.Probe(&c)
	if gotA != wantA || gotD != wantD {
		t.Fatalf("%s: Probe(%+v) = (%v,%v), Profiles oracle = (%v,%v); resident %v",
			ctx, c, gotA, gotD, wantA, wantD, specs)
	}
}

// Every Table-I set, admitted one task at a time: each probe must match the
// full-recomputation oracle, both for the task about to be admitted and for
// a few synthetic rejectable candidates.
func TestIncrementalProbeMatchesProfilesTableI(t *testing.T) {
	cases, err := workload.CachedCases()
	if err != nil {
		t.Fatalf("CachedCases: %v", err)
	}
	for _, c := range cases {
		s, err := c.Set()
		if err != nil {
			t.Fatalf("case %s: %v", c.Name, err)
		}
		inc := feasibility.NewIncremental(nil)
		var specs []task.Task
		for i := 0; i < s.Len(); i++ {
			tk := *s.Task(i)
			checkProbe(t, inc, specs, tk, c.Name)
			// A hog candidate that should usually fail, and a short-period
			// candidate exercising the new-first-task fallback.
			hog := task.Task{Name: "hog", Period: tk.Period,
				WCETAccurate: tk.Period, WCETImprecise: tk.Period / 2}
			if hog.WCETImprecise < 1 {
				hog.WCETImprecise = 1
			}
			checkProbe(t, inc, specs, hog, c.Name+"/hog")
			tiny := task.Task{Name: "tiny", Period: 2, WCETAccurate: 1, WCETImprecise: 1}
			checkProbe(t, inc, specs, tiny, c.Name+"/tiny")

			inc.Add(&tk)
			specs = append(specs, tk)
		}
		if inc.Len() != s.Len() {
			t.Fatalf("case %s: cache holds %d tasks, want %d", c.Name, inc.Len(), s.Len())
		}
	}
}

// Seeded churn: adds (committed or not) and removes in random order, with
// period ties, degraded residents (accurate-infeasible but deepest-feasible
// sets), and utilization checks along the way.
func TestIncrementalProbeMatchesProfilesRandomChurn(t *testing.T) {
	rnd := rand.New(rand.NewSource(929))
	for trial := 0; trial < 60; trial++ {
		inc := feasibility.NewIncremental(nil)
		var specs []task.Task
		id := 0
		for step := 0; step < 40; step++ {
			if len(specs) > 0 && rnd.Intn(3) == 0 {
				victim := rnd.Intn(len(specs))
				name := specs[victim].Name
				if !inc.Remove(name) {
					t.Fatalf("trial %d: Remove(%q) reported absent", trial, name)
				}
				specs = append(specs[:victim], specs[victim+1:]...)
				continue
			}
			p := task.Time(3 + rnd.Intn(90))
			if len(specs) > 0 && rnd.Intn(4) == 0 {
				p = specs[rnd.Intn(len(specs))].Period // tie with a resident
			}
			w := task.Time(2 + rnd.Intn(int(p)-1))
			x := w / 2
			if x < 1 {
				x = 1
			}
			id++
			c := task.Task{Name: name(id), Period: p, WCETAccurate: w, WCETImprecise: x}
			checkProbe(t, inc, specs, c, "churn")
			if rnd.Intn(2) == 0 {
				inc.Add(&c)
				specs = append(specs, c)
			}
			if len(specs) > 0 && step%7 == 0 {
				s, err := task.New(specs)
				if err != nil {
					t.Fatalf("trial %d: task.New: %v", trial, err)
				}
				for _, m := range []task.Mode{task.Accurate, task.Deepest} {
					if got, want := inc.Utilization(m), feasibility.Check(s, m).Utilization; got != want {
						t.Fatalf("trial %d: Utilization(%d) = %v, want %v", trial, m, got, want)
					}
				}
			}
		}
	}
}

func name(id int) string {
	return "t" + string(rune('a'+id%26)) + string(rune('a'+(id/26)%26)) + string(rune('a'+(id/676)%26))
}

// An empty cache must reduce to the single-task condition-1 check.
func TestIncrementalProbeEmpty(t *testing.T) {
	inc := feasibility.NewIncremental(nil)
	ok := task.Task{Name: "x", Period: 10, WCETAccurate: 10, WCETImprecise: 5}
	if a, d := inc.Probe(&ok); !a || !d {
		t.Errorf("U=1 singleton rejected: (%v,%v)", a, d)
	}
	bad := task.Task{Name: "x", Period: 10, WCETAccurate: 11, WCETImprecise: 5}
	if a, d := inc.Probe(&bad); a || !d {
		t.Errorf("U=1.1 singleton: got (%v,%v), want (false,true)", a, d)
	}
}

func benchmarkSet(b *testing.B, n int) *task.Set {
	b.Helper()
	rnd := rand.New(rand.NewSource(5))
	// Periods from a divisor-friendly menu so the hyper-period stays small.
	menu := []task.Time{200, 300, 400, 600, 800, 1200, 2400, 4800}
	tasks := make([]task.Task, n)
	for i := range tasks {
		p := menu[rnd.Intn(len(menu))]
		w := task.Time(2 + rnd.Intn(int(p)/(2*n)+1))
		tasks[i] = task.Task{Name: name(i + 1), Period: p, WCETAccurate: w, WCETImprecise: w / 2}
	}
	s, err := task.New(tasks)
	if err != nil {
		b.Fatalf("task.New: %v", err)
	}
	return s
}

// BenchmarkProfiles measures the admission screen itself: the step-point
// Check in both profiles on a Table-I-scale set and on larger long-period
// sets where the old unit-stride scan was O(p_n) per row.
func BenchmarkProfiles(b *testing.B) {
	cases, err := workload.CachedCases()
	if err != nil {
		b.Fatalf("CachedCases: %v", err)
	}
	s0, err := cases[0].Set()
	if err != nil {
		b.Fatalf("case set: %v", err)
	}
	sets := map[string]*task.Set{
		"tableI/" + cases[0].Name: s0,
		"rand16":                  benchmarkSet(b, 16),
		"rand64":                  benchmarkSet(b, 64),
	}
	for label, s := range sets {
		b.Run(label, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				acc, deep := feasibility.Profiles(s)
				if acc.GammaMin == 0 || deep.GammaMin == 0 {
					b.Fatal("degenerate report")
				}
			}
		})
	}
}

// BenchmarkIncrementalProbe measures the bin-packing hot path: one probe
// against an established resident set, versus the full Profiles
// recomputation it replaces.
func BenchmarkIncrementalProbe(b *testing.B) {
	for _, n := range []int{16, 64} {
		s := benchmarkSet(b, n)
		tasks := make([]task.Task, s.Len())
		for i := range tasks {
			tasks[i] = *s.Task(i)
		}
		inc := feasibility.NewIncremental(tasks)
		cand := task.Task{Name: "cand", Period: 900, WCETAccurate: 3, WCETImprecise: 1}
		b.Run("probe/"+itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a, d := inc.Probe(&cand)
				if !a && !d {
					b.Fatal("probe rejected benchmark candidate")
				}
			}
		})
		b.Run("full/"+itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				merged := append(append([]task.Task(nil), tasks...), cand)
				ms, err := task.New(merged)
				if err != nil {
					b.Fatal(err)
				}
				acc, _ := feasibility.Profiles(ms)
				if !acc.Schedulable {
					b.Fatal("full probe rejected benchmark candidate")
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 16 {
		return "16"
	}
	return "64"
}
