package preemptive

import (
	"testing"

	"nprt/internal/feasibility"
	"nprt/internal/rng"
	"nprt/internal/task"
)

func mkSet(t *testing.T, tasks ...task.Task) *task.Set {
	t.Helper()
	s, err := task.New(tasks)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSimpleScheduleNoMisses(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 4, WCETImprecise: 1},
		task.Task{Name: "b", Period: 20, WCETAccurate: 10, WCETImprecise: 3},
	)
	// U = 0.4 + 0.5 = 0.9 ≤ 1 → preemptive EDF must succeed.
	res := RunEDF(s, task.Accurate, 10)
	if res.Misses != 0 {
		t.Errorf("%d misses at U=0.9", res.Misses)
	}
	if res.Jobs != 30 {
		t.Errorf("jobs = %d, want 30", res.Jobs)
	}
	if res.Busy != 10*(2*4+10) {
		t.Errorf("busy = %d, want 180", res.Busy)
	}
}

func TestPreemptionHappens(t *testing.T) {
	// Long job started at 0 is preempted by the short-period task's release.
	s := mkSet(t,
		task.Task{Name: "long", Period: 100, Release: 0, WCETAccurate: 50, WCETImprecise: 10},
		task.Task{Name: "short", Period: 20, Release: 5, WCETAccurate: 8, WCETImprecise: 2},
	)
	res := RunEDF(s, task.Accurate, 2)
	if res.Preemptions == 0 {
		t.Error("no preemptions recorded")
	}
	if res.Misses != 0 {
		t.Errorf("%d misses (U = 0.9)", res.Misses)
	}
}

func TestOverloadMisses(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 8, WCETImprecise: 2},
		task.Task{Name: "b", Period: 10, WCETAccurate: 8, WCETImprecise: 2},
	)
	res := RunEDF(s, task.Accurate, 10)
	if res.Misses == 0 {
		t.Error("U=1.6 produced no misses")
	}
	// The same set at imprecise WCETs (U=0.4) is clean.
	if res := RunEDF(s, task.Imprecise, 10); res.Misses != 0 {
		t.Errorf("imprecise run missed %d", res.Misses)
	}
}

// The paper's §II contrast, executable: the Rnd5-class blocking pathology —
// low utilization, non-preemptively infeasible by condition (2) — schedules
// cleanly under preemption.
func TestBlockingPathologyVanishesUnderPreemption(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "fast", Period: 252, WCETAccurate: 40, WCETImprecise: 14},
		task.Task{Name: "mid", Period: 420, WCETAccurate: 70, WCETImprecise: 24},
		task.Task{Name: "blocker", Period: 2520, WCETAccurate: 300, WCETImprecise: 60},
	)
	if feasibility.Schedulable(s, task.Accurate) {
		t.Fatal("premise: non-preemptively infeasible")
	}
	res := RunEDF(s, task.Accurate, 5)
	if res.Misses != 0 {
		t.Errorf("preemptive EDF missed %d deadlines on a U=0.44 set", res.Misses)
	}
	if res.Preemptions == 0 {
		t.Error("the blocker was never preempted")
	}
}

// Liu & Layland, fuzzed: preemptive EDF meets every deadline exactly when
// U ≤ 1 (implicit deadlines, synchronous or offset releases; sufficiency
// tested here, and overload always misses eventually).
func TestLiuLaylandFuzz(t *testing.T) {
	r := rng.New(19731)
	feasibleTested, overloadTested := 0, 0
	for trial := 0; trial < 400; trial++ {
		n := 2 + r.Intn(3)
		tasks := make([]task.Task, n)
		periods := []task.Time{8, 12, 16, 20, 24, 40, 48}
		for i := range tasks {
			p := periods[r.Intn(len(periods))]
			w := task.Time(1 + r.Intn(int(p)))
			x := w / 2
			if x < 1 {
				x = 1
			}
			if x >= w {
				w = x + 1
			}
			tasks[i] = task.Task{Name: "t", Period: p, WCETAccurate: w, WCETImprecise: x,
				Release: task.Time(r.Intn(5))}
		}
		s, err := task.New(tasks)
		if err != nil {
			continue
		}
		u := s.UtilizationAccurate()
		res := RunEDF(s, task.Accurate, 6)
		switch {
		case u <= 1.0:
			if res.Misses != 0 {
				t.Fatalf("trial %d: U=%.3f ≤ 1 but %d misses\n%s", trial, u, res.Misses, s)
			}
			feasibleTested++
		case u > 1.05: // clear overload over a long run must miss
			if res.Misses == 0 && res.Jobs > 10 {
				t.Fatalf("trial %d: U=%.3f > 1 with no misses over %d jobs\n%s",
					trial, u, res.Jobs, s)
			}
			overloadTested++
		}
	}
	if feasibleTested < 50 || overloadTested < 50 {
		t.Fatalf("coverage too thin: %d feasible, %d overloaded", feasibleTested, overloadTested)
	}
}

func TestMissFraction(t *testing.T) {
	if (Result{}).MissFraction() != 0 {
		t.Error("empty result fraction")
	}
	if (Result{Jobs: 4, Misses: 1}).MissFraction() != 0.25 {
		t.Error("fraction wrong")
	}
}
