// Package preemptive is a reference preemptive-EDF simulator. The paper's
// §II contrasts non-preemptive scheduling with the preemptive case, where
// condition (1) — utilization ≤ 1 — is by itself necessary and sufficient
// for implicit-deadline periodic tasks (Liu & Layland). This package makes
// that contrast executable: the package tests validate the classical
// optimality result, and the experiment suite can show a set that
// non-preemptive EDF provably cannot schedule (condition-2 blocking, the
// Rnd5 pathology) running cleanly under preemption.
//
// The simulator is deliberately minimal: WCET-deterministic execution of a
// fixed accuracy mode, virtual time, preemption at release instants (the
// only points where the EDF winner can change).
package preemptive

import (
	"nprt/internal/pq"
	"nprt/internal/task"
)

// Result summarizes a preemptive run.
type Result struct {
	Jobs        int64
	Misses      int64
	Preemptions int64
	Busy        task.Time
	Horizon     task.Time
}

// MissFraction returns misses/jobs.
func (r Result) MissFraction() float64 {
	if r.Jobs == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Jobs)
}

// activeJob is a released job with remaining work.
type activeJob struct {
	job       task.Job
	remaining task.Time
}

// RunEDF simulates preemptive EDF over the given number of hyper-periods
// with every job executing exactly its WCET in mode m. A job that misses
// its deadline keeps running (late completion), which matches the
// non-preemptive engine's accounting.
func RunEDF(s *task.Set, m task.Mode, hyperperiods int) Result {
	if hyperperiods <= 0 {
		hyperperiods = 1
	}
	horizon := s.MaxRelease() + task.Time(hyperperiods)*s.Hyperperiod()

	// Release stream: per task next index, merged on the fly.
	nextIdx := make([]int, s.Len())
	nextRelease := func() (task.Job, bool) {
		best := task.Job{}
		found := false
		for i := 0; i < s.Len(); i++ {
			j := s.Job(i, nextIdx[i])
			if j.Deadline > horizon {
				continue
			}
			if !found || j.Release < best.Release ||
				(j.Release == best.Release && j.Deadline < best.Deadline) {
				best, found = j, true
			}
		}
		return best, found
	}

	ready := pq.New(func(a, b *activeJob) bool {
		if a.job.Deadline != b.job.Deadline {
			return a.job.Deadline < b.job.Deadline
		}
		if a.job.TaskID != b.job.TaskID {
			return a.job.TaskID < b.job.TaskID
		}
		return a.job.Index < b.job.Index
	})

	var res Result
	res.Horizon = horizon
	var now task.Time
	var running *activeJob

	for {
		rel, haveRel := nextRelease()
		if running == nil && ready.Empty() {
			if !haveRel {
				break
			}
			now = rel.Release
		}
		// Admit every job released at or before now.
		for haveRel && rel.Release <= now {
			nextIdx[rel.TaskID]++
			res.Jobs++
			ready.Push(&activeJob{job: rel, remaining: s.Task(rel.TaskID).WCET(m)})
			rel, haveRel = nextRelease()
		}
		if running == nil {
			if next, ok := ready.Pop(); ok {
				running = next
			} else {
				continue // jump to next release at loop top
			}
		}
		// Run until completion or the next release, whichever is first.
		runUntil := now + running.remaining
		if haveRel && rel.Release < runUntil {
			runUntil = rel.Release
		}
		res.Busy += runUntil - now
		running.remaining -= runUntil - now
		now = runUntil
		if running.remaining == 0 {
			if now > running.job.Deadline {
				res.Misses++
			}
			running = nil
			continue
		}
		// A release happened mid-execution: admit and possibly preempt.
		for haveRel && rel.Release <= now {
			nextIdx[rel.TaskID]++
			res.Jobs++
			ready.Push(&activeJob{job: rel, remaining: s.Task(rel.TaskID).WCET(m)})
			rel, haveRel = nextRelease()
		}
		if top, ok := ready.Peek(); ok && top.job.Deadline < running.job.Deadline {
			ready.Pop()
			ready.Push(running)
			running = top
			res.Preemptions++
		}
	}
	return res
}
