// Package policy provides the baseline non-preemptive schedulers the paper
// compares against: EDF with every job in accurate mode (EDF-Accurate) and
// EDF with every job in imprecise mode (EDF-Imprecise). Both dispatch the
// pending job with the earliest deadline; they differ only in the fixed
// accuracy mode.
package policy

import (
	"nprt/internal/sim"
	"nprt/internal/task"
)

// FixedModeEDF is non-preemptive EDF with a constant accuracy mode.
type FixedModeEDF struct {
	ModeChoice task.Mode
	Label      string
}

// NewEDFAccurate returns the EDF-Accurate baseline.
func NewEDFAccurate() *FixedModeEDF {
	return &FixedModeEDF{ModeChoice: task.Accurate, Label: "EDF-Accurate"}
}

// NewEDFImprecise returns the EDF-Imprecise baseline.
func NewEDFImprecise() *FixedModeEDF {
	return &FixedModeEDF{ModeChoice: task.Imprecise, Label: "EDF-Imprecise"}
}

// Name implements sim.Policy.
func (p *FixedModeEDF) Name() string { return p.Label }

// Reset implements sim.Policy.
func (p *FixedModeEDF) Reset(*sim.State) {}

// Pick dispatches the earliest-deadline pending job in the fixed mode.
func (p *FixedModeEDF) Pick(st *sim.State) (sim.Decision, bool) {
	j, ok := st.EDFPick()
	if !ok {
		return sim.Decision{}, false
	}
	return sim.Decision{Job: j, Mode: p.ModeChoice}, true
}

// JobFinished implements sim.Policy.
func (p *FixedModeEDF) JobFinished(*sim.State, sim.Decision, task.Time, task.Time) {}

// FixedModeRM is non-preemptive rate-monotonic (fixed-priority) scheduling
// with a constant accuracy mode: among pending jobs, the one whose task has
// the smallest period wins. It is not part of the paper's comparison —
// the paper is EDF-only — but an RM baseline is the natural extra yardstick
// an RTOS practitioner asks for, and EDF's dominance over it on these
// workloads is itself a classic result worth exposing.
type FixedModeRM struct {
	ModeChoice task.Mode
	Label      string
}

// NewRMAccurate returns non-preemptive rate-monotonic with accurate jobs.
func NewRMAccurate() *FixedModeRM {
	return &FixedModeRM{ModeChoice: task.Accurate, Label: "RM-Accurate"}
}

// NewRMImprecise returns non-preemptive rate-monotonic with imprecise jobs.
func NewRMImprecise() *FixedModeRM {
	return &FixedModeRM{ModeChoice: task.Imprecise, Label: "RM-Imprecise"}
}

// Name implements sim.Policy.
func (p *FixedModeRM) Name() string { return p.Label }

// Reset implements sim.Policy.
func (p *FixedModeRM) Reset(*sim.State) {}

// Pick dispatches the pending job of the smallest-period task.
func (p *FixedModeRM) Pick(st *sim.State) (sim.Decision, bool) {
	pending := st.Pending()
	if len(pending) == 0 {
		return sim.Decision{}, false
	}
	s := st.Set()
	best := pending[0]
	for _, j := range pending[1:] {
		pj, pb := s.Task(j.TaskID).Period, s.Task(best.TaskID).Period
		switch {
		case pj < pb:
			best = j
		case pj == pb:
			// Tie-break: earlier release, then task id, then index.
			if j.Release < best.Release ||
				(j.Release == best.Release && (j.TaskID < best.TaskID ||
					(j.TaskID == best.TaskID && j.Index < best.Index))) {
				best = j
			}
		}
	}
	return sim.Decision{Job: best, Mode: p.ModeChoice}, true
}

// JobFinished implements sim.Policy.
func (p *FixedModeRM) JobFinished(*sim.State, sim.Decision, task.Time, task.Time) {}
