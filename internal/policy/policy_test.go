package policy

import (
	"testing"

	"nprt/internal/sim"
	"nprt/internal/task"
	"nprt/internal/trace"
)

func mkSet(t *testing.T, tasks ...task.Task) *task.Set {
	t.Helper()
	s, err := task.New(tasks)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNamesAndModes(t *testing.T) {
	if NewEDFAccurate().Name() != "EDF-Accurate" {
		t.Errorf("accurate name = %q", NewEDFAccurate().Name())
	}
	if NewEDFImprecise().Name() != "EDF-Imprecise" {
		t.Errorf("imprecise name = %q", NewEDFImprecise().Name())
	}
}

func TestEDFOrderIsEarliestDeadlineFirst(t *testing.T) {
	// Task a has a shorter period; whenever both are pending, a's job must
	// run first.
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 2, WCETImprecise: 1},
		task.Task{Name: "b", Period: 30, WCETAccurate: 6, WCETImprecise: 2},
	)
	res, err := sim.Run(s, NewEDFAccurate(), sim.Config{Hyperperiods: 4, TraceLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	// At t=0 both are pending: a0 (d=10) then b0 (d=30).
	if res.Trace.Entries[0].Job.TaskID != 0 || res.Trace.Entries[1].Job.TaskID != 1 {
		t.Errorf("EDF order wrong at t=0: %v, %v",
			res.Trace.Entries[0].Job, res.Trace.Entries[1].Job)
	}
	// Every entry must respect EDF among what was pending at its start:
	// verified structurally by the deadline-sorted property within equal
	// start availability. Use the trace validator for the basics.
	if vs := trace.Validate(res.Trace, trace.Options{RequireDeadlines: true, WCETBounds: true, Set: s}); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
}

func TestFixedModesProduceFixedWCETs(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 4, WCETImprecise: 2, Error: task.Dist{Mean: 1}},
	)
	acc, err := sim.Run(s, NewEDFAccurate(), sim.Config{Hyperperiods: 5})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Imprecise != 0 || acc.MeanError() != 0 {
		t.Errorf("accurate baseline ran imprecise jobs: %+v", acc)
	}
	imp, err := sim.Run(s, NewEDFImprecise(), sim.Config{Hyperperiods: 5})
	if err != nil {
		t.Fatal(err)
	}
	if imp.Accurate != 0 {
		t.Errorf("imprecise baseline ran accurate jobs")
	}
	if imp.MeanError() != 1 {
		t.Errorf("imprecise mean error = %g, want the task's e=1", imp.MeanError())
	}
	// Busy time reflects the mode's WCET under the worst-case sampler.
	if acc.Busy != 5*4 || imp.Busy != 5*2 {
		t.Errorf("busy = %d/%d, want 20/10", acc.Busy, imp.Busy)
	}
}

func TestCustomLabel(t *testing.T) {
	p := &FixedModeEDF{ModeChoice: task.Imprecise, Label: "my-policy"}
	if p.Name() != "my-policy" {
		t.Errorf("label not honoured")
	}
	s := mkSet(t, task.Task{Name: "a", Period: 10, WCETAccurate: 4, WCETImprecise: 2})
	res, err := sim.Run(s, p, sim.Config{Hyperperiods: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "my-policy" {
		t.Errorf("result policy = %q", res.Policy)
	}
}

func TestDeepestModePolicy(t *testing.T) {
	// A fixed-mode policy at Deepest exercises multi-level tasks.
	s := mkSet(t, task.Task{
		Name: "a", Period: 10, WCETAccurate: 6, WCETImprecise: 4,
		ExtraLevels: []task.Level{{WCET: 2, Error: task.Dist{Mean: 9}}},
	})
	p := &FixedModeEDF{ModeChoice: task.Deepest, Label: "EDF-Deepest"}
	res, err := sim.Run(s, p, sim.Config{Hyperperiods: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Busy != 3*2 {
		t.Errorf("deepest level not used: busy=%d", res.Busy)
	}
	if res.MeanError() != 9 {
		t.Errorf("deepest error = %g, want 9", res.MeanError())
	}
}

func TestRMPrefersShortPeriods(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "slow", Period: 40, WCETAccurate: 6, WCETImprecise: 2},
		task.Task{Name: "fast", Period: 10, WCETAccurate: 2, WCETImprecise: 1},
	)
	res, err := sim.Run(s, NewRMAccurate(), sim.Config{Hyperperiods: 2, TraceLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	// At t=0 both pending: the period-10 task must run first under RM.
	first := res.Trace.Entries[0]
	if s.Task(first.Job.TaskID).Period != 10 {
		t.Errorf("RM dispatched period-%d task first", s.Task(first.Job.TaskID).Period)
	}
	if vs := trace.Validate(res.Trace, trace.Options{WCETBounds: true, Set: s}); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
}

// The classic separation: a set EDF schedules but fixed-priority cannot.
// Non-preemptive, synchronous release: a(p=10,w=6), b(p=14,w=7).
// EDF: a0[0,6] b0[6,13]≤14 ✓, a1 released 10 runs [13,19]? deadline 20 ✓...
// RM runs a first whenever both pend; b eventually misses under WCET while
// EDF keeps meeting deadlines for several hyper-periods.
func TestEDFBeatsRMOnDeadlines(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 6, WCETImprecise: 2},
		task.Task{Name: "b", Period: 14, WCETAccurate: 7, WCETImprecise: 3},
	)
	edf, err := sim.Run(s, NewEDFAccurate(), sim.Config{Hyperperiods: 10})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := sim.Run(s, NewRMAccurate(), sim.Config{Hyperperiods: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rm.Misses.Events <= edf.Misses.Events {
		t.Skipf("workload did not separate RM (%d) from EDF (%d) here",
			rm.Misses.Events, edf.Misses.Events)
	}
}

func TestRMNames(t *testing.T) {
	if NewRMAccurate().Name() != "RM-Accurate" || NewRMImprecise().Name() != "RM-Imprecise" {
		t.Error("RM names wrong")
	}
}
