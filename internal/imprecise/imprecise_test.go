package imprecise

import (
	"math"
	"testing"
	"testing/quick"

	"nprt/internal/rng"
)

func TestDCTRoundTrip(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 50; trial++ {
		px := syntheticBlock(r)
		back := IDCT2D(DCT2D(px))
		for i := range px {
			if math.Abs(px[i]-back[i]) > 1e-9 {
				t.Fatalf("trial %d: round trip diverged at %d: %g vs %g",
					trial, i, px[i], back[i])
			}
		}
	}
}

func TestDCTEnergyPreservation(t *testing.T) {
	// Orthonormal DCT preserves the L2 norm (Parseval).
	r := rng.New(2)
	px := syntheticBlock(r)
	coef := DCT2D(px)
	var ep, ec float64
	for i := range px {
		ep += px[i] * px[i]
		ec += coef[i] * coef[i]
	}
	if math.Abs(ep-ec) > 1e-6*ep {
		t.Errorf("energy not preserved: %g vs %g", ep, ec)
	}
}

func TestIDCTApproxFullKeepMatchesExact(t *testing.T) {
	r := rng.New(3)
	px := syntheticBlock(r)
	coef := DCT2D(px)
	exact := IDCT2D(coef)
	approx := IDCTApprox(coef, BlockSize)
	for i := range exact {
		if exact[i] != approx[i] {
			t.Fatalf("keep=8 differs from exact at %d", i)
		}
	}
	// Clamping: keep out of range behaves like the edge values.
	lo := IDCTApprox(coef, 0)
	lo1 := IDCTApprox(coef, 1)
	hi := IDCTApprox(coef, 99)
	for i := range exact {
		if lo[i] != lo1[i] || hi[i] != exact[i] {
			t.Fatal("keep clamping wrong")
		}
	}
}

func TestIDCTApproxErrorDecreasesWithKeep(t *testing.T) {
	r := rng.New(4)
	errAt := func(keep int) float64 {
		total := 0.0
		rr := r.Split(uint64(keep))
		for b := 0; b < 40; b++ {
			px := syntheticBlock(rr)
			coef := DCT2D(px)
			exact := IDCT2D(coef)
			approx := IDCTApprox(coef, keep)
			for i := range exact {
				total += math.Abs(exact[i] - approx[i])
			}
		}
		return total
	}
	e2, e4, e6 := errAt(2), errAt(4), errAt(6)
	if !(e2 > e4 && e4 > e6) {
		t.Errorf("truncation error not monotone: keep2=%g keep4=%g keep6=%g", e2, e4, e6)
	}
}

func TestIDCTOpCount(t *testing.T) {
	if IDCTOpCount(8) != 2*64*8 {
		t.Errorf("full op count = %d", IDCTOpCount(8))
	}
	if IDCTOpCount(4) != 2*64*4 {
		t.Errorf("keep-4 op count = %d", IDCTOpCount(4))
	}
	if IDCTOpCount(0) != IDCTOpCount(1) || IDCTOpCount(99) != IDCTOpCount(8) {
		t.Error("op count clamping wrong")
	}
}

func TestImageSpecBlocks(t *testing.T) {
	if got := (ImageSpec{Width: 160, Height: 120, Channels: 1}).Blocks(); got != 20*15 {
		t.Errorf("160x120 gray blocks = %d, want 300", got)
	}
	if got := (ImageSpec{Width: 320, Height: 240, Channels: 3}).Blocks(); got != 40*30*3 {
		t.Errorf("320x240 RGB blocks = %d", got)
	}
	// Non-multiple-of-8 dimensions round up.
	if got := (ImageSpec{Width: 12, Height: 9, Channels: 1}).Blocks(); got != 2*2 {
		t.Errorf("12x9 blocks = %d, want 4", got)
	}
}

func TestCharacterizeIDCT(t *testing.T) {
	spec := ImageSpec{Name: "qvga", Width: 320, Height: 240, Channels: 1}
	ch := CharacterizeIDCT(spec, 4, 200, 7)
	if ch.MeanError <= 0 {
		t.Error("truncated IDCT has zero mean error")
	}
	if ch.ImpreciseOps >= ch.AccurateOps {
		t.Errorf("imprecise ops %d not below accurate %d", ch.ImpreciseOps, ch.AccurateOps)
	}
	if ch.AccurateOps != int64(spec.Blocks())*int64(IDCTOpCount(8)) {
		t.Error("accurate op count inconsistent")
	}
	// Determinism.
	ch2 := CharacterizeIDCT(spec, 4, 200, 7)
	if ch2.MeanError != ch.MeanError {
		t.Error("characterization not deterministic")
	}
}

func TestNewtonSolveKnownRoots(t *testing.T) {
	eqs := NewtonEquations()
	// tangent (double-root) family: (x−a)² = 0 → a. Tolerance on f means
	// the root is accurate to √tol.
	tangent := eqs[1]
	res := tangent.Solve(49, 1e-10)
	if !res.Converged || math.Abs(res.Root-49) > 1e-4 {
		t.Errorf("tangent root = %+v", res)
	}
	// cubic: x³ − 2x − a at a=5 → ~2.0946 (classic).
	cubic := eqs[0]
	res = cubic.Solve(5, 1e-10)
	if !res.Converged || math.Abs(res.Root-2.0945514815) > 1e-6 {
		t.Errorf("cubic root = %+v", res)
	}
	// transcendental: x·eˣ = a at a=1 → Ω ≈ 0.5671432904.
	trans := eqs[2]
	res = trans.Solve(1, 1e-12)
	if !res.Converged || math.Abs(res.Root-0.5671432904) > 1e-6 {
		t.Errorf("omega = %+v", res)
	}
}

func TestNewtonLooseToleranceFasterAndLessAccurate(t *testing.T) {
	for _, eq := range NewtonEquations() {
		tight := CharacterizeNR(eq, 1e-8, 1e-10, 300, 11)
		loose := CharacterizeNR(eq, 1.0, 1e-10, 300, 11)
		if loose.MeanIterations >= tight.MeanIterations {
			t.Errorf("%s: loose iterations %g not below tight %g",
				eq.Name, loose.MeanIterations, tight.MeanIterations)
		}
		if loose.MeanError <= tight.MeanError {
			t.Errorf("%s: loose error %g not above tight %g",
				eq.Name, loose.MeanError, tight.MeanError)
		}
		if tight.Unconverged > 0 || loose.Unconverged > 0 {
			t.Errorf("%s: unconverged instances: %d/%d",
				eq.Name, tight.Unconverged, loose.Unconverged)
		}
		if loose.MaxIterations > tight.MaxIterations {
			t.Errorf("%s: loose max iterations above tight", eq.Name)
		}
	}
}

func TestNewtonResidualMeetsCriterion(t *testing.T) {
	f := func(raw uint16) bool {
		eq := NewtonEquations()[0]
		a := eq.ParamLo + (eq.ParamHi-eq.ParamLo)*float64(raw)/65535
		res := eq.Solve(a, 1e-6)
		return !res.Converged || res.Residual <= 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestApproxAdderExactWhenZeroBits(t *testing.T) {
	ad := ApproxAdder{Width: 16, ApproxBits: 0}
	f := func(a, b uint16) bool {
		return ad.Add(uint64(a), uint64(b)) == uint64(a)+uint64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApproxAdderUpperBitsExact(t *testing.T) {
	// With k approximate bits the result's upper part must equal the exact
	// sum of the operands' upper parts (no carry from below by design).
	ad := ApproxAdder{Width: 16, ApproxBits: 6}
	f := func(a, b uint16) bool {
		got := ad.Add(uint64(a), uint64(b))
		wantHigh := (uint64(a) >> 6) + (uint64(b) >> 6)
		return got>>6 == wantHigh
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApproxAdderErrorBounded(t *testing.T) {
	// The error of the lower-part OR is below 2^(k+1): the OR overshoots or
	// undershoots the true low sum by less than the low part's range plus
	// the lost carry.
	ad := ApproxAdder{Width: 20, ApproxBits: 8}
	r := rng.New(5)
	for i := 0; i < 10000; i++ {
		a := r.Uint64() & ((1 << 20) - 1)
		b := r.Uint64() & ((1 << 20) - 1)
		exact := a + b
		approx := ad.Add(a, b)
		var diff uint64
		if approx >= exact {
			diff = approx - exact
		} else {
			diff = exact - approx
		}
		if diff >= 1<<9 {
			t.Fatalf("error %d ≥ 2^9 for %d+%d", diff, a, b)
		}
	}
}

func TestAdderDelayShrinksWithApproximation(t *testing.T) {
	prev := math.MaxInt
	for k := 0; k <= 16; k += 4 {
		d := ApproxAdder{Width: 16, ApproxBits: k}.Delay()
		if d >= prev {
			t.Errorf("delay not decreasing at k=%d: %d >= %d", k, d, prev)
		}
		prev = d
	}
}

func TestCharacterizeAdderMoreBitsMoreError(t *testing.T) {
	c4 := CharacterizeAdder(ApproxAdder{Width: 16, ApproxBits: 4}, 20000, 9)
	c8 := CharacterizeAdder(ApproxAdder{Width: 16, ApproxBits: 8}, 20000, 9)
	if c8.MeanError <= c4.MeanError {
		t.Errorf("8-bit approx error %g not above 4-bit %g", c8.MeanError, c4.MeanError)
	}
	if c4.ErrorRate <= 0 || c4.ErrorRate > 1 {
		t.Errorf("error rate = %g", c4.ErrorRate)
	}
	if c8.MaxError < c8.MeanError {
		t.Error("max below mean")
	}
}
