package imprecise

import (
	"nprt/internal/rng"
	"nprt/internal/stats"
)

// ApproxAdder models an accuracy-configurable approximate adder in the
// spirit of the paper's reference [9] (reconfiguration-oriented approximate
// adder design): the low `ApproxBits` bit positions skip carry propagation —
// each low sum bit is the OR of its operand bits and no carry enters the
// accurate upper part. Reconfiguring ApproxBits trades accuracy for
// (modelled) delay, exactly the knob an accuracy-configurable circuit
// exposes.
type ApproxAdder struct {
	Width      int // operand bit-width (≤ 62)
	ApproxBits int // low bits computed approximately; 0 = exact
}

// Add returns the approximate sum of two non-negative operands.
func (ad ApproxAdder) Add(a, b uint64) uint64 {
	k := ad.ApproxBits
	if k <= 0 {
		return a + b
	}
	if k > ad.Width {
		k = ad.Width
	}
	mask := (uint64(1) << uint(k)) - 1
	low := (a | b) & mask // lower-part OR approximation, no carry out
	high := (a >> uint(k)) + (b >> uint(k))
	return high<<uint(k) | low
}

// Delay returns the modelled critical-path delay in gate units: a
// ripple-carry path over the accurate upper bits plus one gate for the OR
// stage. More approximate bits → shorter path, the speed/accuracy knob of
// the accuracy-configurable circuit.
func (ad ApproxAdder) Delay() int {
	k := ad.ApproxBits
	if k < 0 {
		k = 0
	}
	if k > ad.Width {
		k = ad.Width
	}
	if k == ad.Width {
		return 1
	}
	return 1 + 2*(ad.Width-k)
}

// AdderCharacterization is the Monte-Carlo error profile of one adder
// configuration — the "statistical analysis and pre-characterization" the
// paper uses to obtain each task's mean error e_i prior to scheduling.
type AdderCharacterization struct {
	Width      int
	ApproxBits int
	MeanError  float64 // mean |approx − exact|
	ErrStdDev  float64
	MaxError   float64
	ErrorRate  float64 // fraction of additions with any error
}

// CharacterizeAdder measures the error distribution over `trials` uniform
// random operand pairs.
func CharacterizeAdder(ad ApproxAdder, trials int, seed uint64) AdderCharacterization {
	r := rng.New(seed)
	var acc stats.Accumulator
	wrong := 0
	mask := (uint64(1) << uint(ad.Width)) - 1
	for i := 0; i < trials; i++ {
		a := r.Uint64() & mask
		b := r.Uint64() & mask
		exact := a + b
		approx := ad.Add(a, b)
		var diff float64
		if approx >= exact {
			diff = float64(approx - exact)
		} else {
			diff = float64(exact - approx)
		}
		if diff != 0 {
			wrong++
		}
		acc.Add(diff)
	}
	return AdderCharacterization{
		Width:      ad.Width,
		ApproxBits: ad.ApproxBits,
		MeanError:  acc.Mean(),
		ErrStdDev:  acc.StdDev(),
		MaxError:   acc.Max(),
		ErrorRate:  float64(wrong) / float64(trials),
	}
}
