// Package imprecise provides the realistic imprecise-computation kernels
// behind the paper's IDCT testcase (§VI-A) and Linux-prototype
// Newton–Raphson testcase (§VI-B), plus an accuracy-configurable
// approximate adder in the spirit of the paper's reference [9], used to
// characterize per-task error statistics.
//
// Each kernel has an accurate and an imprecise variant; characterization
// runs both on synthetic inputs, measures the error distribution of the
// imprecise variant, and derives virtual-time execution costs from
// operation counts — the data the workload generator turns into task
// parameters.
package imprecise

import (
	"math"

	"nprt/internal/rng"
	"nprt/internal/stats"
)

// BlockSize is the DCT block edge: classic 8×8 JPEG/MPEG blocks.
const BlockSize = 8

// Block is one 8×8 coefficient or pixel block in row-major order.
type Block [BlockSize * BlockSize]float64

// cosTable[k][n] = cos((2n+1)kπ/16), the DCT-II basis.
var cosTable = func() [BlockSize][BlockSize]float64 {
	var t [BlockSize][BlockSize]float64
	for k := 0; k < BlockSize; k++ {
		for n := 0; n < BlockSize; n++ {
			t[k][n] = math.Cos(float64(2*n+1) * float64(k) * math.Pi / (2 * BlockSize))
		}
	}
	return t
}()

func alpha(k int) float64 {
	if k == 0 {
		return math.Sqrt(1.0 / BlockSize)
	}
	return math.Sqrt(2.0 / BlockSize)
}

// DCT2D computes the forward 2-D DCT-II of a pixel block.
func DCT2D(px *Block) *Block {
	var tmp, out Block
	// Rows.
	for r := 0; r < BlockSize; r++ {
		for k := 0; k < BlockSize; k++ {
			s := 0.0
			for n := 0; n < BlockSize; n++ {
				s += px[r*BlockSize+n] * cosTable[k][n]
			}
			tmp[r*BlockSize+k] = alpha(k) * s
		}
	}
	// Columns.
	for c := 0; c < BlockSize; c++ {
		for k := 0; k < BlockSize; k++ {
			s := 0.0
			for n := 0; n < BlockSize; n++ {
				s += tmp[n*BlockSize+c] * cosTable[k][n]
			}
			out[k*BlockSize+c] = alpha(k) * s
		}
	}
	return &out
}

// IDCT2D computes the accurate inverse 2-D DCT (DCT-III) of a coefficient
// block.
func IDCT2D(coef *Block) *Block {
	return idctKeep(coef, BlockSize)
}

// IDCTApprox computes the imprecise inverse DCT that keeps only the
// top-left keep×keep low-frequency coefficients — the standard
// coefficient-truncation approximation whose cost shrinks quadratically
// with keep. keep is clamped to [1, BlockSize].
func IDCTApprox(coef *Block, keep int) *Block {
	if keep < 1 {
		keep = 1
	}
	if keep > BlockSize {
		keep = BlockSize
	}
	return idctKeep(coef, keep)
}

func idctKeep(coef *Block, keep int) *Block {
	var tmp, out Block
	// Columns first: only the first `keep` rows of coefficients matter.
	for c := 0; c < BlockSize; c++ {
		for n := 0; n < BlockSize; n++ {
			s := 0.0
			for k := 0; k < keep; k++ {
				s += alpha(k) * coef[k*BlockSize+c] * cosTable[k][n]
			}
			tmp[n*BlockSize+c] = s
		}
	}
	// Rows: only the first `keep` columns contribute.
	for r := 0; r < BlockSize; r++ {
		for n := 0; n < BlockSize; n++ {
			s := 0.0
			for k := 0; k < keep; k++ {
				s += alpha(k) * tmp[r*BlockSize+k] * cosTable[k][n]
			}
			out[r*BlockSize+n] = s
		}
	}
	return &out
}

// IDCTOpCount returns the multiply count of one block's inverse transform
// with the given kept coefficients — the virtual cost model: accurate cost
// is IDCTOpCount(8), imprecise IDCTOpCount(keep).
func IDCTOpCount(keep int) int {
	if keep < 1 {
		keep = 1
	}
	if keep > BlockSize {
		keep = BlockSize
	}
	// Two separable passes, each BlockSize×BlockSize output values times
	// `keep` multiply-accumulates.
	return 2 * BlockSize * BlockSize * keep
}

// ImageSpec describes one synthetic video/image workload of the IDCT case.
type ImageSpec struct {
	Name     string
	Width    int
	Height   int
	Channels int // 1 = grayscale, 3 = RGB
}

// Blocks returns the number of 8×8 blocks one frame decodes.
func (im ImageSpec) Blocks() int {
	bw := (im.Width + BlockSize - 1) / BlockSize
	bh := (im.Height + BlockSize - 1) / BlockSize
	return bw * bh * im.Channels
}

// IDCTCharacterization is the measured profile of the truncated IDCT on a
// synthetic image population.
type IDCTCharacterization struct {
	Spec         ImageSpec
	Keep         int
	MeanError    float64 // mean absolute pixel error per block
	ErrStdDev    float64
	AccurateOps  int64 // multiplies per frame, accurate
	ImpreciseOps int64
}

// CharacterizeIDCT runs the accurate and truncated IDCT over `blocks`
// random pixel blocks (natural-image-like smooth content plus noise) and
// measures the per-block mean absolute reconstruction error.
func CharacterizeIDCT(spec ImageSpec, keep, blocks int, seed uint64) IDCTCharacterization {
	r := rng.New(seed)
	var acc stats.Accumulator
	for b := 0; b < blocks; b++ {
		px := syntheticBlock(r)
		coef := DCT2D(px)
		exact := IDCT2D(coef)
		approx := IDCTApprox(coef, keep)
		diff := 0.0
		for i := range exact {
			diff += math.Abs(exact[i] - approx[i])
		}
		acc.Add(diff / float64(len(exact)))
	}
	return IDCTCharacterization{
		Spec:         spec,
		Keep:         keep,
		MeanError:    acc.Mean(),
		ErrStdDev:    acc.StdDev(),
		AccurateOps:  int64(spec.Blocks()) * int64(IDCTOpCount(BlockSize)),
		ImpreciseOps: int64(spec.Blocks()) * int64(IDCTOpCount(keep)),
	}
}

// syntheticBlock produces a natural-image-like block: a smooth gradient
// plus band-limited texture plus noise, in the 0..255 pixel range.
func syntheticBlock(r *rng.Stream) *Block {
	var b Block
	base := 40 + 175*r.Float64()
	gx := (r.Float64() - 0.5) * 30
	gy := (r.Float64() - 0.5) * 30
	fx := 1 + r.Intn(3)
	fy := 1 + r.Intn(3)
	amp := r.Float64() * 25
	for y := 0; y < BlockSize; y++ {
		for x := 0; x < BlockSize; x++ {
			v := base + gx*float64(x) + gy*float64(y) +
				amp*math.Sin(float64(fx*x)*0.7)*math.Cos(float64(fy*y)*0.7) +
				(r.Float64()-0.5)*8
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			b[y*BlockSize+x] = v
		}
	}
	return &b
}
