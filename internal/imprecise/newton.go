package imprecise

import (
	"math"

	"nprt/internal/rng"
	"nprt/internal/stats"
)

// Equation is one nonlinear-equation family for the Newton–Raphson
// testcase (§VI-B): f and its derivative, parameterized by a target value
// drawn per job so each execution solves a fresh instance.
type Equation struct {
	Name string
	// F and DF take the unknown x and the per-instance parameter a.
	F  func(x, a float64) float64
	DF func(x, a float64) float64
	// X0 produces the initial guess for parameter a.
	X0 func(a float64) float64
	// ParamRange is the [lo, hi] range the per-job parameter is drawn from.
	ParamLo, ParamHi float64
}

// NRResult is the outcome of one Newton–Raphson run.
type NRResult struct {
	Root       float64
	Iterations int
	Residual   float64 // |f(root)| at termination
	Converged  bool
}

// MaxNRIterations bounds a run; hitting it marks non-convergence.
const MaxNRIterations = 200

// Solve runs Newton–Raphson on the equation instance until |f| ≤ tol or the
// iteration cap. The convergence criterion tol is the paper's ε̂: tight for
// accurate mode, loose for imprecise mode.
func (eq *Equation) Solve(a, tol float64) NRResult {
	x := eq.X0(a)
	for it := 1; it <= MaxNRIterations; it++ {
		fx := eq.F(x, a)
		if math.Abs(fx) <= tol {
			return NRResult{Root: x, Iterations: it, Residual: math.Abs(fx), Converged: true}
		}
		dfx := eq.DF(x, a)
		if dfx == 0 || math.IsNaN(dfx) || math.IsInf(dfx, 0) {
			break
		}
		x -= fx / dfx
	}
	fx := eq.F(x, a)
	return NRResult{Root: x, Iterations: MaxNRIterations, Residual: math.Abs(fx)}
}

// NewtonEquations returns the three equation families of the prototype
// testcase (Table IV): a cubic polynomial (τ1), a well-behaved tangency
// (double-root) problem whose runtime collapses under a loose criterion
// (τ2 — the paper notes exactly this behaviour for its second task), and a
// transcendental equation (τ3).
func NewtonEquations() []*Equation {
	return []*Equation{
		{
			Name:    "cubic",
			F:       func(x, a float64) float64 { return x*x*x - 2*x - a },
			DF:      func(x, _ float64) float64 { return 3*x*x - 2 },
			X0:      func(float64) float64 { return 10 },
			ParamLo: 2, ParamHi: 60,
		},
		{
			// A double root: Newton converges linearly (error halves per
			// step), so a loose criterion cuts the iteration count sharply —
			// the "well behaved" τ2 of Table IV whose runtime collapses when
			// the criterion is relaxed.
			Name:    "tangent",
			F:       func(x, a float64) float64 { d := x - a; return d * d },
			DF:      func(x, a float64) float64 { return 2 * (x - a) },
			X0:      func(a float64) float64 { return a + 4 },
			ParamLo: 1, ParamHi: 10000,
		},
		{
			Name:    "transcendental",
			F:       func(x, a float64) float64 { return x*math.Exp(x) - a },
			DF:      func(x, _ float64) float64 { return math.Exp(x) * (1 + x) },
			X0:      func(float64) float64 { return 1 },
			ParamLo: 0.5, ParamHi: 50,
		},
	}
}

// NRCharacterization is the measured profile of one equation family under
// a convergence criterion.
type NRCharacterization struct {
	Name           string
	Tol            float64
	MaxIterations  int // worst observed — the WCET basis
	MeanIterations float64
	MeanError      float64 // mean |x_loose − x_tight| over instances
	ErrStdDev      float64
	Unconverged    int
}

// CharacterizeNR runs `trials` random instances of the equation at the
// given tolerance, comparing each loose root against the tight-tolerance
// root to measure the imprecision error — the paper's procedure of deriving
// WCETs from the longest of many random runs.
func CharacterizeNR(eq *Equation, tol, tightTol float64, trials int, seed uint64) NRCharacterization {
	r := rng.New(seed)
	var iters, errs stats.Accumulator
	out := NRCharacterization{Name: eq.Name, Tol: tol}
	for i := 0; i < trials; i++ {
		a := eq.ParamLo + (eq.ParamHi-eq.ParamLo)*r.Float64()
		loose := eq.Solve(a, tol)
		tight := eq.Solve(a, tightTol)
		if !loose.Converged || !tight.Converged {
			out.Unconverged++
			continue
		}
		iters.Add(float64(loose.Iterations))
		errs.Add(math.Abs(loose.Root - tight.Root))
		if loose.Iterations > out.MaxIterations {
			out.MaxIterations = loose.Iterations
		}
	}
	out.MeanIterations = iters.Mean()
	out.MeanError = errs.Mean()
	out.ErrStdDev = errs.StdDev()
	return out
}
