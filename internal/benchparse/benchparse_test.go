package benchparse

import (
	"bytes"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: nprt
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkILPOffline/Rnd11/legacy         	       3	11237764425 ns/op	       200.0 nodes
BenchmarkILPOffline/Rnd11/new-8          	       3	 300709618 ns/op	       200.0 nodes
BenchmarkCumulativeDP 	      20	    318427 ns/op	  174285 B/op	    3193 allocs/op
BenchmarkEngineDispatch/Rnd13/indexed-4  	       1	   1463023 ns/op	      1630 jobs/op
PASS
ok  	nprt	286.823s
`

func TestParseSample(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Env["goos"] != "linux" || rep.Env["cpu"] == "" {
		t.Errorf("env = %v", rep.Env)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("%d results, want 4", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Name != "BenchmarkILPOffline/Rnd11/legacy" || r.Procs != 0 ||
		r.Iterations != 3 || r.Metrics["ns/op"] != 11237764425 || r.Metrics["nodes"] != 200 {
		t.Errorf("result 0 = %+v", r)
	}
	if rep.Results[1].Name != "BenchmarkILPOffline/Rnd11/new" || rep.Results[1].Procs != 8 {
		t.Errorf("procs suffix not split: %+v", rep.Results[1])
	}
	if rep.Results[2].Metrics["allocs/op"] != 3193 {
		t.Errorf("allocs metric lost: %+v", rep.Results[2])
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	rep, err := Parse(strings.NewReader("=== RUN TestFoo\nBenchmarkOddFields 1 2\nnothing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 || rep.Env != nil {
		t.Errorf("noise parsed as results: %+v", rep)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"name": "BenchmarkCumulativeDP"`, `"ns/op": 318427`, `"results"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}
}
