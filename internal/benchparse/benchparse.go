// Package benchparse parses the text format of `go test -bench` into a
// structured report. It understands the standard line shape
//
//	BenchmarkName/sub-8   	     100	  11230 ns/op	  52 B/op	 3 allocs/op	 200 nodes
//
// (a name with the -GOMAXPROCS suffix, an iteration count, then
// value/unit pairs) plus the goos/goarch/pkg/cpu context header.
package benchparse

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Name is the benchmark name with the trailing -GOMAXPROCS procs
	// suffix split off (Benchmark prefix retained).
	Name       string `json:"name"`
	Procs      int    `json:"procs,omitempty"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit → value, e.g. "ns/op" → 11230.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is a full parsed run.
type Report struct {
	// Env carries the goos / goarch / pkg / cpu header lines.
	Env     map[string]string `json:"env,omitempty"`
	Results []Result          `json:"results"`
}

// Parse reads `go test -bench` output. Non-benchmark lines other than the
// context header are ignored, so piping full test output works.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{Env: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+":"); ok {
				rep.Env[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		if res != nil {
			rep.Results = append(rep.Results, *res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Env) == 0 {
		rep.Env = nil
	}
	return rep, nil
}

// parseLine parses one result line; it returns (nil, nil) for lines that
// start with Benchmark but are not results (e.g. a bare name echoed by -v).
func parseLine(line string) (*Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return nil, nil
	}
	name, procs := fields[0], 0
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, nil // not a result line
	}
	res := &Result{Name: name, Procs: procs, Iterations: iters,
		Metrics: make(map[string]float64, (len(fields)-2)/2)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("benchparse: bad value %q in %q", fields[i], line)
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, nil
}

// WriteJSON writes the report with stable indentation.
func WriteJSON(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
