// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI): Table I (testcase characteristics and schedulability),
// Table II (independent-error scheduling results), Figure 3 (error versus
// utilization), Table III (cumulative-error stress tests), Figure 4 (DP(C)
// pruning effectiveness), Table IV (Newton–Raphson task profiles) and
// Figure 5 (prototype error versus utilization).
//
// The harness is shared by cmd/paperbench and the repository's testing.B
// benchmarks; formatting helpers render the same rows the paper reports.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"nprt/internal/cumulative"
	"nprt/internal/esr"
	"nprt/internal/feasibility"
	"nprt/internal/offline"
	"nprt/internal/policy"
	"nprt/internal/rt"
	"nprt/internal/sim"
	"nprt/internal/task"
	"nprt/internal/workload"
)

// Config parameterizes the experiment runs.
type Config struct {
	// Hyperperiods per simulation run. The paper simulates 10K; the default
	// here is 300, which reproduces the same relative ordering in a fraction
	// of the time. cmd/paperbench -full uses 10000.
	Hyperperiods int
	// Seed is the root of all random streams.
	Seed uint64
	// Parallel runs per-case work concurrently (results are deterministic
	// either way; runs are independent).
	Parallel bool
	// ILPWorkers sets the branch-and-bound LP-relaxation worker pool used by
	// the offline ILP solves (0 or 1 = serial). Solver output is bit-identical
	// at every setting; only wall-clock changes.
	ILPWorkers int
}

func (c Config) withDefaults() Config {
	if c.Hyperperiods <= 0 {
		c.Hyperperiods = 300
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// forEachIndex runs fn(0..n-1), fanning the indices out over a bounded pool
// of NumCPU workers when parallel is set. Every driver writes its output
// into index-addressed slots and assembles them afterwards in serial order,
// so parallel and serial runs produce identical artifacts: each simulation
// seeds its own random streams from (case, cfg.Seed) and shares nothing.
func forEachIndex(n int, parallel bool, fn func(i int)) {
	if !parallel || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// --- Table I ---------------------------------------------------------------

// Table1Row is one row of Table I.
type Table1Row struct {
	Case                 string
	Tasks                int
	UtilAcc              float64
	JobsPerP             int
	SchedulableAccurate  bool
	SchedulableImprecise bool
}

// Table1 computes the testcase characteristics and Theorem-1 verdicts.
func Table1() ([]Table1Row, error) {
	cases, err := workload.CachedCases()
	if err != nil {
		return nil, err
	}
	rows := make([]Table1Row, 0, len(cases))
	for _, c := range cases {
		s, err := c.Set()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Case:                 c.Name,
			Tasks:                s.Len(),
			UtilAcc:              s.UtilizationAccurate(),
			JobsPerP:             s.JobsPerHyperperiod(),
			SchedulableAccurate:  feasibility.Schedulable(s, task.Accurate),
			SchedulableImprecise: feasibility.Schedulable(s, task.Imprecise),
		})
	}
	return rows, nil
}

// FormatTable1 renders Table I.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE I. TESTCASE CHARACTERISTICS AND SCHEDULABILITY\n")
	fmt.Fprintf(&b, "%-7s %7s %12s %8s %10s %10s\n",
		"Case", "#tasks", "Utilization", "#jobs/P", "Accurate", "Imprecise")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7s %7d %12.2f %8d %10s %10s\n",
			r.Case, r.Tasks, r.UtilAcc, r.JobsPerP,
			yesNo(r.SchedulableAccurate), yesNo(r.SchedulableImprecise))
	}
	return b.String()
}

func yesNo(v bool) string {
	if v {
		return "Yes"
	}
	return "No"
}

// --- Table II --------------------------------------------------------------

// Table2Methods lists the imprecise-aware methods of Table II, in column
// order. EDF-Accurate appears separately as a deadline-violation column.
var Table2Methods = []string{
	"EDF-Imprecise", "EDF+ESR", "ILP+OA", "ILP+Post+OA", "Flipped EDF",
}

// MethodStat is the per-case mean error and standard deviation.
type MethodStat struct {
	Mean  float64
	Sigma float64
}

// Table2Row is one case's results.
type Table2Row struct {
	Case               string
	EDFAccurateMissPct float64
	Stats              map[string]MethodStat
}

// Table2Result is the full table including the summary rows.
type Table2Result struct {
	Rows        []Table2Row
	AverageMean map[string]float64
	Normalized  map[string]float64 // vs EDF-Imprecise
	AvgMissPct  float64
}

// buildPolicy constructs a fresh policy instance for a method on a set.
func buildPolicy(method string, s *task.Set) (sim.Policy, error) {
	switch method {
	case "EDF-Accurate":
		return policy.NewEDFAccurate(), nil
	case "EDF-Imprecise":
		return policy.NewEDFImprecise(), nil
	case "EDF+ESR":
		return esr.New(), nil
	case "ILP+OA":
		return offline.NewILPOABestEffort(s)
	case "ILP+Post+OA":
		return offline.NewILPPostOABestEffort(s)
	case "Flipped EDF":
		return offline.NewFlippedEDFBestEffort(s)
	case "EDF+ESR(C)":
		return cumulative.NewESR(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown method %q", method)
	}
}

// runMethod simulates one method on one set. The EDF-Accurate baseline runs
// with DropLate: on the over-utilized cases an accurate-only scheduler must
// shed stale jobs to keep a bounded backlog, which is what produces the
// intermediate violation percentages of Table II.
func runMethod(method string, s *task.Set, cfg Config) (*sim.Result, error) {
	p, err := buildPolicy(method, s)
	if err != nil {
		return nil, err
	}
	return sim.Run(s, p, sim.Config{
		Hyperperiods: cfg.Hyperperiods,
		Sampler:      sim.NewRandomSampler(s, cfg.Seed),
		DropLate:     method == "EDF-Accurate",
	})
}

// Table2 runs the independent-error comparison on the full suite.
func Table2(cfg Config) (*Table2Result, error) {
	cfg = cfg.withDefaults()
	cases, err := workload.CachedCases()
	if err != nil {
		return nil, err
	}
	res := &Table2Result{
		AverageMean: map[string]float64{},
		Normalized:  map[string]float64{},
	}
	rows := make([]Table2Row, len(cases))
	errs := make([]error, len(cases))
	runCase := func(i int) {
		c := cases[i]
		s, err := c.Set()
		if err != nil {
			errs[i] = err
			return
		}
		row := Table2Row{Case: c.Name, Stats: map[string]MethodStat{}}
		acc, err := runMethod("EDF-Accurate", s, cfg)
		if err != nil {
			errs[i] = fmt.Errorf("%s/EDF-Accurate: %w", c.Name, err)
			return
		}
		row.EDFAccurateMissPct = acc.MissPercent()
		for _, m := range Table2Methods {
			r, err := runMethod(m, s, cfg)
			if err != nil {
				errs[i] = fmt.Errorf("%s/%s: %w", c.Name, m, err)
				return
			}
			row.Stats[m] = MethodStat{Mean: r.MeanError(), Sigma: r.ErrorStdDev()}
		}
		rows[i] = row
	}
	forEachIndex(len(cases), cfg.Parallel, runCase)
	for i := range cases {
		if errs[i] != nil {
			return nil, errs[i]
		}
		res.Rows = append(res.Rows, rows[i])
	}
	for _, m := range Table2Methods {
		sum := 0.0
		for _, row := range res.Rows {
			sum += row.Stats[m].Mean
		}
		res.AverageMean[m] = sum / float64(len(res.Rows))
	}
	base := res.AverageMean["EDF-Imprecise"]
	for _, m := range Table2Methods {
		if base > 0 {
			res.Normalized[m] = res.AverageMean[m] / base
		}
	}
	miss := 0.0
	for _, row := range res.Rows {
		miss += row.EDFAccurateMissPct
	}
	res.AvgMissPct = miss / float64(len(res.Rows))
	return res, nil
}

// FormatTable2 renders Table II.
func FormatTable2(t *Table2Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE II. SIMULATION RESULTS FOR PERIODIC TASKS WITH INDEPENDENT ERRORS\n")
	fmt.Fprintf(&b, "%-7s %10s", "Case", "Acc-miss%")
	for _, m := range Table2Methods {
		fmt.Fprintf(&b, " %13s %7s", m, "σ")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-7s %9.0f%%", row.Case, row.EDFAccurateMissPct)
		for _, m := range Table2Methods {
			st := row.Stats[m]
			fmt.Fprintf(&b, " %13.2f %7.2f", st.Mean, st.Sigma)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-7s %9.0f%%", "Average", t.AvgMissPct)
	for _, m := range Table2Methods {
		fmt.Fprintf(&b, " %13.2f %7s", t.AverageMean[m], "-")
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-7s %10s", "Normal.", "-")
	for _, m := range Table2Methods {
		fmt.Fprintf(&b, " %13.2f %7s", t.Normalized[m], "-")
	}
	b.WriteByte('\n')
	return b.String()
}

// --- Figure 3 ---------------------------------------------------------------

// SeriesPoint is one (utilization, mean error) sample of a method's curve.
type SeriesPoint struct {
	Utilization float64
	MeanError   float64
}

// FigResult is a family of per-method curves.
type FigResult struct {
	Case   string
	Series map[string][]SeriesPoint
}

// Fig3Utilizations is the default sweep (all above 1, as in the paper).
var Fig3Utilizations = []float64{1.1, 1.3, 1.5, 1.7, 1.9, 2.1}

// Fig3 sweeps accurate-mode utilization on the Rnd7-class case and records
// each method's mean error — the error/utilization tradeoff of Figure 3.
func Fig3(cfg Config) (*FigResult, error) {
	cfg = cfg.withDefaults()
	c, err := workload.CaseByName("Rnd7")
	if err != nil {
		return nil, err
	}
	s, err := c.Set()
	if err != nil {
		return nil, err
	}
	sets, err := workload.UtilizationSweep(s, Fig3Utilizations)
	if err != nil {
		return nil, err
	}
	return sweepMethods(cfg, c.Name, sets, Fig3Utilizations, Table2Methods,
		func(m string, scaled *task.Set, _ int) (*sim.Result, error) {
			return runMethod(m, scaled, cfg)
		})
}

// sweepMethods runs every method on every scaled set of a utilization sweep
// — the shared shape of Figures 3 and 5 — fanning the (set, method) grid
// over the worker pool when cfg.Parallel is set. Results land in
// grid-indexed slots, so the assembled series are identical either way.
func sweepMethods(cfg Config, name string, sets []*task.Set, utils []float64,
	methods []string, run func(m string, scaled *task.Set, setIdx int) (*sim.Result, error),
) (*FigResult, error) {
	type cell struct {
		res *sim.Result
		err error
	}
	grid := make([]cell, len(sets)*len(methods))
	forEachIndex(len(grid), cfg.Parallel, func(k int) {
		si, mi := k/len(methods), k%len(methods)
		r, err := run(methods[mi], sets[si], si)
		grid[k] = cell{res: r, err: err}
	})
	out := &FigResult{Case: name, Series: map[string][]SeriesPoint{}}
	for si := range sets {
		for mi, m := range methods {
			c := grid[si*len(methods)+mi]
			if c.err != nil {
				return nil, fmt.Errorf("sweep %s U=%.2f %s: %w", name, utils[si], m, c.err)
			}
			out.Series[m] = append(out.Series[m],
				SeriesPoint{Utilization: utils[si], MeanError: c.res.MeanError()})
		}
	}
	return out, nil
}

// FormatFig renders a curve family as aligned columns.
func FormatFig(title string, f *FigResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (case %s)\n", title, f.Case)
	methods := make([]string, 0, len(f.Series))
	for m := range f.Series {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	fmt.Fprintf(&b, "%-12s", "Utilization")
	for _, m := range methods {
		fmt.Fprintf(&b, " %14s", m)
	}
	b.WriteByte('\n')
	if len(methods) == 0 {
		return b.String()
	}
	for i, pt := range f.Series[methods[0]] {
		fmt.Fprintf(&b, "%-12.2f", pt.Utilization)
		for _, m := range methods {
			fmt.Fprintf(&b, " %14.3f", f.Series[m][i].MeanError)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// --- Table III ---------------------------------------------------------------

// Table3Row is one case of the cumulative-error stress test.
type Table3Row struct {
	Case             string
	ESRCViolationPct float64
	DPFeasible       bool
	DPProofComplete  bool // false when the DP search was truncated
}

// Table3 runs EDF+ESR(C) and DP(C) on the full suite. DP(C) searches one
// hyper-period (super-period factor capped at 1) with bounded frontiers so
// the 163-job cases stay tractable; DPProofComplete reports whether the
// verdict is exact.
func Table3(cfg Config) ([]Table3Row, error) {
	cfg = cfg.withDefaults()
	cases, err := workload.CachedCases()
	if err != nil {
		return nil, err
	}
	rows := make([]Table3Row, len(cases))
	errs := make([]error, len(cases))
	forEachIndex(len(cases), cfg.Parallel, func(i int) {
		c := cases[i]
		s, err := c.Set()
		if err != nil {
			errs[i] = err
			return
		}
		p := cumulative.NewESR()
		if _, err := sim.Run(s, p, sim.Config{
			Hyperperiods: cfg.Hyperperiods,
			Sampler:      sim.NewRandomSampler(s, cfg.Seed),
		}); err != nil {
			errs[i] = fmt.Errorf("%s/ESR(C): %w", c.Name, err)
			return
		}
		_, stats, err := cumulative.Solve(s, cumulative.Options{
			SuperPeriodFactorCap: 1,
			MaxStatesPerLevel:    5000,
		})
		if err != nil {
			errs[i] = fmt.Errorf("%s/DP(C): %w", c.Name, err)
			return
		}
		rows[i] = Table3Row{
			Case:             c.Name,
			ESRCViolationPct: p.ViolationPercent(),
			DPFeasible:       stats.Feasible,
			DPProofComplete:  !stats.Truncated,
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// FormatTable3 renders Table III.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE III. STRESS TEST RESULTS FOR PERIODIC TASKS WITH CUMULATIVE ERRORS\n")
	fmt.Fprintf(&b, "%-7s %28s %15s\n", "Case", "EDF+ESR(C) err-violations", "DP(C) feasible")
	for _, r := range rows {
		feas := yesNo(r.DPFeasible)
		if !r.DPProofComplete && !r.DPFeasible {
			feas += "*" // truncated search: infeasibility not proven
		}
		fmt.Fprintf(&b, "%-7s %27.0f%% %15s\n", r.Case, r.ESRCViolationPct, feas)
	}
	b.WriteString("(* = frontier truncated; verdict not a proof)\n")
	return b.String()
}

// --- Figure 4 ---------------------------------------------------------------

// Fig4Result holds the candidate-solution counts per DP level.
type Fig4Result struct {
	Case             string
	WithPruning      []int
	WithoutPruning   []int
	TruncatedNoPrune bool
}

// Fig4 runs DP(C) with and without the §V-B pruning rules and reports the
// per-level candidate counts. The paper plots its Rnd7; our reconstructed
// Rnd7 is so over-budgeted that both searches die within a few levels, so
// the figure uses Rnd9 (DP-feasible, 24 jobs per hyper-period), where the
// unpruned frontier grows exponentially into its cap while pruning keeps it
// four orders of magnitude smaller — the paper's qualitative picture.
func Fig4(cfg Config) (*Fig4Result, error) {
	c, err := workload.CaseByName("Rnd9")
	if err != nil {
		return nil, err
	}
	s, err := c.Set()
	if err != nil {
		return nil, err
	}
	// The two DP searches (pruned and unpruned) are independent; run them on
	// the pool when parallelism is requested.
	opts := []cumulative.Options{
		{SuperPeriodFactorCap: 1, MaxStatesPerLevel: 1 << 20},
		{SuperPeriodFactorCap: 1, MaxStatesPerLevel: 20000,
			DisableDominance: true, DisableUtilization: true},
	}
	var solveStats [2]*cumulative.SearchStats
	var solveErrs [2]error
	forEachIndex(len(opts), cfg.Parallel, func(i int) {
		_, solveStats[i], solveErrs[i] = cumulative.Solve(s, opts[i])
	})
	for _, err := range solveErrs {
		if err != nil {
			return nil, err
		}
	}
	with, without := solveStats[0], solveStats[1]
	return &Fig4Result{
		Case:             c.Name,
		WithPruning:      with.LevelCounts,
		WithoutPruning:   without.LevelCounts,
		TruncatedNoPrune: without.Truncated,
	}, nil
}

// FormatFig4 renders the pruning comparison.
func FormatFig4(f *Fig4Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 4. CANDIDATE PARTIAL SOLUTIONS PER LEVEL (case %s)\n", f.Case)
	fmt.Fprintf(&b, "%-8s %14s %16s\n", "jobs", "with pruning", "without pruning")
	n := len(f.WithPruning)
	if len(f.WithoutPruning) > n {
		n = len(f.WithoutPruning)
	}
	for i := 0; i < n; i++ {
		w, wo := 0, 0
		if i < len(f.WithPruning) {
			w = f.WithPruning[i]
		}
		if i < len(f.WithoutPruning) {
			wo = f.WithoutPruning[i]
		}
		fmt.Fprintf(&b, "%-8d %14d %16d\n", i+1, w, wo)
	}
	if f.TruncatedNoPrune {
		b.WriteString("(without-pruning frontier truncated at its cap)\n")
	}
	return b.String()
}

// --- Table IV & Figure 5 -----------------------------------------------------

// Table4 returns the Newton–Raphson task profiles.
func Table4() ([]workload.NRTaskInfo, error) {
	_, infos, err := workload.NewtonCase()
	return infos, err
}

// FormatTable4 renders Table IV.
func FormatTable4(infos []workload.NRTaskInfo) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE IV. TASKS IN THE PROTOTYPE (virtual µs)\n")
	fmt.Fprintf(&b, "%-20s %14s %12s %15s %12s %12s\n",
		"Task", "AccurateWCET", "ε̂_accurate", "ImpreciseWCET", "ε̂_imprecise", "mean error")
	for _, in := range infos {
		fmt.Fprintf(&b, "%-20s %14d %12.0e %15d %12g %12.4g\n",
			in.Name, in.AccurateWCET, in.TolAccurate, in.ImpreciseWCET, in.TolImprecise, in.MeanError)
	}
	return b.String()
}

// Fig5Methods are the methods the prototype experiment compares.
var Fig5Methods = []string{"EDF-Imprecise", "EDF+ESR", "Flipped EDF", "ILP+Post+OA"}

// Fig5Utilizations is the default prototype sweep.
var Fig5Utilizations = []float64{0.8, 0.96, 1.1, 1.3, 1.5}

// Fig5 reruns the prototype (real Newton–Raphson execution under a virtual
// clock) across a utilization sweep. Scaling multiplies both the WCETs and
// the per-iteration virtual cost, which is the virtual-time analogue of
// running the same computation on a slower/faster processor.
func Fig5(cfg Config) (*FigResult, error) {
	cfg = cfg.withDefaults()
	c, infos, err := workload.NewtonCase()
	if err != nil {
		return nil, err
	}
	s, err := c.Set()
	if err != nil {
		return nil, err
	}
	baseU := s.UtilizationAccurate()
	sets, err := workload.UtilizationSweep(s, Fig5Utilizations)
	if err != nil {
		return nil, err
	}
	hp := cfg.Hyperperiods
	if hp > 100 {
		hp = 100 // real kernel execution per job; keep the sweep bounded
	}
	// Pre-scale the per-task iteration costs once per utilization point;
	// each grid cell then owns an immutable info slice and a private sampler.
	scaledInfos := make([][]workload.NRTaskInfo, len(sets))
	for i := range sets {
		k := Fig5Utilizations[i] / baseU
		si := make([]workload.NRTaskInfo, len(infos))
		copy(si, infos)
		for j := range si {
			si[j].IterCostMicros *= k
		}
		scaledInfos[i] = si
	}
	return sweepMethods(cfg, "Newton", sets, Fig5Utilizations, Fig5Methods,
		func(m string, scaled *task.Set, setIdx int) (*sim.Result, error) {
			p, err := buildPolicy(m, scaled)
			if err != nil {
				return nil, err
			}
			return sim.Run(scaled, p, sim.Config{
				Hyperperiods: hp,
				Sampler:      rt.NewNRSampler(scaledInfos[setIdx], cfg.Seed),
			})
		})
}
