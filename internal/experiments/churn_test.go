package experiments

import (
	"reflect"
	"testing"
)

func TestGenerateChurnTapeDeterministic(t *testing.T) {
	a := GenerateChurnTape(7, 500)
	b := GenerateChurnTape(7, 500)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different tapes")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated tape invalid: %v", err)
	}
	c := GenerateChurnTape(8, 500)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical tapes")
	}

	// The mix must actually contain every op kind at this length.
	ops := map[string]int{}
	for _, ev := range a.Events {
		ops[ev.Op]++
	}
	for _, op := range []string{"add", "remove", "overload"} {
		if ops[op] == 0 {
			t.Errorf("500-event tape contains no %q events (mix %v)", op, ops)
		}
	}
}

// TestChurnSoak is the short-mode acceptance check: zero clean-epoch
// misses, bit-identical engines, and a run that exercised the interesting
// paths (rejections, stale removes, governor sheds).
func TestChurnSoak(t *testing.T) {
	events := 400
	if !testing.Short() {
		events = 1500
	}
	r, err := ChurnSoak(Config{Seed: 1}, events, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !row.EnginesMatch {
			t.Errorf("seed %d: engines diverged", row.Seed)
		}
		if row.MissesClean != 0 {
			t.Errorf("seed %d: %d deadline misses outside degraded windows", row.Seed, row.MissesClean)
		}
		if row.Admits == 0 || row.Jobs == 0 {
			t.Errorf("seed %d: soak admitted/ran nothing: %+v", row.Seed, row)
		}
		if row.Misses != row.MissesClean+row.MissesDegraded {
			t.Errorf("seed %d: miss accounting inconsistent: %+v", row.Seed, row)
		}
	}
	// Across the tapes, churn must have hit rejections and stale removes —
	// otherwise the tape generator stopped stressing admission control.
	var rejects, stale, sheds int64
	for _, row := range r.Rows {
		rejects += row.Rejects
		stale += row.StaleRemoves
		sheds += row.Sheds
	}
	if rejects == 0 {
		t.Error("soak never drove the set to a rejection")
	}
	if stale == 0 {
		t.Error("soak never issued a stale remove")
	}
	if sheds == 0 {
		t.Error("soak never made the governor shed")
	}

	if s := FormatChurn(r); len(s) == 0 {
		t.Error("empty churn summary")
	}
}

// TestChurnSoakParallelEqualsSerial: the artifact is a pure function of the
// seed regardless of the worker pool.
func TestChurnSoakParallelEqualsSerial(t *testing.T) {
	serial, err := ChurnSoak(Config{Seed: 5}, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ChurnSoak(Config{Seed: 5, Parallel: true}, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel != serial:\n%+v\n%+v", serial, parallel)
	}
}
