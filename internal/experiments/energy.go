package experiments

import (
	"fmt"
	"strings"

	"nprt/internal/workload"
)

// EnergyRow quantifies the low-power angle of imprecise computing (§I of
// the paper frames approximate computing as an energy technique): with
// energy modelled as proportional to processor busy time, each method
// trades mean error against the fraction of time the processor runs.
type EnergyRow struct {
	Method       string
	BusyFraction float64 // busy time / horizon
	MeanError    float64
	MissPercent  float64
}

// Energy runs every Table II method on a case and reports the busy-time /
// error tradeoff.
func Energy(caseName string, cfg Config) ([]EnergyRow, error) {
	cfg = cfg.withDefaults()
	c, err := workload.CaseByName(caseName)
	if err != nil {
		return nil, err
	}
	s, err := c.Set()
	if err != nil {
		return nil, err
	}
	methods := append([]string{"EDF-Accurate"}, Table2Methods...)
	rows := make([]EnergyRow, 0, len(methods))
	for _, m := range methods {
		res, err := runMethod(m, s, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m, err)
		}
		rows = append(rows, EnergyRow{
			Method:       m,
			BusyFraction: float64(res.Busy) / float64(res.Horizon),
			MeanError:    res.MeanError(),
			MissPercent:  res.MissPercent(),
		})
	}
	return rows, nil
}

// FormatEnergy renders the energy/quality tradeoff.
func FormatEnergy(caseName string, rows []EnergyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ENERGY/QUALITY TRADEOFF (case %s; energy ∝ busy time)\n", caseName)
	fmt.Fprintf(&b, "%-14s %12s %12s %10s\n", "Method", "busy", "mean error", "miss%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %11.1f%% %12.4f %9.1f%%\n",
			r.Method, 100*r.BusyFraction, r.MeanError, r.MissPercent)
	}
	return b.String()
}
