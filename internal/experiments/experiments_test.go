package experiments

import (
	"strings"
	"testing"
)

// quick keeps test runtime low; the benches run the paper-scale version.
var quickCfg = Config{Hyperperiods: 30, Seed: 1}

func TestTable1MatchesPaperVerdicts(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("%d rows, want 14", len(rows))
	}
	for _, r := range rows {
		if r.SchedulableAccurate {
			t.Errorf("%s: accurate schedulable; Table I says No everywhere", r.Case)
		}
		wantImp := r.Case != "Rnd2" && r.Case != "IDCT"
		if r.SchedulableImprecise != wantImp {
			t.Errorf("%s: imprecise schedulable = %v, want %v", r.Case, r.SchedulableImprecise, wantImp)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Rnd13") || !strings.Contains(out, "IDCT") {
		t.Errorf("FormatTable1 missing rows:\n%s", out)
	}
}

// TestTable2Shape asserts the relative ordering the paper reports: every
// imprecise-aware method beats EDF-Imprecise on average, the collaborative
// methods beat plain EDF+ESR, post-processing does not regress plain ILP,
// and EDF-Accurate misses deadlines on most cases.
func TestTable2Shape(t *testing.T) {
	res, err := Table2(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 14 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	missing := 0
	for _, row := range res.Rows {
		if row.EDFAccurateMissPct > 0 {
			missing++
		}
		for m, st := range row.Stats {
			if st.Mean < 0 || st.Sigma < 0 {
				t.Errorf("%s/%s: negative stats", row.Case, m)
			}
		}
	}
	if missing < 10 {
		t.Errorf("EDF-Accurate missed deadlines on only %d/14 cases", missing)
	}
	norm := res.Normalized
	if !(norm["EDF-Imprecise"] > 0.999 && norm["EDF-Imprecise"] < 1.001) {
		t.Errorf("EDF-Imprecise normalization = %g", norm["EDF-Imprecise"])
	}
	if norm["EDF+ESR"] >= 1 {
		t.Errorf("EDF+ESR normalized %g not below 1", norm["EDF+ESR"])
	}
	if norm["ILP+OA"] >= norm["EDF+ESR"]+0.03 {
		t.Errorf("ILP+OA (%g) should be at or below EDF+ESR (%g)", norm["ILP+OA"], norm["EDF+ESR"])
	}
	if norm["ILP+Post+OA"] > norm["ILP+OA"]+0.02 {
		t.Errorf("post-processing regressed: %g vs %g", norm["ILP+Post+OA"], norm["ILP+OA"])
	}
	if norm["Flipped EDF"] >= 1 {
		t.Errorf("Flipped EDF normalized %g not below 1", norm["Flipped EDF"])
	}
	out := FormatTable2(res)
	if !strings.Contains(out, "Normal.") {
		t.Errorf("FormatTable2 missing summary:\n%s", out)
	}
}

func TestFig3ErrorsShrinkWithUtilization(t *testing.T) {
	res, err := Fig3(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Table2Methods {
		pts := res.Series[m]
		if len(pts) != len(Fig3Utilizations) {
			t.Fatalf("%s has %d points", m, len(pts))
		}
		// The paper: every method except EDF-Imprecise reduces error when
		// utilization decreases. Require the low end strictly below the
		// high end for those methods, and roughly flat for EDF-Imprecise
		// relative to its own scale.
		lo, hi := pts[0].MeanError, pts[len(pts)-1].MeanError
		if m != "EDF-Imprecise" && lo >= hi {
			t.Errorf("%s: error at U=%.1f (%g) not below U=%.1f (%g)",
				m, pts[0].Utilization, lo, pts[len(pts)-1].Utilization, hi)
		}
	}
	out := FormatFig("FIGURE 3. MEAN ERROR VERSUS UTILIZATION", res)
	if !strings.Contains(out, "Utilization") {
		t.Error("FormatFig header missing")
	}
}

func TestTable3ShapeAndDPVerdicts(t *testing.T) {
	rows, err := Table3(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("%d rows", len(rows))
	}
	violations, feasibles := 0, 0
	for _, r := range rows {
		if r.ESRCViolationPct < 0 || r.ESRCViolationPct > 100 {
			t.Errorf("%s: violation%% = %g", r.Case, r.ESRCViolationPct)
		}
		if r.ESRCViolationPct > 0 {
			violations++
		}
		if r.DPFeasible {
			feasibles++
			// DP feasibility should coincide with low ESR(C) pressure —
			// not asserted per-case (heuristic), but the set of feasible
			// cases must be nonempty like the paper's.
		}
	}
	if violations == 0 {
		t.Error("no case produced error-constraint violations — stress setting lost")
	}
	if feasibles == 0 {
		t.Error("DP(C) found no feasible case; the paper reports several")
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "DP(C)") {
		t.Errorf("FormatTable3:\n%s", out)
	}
}

func TestFig4PruningShrinksFrontier(t *testing.T) {
	res, err := Fig4(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WithPruning) == 0 || len(res.WithoutPruning) == 0 {
		t.Fatal("empty level counts")
	}
	// Compare at the last common level.
	n := len(res.WithPruning)
	if len(res.WithoutPruning) < n {
		n = len(res.WithoutPruning)
	}
	sumW, sumWo := 0, 0
	for i := 0; i < n; i++ {
		sumW += res.WithPruning[i]
		sumWo += res.WithoutPruning[i]
	}
	if sumW*2 > sumWo {
		t.Errorf("pruning reduced cumulative candidates only from %d to %d", sumWo, sumW)
	}
	out := FormatFig4(res)
	if !strings.Contains(out, "with pruning") {
		t.Error("FormatFig4 header missing")
	}
}

func TestTable4Profiles(t *testing.T) {
	infos, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("%d tasks", len(infos))
	}
	out := FormatTable4(infos)
	if !strings.Contains(out, "nr-cubic") || !strings.Contains(out, "nr-tangent") {
		t.Errorf("FormatTable4:\n%s", out)
	}
}

func TestFig5PrototypeShape(t *testing.T) {
	res, err := Fig5(Config{Hyperperiods: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Fig5Methods {
		if len(res.Series[m]) != len(Fig5Utilizations) {
			t.Fatalf("%s has %d points", m, len(res.Series[m]))
		}
	}
	// The paper's Figure 5: ILP+Post+OA and Flipped EDF produce much
	// smaller errors than EDF-Imprecise. Compare curve sums.
	sum := func(m string) float64 {
		s := 0.0
		for _, p := range res.Series[m] {
			s += p.MeanError
		}
		return s
	}
	if sum("ILP+Post+OA") >= sum("EDF-Imprecise") {
		t.Errorf("ILP+Post+OA (%g) not below EDF-Imprecise (%g)",
			sum("ILP+Post+OA"), sum("EDF-Imprecise"))
	}
	if sum("Flipped EDF") >= sum("EDF-Imprecise") {
		t.Errorf("Flipped EDF (%g) not below EDF-Imprecise (%g)",
			sum("Flipped EDF"), sum("EDF-Imprecise"))
	}
}

func TestBuildPolicyUnknownMethod(t *testing.T) {
	if _, err := buildPolicy("nope", nil); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestOverheadStudy(t *testing.T) {
	rows, err := Overhead("Rnd9", Config{Hyperperiods: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Dispatches == 0 {
			t.Errorf("%s: no dispatches", r.Method)
		}
		if r.PerDispatch < 0 {
			t.Errorf("%s: negative per-dispatch time", r.Method)
		}
	}
	// The offline methods must report a build cost; online ones must not.
	for _, r := range rows {
		offline := r.Method == "ILP+OA" || r.Method == "ILP+Post+OA" || r.Method == "Flipped EDF"
		if offline && r.OfflineBuild == 0 {
			t.Errorf("%s: missing offline build time", r.Method)
		}
		if !offline && r.OfflineBuild != 0 {
			t.Errorf("%s: unexpected offline build time", r.Method)
		}
	}
	out := FormatOverhead("Rnd9", rows)
	if !strings.Contains(out, "per dispatch") {
		t.Errorf("FormatOverhead:\n%s", out)
	}
}

func TestEnergyStudy(t *testing.T) {
	rows, err := Energy("Rnd8", Config{Hyperperiods: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	var accurate, imprecise EnergyRow
	for _, r := range rows {
		// The final job may run slightly past the horizon (non-preemptive
		// completion), so the fraction can marginally exceed 1 on an
		// overloaded baseline.
		if r.BusyFraction <= 0 || r.BusyFraction > 1.05 {
			t.Errorf("%s: busy fraction %g", r.Method, r.BusyFraction)
		}
		switch r.Method {
		case "EDF-Accurate":
			accurate = r
		case "EDF-Imprecise":
			imprecise = r
		}
	}
	// The low-power claim: imprecise execution keeps the processor far
	// less busy than accurate-only execution.
	if imprecise.BusyFraction >= accurate.BusyFraction {
		t.Errorf("imprecise busy %g not below accurate %g",
			imprecise.BusyFraction, accurate.BusyFraction)
	}
	out := FormatEnergy("Rnd8", rows)
	if !strings.Contains(out, "busy") {
		t.Errorf("FormatEnergy:\n%s", out)
	}
}

func TestRobustnessAcrossSeeds(t *testing.T) {
	r, err := Robustness(Config{Hyperperiods: 40}, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Normalized["EDF-Imprecise"].Mean() < 0.999 || r.Normalized["EDF-Imprecise"].Mean() > 1.001 {
		t.Errorf("baseline normalization drifted: %g", r.Normalized["EDF-Imprecise"].Mean())
	}
	if r.OrderingHeld < 2 {
		t.Errorf("paper ordering held on only %d/3 seeds", r.OrderingHeld)
	}
	for _, m := range Table2Methods {
		if m == "EDF-Imprecise" {
			continue
		}
		if r.Normalized[m].Mean() >= 1 {
			t.Errorf("%s normalized mean %g not below 1", m, r.Normalized[m].Mean())
		}
	}
	if out := FormatRobustness(r); !strings.Contains(out, "ordering held") {
		t.Errorf("FormatRobustness:\n%s", out)
	}
}

func TestTable2ParallelMatchesSerial(t *testing.T) {
	serial, err := Table2(Config{Hyperperiods: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Table2(Config{Hyperperiods: 20, Seed: 1, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("row counts differ")
	}
	for i := range serial.Rows {
		if serial.Rows[i].Case != parallel.Rows[i].Case {
			t.Fatalf("row order differs at %d", i)
		}
		for _, m := range Table2Methods {
			if serial.Rows[i].Stats[m] != parallel.Rows[i].Stats[m] {
				t.Errorf("%s/%s differs: %+v vs %+v", serial.Rows[i].Case, m,
					serial.Rows[i].Stats[m], parallel.Rows[i].Stats[m])
			}
		}
	}
}

// requireFigEqual asserts two curve families are identical point for point.
func requireFigEqual(t *testing.T, name string, a, b *FigResult, methods []string) {
	t.Helper()
	if a.Case != b.Case {
		t.Fatalf("%s: cases differ: %q vs %q", name, a.Case, b.Case)
	}
	for _, m := range methods {
		sa, sb := a.Series[m], b.Series[m]
		if len(sa) != len(sb) {
			t.Fatalf("%s/%s: lengths differ: %d vs %d", name, m, len(sa), len(sb))
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Errorf("%s/%s[%d]: %+v vs %+v", name, m, i, sa[i], sb[i])
			}
		}
	}
}

func TestFig3ParallelMatchesSerial(t *testing.T) {
	serial, err := Fig3(Config{Hyperperiods: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig3(Config{Hyperperiods: 20, Seed: 1, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	requireFigEqual(t, "fig3", serial, parallel, Table2Methods)
}

func TestTable3ParallelMatchesSerial(t *testing.T) {
	serial, err := Table3(Config{Hyperperiods: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Table3(Config{Hyperperiods: 20, Seed: 1, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("row %d differs: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}

func TestFig4ParallelMatchesSerial(t *testing.T) {
	serial, err := Fig4(Config{Hyperperiods: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig4(Config{Hyperperiods: 20, Seed: 1, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Case != parallel.Case || serial.TruncatedNoPrune != parallel.TruncatedNoPrune {
		t.Fatalf("metadata differs: %+v vs %+v", serial, parallel)
	}
	for _, pair := range []struct {
		name string
		a, b []int
	}{
		{"with", serial.WithPruning, parallel.WithPruning},
		{"without", serial.WithoutPruning, parallel.WithoutPruning},
	} {
		if len(pair.a) != len(pair.b) {
			t.Fatalf("%s-pruning level counts differ in length", pair.name)
		}
		for i := range pair.a {
			if pair.a[i] != pair.b[i] {
				t.Errorf("%s-pruning level %d: %d vs %d", pair.name, i, pair.a[i], pair.b[i])
			}
		}
	}
}

func TestFig5ParallelMatchesSerial(t *testing.T) {
	serial, err := Fig5(Config{Hyperperiods: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig5(Config{Hyperperiods: 4, Seed: 1, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	requireFigEqual(t, "fig5", serial, parallel, Fig5Methods)
}
