package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sumAt(t *testing.T, r *FaultSweepResult, factor, prob float64, cont string) FaultSummary {
	t.Helper()
	for _, s := range r.Summary {
		if s.OverrunFactor == factor && s.OverrunProb == prob && s.Containment == cont {
			return s
		}
	}
	t.Fatalf("no summary for factor=%g prob=%g %s", factor, prob, cont)
	return FaultSummary{}
}

// TestFaultSweepContainmentOrdering is the acceptance sweep: at overrun
// probability ≥ 0.05 both containment policies strictly reduce cascaded
// deadline misses versus RunToCompletion, at every swept magnitude.
func TestFaultSweepContainmentOrdering(t *testing.T) {
	r, err := FaultSweep(Config{Hyperperiods: 20, Seed: 1, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 14 * len(FaultSweepMethods) * len(FaultFactors) * len(FaultProbs) * 3
	if len(r.Rows) != wantRows {
		t.Fatalf("%d rows, want %d", len(r.Rows), wantRows)
	}
	for _, factor := range FaultFactors {
		// The zero-probability anchor: no faults, so the containment policies
		// are indistinguishable.
		rtc0 := sumAt(t, r, factor, 0, "run-to-completion")
		for _, cont := range []string{"abort-at-budget", "downgrade-on-overrun"} {
			c0 := sumAt(t, r, factor, 0, cont)
			c0.Containment = rtc0.Containment
			if c0 != rtc0 {
				t.Errorf("factor %g: %s differs from baseline at prob 0: %+v vs %+v", factor, cont, c0, rtc0)
			}
		}
		for _, prob := range FaultProbs {
			if prob < 0.05 {
				continue
			}
			rtc := sumAt(t, r, factor, prob, "run-to-completion")
			abort := sumAt(t, r, factor, prob, "abort-at-budget")
			down := sumAt(t, r, factor, prob, "downgrade-on-overrun")
			if rtc.CascadedMisses == 0 {
				t.Errorf("factor %g prob %g: baseline shows no cascades; scenario too lax", factor, prob)
				continue
			}
			if abort.CascadedMisses >= rtc.CascadedMisses {
				t.Errorf("factor %g prob %g: AbortAtBudget cascades %d not strictly below baseline %d",
					factor, prob, abort.CascadedMisses, rtc.CascadedMisses)
			}
			if down.CascadedMisses >= rtc.CascadedMisses {
				t.Errorf("factor %g prob %g: DowngradeOnOverrun cascades %d not strictly below baseline %d",
					factor, prob, down.CascadedMisses, rtc.CascadedMisses)
			}
		}
	}
	// Miss rates grow with the injection rate under the uncontained baseline.
	lo := sumAt(t, r, 2.0, 0.02, "run-to-completion")
	hi := sumAt(t, r, 2.0, 0.2, "run-to-completion")
	if hi.MissPct <= lo.MissPct {
		t.Errorf("miss%% did not grow with overrun probability: %g vs %g", lo.MissPct, hi.MissPct)
	}

	out := FormatFaults(r)
	if !strings.Contains(out, "run-to-completion") || !strings.Contains(out, "cascaded") {
		t.Errorf("FormatFaults:\n%s", out)
	}
	var buf bytes.Buffer
	if err := WriteFaultsCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != wantRows+1 {
		t.Errorf("CSV has %d lines, want %d", lines, wantRows+1)
	}
	if err := WriteJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
}

func TestFaultSweepParallelMatchesSerial(t *testing.T) {
	serial, err := FaultSweep(Config{Hyperperiods: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := FaultSweep(Config{Hyperperiods: 10, Seed: 2, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("parallel fault sweep differs from serial")
	}
}
