package experiments

import (
	"strings"
	"testing"
)

// TestChaosSoak runs a scaled-down chaos soak: seeded kills, wedge-
// evacuations and storage faults over a churn tape, three drives per
// width, requiring digest reproducibility and zero lost tasks. The full-
// scale sweep (8/64 shards, 1200 events) runs from paperbench and CI.
func TestChaosSoak(t *testing.T) {
	res, err := ChaosSoak(Config{Seed: 11}, t.TempDir(), 320, []int{3}, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Policy != "first-fit" {
		t.Fatalf("rows %d, policy %q", len(res.Rows), res.Policy)
	}
	row := res.Rows[0]
	if row.Kills+row.Evacs == 0 {
		t.Fatal("chaos schedule injected no kills or evacuations — the soak tested nothing")
	}
	if !row.RepeatMatch {
		t.Error("repeated serial drive diverged")
	}
	if !row.ParallelMatch {
		t.Error("parallel drive diverged from serial")
	}
	if row.Lost != 0 || row.Orphans != 0 {
		t.Errorf("lost %d, orphans %d — containment leaked tasks", row.Lost, row.Orphans)
	}
	if row.MissesClean != 0 {
		t.Errorf("%d clean-window deadline misses under chaos", row.MissesClean)
	}
	if len(row.Digests) != row.Shards {
		t.Errorf("%d digests for %d shards", len(row.Digests), row.Shards)
	}
	out := FormatChaosSoak(res)
	if !strings.Contains(out, "CHAOS SOAK") {
		t.Errorf("format output missing banner:\n%s", out)
	}
	var sb strings.Builder
	if err := WriteChaosSoakCSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != 2 {
		t.Errorf("csv has %d lines, want header + 1 row", lines)
	}
}

// TestReplicatedChaosSoak is the zero-shed variant: every shard carries a
// synchronous follower, wedges land on primary and follower drives alike,
// and the run itself errors on any shed, lost, orphaned, evicted, or
// clean-missed task — so beyond the soak's own gates the test checks that
// the torment actually exercised the failover machinery and that the
// three drives agreed on every promotion.
func TestReplicatedChaosSoak(t *testing.T) {
	res, err := ChaosSoak(Config{Seed: 11}, t.TempDir(), 320, []int{3}, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row.Wedges == 0 || row.Kills == 0 {
		t.Fatalf("torment plan too quiet: %d wedges, %d kills", row.Wedges, row.Kills)
	}
	if row.Promotions == 0 {
		t.Fatal("primary wedges caused no promotions — failover never ran")
	}
	if row.Demotions == 0 || row.Reseeds == 0 {
		t.Fatalf("no demotion/re-seed traffic (%d/%d) — follower torment missed", row.Demotions, row.Reseeds)
	}
	// Zero-shed failure handling: nothing evacuated, nothing evicted.
	if row.Evacs != 0 || row.Evicted != 0 {
		t.Fatalf("replicated run drained tasks: evacs=%d evicted=%d", row.Evacs, row.Evicted)
	}
	if row.Lost != 0 || row.Orphans != 0 || row.MissesClean != 0 {
		t.Fatalf("lost=%d orphans=%d clean misses=%d", row.Lost, row.Orphans, row.MissesClean)
	}
	if !row.RepeatMatch || !row.ParallelMatch {
		t.Fatalf("drives diverged: repeat=%v parallel=%v", row.RepeatMatch, row.ParallelMatch)
	}
}
