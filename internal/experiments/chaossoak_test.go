package experiments

import (
	"strings"
	"testing"
)

// TestChaosSoak runs a scaled-down chaos soak: seeded kills, wedge-
// evacuations and storage faults over a churn tape, three drives per
// width, requiring digest reproducibility and zero lost tasks. The full-
// scale sweep (8/64 shards, 1200 events) runs from paperbench and CI.
func TestChaosSoak(t *testing.T) {
	res, err := ChaosSoak(Config{Seed: 11}, t.TempDir(), 320, []int{3}, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Policy != "first-fit" {
		t.Fatalf("rows %d, policy %q", len(res.Rows), res.Policy)
	}
	row := res.Rows[0]
	if row.Kills+row.Evacs == 0 {
		t.Fatal("chaos schedule injected no kills or evacuations — the soak tested nothing")
	}
	if !row.RepeatMatch {
		t.Error("repeated serial drive diverged")
	}
	if !row.ParallelMatch {
		t.Error("parallel drive diverged from serial")
	}
	if row.Lost != 0 || row.Orphans != 0 {
		t.Errorf("lost %d, orphans %d — containment leaked tasks", row.Lost, row.Orphans)
	}
	if row.MissesClean != 0 {
		t.Errorf("%d clean-window deadline misses under chaos", row.MissesClean)
	}
	if len(row.Digests) != row.Shards {
		t.Errorf("%d digests for %d shards", len(row.Digests), row.Shards)
	}
	out := FormatChaosSoak(res)
	if !strings.Contains(out, "CHAOS SOAK") {
		t.Errorf("format output missing banner:\n%s", out)
	}
	var sb strings.Builder
	if err := WriteChaosSoakCSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != 2 {
		t.Errorf("csv has %d lines, want header + 1 row", lines)
	}
}
