package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"nprt/internal/cluster"
	schedrt "nprt/internal/runtime"
)

// The cluster soak is the sharded counterpart of the churn soak: one seeded
// churn tape sprayed across progressively wider clusters under a shared
// epoch clock. At every width it replays the tape twice — once event-by-
// event through the serial router, once through the concurrent group-commit
// path — and holds the tentpole invariant: the parallel drive must leave
// every shard digest and the partition map bit-identical to the serial one.
// Because routing is serial under the router lock and each shard applies
// its bucket in route order, the concurrency buys only wall-clock, never a
// different run.

// ClusterShardCounts is the default width sweep (8–128 shards).
var ClusterShardCounts = []int{8, 32, 128}

// ClusterSoakRow is the outcome at one cluster width.
type ClusterSoakRow struct {
	Shards int    `json:"shards"`
	Policy string `json:"policy"`
	Events int    `json:"events"`

	Epochs  int64 `json:"epochs"`  // summed over shards
	Jobs    int64 `json:"jobs"`    // summed over shards
	Admits  int64 `json:"admits"`  // summed over shards
	Rejects int64 `json:"rejects"` // shard-screened rejections
	Removes int64 `json:"removes"`

	Misses      int64 `json:"misses"`
	MissesClean int64 `json:"misses_clean"`

	// Resident is the partition-map size after the run; Spread is how many
	// shards ended non-empty (placement actually fanned out).
	Resident int `json:"resident"`
	Spread   int `json:"spread"`

	// Digests are the per-shard run identities (serial drive);
	// ParallelMatch records that the concurrent drive reproduced every one
	// of them, and the same partition map, bit for bit.
	Digests       []string `json:"digests"`
	ParallelMatch bool     `json:"parallel_match"`
}

// ClusterSoakResult is the full artifact.
type ClusterSoakResult struct {
	Events int              `json:"events"`
	Seed   uint64           `json:"seed"`
	Policy string           `json:"policy"`
	Rows   []ClusterSoakRow `json:"rows"`
}

// replayClusterTape opens a fresh cluster under dir and drives the tape to
// its horizon in the given mode, tolerating the tape's deliberate stale
// requests.
func replayClusterTape(dir string, shards int, policy string, tp *schedrt.Tape, parallel bool) (*cluster.Cluster, error) {
	c, err := cluster.Open(dir, cluster.Options{
		Shards:    shards,
		Placement: policy,
		Store:     schedrt.StoreOptions{NoSync: true, Runtime: schedrt.Options{Governor: churnGovernor}},
	})
	if err != nil {
		return nil, err
	}
	horizon := int64(32)
	if n := len(tp.Events); n > 0 {
		horizon += tp.Events[n-1].Epoch
	}
	err = c.PlayTape(tp, horizon, parallel, 0, nil, nil, func(ev schedrt.Event, err error) error {
		if schedrt.IsStaleRequest(err) {
			return nil
		}
		return fmt.Errorf("event at epoch %d: %w", ev.Epoch, err)
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// ClusterSoak sprays one churn tape (seed cfg.Seed) across each width in
// shardCounts, under policy (default first-fit), checking parallel==serial
// at every width. Cluster state lives under dir (one subdirectory per
// width and drive mode, removed afterwards). A parallel/serial divergence
// is an error, not a data point.
func ClusterSoak(cfg Config, dir string, events int, shardCounts []int, policy string) (*ClusterSoakResult, error) {
	cfg = cfg.withDefaults()
	if events <= 0 {
		events = 2000
	}
	if len(shardCounts) == 0 {
		shardCounts = ClusterShardCounts
	}
	if policy == "" {
		policy = "first-fit"
	}
	tp := GenerateChurnTape(cfg.Seed, events)

	out := &ClusterSoakResult{Events: events, Seed: cfg.Seed, Policy: policy}
	for _, shards := range shardCounts {
		serialDir := filepath.Join(dir, fmt.Sprintf("soak-%d-serial", shards))
		parallelDir := filepath.Join(dir, fmt.Sprintf("soak-%d-parallel", shards))

		cs, err := replayClusterTape(serialDir, shards, policy, tp, false)
		if err != nil {
			return nil, fmt.Errorf("cluster soak: %d shards (serial): %w", shards, err)
		}
		cp, err := replayClusterTape(parallelDir, shards, policy, tp, true)
		if err != nil {
			cs.Close()
			return nil, fmt.Errorf("cluster soak: %d shards (parallel): %w", shards, err)
		}

		sd, pd := cs.Digests(), cp.Digests()
		match := len(sd) == len(pd)
		for i := 0; match && i < len(sd); i++ {
			match = sd[i] == pd[i]
		}
		so, po := cs.Owners(), cp.Owners()
		if match && len(so) == len(po) {
			for k, v := range so {
				if po[k] != v {
					match = false
					break
				}
			}
		} else {
			match = false
		}

		m := cs.Metrics()
		row := ClusterSoakRow{
			Shards:        shards,
			Policy:        policy,
			Events:        len(tp.Events),
			Epochs:        m.Epochs,
			Jobs:          m.Jobs,
			Admits:        m.Admits,
			Rejects:       m.Rejects,
			Removes:       m.Removes,
			Misses:        m.Misses,
			MissesClean:   m.MissesClean,
			Resident:      len(so),
			ParallelMatch: match,
		}
		for _, sh := range cs.Shards() {
			row.Digests = append(row.Digests, fmt.Sprintf("%016x", sh.Store.Digest()))
			if sh.Resident() > 0 {
				row.Spread++
			}
		}
		cs.Close()
		cp.Close()
		os.RemoveAll(serialDir)
		os.RemoveAll(parallelDir)

		if !match {
			return nil, fmt.Errorf("cluster soak: %d shards: parallel drive diverged from serial", shards)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// FormatClusterSoak renders the soak summary.
func FormatClusterSoak(r *ClusterSoakResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CLUSTER SOAK. ONE %d-EVENT CHURN TAPE ACROSS SHARDED CLUSTERS (policy %s, seed %d)\n",
		r.Events, r.Policy, r.Seed)
	fmt.Fprintf(&b, "%-7s %8s %10s %8s %8s %8s %7s %9s %7s %s\n",
		"shards", "epochs", "jobs", "admits", "rejects", "removes", "miss", "resident", "spread", "par==ser")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-7d %8d %10d %8d %8d %8d %7d %9d %7d %v\n",
			row.Shards, row.Epochs, row.Jobs, row.Admits, row.Rejects, row.Removes,
			row.Misses, row.Resident, row.Spread, row.ParallelMatch)
	}
	return b.String()
}

// WriteClusterSoakCSV emits the per-width rows.
func WriteClusterSoakCSV(w io.Writer, r *ClusterSoakResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"shards", "policy", "events", "epochs", "jobs", "admits",
		"rejects", "removes", "misses", "misses_clean", "resident", "spread", "parallel_match"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			strconv.Itoa(row.Shards),
			row.Policy,
			strconv.Itoa(row.Events),
			strconv.FormatInt(row.Epochs, 10),
			strconv.FormatInt(row.Jobs, 10),
			strconv.FormatInt(row.Admits, 10),
			strconv.FormatInt(row.Rejects, 10),
			strconv.FormatInt(row.Removes, 10),
			strconv.FormatInt(row.Misses, 10),
			strconv.FormatInt(row.MissesClean, 10),
			strconv.Itoa(row.Resident),
			strconv.Itoa(row.Spread),
			strconv.FormatBool(row.ParallelMatch),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
