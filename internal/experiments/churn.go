package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"nprt/internal/rng"
	schedrt "nprt/internal/runtime"
	"nprt/internal/sim"
	"nprt/internal/task"
)

// The churn soak is the endurance experiment for the long-running runtime:
// thousands of admission-controller requests — adds, removes (some stale),
// overload windows — replayed against a live runtime on both dispatch
// engines. It checks the properties the runtime exists to provide: admitted
// tasks never miss a deadline outside governor-declared degraded windows,
// the two engines stay bit-identical event by event, and the whole run is a
// pure function of the seed (parallel == serial).

// churnSalt decorrelates tape generation from every other use of a seed.
const churnSalt = 0xc_0a_1e_5ce

// churnPeriods is the period menu (small LCM keeps epochs cheap at 10k
// events).
var churnPeriods = []task.Time{40, 80, 160}

// GenerateChurnTape builds a deterministic churn script: ~45% adds, ~50%
// removes (occasionally of a name that was never admitted — a stale request
// the runtime must survive), ~5% overload windows of 3–10 epochs, separated
// by gaps of 0–2 epochs. The balanced add/remove mix keeps the live set in
// a random walk around the admission controller's capacity ceiling; the
// overload share is small because each window covers several epochs and the
// soak needs a majority of clean epochs for its zero-miss assertion to
// bite. The tape is a pure function of (seed, events).
func GenerateChurnTape(seed uint64, events int) *schedrt.Tape {
	st := rng.New(seed ^ churnSalt)
	tp := &schedrt.Tape{Events: make([]schedrt.Event, 0, events)}
	var epoch int64
	var live []string
	counter := 0

	for i := 0; i < events; i++ {
		epoch += int64(st.Intn(3))
		r := st.Float64()
		switch {
		case r < 0.45 || len(live) == 0:
			p := churnPeriods[st.Intn(len(churnPeriods))]
			w := p/10 + task.Time(st.Intn(int(p/4-p/10)+1))
			xlo := w / 4
			if xlo < 1 {
				xlo = 1
			}
			x := xlo + task.Time(st.Intn(int(w/2-xlo)+1))
			if x >= w {
				x = w - 1
			}
			name := fmt.Sprintf("t%05d", counter)
			counter++
			tp.Events = append(tp.Events, schedrt.Event{
				Epoch: epoch, Op: "add",
				Task: &schedrt.TaskSpec{
					Task: task.Task{
						Name: name, Period: p, WCETAccurate: w, WCETImprecise: x,
						ExecAccurate:  task.Dist{Mean: float64(w) / 2, Sigma: float64(w) / 8, Min: 1, Max: float64(w)},
						ExecImprecise: task.Dist{Mean: float64(x) / 2, Sigma: float64(x) / 8, Min: 1, Max: float64(x)},
						Error:         task.Dist{Mean: 1 + 4*st.Float64(), Sigma: 0.5},
					},
					Criticality: st.Intn(4),
				},
			})
			live = append(live, name)
		case r < 0.95:
			var name string
			if st.Float64() < 0.1 {
				// A name that never existed: the runtime answers with a
				// deterministic ErrUnknownTask the soak tolerates. (Names of
				// *rejected* adds land here organically too — the generator
				// does not screen admission, so some of its "live" names were
				// never admitted.)
				name = fmt.Sprintf("ghost%05d", st.Intn(1000))
			} else {
				j := st.Intn(len(live))
				name = live[j]
				live = append(live[:j], live[j+1:]...)
			}
			tp.Events = append(tp.Events, schedrt.Event{Epoch: epoch, Op: "remove", Name: name})
		default:
			tp.Events = append(tp.Events, schedrt.Event{
				Epoch: epoch, Op: "overload",
				Overload: &schedrt.OverloadSpec{
					Rates: sim.FaultRates{
						OverrunProb:   0.1 + 0.2*st.Float64(),
						OverrunFactor: 2 + st.Float64(),
					},
					Epochs: 3 + st.Intn(8),
				},
			})
		}
	}
	return tp
}

// ChurnRow is the outcome of one tape replayed on both engines.
type ChurnRow struct {
	Seed   uint64 `json:"seed"`
	Events int    `json:"events"`
	Epochs int64  `json:"epochs"`
	Jobs   int64  `json:"jobs"`

	Misses         int64 `json:"misses"`
	MissesDegraded int64 `json:"misses_degraded"`
	MissesClean    int64 `json:"misses_clean"`

	Admits         int64 `json:"admits"`
	AdmitsDegraded int64 `json:"admits_degraded"`
	Rejects        int64 `json:"rejects"`
	Removes        int64 `json:"removes"`
	StaleRemoves   int64 `json:"stale_removes"`
	Overloads      int64 `json:"overloads"`
	Sheds          int64 `json:"sheds"`
	Restores       int64 `json:"restores"`

	// Digest is the indexed engine's final digest; EnginesMatch records that
	// the linear-scan engine reproduced it bit for bit.
	Digest       string `json:"digest"`
	EnginesMatch bool   `json:"engines_match"`
}

// ChurnResult is the full soak artifact.
type ChurnResult struct {
	Events int        `json:"events"`
	Tapes  int        `json:"tapes"`
	Seed   uint64     `json:"seed"`
	Rows   []ChurnRow `json:"rows"`
}

// churnGovernor is the soak's governor: short window and dwell so 10k-event
// tapes exercise plenty of shed/restore cycles.
var churnGovernor = schedrt.GovernorConfig{
	Window: 4, ShedThreshold: 0.5, RestoreThreshold: 0.1, DwellEpochs: 2,
}

// replayChurn runs one tape to completion on one engine.
func replayChurn(seed uint64, tp *schedrt.Tape, engine sim.EngineKind) (*schedrt.Runtime, int64, error) {
	r, err := schedrt.New(schedrt.Options{Seed: seed, Engine: engine, Governor: churnGovernor})
	if err != nil {
		return nil, 0, err
	}
	horizon := int64(32)
	if n := len(tp.Events); n > 0 {
		horizon += tp.Events[n-1].Epoch
	}
	var stale int64
	err = r.Play(tp, horizon, nil, nil, func(ev schedrt.Event, err error) error {
		// Stale requests (remove of a never-admitted name, duplicate add)
		// are part of the churn the runtime must absorb; anything else is a
		// real failure.
		if schedrt.IsStaleRequest(err) {
			stale++
			return nil
		}
		return fmt.Errorf("event at epoch %d: %w", ev.Epoch, err)
	})
	return r, stale, err
}

// ChurnSoak replays `tapes` generated tapes of `events` events each (seeds
// cfg.Seed, cfg.Seed+1, …) against the runtime on both engines. Tapes fan
// out over the worker pool when cfg.Parallel is set; rows are indexed by
// tape, so the artifact is bit-identical either way. An engine divergence
// is returned as an error — it is an invariant violation, not a data
// point.
func ChurnSoak(cfg Config, events, tapes int) (*ChurnResult, error) {
	cfg = cfg.withDefaults()
	if events <= 0 {
		events = 10000
	}
	if tapes <= 0 {
		tapes = 2
	}

	type cell struct {
		row ChurnRow
		err error
	}
	grid := make([]cell, tapes)
	forEachIndex(tapes, cfg.Parallel, func(i int) {
		seed := cfg.Seed + uint64(i)
		tp := GenerateChurnTape(seed, events)

		ri, stale, err := replayChurn(seed, tp, sim.EngineIndexed)
		if err != nil {
			grid[i].err = fmt.Errorf("tape %d (indexed): %w", i, err)
			return
		}
		rl, _, err := replayChurn(seed, tp, sim.EngineLinearScan)
		if err != nil {
			grid[i].err = fmt.Errorf("tape %d (linear-scan): %w", i, err)
			return
		}

		m := ri.Metrics()
		grid[i].row = ChurnRow{
			Seed:           seed,
			Events:         len(tp.Events),
			Epochs:         m.Epochs,
			Jobs:           m.Jobs,
			Misses:         m.Misses,
			MissesDegraded: m.MissesDegraded,
			MissesClean:    m.MissesClean,
			Admits:         m.Admits,
			AdmitsDegraded: m.AdmitsDegraded,
			Rejects:        m.Rejects,
			Removes:        m.Removes,
			StaleRemoves:   stale,
			Overloads:      m.Overloads,
			Sheds:          m.Sheds,
			Restores:       m.Restores,
			Digest:         fmt.Sprintf("%016x", ri.Digest()),
			EnginesMatch:   ri.Digest() == rl.Digest(),
		}
	})

	out := &ChurnResult{Events: events, Tapes: tapes, Seed: cfg.Seed}
	for i := range grid {
		if grid[i].err != nil {
			return nil, grid[i].err
		}
		if !grid[i].row.EnginesMatch {
			return nil, fmt.Errorf("churn soak: tape %d: engines diverged (indexed digest %s)",
				i, grid[i].row.Digest)
		}
		out.Rows = append(out.Rows, grid[i].row)
	}
	return out, nil
}

// FormatChurn renders the soak summary.
func FormatChurn(r *ChurnResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CHURN SOAK. %d TAPES x %d EVENTS AGAINST THE LONG-RUNNING RUNTIME (seed %d)\n",
		r.Tapes, r.Events, r.Seed)
	fmt.Fprintf(&b, "%-6s %8s %10s %8s %8s %8s %7s %7s %6s %6s %6s %-18s\n",
		"seed", "epochs", "jobs", "admits", "degr", "rejects", "miss", "clean", "sheds", "rest", "stale", "digest")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6d %8d %10d %8d %8d %8d %7d %7d %6d %6d %6d %-18s\n",
			row.Seed, row.Epochs, row.Jobs, row.Admits, row.AdmitsDegraded, row.Rejects,
			row.Misses, row.MissesClean, row.Sheds, row.Restores, row.StaleRemoves, row.Digest)
	}
	return b.String()
}

// WriteChurnCSV emits the per-tape rows.
func WriteChurnCSV(w io.Writer, r *ChurnResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seed", "events", "epochs", "jobs", "misses",
		"misses_degraded", "misses_clean", "admits", "admits_degraded", "rejects",
		"removes", "stale_removes", "overloads", "sheds", "restores", "digest"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			strconv.FormatUint(row.Seed, 10),
			strconv.Itoa(row.Events),
			strconv.FormatInt(row.Epochs, 10),
			strconv.FormatInt(row.Jobs, 10),
			strconv.FormatInt(row.Misses, 10),
			strconv.FormatInt(row.MissesDegraded, 10),
			strconv.FormatInt(row.MissesClean, 10),
			strconv.FormatInt(row.Admits, 10),
			strconv.FormatInt(row.AdmitsDegraded, 10),
			strconv.FormatInt(row.Rejects, 10),
			strconv.FormatInt(row.Removes, 10),
			strconv.FormatInt(row.StaleRemoves, 10),
			strconv.FormatInt(row.Overloads, 10),
			strconv.FormatInt(row.Sheds, 10),
			strconv.FormatInt(row.Restores, 10),
			row.Digest,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
