package experiments

import (
	"fmt"
	"strings"

	"nprt/internal/stats"
)

// RobustnessResult reports how stable the Table II normalized ordering is
// across random seeds — the reproduction's answer to "is the headline an
// artifact of one RNG draw?". For each method it accumulates the normalized
// mean error over independent seeds.
type RobustnessResult struct {
	Seeds      []uint64
	Normalized map[string]*stats.Accumulator
	// OrderingHeld counts the seeds on which the paper's ordering
	// EDF-Imprecise > EDF+ESR ≥ ILP+OA ≥ ILP+Post+OA held (with a small
	// tolerance for the adjacent pairs).
	OrderingHeld int
}

// Robustness reruns Table II under each seed.
func Robustness(cfg Config, seeds []uint64) (*RobustnessResult, error) {
	cfg = cfg.withDefaults()
	if len(seeds) == 0 {
		seeds = []uint64{1, 2, 3, 4, 5}
	}
	out := &RobustnessResult{Seeds: seeds, Normalized: map[string]*stats.Accumulator{}}
	for _, m := range Table2Methods {
		out.Normalized[m] = &stats.Accumulator{}
	}
	const tol = 0.02
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		res, err := Table2(c)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		for _, m := range Table2Methods {
			out.Normalized[m].Add(res.Normalized[m])
		}
		n := res.Normalized
		if n["EDF+ESR"] < 1 &&
			n["ILP+OA"] <= n["EDF+ESR"]+tol &&
			n["ILP+Post+OA"] <= n["ILP+OA"]+tol {
			out.OrderingHeld++
		}
	}
	return out, nil
}

// FormatRobustness renders the study.
func FormatRobustness(r *RobustnessResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SEED ROBUSTNESS OF THE TABLE II ORDERING (%d seeds)\n", len(r.Seeds))
	fmt.Fprintf(&b, "%-14s %12s %10s\n", "Method", "normalized", "σ")
	for _, m := range Table2Methods {
		acc := r.Normalized[m]
		fmt.Fprintf(&b, "%-14s %12.3f %10.3f\n", m, acc.Mean(), acc.StdDev())
	}
	fmt.Fprintf(&b, "ordering held on %d/%d seeds\n", r.OrderingHeld, len(r.Seeds))
	return b.String()
}
