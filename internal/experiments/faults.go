package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"nprt/internal/sim"
	"nprt/internal/workload"
)

// The fault sweep measures what the rest of the reproduction assumes away:
// jobs that violate their declared WCET on a non-preemptive uniprocessor.
// For each Table I case it injects seeded overruns at a grid of
// probabilities and magnitudes and compares the engine's containment
// policies by miss rate, cascaded (collateral) misses and mean error.

// FaultSweepMethods are the scheduling methods the sweep subjects to faults:
// the reactive online method and the offline-planned one (whose OA policy
// must also survive dropped releases).
var FaultSweepMethods = []string{"EDF+ESR", "Flipped EDF"}

// FaultProbs is the default overrun-probability grid (0 is the sanity
// anchor: no faults, no cascades).
var FaultProbs = []float64{0, 0.02, 0.05, 0.1, 0.2}

// FaultFactors is the default overrun-magnitude grid (execution reaches
// factor × declared WCET). The grid starts at 2× — below that the per-event
// excess on the small-WCET Table I tasks is a time unit or two, which
// sampling noise swamps; at 2× and above the containment ordering is stable.
var FaultFactors = []float64{2.0, 3.0}

// FaultRow is one (case, method, containment, probability, magnitude) cell
// of the sweep.
type FaultRow struct {
	Case          string  `json:"case"`
	Method        string  `json:"method"`
	Containment   string  `json:"containment"`
	OverrunProb   float64 `json:"overrun_prob"`
	OverrunFactor float64 `json:"overrun_factor"`
	Jobs          int64   `json:"jobs"`
	Misses        int64   `json:"misses"`
	MissPct       float64 `json:"miss_pct"`
	MeanError     float64 `json:"mean_error"`

	Overruns       int64 `json:"overruns"`
	WatchdogKills  int64 `json:"watchdog_kills"`
	Downgrades     int64 `json:"downgrades"`
	FaultedMisses  int64 `json:"faulted_misses"`
	CascadedMisses int64 `json:"cascaded_misses"`
	OverrunTime    int64 `json:"overrun_time"`
}

// FaultSummary aggregates one (probability, magnitude, containment) point
// across all cases and methods — the curve the sweep exists to plot.
type FaultSummary struct {
	OverrunProb    float64 `json:"overrun_prob"`
	OverrunFactor  float64 `json:"overrun_factor"`
	Containment    string  `json:"containment"`
	Jobs           int64   `json:"jobs"`
	MissPct        float64 `json:"miss_pct"`
	MeanError      float64 `json:"mean_error"`
	CascadedMisses int64   `json:"cascaded_misses"`
	FaultedMisses  int64   `json:"faulted_misses"`
}

// FaultSweepResult is the full artifact.
type FaultSweepResult struct {
	Hyperperiods int            `json:"hyperperiods"`
	Seed         uint64         `json:"seed"`
	Rows         []FaultRow     `json:"rows"`
	Summary      []FaultSummary `json:"summary"`
}

// FaultSweep runs the containment comparison over the Table I suite. Fault
// scenarios are functions of (seed, job identity) only, so at a grid point
// every containment policy and method faces the identical faults; the grid
// fans out over the worker pool when cfg.Parallel is set and the artifact is
// bit-identical either way.
func FaultSweep(cfg Config) (*FaultSweepResult, error) {
	cfg = cfg.withDefaults()
	cases, err := workload.CachedCases()
	if err != nil {
		return nil, err
	}
	conts := sim.Containments()

	type cell struct {
		row FaultRow
		err error
	}
	// Grid order (outer→inner): case, method, factor, prob, containment.
	nC, nM, nF, nP, nK := len(cases), len(FaultSweepMethods), len(FaultFactors), len(FaultProbs), len(conts)
	grid := make([]cell, nC*nM*nF*nP*nK)
	forEachIndex(len(grid), cfg.Parallel, func(idx int) {
		k := idx
		ki := k % nK
		k /= nK
		pi := k % nP
		k /= nP
		fi := k % nF
		k /= nF
		mi := k % nM
		ci := k / nM

		c, method, cont := cases[ci], FaultSweepMethods[mi], conts[ki]
		prob, factor := FaultProbs[pi], FaultFactors[fi]
		s, err := c.Set()
		if err != nil {
			grid[idx].err = err
			return
		}
		p, err := buildPolicy(method, s)
		if err != nil {
			grid[idx].err = fmt.Errorf("%s/%s: %w", c.Name, method, err)
			return
		}
		res, err := sim.Run(s, p, sim.Config{
			Hyperperiods: cfg.Hyperperiods,
			Sampler:      sim.NewRandomSampler(s, cfg.Seed),
			Faults:       sim.NewFaultPlan(cfg.Seed, sim.FaultRates{OverrunProb: prob, OverrunFactor: factor}),
			Containment:  cont,
		})
		if err != nil {
			grid[idx].err = fmt.Errorf("%s/%s/%s p=%g: %w", c.Name, method, cont, prob, err)
			return
		}
		ft := res.Faults.Total
		grid[idx].row = FaultRow{
			Case:          c.Name,
			Method:        method,
			Containment:   cont.String(),
			OverrunProb:   prob,
			OverrunFactor: factor,
			Jobs:          res.Jobs,
			Misses:        res.Misses.Events,
			MissPct:       res.MissPercent(),
			MeanError:     res.MeanError(),

			Overruns:       ft.Overruns,
			WatchdogKills:  ft.WatchdogKills,
			Downgrades:     ft.Downgrades,
			FaultedMisses:  ft.FaultedMisses,
			CascadedMisses: ft.CascadedMisses,
			OverrunTime:    int64(res.Faults.OverrunTime),
		}
	})

	out := &FaultSweepResult{Hyperperiods: cfg.Hyperperiods, Seed: cfg.Seed}
	for i := range grid {
		if grid[i].err != nil {
			return nil, grid[i].err
		}
		out.Rows = append(out.Rows, grid[i].row)
	}

	// Summaries in (factor, prob, containment) presentation order.
	type aggKey struct {
		fi, pi, ki int
	}
	agg := map[aggKey]*struct {
		jobs, misses, casc, faulted int64
		errSum                      float64
	}{}
	for i, c := range grid {
		k := i
		ki := k % nK
		k /= nK
		pi := k % nP
		k /= nP
		fi := k % nF
		a := agg[aggKey{fi, pi, ki}]
		if a == nil {
			a = &struct {
				jobs, misses, casc, faulted int64
				errSum                      float64
			}{}
			agg[aggKey{fi, pi, ki}] = a
		}
		a.jobs += c.row.Jobs
		a.misses += c.row.Misses
		a.casc += c.row.CascadedMisses
		a.faulted += c.row.FaultedMisses
		a.errSum += c.row.MeanError * float64(c.row.Jobs)
	}
	for fi := range FaultFactors {
		for pi := range FaultProbs {
			for ki, cont := range conts {
				a := agg[aggKey{fi, pi, ki}]
				sum := FaultSummary{
					OverrunProb:    FaultProbs[pi],
					OverrunFactor:  FaultFactors[fi],
					Containment:    cont.String(),
					Jobs:           a.jobs,
					CascadedMisses: a.casc,
					FaultedMisses:  a.faulted,
				}
				if a.jobs > 0 {
					sum.MissPct = 100 * float64(a.misses) / float64(a.jobs)
					sum.MeanError = a.errSum / float64(a.jobs)
				}
				out.Summary = append(out.Summary, sum)
			}
		}
	}
	return out, nil
}

// FormatFaults renders the sweep's summary table.
func FormatFaults(r *FaultSweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FAULT SWEEP. OVERRUN CONTAINMENT ACROSS THE TABLE I SUITE (%d hyper-periods, seed %d)\n",
		r.Hyperperiods, r.Seed)
	fmt.Fprintf(&b, "%-8s %6s %-22s %10s %12s %10s %10s\n",
		"factor", "prob", "containment", "miss%", "mean-error", "cascaded", "faulted")
	for _, s := range r.Summary {
		fmt.Fprintf(&b, "%-8.2f %6.2f %-22s %9.2f%% %12.4f %10d %10d\n",
			s.OverrunFactor, s.OverrunProb, s.Containment,
			s.MissPct, s.MeanError, s.CascadedMisses, s.FaultedMisses)
	}
	return b.String()
}

// WriteFaultsCSV emits the per-cell rows for plotting pipelines.
func WriteFaultsCSV(w io.Writer, r *FaultSweepResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"case", "method", "containment", "overrun_prob",
		"overrun_factor", "jobs", "miss_pct", "mean_error", "overruns",
		"watchdog_kills", "downgrades", "faulted_misses", "cascaded_misses",
		"overrun_time"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			row.Case, row.Method, row.Containment,
			strconv.FormatFloat(row.OverrunProb, 'f', 3, 64),
			strconv.FormatFloat(row.OverrunFactor, 'f', 2, 64),
			strconv.FormatInt(row.Jobs, 10),
			strconv.FormatFloat(row.MissPct, 'f', 3, 64),
			strconv.FormatFloat(row.MeanError, 'f', 6, 64),
			strconv.FormatInt(row.Overruns, 10),
			strconv.FormatInt(row.WatchdogKills, 10),
			strconv.FormatInt(row.Downgrades, 10),
			strconv.FormatInt(row.FaultedMisses, 10),
			strconv.FormatInt(row.CascadedMisses, 10),
			strconv.FormatInt(row.OverrunTime, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
