package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"nprt/internal/ilp"
	"nprt/internal/offline"
	"nprt/internal/task"
	"nprt/internal/workload"
)

// ilpBenchNodeBudget fixes the branch-and-bound node budget for the ILP
// throughput bench. Every configuration explores exactly this many nodes on
// the budget-limited cases (the solver is deterministic and Workers does not
// change the explored sequence), so wall-clock differences measure pure
// solver throughput, never a different search.
const ilpBenchNodeBudget = 200

// ILPBenchRow is one case's offline mode-ILP solve under the bench budget.
type ILPBenchRow struct {
	Case      string  `json:"case"`
	Jobs      int     `json:"jobs"`
	Status    string  `json:"status"`
	Objective float64 `json:"objective"`
	BestBound float64 `json:"best_bound"`
	Nodes     int     `json:"nodes"`
	Millis    float64 `json:"millis"`
}

// ILPBench solves the §IV-A mode ILP for every Table-I case under a fixed
// node budget and reports per-case solver wall-clock. Cases always run
// serially — the harness measures time, and fanning cases out would let
// them contend — while cfg.ILPWorkers parallelizes the LP relaxation solves
// *inside* each branch-and-bound (bit-identical results at any setting).
func ILPBench(cfg Config) ([]ILPBenchRow, error) {
	cfg = cfg.withDefaults()
	cases, err := workload.CachedCases()
	if err != nil {
		return nil, err
	}
	rows := make([]ILPBenchRow, 0, len(cases))
	for _, c := range cases {
		s, err := c.Set()
		if err != nil {
			return nil, err
		}
		row := ILPBenchRow{Case: c.Name}
		order, err := offline.EDFOrder(s, task.Deepest)
		if err != nil {
			row.Status = "no-order"
			rows = append(rows, row)
			continue
		}
		row.Jobs = len(order)
		p := offline.BuildModeILP(s, order)
		start := time.Now()
		sol, err := ilp.Solve(p, ilp.Options{MaxNodes: ilpBenchNodeBudget, Workers: cfg.ILPWorkers})
		if err != nil {
			return nil, err
		}
		row.Millis = float64(time.Since(start).Microseconds()) / 1000
		row.Status = sol.Status.String()
		// Infinite sentinels (no incumbent / infeasible) are not JSON-encodable;
		// Status already carries that outcome.
		if !math.IsInf(sol.Objective, 0) {
			row.Objective = sol.Objective
		}
		if !math.IsInf(sol.BestBound, 0) {
			row.BestBound = sol.BestBound
		}
		row.Nodes = sol.Nodes
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatILPBench renders the bench rows as a fixed-width table.
func FormatILPBench(rows []ILPBenchRow) string {
	var b strings.Builder
	b.WriteString("OFFLINE MODE-ILP SOLVER BENCH (fixed node budget; serial == parallel results)\n")
	format := "%-7s %5s %-11s %14s %14s %6s %10s\n"
	b.WriteString(fmt.Sprintf(format, "Case", "Jobs", "Status", "Objective", "BestBound", "Nodes", "ms"))
	for _, r := range rows {
		if r.Status == "no-order" {
			b.WriteString(fmt.Sprintf("%-7s %5s %-11s\n", r.Case, "-", r.Status))
			continue
		}
		obj, bound := "-", "-"
		if r.Status == "optimal" || r.Status == "feasible" {
			obj = fmt.Sprintf("%.4f", r.Objective)
			bound = fmt.Sprintf("%.4f", r.BestBound)
		}
		b.WriteString(fmt.Sprintf(format, r.Case, fmt.Sprintf("%d", r.Jobs), r.Status,
			obj, bound, fmt.Sprintf("%d", r.Nodes), fmt.Sprintf("%.2f", r.Millis)))
	}
	return b.String()
}
