package experiments

import (
	"fmt"
	"strings"
	"time"

	"nprt/internal/offline"
	"nprt/internal/sim"
	"nprt/internal/workload"
)

// OverheadRow reports the measured scheduling overhead of one method: the
// paper states that "online computing usually takes a few µs and the ILP
// runtimes range from seconds to minutes" and that the prototype's relative
// overhead is ~0.0001%. This experiment measures the same quantities for
// the reproduction on the host machine.
type OverheadRow struct {
	Method          string
	OfflineBuild    time.Duration // offline schedule construction (0 for online-only)
	PerDispatch     time.Duration // mean wall-clock cost of one Pick+bookkeeping
	Dispatches      int64
	RelativePercent float64 // dispatch overhead / simulated busy time (virtual µs ≈ wall µs)
}

// Overhead measures offline-construction and per-dispatch costs for every
// Table II method on the given case.
func Overhead(caseName string, cfg Config) ([]OverheadRow, error) {
	cfg = cfg.withDefaults()
	c, err := workload.CaseByName(caseName)
	if err != nil {
		return nil, err
	}
	s, err := c.Set()
	if err != nil {
		return nil, err
	}
	var rows []OverheadRow
	methods := append([]string{"EDF-Accurate"}, Table2Methods...)
	for _, m := range methods {
		row := OverheadRow{Method: m}

		// Offline construction cost (the paper's "ILP runtime").
		switch m {
		case "ILP+OA", "ILP+Post+OA", "Flipped EDF":
			start := time.Now()
			switch m {
			case "ILP+OA":
				_, err = offline.NewILPOABestEffort(s)
			case "ILP+Post+OA":
				_, err = offline.NewILPPostOABestEffort(s)
			case "Flipped EDF":
				_, err = offline.NewFlippedEDFBestEffort(s)
			}
			if err != nil {
				return nil, err
			}
			row.OfflineBuild = time.Since(start)
		}

		p, err := buildPolicy(m, s)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := sim.Run(s, p, sim.Config{
			Hyperperiods: cfg.Hyperperiods,
			Sampler:      sim.NewRandomSampler(s, cfg.Seed),
			DropLate:     m == "EDF-Accurate",
		})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		row.Dispatches = res.Jobs
		if res.Jobs > 0 {
			row.PerDispatch = elapsed / time.Duration(res.Jobs)
		}
		// Treat one virtual µs as one wall µs (the calibration of the
		// original testbed): overhead percent = wall-time per dispatch /
		// virtual busy time per dispatch.
		if res.Busy > 0 {
			busyPerJobMicros := float64(res.Busy) / float64(res.Jobs)
			row.RelativePercent = 100 * float64(row.PerDispatch.Microseconds()) / busyPerJobMicros
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatOverhead renders the overhead study.
func FormatOverhead(caseName string, rows []OverheadRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SCHEDULING OVERHEAD (case %s; 1 virtual µs ≡ 1 wall µs)\n", caseName)
	fmt.Fprintf(&b, "%-14s %14s %14s %12s %10s\n",
		"Method", "offline build", "per dispatch", "dispatches", "overhead")
	for _, r := range rows {
		off := "-"
		if r.OfflineBuild > 0 {
			off = r.OfflineBuild.Round(time.Microsecond).String()
		}
		fmt.Fprintf(&b, "%-14s %14s %14s %12d %9.5f%%\n",
			r.Method, off, r.PerDispatch.String(), r.Dispatches, r.RelativePercent)
	}
	return b.String()
}
