package experiments

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func parseCSV(t *testing.T, s string) [][]string {
	t.Helper()
	recs, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatalf("parsing emitted CSV: %v\n%s", err, s)
	}
	return recs
}

func TestWriteTable1CSV(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteTable1CSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, b.String())
	if len(recs) != 15 { // header + 14 cases
		t.Fatalf("%d records", len(recs))
	}
	if recs[0][0] != "case" || recs[1][0] != "Rnd1" || recs[14][0] != "IDCT" {
		t.Errorf("unexpected layout: %v / %v", recs[0], recs[1])
	}
	for _, rec := range recs[1:] {
		if len(rec) != 6 {
			t.Fatalf("row width %d", len(rec))
		}
	}
}

func TestWriteTable2CSVAndJSON(t *testing.T) {
	res, err := Table2(Config{Hyperperiods: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteTable2CSV(&b, res); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, b.String())
	if want := 1 + 14*len(Table2Methods); len(recs) != want {
		t.Fatalf("%d records, want %d", len(recs), want)
	}

	var jb strings.Builder
	if err := WriteJSON(&jb, res); err != nil {
		t.Fatal(err)
	}
	var back Table2Result
	if err := json.Unmarshal([]byte(jb.String()), &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if len(back.Rows) != len(res.Rows) {
		t.Error("JSON lost rows")
	}
}

func TestWriteFigCSV(t *testing.T) {
	f := &FigResult{
		Case: "X",
		Series: map[string][]SeriesPoint{
			"m1": {{Utilization: 1.1, MeanError: 2.5}},
			"m2": {{Utilization: 1.1, MeanError: 1.5}, {Utilization: 1.3, MeanError: 1.7}},
		},
	}
	var b strings.Builder
	if err := WriteFigCSV(&b, f); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, b.String())
	if len(recs) != 4 { // header + 3 points
		t.Fatalf("%d records", len(recs))
	}
}

func TestWriteTable3CSV(t *testing.T) {
	rows := []Table3Row{
		{Case: "A", ESRCViolationPct: 12.5, DPFeasible: true, DPProofComplete: true},
		{Case: "B", ESRCViolationPct: 0, DPFeasible: false, DPProofComplete: false},
	}
	var b strings.Builder
	if err := WriteTable3CSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, b.String())
	if len(recs) != 3 || recs[1][1] != "12.50" || recs[2][2] != "false" {
		t.Errorf("layout: %v", recs)
	}
}

func TestWriteFig4CSV(t *testing.T) {
	f := &Fig4Result{Case: "R", WithPruning: []int{1, 2}, WithoutPruning: []int{1, 4, 9}}
	var b strings.Builder
	if err := WriteFig4CSV(&b, f); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, b.String())
	if len(recs) != 4 { // header + max(2,3) levels
		t.Fatalf("%d records", len(recs))
	}
	if recs[3][2] != "0" || recs[3][3] != "9" {
		t.Errorf("padding wrong: %v", recs[3])
	}
}
