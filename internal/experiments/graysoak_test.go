package experiments

import "testing"

// TestGraySoakReplicated holds the headline gray-failure claim end to
// end: seeded brownouts on primary drives, latency signal armed,
// replicas available — every gate inside GraySoak (lost/orphans/clean
// misses zero, serial repeat and parallel drives bit-identical including
// shed/miss/promotion counts, every brownout era answered by promotion,
// armed misses never above blind misses) must hold, and the torment must
// actually have happened.
func TestGraySoakReplicated(t *testing.T) {
	if testing.Short() {
		t.Skip("gray soak is a multi-drive cluster test")
	}
	r, err := GraySoak(Config{Seed: 7}, t.TempDir(), 400, []int{4}, "first-fit", 1)
	if err != nil {
		t.Fatal(err)
	}
	row := r.Rows[0]
	if row.Brownouts == 0 {
		t.Fatal("soak injected no brownouts; torment plan is dead")
	}
	if row.Promotions == 0 {
		t.Fatal("no promotions despite brownouts with replicas")
	}
	if row.SlowEvents == 0 {
		t.Fatal("latency signal never fired despite brownouts")
	}
	if row.MissesNoSignal == 0 {
		t.Fatal("blind drive missed no deadlines; brownouts never intersected traffic")
	}
	if row.Misses >= row.MissesNoSignal {
		t.Fatalf("latency signal saved nothing: %d armed vs %d blind misses",
			row.Misses, row.MissesNoSignal)
	}
}

// TestGraySoakUnreplicated: without replicas there is no failover, but
// the signal must still fence and shed — and all determinism and audit
// gates must hold.
func TestGraySoakUnreplicated(t *testing.T) {
	if testing.Short() {
		t.Skip("gray soak is a multi-drive cluster test")
	}
	r, err := GraySoak(Config{Seed: 11}, t.TempDir(), 400, []int{4}, "first-fit", 0)
	if err != nil {
		t.Fatal(err)
	}
	row := r.Rows[0]
	if row.Brownouts == 0 {
		t.Fatal("soak injected no brownouts; torment plan is dead")
	}
	if row.Promotions != 0 {
		t.Fatalf("unreplicated soak reported %d promotions", row.Promotions)
	}
	if row.SlowEvents == 0 {
		t.Fatal("latency signal never fired despite brownouts")
	}
}
