package experiments

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"nprt/internal/cluster"
	"nprt/internal/journal"
	schedrt "nprt/internal/runtime"
)

// The gray soak is the gray-failure counterpart of the chaos soak: no
// drive ever dies, but seeded brownouts make one drive at a time SLOW —
// every op on it still succeeds, just 5x over the latency SLO. That is
// the failure mode fail-stop health machines are blind to: nothing
// errors, retries all succeed, and yet every event routed to the browned
// primary blows its client deadline.
//
// The soak drives the same churn tape twice per width: once with the
// latency signal armed (LatencySLO + AdmitDeadline — the windowed WAL-
// sojourn p99 fences slow shards from placement, sheds deadline-carrying
// removes, and with replicas proactively promotes away from the browned
// primary) and once with it off. The claims, checked rather than sampled:
//
//   - Nothing is lost or orphaned, and no CLEAN deadline is ever missed:
//     brownouts delay the WAL, never the admission screen, so every
//     resident set stays Theorem-1 schedulable throughout.
//   - The signal contains the gray failure: with replicas, every
//     brownout window forces at least one promotion away from the slow
//     primary, and the signal-armed drive's browned-window misses never
//     exceed the blind drive's (detection costs at most one tick; the
//     blind drive eats the full window).
//   - Digest-reproducible: the signal-armed drive repeats bit-identically
//     and the concurrent group-commit drive agrees — same digests, same
//     owners, same per-shard promotion counts, same shed and miss
//     counts — because brownouts delay EVERY op on the drive equally, so
//     the windowed p99 is the brownout delay itself regardless of how
//     many ops a serial or parallel drive happens to issue, and all
//     clocks are virtual (sleeps advance them instantly and exactly).

// GrayShardCounts is the default width sweep for the gray soak.
var GrayShardCounts = []int{8, 64}

const (
	// grayBrownRate is the per-tick probability of starting a brownout on
	// a uniformly drawn shard's current primary drive.
	grayBrownRate = 0.04
	// grayBrownTicks is how many ticks a brownout lasts when the latency
	// signal is off (the armed drive promotes away long before expiry).
	grayBrownTicks = 4
	// grayDelay is the browned drive's per-op delay; graySLO is the WAL
	// sojourn p99 ceiling; grayDeadline is the per-event client deadline.
	// delay > deadline > SLO: a browned primary misses every deadline,
	// and the tracker (log2 buckets: 10ms rounds up to 16.8ms) sees the
	// breach on the first windowed sample.
	grayDelay    = 10 * time.Millisecond
	graySLO      = 2 * time.Millisecond
	grayDeadline = 5 * time.Millisecond
)

// GrayRow is the outcome at one cluster width.
type GrayRow struct {
	Shards int `json:"shards"`
	Events int `json:"events"`
	Ticks  int `json:"ticks"`

	// Brownouts counts gray-failure windows injected; SlowEvents and
	// Promotions sum the armed drive's per-shard health counters — how
	// often the latency signal fired and how often it failed over.
	Brownouts  int    `json:"brownouts"`
	SlowEvents uint64 `json:"slow_events"`
	Promotions uint64 `json:"promotions,omitempty"`

	// Misses counts events the ARMED drive applied on a shard whose
	// primary drive was browned (each such apply waits ≥ grayDelay >
	// grayDeadline: a missed client deadline). MissesNoSignal is the same
	// count on the BLIND drive (LatencySLO = AdmitDeadline = 0).
	// DeadlineSheds counts events the armed drive refused at routing
	// because the only candidate was over SLO.
	Misses         int    `json:"misses"`
	MissesNoSignal int    `json:"misses_no_signal"`
	DeadlineSheds  uint64 `json:"deadline_sheds"`

	// MissesClean are scheduler-level deadline misses under the shedding
	// governor's clean windows (must be 0: brownouts never touch the
	// admission screen). Lost/Orphans are the partition-map audit
	// (must be 0).
	MissesClean int64 `json:"misses_clean"`
	Resident    int   `json:"resident"`
	Lost        int   `json:"lost"`
	Orphans     int   `json:"orphans"`

	Replicas int `json:"replicas,omitempty"`

	Digests       []string `json:"digests"`
	RepeatMatch   bool     `json:"repeat_match"`
	ParallelMatch bool     `json:"parallel_match"`
}

// GrayResult is the full artifact.
type GrayResult struct {
	Events   int       `json:"events"`
	Seed     uint64    `json:"seed"`
	Policy   string    `json:"policy"`
	Replicas int       `json:"replicas,omitempty"`
	Rows     []GrayRow `json:"rows"`
}

// grayOutcome is one drive's complete observable state.
type grayOutcome struct {
	digests          []uint64
	owners           map[string]int
	live             map[string]int
	expect           map[string]bool
	metrics          schedrt.Metrics
	healths          []cluster.ShardHealth
	ticks, brownouts int
	misses           int
	sheds            uint64
}

// grayBrown tracks one active brownout: which slot is slow and the tick
// after which it heals.
type grayBrown struct {
	slot  int
	until int
}

// driveGray plays the tape on a fresh cluster under dir with seeded
// brownouts, in the given drive mode, and returns the outcome. sloOn
// arms the latency signal (SLO fencing, deadline sheds, proactive
// promotion); with it off the cluster is blind and every browned-window
// event is a missed deadline. The cluster directory is removed before
// returning.
//
// Determinism: every injector is zero-rate (brownouts are the ONLY
// torment, driver-initiated at tick boundaries — a seeded per-op slow
// probability would diverge between serial and parallel drives, whose op
// counts differ), and each shard's slots AND its store writer share one
// VirtualClock, so the observed WAL sojourn is exactly the injected
// delay with zero wall-clock noise.
func driveGray(dir string, shards, replicas int, policy string, tp *schedrt.Tape, seed uint64, parallel, sloOn bool) (*grayOutcome, error) {
	defer os.RemoveAll(dir)
	clocks := make([]*journal.VirtualClock, shards)
	rfss := make([][]*journal.FaultFS, shards)
	for i := range rfss {
		clocks[i] = journal.NewVirtualClock()
		rfss[i] = make([]*journal.FaultFS, replicas+1)
		for slot := range rfss[i] {
			s := seed ^ uint64(i+1)*chaosShardSalt ^ uint64(slot)*chaosReplicaSalt
			rfss[i][slot] = journal.NewFaultFS(s, journal.FaultRates{})
			rfss[i][slot].SetClock(clocks[i])
		}
	}
	opt := cluster.Options{
		Shards:    shards,
		Replicas:  replicas,
		Placement: policy,
		Store:     schedrt.StoreOptions{NoSync: true, Runtime: schedrt.Options{Governor: churnGovernor}},
		Inject:    func(si int) journal.Injector { return rfss[si][0] },
		InjectReplica: func(si, slot int) journal.Injector {
			return rfss[si][slot]
		},
		Clock: func(si int) journal.Clock { return clocks[si] },
		Retry: cluster.RetryOptions{
			MaxAttempts: 10,
			Seed:        seed,
			Sleep:       func(time.Duration) {}, // deterministic soaks spend no wall-clock
		},
	}
	if sloOn {
		opt.LatencySLO = graySLO
		opt.AdmitDeadline = grayDeadline
		// Window 1: the p99 is this epoch's samples alone, so one browned
		// tick is detected at that tick's own sweep — and one promoted-
		// away tick is enough to read recovered.
		opt.LatencyWindow = 1
	}
	c, err := cluster.Open(dir, opt)
	if err != nil {
		return nil, err
	}
	defer c.Close()

	horizon := int64(32)
	if n := len(tp.Events); n > 0 {
		horizon += tp.Events[n-1].Epoch
	}
	out := &grayOutcome{expect: make(map[string]bool)}
	brown := make(map[int]grayBrown)
	i := 0
	for tick := 0; c.Epoch() < horizon; tick++ {
		out.ticks = tick + 1
		// Brownout draw, keyed on the monotonic tick (same stream shape as
		// the chaos soak). The victim is the CURRENT primary slot's drive:
		// after a promotion the next draw grays the new primary, so the
		// failover path is re-exercised, not just re-confirmed.
		action, victim := chaosDraw(seed, tick)
		if action < grayBrownRate {
			si := int(victim * float64(shards))
			if si >= shards {
				si = shards - 1
			}
			if b, ok := brown[si]; ok {
				rfss[si][b.slot].Brownout(0)
			}
			slot := c.PrimarySlot(si)
			rfss[si][slot].Brownout(grayDelay)
			brown[si] = grayBrown{slot: slot, until: tick + grayBrownTicks}
			out.brownouts++
		}

		// Route this tick's due events, exactly as the chaos soak does.
		start := i
		epoch := c.Epoch()
		for i < len(tp.Events) && tp.Events[i].Epoch <= epoch {
			i++
		}
		due := make([]schedrt.Event, 0, i-start)
		for j := start; j < i; j++ {
			due = append(due, tp.Events[j])
		}
		record := func(ev schedrt.Event, res cluster.Result, err error) error {
			if err != nil {
				if schedrt.IsStaleRequest(err) {
					return nil
				}
				if sloOn && errors.Is(err, cluster.ErrShardSlow) {
					// Deadline shed: the router refused rather than blow the
					// deadline on a slow shard. A shed add was never admitted;
					// a shed remove leaves the task live — the model must
					// agree with the WAL on both.
					out.sheds++
					return nil
				}
				return fmt.Errorf("event at epoch %d: %w", ev.Epoch, err)
			}
			switch ev.Op {
			case "add":
				if res.Decision.Verdict != schedrt.Rejected {
					out.expect[ev.Task.Task.Name] = true
				}
			case "remove":
				delete(out.expect, ev.Name)
			}
			// Event-level deadline accounting: an event applied through a
			// browned primary waited ≥ grayDelay > grayDeadline in the WAL.
			if b, ok := brown[res.Shard]; ok && b.slot == c.PrimarySlot(res.Shard) {
				out.misses++
			}
			return nil
		}
		if parallel {
			results, errs, err := c.ApplyBatch(due)
			if err != nil {
				return nil, err
			}
			for j := range due {
				if err := record(due[j], results[j], errs[j]); err != nil {
					return nil, err
				}
			}
		} else {
			for _, ev := range due {
				res, err := c.Apply(ev)
				if err := record(ev, res, err); err != nil {
					return nil, err
				}
			}
		}
		// The epoch run is where the latency sweep fires: each due shard's
		// tracker holds this tick's WAL sojourns (a browned drive delays
		// every op equally, so serial and parallel drives read the same
		// p99 from different op counts), and a breach fences the shard
		// and — with replicas — promotes away from the browned primary.
		if _, err := c.RunEpoch(parallel); err != nil {
			return nil, err
		}

		// Tick-end maintenance: expire brownouts, then re-seed any out-of-
		// sync follower (after a promotion the demoted old primary must be
		// walked back to sync) under a suspended schedule, exactly as the
		// chaos soak does.
		for si, b := range brown {
			if tick+1 >= b.until {
				rfss[si][b.slot].Brownout(0)
				delete(brown, si)
			}
		}
		if replicas > 0 {
			for s2 := 0; s2 < shards; s2++ {
				var susp []*journal.FaultFS
				for _, ri := range c.Replicas(s2) {
					if !ri.InSync {
						f := rfss[s2][ri.Slot]
						f.Suspend()
						susp = append(susp, f)
					}
				}
				if len(susp) == 0 {
					continue
				}
				_, err := c.ReseedReplicas(s2)
				for _, f := range susp {
					f.Resume()
				}
				if err != nil {
					return nil, fmt.Errorf("gray reseed shard %d at tick %d: %w", s2, tick, err)
				}
			}
		}
		if (tick+1)%32 == 0 {
			if err := c.Checkpoint(); err != nil {
				return nil, err
			}
		}
	}

	if replicas > 0 {
		// End-of-run redundancy audit, as in the chaos soak: byte-verify
		// followers via a final checkpoint, one suspended re-seed pass,
		// then anything still out of sync is a containment failure.
		if err := c.Checkpoint(); err != nil {
			return nil, err
		}
		for si := 0; si < shards; si++ {
			var susp []*journal.FaultFS
			for _, ri := range c.Replicas(si) {
				if !ri.InSync {
					f := rfss[si][ri.Slot]
					f.Suspend()
					susp = append(susp, f)
				}
			}
			if len(susp) > 0 {
				_, err := c.ReseedReplicas(si)
				for _, f := range susp {
					f.Resume()
				}
				if err != nil {
					return nil, fmt.Errorf("gray: final reseed shard %d: %w", si, err)
				}
			}
			for _, ri := range c.Replicas(si) {
				if !ri.InSync {
					return nil, fmt.Errorf("gray: shard %d follower slot %d out of sync at end: %s",
						si, ri.Slot, ri.LastError)
				}
			}
		}
	}

	out.digests = c.Digests()
	out.owners = c.Owners()
	out.live = make(map[string]int)
	for _, sh := range c.Shards() {
		for _, sp := range sh.Store.Runtime().Tasks() {
			out.live[sp.Task.Name] = sh.ID
		}
	}
	out.metrics = c.Metrics()
	out.healths = c.Healths()
	return out, nil
}

// sameGrayOutcome holds the gray determinism claim: final bytes and owner
// map, plus the CONTAINMENT TRACE — per-shard promotion counts, deadline
// sheds, and browned-window misses — must agree between drives.
func sameGrayOutcome(a, b *grayOutcome) bool {
	if len(a.digests) != len(b.digests) || len(a.owners) != len(b.owners) {
		return false
	}
	for i := range a.digests {
		if a.digests[i] != b.digests[i] {
			return false
		}
	}
	for k, v := range a.owners {
		if b.owners[k] != v {
			return false
		}
	}
	if len(a.healths) != len(b.healths) {
		return false
	}
	for i := range a.healths {
		if a.healths[i].Promotions != b.healths[i].Promotions {
			return false
		}
	}
	return a.sheds == b.sheds && a.misses == b.misses
}

// GraySoak plays one churn tape per width under seeded brownouts. Each
// width drives the tape four times: signal-armed serial twice and
// concurrent once (all three must agree exactly — digests, owners,
// promotions, sheds, misses), plus one BLIND serial drive (latency
// signal off) whose browned-window miss count lower-bounds what the
// signal must beat. A lost task, an orphan, a clean-window scheduler
// miss, any divergence, a brownout absorbed without promotion (replicas
// > 0), or an armed drive missing more deadlines than the blind one is
// an error, not a data point.
func GraySoak(cfg Config, dir string, events int, shardCounts []int, policy string, replicas int) (*GrayResult, error) {
	cfg = cfg.withDefaults()
	if events <= 0 {
		events = 1200
	}
	if len(shardCounts) == 0 {
		shardCounts = GrayShardCounts
	}
	if policy == "" {
		policy = "first-fit"
	}
	if replicas < 0 {
		replicas = 0
	}
	tp := GenerateChurnTape(cfg.Seed, events)

	out := &GrayResult{Events: events, Seed: cfg.Seed, Policy: policy, Replicas: replicas}
	for _, shards := range shardCounts {
		var runs [3]*grayOutcome
		for r := 0; r < 3; r++ {
			parallel := r == 2
			mode := "serial"
			if parallel {
				mode = "parallel"
			}
			d := filepath.Join(dir, fmt.Sprintf("gray-%d-%s-%d", shards, mode, r))
			oc, err := driveGray(d, shards, replicas, policy, tp, cfg.Seed, parallel, true)
			if err != nil {
				return nil, fmt.Errorf("gray soak: %d shards (%s run %d): %w", shards, mode, r, err)
			}
			runs[r] = oc
		}
		blind, err := driveGray(filepath.Join(dir, fmt.Sprintf("gray-%d-blind", shards)),
			shards, replicas, policy, tp, cfg.Seed, false, false)
		if err != nil {
			return nil, fmt.Errorf("gray soak: %d shards (blind run): %w", shards, err)
		}

		a := runs[0]
		row := GrayRow{
			Shards:         shards,
			Events:         len(tp.Events),
			Ticks:          a.ticks,
			Brownouts:      a.brownouts,
			Misses:         a.misses,
			MissesNoSignal: blind.misses,
			DeadlineSheds:  a.sheds,
			MissesClean:    a.metrics.MissesClean,
			Resident:       len(a.owners),
			Replicas:       replicas,
			RepeatMatch:    sameGrayOutcome(a, runs[1]),
			ParallelMatch:  sameGrayOutcome(a, runs[2]),
		}
		// DeadlineSheds stays the driver-side event count (a.sheds); the
		// per-shard health counters tally the same events, so folding them
		// in here would double-count.
		for _, h := range a.healths {
			row.SlowEvents += h.SlowEvents
			row.Promotions += h.Promotions
		}
		for _, d := range a.digests {
			row.Digests = append(row.Digests, fmt.Sprintf("%016x", d))
		}
		for name := range a.expect {
			if _, ok := a.live[name]; !ok {
				row.Lost++
			}
			if _, ok := a.owners[name]; !ok {
				row.Lost++
			}
		}
		for name := range a.live {
			if !a.expect[name] {
				row.Orphans++
			}
			if a.owners[name] != a.live[name] {
				row.Orphans++
			}
		}
		out.Rows = append(out.Rows, row)

		switch {
		case row.Lost > 0:
			return nil, fmt.Errorf("gray soak: %d shards: %d task(s) silently lost", shards, row.Lost)
		case row.Orphans > 0:
			return nil, fmt.Errorf("gray soak: %d shards: %d orphaned task(s)", shards, row.Orphans)
		case row.MissesClean > 0:
			return nil, fmt.Errorf("gray soak: %d shards: %d clean deadline miss(es)", shards, row.MissesClean)
		case !row.RepeatMatch:
			return nil, fmt.Errorf("gray soak: %d shards: repeated serial drive diverged", shards)
		case !row.ParallelMatch:
			return nil, fmt.Errorf("gray soak: %d shards: parallel drive diverged from serial", shards)
		case replicas > 0 && row.Brownouts > 0 && row.Promotions == 0:
			return nil, fmt.Errorf("gray soak: %d shards: %d brownout(s) forced no promotion",
				shards, row.Brownouts)
		case row.MissesNoSignal < row.Misses:
			return nil, fmt.Errorf("gray soak: %d shards: latency signal made misses WORSE (%d armed vs %d blind)",
				shards, row.Misses, row.MissesNoSignal)
		}
	}
	return out, nil
}

// FormatGraySoak renders the soak summary.
func FormatGraySoak(r *GrayResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "GRAY SOAK. %d-EVENT CHURN TAPE UNDER SEEDED BROWNOUTS (policy %s, seed %d, replicas %d, delay %v, slo %v, deadline %v)\n",
		r.Events, r.Policy, r.Seed, r.Replicas, grayDelay, graySLO, grayDeadline)
	fmt.Fprintf(&b, "%-7s %6s %6s %6s %7s %7s %7s %7s %6s %5s %7s %8s\n",
		"shards", "ticks", "brown", "slow", "promos", "sheds", "miss", "blind", "clean", "lost", "repeat", "par==ser")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-7d %6d %6d %6d %7d %7d %7d %7d %6d %5d %7v %8v\n",
			row.Shards, row.Ticks, row.Brownouts, row.SlowEvents, row.Promotions,
			row.DeadlineSheds, row.Misses, row.MissesNoSignal, row.MissesClean,
			row.Lost, row.RepeatMatch, row.ParallelMatch)
	}
	return b.String()
}

// WriteGraySoakCSV emits the per-width rows.
func WriteGraySoakCSV(w io.Writer, r *GrayResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"shards", "events", "ticks", "brownouts", "slow_events",
		"promotions", "deadline_sheds", "misses", "misses_no_signal", "misses_clean",
		"resident", "lost", "orphans", "replicas", "repeat_match", "parallel_match"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			strconv.Itoa(row.Shards),
			strconv.Itoa(row.Events),
			strconv.Itoa(row.Ticks),
			strconv.Itoa(row.Brownouts),
			strconv.FormatUint(row.SlowEvents, 10),
			strconv.FormatUint(row.Promotions, 10),
			strconv.FormatUint(row.DeadlineSheds, 10),
			strconv.Itoa(row.Misses),
			strconv.Itoa(row.MissesNoSignal),
			strconv.FormatInt(row.MissesClean, 10),
			strconv.Itoa(row.Resident),
			strconv.Itoa(row.Lost),
			strconv.Itoa(row.Orphans),
			strconv.Itoa(row.Replicas),
			strconv.FormatBool(row.RepeatMatch),
			strconv.FormatBool(row.ParallelMatch),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
