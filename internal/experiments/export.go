package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Machine-readable exports of the experiment artifacts, for plotting
// pipelines: CSV for the tables and figure series, JSON for everything.

// WriteTable1CSV emits Table I rows.
func WriteTable1CSV(w io.Writer, rows []Table1Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"case", "tasks", "utilization_accurate", "jobs_per_hyperperiod",
		"schedulable_accurate", "schedulable_imprecise"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Case,
			strconv.Itoa(r.Tasks),
			strconv.FormatFloat(r.UtilAcc, 'f', 4, 64),
			strconv.Itoa(r.JobsPerP),
			strconv.FormatBool(r.SchedulableAccurate),
			strconv.FormatBool(r.SchedulableImprecise),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable2CSV emits Table II: one row per (case, method) with mean and σ,
// plus the EDF-Accurate miss percentage per case.
func WriteTable2CSV(w io.Writer, t *Table2Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"case", "edf_accurate_miss_pct", "method", "mean_error", "sigma"}); err != nil {
		return err
	}
	for _, row := range t.Rows {
		for _, m := range Table2Methods {
			st := row.Stats[m]
			rec := []string{
				row.Case,
				strconv.FormatFloat(row.EDFAccurateMissPct, 'f', 2, 64),
				m,
				strconv.FormatFloat(st.Mean, 'f', 6, 64),
				strconv.FormatFloat(st.Sigma, 'f', 6, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigCSV emits a curve family: one row per (method, point).
func WriteFigCSV(w io.Writer, f *FigResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"case", "method", "utilization", "mean_error"}); err != nil {
		return err
	}
	for m, pts := range f.Series {
		for _, pt := range pts {
			rec := []string{
				f.Case, m,
				strconv.FormatFloat(pt.Utilization, 'f', 3, 64),
				strconv.FormatFloat(pt.MeanError, 'f', 6, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable3CSV emits Table III rows.
func WriteTable3CSV(w io.Writer, rows []Table3Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"case", "esrc_violation_pct", "dp_feasible", "dp_proof_complete"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Case,
			strconv.FormatFloat(r.ESRCViolationPct, 'f', 2, 64),
			strconv.FormatBool(r.DPFeasible),
			strconv.FormatBool(r.DPProofComplete),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig4CSV emits the pruning comparison: one row per level.
func WriteFig4CSV(w io.Writer, f *Fig4Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"case", "level", "with_pruning", "without_pruning"}); err != nil {
		return err
	}
	n := len(f.WithPruning)
	if len(f.WithoutPruning) > n {
		n = len(f.WithoutPruning)
	}
	for i := 0; i < n; i++ {
		wp, wo := 0, 0
		if i < len(f.WithPruning) {
			wp = f.WithPruning[i]
		}
		if i < len(f.WithoutPruning) {
			wo = f.WithoutPruning[i]
		}
		rec := []string{f.Case, strconv.Itoa(i + 1), strconv.Itoa(wp), strconv.Itoa(wo)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON marshals any artifact with indentation.
func WriteJSON(w io.Writer, artifact any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(artifact); err != nil {
		return fmt.Errorf("experiments: encoding artifact: %w", err)
	}
	return nil
}
