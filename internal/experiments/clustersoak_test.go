package experiments

import (
	"strings"
	"testing"
)

// TestClusterSoak runs the width sweep at test scale: the tape must spread
// across shards at every width, and the parallel drive must be bit-
// identical to the serial one (ClusterSoak errors out otherwise).
func TestClusterSoak(t *testing.T) {
	res, err := ClusterSoak(Config{Seed: 7}, t.TempDir(), 600, []int{8, 32}, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Policy != "first-fit" {
		t.Fatalf("rows %d, policy %q", len(res.Rows), res.Policy)
	}
	for _, row := range res.Rows {
		if !row.ParallelMatch {
			t.Errorf("%d shards: parallel drive diverged", row.Shards)
		}
		if len(row.Digests) != row.Shards {
			t.Errorf("%d shards: %d digests", row.Shards, len(row.Digests))
		}
		// First-fit packs tight: a light churn tape legitimately ends on few
		// shards, but never zero.
		if row.Spread < 1 {
			t.Errorf("%d shards: placement used %d shards", row.Shards, row.Spread)
		}
		if row.Admits == 0 || row.Jobs == 0 {
			t.Errorf("%d shards: empty run (%+v)", row.Shards, row)
		}
	}
	// Wider clusters hold at least as many tasks at the end: capacity is
	// the thing sharding buys.
	if res.Rows[1].Resident < res.Rows[0].Resident {
		t.Errorf("32 shards resident %d < 8 shards %d", res.Rows[1].Resident, res.Rows[0].Resident)
	}

	// Round-robin is the spread baseline: blind spraying must land tasks on
	// many shards while still reproducing exactly under the parallel drive.
	rrRes, err := ClusterSoak(Config{Seed: 7}, t.TempDir(), 600, []int{8}, "round-robin")
	if err != nil {
		t.Fatal(err)
	}
	if row := rrRes.Rows[0]; row.Spread < 4 || !row.ParallelMatch {
		t.Errorf("round-robin soak: spread %d, match %v", row.Spread, row.ParallelMatch)
	}

	txt := FormatClusterSoak(res)
	if !strings.Contains(txt, "CLUSTER SOAK") || !strings.Contains(txt, "first-fit") {
		t.Errorf("summary:\n%s", txt)
	}
	var sb strings.Builder
	if err := WriteClusterSoakCSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "\n"); got != 3 {
		t.Errorf("CSV has %d lines, want 3:\n%s", got, sb.String())
	}
}
