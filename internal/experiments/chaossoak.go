package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"nprt/internal/cluster"
	"nprt/internal/journal"
	"nprt/internal/rng"
	schedrt "nprt/internal/runtime"
)

// The chaos soak is the failure-containment counterpart of the cluster
// soak: the same seeded churn tape, but the cluster is tormented while it
// plays. Every shard WAL sits on a deterministic fault injector
// (journal.FaultFS — refused fsyncs, torn writes, full disks, stalls, all
// pure in (seed, op index)), and a seeded chaos plan kills shards
// (crash-restart through recovery) and wedges them (declared Failed, then
// evacuated through the checkpoint-handoff migration path and re-imaged)
// at tick boundaries, pure in (seed, tick).
//
// The soak's claims, held per width and checked here rather than sampled:
//
//   - Zero silently lost: every task the tape admitted and never removed —
//     minus the explicitly journaled evictions — is live on exactly one
//     shard at the end, and the partition map knows where.
//   - Zero clean misses anywhere: migrated tasks are re-screened by their
//     target's own Theorem-1 admission, so no resident set ever exceeds
//     what the screen proved schedulable — faults and evacuations included.
//   - Digest-reproducible: two serial drives agree bit for bit, and the
//     concurrent group-commit drive agrees with them — same per-shard
//     digests, same final owner map — because kills and wedges key on the
//     monotonic tick counter (NOT the cluster epoch, which re-levels
//     through old values while a re-imaged shard catches up) and transient
//     storage faults are healed by the retry loop before they can change
//     any applied sequence.

// ChaosShardCounts is the default width sweep for the chaos soak.
var ChaosShardCounts = []int{8, 64}

// chaosKillRate / chaosEvacRate are per-tick probabilities of a driver
// action: crash-restart a uniformly drawn shard, or wedge-fail and
// evacuate it. Small enough that most ticks are quiet, large enough that a
// few hundred ticks see several of each.
const (
	chaosKillRate = 0.02
	chaosEvacRate = 0.012
)

// chaosFaultRates is the per-shard storage-fault mix: low rates, because
// the containment loop must keep every fault transient — the retry budget
// has to make escalation to Failed vanishingly improbable, since that is
// what lets the parallel and serial drives converge despite seeing
// different op indices. The budget must comfortably outlast a full stall
// window (StallOps failed ops) plus the handful of fresh fault draws the
// reopen-retries themselves consume; ten attempts put the escalation
// probability past a stall at ~(per-op fault rate)^6.
var chaosFaultRates = journal.FaultRates{
	SyncFailProb: 0.002,
	TornProb:     0.001,
	FullProb:     0.0005,
	StallProb:    0.0005,
	StallOps:     3,
}

// chaosFolRate is the replicated-mode per-tick probability of wedging a
// follower drive (in addition to the primary wedges that reuse the
// chaosEvacRate window): ship failures must demote followers and re-seeds
// must restore them as routinely as primaries fail over.
const chaosFolRate = 0.01

const (
	chaosTickSalt    = 0x9e3779b97f4a7c15
	chaosShardSalt   = 0xd1b54a32d192ed03
	chaosReplicaSalt = 0x94d049bb133111eb
)

// chaosDraw is the pure (seed, tick) action draw: two floats — one for the
// action kind, one for the victim shard.
func chaosDraw(seed uint64, tick int) (action, victim float64) {
	st := rng.New(seed ^ uint64(tick+1)*chaosTickSalt)
	return st.Float64(), st.Float64()
}

// ChaosRow is the outcome at one cluster width.
type ChaosRow struct {
	Shards int `json:"shards"`
	Events int `json:"events"`
	Ticks  int `json:"ticks"`

	Kills    int `json:"kills"`
	Evacs    int `json:"evacs"`
	Migrated int `json:"migrated"`
	Evicted  int `json:"evicted"`

	// Reopens / StoreErrs sum the health counters over shards: how much
	// containment work the injected faults actually caused.
	Reopens   uint64 `json:"reopens"`
	StoreErrs uint64 `json:"store_errs"`

	Misses      int64 `json:"misses"`
	MissesClean int64 `json:"misses_clean"`

	// Resident is the final partition-map size; Lost counts tasks the model
	// says should be live but are not (must be 0); Orphans counts live
	// tasks the model does not expect (must be 0).
	Resident int `json:"resident"`
	Lost     int `json:"lost"`
	Orphans  int `json:"orphans"`

	// Replicated-mode counters (zero when Replicas == 0). Wedges counts
	// primary-drive kills absorbed by failover instead of shedding;
	// FollowerWedges counts follower-drive kills absorbed by demotion.
	// Promotions/Demotions/Reseeds sum the per-shard health counters: how
	// much failover work the torment actually caused.
	Replicas       int    `json:"replicas,omitempty"`
	Wedges         int    `json:"wedges,omitempty"`
	FollowerWedges int    `json:"follower_wedges,omitempty"`
	Promotions     uint64 `json:"promotions,omitempty"`
	Demotions      uint64 `json:"demotions,omitempty"`
	Reseeds        uint64 `json:"reseeds,omitempty"`

	Digests       []string `json:"digests"`
	RepeatMatch   bool     `json:"repeat_match"`
	ParallelMatch bool     `json:"parallel_match"`
}

// ChaosResult is the full artifact.
type ChaosResult struct {
	Events   int        `json:"events"`
	Seed     uint64     `json:"seed"`
	Policy   string     `json:"policy"`
	Replicas int        `json:"replicas,omitempty"`
	Rows     []ChaosRow `json:"rows"`
}

// chaosOutcome is one drive's complete observable state.
type chaosOutcome struct {
	digests                                []uint64
	owners                                 map[string]int
	live                                   map[string]int
	expect                                 map[string]bool
	metrics                                schedrt.Metrics
	healths                                []cluster.ShardHealth
	ticks, kills, evacs, migrated, evicted int
	wedges, fwedges                        int
}

// driveChaos plays the tape on a fresh cluster under dir with the full
// torment plan, in the given drive mode, and returns the outcome. The
// cluster directory is removed before returning.
//
// With replicas > 0 the torment targets drives, not shards: a wedge lands
// on the current primary slot's injector (the failover path must absorb
// it with zero shed — any ErrShardFailed surfacing through record fails
// the run) or on a follower slot (the ship must demote it). Wedged drives
// heal at the tick's end — replaced, suspended for the verified re-seed,
// resumed — so every failover is followed by redundancy restoration, and
// the next wedge can target the new primary.
func driveChaos(dir string, shards, replicas int, policy string, tp *schedrt.Tape, seed uint64, parallel bool) (*chaosOutcome, error) {
	defer os.RemoveAll(dir)
	// One deterministic fault plan per drive: injectors follow the slot
	// directory, not the role, exactly as physical disks would.
	rfss := make([][]*journal.FaultFS, shards)
	for i := range rfss {
		rfss[i] = make([]*journal.FaultFS, replicas+1)
		for slot := range rfss[i] {
			s := seed ^ uint64(i+1)*chaosShardSalt ^ uint64(slot)*chaosReplicaSalt
			rfss[i][slot] = journal.NewFaultFS(s, chaosFaultRates)
		}
	}
	c, err := cluster.Open(dir, cluster.Options{
		Shards:    shards,
		Replicas:  replicas,
		Placement: policy,
		Store:     schedrt.StoreOptions{NoSync: true, Runtime: schedrt.Options{Governor: churnGovernor}},
		Inject:    func(si int) journal.Injector { return rfss[si][0] },
		InjectReplica: func(si, slot int) journal.Injector {
			return rfss[si][slot]
		},
		Retry: cluster.RetryOptions{
			MaxAttempts: 10,
			Seed:        seed,
			Sleep:       func(time.Duration) {}, // deterministic soaks spend no wall-clock
		},
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	horizon := int64(32)
	if n := len(tp.Events); n > 0 {
		horizon += tp.Events[n-1].Epoch
	}
	out := &chaosOutcome{expect: make(map[string]bool)}
	i := 0
	// The tick counter is monotonic and independent of the cluster clock:
	// an evacuation drops the re-imaged shard to epoch 0 and the clock
	// re-levels through old values during catch-up — keying chaos on the
	// epoch would re-trigger the same wedge forever.
	for tick := 0; c.Epoch() < horizon; tick++ {
		out.ticks = tick + 1
		action, victim := chaosDraw(seed, tick)
		si := int(victim * float64(shards))
		if si >= shards {
			si = shards - 1
		}
		// wedged collects this tick's dead drives; each heals — and its
		// shard's followers re-seed — at the tick's end.
		var wedged []*journal.FaultFS
		switch {
		case action < chaosKillRate:
			// Crash-restart at a quiescent boundary: close, recover from
			// checkpoint + WAL replay, rebuild the mirror.
			if err := c.CrashShard(si); err != nil {
				return nil, fmt.Errorf("chaos kill shard %d at tick %d: %w", si, tick, err)
			}
			out.kills++
		case action < chaosKillRate+chaosEvacRate && replicas > 0:
			// Primary-drive wedge: the disk under the current primary dies
			// mid-flight. No FailShard, no evacuation — the tick's own
			// events and epoch run must drive the health machine through
			// promotion, and any shed (ErrShardFailed reaching record)
			// fails the soak. Zero-shed is the claim under test.
			wedged = append(wedged, rfss[si][c.PrimarySlot(si)])
			wedged[len(wedged)-1].Wedge()
			out.wedges++
		case action < chaosKillRate+chaosEvacRate && shards > 1:
			// Wedge: the device dies mid-flight. Declare the shard Failed,
			// heal the device, then drain every task through the checkpoint-
			// handoff path and re-image. The source device's fault schedule
			// is suspended for the maintenance window (the operator verified
			// the replacement disk); target-shard and meta writes during the
			// handoff stay fully exposed to their own fault plans.
			level := c.Epoch()
			fss := rfss[si][0]
			fss.Wedge()
			c.FailShard(si, fmt.Sprintf("chaos wedge at tick %d", tick))
			fss.Heal()
			fss.Suspend()
			rep, err := c.EvacuateShard(si)
			fss.Resume()
			if err != nil {
				return nil, fmt.Errorf("chaos evacuate shard %d at tick %d: %w", si, tick, err)
			}
			// Walk the re-imaged shard (epoch 0) back to lockstep inside the
			// same tick: RunEpoch's min-rule advances only the laggard, so
			// this is pure empty-shard replay of the survivors' clock. It
			// cannot ride the outer loop — there the cluster clock would
			// re-level through ~level old values, and any fresh evacuation
			// draw during the walk resets it again; once the horizon exceeds
			// the mean evacuation gap the clock only clears the horizon on an
			// evacuation-free streak, which stops arriving at soak scale.
			for c.Epoch() < level {
				if _, err := c.RunEpoch(parallel); err != nil {
					return nil, fmt.Errorf("chaos catch-up shard %d at tick %d: %w", si, tick, err)
				}
			}
			out.evacs++
			out.migrated += rep.Migrated
			out.evicted += rep.Evicted
			for _, mv := range rep.Moves {
				if mv.Evicted {
					delete(out.expect, mv.Name)
				}
			}
		case action < chaosKillRate+chaosEvacRate+chaosFolRate && replicas > 0:
			// Follower-drive wedge: the next ship to it fails, demoting it;
			// the primary keeps acking. Pick the first non-primary slot so
			// the victim is a pure function of the role state.
			for slot := 0; slot <= replicas; slot++ {
				if slot != c.PrimarySlot(si) {
					wedged = append(wedged, rfss[si][slot])
					wedged[len(wedged)-1].Wedge()
					out.fwedges++
					break
				}
			}
		}

		// Route this tick's due events, exactly as PlayTape would.
		start := i
		epoch := c.Epoch()
		for i < len(tp.Events) && tp.Events[i].Epoch <= epoch {
			i++
		}
		// Events are NOT pre-stamped with tape indices: the router assigns
		// each arrival the next global sequence. That keeps per-shard
		// arrival sequences monotone even after migration handoffs stamp
		// fresh (high) sequences onto target shards — the property the
		// retry dedup guard depends on. (PlayTape pre-stamps because it
		// re-delivers the tape across cluster reopens; this driver never
		// re-delivers.)
		due := make([]schedrt.Event, 0, i-start)
		for j := start; j < i; j++ {
			due = append(due, tp.Events[j])
		}
		record := func(ev schedrt.Event, res cluster.Result, err error) error {
			if err != nil {
				if schedrt.IsStaleRequest(err) {
					return nil
				}
				return fmt.Errorf("event at epoch %d: %w", ev.Epoch, err)
			}
			switch ev.Op {
			case "add":
				if res.Decision.Verdict != schedrt.Rejected {
					out.expect[ev.Task.Task.Name] = true
				}
			case "remove":
				delete(out.expect, ev.Name)
			}
			return nil
		}
		if parallel {
			results, errs, err := c.ApplyBatch(due)
			if err != nil {
				return nil, err
			}
			for j := range due {
				if err := record(due[j], results[j], errs[j]); err != nil {
					return nil, err
				}
			}
		} else {
			for _, ev := range due {
				res, err := c.Apply(ev)
				if err := record(ev, res, err); err != nil {
					return nil, err
				}
			}
		}
		if _, err := c.RunEpoch(parallel); err != nil {
			return nil, err
		}

		// Tick-end maintenance: replaced drives come back, and every
		// out-of-sync follower — the demoted old primary after a failover,
		// a ship-failed or wedged follower — is re-seeded under a suspended
		// fault schedule (the operator verified the new disk; suspension
		// freezes the drive's op counter, so the schedule is untouched).
		// This bounds the redundancy gap to within one tick: each wedge
		// draw happens against a fully in-sync follower set.
		for _, f := range wedged {
			f.Heal()
		}
		if replicas > 0 {
			for s2 := 0; s2 < shards; s2++ {
				var susp []*journal.FaultFS
				for _, ri := range c.Replicas(s2) {
					if !ri.InSync {
						f := rfss[s2][ri.Slot]
						f.Suspend()
						susp = append(susp, f)
					}
				}
				if len(susp) == 0 {
					continue
				}
				_, err := c.ReseedReplicas(s2)
				for _, f := range susp {
					f.Resume()
				}
				if err != nil {
					return nil, fmt.Errorf("chaos reseed shard %d at tick %d: %w", s2, tick, err)
				}
			}
		}
		if (tick+1)%32 == 0 {
			if err := c.Checkpoint(); err != nil {
				return nil, err
			}
		}
	}

	if replicas > 0 {
		// End-of-run redundancy audit: a final checkpoint byte-verifies
		// every follower against its primary (the scrub demotes silent
		// divergence), then one suspended-schedule re-seed pass restores
		// anything the scrub itself demoted — the checkpoint's own ships
		// and re-seeds are still fault-exposed, so a parting stall can
		// legitimately demote. After that pass, anything still out of sync
		// is a containment failure, not a data point.
		if err := c.Checkpoint(); err != nil {
			return nil, err
		}
		for si := 0; si < shards; si++ {
			var susp []*journal.FaultFS
			for _, ri := range c.Replicas(si) {
				if !ri.InSync {
					f := rfss[si][ri.Slot]
					f.Suspend()
					susp = append(susp, f)
				}
			}
			if len(susp) > 0 {
				_, err := c.ReseedReplicas(si)
				for _, f := range susp {
					f.Resume()
				}
				if err != nil {
					return nil, fmt.Errorf("chaos: final reseed shard %d: %w", si, err)
				}
			}
			for _, ri := range c.Replicas(si) {
				if !ri.InSync {
					return nil, fmt.Errorf("chaos: shard %d follower slot %d out of sync at end: %s",
						si, ri.Slot, ri.LastError)
				}
			}
		}
	}

	out.digests = c.Digests()
	out.owners = c.Owners()
	out.live = make(map[string]int)
	for _, sh := range c.Shards() {
		for _, sp := range sh.Store.Runtime().Tasks() {
			out.live[sp.Task.Name] = sh.ID
		}
	}
	out.metrics = c.Metrics()
	out.healths = c.Healths()
	return out, nil
}

func sameChaosOutcome(a, b *chaosOutcome) bool {
	if len(a.digests) != len(b.digests) || len(a.owners) != len(b.owners) {
		return false
	}
	for i := range a.digests {
		if a.digests[i] != b.digests[i] {
			return false
		}
	}
	for k, v := range a.owners {
		if b.owners[k] != v {
			return false
		}
	}
	// Failover determinism: promotion is a pure function of (health state,
	// replica high-water marks), so the drives must agree not just on final
	// bytes but on how many promotions each shard took to get there.
	if len(a.healths) != len(b.healths) {
		return false
	}
	for i := range a.healths {
		if a.healths[i].Promotions != b.healths[i].Promotions {
			return false
		}
	}
	return true
}

// ChaosSoak plays one churn tape per width under the full torment plan:
// storage faults on every shard WAL, seeded kills, seeded wedge-and-
// evacuate cycles. Each width drives the tape three times — serial, serial
// again, concurrent — and requires all three to agree exactly; a lost
// task, an unexpected survivor, a clean miss, or any digest divergence is
// an error, not a data point.
//
// With replicas > 0 every shard carries that many synchronous followers
// and the expect-model tightens to zero-shed: wedges land on primary and
// follower drives alike, failures are absorbed by promotion and re-seed
// instead of evacuation, and the run errors on ANY shed, eviction,
// lingering out-of-sync follower, or promotion-count divergence between
// the drives — on top of the unreplicated soak's lost/orphan/miss gates.
func ChaosSoak(cfg Config, dir string, events int, shardCounts []int, policy string, replicas int) (*ChaosResult, error) {
	cfg = cfg.withDefaults()
	if events <= 0 {
		events = 1200
	}
	if len(shardCounts) == 0 {
		shardCounts = ChaosShardCounts
	}
	if policy == "" {
		policy = "first-fit"
	}
	if replicas < 0 {
		replicas = 0
	}
	tp := GenerateChurnTape(cfg.Seed, events)

	out := &ChaosResult{Events: events, Seed: cfg.Seed, Policy: policy, Replicas: replicas}
	for _, shards := range shardCounts {
		var runs [3]*chaosOutcome
		for r := 0; r < 3; r++ {
			parallel := r == 2
			mode := "serial"
			if parallel {
				mode = "parallel"
			}
			d := filepath.Join(dir, fmt.Sprintf("chaos-%d-%s-%d", shards, mode, r))
			oc, err := driveChaos(d, shards, replicas, policy, tp, cfg.Seed, parallel)
			if err != nil {
				return nil, fmt.Errorf("chaos soak: %d shards (%s run %d): %w", shards, mode, r, err)
			}
			runs[r] = oc
		}
		a := runs[0]
		row := ChaosRow{
			Shards:         shards,
			Events:         len(tp.Events),
			Ticks:          a.ticks,
			Kills:          a.kills,
			Evacs:          a.evacs,
			Migrated:       a.migrated,
			Evicted:        a.evicted,
			Misses:         a.metrics.Misses,
			MissesClean:    a.metrics.MissesClean,
			Resident:       len(a.owners),
			Replicas:       replicas,
			Wedges:         a.wedges,
			FollowerWedges: a.fwedges,
			RepeatMatch:    sameChaosOutcome(a, runs[1]),
			ParallelMatch:  sameChaosOutcome(a, runs[2]),
		}
		for _, h := range a.healths {
			row.Reopens += h.Reopens
			row.StoreErrs += h.TotalErrs
			row.Promotions += h.Promotions
			row.Demotions += h.ReplicaDemotions
			row.Reseeds += h.ReplicaReseeds
		}
		for _, d := range a.digests {
			row.Digests = append(row.Digests, fmt.Sprintf("%016x", d))
		}
		// Zero silently lost: the model set (admitted − removed − evicted)
		// must be exactly the live set, and the partition map must agree.
		for name := range a.expect {
			if _, ok := a.live[name]; !ok {
				row.Lost++
			}
			if _, ok := a.owners[name]; !ok {
				row.Lost++
			}
		}
		for name := range a.live {
			if !a.expect[name] {
				row.Orphans++
			}
			if a.owners[name] != a.live[name] {
				row.Orphans++
			}
		}
		out.Rows = append(out.Rows, row)

		switch {
		case row.Lost > 0:
			return nil, fmt.Errorf("chaos soak: %d shards: %d task(s) silently lost", shards, row.Lost)
		case row.Orphans > 0:
			return nil, fmt.Errorf("chaos soak: %d shards: %d orphaned task(s)", shards, row.Orphans)
		case row.MissesClean > 0:
			return nil, fmt.Errorf("chaos soak: %d shards: %d clean deadline miss(es)", shards, row.MissesClean)
		case !row.RepeatMatch:
			return nil, fmt.Errorf("chaos soak: %d shards: repeated serial drive diverged", shards)
		case !row.ParallelMatch:
			return nil, fmt.Errorf("chaos soak: %d shards: parallel drive diverged from serial", shards)
		case replicas > 0 && row.Evacs+row.Evicted > 0:
			// Replicated failure handling never evacuates or evicts: a dead
			// drive is a failover, not a drain.
			return nil, fmt.Errorf("chaos soak: %d shards: replicated run evacuated/evicted (%d/%d)",
				shards, row.Evacs, row.Evicted)
		case replicas > 0 && row.Wedges > 0 && row.Promotions == 0:
			return nil, fmt.Errorf("chaos soak: %d shards: %d primary wedge(s) caused no promotion",
				shards, row.Wedges)
		}
	}
	return out, nil
}

// FormatChaosSoak renders the soak summary.
func FormatChaosSoak(r *ChaosResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CHAOS SOAK. %d-EVENT CHURN TAPE UNDER STORAGE FAULTS, KILLS AND EVACUATIONS (policy %s, seed %d, replicas %d)\n",
		r.Events, r.Policy, r.Seed, r.Replicas)
	fmt.Fprintf(&b, "%-7s %6s %6s %6s %9s %8s %8s %9s %7s %7s %7s %6s %5s %7s %7s %8s\n",
		"shards", "ticks", "kills", "evacs", "migrated", "evicted", "reopens", "storeerrs",
		"wedges", "promos", "reseeds", "miss", "clean", "lost", "repeat", "par==ser")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-7d %6d %6d %6d %9d %8d %8d %9d %7d %7d %7d %6d %5d %7d %7v %8v\n",
			row.Shards, row.Ticks, row.Kills, row.Evacs, row.Migrated, row.Evicted,
			row.Reopens, row.StoreErrs, row.Wedges+row.FollowerWedges, row.Promotions,
			row.Reseeds, row.Misses, row.MissesClean, row.Lost,
			row.RepeatMatch, row.ParallelMatch)
	}
	return b.String()
}

// WriteChaosSoakCSV emits the per-width rows.
func WriteChaosSoakCSV(w io.Writer, r *ChaosResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"shards", "events", "ticks", "kills", "evacs", "migrated",
		"evicted", "reopens", "store_errs", "misses", "misses_clean", "resident",
		"lost", "orphans", "replicas", "wedges", "follower_wedges", "promotions",
		"demotions", "reseeds", "repeat_match", "parallel_match"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			strconv.Itoa(row.Shards),
			strconv.Itoa(row.Events),
			strconv.Itoa(row.Ticks),
			strconv.Itoa(row.Kills),
			strconv.Itoa(row.Evacs),
			strconv.Itoa(row.Migrated),
			strconv.Itoa(row.Evicted),
			strconv.FormatUint(row.Reopens, 10),
			strconv.FormatUint(row.StoreErrs, 10),
			strconv.FormatInt(row.Misses, 10),
			strconv.FormatInt(row.MissesClean, 10),
			strconv.Itoa(row.Resident),
			strconv.Itoa(row.Lost),
			strconv.Itoa(row.Orphans),
			strconv.Itoa(row.Replicas),
			strconv.Itoa(row.Wedges),
			strconv.Itoa(row.FollowerWedges),
			strconv.FormatUint(row.Promotions, 10),
			strconv.FormatUint(row.Demotions, 10),
			strconv.FormatUint(row.Reseeds, 10),
			strconv.FormatBool(row.RepeatMatch),
			strconv.FormatBool(row.ParallelMatch),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
