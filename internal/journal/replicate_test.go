package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// mkStore builds a primary-store-shaped directory (wal/ + optional
// top-level files) with n synced records and returns its writer.
func mkStore(t *testing.T, dir string, n int, opt Options) *Writer {
	t.Helper()
	if err := os.MkdirAll(filepath.Join(dir, "wal"), 0o755); err != nil {
		t.Fatal(err)
	}
	w, err := Open(filepath.Join(dir, "wal"), opt)
	if err != nil {
		t.Fatal(err)
	}
	write(t, w, n)
	return w
}

func mustVerify(t *testing.T, m *Mirror) {
	t.Helper()
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	a, err := DirDigest(m.Src())
	if err != nil {
		t.Fatal(err)
	}
	b, err := DirDigest(m.Dst())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("digests differ after Verify passed: %016x vs %016x", a, b)
	}
}

func TestMirrorShipsIncrementally(t *testing.T) {
	src, dst := filepath.Join(t.TempDir(), "p"), filepath.Join(t.TempDir(), "f")
	w := mkStore(t, src, 5, Options{})
	defer w.Close()
	if err := os.WriteFile(filepath.Join(src, "ckpt-0000000000000001.ckpt"), []byte("checkpoint-one"), 0o644); err != nil {
		t.Fatal(err)
	}

	m := NewMirror(src, dst, MirrorOptions{})
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, m)

	// Incremental: more records, a new checkpoint, re-ship.
	write(t, w, 7)
	if err := os.WriteFile(filepath.Join(src, "ckpt-000000000000000a.ckpt"), []byte("checkpoint-two, longer"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, m)

	// Idempotent: shipping with no delta changes nothing and succeeds.
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, m)

	recs, st := replayAll(t, filepath.Join(dst, "wal"))
	if len(recs) != 12 || st.Torn {
		t.Fatalf("follower replays %d records (torn=%v), want 12 clean", len(recs), st.Torn)
	}
}

func TestMirrorFollowsRotationCompactionReset(t *testing.T) {
	src, dst := filepath.Join(t.TempDir(), "p"), filepath.Join(t.TempDir(), "f")
	// Tiny segments force rotation.
	w := mkStore(t, src, 40, Options{SegmentBytes: 256})
	defer w.Close()
	m := NewMirror(src, dst, MirrorOptions{})
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, m)
	if w.Segments() < 2 {
		t.Fatalf("test needs rotation; got %d segment(s)", w.Segments())
	}

	// Compaction prunes whole segments; the follower must drop them too.
	if err := w.CompactTo(30); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, m)

	// Reset rewrites the journal at a new base (the checkpoint fence).
	if err := w.Reset(100); err != nil {
		t.Fatal(err)
	}
	write(t, w, 3)
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, m)
	var recs []Record
	if _, err := Replay(filepath.Join(dst, "wal"), 100, func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].Index != 101 {
		t.Fatalf("follower after reset: %d records, first index %v", len(recs), recs)
	}
}

func TestMirrorShipsOnlyValidPrefix(t *testing.T) {
	src, dst := filepath.Join(t.TempDir(), "p"), filepath.Join(t.TempDir(), "f")
	w := mkStore(t, src, 4, Options{})
	w.Close()
	// Simulate a torn primary tail: append garbage past the valid frames.
	segs, err := listSegments(filepath.Join(src, "wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	seg := filepath.Join(src, "wal", segName(segs[0]))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m := NewMirror(src, dst, MirrorOptions{})
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	recs, st := replayAll(t, filepath.Join(dst, "wal"))
	if len(recs) != 4 || st.Torn {
		t.Fatalf("follower replays %d records (torn=%v), want the 4-record valid prefix, clean", len(recs), st.Torn)
	}
	// Verify correctly reports divergence — the follower deliberately
	// lacks the primary's torn garbage bytes.
	if err := m.Verify(); !errors.Is(err, ErrReplicaDiverged) {
		t.Fatalf("Verify after torn-primary ship: %v, want ErrReplicaDiverged", err)
	}
}

func TestMirrorDetectsFollowerTamper(t *testing.T) {
	src, dst := filepath.Join(t.TempDir(), "p"), filepath.Join(t.TempDir(), "f")
	w := mkStore(t, src, 6, Options{})
	defer w.Close()
	m := NewMirror(src, dst, MirrorOptions{})
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	// Truncate the follower behind the mirror's back.
	segs, _ := listSegments(filepath.Join(dst, "wal"))
	seg := filepath.Join(dst, "wal", segName(segs[0]))
	st, _ := os.Stat(seg)
	if err := os.Truncate(seg, st.Size()-5); err != nil {
		t.Fatal(err)
	}
	write(t, w, 1)
	if err := m.Sync(); !errors.Is(err, ErrReplicaDiverged) {
		t.Fatalf("Sync over tampered follower: %v, want ErrReplicaDiverged", err)
	}
}

func TestMirrorArmedFlipIsSilentUntilVerify(t *testing.T) {
	src, dst := filepath.Join(t.TempDir(), "p"), filepath.Join(t.TempDir(), "f")
	w := mkStore(t, src, 3, Options{})
	defer w.Close()
	fs := NewFaultFS(7, FaultRates{})
	m := NewMirror(src, dst, MirrorOptions{Inject: fs})
	fs.ArmFlip()
	if err := m.Sync(); err != nil {
		t.Fatalf("armed flip must land silently, got %v", err)
	}
	if got := fs.Stats().BitFlips; got != 1 {
		t.Fatalf("BitFlips = %d, want 1", got)
	}
	if err := m.Verify(); !errors.Is(err, ErrReplicaDiverged) {
		t.Fatalf("Verify after silent flip: %v, want ErrReplicaDiverged", err)
	}
	// Re-seed: wipe and ship fresh through a new mirror; now clean.
	if err := os.RemoveAll(dst); err != nil {
		t.Fatal(err)
	}
	m2 := NewMirror(src, dst, MirrorOptions{Inject: fs})
	if err := m2.Sync(); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, m2)
}

func TestMirrorFollowerFaultErrorsButPrimaryUnharmed(t *testing.T) {
	src, dst := filepath.Join(t.TempDir(), "p"), filepath.Join(t.TempDir(), "f")
	w := mkStore(t, src, 5, Options{})
	defer w.Close()
	fs := NewFaultFS(7, FaultRates{})
	m := NewMirror(src, dst, MirrorOptions{Inject: fs})
	fs.Wedge()
	if err := m.Sync(); !errors.Is(err, ErrInjectedWedge) {
		t.Fatalf("Sync onto wedged follower: %v, want ErrInjectedWedge", err)
	}
	fs.Heal()
	// After healing, a fresh mirror (re-seed) converges.
	m2 := NewMirror(src, dst, MirrorOptions{Inject: fs})
	if err := m2.Sync(); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, m2)
	// The primary never went through the follower injector's write path
	// beyond its own appends.
	recs, _ := replayAll(t, filepath.Join(src, "wal"))
	if len(recs) != 5 {
		t.Fatalf("primary has %d records, want 5", len(recs))
	}
}

func TestHighWater(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "p")
	if hw, err := HighWater(dir); err != nil || hw != 0 {
		t.Fatalf("empty HighWater = %d, %v", hw, err)
	}
	w := mkStore(t, dir, 9, Options{})
	defer w.Close()
	if hw, err := HighWater(dir); err != nil || hw != 9 {
		t.Fatalf("HighWater = %d, %v, want 9", hw, err)
	}
}

func TestCheckCleanAndTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	write(t, w, 10)
	w.Close()

	rep, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt() || len(rep.Problems) != 0 || rep.Records != 10 || rep.Last != 10 {
		t.Fatalf("clean journal: %+v", rep)
	}

	// A torn tail (crash artifact) is benign.
	segs, _ := listSegments(dir)
	seg := filepath.Join(dir, segName(segs[len(segs)-1]))
	f, _ := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	f.Write([]byte("torn!"))
	f.Close()
	rep, err = Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt() || len(rep.Problems) != 1 || !rep.Problems[0].Benign {
		t.Fatalf("torn tail: %+v", rep)
	}
}

func TestCheckFlagsSilentCorruption(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	write(t, w, 10)
	w.Close()

	// Flip one byte in the middle of the journal — valid frames follow, so
	// this is mid-journal corruption, never a benign tail.
	segs, _ := listSegments(dir)
	seg := filepath.Join(dir, segName(segs[0]))
	data, _ := os.ReadFile(seg)
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Corrupt() {
		t.Fatalf("flipped byte not flagged: %+v", rep)
	}

	// A corrupted header is never benign either.
	data[0] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Corrupt() {
		t.Fatalf("bad header not flagged: %+v", rep)
	}
}

func TestCheckFlagsChainGap(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	write(t, w, 40)
	w.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	// Delete a middle segment: the chain has a hole recovery would stop at.
	if err := os.Remove(filepath.Join(dir, segName(segs[1]))); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Corrupt() {
		t.Fatalf("chain gap not flagged: %+v", rep)
	}
}

// FuzzReplicaReplay pins the shipping stream's safety property: a
// follower holding ANY prefix of the primary's frames — including one cut
// mid-frame and extended with arbitrary garbage, the worst a torn ship
// can leave — always replays to a strict prefix of the primary's records,
// never panics, and never yields a record the primary did not write.
func FuzzReplicaReplay(f *testing.F) {
	// One fixed primary stream, rebuilt per exec from its bytes.
	srcDir := f.TempDir()
	w, err := Open(srcDir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	var want []string
	for i := 0; i < 12; i++ {
		p := []byte(fmt.Sprintf("payload-%d", i))
		if _, err := w.Append(TypeEvent, p); err != nil {
			f.Fatal(err)
		}
		want = append(want, string(p))
	}
	if err := w.Sync(); err != nil {
		f.Fatal(err)
	}
	w.Close()
	segs, err := listSegments(srcDir)
	if err != nil || len(segs) != 1 {
		f.Fatalf("segments: %v %v", segs, err)
	}
	src, err := os.ReadFile(filepath.Join(srcDir, segName(segs[0])))
	if err != nil {
		f.Fatal(err)
	}

	f.Add(uint16(0), []byte(nil))
	f.Add(uint16(len(src)), []byte(nil))
	f.Add(uint16(40), []byte{0xff, 0x00, 0x12})
	f.Add(uint16(len(src)/2), []byte("garbage after the cut"))

	f.Fuzz(func(t *testing.T, cut uint16, garbage []byte) {
		n := int(cut)
		if n > len(src) {
			n = len(src)
		}
		frame := append(append([]byte(nil), src[:n]...), garbage...)
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(segs[0])), frame, 0o644); err != nil {
			t.Fatal(err)
		}
		var got []string
		if _, err := Replay(dir, 0, func(r Record) error {
			got = append(got, string(r.Payload))
			return nil
		}); err != nil {
			t.Fatalf("replay over shipped prefix errored: %v", err)
		}
		if len(got) > len(want) {
			t.Fatalf("replayed %d records from a %d-record primary", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("record %d: %q, want primary's %q", i, got[i], want[i])
			}
		}
	})
}
