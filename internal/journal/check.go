// Check is the offline scrub behind `impserve -fsck`: a read-only walk of
// one journal directory that distinguishes the benign crash artifact (a
// torn tail at the very end of the journal, which Open repairs) from
// silent corruption (a bad header, a CRC mismatch or index gap with valid
// data after it, a broken segment chain) that recovery would silently
// truncate away — exactly the failure a replica digest or a scrub must
// catch before it becomes data loss.
package journal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
)

// CheckProblem is one finding of the scrub.
type CheckProblem struct {
	File   string `json:"file"`
	Offset int64  `json:"offset"`
	Detail string `json:"detail"`
	// Benign marks the one expected failure shape: a torn frame at the
	// journal's end with nothing valid after it. Open truncates it; it is
	// a crash artifact, not corruption.
	Benign bool `json:"benign"`
}

// CheckReport summarizes a scrub of one journal directory.
type CheckReport struct {
	Dir      string         `json:"dir"`
	Segments int            `json:"segments"`
	Records  int            `json:"records"`
	Last     uint64         `json:"last"`
	Problems []CheckProblem `json:"problems,omitempty"`
}

// Corrupt reports whether the scrub found non-benign damage.
func (r *CheckReport) Corrupt() bool {
	for _, p := range r.Problems {
		if !p.Benign {
			return true
		}
	}
	return false
}

// Check scrubs the journal in dir without modifying it. A missing or
// empty directory is a clean (zero-record) journal. The error return is
// for I/O failures reading the scrub's own inputs; verdicts about the
// journal's bytes go in the report.
func Check(dir string) (*CheckReport, error) {
	rep := &CheckReport{Dir: dir}
	bases, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return rep, nil
		}
		return nil, err
	}
	rep.Segments = len(bases)
	var next uint64
	for i, base := range bases {
		name := segName(base)
		if i > 0 && base != next {
			rep.Problems = append(rep.Problems, CheckProblem{
				File:   name,
				Detail: fmt.Sprintf("segment chain gap: starts at index %d, previous segment ends at %d", base, next-1),
			})
			next = base // resynchronize so the rest of the chain still gets scanned
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if len(data) < headerSize {
			rep.Problems = append(rep.Problems, CheckProblem{
				File: name, Detail: fmt.Sprintf("truncated header (%d bytes)", len(data)),
				// A truncated header on the FINAL segment is the crash
				// artifact of dying inside newSegment; anywhere else the
				// chain is broken.
				Benign: i == len(bases)-1,
			})
			continue
		}
		hbase, ok := decodeHeader(data)
		if !ok {
			rep.Problems = append(rep.Problems, CheckProblem{
				File: name, Detail: "segment header magic/version/CRC mismatch",
			})
			continue
		}
		if hbase != base {
			rep.Problems = append(rep.Problems, CheckProblem{
				File: name, Detail: fmt.Sprintf("header base %d does not match file name", hbase),
			})
			continue
		}
		if i == 0 {
			next = base
		}
		off := headerSize
		for off < len(data) {
			rec, n, ok := decodeRecord(data, off, next)
			if !ok {
				// Valid frames may resume after the damage (decodeRecord
				// refuses out-of-order indices, so probe every offset for a
				// well-formed frame of any index). If they do, this is
				// mid-journal corruption, not a torn tail.
				resumeAt := int64(-1)
				for probe := off + 1; probe+frameSize <= len(data); probe++ {
					if _, _, ok := decodeRecordAny(data, probe); ok {
						resumeAt = int64(probe)
						break
					}
				}
				tail := i == len(bases)-1 && resumeAt < 0
				detail := "torn tail (crash artifact; Open repairs by truncation)"
				if !tail {
					detail = fmt.Sprintf("invalid frame with valid data after it (next frame at %d)", resumeAt)
					if resumeAt < 0 {
						detail = "invalid frame in a sealed (non-final) segment"
					}
				}
				rep.Problems = append(rep.Problems, CheckProblem{
					File: name, Offset: int64(off), Detail: detail, Benign: tail,
				})
				break
			}
			rep.Records++
			rep.Last = rec.Index
			next, off = next+1, n
		}
	}
	return rep, nil
}

// decodeRecordAny parses the frame at data[off:] accepting any index —
// the scrub's resynchronization probe.
func decodeRecordAny(data []byte, off int) (rec Record, next int, ok bool) {
	if off+frameSize > len(data) {
		return rec, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	if n < bodyMin || n > maxBody {
		return rec, 0, false
	}
	return decodeRecord(data, off, indexAt(data, off))
}

// indexAt reads the index field of the (length-plausible) frame at off so
// decodeRecordAny can self-consistently re-validate it.
func indexAt(data []byte, off int) uint64 {
	if off+frameSize+bodyMin > len(data) {
		return 0
	}
	return binary.LittleEndian.Uint64(data[off+frameSize+1:])
}
