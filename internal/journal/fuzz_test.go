package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay holds the crash-only contract against arbitrary damage:
// build a valid multi-segment journal, let the fuzzer truncate it and flip
// bytes anywhere, and require that (a) Replay never panics and only ever
// delivers a prefix of the original records, in order; (b) Open never
// panics, repairs the directory, and leaves a journal that replays cleanly
// and accepts new appends.
func FuzzJournalReplay(f *testing.F) {
	f.Add(uint16(0), uint32(0), byte(0))
	f.Add(uint16(100), uint32(30), byte(0xff))
	f.Add(uint16(9), uint32(200), byte(1))
	f.Add(uint16(500), uint32(50), byte(0x80))

	f.Fuzz(func(t *testing.T, truncate uint16, flipAt uint32, flipMask byte) {
		dir := t.TempDir()
		w, err := Open(dir, Options{SegmentBytes: 128, NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		// Mix serial and batched appends (group commit writes multi-record
		// frames in one write) so the fuzzed damage lands on batched frame
		// boundaries too. On-disk bytes are identical either way; this
		// guards that claim.
		const n = 12
		var want [][]byte
		i := 0
		for _, sz := range []int{1, 3, 5, 2, 1} {
			var batch []Pending
			for j := 0; j < sz; j++ {
				p := []byte(fmt.Sprintf("payload-%d", i))
				want = append(want, p)
				batch = append(batch, Pending{Type: TypeEvent, Payload: p})
				i++
			}
			if sz == 1 {
				if _, err := w.Append(batch[0].Type, batch[0].Payload); err != nil {
					t.Fatal(err)
				}
			} else if _, err := w.AppendBatch(batch); err != nil {
				t.Fatal(err)
			}
		}
		if i != n {
			t.Fatalf("built %d records, want %d", i, n)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		// Damage: truncate the last segment by `truncate` bytes and flip
		// `flipMask` into the byte at global offset `flipAt` (counting
		// across segments in order).
		bases, err := listSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		last := filepath.Join(dir, segName(bases[len(bases)-1]))
		if fi, err := os.Stat(last); err == nil {
			sz := fi.Size() - int64(truncate)
			if sz < 0 {
				sz = 0
			}
			if err := os.Truncate(last, sz); err != nil {
				t.Fatal(err)
			}
		}
		if flipMask != 0 {
			off := int64(flipAt)
			for _, b := range bases {
				p := filepath.Join(dir, segName(b))
				fi, err := os.Stat(p)
				if err != nil {
					t.Fatal(err)
				}
				if off < fi.Size() {
					data, err := os.ReadFile(p)
					if err != nil {
						t.Fatal(err)
					}
					data[off] ^= flipMask
					if err := os.WriteFile(p, data, 0o644); err != nil {
						t.Fatal(err)
					}
					break
				}
				off -= fi.Size()
			}
		}

		// (a) Replay: prefix property.
		var got [][]byte
		if _, err := Replay(dir, 0, func(r Record) error {
			got = append(got, r.Payload)
			return nil
		}); err != nil && !errors.Is(err, ErrMissingRecords) {
			// Only the structured gap error is acceptable; I/O errors on a
			// TempDir mean the test itself is broken.
			t.Fatalf("replay error: %v", err)
		}
		if len(got) > n {
			t.Fatalf("replay produced %d records from a %d-record journal", len(got), n)
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("record %d: got %q want %q — not a prefix", i, got[i], want[i])
			}
		}

		// (b) Open repairs to exactly that prefix and stays appendable.
		w, err = Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("recovery open: %v", err)
		}
		if int(w.LastIndex()) != len(got) {
			t.Fatalf("Open recovered %d records, replay saw %d", w.LastIndex(), len(got))
		}
		if _, err := w.Append(TypeMark, []byte("post-repair")); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		var clean int
		st, err := Replay(dir, 0, func(Record) error { clean++; return nil })
		if err != nil {
			t.Fatalf("post-repair replay: %v", err)
		}
		if st.Torn {
			t.Fatal("journal still torn after Open repaired it")
		}
		if clean != len(got)+1 {
			t.Fatalf("post-repair replay saw %d records, want %d", clean, len(got)+1)
		}
	})
}
