package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"
)

// fakeSink mimics a Writer's index assignment while letting tests gate and
// fail syncs deterministically.
type fakeSink struct {
	mu       sync.Mutex
	next     uint64 // index the next record gets (Writer starts at 1)
	payloads [][]byte
	appends  int
	syncs    int
	gate     chan struct{}         // when non-nil, every Sync blocks on a receive
	syncErr  func(call int) error  // per-sync error injection (1-based call number)
}

func newFakeSink() *fakeSink { return &fakeSink{next: 1} }

func (s *fakeSink) AppendBatch(recs []Pending) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appends++
	first := s.next
	for _, r := range recs {
		s.payloads = append(s.payloads, r.Payload)
		s.next++
	}
	return first, nil
}

func (s *fakeSink) Sync() error {
	s.mu.Lock()
	s.syncs++
	call := s.syncs
	gate := s.gate
	fail := s.syncErr
	s.mu.Unlock()
	if gate != nil {
		<-gate
	}
	if fail != nil {
		return fail(call)
	}
	return nil
}

// waitOpenLen polls until the committer's open group holds at least n
// records (the deterministic way to know followers have parked).
func waitOpenLen(t *testing.T, g *GroupCommitter, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		g.mu.Lock()
		l := 0
		if g.open != nil {
			l = len(g.open.recs)
		}
		g.mu.Unlock()
		if l >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("open group never reached %d members (at %d)", n, l)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestGroupCommitSingleCaller is the no-batching-overhead contract: a lone
// Commit behaves exactly like Append+Sync — one record, one sync, no
// stall — and the record is durable and replayable.
func TestGroupCommitSingleCaller(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupCommitter(w, GroupOptions{})
	idx, err := g.Commit(TypeEvent, []byte("solo"))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("index %d, want 1", idx)
	}
	st := g.Stats()
	if st.Records != 1 || st.Syncs != 1 || st.Groups != 1 || st.MaxGroup != 1 {
		t.Fatalf("single-caller stats %+v, want 1/1/1/1", st)
	}
	if st.Stalls != 0 {
		t.Fatalf("lone caller stalled %d times — the serial path must pay nothing", st.Stalls)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []string
	if _, err := Replay(dir, 0, func(r Record) error {
		got = append(got, string(r.Payload))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "solo" {
		t.Fatalf("replay %v", got)
	}
}

// TestGroupCommitCoalesces parks one leader inside a gated fsync and
// shows that every caller arriving meanwhile shares ONE follow-up group:
// 8 commits, 2 syncs.
func TestGroupCommitCoalesces(t *testing.T) {
	sink := newFakeSink()
	sink.gate = make(chan struct{})
	g := NewGroupCommitter(sink, GroupOptions{MaxBatch: 64, MaxDelay: -1})

	var wg sync.WaitGroup
	idxs := make(chan uint64, 8)
	commit := func(i int) {
		defer wg.Done()
		idx, err := g.Commit(TypeEvent, []byte(fmt.Sprintf("p%d", i)))
		if err != nil {
			t.Errorf("commit %d: %v", i, err)
			return
		}
		idxs <- idx
	}
	wg.Add(1)
	go commit(0) // leader of group 1, blocks inside Sync
	// Wait until it is actually inside the gated sync.
	deadline := time.Now().Add(10 * time.Second)
	for {
		sink.mu.Lock()
		entered := sink.syncs
		sink.mu.Unlock()
		if entered == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader never reached Sync")
		}
		time.Sleep(50 * time.Microsecond)
	}
	for i := 1; i < 8; i++ {
		wg.Add(1)
		go commit(i)
	}
	waitOpenLen(t, g, 7) // all 7 latecomers share the next group
	close(sink.gate)
	wg.Wait()
	close(idxs)

	st := g.Stats()
	if st.Syncs != 2 || st.Groups != 2 {
		t.Fatalf("8 concurrent commits took %d syncs / %d groups, want 2/2 (%+v)", st.Syncs, st.Groups, st)
	}
	if st.Records != 8 || st.MaxGroup != 7 {
		t.Fatalf("stats %+v, want 8 records, max group 7", st)
	}
	// Every caller got a unique contiguous index.
	var all []int
	for idx := range idxs {
		all = append(all, int(idx))
	}
	sort.Ints(all)
	for i, idx := range all {
		if idx != i+1 {
			t.Fatalf("indices %v, want 1..8", all)
		}
	}
}

// TestGroupCommitMaxBatchSeals bounds group size: with MaxBatch 4 and 10
// commits racing, no group may exceed 4 records and at least one group is
// sealed early, yet every commit lands with a unique contiguous index.
func TestGroupCommitMaxBatchSeals(t *testing.T) {
	sink := newFakeSink()
	sink.gate = make(chan struct{})
	g := NewGroupCommitter(sink, GroupOptions{MaxBatch: 4, MaxDelay: -1})

	var wg sync.WaitGroup
	idxs := make(chan uint64, 10)
	wg.Add(1)
	go func() {
		defer wg.Done()
		idx, err := g.Commit(TypeEvent, []byte("leader"))
		if err != nil {
			t.Error(err)
			return
		}
		idxs <- idx
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		sink.mu.Lock()
		entered := sink.syncs
		sink.mu.Unlock()
		if entered == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader never reached Sync")
		}
		time.Sleep(50 * time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			idx, err := g.Commit(TypeEvent, []byte(fmt.Sprintf("f%d", i)))
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
				return
			}
			idxs <- idx
		}(i)
	}
	// A group seals itself the instant its 4th member joins.
	for {
		if g.Stats().Sealed >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no group ever filled to MaxBatch (stats %+v)", g.Stats())
		}
		time.Sleep(50 * time.Microsecond)
	}
	close(sink.gate)
	wg.Wait()
	close(idxs)

	st := g.Stats()
	if st.MaxGroup > 4 {
		t.Fatalf("group of %d exceeded MaxBatch 4 (%+v)", st.MaxGroup, st)
	}
	if st.Records != 10 || st.Sealed < 1 {
		t.Fatalf("stats %+v, want 10 records with ≥1 sealed group", st)
	}
	var all []int
	for idx := range idxs {
		all = append(all, int(idx))
	}
	sort.Ints(all)
	for i, idx := range all {
		if idx != i+1 {
			t.Fatalf("indices %v, want 1..10", all)
		}
	}
}

// TestGroupCommitSyncErrorFanOut fails the sync covering a 4-member group
// and requires every member — leader and followers alike — to see the
// error, while the group before and after are unaffected.
func TestGroupCommitSyncErrorFanOut(t *testing.T) {
	wantErr := errors.New("disk on fire")
	sink := newFakeSink()
	sink.gate = make(chan struct{})
	sink.syncErr = func(call int) error {
		if call == 2 {
			return wantErr
		}
		return nil
	}
	g := NewGroupCommitter(sink, GroupOptions{MaxBatch: 64, MaxDelay: -1})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // healthy group 1
		defer wg.Done()
		if _, err := g.Commit(TypeEvent, []byte("ok")); err != nil {
			t.Errorf("group 1: %v", err)
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		sink.mu.Lock()
		entered := sink.syncs
		sink.mu.Unlock()
		if entered == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader never reached Sync")
		}
		time.Sleep(50 * time.Microsecond)
	}
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := g.Commit(TypeEvent, []byte(fmt.Sprintf("doomed%d", i)))
			errs <- err
		}(i)
	}
	waitOpenLen(t, g, 4)
	close(sink.gate)
	wg.Wait()
	close(errs)

	n := 0
	for err := range errs {
		n++
		if !errors.Is(err, wantErr) {
			t.Errorf("group member got %v, want the shared sync error", err)
		}
	}
	if n != 4 {
		t.Fatalf("%d members reported, want 4", n)
	}
	st := g.Stats()
	if st.Errors != 1 {
		t.Errorf("stats.Errors %d, want 1 (%+v)", st.Errors, st)
	}
	if st.Records != 1 { // only the healthy group's record counts as committed
		t.Errorf("stats.Records %d, want 1 (%+v)", st.Records, st)
	}
	// The committer is not poisoned: a later commit succeeds.
	if _, err := g.Commit(TypeEvent, []byte("after")); err != nil {
		t.Fatalf("commit after failed group: %v", err)
	}
}

// TestGroupCommitClosed rejects commits after Close.
func TestGroupCommitClosed(t *testing.T) {
	g := NewGroupCommitter(newFakeSink(), GroupOptions{})
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Commit(TypeEvent, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Commit after Close: %v, want ErrClosed", err)
	}
	if _, err := g.CommitAll([]Pending{{Type: TypeEvent}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("CommitAll after Close: %v, want ErrClosed", err)
	}
}

// TestCommitAll writes a caller-formed batch as one group over a real
// journal and replays it back in order.
func TestCommitAll(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupCommitter(w, GroupOptions{})
	var recs []Pending
	for i := 0; i < 5; i++ {
		recs = append(recs, Pending{Type: TypeEvent, Payload: []byte(fmt.Sprintf("b%d", i))})
	}
	first, err := g.CommitAll(recs)
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Fatalf("first index %d, want 1", first)
	}
	st := g.Stats()
	if st.Records != 5 || st.Syncs != 1 {
		t.Fatalf("stats %+v, want 5 records / 1 sync", st)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []string
	if _, err := Replay(dir, 0, func(r Record) error {
		got = append(got, string(r.Payload))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, p := range got {
		if p != fmt.Sprintf("b%d", i) {
			t.Fatalf("replay %v out of order", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("replay saw %d records, want 5", len(got))
	}
}

// TestAppendBatchTornTail is the crash-between-write-and-sync case: a
// multi-record batch whose tail is torn mid-record must repair to the last
// WHOLE record on Open, and the journal must stay appendable.
func TestAppendBatchTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	var recs []Pending
	var sizes []int
	for i := 0; i < 5; i++ {
		p := []byte(fmt.Sprintf("batched-%d", i))
		recs = append(recs, Pending{Type: TypeEvent, Payload: p})
		sizes = append(sizes, frameSize+bodyMin+len(p))
	}
	if _, err := w.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	// "Crash": no Sync, no Close — just tear the file mid-record 4.
	bases, err := listSegments(dir)
	if err != nil || len(bases) != 1 {
		t.Fatalf("segments %v (%v)", bases, err)
	}
	path := filepath.Join(dir, segName(bases[0]))
	cut := int64(headerSize + sizes[0] + sizes[1] + sizes[2] + 5)
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	if w2.LastIndex() != 3 {
		t.Fatalf("recovered to index %d, want 3 (the last whole record)", w2.LastIndex())
	}
	if _, err := w2.Append(TypeMark, []byte("post-tear")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	var got []string
	st, err := Replay(dir, 0, func(r Record) error {
		got = append(got, string(r.Payload))
		return nil
	})
	if err != nil || st.Torn {
		t.Fatalf("post-repair replay: %v torn=%v", err, st.Torn)
	}
	want := []string{"batched-0", "batched-1", "batched-2", "post-tear"}
	if len(got) != len(want) {
		t.Fatalf("replay %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replay %v, want %v", got, want)
		}
	}
}

// TestAppendBatchInterleavesWithAppend keeps index contiguity across mixed
// serial and batched appends, including across a rotation.
func TestAppendBatchInterleavesWithAppend(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{NoSync: true, SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	add := func(batch int) {
		t.Helper()
		if batch <= 1 {
			if _, err := w.Append(TypeEvent, []byte(fmt.Sprintf("r%02d", n))); err != nil {
				t.Fatal(err)
			}
			n++
			return
		}
		var recs []Pending
		for i := 0; i < batch; i++ {
			recs = append(recs, Pending{Type: TypeEvent, Payload: []byte(fmt.Sprintf("r%02d", n))})
			n++
		}
		first, err := w.AppendBatch(recs)
		if err != nil {
			t.Fatal(err)
		}
		if int(first) != n-batch+1 {
			t.Fatalf("batch first index %d, want %d", first, n-batch+1)
		}
	}
	add(1)
	add(3)
	add(1)
	add(4)
	add(2)
	if w.Segments() < 2 {
		t.Fatalf("expected a rotation, have %d segment(s)", w.Segments())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	i := 0
	if _, err := Replay(dir, 0, func(r Record) error {
		if string(r.Payload) != fmt.Sprintf("r%02d", i) {
			return fmt.Errorf("record %d holds %q", i, r.Payload)
		}
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("replayed %d records, want %d", i, n)
	}
}

// BenchmarkGroupCommit measures real-fsync amortization at the journal
// layer: c goroutines committing concurrently share syncs. fsyncs/commit
// is the figure the acceptance criterion bounds (< 0.25 at c ≥ 8).
func BenchmarkGroupCommit(b *testing.B) {
	for _, c := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("conc=%d", c), func(b *testing.B) {
			w, err := Open(b.TempDir(), Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			g := NewGroupCommitter(w, GroupOptions{})
			payload := []byte(`{"op":"add","task":"bench"}`)
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / c
			extra := b.N % c
			for i := 0; i < c; i++ {
				n := per
				if i < extra {
					n++
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for j := 0; j < n; j++ {
						if _, err := g.Commit(TypeEvent, payload); err != nil {
							b.Error(err)
							return
						}
					}
				}(n)
			}
			wg.Wait()
			b.StopTimer()
			st := g.Stats()
			if st.Records > 0 {
				b.ReportMetric(float64(st.Syncs)/float64(st.Records), "fsyncs/commit")
				b.ReportMetric(st.RecordsPerSync(), "records/sync")
			}
			if err := g.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
