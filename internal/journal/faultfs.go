// FaultFS is the storage half of the deterministic fault-injection story:
// where sim.FaultPlan perturbs *execution* (overruns, aborts, dropped
// releases) purely in (seed, job index), FaultFS perturbs *durability*
// purely in (seed, I/O-op index). Every write and sync the journal issues
// consumes exactly one op index; the fault drawn for op n is a pure
// function of (seed, n), so a chaos scenario replays bit-identically: same
// seed, same op sequence, same torn write at the same boundary.
package journal

import (
	"errors"
	"fmt"
	"sync"

	"nprt/internal/rng"
)

// Injected-fault errors. Each is distinguishable so tests can pin which
// fault fired; all of them poison the Writer like a real I/O error would.
var (
	// ErrInjectedSync is a failed fsync: the barrier was dropped. The bytes
	// of preceding writes may or may not be durable — exactly the fsyncgate
	// ambiguity the sticky-poison discipline exists for.
	ErrInjectedSync = errors.New("journal: injected fsync failure")
	// ErrInjectedTorn is a torn write: a prefix of the buffer landed.
	ErrInjectedTorn = errors.New("journal: injected torn write")
	// ErrInjectedFull is ENOSPC: nothing landed.
	ErrInjectedFull = errors.New("journal: injected disk full")
	// ErrInjectedStall is a hung device: the op (and the next StallOps-1
	// ops) fail without landing anything.
	ErrInjectedStall = errors.New("journal: injected I/O stall")
	// ErrInjectedWedge is a permanently failed device (until Heal).
	ErrInjectedWedge = errors.New("journal: injected device wedge")
)

// FaultRates parameterizes the per-op fault distribution. Probabilities
// are per I/O op and independent; Torn+Full+Stall apply to writes,
// SyncFail to syncs. All zero means a transparent injector.
type FaultRates struct {
	SyncFailProb float64 // P(fsync fails) per sync op
	TornProb     float64 // P(write tears) per write op
	FullProb     float64 // P(write fails with disk-full) per write op
	StallProb    float64 // P(a stall window opens) per write op
	StallOps     int     // ops failed per stall window (default 3)
}

// Validate rejects rates outside [0, 1] or summing past 1 per op class.
func (r FaultRates) Validate() error {
	for _, p := range []float64{r.SyncFailProb, r.TornProb, r.FullProb, r.StallProb} {
		if p < 0 || p > 1 {
			return fmt.Errorf("journal: fault probability %v outside [0, 1]", p)
		}
	}
	if s := r.TornProb + r.FullProb + r.StallProb; s > 1 {
		return fmt.Errorf("journal: write fault probabilities sum to %v > 1", s)
	}
	return nil
}

// FaultStats counts what an injector actually did.
type FaultStats struct {
	Ops        uint64 `json:"ops"` // total ops consumed (writes + syncs)
	SyncFails  uint64 `json:"sync_fails"`
	TornWrites uint64 `json:"torn_writes"`
	FullWrites uint64 `json:"full_writes"`
	Stalls     uint64 `json:"stalls"` // stall windows opened
	StallOps   uint64 `json:"stall_ops"`
	WedgeFails uint64 `json:"wedge_fails"`
	BitFlips   uint64 `json:"bit_flips"` // armed silent corruptions delivered
}

// FaultFS is a seeded, deterministic Injector. The op counter is owned by
// the FaultFS, not the Writer, so it survives writer reopens: the fault
// schedule is a property of the (virtual) disk, and recovery reopening the
// journal does not reroll history. Safe for concurrent use (the cluster's
// group-commit leader and checkpoint path may race on one shard's WAL).
type FaultFS struct {
	mu        sync.Mutex
	seed      uint64
	rates     FaultRates
	ops       uint64 // next op index
	stallLeft int    // remaining ops in an open stall window
	wedged    bool
	suspended bool
	flipArmed bool
	stats     FaultStats
}

// NewFaultFS builds an injector whose fault schedule is a pure function of
// (seed, op index). Panics on invalid rates — a misconfigured chaos plan
// is a programming error, not a runtime condition.
func NewFaultFS(seed uint64, rates FaultRates) *FaultFS {
	if err := rates.Validate(); err != nil {
		panic(err)
	}
	if rates.StallOps <= 0 {
		rates.StallOps = 3
	}
	return &FaultFS{seed: seed, rates: rates}
}

// draw returns the uniform sample for (op, salt) — pure in (seed, op,
// salt), in the same keyed-stream discipline as sim.FaultPlan.
func (f *FaultFS) draw(op, salt uint64) float64 {
	key := f.seed ^ (op+1)*0x9e3779b97f4a7c15 ^ (salt+1)*0xd1b54a32d192ed03
	return rng.New(key).Float64()
}

// Write implements Injector for one record write of n bytes.
func (f *FaultFS) Write(n int) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.suspended {
		return n, nil
	}
	op := f.ops
	f.ops++
	f.stats.Ops++
	if f.wedged {
		f.stats.WedgeFails++
		return 0, ErrInjectedWedge
	}
	if f.stallLeft > 0 {
		f.stallLeft--
		f.stats.StallOps++
		return 0, ErrInjectedStall
	}
	u := f.draw(op, 1)
	switch {
	case u < f.rates.TornProb:
		f.stats.TornWrites++
		// The landed prefix length is its own deterministic draw, in
		// [0, n): at least one byte is always lost.
		k := int(f.draw(op, 2) * float64(n))
		if k >= n {
			k = n - 1
		}
		if k < 0 {
			k = 0
		}
		return k, ErrInjectedTorn
	case u < f.rates.TornProb+f.rates.FullProb:
		f.stats.FullWrites++
		return 0, ErrInjectedFull
	case u < f.rates.TornProb+f.rates.FullProb+f.rates.StallProb:
		f.stats.Stalls++
		f.stats.StallOps++
		f.stallLeft = f.rates.StallOps - 1
		return 0, ErrInjectedStall
	}
	return n, nil
}

// Sync implements Injector for one fsync (file or directory).
func (f *FaultFS) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.suspended {
		return nil
	}
	op := f.ops
	f.ops++
	f.stats.Ops++
	if f.wedged {
		f.stats.WedgeFails++
		return ErrInjectedWedge
	}
	if f.stallLeft > 0 {
		f.stallLeft--
		f.stats.StallOps++
		return ErrInjectedStall
	}
	if f.draw(op, 3) < f.rates.SyncFailProb {
		f.stats.SyncFails++
		return ErrInjectedSync
	}
	return nil
}

// Wedge fails every subsequent op until Heal — the model of a dead device.
// Driver-initiated (the chaos soak decides when, from its own seeded
// plan), so wedges stay at deterministic boundaries regardless of how many
// ops each drive mode happens to issue.
func (f *FaultFS) Wedge() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.wedged = true
}

// Heal ends a wedge (and any open stall window): the disk was replaced.
func (f *FaultFS) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.wedged = false
	f.stallLeft = 0
}

// Suspend makes the injector transparent until Resume: ops pass through
// cleanly and consume NO op indices, so the fault schedule is frozen, not
// rerolled. This is the maintenance window — an operator re-imaging a
// shard onto a freshly checked device must not have the new journal's
// bootstrap writes eaten by the old device's fault plan.
func (f *FaultFS) Suspend() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.suspended = true
}

// Resume ends a Suspend window; the fault schedule continues from where it
// was frozen.
func (f *FaultFS) Resume() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.suspended = false
}

// ArmFlip arms a one-shot silent bit flip: the next non-empty write
// through this injector has one bit of its middle byte inverted before
// the bytes land, and the write still reports success. This is the
// bit-rot model the replica digest check exists for — unlike every
// Injector fault above, nothing errors at write time. The flip is
// deliberately not part of the seeded rate schedule: silent corruption
// must land at a test-chosen boundary, and consuming a draw for it would
// shift every later fault in the (seed, op) stream.
func (f *FaultFS) ArmFlip() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flipArmed = true
}

// CorruptWrite implements Corrupter: it mutates p in place when a flip is
// armed. Runs even under Suspend — bit rot does not honor maintenance
// windows — and consumes no op index.
func (f *FaultFS) CorruptWrite(p []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.flipArmed || len(p) == 0 {
		return
	}
	f.flipArmed = false
	p[len(p)/2] ^= 0x40
	f.stats.BitFlips++
}

// Wedged reports whether the device is currently wedged.
func (f *FaultFS) Wedged() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.wedged
}

// Stats returns a snapshot of the fault counters.
func (f *FaultFS) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}
