// FaultFS is the storage half of the deterministic fault-injection story:
// where sim.FaultPlan perturbs *execution* (overruns, aborts, dropped
// releases) purely in (seed, job index), FaultFS perturbs *durability*
// purely in (seed, I/O-op index). Every write and sync the journal issues
// consumes exactly one op index; the fault drawn for op n is a pure
// function of (seed, n), so a chaos scenario replays bit-identically: same
// seed, same op sequence, same torn write at the same boundary.
package journal

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"nprt/internal/rng"
)

// Injected-fault errors. Each is distinguishable so tests can pin which
// fault fired; all of them poison the Writer like a real I/O error would.
var (
	// ErrInjectedSync is a failed fsync: the barrier was dropped. The bytes
	// of preceding writes may or may not be durable — exactly the fsyncgate
	// ambiguity the sticky-poison discipline exists for.
	ErrInjectedSync = errors.New("journal: injected fsync failure")
	// ErrInjectedTorn is a torn write: a prefix of the buffer landed.
	ErrInjectedTorn = errors.New("journal: injected torn write")
	// ErrInjectedFull is ENOSPC: nothing landed.
	ErrInjectedFull = errors.New("journal: injected disk full")
	// ErrInjectedStall is a hung device: the op (and the next StallOps-1
	// ops) fail without landing anything.
	ErrInjectedStall = errors.New("journal: injected I/O stall")
	// ErrInjectedWedge is a permanently failed device (until Heal).
	ErrInjectedWedge = errors.New("journal: injected device wedge")
)

// FaultRates parameterizes the per-op fault distribution. Probabilities
// are per I/O op and independent; Torn+Full+Stall apply to writes,
// SyncFail to syncs. All zero means a transparent injector.
type FaultRates struct {
	SyncFailProb float64 // P(fsync fails) per sync op
	TornProb     float64 // P(write tears) per write op
	FullProb     float64 // P(write fails with disk-full) per write op
	StallProb    float64 // P(a stall window opens) per write op
	StallOps     int     // ops failed per stall window (default 3)

	// Slow-op injection: with probability SlowProb, an op succeeds but
	// sleeps a deterministic virtual delay drawn uniformly from
	// [SlowMin, SlowMax] — the gray-failure model, distinct from the
	// instant-error stall above. Delays are drawn on the same op index as
	// the fault class (new salts), so enabling SlowProb does not shift the
	// existing fault streams. SlowMax defaults to 2ms when SlowProb > 0.
	SlowProb float64
	SlowMin  time.Duration
	SlowMax  time.Duration
}

// Validate rejects rates outside [0, 1] or summing past 1 per op class.
func (r FaultRates) Validate() error {
	for _, p := range []float64{r.SyncFailProb, r.TornProb, r.FullProb, r.StallProb, r.SlowProb} {
		if p < 0 || p > 1 {
			return fmt.Errorf("journal: fault probability %v outside [0, 1]", p)
		}
	}
	if s := r.TornProb + r.FullProb + r.StallProb; s > 1 {
		return fmt.Errorf("journal: write fault probabilities sum to %v > 1", s)
	}
	if r.SlowMin < 0 || r.SlowMax < 0 || (r.SlowMax > 0 && r.SlowMin > r.SlowMax) {
		return fmt.Errorf("journal: slow delay range [%v, %v] invalid", r.SlowMin, r.SlowMax)
	}
	return nil
}

// FaultStats counts what an injector actually did.
type FaultStats struct {
	Ops        uint64 `json:"ops"` // total ops consumed (writes + syncs)
	SyncFails  uint64 `json:"sync_fails"`
	TornWrites uint64 `json:"torn_writes"`
	FullWrites uint64 `json:"full_writes"`
	Stalls     uint64 `json:"stalls"` // stall windows opened
	StallOps   uint64 `json:"stall_ops"`
	WedgeFails uint64 `json:"wedge_fails"`
	BitFlips   uint64 `json:"bit_flips"` // armed silent corruptions delivered
	SlowOps    uint64 `json:"slow_ops"`  // ops delayed (seeded slow or brownout)
}

// FaultFS is a seeded, deterministic Injector. The op counter is owned by
// the FaultFS, not the Writer, so it survives writer reopens: the fault
// schedule is a property of the (virtual) disk, and recovery reopening the
// journal does not reroll history. Safe for concurrent use (the cluster's
// group-commit leader and checkpoint path may race on one shard's WAL).
type FaultFS struct {
	mu        sync.Mutex
	seed      uint64
	rates     FaultRates
	ops       uint64 // next op index
	stallLeft int    // remaining ops in an open stall window
	wedged    bool
	suspended bool
	flipArmed bool
	clock     Clock         // sleeps injected delays; defaults to WallClock
	brown     time.Duration // driver-initiated persistent per-op delay
	stats     FaultStats
}

// NewFaultFS builds an injector whose fault schedule is a pure function of
// (seed, op index). Panics on invalid rates — a misconfigured chaos plan
// is a programming error, not a runtime condition.
func NewFaultFS(seed uint64, rates FaultRates) *FaultFS {
	if err := rates.Validate(); err != nil {
		panic(err)
	}
	if rates.StallOps <= 0 {
		rates.StallOps = 3
	}
	if rates.SlowProb > 0 && rates.SlowMax <= 0 {
		rates.SlowMax = 2 * time.Millisecond
	}
	return &FaultFS{seed: seed, rates: rates, clock: WallClock{}}
}

// SetClock substitutes the clock that serves injected delays. Deterministic
// soaks share one VirtualClock between the injector and the journal writer
// so the injected delay is exactly the observed sojourn.
func (f *FaultFS) SetClock(c Clock) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c != nil {
		f.clock = c
	}
}

// slowDelay returns the injected delay for op, drawn on salts 4 (decision)
// and 5 (magnitude) so the pre-existing fault streams (salts 1–3) are
// unshifted, plus any active brownout. Caller holds f.mu.
func (f *FaultFS) slowDelay(op uint64) time.Duration {
	d := f.brown
	if f.rates.SlowProb > 0 && f.draw(op, 4) < f.rates.SlowProb {
		span := float64(f.rates.SlowMax - f.rates.SlowMin)
		d += f.rates.SlowMin + time.Duration(f.draw(op, 5)*span)
	}
	if d > 0 {
		f.stats.SlowOps++
	}
	return d
}

// draw returns the uniform sample for (op, salt) — pure in (seed, op,
// salt), in the same keyed-stream discipline as sim.FaultPlan.
func (f *FaultFS) draw(op, salt uint64) float64 {
	key := f.seed ^ (op+1)*0x9e3779b97f4a7c15 ^ (salt+1)*0xd1b54a32d192ed03
	return rng.New(key).Float64()
}

// Write implements Injector for one record write of n bytes. The fault
// decision and any injected delay are computed under the mutex; the delay
// itself is slept after unlocking so a slow op never blocks the fault
// schedule of concurrent callers.
func (f *FaultFS) Write(n int) (int, error) {
	f.mu.Lock()
	if f.suspended {
		// Maintenance window: no op index consumed, no delay served.
		f.mu.Unlock()
		return n, nil
	}
	op := f.ops
	f.ops++
	f.stats.Ops++
	if f.wedged {
		// A dead device errors instantly — slowness is the gray model,
		// wedge the black one.
		f.stats.WedgeFails++
		f.mu.Unlock()
		return 0, ErrInjectedWedge
	}
	var (
		ret  = n
		rerr error
	)
	switch {
	case f.stallLeft > 0:
		f.stallLeft--
		f.stats.StallOps++
		ret, rerr = 0, ErrInjectedStall
	default:
		u := f.draw(op, 1)
		switch {
		case u < f.rates.TornProb:
			f.stats.TornWrites++
			// The landed prefix length is its own deterministic draw, in
			// [0, n): at least one byte is always lost.
			k := int(f.draw(op, 2) * float64(n))
			if k >= n {
				k = n - 1
			}
			if k < 0 {
				k = 0
			}
			ret, rerr = k, ErrInjectedTorn
		case u < f.rates.TornProb+f.rates.FullProb:
			f.stats.FullWrites++
			ret, rerr = 0, ErrInjectedFull
		case u < f.rates.TornProb+f.rates.FullProb+f.rates.StallProb:
			f.stats.Stalls++
			f.stats.StallOps++
			f.stallLeft = f.rates.StallOps - 1
			ret, rerr = 0, ErrInjectedStall
		}
	}
	delay := f.slowDelay(op)
	clock := f.clock
	f.mu.Unlock()
	if delay > 0 {
		clock.Sleep(delay)
	}
	return ret, rerr
}

// Sync implements Injector for one fsync (file or directory). Same
// compute-under-lock, sleep-after-unlock discipline as Write.
func (f *FaultFS) Sync() error {
	f.mu.Lock()
	if f.suspended {
		f.mu.Unlock()
		return nil
	}
	op := f.ops
	f.ops++
	f.stats.Ops++
	if f.wedged {
		f.stats.WedgeFails++
		f.mu.Unlock()
		return ErrInjectedWedge
	}
	var rerr error
	switch {
	case f.stallLeft > 0:
		f.stallLeft--
		f.stats.StallOps++
		rerr = ErrInjectedStall
	case f.draw(op, 3) < f.rates.SyncFailProb:
		f.stats.SyncFails++
		rerr = ErrInjectedSync
	}
	delay := f.slowDelay(op)
	clock := f.clock
	f.mu.Unlock()
	if delay > 0 {
		clock.Sleep(delay)
	}
	return rerr
}

// Wedge fails every subsequent op until Heal — the model of a dead device.
// Driver-initiated (the chaos soak decides when, from its own seeded
// plan), so wedges stay at deterministic boundaries regardless of how many
// ops each drive mode happens to issue.
func (f *FaultFS) Wedge() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.wedged = true
}

// Heal ends a wedge (and any open stall window or brownout): the disk was
// replaced.
func (f *FaultFS) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.wedged = false
	f.stallLeft = 0
	f.brown = 0
}

// Brownout sets a persistent per-op delay served on every subsequent op
// until cleared (Brownout(0) or Heal) — the gray-failure model of a drive
// that still completes every request, just slowly. Driver-initiated like
// Wedge, for the same reason: the delay must start at a deterministic
// boundary regardless of how many ops each drive mode happens to issue, so
// comparison-gated soaks stay bit-identical across serial and parallel
// execution.
func (f *FaultFS) Brownout(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if d < 0 {
		d = 0
	}
	f.brown = d
}

// Suspend makes the injector transparent until Resume: ops pass through
// cleanly and consume NO op indices, so the fault schedule is frozen, not
// rerolled. This is the maintenance window — an operator re-imaging a
// shard onto a freshly checked device must not have the new journal's
// bootstrap writes eaten by the old device's fault plan.
func (f *FaultFS) Suspend() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.suspended = true
}

// Resume ends a Suspend window; the fault schedule continues from where it
// was frozen.
func (f *FaultFS) Resume() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.suspended = false
}

// ArmFlip arms a one-shot silent bit flip: the next non-empty write
// through this injector has one bit of its middle byte inverted before
// the bytes land, and the write still reports success. This is the
// bit-rot model the replica digest check exists for — unlike every
// Injector fault above, nothing errors at write time. The flip is
// deliberately not part of the seeded rate schedule: silent corruption
// must land at a test-chosen boundary, and consuming a draw for it would
// shift every later fault in the (seed, op) stream.
func (f *FaultFS) ArmFlip() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flipArmed = true
}

// CorruptWrite implements Corrupter: it mutates p in place when a flip is
// armed. Runs even under Suspend — bit rot does not honor maintenance
// windows — and consumes no op index.
func (f *FaultFS) CorruptWrite(p []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.flipArmed || len(p) == 0 {
		return
	}
	f.flipArmed = false
	p[len(p)/2] ^= 0x40
	f.stats.BitFlips++
}

// Wedged reports whether the device is currently wedged.
func (f *FaultFS) Wedged() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.wedged
}

// Stats returns a snapshot of the fault counters.
func (f *FaultFS) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}
