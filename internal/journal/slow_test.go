package journal

import (
	"errors"
	"testing"
	"time"
)

// delayOf runs one op against f and returns how far it advanced the
// virtual clock — the injected delay, exactly (VirtualClock.Sleep
// advances instead of spending).
func delayOf(c *VirtualClock, op func()) time.Duration {
	start := c.Now()
	op()
	return c.Now().Sub(start)
}

// TestFaultFSSlowDeterminism: seeded slow-op delays are a pure function
// of (seed, op index) — two same-seed replays produce the identical
// delay sequence, a different seed diverges, and SlowOps counts what
// actually slept.
func TestFaultFSSlowDeterminism(t *testing.T) {
	rates := FaultRates{SlowProb: 0.5, SlowMin: time.Millisecond, SlowMax: 8 * time.Millisecond}
	run := func(seed uint64) []time.Duration {
		f := NewFaultFS(seed, rates)
		c := NewVirtualClock()
		f.SetClock(c)
		var out []time.Duration
		for i := 0; i < 100; i++ {
			if i%3 == 0 {
				out = append(out, delayOf(c, func() { f.Sync() }))
			} else {
				out = append(out, delayOf(c, func() { f.Write(64) }))
			}
		}
		return out
	}
	a, b, other := run(5), run(5), run(6)
	slowed := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: same seed diverged: %v vs %v", i, a[i], b[i])
		}
		if a[i] > 0 {
			slowed++
			if a[i] < rates.SlowMin || a[i] > rates.SlowMax {
				t.Fatalf("op %d: delay %v outside [%v, %v]", i, a[i], rates.SlowMin, rates.SlowMax)
			}
		}
	}
	if slowed == 0 || slowed == len(a) {
		t.Fatalf("slowed %d/%d ops at SlowProb 0.5: schedule degenerate", slowed, len(a))
	}
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical delay schedules")
	}
	f := NewFaultFS(5, rates)
	c := NewVirtualClock()
	f.SetClock(c)
	for i := 0; i < 100; i++ {
		if i%3 == 0 {
			f.Sync()
		} else {
			f.Write(64)
		}
	}
	if got := f.Stats().SlowOps; got != uint64(slowed) {
		t.Fatalf("SlowOps = %d, want %d", got, slowed)
	}
}

// TestFaultFSBrownout: Brownout(d) delays EVERY op by exactly d —
// success, no error, pure latency (the gray-failure model) — stacking
// on top of any seeded slow draw; Brownout(0) and Heal both clear it.
func TestFaultFSBrownout(t *testing.T) {
	f := NewFaultFS(1, FaultRates{})
	c := NewVirtualClock()
	f.SetClock(c)
	f.Brownout(10 * time.Millisecond)
	for i := 0; i < 5; i++ {
		if d := delayOf(c, func() {
			if _, err := f.Write(64); err != nil {
				t.Fatalf("browned write %d errored: %v", i, err)
			}
		}); d != 10*time.Millisecond {
			t.Fatalf("browned write %d delayed %v, want 10ms", i, d)
		}
	}
	if d := delayOf(c, func() {
		if err := f.Sync(); err != nil {
			t.Fatalf("browned sync errored: %v", err)
		}
	}); d != 10*time.Millisecond {
		t.Fatalf("browned sync delayed %v, want 10ms", d)
	}
	f.Brownout(0)
	if d := delayOf(c, func() { f.Write(64) }); d != 0 {
		t.Fatalf("write after Brownout(0) delayed %v", d)
	}
	f.Brownout(7 * time.Millisecond)
	f.Heal()
	if d := delayOf(c, func() { f.Write(64) }); d != 0 {
		t.Fatalf("write after Heal delayed %v", d)
	}
	if got := f.Stats().SlowOps; got != 6 {
		t.Fatalf("SlowOps = %d, want 6 (5 writes + 1 sync browned)", got)
	}
}

// TestFaultFSSlowWindowSuspendResume pins the maintenance-window
// contract for the delay stream: Suspend consumes no op indices and
// sleeps nothing, so the slow schedule FREEZES — ops after Resume draw
// exactly the delays the uninterrupted run drew, not a reroll.
func TestFaultFSSlowWindowSuspendResume(t *testing.T) {
	rates := FaultRates{SlowProb: 0.5, SlowMin: time.Millisecond, SlowMax: 8 * time.Millisecond}
	base := NewFaultFS(3, rates)
	bc := NewVirtualClock()
	base.SetClock(bc)
	var want []time.Duration
	for i := 0; i < 40; i++ {
		want = append(want, delayOf(bc, func() { base.Write(64) }))
	}

	f := NewFaultFS(3, rates)
	c := NewVirtualClock()
	f.SetClock(c)
	var got []time.Duration
	for i := 0; i < 15; i++ {
		got = append(got, delayOf(c, func() { f.Write(64) }))
	}
	f.Suspend()
	for i := 0; i < 10; i++ {
		if d := delayOf(c, func() {
			if _, err := f.Write(64); err != nil {
				t.Fatalf("suspended write errored: %v", err)
			}
		}); d != 0 {
			t.Fatalf("suspended write %d slept %v; suspension must not sleep", i, d)
		}
	}
	f.Resume()
	for i := 15; i < 40; i++ {
		got = append(got, delayOf(c, func() { f.Write(64) }))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d: delay %v after suspend window, want %v (schedule rerolled)", i, got[i], want[i])
		}
	}
}

// TestFaultFSStallWindowSuspendResume: same freeze contract for the
// stall (instant-error) window — suspension pauses mid-window and the
// remaining failures land after Resume.
func TestFaultFSStallWindowSuspendResume(t *testing.T) {
	f := NewFaultFS(9, FaultRates{StallProb: 1, StallOps: 4})
	for i := 0; i < 2; i++ {
		if _, err := f.Write(10); !errors.Is(err, ErrInjectedStall) {
			t.Fatalf("op %d: got %v, want stall", i, err)
		}
	}
	f.Suspend()
	for i := 0; i < 5; i++ {
		if _, err := f.Write(10); err != nil {
			t.Fatalf("suspended write %d errored: %v", i, err)
		}
	}
	f.Resume()
	for i := 2; i < 4; i++ {
		if _, err := f.Write(10); !errors.Is(err, ErrInjectedStall) {
			t.Fatalf("op %d after resume: got %v, want the frozen window's stall", i, err)
		}
	}
	if got := f.Stats(); got.Stalls != 1 || got.StallOps != 4 {
		t.Fatalf("stats: %+v, want exactly the one 4-op window", got)
	}
}

// TestWriterObservesInjectedDelay closes the capture loop end to end: a
// real Writer on a browned FaultFS, with the same VirtualClock wired to
// Options.Clock, reports the injected delay through Options.Observe —
// the sojourn the cluster's latency tracker will see is exactly the
// delay the drive imposed.
func TestWriterObservesInjectedDelay(t *testing.T) {
	f := NewFaultFS(1, FaultRates{})
	c := NewVirtualClock()
	f.SetClock(c)
	var writes, syncs []time.Duration
	w, err := Open(t.TempDir(), Options{
		Inject: f,
		Clock:  c,
		Observe: func(sync bool, d time.Duration) {
			if sync {
				syncs = append(syncs, d)
			} else {
				writes = append(writes, d)
			}
		},
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer w.Close()

	// Open's own header writes ran un-browned; only the browned ops below
	// are under test.
	writes, syncs = nil, nil
	f.Brownout(10 * time.Millisecond)
	if _, err := w.Append(TypeEvent, []byte("x")); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if len(writes) == 0 || len(syncs) == 0 {
		t.Fatalf("observe fired %d writes / %d syncs, want both", len(writes), len(syncs))
	}
	for _, d := range writes {
		if d != 10*time.Millisecond {
			t.Fatalf("observed write sojourn %v, want exactly 10ms", d)
		}
	}
	for _, d := range syncs {
		if d != 10*time.Millisecond {
			t.Fatalf("observed sync sojourn %v, want exactly 10ms", d)
		}
	}
}
