package journal

import (
	"errors"
	"testing"
)

// scriptInjector fails exactly the scripted op indices (0-based over the
// combined write+sync sequence) — the surgical counterpart to FaultFS's
// statistical schedule.
type scriptInjector struct {
	op        uint64
	syncFails map[uint64]error
	tornAt    map[uint64]int // op -> bytes to land
}

func (s *scriptInjector) Write(n int) (int, error) {
	op := s.op
	s.op++
	if k, ok := s.tornAt[op]; ok {
		if k > n {
			k = n
		}
		return k, ErrInjectedTorn
	}
	return n, nil
}

func (s *scriptInjector) Sync() error {
	op := s.op
	s.op++
	if err, ok := s.syncFails[op]; ok {
		return err
	}
	return nil
}

// countOps returns the op index the writer is at after setup, so a test
// can aim a fault at the next sync precisely.
func openWithInjector(t *testing.T, dir string, inj Injector) *Writer {
	t.Helper()
	w, err := Open(dir, Options{Inject: inj})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return w
}

// TestStickyPoisonSerial pins satellite semantics on the serial path: one
// failed fsync poisons the writer — every subsequent Append/Sync returns
// ErrJournalPoisoned — and reopening recovers whatever prefix survived.
func TestStickyPoisonSerial(t *testing.T) {
	dir := t.TempDir()
	inj := &scriptInjector{syncFails: map[uint64]error{}}
	w := openWithInjector(t, dir, inj)

	if _, err := w.Append(TypeEvent, []byte("a")); err != nil {
		t.Fatalf("append a: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync a: %v", err)
	}
	if _, err := w.Append(TypeEvent, []byte("b")); err != nil {
		t.Fatalf("append b: %v", err)
	}
	inj.syncFails[inj.op] = ErrInjectedSync
	if err := w.Sync(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("sync b: got %v, want injected sync failure", err)
	}

	// Sticky: the writer must refuse to write past the limbo frame.
	if _, err := w.Append(TypeEvent, []byte("c")); !errors.Is(err, ErrJournalPoisoned) {
		t.Fatalf("append after poison: got %v, want ErrJournalPoisoned", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrJournalPoisoned) {
		t.Fatalf("sync after poison: got %v, want ErrJournalPoisoned", err)
	}
	if err := w.CompactTo(1); !errors.Is(err, ErrJournalPoisoned) {
		t.Fatalf("compact after poison: got %v, want ErrJournalPoisoned", err)
	}
	// The original cause stays visible through the wrap.
	if err := w.Sync(); !errors.Is(err, ErrJournalPoisoned) || err.Error() == ErrJournalPoisoned.Error() {
		t.Fatalf("poison error should wrap the cause: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close poisoned: %v", err)
	}

	// Reopen is the repair path: record b's bytes DID land (only the
	// injected sync failed), so recovery keeps both records.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if w2.LastIndex() != 2 {
		t.Fatalf("recovered LastIndex = %d, want 2", w2.LastIndex())
	}
	if _, err := w2.Append(TypeEvent, []byte("c")); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

// TestStickyPoisonGroupCommit pins the same semantics through the
// group-commit path: the group whose covering sync fails sees the error
// fan out to every member, and later commits see ErrJournalPoisoned.
func TestStickyPoisonGroupCommit(t *testing.T) {
	dir := t.TempDir()
	inj := &scriptInjector{syncFails: map[uint64]error{}}
	w := openWithInjector(t, dir, inj)
	defer w.Close()
	gc := NewGroupCommitter(w, GroupOptions{})

	if _, err := gc.Commit(TypeEvent, []byte("a")); err != nil {
		t.Fatalf("commit a: %v", err)
	}
	// The commit consumes one write op then one sync op; fail the sync.
	inj.syncFails[inj.op+1] = ErrInjectedSync
	if _, err := gc.Commit(TypeEvent, []byte("b")); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("commit b: got %v, want injected sync failure", err)
	}
	if _, err := gc.Commit(TypeEvent, []byte("c")); !errors.Is(err, ErrJournalPoisoned) {
		t.Fatalf("commit after poison: got %v, want ErrJournalPoisoned", err)
	}
	if _, err := gc.CommitAll([]Pending{{Type: TypeEvent, Payload: []byte("d")}}); !errors.Is(err, ErrJournalPoisoned) {
		t.Fatalf("batch commit after poison: got %v, want ErrJournalPoisoned", err)
	}
	if s := gc.Stats(); s.Errors < 1 {
		t.Fatalf("group stats should count the failed group: %+v", s)
	}
}

// TestTornWriteRecovery: an injected torn write lands a prefix; the writer
// poisons, and reopening truncates back to the last whole record.
func TestTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	inj := &scriptInjector{tornAt: map[uint64]int{}}
	w := openWithInjector(t, dir, inj)

	if _, err := w.Append(TypeEvent, []byte("intact")); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	inj.tornAt[inj.op] = 5 // five bytes of the next frame land
	if _, err := w.Append(TypeEvent, []byte("torn")); !errors.Is(err, ErrInjectedTorn) {
		t.Fatalf("torn append: got %v, want ErrInjectedTorn", err)
	}
	if _, err := w.Append(TypeEvent, []byte("after")); !errors.Is(err, ErrJournalPoisoned) {
		t.Fatalf("append after torn: got %v, want ErrJournalPoisoned", err)
	}
	w.Close()

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if w2.LastIndex() != 1 {
		t.Fatalf("recovered LastIndex = %d, want 1 (torn frame truncated)", w2.LastIndex())
	}
	var got []string
	if _, err := Replay(dir, 0, func(r Record) error {
		got = append(got, string(r.Payload))
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(got) != 1 || got[0] != "intact" {
		t.Fatalf("replayed %q, want [intact]", got)
	}
}

// TestFaultFSDeterminism: the fault schedule is a pure function of
// (seed, op index) — two instances with the same seed agree op for op,
// and a different seed disagrees somewhere.
func TestFaultFSDeterminism(t *testing.T) {
	rates := FaultRates{SyncFailProb: 0.2, TornProb: 0.15, FullProb: 0.1, StallProb: 0.05}
	type outcome struct {
		n   int
		err error
	}
	run := func(seed uint64) []outcome {
		f := NewFaultFS(seed, rates)
		var out []outcome
		for i := 0; i < 200; i++ {
			if i%3 == 0 {
				out = append(out, outcome{0, f.Sync()})
			} else {
				n, err := f.Write(100)
				out = append(out, outcome{n, err})
			}
		}
		return out
	}
	a, b, c := run(42), run(42), run(43)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: same seed diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 200-op schedules")
	}
	st := NewFaultFS(42, rates)
	for i := 0; i < 200; i++ {
		if i%3 == 0 {
			st.Sync()
		} else {
			st.Write(100)
		}
	}
	s := st.Stats()
	if s.Ops != 200 || s.SyncFails+s.TornWrites+s.FullWrites+s.Stalls == 0 {
		t.Fatalf("stats look wrong for these rates: %+v", s)
	}
}

// TestFaultFSWedgeHeal: a wedged device fails every op; Heal restores it.
func TestFaultFSWedgeHeal(t *testing.T) {
	f := NewFaultFS(1, FaultRates{})
	if _, err := f.Write(10); err != nil {
		t.Fatalf("healthy write: %v", err)
	}
	f.Wedge()
	if !f.Wedged() {
		t.Fatal("Wedged() false after Wedge")
	}
	if _, err := f.Write(10); !errors.Is(err, ErrInjectedWedge) {
		t.Fatalf("wedged write: got %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjectedWedge) {
		t.Fatalf("wedged sync: got %v", err)
	}
	f.Heal()
	if _, err := f.Write(10); err != nil {
		t.Fatalf("healed write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("healed sync: %v", err)
	}
}

// TestFaultFSStallWindow: a stall opens a window of StallOps consecutive
// failing ops, then the device recovers.
func TestFaultFSStallWindow(t *testing.T) {
	// StallProb 1 on the first write op guarantees the window opens
	// immediately; after the window, StallProb 1 would reopen it — so
	// verify the window length by counting consecutive stall errors.
	f := NewFaultFS(9, FaultRates{StallProb: 1, StallOps: 4})
	stalls := 0
	for i := 0; i < 4; i++ {
		if _, err := f.Write(10); errors.Is(err, ErrInjectedStall) {
			stalls++
		} else {
			t.Fatalf("op %d: got %v, want stall", i, err)
		}
	}
	if stalls != 4 {
		t.Fatalf("stall window = %d ops, want 4", stalls)
	}
	if got := f.Stats(); got.Stalls != 1 || got.StallOps != 4 {
		t.Fatalf("stats: %+v, want 1 window of 4 ops", got)
	}
}

// TestFaultFSDiskFull: a full-disk write lands nothing and poisons the
// writer through the normal error path.
func TestFaultFSDiskFull(t *testing.T) {
	dir := t.TempDir()
	f := NewFaultFS(3, FaultRates{FullProb: 1})
	w, err := Open(dir, Options{Inject: f})
	// Open itself writes the first segment header through the injector —
	// with FullProb 1 it must fail, which is the honest model of creating
	// a journal on a full disk.
	if err == nil {
		w.Close()
		t.Fatal("open on full disk should fail")
	}
	if !errors.Is(err, ErrInjectedFull) {
		t.Fatalf("open: got %v, want ErrInjectedFull", err)
	}
}
