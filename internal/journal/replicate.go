// Mirror is the journal-level record-shipping stream behind shard
// replication: it keeps a follower store directory byte-identical to the
// primary's by shipping WAL frames verbatim and copying checkpoint files
// wholesale. Because the WAL is CRC32C-framed with contiguous indices,
// "replicate" degenerates to "append the primary's newly valid frame
// bytes" — there is no follower-side apply logic to get wrong, and
// byte-equality (DirDigest/Verify) is the whole correctness check: a
// follower that digests equal to its primary recovers to the identical
// runtime state, because recovery is a pure function of the bytes.
package journal

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrReplicaDiverged reports a follower whose on-disk bytes are not a
// shipped prefix of the primary's — external interference, silent
// corruption, or a stale promotion survivor. The only safe repair is a
// re-seed from the primary.
var ErrReplicaDiverged = errors.New("journal: replica diverged from primary")

// MirrorOptions parameterizes the follower's physical I/O, mirroring the
// Writer's own knobs: the follower sits on its own (possibly faulty)
// device.
type MirrorOptions struct {
	// Inject, when non-nil, intercepts every follower write and fsync —
	// the follower drive's deterministic fault plan.
	Inject Injector
	// NoSync disables follower fsyncs (tests that only care about bytes).
	NoSync bool
	// AfterSync runs after every successful follower fsync, so crash
	// sweeps can count replication barriers alongside the primary's.
	AfterSync func()
}

// walCursor caches how far into one source segment the mirror has already
// validated frames, so a steady-state ship is O(delta), not O(segment).
// The cached prefix can never be invalidated: the mirror only advances it
// over durable acked frames, and torn-tail repair truncates strictly
// after the acked prefix.
type walCursor struct {
	off  int64  // end of the validated frame prefix
	next uint64 // index the frame at off must carry
}

// Mirror incrementally replicates one store directory (top-level
// checkpoint files + wal/ segment journal) into another. Not safe for
// concurrent use; the cluster serializes ships per shard.
type Mirror struct {
	src, dst string
	opt      MirrorOptions
	cursors  map[uint64]*walCursor // per-segment scan cache, by base
	shipped  map[string]int64      // bytes this mirror knows are at dst, by rel path
}

// NewMirror builds a mirror from src to dst. Neither directory needs to
// exist yet; Sync creates the destination and adopts an existing one that
// is a valid shipped prefix.
func NewMirror(src, dst string, opt MirrorOptions) *Mirror {
	return &Mirror{src: src, dst: dst, opt: opt,
		cursors: make(map[uint64]*walCursor), shipped: make(map[string]int64)}
}

// Src and Dst expose the endpoints for diagnostics.
func (m *Mirror) Src() string { return m.src }
func (m *Mirror) Dst() string { return m.dst }

// write routes buf to f through the follower injector with the Writer's
// exact semantics: a short injected count lands only the prefix before the
// injected error surfaces.
func (m *Mirror) write(f *os.File, buf []byte) (int, error) {
	return injectedWrite(m.opt.Inject, f, buf)
}

// fsync is the follower-side durability barrier; injected sync faults
// fire even under NoSync (the injector models the disk).
func (m *Mirror) fsync(f *os.File) error {
	if m.opt.Inject != nil {
		if err := m.opt.Inject.Sync(); err != nil {
			return err
		}
	}
	if !m.opt.NoSync {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	if m.opt.AfterSync != nil {
		m.opt.AfterSync()
	}
	return nil
}

func (m *Mirror) fsyncDir(dir string) error {
	if m.opt.Inject != nil {
		if err := m.opt.Inject.Sync(); err != nil {
			return err
		}
	}
	if !m.opt.NoSync {
		if err := syncDir(dir); err != nil {
			return err
		}
	}
	if m.opt.AfterSync != nil {
		m.opt.AfterSync()
	}
	return nil
}

// validPrefix walks the segment's frames from the cached cursor and
// returns the end of the valid prefix. checkOff, when > 0, asks the walk
// to report whether that offset is a frame boundary (needed when adopting
// a pre-existing follower file whose length the mirror has not shipped).
func (m *Mirror) validPrefix(base uint64, data []byte, checkOff int64) (end int64, boundary bool, err error) {
	cur := m.cursors[base]
	if cur == nil {
		if len(data) < headerSize {
			return 0, checkOff == 0, fmt.Errorf("segment %s: truncated header", segName(base))
		}
		got, ok := decodeHeader(data[:headerSize])
		if !ok || got != base {
			return 0, false, fmt.Errorf("segment %s: bad header", segName(base))
		}
		cur = &walCursor{off: headerSize, next: base}
		m.cursors[base] = cur
	}
	if int64(len(data)) < cur.off {
		return 0, false, fmt.Errorf("segment %s: shrank below shipped prefix (%d < %d)", segName(base), len(data), cur.off)
	}
	boundary = checkOff == cur.off || checkOff == 0 || checkOff == headerSize
	off := int(cur.off)
	next := cur.next
	for off < len(data) {
		_, n, ok := decodeRecord(data, off, next)
		if !ok {
			break // torn tail: the valid prefix ends here
		}
		off, next = n, next+1
		if int64(off) == checkOff {
			boundary = true
		}
	}
	cur.off, cur.next = int64(off), next
	return int64(off), boundary, nil
}

// shipSegment brings dst's copy of one WAL segment up to the source's
// valid frame prefix by appending exactly the missing bytes.
func (m *Mirror) shipSegment(base uint64) error {
	rel := filepath.Join("wal", segName(base))
	data, err := os.ReadFile(filepath.Join(m.src, "wal", segName(base)))
	if err != nil {
		return err
	}
	dstPath := filepath.Join(m.dst, rel)
	var dstSize int64
	known, tracked := m.shipped[rel]
	if st, err := os.Stat(dstPath); err == nil {
		dstSize = st.Size()
	} else if !errors.Is(err, fs.ErrNotExist) {
		return err
	} else if tracked {
		return fmt.Errorf("%w: follower segment %s vanished", ErrReplicaDiverged, rel)
	}
	if tracked && dstSize != known {
		return fmt.Errorf("%w: follower segment %s is %d bytes, mirror shipped %d", ErrReplicaDiverged, rel, dstSize, known)
	}
	end, boundary, err := m.validPrefix(base, data, dstSize)
	if err != nil {
		return err
	}
	switch {
	case dstSize == end:
		m.shipped[rel] = end
		return nil
	case dstSize > end:
		return fmt.Errorf("%w: follower segment %s is ahead of primary (%d > %d)", ErrReplicaDiverged, rel, dstSize, end)
	case !boundary:
		return fmt.Errorf("%w: follower segment %s ends mid-frame at %d", ErrReplicaDiverged, rel, dstSize)
	}
	f, err := os.OpenFile(dstPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	// Fresh buffer: injected corruption (Corrupter) may mutate it in place.
	delta := append([]byte(nil), data[dstSize:end]...)
	_, werr := m.write(f, delta)
	if werr == nil {
		werr = m.fsync(f)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		// The follower file is now an unknown prefix; forget it so the
		// caller's demote/re-seed path is the only way forward.
		delete(m.shipped, rel)
		return werr
	}
	m.shipped[rel] = end
	return nil
}

// copyFile ships one non-WAL file (checkpoints) wholesale. Checkpoint
// files are immutable once renamed into place on the primary, so "same
// length" means "same file" for an honest follower; Verify backstops
// dishonest ones.
func (m *Mirror) copyFile(name string) error {
	data, err := os.ReadFile(filepath.Join(m.src, name))
	if err != nil {
		return err
	}
	dstPath := filepath.Join(m.dst, name)
	if st, err := os.Stat(dstPath); err == nil && st.Size() == int64(len(data)) {
		m.shipped[name] = st.Size()
		return nil
	}
	f, err := os.OpenFile(dstPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	buf := append([]byte(nil), data...)
	_, werr := m.write(f, buf)
	if werr == nil {
		werr = m.fsync(f)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		delete(m.shipped, name)
		return werr
	}
	m.shipped[name] = int64(len(data))
	return nil
}

// Sync brings dst up to src: ships new WAL frame bytes, copies new
// checkpoint files, and deletes follower files the primary has pruned
// (compaction, checkpoint GC). On success the follower holds exactly the
// primary's durable prefix. On error the follower is suspect and the
// caller must demote it until a re-seed.
func (m *Mirror) Sync() error {
	if err := os.MkdirAll(filepath.Join(m.dst, "wal"), 0o755); err != nil {
		return err
	}
	srcBases, err := listSegments(filepath.Join(m.src, "wal"))
	if err != nil {
		return err
	}
	dstBases, err := listSegments(filepath.Join(m.dst, "wal"))
	if err != nil {
		return err
	}
	have := make(map[uint64]bool, len(srcBases))
	for _, b := range srcBases {
		have[b] = true
	}
	walDirty := false
	for _, b := range dstBases {
		if !have[b] {
			if err := os.Remove(filepath.Join(m.dst, "wal", segName(b))); err != nil {
				return err
			}
			delete(m.shipped, filepath.Join("wal", segName(b)))
			delete(m.cursors, b)
			walDirty = true
		}
	}
	for _, b := range srcBases {
		if _, err := os.Stat(filepath.Join(m.dst, "wal", segName(b))); errors.Is(err, fs.ErrNotExist) {
			walDirty = true
		}
		if err := m.shipSegment(b); err != nil {
			return err
		}
	}
	// Drop cursors for segments the primary pruned.
	for b := range m.cursors {
		if !have[b] {
			delete(m.cursors, b)
		}
	}
	if walDirty {
		if err := m.fsyncDir(filepath.Join(m.dst, "wal")); err != nil {
			return err
		}
	}

	ents, err := os.ReadDir(m.src)
	if err != nil {
		return err
	}
	topDirty := false
	keep := make(map[string]bool)
	for _, e := range ents {
		if e.IsDir() || strings.Contains(e.Name(), ".tmp") {
			continue
		}
		keep[e.Name()] = true
		if _, err := os.Stat(filepath.Join(m.dst, e.Name())); errors.Is(err, fs.ErrNotExist) {
			topDirty = true
		}
		if err := m.copyFile(e.Name()); err != nil {
			return err
		}
	}
	dents, err := os.ReadDir(m.dst)
	if err != nil {
		return err
	}
	for _, e := range dents {
		if e.IsDir() || strings.Contains(e.Name(), ".tmp") || keep[e.Name()] {
			continue
		}
		if err := os.Remove(filepath.Join(m.dst, e.Name())); err != nil {
			return err
		}
		delete(m.shipped, e.Name())
		topDirty = true
	}
	if topDirty {
		if err := m.fsyncDir(m.dst); err != nil {
			return err
		}
	}
	return nil
}

// Verify proves byte-identity: the follower holds exactly the primary's
// files with exactly the primary's bytes. Any difference — content, a
// missing file, an extra file — is ErrReplicaDiverged naming the first
// offender.
func (m *Mirror) Verify() error {
	return VerifyReplica(m.src, m.dst)
}

// replicaFiles lists a store directory's replicated file set: relative
// paths of all regular files, recursively, skipping in-flight temp files.
func replicaFiles(dir string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if path == dir && errors.Is(err, fs.ErrNotExist) {
				return filepath.SkipAll
			}
			return err
		}
		if d.IsDir() || strings.Contains(d.Name(), ".tmp") {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out = append(out, rel)
		return nil
	})
	sort.Strings(out)
	return out, err
}

// VerifyReplica byte-compares two store directories.
func VerifyReplica(src, dst string) error {
	sf, err := replicaFiles(src)
	if err != nil {
		return err
	}
	df, err := replicaFiles(dst)
	if err != nil {
		return err
	}
	seen := make(map[string]bool, len(df))
	for _, f := range df {
		seen[f] = true
	}
	for _, f := range sf {
		if !seen[f] {
			return fmt.Errorf("%w: follower missing %s", ErrReplicaDiverged, f)
		}
		delete(seen, f)
		a, err := os.ReadFile(filepath.Join(src, f))
		if err != nil {
			return err
		}
		b, err := os.ReadFile(filepath.Join(dst, f))
		if err != nil {
			return err
		}
		if string(a) != string(b) {
			return fmt.Errorf("%w: %s differs (%d vs %d bytes)", ErrReplicaDiverged, f, len(a), len(b))
		}
	}
	for f := range seen {
		return fmt.Errorf("%w: follower has extra file %s", ErrReplicaDiverged, f)
	}
	return nil
}

// DirDigest folds a store directory's entire replicated byte content into
// one FNV-1a identity: sorted relative paths, each followed by its bytes.
// A missing directory digests as empty, so a never-seeded follower
// compares unequal to any non-empty primary rather than erroring.
func DirDigest(dir string) (uint64, error) {
	files, err := replicaFiles(dir)
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	for _, f := range files {
		h.Write([]byte(f))
		h.Write([]byte{0})
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			return 0, err
		}
		h.Write(data)
		h.Write([]byte{0})
	}
	return h.Sum64(), nil
}

// HighWater returns the follower's replicated WAL high-water mark: the
// index of the last contiguous valid record in dir's journal (0 when
// empty). Promotion uses it to rank candidates without opening a store.
func HighWater(dir string) (uint64, error) {
	st, err := Replay(filepath.Join(dir, "wal"), 0, func(Record) error { return nil })
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	return st.Last, nil
}
