package journal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// write appends n records "rec-<index>" and syncs.
func write(t *testing.T, w *Writer, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		idx, err := w.Append(TypeEvent, []byte(fmt.Sprintf("rec-%d", w.LastIndex()+1)))
		if err != nil {
			t.Fatal(err)
		}
		if idx != w.LastIndex() {
			t.Fatalf("Append returned %d, LastIndex %d", idx, w.LastIndex())
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
	}
}

// replayAll collects every record from index 0.
func replayAll(t *testing.T, dir string) ([]Record, Stats) {
	t.Helper()
	var recs []Record
	st, err := Replay(dir, 0, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return recs, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	write(t, w, 25)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recs, st := replayAll(t, dir)
	if len(recs) != 25 || st.Torn {
		t.Fatalf("replayed %d records (torn=%v), want 25 clean", len(recs), st.Torn)
	}
	for i, r := range recs {
		if r.Index != uint64(i+1) || r.Type != TypeEvent {
			t.Fatalf("record %d: index %d type %v", i, r.Index, r.Type)
		}
		if want := fmt.Sprintf("rec-%d", i+1); string(r.Payload) != want {
			t.Fatalf("record %d payload %q, want %q", i, r.Payload, want)
		}
	}

	// Replay from the middle delivers only the suffix.
	var n int
	if _, err := Replay(dir, 20, func(r Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("replay from 20 delivered %d records, want 5", n)
	}
}

func TestReopenContinuesIndices(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	write(t, w, 7)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w.LastIndex() != 7 {
		t.Fatalf("reopened LastIndex %d, want 7", w.LastIndex())
	}
	write(t, w, 3)
	w.Close()
	recs, _ := replayAll(t, dir)
	if len(recs) != 10 || recs[9].Index != 10 {
		t.Fatalf("after reopen: %d records, last index %d", len(recs), recs[len(recs)-1].Index)
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of records.
	w, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	write(t, w, 20)
	if w.Segments() < 3 {
		t.Fatalf("only %d segments after 20 records at 64-byte rotation", w.Segments())
	}
	recs, st := replayAll(t, dir)
	if len(recs) != 20 || st.Torn {
		t.Fatalf("replayed %d (torn=%v), want 20 clean", len(recs), st.Torn)
	}

	// Compact to index 10: sealed segments fully ≤ 10 disappear, and
	// replay from 10 still works.
	before := w.Segments()
	if err := w.CompactTo(10); err != nil {
		t.Fatal(err)
	}
	if w.Segments() >= before {
		t.Fatalf("compaction removed nothing (%d -> %d segments)", before, w.Segments())
	}
	var n int
	if _, err := Replay(dir, 10, func(r Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("replay from 10 after compaction delivered %d, want 10", n)
	}
	// Replaying from before the compaction horizon reports the gap.
	if _, err := Replay(dir, 0, func(Record) error { return nil }); err == nil {
		t.Error("replay from 0 after compaction should report missing records")
	}
	w.Close()
}

func TestReset(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	write(t, w, 5)
	if err := w.Reset(42); err != nil {
		t.Fatal(err)
	}
	if w.LastIndex() != 42 {
		t.Fatalf("LastIndex after Reset(42) = %d", w.LastIndex())
	}
	write(t, w, 2)
	w.Close()
	var idxs []uint64
	if _, err := Replay(dir, 42, func(r Record) error { idxs = append(idxs, r.Index); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(idxs) != 2 || idxs[0] != 43 || idxs[1] != 44 {
		t.Fatalf("post-Reset indices %v, want [43 44]", idxs)
	}
}

// lastSegment returns the path of the newest segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	bases, err := listSegments(dir)
	if err != nil || len(bases) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	return filepath.Join(dir, segName(bases[len(bases)-1]))
}

// TestTornTail is the table-driven torn-tail test the crash-only contract
// demands: for every way a crash can shear the log mid-write — partial
// frame header, partial body, bit-flipped body (bad CRC) — recovery must
// keep exactly the records before the tear and Open must truncate the
// garbage so appends resume cleanly.
func TestTornTail(t *testing.T) {
	cases := []struct {
		name string
		keep int // records surviving the tear (7 are written; the tear hits the 7th)
		tear func(t *testing.T, path string, tailStart int64)
	}{
		{"partial-frame-header", 6, func(t *testing.T, path string, tailStart int64) {
			// Keep 3 bytes of the 8-byte length+CRC frame prefix.
			if err := os.Truncate(path, tailStart+3); err != nil {
				t.Fatal(err)
			}
		}},
		{"partial-body", 6, func(t *testing.T, path string, tailStart int64) {
			// Keep the frame words and half the body.
			if err := os.Truncate(path, tailStart+frameSize+5); err != nil {
				t.Fatal(err)
			}
		}},
		{"bad-crc", 6, func(t *testing.T, path string, tailStart int64) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[tailStart+frameSize+2] ^= 0x40 // flip one bit in the body
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"zero-garbage-tail", 7, func(t *testing.T, path string, tailStart int64) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.Write(make([]byte, 100)); err != nil {
				t.Fatal(err)
			}
		}},
		{"absurd-length-word", 7, func(t *testing.T, path string, tailStart int64) {
			var word [4]byte
			binary.LittleEndian.PutUint32(word[:], maxBody+1)
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.Write(word[:]); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			write(t, w, 6)
			path := lastSegment(t, dir)
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			tailStart := fi.Size() // the tear target: a 7th record's offset
			write(t, w, 1)
			w.Close()

			tc.tear(t, path, tailStart)

			// Read-only replay sees the valid prefix and flags the tear
			// (except pure truncation at a record boundary, which there
			// isn't here: every tear leaves garbage or a short frame).
			recs, st := replayAll(t, dir)
			if len(recs) != tc.keep {
				t.Fatalf("replay kept %d records, want %d", len(recs), tc.keep)
			}
			if !st.Torn {
				t.Error("replay did not flag the torn tail")
			}

			// Open repairs; appends continue at the right index.
			w, err = Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if int(w.LastIndex()) != tc.keep {
				t.Fatalf("recovered LastIndex %d, want %d", w.LastIndex(), tc.keep)
			}
			write(t, w, 2)
			w.Close()
			recs, st = replayAll(t, dir)
			if len(recs) != tc.keep+2 || st.Torn {
				t.Fatalf("after repair: %d records (torn=%v), want %d clean",
					len(recs), st.Torn, tc.keep+2)
			}
		})
	}
}

// TestCorruptMiddleSegmentDropsSuffix: corruption in a sealed segment ends
// the valid prefix there — later segments are unreachable and Open deletes
// them rather than serving records past a hole.
func TestCorruptMiddleSegmentDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	write(t, w, 12)
	if w.Segments() < 3 {
		t.Fatalf("need ≥3 segments, got %d", w.Segments())
	}
	w.Close()

	bases, _ := listSegments(dir)
	mid := filepath.Join(dir, segName(bases[1]))
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+frameSize+1] ^= 0x01 // corrupt segment 2's first record body
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, st := replayAll(t, dir)
	if !st.Torn {
		t.Error("corruption not flagged")
	}
	wantPrefix := len(recs) // longest valid prefix = all of segment 1

	w, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := int(w.LastIndex()); got != wantPrefix {
		t.Fatalf("Open recovered to index %d, replay prefix was %d", got, wantPrefix)
	}
	write(t, w, 1)
	w.Close()
	recs2, st2 := replayAll(t, dir)
	if st2.Torn || len(recs2) != wantPrefix+1 {
		t.Fatalf("after repair: %d records (torn=%v), want %d clean",
			len(recs2), st2.Torn, wantPrefix+1)
	}
}

// TestBadHeaderDeletesJournal: a segment whose header is mangled is not a
// journal segment; if it is the first one, nothing valid remains and Open
// must start fresh rather than guess.
func TestBadHeaderDeletesJournal(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	write(t, w, 3)
	w.Close()
	path := lastSegment(t, dir)
	data, _ := os.ReadFile(path)
	data[2] ^= 0xff
	os.WriteFile(path, data, 0o644)

	w, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.LastIndex() != 0 {
		t.Fatalf("recovered LastIndex %d from a journal with no valid header", w.LastIndex())
	}
}

// TestAfterSyncHook counts durability boundaries: each record commit is
// one fsync, plus two for the initial segment creation (file + directory).
func TestAfterSyncHook(t *testing.T) {
	dir := t.TempDir()
	n := 0
	w, err := Open(dir, Options{AfterSync: func() { n++ }})
	if err != nil {
		t.Fatal(err)
	}
	base := n // segment create: file sync + dir sync
	if base != 2 {
		t.Fatalf("segment creation fired %d syncs, want 2", base)
	}
	write(t, w, 4)
	if n != base+4 {
		t.Fatalf("4 record commits fired %d syncs, want 4", n-base)
	}
	// Sync with nothing pending is a no-op, not a phantom crash point.
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if n != base+4 {
		t.Fatalf("idle Sync fired a hook (count %d)", n)
	}
	w.Close()
}

func TestEncodeDecodeRecord(t *testing.T) {
	payload := []byte("hello")
	buf := encodeRecord(TypeEpoch, 99, payload)
	rec, next, ok := decodeRecord(buf, 0, 99)
	if !ok || rec.Type != TypeEpoch || rec.Index != 99 || !bytes.Equal(rec.Payload, payload) {
		t.Fatalf("round trip failed: %+v ok=%v", rec, ok)
	}
	if next != len(buf) {
		t.Fatalf("next offset %d, want %d", next, len(buf))
	}
	// Wrong expected index = corruption.
	if _, _, ok := decodeRecord(buf, 0, 100); ok {
		t.Error("index mismatch accepted")
	}
}
