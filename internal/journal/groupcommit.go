// Group commit: coalescing concurrent Append+Sync callers into shared
// fsyncs.
//
// A write-ahead journal acknowledges a mutation only after the fsync that
// covers it, so a serial ingest path admits at disk-sync rate: N callers,
// N fsyncs. The classical fix — group commit — observes that one fsync
// covers every byte written before it, so N concurrent callers can share
// one. GroupCommitter implements the leader/follower variant: the first
// caller to find no group open becomes the leader of a new one, later
// callers append themselves to the open group, and the leader writes the
// whole group as one multi-record append followed by one fsync, then wakes
// every member. Because groups are written under a serializing lock, a
// group naturally keeps collecting members for as long as the *previous*
// group's fsync is in flight — the disk's own latency is the batching
// window, which is what makes the amortization self-tuning: the slower the
// disk, the bigger the groups.
//
// Two bounds keep the window honest:
//
//   - MaxBatch caps the records per group; a full group is sealed
//     immediately and overflow callers start the next one.
//   - MaxDelay is the Postgres-style commit_delay: a leader that observes
//     company (≥2 members when it reaches the write lock) may stall the
//     sync briefly to let the group fill. A lone caller never waits — the
//     serial path keeps serial latency.
//
// Durability semantics are exactly Append+Sync: Commit returns only after
// the fsync covering the record, errors from the write or the sync fan out
// to every member of the group, and the on-disk format is unchanged (a
// batched write is indistinguishable from serial writes on recovery).
package journal

import (
	"sync"
	"time"
)

// Sink is the journal surface a GroupCommitter drives. *Writer implements
// it; tests substitute gated or failing sinks. The committer guarantees
// that all Sink calls are serialized, so the Sink itself need not be safe
// for concurrent use.
type Sink interface {
	AppendBatch([]Pending) (uint64, error)
	Sync() error
}

// GroupOptions parameterizes a GroupCommitter. The zero value is usable.
type GroupOptions struct {
	// MaxBatch caps the records per commit group (default 64).
	MaxBatch int
	// MaxDelay is how long a leader that observed concurrency may stall
	// its sync to let the group fill. Zero defaults to 500µs; negative
	// disables the stall entirely (groups still form during fsyncs).
	MaxDelay time.Duration
}

func (o GroupOptions) withDefaults() GroupOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxDelay == 0 {
		o.MaxDelay = 500 * time.Microsecond
	}
	return o
}

// GroupStats counts the committer's amortization. Records/Syncs is the
// figure of merit: 1.0 means no batching (serial behaviour), higher means
// that many admissions per disk sync.
type GroupStats struct {
	// Records is the number of records acknowledged (durably committed).
	Records uint64 `json:"records"`
	// Syncs is the number of fsyncs issued for those records.
	Syncs uint64 `json:"syncs"`
	// Groups is the number of commit groups written (== Syncs unless a
	// group failed).
	Groups uint64 `json:"groups"`
	// MaxGroup is the largest group observed.
	MaxGroup int `json:"max_group"`
	// Stalls counts groups whose leader delayed the sync (the MaxDelay
	// window) to let the group fill — syncs deliberately held back.
	Stalls uint64 `json:"stalls"`
	// Sealed counts groups closed early by hitting MaxBatch — demand
	// exceeded the batch bound and overflow callers waited for the next
	// group.
	Sealed uint64 `json:"sealed"`
	// Errors counts groups whose write or sync failed (the failure was
	// fanned out to every member).
	Errors uint64 `json:"errors"`
}

// RecordsPerSync returns the amortization ratio (0 when nothing synced).
func (s GroupStats) RecordsPerSync() float64 {
	if s.Syncs == 0 {
		return 0
	}
	return float64(s.Records) / float64(s.Syncs)
}

// commitGroup is one in-flight batch. Members learn their fate through
// done; first+position is their assigned index.
type commitGroup struct {
	recs   []Pending
	full   chan struct{} // closed when MaxBatch is reached (wakes a stalling leader)
	done   chan struct{} // closed after the covering sync (or its failure)
	first  uint64
	err    error
	sealed bool // no longer accepting members
}

// GroupCommitter coalesces concurrent Commit calls into shared
// multi-record writes and fsyncs. Safe for concurrent use; a lone caller
// degenerates to plain Append+Sync with no added latency.
type GroupCommitter struct {
	sink Sink
	opt  GroupOptions

	// writeMu serializes group writes: append order == index order ==
	// wake-up order. Holding it across AppendBatch+Sync is what turns the
	// previous group's fsync into the next group's collection window.
	writeMu sync.Mutex

	mu     sync.Mutex // guards open, closed, stats
	open   *commitGroup
	closed bool
	stats  GroupStats
}

// NewGroupCommitter wraps sink. The committer owns all append/sync access
// to the sink from then on; callers must not touch it concurrently except
// through the committer (or after Flush, from the committer's goroutine
// discipline — see Store).
func NewGroupCommitter(sink Sink, opt GroupOptions) *GroupCommitter {
	return &GroupCommitter{sink: sink, opt: opt.withDefaults()}
}

// Stats returns a snapshot of the amortization counters.
func (g *GroupCommitter) Stats() GroupStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Commit appends one record and returns after the fsync covering it — the
// concurrent equivalent of Append+Sync. The returned index is the
// record's journal position. Concurrent callers share writes and syncs;
// any write/sync error is delivered to every caller of the failed group.
func (g *GroupCommitter) Commit(t Type, payload []byte) (uint64, error) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return 0, ErrClosed
	}
	if grp := g.open; grp != nil {
		// Follower: join the open group and wait for its leader's sync.
		pos := len(grp.recs)
		grp.recs = append(grp.recs, Pending{Type: t, Payload: payload})
		if len(grp.recs) >= g.opt.MaxBatch {
			grp.sealed = true
			g.open = nil
			g.stats.Sealed++
			close(grp.full)
		}
		g.mu.Unlock()
		<-grp.done
		if grp.err != nil {
			return 0, grp.err
		}
		return grp.first + uint64(pos), nil
	}
	// Leader: open a group, then queue for the write lock. Followers keep
	// joining while the previous group's fsync runs.
	grp := &commitGroup{
		recs: append(make([]Pending, 0, 4), Pending{Type: t, Payload: payload}),
		full: make(chan struct{}),
		done: make(chan struct{}),
	}
	g.open = grp
	g.mu.Unlock()

	g.writeMu.Lock()
	err := g.lead(grp)
	if err != nil {
		return 0, err
	}
	return grp.first, nil // the leader holds position 0
}

// lead runs the leader's half of a group commit with writeMu held:
// optional fill stall, seal, one multi-record write, one sync, fan-out.
// A panic out of the sink (the crash-point sweep kills the process inside
// the fsync hook) still releases the members and the lock before it
// propagates, so an in-process "crash" cannot strand followers.
func (g *GroupCommitter) lead(grp *commitGroup) error {
	completed := false
	defer func() {
		if !completed { // panicking out of the sink
			grp.err = ErrClosed
			close(grp.done)
			g.writeMu.Unlock()
		}
	}()

	// The commit_delay stall: only when the group already has company —
	// a lone caller commits immediately, so the serial path pays nothing.
	g.mu.Lock()
	stall := !grp.sealed && len(grp.recs) > 1 && g.opt.MaxDelay > 0
	if stall {
		g.stats.Stalls++
	}
	g.mu.Unlock()
	if stall {
		timer := time.NewTimer(g.opt.MaxDelay)
		select {
		case <-grp.full:
		case <-timer.C:
		}
		timer.Stop()
	}

	// Seal: no members may join once the write starts.
	g.mu.Lock()
	if g.open == grp {
		grp.sealed = true
		g.open = nil
	}
	recs := grp.recs
	g.mu.Unlock()

	first, err := g.sink.AppendBatch(recs)
	if err == nil {
		err = g.sink.Sync()
	}

	g.mu.Lock()
	g.stats.Groups++
	if err == nil {
		g.stats.Syncs++
		g.stats.Records += uint64(len(recs))
		if len(recs) > g.stats.MaxGroup {
			g.stats.MaxGroup = len(recs)
		}
	} else {
		g.stats.Errors++
	}
	g.mu.Unlock()

	grp.first, grp.err = first, err
	completed = true
	close(grp.done)
	g.writeMu.Unlock()
	return err
}

// CommitAll appends the whole slice as one group of its own — one
// multi-record write, one covering fsync — and returns the index of the
// first record (record i carries first+i). It does not merge with
// concurrent Commit groups; the batch drain of an admission queue is
// already a formed group, so there is nothing to wait for. Group size is
// caller-bounded: CommitAll ignores MaxBatch.
func (g *GroupCommitter) CommitAll(recs []Pending) (uint64, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return 0, ErrClosed
	}
	g.mu.Unlock()

	g.writeMu.Lock()
	first, err := g.sink.AppendBatch(recs)
	if err == nil {
		err = g.sink.Sync()
	}
	g.mu.Lock()
	g.stats.Groups++
	if err == nil {
		g.stats.Syncs++
		g.stats.Records += uint64(len(recs))
		if len(recs) > g.stats.MaxGroup {
			g.stats.MaxGroup = len(recs)
		}
	} else {
		g.stats.Errors++
	}
	g.mu.Unlock()
	g.writeMu.Unlock()
	if err != nil {
		return 0, err
	}
	return first, nil
}

// Flush waits until every group that exists right now has been written
// and synced (or failed). New Commit calls may still arrive; a drained
// shutdown bars the door first (serve.Server.Shutdown), making Flush the
// "no acknowledged-pending records" guarantee before the journal closes.
func (g *GroupCommitter) Flush() error {
	g.mu.Lock()
	grp := g.open
	g.mu.Unlock()
	if grp != nil {
		<-grp.done
		if grp.err != nil {
			return grp.err
		}
	}
	// Sealed-but-writing groups finish under writeMu.
	g.writeMu.Lock()
	g.writeMu.Unlock() //nolint:staticcheck // empty critical section IS the barrier
	return nil
}

// Close rejects further Commits and flushes everything in flight. It does
// NOT close the underlying sink — the owner does, after Close returns.
func (g *GroupCommitter) Close() error {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
	return g.Flush()
}
