package journal

import (
	"sync"
	"time"
)

// Clock abstracts time for the journal layer. Production code uses
// WallClock; deterministic tests and soaks substitute a VirtualClock so
// injected drive delays advance time instantly and replay bit-identically.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// WallClock is the real time.Now/time.Sleep clock.
type WallClock struct{}

func (WallClock) Now() time.Time        { return time.Now() }
func (WallClock) Sleep(d time.Duration) { time.Sleep(d) }

// VirtualClock is a deterministic clock: Sleep advances Now instantly
// without blocking the caller. Safe for concurrent use; each Sleep is an
// atomic advance, so concurrent sleepers accumulate rather than overlap.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock returns a VirtualClock starting at the Unix epoch.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{now: time.Unix(0, 0)}
}

func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Advance moves the clock forward without a sleeper, e.g. to model
// background time passing between operations.
func (c *VirtualClock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}
