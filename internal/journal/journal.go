// Package journal is a crash-only write-ahead log for the long-running
// scheduler runtime: an append-only sequence of typed records, framed with
// explicit lengths and CRC32C checksums, split across rotating segment
// files.
//
// The durability contract is the crash-only one: the writer may die at any
// instruction — between two byte writes, between a write and its fsync,
// half-way through a segment rotation — and the reader must always recover
// the longest valid prefix of what was durably written, never panic on the
// garbage past it, and never mistake garbage for a record. Three mechanisms
// carry that contract:
//
//   - framing: every record is [u32 length][u32 CRC32C(body)][body], where
//     body = [u8 type][u64 index][payload]. A torn tail — partial length
//     word, partial body, or a body whose checksum does not match — marks
//     the end of the valid prefix. Record indices are assigned by the
//     writer, strictly contiguous from 1; a non-contiguous index is treated
//     exactly like a bad checksum.
//   - segment headers: each segment file opens with a magic string, a
//     format version and the index of its first record, checksummed
//     separately, so a half-created segment (or a file that is not a
//     journal at all) is detected before any record is believed.
//   - explicit fsync: Append buffers nothing but promises nothing either;
//     durability is claimed only by Sync, which fsyncs the active segment.
//     Callers journal a mutation and Sync *before* applying it — the
//     write-ahead discipline — so an applied mutation is always replayable.
//
// Rotation seals the active segment once it crosses Options.SegmentBytes;
// sealed segments are immutable and CompactTo deletes the ones a checkpoint
// has made redundant. Recovery (Open) truncates the torn tail of the last
// segment and discards any segments past a corrupt one, restoring the
// invariant that the on-disk journal is exactly one valid record prefix.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Type tags a record's payload. The journal itself is payload-agnostic;
// types exist so a replayer can dispatch without sniffing JSON.
type Type uint8

const (
	// TypeEvent is a runtime request (add/remove/overload), journaled
	// before it is applied.
	TypeEvent Type = 1
	// TypeEpoch is an epoch-completion record (epoch number, post-epoch
	// digest), journaled after the epoch ran.
	TypeEpoch Type = 2
	// TypeMark is a checkpoint marker (observability only; recovery uses
	// the checkpoint's own journal position, not the marker).
	TypeMark Type = 3
)

// String names the record type.
func (t Type) String() string {
	switch t {
	case TypeEvent:
		return "event"
	case TypeEpoch:
		return "epoch"
	case TypeMark:
		return "mark"
	}
	return fmt.Sprintf("type%d", uint8(t))
}

// Record is one journal entry. Index is assigned by the writer,
// contiguous from 1.
type Record struct {
	Index   uint64
	Type    Type
	Payload []byte
}

// Format constants. The magic doubles as a human-readable file signature;
// the version is the frame-format version, bumped on any layout change.
const (
	version    = 1
	headerSize = 24 // magic[8] + version u32 + base index u64 + header CRC u32
	frameSize  = 8  // length u32 + body CRC u32
	bodyMin    = 9  // type u8 + index u64

	// maxBody bounds the length word so a corrupt frame cannot demand an
	// absurd allocation. Runtime records are well under a kilobyte.
	maxBody = 16 << 20
)

var magic = [8]byte{'N', 'P', 'R', 'T', 'W', 'A', 'L', '1'}

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64 — the same checksum ext4, Btrfs and iSCSI use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Journal errors.
var (
	// ErrMissingRecords reports a gap: the caller asked to replay from an
	// index the remaining segments no longer cover (a checkpoint and its
	// compaction got out of sync, or a segment file was deleted by hand).
	ErrMissingRecords = errors.New("journal: records missing before first segment")
	// ErrClosed rejects use after Close.
	ErrClosed = errors.New("journal: writer is closed")
	// ErrJournalPoisoned rejects appends after any write or sync failure.
	// Once a write may have half-landed or a sync may have been dropped by
	// the kernel (fsyncgate: a failed fsync can throw away the dirty pages,
	// and a later "successful" fsync says nothing about them), the writer's
	// in-memory position can no longer be trusted against the file. The
	// only safe continuation is to reopen: Open re-derives the valid prefix
	// from the bytes actually on disk. Errors returned after poisoning wrap
	// ErrJournalPoisoned around the original failure.
	ErrJournalPoisoned = errors.New("journal: writer poisoned by earlier write/sync failure")
)

// Injector intercepts the writer's physical I/O for deterministic
// storage-fault injection. Write is consulted before each record write with
// the intended byte count and returns how many bytes to actually write —
// a short count models a torn write (the prefix really lands, exactly what
// a crash mid-write leaves for recovery to truncate) — plus the error to
// report. Sync is consulted before each fsync (file or directory); a
// non-nil error suppresses the real sync and is reported to the caller.
// Injectors run even under Options.NoSync: they model the disk, NoSync
// only elides the real fsync syscalls.
type Injector interface {
	Write(n int) (int, error)
	Sync() error
}

// Options parameterizes a Writer. The zero value is usable.
type Options struct {
	// SegmentBytes is the rotation threshold: once the active segment
	// reaches it, the next Append seals it and starts a new one.
	// Default 1 MiB.
	SegmentBytes int64
	// AfterSync, when non-nil, runs after every successful fsync (segment
	// data, new-segment creation, directory entries). The crash-point
	// sweep uses it to kill the process at every durability boundary.
	AfterSync func()
	// NoSync disables fsync entirely (tests that only care about framing).
	NoSync bool
	// Inject, when non-nil, intercepts every record write and fsync for
	// deterministic storage-fault injection (see Injector, FaultFS).
	Inject Injector
	// Clock supplies time for per-op latency capture. Defaults to WallClock;
	// deterministic soaks substitute a VirtualClock shared with the injector
	// so injected delays are the only thing that advances it.
	Clock Clock
	// Observe, when non-nil, receives the sojourn of every write (sync=false)
	// and fsync (sync=true) the writer issues, including time spent inside
	// the injector. Feeds per-shard latency health tracking.
	Observe func(sync bool, d time.Duration)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.Clock == nil {
		o.Clock = WallClock{}
	}
	return o
}

// segName formats a segment file name from its base index. Fixed-width hex
// keeps lexicographic order equal to numeric order.
func segName(base uint64) string {
	return fmt.Sprintf("seg-%016x.wal", base)
}

// parseSegName inverts segName.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal")
	if len(mid) != 16 {
		return 0, false
	}
	base, err := strconv.ParseUint(mid, 16, 64)
	if err != nil {
		return 0, false
	}
	return base, true
}

// listSegments returns the journal's segment base indices, ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var bases []uint64
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if base, ok := parseSegName(e.Name()); ok {
			bases = append(bases, base)
		}
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases, nil
}

// encodeHeader renders a segment header for the given base index.
func encodeHeader(base uint64) []byte {
	h := make([]byte, headerSize)
	copy(h, magic[:])
	binary.LittleEndian.PutUint32(h[8:], version)
	binary.LittleEndian.PutUint64(h[12:], base)
	binary.LittleEndian.PutUint32(h[20:], crc32.Checksum(h[:20], castagnoli))
	return h
}

// decodeHeader validates a segment header and returns its base index.
func decodeHeader(h []byte) (uint64, bool) {
	if len(h) < headerSize || [8]byte(h[:8]) != magic {
		return 0, false
	}
	if binary.LittleEndian.Uint32(h[8:]) != version {
		return 0, false
	}
	if crc32.Checksum(h[:20], castagnoli) != binary.LittleEndian.Uint32(h[20:]) {
		return 0, false
	}
	return binary.LittleEndian.Uint64(h[12:]), true
}

// appendRecord appends one framed record to dst and returns the extended
// slice, so a multi-record batch can be rendered into a single buffer and
// hit the kernel as one write.
func appendRecord(dst []byte, t Type, index uint64, payload []byte) []byte {
	body := len(payload) + bodyMin
	off := len(dst)
	dst = append(dst, make([]byte, frameSize+body)...)
	buf := dst[off:]
	binary.LittleEndian.PutUint32(buf, uint32(body))
	buf[frameSize] = byte(t)
	binary.LittleEndian.PutUint64(buf[frameSize+1:], index)
	copy(buf[frameSize+bodyMin:], payload)
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(buf[frameSize:], castagnoli))
	return dst
}

// encodeRecord renders one framed record.
func encodeRecord(t Type, index uint64, payload []byte) []byte {
	return appendRecord(nil, t, index, payload)
}

// decodeRecord parses the frame at data[off:]. ok is false on any torn or
// corrupt frame — which, per the crash-only contract, simply ends the valid
// prefix. wantIndex is the contiguity check; a mismatch is corruption.
func decodeRecord(data []byte, off int, wantIndex uint64) (rec Record, next int, ok bool) {
	if off+frameSize > len(data) {
		return rec, 0, false // torn length/CRC words
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	if n < bodyMin || n > maxBody {
		return rec, 0, false
	}
	if off+frameSize+n > len(data) {
		return rec, 0, false // torn body
	}
	body := data[off+frameSize : off+frameSize+n]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(data[off+4:]) {
		return rec, 0, false
	}
	rec.Type = Type(body[0])
	rec.Index = binary.LittleEndian.Uint64(body[1:])
	if rec.Index != wantIndex {
		return rec, 0, false
	}
	rec.Payload = append([]byte(nil), body[bodyMin:]...)
	return rec, off + frameSize + n, true
}

// syncDir fsyncs a directory so renames and creates in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Writer is the append side of the journal. Not safe for concurrent use.
type Writer struct {
	dir    string
	opt    Options
	f      *os.File // active segment
	size   int64    // bytes written to the active segment
	bases  []uint64 // all live segments, ascending; last is active
	next   uint64   // index the next Append will get
	dirty  bool     // appended since last Sync
	closed bool
	poison error // first write/sync failure; sticky until reopen
}

// fail records the writer's first failure and makes it sticky.
func (w *Writer) fail(err error) error {
	if w.poison == nil {
		w.poison = err
	}
	return err
}

// check gates every mutating entry point on closed/poisoned state.
func (w *Writer) check() error {
	if w.closed {
		return ErrClosed
	}
	if w.poison != nil {
		return fmt.Errorf("%w: %v", ErrJournalPoisoned, w.poison)
	}
	return nil
}

// Corrupter is an optional Injector extension for silent-corruption
// tests: when the injector implements it, every injected write passes its
// buffer through CorruptWrite before the bytes reach the file, and the
// implementation may mutate them in place (the journal and mirror always
// hand freshly allocated buffers to the write path). Unlike the Injector
// faults, a corrupting write returns success — that is the point: the
// damage is silent until a CRC check or replica digest catches it.
type Corrupter interface {
	CorruptWrite(p []byte)
}

// injectedWrite sends buf to f through the injector (when set). A short
// injected count writes only the prefix — the torn-write model — before
// reporting the injected error. Returns the byte count that reached the
// file so the caller can keep size accounting honest even on a torn
// write. Shared by the Writer and the replication Mirror so both ends of
// a shipping stream see identical device semantics.
func injectedWrite(inj Injector, f *os.File, buf []byte) (int, error) {
	n := len(buf)
	var ierr error
	if inj != nil {
		in, e := inj.Write(len(buf))
		ierr = e
		if in < n {
			n = in
		}
		if n < 0 {
			n = 0
		}
		if c, ok := inj.(Corrupter); ok && n > 0 {
			c.CorruptWrite(buf[:n])
		}
	}
	if n > 0 {
		if wn, werr := f.Write(buf[:n]); werr != nil {
			return wn, werr
		}
	}
	if ierr != nil {
		return n, ierr
	}
	if n < len(buf) {
		return n, io.ErrShortWrite
	}
	return n, nil
}

func (w *Writer) write(f *os.File, buf []byte) (int, error) {
	if w.opt.Observe == nil {
		return injectedWrite(w.opt.Inject, f, buf)
	}
	start := w.opt.Clock.Now()
	n, err := injectedWrite(w.opt.Inject, f, buf)
	w.opt.Observe(false, w.opt.Clock.Now().Sub(start))
	return n, err
}

// Open recovers the journal in dir (creating it if empty) and returns a
// writer positioned after the last valid record. Recovery truncates the
// torn tail of the segment holding the first invalid byte and deletes
// every segment after it, so the on-disk state is again exactly one valid
// prefix. Recovered reports how many valid records survive; Truncated is
// the number of garbage bytes discarded.
func Open(dir string, opt Options) (w *Writer, err error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	bases, err := listSegments(dir)
	if err != nil {
		return nil, err
	}

	// Scan segments in order, tracking the expected next index. The scan
	// stops at the first invalid header or frame; everything after it is
	// removed.
	next := uint64(1)
	if len(bases) > 0 {
		// A compacted journal starts past index 1; trust the first
		// surviving header for the starting point (it is checksummed, and
		// a corrupt first header deletes the whole journal — the only
		// honest option, since nothing valid remains).
		if data, rerr := os.ReadFile(filepath.Join(dir, segName(bases[0]))); rerr == nil {
			if base, ok := decodeHeader(data); ok && base == bases[0] {
				next = base
			}
		}
	}
	keep := 0
	broken := false
	for _, base := range bases {
		if broken || base != next {
			// Past a corruption point, or a gap/overlap in the chain:
			// unreachable records, delete.
			if err := os.Remove(filepath.Join(dir, segName(base))); err != nil {
				return nil, err
			}
			broken = true
			continue
		}
		path := filepath.Join(dir, segName(base))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		hbase, ok := decodeHeader(data)
		if !ok || hbase != base {
			if err := os.Remove(path); err != nil {
				return nil, err
			}
			broken = true
			continue
		}
		off := headerSize
		for off < len(data) {
			rec, n, ok := decodeRecord(data, off, next)
			if !ok {
				break
			}
			_ = rec
			next++
			off = n
		}
		if off < len(data) {
			// Torn or corrupt tail: truncate to the last valid record.
			if err := os.Truncate(path, int64(off)); err != nil {
				return nil, err
			}
			broken = true
		}
		keep++
	}
	bases = bases[:keep]

	w = &Writer{dir: dir, opt: opt, bases: bases, next: next}
	if len(bases) == 0 {
		if err := w.newSegment(next); err != nil {
			return nil, err
		}
		return w, nil
	}
	active := filepath.Join(dir, segName(bases[len(bases)-1]))
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	w.f, w.size = f, fi.Size()
	return w, nil
}

// newSegment creates and durably registers a fresh segment whose first
// record will carry index base.
func (w *Writer) newSegment(base uint64) error {
	path := filepath.Join(w.dir, segName(base))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := w.write(f, encodeHeader(base)); err != nil {
		f.Close()
		return err
	}
	if err := w.fsync(f); err != nil {
		f.Close()
		return err
	}
	if err := w.fsyncDir(); err != nil {
		f.Close()
		return err
	}
	w.f, w.size = f, headerSize
	w.bases = append(w.bases, base)
	return nil
}

// fsync syncs one file and fires the crash hook. The injector is consulted
// before the real sync, even under NoSync: an injected sync failure models
// the disk dropping the barrier, independent of whether the test elides
// real fsync syscalls for speed.
func (w *Writer) fsync(f *os.File) error {
	if w.opt.Observe != nil {
		start := w.opt.Clock.Now()
		defer func() { w.opt.Observe(true, w.opt.Clock.Now().Sub(start)) }()
	}
	if w.opt.Inject != nil {
		if err := w.opt.Inject.Sync(); err != nil {
			return err
		}
	}
	if w.opt.NoSync {
		return nil
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if w.opt.AfterSync != nil {
		w.opt.AfterSync()
	}
	return nil
}

// fsyncDir syncs the journal directory and fires the crash hook.
func (w *Writer) fsyncDir() error {
	if w.opt.Observe != nil {
		start := w.opt.Clock.Now()
		defer func() { w.opt.Observe(true, w.opt.Clock.Now().Sub(start)) }()
	}
	if w.opt.Inject != nil {
		if err := w.opt.Inject.Sync(); err != nil {
			return err
		}
	}
	if w.opt.NoSync {
		return nil
	}
	if err := syncDir(w.dir); err != nil {
		return err
	}
	if w.opt.AfterSync != nil {
		w.opt.AfterSync()
	}
	return nil
}

// LastIndex returns the index of the last appended record (0 if none).
func (w *Writer) LastIndex() uint64 { return w.next - 1 }

// Segments returns the number of live segment files (including active).
func (w *Writer) Segments() int { return len(w.bases) }

// Append frames one record and writes it to the active segment, rotating
// first if the segment is full. The record is NOT durable until Sync
// returns; write-ahead callers must Sync before applying the mutation the
// record describes.
func (w *Writer) Append(t Type, payload []byte) (uint64, error) {
	if err := w.check(); err != nil {
		return 0, err
	}
	if w.size >= w.opt.SegmentBytes {
		if err := w.rotate(); err != nil {
			return 0, w.fail(err)
		}
	}
	idx := w.next
	buf := encodeRecord(t, idx, payload)
	n, err := w.write(w.f, buf)
	w.size += int64(n)
	if err != nil {
		return 0, w.fail(err)
	}
	w.next++
	w.dirty = true
	return idx, nil
}

// Pending is one record of a batch handed to AppendBatch: everything a
// framed record carries except the index, which the writer assigns.
type Pending struct {
	Type    Type
	Payload []byte
}

// AppendBatch frames every record of the batch — with contiguous indices,
// exactly as repeated Append calls would — and hands them to the kernel as
// ONE write, so a commit group costs one syscall before its shared fsync.
// Like Append it promises nothing until Sync returns; a crash between the
// write and the sync leaves a torn multi-record tail that recovery
// truncates to the last whole record (the frames are self-delimiting, so a
// batched write is indistinguishable from serial writes on disk).
//
// Rotation is checked once, before the batch: a batch never splits across
// segments, so the active segment may overshoot Options.SegmentBytes by up
// to one batch. The first record's index is returned; record i of the
// batch carries first+i.
func (w *Writer) AppendBatch(recs []Pending) (first uint64, err error) {
	if err := w.check(); err != nil {
		return 0, err
	}
	if len(recs) == 0 {
		return 0, nil
	}
	if w.size >= w.opt.SegmentBytes {
		if err := w.rotate(); err != nil {
			return 0, w.fail(err)
		}
	}
	n := 0
	for i := range recs {
		n += frameSize + bodyMin + len(recs[i].Payload)
	}
	buf := make([]byte, 0, n)
	first = w.next
	idx := first
	for i := range recs {
		buf = appendRecord(buf, recs[i].Type, idx, recs[i].Payload)
		idx++
	}
	wn, werr := w.write(w.f, buf)
	w.size += int64(wn)
	if werr != nil {
		return 0, w.fail(werr)
	}
	w.next = idx
	w.dirty = true
	return first, nil
}

// Sync makes every appended record durable. No-op when nothing was
// appended since the last Sync (so the crash-point count tracks logical
// commits, not call sites).
func (w *Writer) Sync() error {
	if err := w.check(); err != nil {
		return err
	}
	if !w.dirty {
		return nil
	}
	if err := w.fsync(w.f); err != nil {
		// fsyncgate: a failed fsync may already have discarded the dirty
		// pages, so the appended-but-unsynced records are in limbo — they
		// may or may not be on disk. Poison; only a reopen (which re-reads
		// the file) can say what survived.
		return w.fail(err)
	}
	w.dirty = false
	return nil
}

// rotate seals the active segment and opens the next one.
func (w *Writer) rotate() error {
	if err := w.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	return w.newSegment(w.next)
}

// CompactTo deletes sealed segments whose records are all covered by a
// checkpoint at index idx (i.e. every record index ≤ idx). The active
// segment is never deleted. Crash-safe: compaction only removes data the
// checkpoint already made redundant, so dying between removals leaves
// extra-but-harmless segments that the next compaction retries.
func (w *Writer) CompactTo(idx uint64) error {
	if err := w.check(); err != nil {
		return err
	}
	removed := 0
	for i := 0; i+1 < len(w.bases); i++ {
		// Sealed segment i spans [bases[i], bases[i+1]-1].
		if w.bases[i+1]-1 > idx {
			break
		}
		if err := os.Remove(filepath.Join(w.dir, segName(w.bases[i]))); err != nil {
			return err
		}
		removed++
	}
	if removed > 0 {
		w.bases = append(w.bases[:0], w.bases[removed:]...)
		if err := w.fsyncDir(); err != nil {
			return err
		}
	}
	return nil
}

// Reset discards every segment and starts an empty journal whose next
// record will carry index base+1. The store uses it when a checkpoint is
// ahead of the recovered journal (the log was lost or corrupted past the
// checkpoint): the checkpoint already covers indices ≤ base, and new
// records must continue the numbering or replay's contiguity check would
// reject them.
func (w *Writer) Reset(base uint64) error {
	if err := w.check(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	for _, b := range w.bases {
		if err := os.Remove(filepath.Join(w.dir, segName(b))); err != nil {
			return err
		}
	}
	w.bases = w.bases[:0]
	w.next = base + 1
	w.dirty = false
	if err := w.fsyncDir(); err != nil {
		return err
	}
	return w.newSegment(w.next)
}

// Close syncs and releases the active segment. A poisoned writer skips the
// sync — its caller already holds the original failure, and the bytes on
// disk are whatever they are; only a reopen can establish the truth.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	var err error
	if w.poison == nil {
		err = w.Sync()
	}
	w.closed = true
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats summarizes a Replay pass.
type Stats struct {
	// Records is the number of records delivered (index > from).
	Records int
	// Last is the index of the last valid record seen (0 if none).
	Last uint64
	// Torn reports that the scan ended at a torn or corrupt frame rather
	// than a clean end-of-journal. After Open this is always false.
	Torn bool
}

// Replay scans the journal in dir and calls fn for every valid record with
// Index > from, in order. It never panics on corrupt input: the scan ends
// at the first invalid header or frame (Stats.Torn). A non-nil error from
// fn aborts the replay and is returned. Replay is read-only — pair it with
// Open (which repairs the files) when the journal will be appended to.
func Replay(dir string, from uint64, fn func(Record) error) (Stats, error) {
	var st Stats
	bases, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return st, nil
		}
		return st, err
	}
	if len(bases) == 0 {
		return st, nil
	}
	if bases[0] > from+1 {
		return st, fmt.Errorf("%w: journal starts at %d, need %d",
			ErrMissingRecords, bases[0], from+1)
	}
	next := bases[0]
	for _, base := range bases {
		if base != next {
			st.Torn = true
			return st, nil
		}
		data, err := os.ReadFile(filepath.Join(dir, segName(base)))
		if err != nil {
			return st, err
		}
		hbase, ok := decodeHeader(data)
		if !ok || hbase != base {
			st.Torn = true
			return st, nil
		}
		off := headerSize
		for off < len(data) {
			rec, n, ok := decodeRecord(data, off, next)
			if !ok {
				st.Torn = true
				return st, nil
			}
			next, off = next+1, n
			st.Last = rec.Index
			if rec.Index > from {
				st.Records++
				if err := fn(rec); err != nil {
					return st, err
				}
			}
		}
	}
	return st, nil
}
