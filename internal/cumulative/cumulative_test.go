package cumulative

import (
	"testing"

	"nprt/internal/feasibility"
	"nprt/internal/sim"
	"nprt/internal/task"
	"nprt/internal/trace"
)

func mkSet(t *testing.T, tasks ...task.Task) *task.Set {
	t.Helper()
	s, err := task.New(tasks)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// alternatingSet is feasible only by alternating the imprecise task between
// the two tasks each period: both accurate (12) exceed the shared period 10,
// one of each (8) fits, and B=1 forbids two consecutive imprecise runs of
// the same task.
func alternatingSet(t *testing.T) *task.Set {
	return mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 6, WCETImprecise: 2,
			Error: task.Dist{Mean: 1}, MaxConsecutiveImprecise: 1},
		task.Task{Name: "b", Period: 10, WCETAccurate: 6, WCETImprecise: 2,
			Error: task.Dist{Mean: 1}, MaxConsecutiveImprecise: 1},
	)
}

// impossibleSet cannot satisfy both constraints: two imprecise fit a period
// (6) but force both tasks accurate next period (18 > 10), while any
// accurate+imprecise mix (12) already overruns.
func impossibleSet(t *testing.T) *task.Set {
	return mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 9, WCETImprecise: 3,
			Error: task.Dist{Mean: 1}, MaxConsecutiveImprecise: 1},
		task.Task{Name: "b", Period: 10, WCETAccurate: 9, WCETImprecise: 3,
			Error: task.Dist{Mean: 1}, MaxConsecutiveImprecise: 1},
	)
}

// maxConsecutiveImprecise returns the per-task maximum run of imprecise
// executions in the trace (in execution order).
func maxConsecutiveImprecise(tr *trace.Trace, n int) []int {
	cur := make([]int, n)
	max := make([]int, n)
	for _, e := range tr.Entries {
		if e.Mode == task.Imprecise {
			cur[e.Job.TaskID]++
			if cur[e.Job.TaskID] > max[e.Job.TaskID] {
				max[e.Job.TaskID] = cur[e.Job.TaskID]
			}
		} else {
			cur[e.Job.TaskID] = 0
		}
	}
	return max
}

func TestDPFindsAlternatingSolution(t *testing.T) {
	s := alternatingSet(t)
	asg, stats, err := Solve(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Feasible || asg == nil {
		t.Fatal("DP(C) did not find the alternating assignment")
	}
	// Super period: P=10, lcm(B_i+1)=2 → 20, with 2 jobs per task.
	if asg.SuperPeriod != 20 || len(asg.Jobs) != 4 {
		t.Errorf("super period %d with %d jobs, want 20 with 4", asg.SuperPeriod, len(asg.Jobs))
	}
	// Replay it and check every invariant.
	res, err := sim.Run(s, NewReplay(asg), sim.Config{Hyperperiods: 40, TraceLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses.Events != 0 {
		t.Errorf("replay missed %d deadlines", res.Misses.Events)
	}
	vs := trace.Validate(res.Trace, trace.Options{RequireDeadlines: true, WCETBounds: true, Set: s})
	if len(vs) != 0 {
		t.Errorf("trace violations: %v", vs[0])
	}
	for l, m := range maxConsecutiveImprecise(res.Trace, s.Len()) {
		if b := s.Task(l).MaxConsecutiveImprecise; m > b {
			t.Errorf("task %d ran %d consecutive imprecise, budget %d", l, m, b)
		}
	}
}

func TestDPProvesInfeasibility(t *testing.T) {
	s := impossibleSet(t)
	asg, stats, err := Solve(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Feasible || asg != nil {
		t.Error("DP(C) claimed feasibility for an impossible set")
	}
	if stats.Truncated {
		t.Error("truncated search cannot prove infeasibility")
	}
}

func TestDPPruningAblation(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 5, WCETImprecise: 2,
			Error: task.Dist{Mean: 1}, MaxConsecutiveImprecise: 2},
		task.Task{Name: "b", Period: 20, WCETAccurate: 8, WCETImprecise: 3,
			Error: task.Dist{Mean: 1}, MaxConsecutiveImprecise: 1},
		task.Task{Name: "c", Period: 20, WCETAccurate: 6, WCETImprecise: 2,
			Error: task.Dist{Mean: 1}, MaxConsecutiveImprecise: 2},
	)
	full, fullStats, err := Solve(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	none, noneStats, err := Solve(s, Options{DisableDominance: true, DisableUtilization: true})
	if err != nil {
		t.Fatal(err)
	}
	if fullStats.Feasible != noneStats.Feasible {
		t.Fatalf("pruning changed the verdict: %v vs %v", fullStats.Feasible, noneStats.Feasible)
	}
	if (full == nil) != (none == nil) {
		t.Error("assignment presence differs")
	}
	// Pruned search must never have more candidates at any level.
	for lvl := range fullStats.LevelCounts {
		if fullStats.LevelCounts[lvl] > noneStats.LevelCounts[lvl] {
			t.Errorf("level %d: pruned %d > unpruned %d",
				lvl, fullStats.LevelCounts[lvl], noneStats.LevelCounts[lvl])
		}
	}
	if fullStats.PrunedDom == 0 {
		t.Error("dominance pruning never fired on this case")
	}
	// The unpruned frontier should be strictly larger somewhere.
	larger := false
	for lvl := range fullStats.LevelCounts {
		if noneStats.LevelCounts[lvl] > fullStats.LevelCounts[lvl] {
			larger = true
		}
	}
	if !larger {
		t.Error("pruning had no effect at any level")
	}
}

func TestDPTruncationFlag(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 5, WCETImprecise: 2,
			Error: task.Dist{Mean: 1}, MaxConsecutiveImprecise: 2},
		task.Task{Name: "b", Period: 20, WCETAccurate: 8, WCETImprecise: 3,
			Error: task.Dist{Mean: 1}, MaxConsecutiveImprecise: 2},
	)
	_, stats, err := Solve(s, Options{DisableDominance: true, DisableUtilization: true, MaxStatesPerLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Truncated {
		t.Error("cap of 2 states per level did not mark truncation")
	}
	for _, c := range stats.LevelCounts {
		if c > 2 {
			t.Errorf("level count %d exceeds cap", c)
		}
	}
}

func TestDPRejectsPhases(t *testing.T) {
	s := mkSet(t, task.Task{Name: "a", Period: 10, Release: 1,
		WCETAccurate: 5, WCETImprecise: 2, MaxConsecutiveImprecise: 1})
	if _, _, err := Solve(s, Options{}); err == nil {
		t.Error("phase-shifted set accepted")
	}
}

func TestESRCNoDeadlineMissesWhenImpreciseFeasible(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "a", Period: 20, WCETAccurate: 12, WCETImprecise: 4,
			ExecAccurate:  task.Dist{Mean: 5, Sigma: 1.5, Min: 1, Max: 12},
			ExecImprecise: task.Dist{Mean: 2, Sigma: 0.6, Min: 1, Max: 4},
			Error:         task.Dist{Mean: 4, Sigma: 1}, MaxConsecutiveImprecise: 3},
		task.Task{Name: "b", Period: 40, WCETAccurate: 16, WCETImprecise: 5,
			ExecAccurate:  task.Dist{Mean: 7, Sigma: 2, Min: 1, Max: 16},
			ExecImprecise: task.Dist{Mean: 2.5, Sigma: 0.8, Min: 1, Max: 5},
			Error:         task.Dist{Mean: 8, Sigma: 2}, MaxConsecutiveImprecise: 2},
	)
	if !feasibility.Schedulable(s, task.Imprecise) {
		t.Fatal("premise: imprecise-feasible")
	}
	p := NewESR()
	res, err := sim.Run(s, p, sim.Config{Hyperperiods: 300, Sampler: sim.NewRandomSampler(s, 5), TraceLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses.Events != 0 {
		t.Errorf("EDF+ESR(C) missed %d deadlines", res.Misses.Events)
	}
	vs := trace.Validate(res.Trace, trace.Options{RequireDeadlines: true, WCETBounds: true, Set: s})
	if len(vs) != 0 {
		t.Errorf("trace violations: %v", vs[0])
	}
	var scenarioSum int64
	for _, c := range p.Stats.Scenario {
		scenarioSum += c
	}
	if scenarioSum != p.Stats.Jobs || p.Stats.Jobs != res.Jobs {
		t.Errorf("scenario accounting broken: sum=%d jobs=%d engine=%d",
			scenarioSum, p.Stats.Jobs, res.Jobs)
	}
}

func TestESRCViolationsOnStressCase(t *testing.T) {
	// Tight imprecise utilization starves the slack check, forcing long
	// imprecise runs past the B=1 budgets (the Table III setting).
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 9, WCETImprecise: 5,
			Error: task.Dist{Mean: 1}, MaxConsecutiveImprecise: 1},
		task.Task{Name: "b", Period: 20, WCETAccurate: 18, WCETImprecise: 9,
			Error: task.Dist{Mean: 1}, MaxConsecutiveImprecise: 1},
	)
	p := NewESR()
	res, err := sim.Run(s, p, sim.Config{Hyperperiods: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses.Events != 0 {
		t.Errorf("deadline misses: %d (deadline guarantee must hold)", res.Misses.Events)
	}
	if p.Stats.Violations == 0 {
		t.Error("stress case produced no error-constraint violations")
	}
	if got := p.ViolationPercent(); got <= 0 || got > 100 {
		t.Errorf("ViolationPercent = %g", got)
	}
}

func TestESRCRespectsBudgetWhenSlackAmple(t *testing.T) {
	// Plenty of slack: scenario 1/4 should keep every run within budget.
	s := mkSet(t,
		task.Task{Name: "a", Period: 100, WCETAccurate: 10, WCETImprecise: 4,
			Error: task.Dist{Mean: 1}, MaxConsecutiveImprecise: 2},
	)
	p := NewESR()
	res, err := sim.Run(s, p, sim.Config{Hyperperiods: 50, TraceLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.Violations != 0 {
		t.Errorf("violations on an easy set: %d", p.Stats.Violations)
	}
	for l, m := range maxConsecutiveImprecise(res.Trace, s.Len()) {
		if b := s.Task(l).MaxConsecutiveImprecise; m > b {
			t.Errorf("task %d: %d consecutive imprecise > budget %d", l, m, b)
		}
	}
}

func TestThetaControlsAggressiveness(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "a", Period: 20, WCETAccurate: 8, WCETImprecise: 3,
			ExecAccurate:  task.Dist{Mean: 4, Sigma: 1, Min: 1, Max: 8},
			ExecImprecise: task.Dist{Mean: 2, Sigma: 0.5, Min: 1, Max: 3},
			Error:         task.Dist{Mean: 1}, MaxConsecutiveImprecise: 4},
		task.Task{Name: "b", Period: 40, WCETAccurate: 14, WCETImprecise: 5,
			ExecAccurate:  task.Dist{Mean: 6, Sigma: 2, Min: 1, Max: 14},
			ExecImprecise: task.Dist{Mean: 3, Sigma: 1, Min: 1, Max: 5},
			Error:         task.Dist{Mean: 1}, MaxConsecutiveImprecise: 4},
	)
	run := func(theta float64) *sim.Result {
		p := &ESRPolicy{Theta: theta}
		res, err := sim.Run(s, p, sim.Config{Hyperperiods: 200, Sampler: sim.NewRandomSampler(s, 9)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	low := run(0.05) // latency rarely "tighter" → lean accurate
	high := run(10)  // latency almost always "tighter" → lean imprecise
	if low.Accurate <= high.Accurate {
		t.Errorf("θ sensitivity inverted: acc(θ=0.05)=%d vs acc(θ=10)=%d",
			low.Accurate, high.Accurate)
	}
}

func TestESRCName(t *testing.T) {
	if NewESR().Name() != "EDF+ESR(C)" {
		t.Errorf("name = %q", NewESR().Name())
	}
	if (&ESRPolicy{Label: "X"}).Name() != "X" {
		t.Error("label override broken")
	}
	if NewReplay(&Assignment{}).Name() != "DP(C)" {
		t.Error("replay name wrong")
	}
}

func TestCyclicSafe(t *testing.T) {
	s := alternatingSet(t)
	asg, stats, err := Solve(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Feasible {
		t.Fatal("premise: feasible")
	}
	if !asg.CyclicSafe() {
		t.Error("alternating plan should repeat cyclically")
	}
	// Corrupt the plan: force every mode imprecise → budgets break.
	bad := &Assignment{Set: asg.Set, SuperPeriod: asg.SuperPeriod, Jobs: asg.Jobs,
		Modes: make([]task.Mode, len(asg.Modes))}
	for i := range bad.Modes {
		bad.Modes[i] = task.Imprecise
	}
	if bad.CyclicSafe() {
		t.Error("all-imprecise plan reported cyclic-safe despite B=1 budgets")
	}
}
