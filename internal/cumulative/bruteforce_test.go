package cumulative

import (
	"testing"

	"nprt/internal/rng"
	"nprt/internal/task"
)

// simulateAssignment executes EDF over the super period with a fixed
// job→mode assignment (indexed in dispatch order discovery) and reports
// whether deadlines and consecutive-imprecision budgets hold. It is the
// oracle behind Proposition 1's completeness claim.
//
// Modes are consumed positionally: the k-th dispatched job takes mode
// bit k of mask. Because the dispatch order itself depends on execution
// times, enumerating masks over dispatch positions covers exactly the
// decision tree DP(C) searches.
func simulateAssignment(s *task.Set, totalJobs []int32, mask uint64, m int) bool {
	nextIdx := make([]int32, s.Len())
	consec := make([]int, s.Len())
	var t task.Time
	for k := 0; k < m; k++ {
		st := &dpState{t: t, nextIdx: nextIdx}
		job, ok := edfNext(s, st, totalJobs)
		if !ok {
			return false
		}
		tk := s.Task(job.TaskID)
		start := t
		if job.Release > start {
			start = job.Release
		}
		var dur task.Time
		if mask>>uint(k)&1 == 1 {
			b := tk.MaxConsecutiveImprecise
			if b > 0 && consec[job.TaskID]+1 > b {
				return false
			}
			consec[job.TaskID]++
			dur = tk.WCETImprecise
		} else {
			consec[job.TaskID] = 0
			dur = tk.WCETAccurate
		}
		f := start + dur
		if f > job.Deadline {
			return false
		}
		t = f
		nextIdx[job.TaskID]++
	}
	return true
}

// bruteForceFeasible reports whether any of the 2^m assignments survives.
func bruteForceFeasible(s *task.Set, sp task.Time) bool {
	totalJobs := make([]int32, s.Len())
	m := 0
	for l := 0; l < s.Len(); l++ {
		totalJobs[l] = int32(sp / s.Task(l).Period)
		m += int(totalJobs[l])
	}
	for mask := uint64(0); mask < 1<<uint(m); mask++ {
		if simulateAssignment(s, totalJobs, mask, m) {
			return true
		}
	}
	return false
}

func randomCumulativeSet(r *rng.Stream) *task.Set {
	periods := [][]task.Time{
		{6, 12}, {8, 16}, {10, 20}, {10, 10}, {6, 12, 12},
	}
	ps := periods[r.Intn(len(periods))]
	tasks := make([]task.Task, len(ps))
	for i, p := range ps {
		w := task.Time(2 + r.Intn(int(p)-2))
		x := task.Time(1 + r.Intn(int(w)-1))
		if x >= w {
			x = w - 1
		}
		tasks[i] = task.Task{
			Name: "t", Period: p, WCETAccurate: w, WCETImprecise: x,
			Error:                   task.Dist{Mean: 1},
			MaxConsecutiveImprecise: 1 + r.Intn(2),
		}
	}
	s, err := task.New(tasks)
	if err != nil {
		return nil
	}
	return s
}

// TestDPCompletenessProposition1 fuzzes DP(C) against exhaustive
// enumeration: the DP must report feasible exactly when some precision
// assignment satisfies both the deadline and error constraints.
func TestDPCompletenessProposition1(t *testing.T) {
	r := rng.New(31337)
	tested := 0
	for trial := 0; trial < 300; trial++ {
		s := randomCumulativeSet(r)
		if s == nil {
			continue
		}
		sp, _, capped := s.SuperPeriod(8)
		if capped {
			continue
		}
		m := 0
		for l := 0; l < s.Len(); l++ {
			m += int(sp / s.Task(l).Period)
		}
		if m > 14 {
			continue // keep 2^m bounded
		}
		want := bruteForceFeasible(s, sp)
		asg, stats, err := Solve(s, Options{SuperPeriodFactorCap: 8})
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, s)
		}
		if stats.Truncated {
			continue
		}
		if stats.Feasible != want {
			t.Fatalf("trial %d: DP=%v brute=%v (m=%d, sp=%d)\n%s",
				trial, stats.Feasible, want, m, sp, s)
		}
		if stats.Feasible {
			// The returned plan must replay within budgets and deadlines.
			if got := len(asg.Jobs); got != m {
				t.Fatalf("trial %d: plan has %d jobs, super period has %d", trial, got, m)
			}
			validatePlan(t, trial, s, asg)
		}
		tested++
	}
	if tested < 80 {
		t.Fatalf("only %d instances exercised", tested)
	}
}

// validatePlan re-executes the assignment and checks every constraint.
func validatePlan(t *testing.T, trial int, s *task.Set, asg *Assignment) {
	t.Helper()
	consec := make([]int, s.Len())
	var clock task.Time
	for k, j := range asg.Jobs {
		tk := s.Task(j.TaskID)
		start := clock
		if j.Release > start {
			start = j.Release
		}
		var dur task.Time
		if asg.Modes[k] == task.Imprecise {
			consec[j.TaskID]++
			if b := tk.MaxConsecutiveImprecise; b > 0 && consec[j.TaskID] > b {
				t.Fatalf("trial %d: plan violates budget at job %d", trial, k)
			}
			dur = tk.WCETImprecise
		} else {
			consec[j.TaskID] = 0
			dur = tk.WCETAccurate
		}
		f := start + dur
		if f > j.Deadline {
			t.Fatalf("trial %d: plan misses deadline at job %d (%v)", trial, k, j)
		}
		clock = f
	}
}
