// Package cumulative implements §V of the paper: scheduling periodic tasks
// whose imprecision errors accumulate across consecutive imprecise jobs.
// Problem 2 bounds the number of consecutive imprecise executions of task
// τ_i by B_i (task.MaxConsecutiveImprecise; zero = unconstrained).
//
// Two methods are provided:
//
//   - ESRPolicy (§V-A): an online EDF heuristic with four dispatch
//     scenarios, using the explicit-slack-reclamation check of §III and the
//     error-slack/latency-slack ratio test with threshold θ;
//   - the offline dynamic program DP(C) (§V-B) in dp.go, which searches
//     precision assignments over a super period with dominance and
//     best-case-utilization pruning (complete per Proposition 1).
package cumulative

import (
	"nprt/internal/esr"
	"nprt/internal/sim"
	"nprt/internal/task"
)

// DefaultTheta is the ratio threshold θ of §V-A: when
// LatencySlack/ErrorSlack < θ the latency slack is considered the tighter
// resource and the job runs imprecise.
const DefaultTheta = 0.5

// ESRPolicy is EDF+ESR(C), the §V-A online heuristic.
type ESRPolicy struct {
	Theta float64 // θ; 0 means DefaultTheta
	Label string

	tracker *esr.Tracker
	consec  []int // φ per task: consecutive imprecise runs immediately before now

	// Scenario and violation counters (Table III statistics).
	Stats struct {
		Scenario [4]int64 // dispatches decided by scenario 1..4 (index 0..3)
		// Violations counts jobs forced imprecise beyond their budget B_i
		// (scenario 3: imprecision would violate the error constraint AND
		// accurate mode fails the schedulability check).
		Violations int64
		Jobs       int64
	}
}

// NewESR returns EDF+ESR(C) with the default θ.
func NewESR() *ESRPolicy { return &ESRPolicy{} }

// Name implements sim.Policy.
func (p *ESRPolicy) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "EDF+ESR(C)"
}

// Reset implements sim.Policy.
func (p *ESRPolicy) Reset(st *sim.State) {
	p.tracker = esr.NewTracker(st.Set())
	p.consec = make([]int, st.Set().Len())
	p.Stats.Scenario = [4]int64{}
	p.Stats.Violations = 0
	p.Stats.Jobs = 0
}

// theta returns the configured θ.
func (p *ESRPolicy) theta() float64 {
	if p.Theta > 0 {
		return p.Theta
	}
	return DefaultTheta
}

// Pick dispatches the EDF job and chooses its mode by the four scenarios of
// §V-A.
func (p *ESRPolicy) Pick(st *sim.State) (sim.Decision, bool) {
	j, ok := st.EDFPick()
	if !ok {
		return sim.Decision{}, false
	}
	tk := st.Set().Task(j.TaskID)
	slacks := p.tracker.Evaluate(st, j)
	schedOK := esr.AccurateFits(st, j, slacks)

	b := tk.MaxConsecutiveImprecise
	errViolate := b > 0 && p.consec[j.TaskID]+1 > b

	mode := task.Imprecise
	switch {
	case errViolate && schedOK:
		// Scenario 1: accurate clears the accumulated error and is safe.
		mode = task.Accurate
		p.Stats.Scenario[0]++
	case !errViolate && !schedOK:
		// Scenario 2: imprecision is within budget; accurate is unsafe.
		mode = task.Imprecise
		p.Stats.Scenario[1]++
	case errViolate && !schedOK:
		// Scenario 3: both constraints conflict; keep the deadline
		// guarantee, record the error-constraint violation.
		mode = task.Imprecise
		p.Stats.Scenario[2]++
		p.Stats.Violations++
	default:
		// Scenario 4: both are fine — compare the normalized slacks.
		p.Stats.Scenario[3]++
		errorSlack := 1.0
		if b > 0 {
			errorSlack = float64(b-p.consec[j.TaskID]) / float64(b)
		}
		latencySlack := float64(j.Deadline-st.Now()-tk.WCETAccurate) / float64(tk.Period)
		if latencySlack/errorSlack < p.theta() {
			mode = task.Imprecise
		} else {
			mode = task.Accurate
		}
	}

	p.tracker.Commit(slacks)
	p.Stats.Jobs++
	if mode == task.Imprecise {
		p.consec[j.TaskID]++
	} else {
		p.consec[j.TaskID] = 0
	}
	return sim.Decision{Job: j, Mode: mode}, true
}

// JobFinished implements sim.Policy.
func (p *ESRPolicy) JobFinished(_ *sim.State, _ sim.Decision, _, finish task.Time) {
	p.tracker.Finished(finish)
}

// ViolationPercent returns the Table III statistic: the percentage of
// dispatches that violated the consecutive-imprecision budget.
func (p *ESRPolicy) ViolationPercent() float64 {
	if p.Stats.Jobs == 0 {
		return 0
	}
	return 100 * float64(p.Stats.Violations) / float64(p.Stats.Jobs)
}
