package cumulative

import (
	"testing"

	"nprt/internal/rng"
	"nprt/internal/task"
)

// randStates builds a corpus of states over a deliberately tiny domain so
// many true duplicates (and dominance candidates) occur.
func randStates(r *rng.Stream, n int) []*dpState {
	states := make([]*dpState, n)
	for i := range states {
		st := &dpState{
			t:       task.Time(r.Uint64() % 8),
			nextIdx: make([]int32, 3),
			consec:  make([]int16, 3),
		}
		for l := range st.nextIdx {
			st.nextIdx[l] = int32(r.Uint64() % 4)
			st.consec[l] = int16(r.Uint64() % 3)
		}
		states[i] = st
	}
	return states
}

// TestStateKeyMatchesGroupEquality: across a dense random corpus, the FNV
// hash must agree with the true group identity in both directions — equal
// groups hash equal (determinism) and, on this corpus, equal hashes imply
// equal groups (no observed collisions).
func TestStateKeyMatchesGroupEquality(t *testing.T) {
	states := randStates(rng.New(2026), 1200)
	for i, a := range states {
		for _, b := range states[i+1:] {
			same, hashEq := sameGroup(a, b), a.key() == b.key()
			if same && !hashEq {
				t.Fatalf("equal groups hash differently: %v/%v vs %v/%v", a.t, a.nextIdx, b.t, b.nextIdx)
			}
			if !same && hashEq {
				t.Fatalf("hash collision between distinct groups: %v/%v vs %v/%v", a.t, a.nextIdx, b.t, b.nextIdx)
			}
		}
	}
}

// TestPruneDominatedCollisionSafe forces every state into a single hash
// bucket (a constant hash function) and requires the exact surviving states,
// order, and prune count of the real hash: correctness may not depend on the
// hash discriminating, only on the chained sameGroup check.
func TestPruneDominatedCollisionSafe(t *testing.T) {
	corpus := randStates(rng.New(77), 600)
	a := append([]*dpState(nil), corpus...)
	b := append([]*dpState(nil), corpus...)
	var statsA, statsB SearchStats
	outA := pruneDominatedHash(a, &statsA, (*dpState).key)
	outB := pruneDominatedHash(b, &statsB, func(*dpState) uint64 { return 0 })
	if len(outA) != len(outB) || statsA.PrunedDom != statsB.PrunedDom {
		t.Fatalf("collision path diverged: %d/%d survivors, %d/%d pruned",
			len(outA), len(outB), statsA.PrunedDom, statsB.PrunedDom)
	}
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatalf("survivor %d differs between real and constant hash", i)
		}
	}
	if statsA.PrunedDom == 0 {
		t.Fatal("corpus produced no dominance pruning; test is vacuous")
	}
}

// TestPruneDominatedDeterministicOrder: the surviving-state order is a pure
// function of the input order (first-seen grouping), independent of map
// iteration order across runs.
func TestPruneDominatedDeterministicOrder(t *testing.T) {
	corpus := randStates(rng.New(9), 400)
	var ref []*dpState
	for run := 0; run < 5; run++ {
		in := append([]*dpState(nil), corpus...)
		var stats SearchStats
		out := pruneDominatedHash(in, &stats, (*dpState).key)
		if run == 0 {
			ref = append([]*dpState(nil), out...)
			continue
		}
		if len(out) != len(ref) {
			t.Fatalf("run %d: %d survivors, want %d", run, len(out), len(ref))
		}
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("run %d: survivor order differs at %d", run, i)
			}
		}
	}
}

// benchSet is a 4-task set whose DP explores a few thousand states per
// solve — enough for the per-state key cost to dominate.
func benchSet(tb testing.TB) *task.Set {
	tb.Helper()
	s, err := task.New([]task.Task{
		{Name: "a", Period: 12, WCETAccurate: 5, WCETImprecise: 2,
			Error: task.Dist{Mean: 1}, MaxConsecutiveImprecise: 2},
		{Name: "b", Period: 12, WCETAccurate: 4, WCETImprecise: 2,
			Error: task.Dist{Mean: 1}, MaxConsecutiveImprecise: 1},
		{Name: "c", Period: 24, WCETAccurate: 6, WCETImprecise: 2,
			Error: task.Dist{Mean: 1}, MaxConsecutiveImprecise: 2},
		{Name: "d", Period: 24, WCETAccurate: 5, WCETImprecise: 3,
			Error: task.Dist{Mean: 1}, MaxConsecutiveImprecise: 1},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// BenchmarkCumulativeDP measures a full DP(C) solve; ReportAllocs makes the
// win from the allocation-free uint64 state key visible (the historical
// string key allocated one []byte-backed string per expanded state per
// pruning pass).
func BenchmarkCumulativeDP(b *testing.B) {
	s := benchSet(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		asg, stats, err := Solve(s, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if asg == nil || !stats.Feasible {
			b.Fatal("bench set became infeasible")
		}
	}
}
