package cumulative

import (
	"fmt"

	"nprt/internal/sim"
	"nprt/internal/task"
)

// Assignment is a feasible offline precision plan over one super period, in
// dispatch order.
type Assignment struct {
	Set         *task.Set
	SuperPeriod task.Time
	Jobs        []task.Job
	Modes       []task.Mode
}

// SearchStats records the DP(C) search behaviour — the data behind Figure 4
// (candidate partial solutions per level, with and without pruning).
type SearchStats struct {
	LevelCounts []int // surviving candidate solutions after each job level
	Expanded    int   // total states expanded
	PrunedDom   int   // states removed by dominance
	PrunedUtil  int   // states removed by the best-case-utilization bound
	Feasible    bool
	Truncated   bool // a level hit MaxStatesPerLevel; completeness lost
}

// Options configures the DP(C) search.
type Options struct {
	// DisableDominance and DisableUtilization turn the §V-B pruning rules
	// off (the "without pruning" series of Figure 4). Hard constraint
	// violations (deadline, error budget) always prune.
	DisableDominance   bool
	DisableUtilization bool
	// MaxStatesPerLevel caps a level's surviving states (0 = 1<<20). When
	// hit, the search continues truncated: a "feasible" answer is still
	// sound, but "infeasible" is no longer a proof.
	MaxStatesPerLevel int
	// SuperPeriodFactorCap caps the super-period multiplier (0 = 64).
	SuperPeriodFactorCap int64
}

// dpState is one candidate partial solution.
type dpState struct {
	t       task.Time // finish time of the processed jobs
	nextIdx []int32   // per task: next unprocessed job index
	consec  []int16   // φ per task
	parent  int32     // index into the previous level's arena
	job     task.Job  // job dispatched to reach this state
	mode    task.Mode
}

// FNV-1a parameters for the 64-bit dominance-group hash.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// key hashes the dominance group identity — processed-job multiset plus
// finish time — FNV-1a style, one 64-bit word per field. Replacing the
// historical []byte→string key removes a heap allocation per state per
// level; hash collisions are harmless because pruneDominated chains buckets
// and confirms true equality with sameGroup.
func (s *dpState) key() uint64 {
	h := uint64(fnvOffset64)
	h = (h ^ uint64(s.t)) * fnvPrime64
	for _, v := range s.nextIdx {
		h = (h ^ uint64(uint32(v))) * fnvPrime64
	}
	return h
}

// sameGroup is the true dominance-group equality the hash approximates.
func sameGroup(a, b *dpState) bool {
	if a.t != b.t {
		return false
	}
	for l, v := range a.nextIdx {
		if v != b.nextIdx[l] {
			return false
		}
	}
	return true
}

// dominates reports componentwise φ_a ≤ φ_b (a is at least as good).
func dominates(a, b *dpState) bool {
	for l := range a.consec {
		if a.consec[l] > b.consec[l] {
			return false
		}
	}
	return true
}

// Solve runs the §V-B dynamic program over one super period. It returns a
// feasible assignment when one exists (nil assignment + Feasible=false
// otherwise) along with the search statistics.
func Solve(s *task.Set, opt Options) (*Assignment, *SearchStats, error) {
	if s.MaxRelease() != 0 {
		return nil, nil, fmt.Errorf("cumulative: DP(C) requires all first releases at 0")
	}
	capFactor := opt.SuperPeriodFactorCap
	if capFactor <= 0 {
		capFactor = 64
	}
	maxStates := opt.MaxStatesPerLevel
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	sp, _, _ := s.SuperPeriod(capFactor)

	n := s.Len()
	totalJobs := make([]int32, n)
	levels := 0
	for l := 0; l < n; l++ {
		totalJobs[l] = int32(sp / s.Task(l).Period)
		levels += int(totalJobs[l])
	}

	stats := &SearchStats{}
	root := &dpState{nextIdx: make([]int32, n), consec: make([]int16, n), parent: -1}
	arena := [][]*dpState{{root}}

	for level := 0; level < levels; level++ {
		cur := arena[level]
		var next []*dpState
		for pi, ps := range cur {
			stats.Expanded++
			job, ok := edfNext(s, ps, totalJobs)
			if !ok {
				continue // should not happen before the last level
			}
			tk := s.Task(job.TaskID)
			start := ps.t
			if job.Release > start {
				start = job.Release
			}
			// Accurate branch.
			if f := start + tk.WCETAccurate; f <= job.Deadline {
				next = append(next, childState(ps, int32(pi), job, task.Accurate, f))
			}
			// Imprecise branch (hard error budget).
			b := tk.MaxConsecutiveImprecise
			if b == 0 || int(ps.consec[job.TaskID])+1 <= b {
				if f := start + tk.WCETImprecise; f <= job.Deadline {
					next = append(next, childState(ps, int32(pi), job, task.Imprecise, f))
				}
			}
		}

		if !opt.DisableUtilization {
			kept := next[:0]
			for _, st := range next {
				if utilizationFeasible(s, st, totalJobs, sp) {
					kept = append(kept, st)
				} else {
					stats.PrunedUtil++
				}
			}
			next = kept
		}
		if !opt.DisableDominance {
			next = pruneDominated(next, stats)
		}
		if len(next) > maxStates {
			next = next[:maxStates]
			stats.Truncated = true
		}
		stats.LevelCounts = append(stats.LevelCounts, len(next))
		if len(next) == 0 {
			return nil, stats, nil
		}
		arena = append(arena, next)
	}

	// Reconstruct from any surviving terminal state.
	stats.Feasible = true
	asg := &Assignment{Set: s, SuperPeriod: sp,
		Jobs:  make([]task.Job, levels),
		Modes: make([]task.Mode, levels),
	}
	idx := int32(0)
	for level := levels; level >= 1; level-- {
		st := arena[level][idx]
		asg.Jobs[level-1] = st.job
		asg.Modes[level-1] = st.mode
		idx = st.parent
	}
	return asg, stats, nil
}

func childState(ps *dpState, parent int32, job task.Job, m task.Mode, finish task.Time) *dpState {
	nx := make([]int32, len(ps.nextIdx))
	copy(nx, ps.nextIdx)
	nx[job.TaskID]++
	cs := make([]int16, len(ps.consec))
	copy(cs, ps.consec)
	if m == task.Imprecise {
		cs[job.TaskID]++
	} else {
		cs[job.TaskID] = 0
	}
	return &dpState{t: finish, nextIdx: nx, consec: cs, parent: parent, job: job, mode: m}
}

// edfNext finds the next job non-preemptive EDF would dispatch from this
// state: the earliest-deadline job among those released at the state's
// time, advancing over idle gaps when nothing is released.
func edfNext(s *task.Set, ps *dpState, totalJobs []int32) (task.Job, bool) {
	t := ps.t
	for {
		best := task.Job{}
		found := false
		var minRelease task.Time
		haveRelease := false
		for l := 0; l < s.Len(); l++ {
			if ps.nextIdx[l] >= totalJobs[l] {
				continue
			}
			j := s.Job(l, int(ps.nextIdx[l]))
			if j.Release <= t {
				if !found || edfLess(j, best) {
					best, found = j, true
				}
			} else if !haveRelease || j.Release < minRelease {
				minRelease, haveRelease = j.Release, true
			}
		}
		if found {
			return best, true
		}
		if !haveRelease {
			return task.Job{}, false
		}
		t = minRelease
	}
}

func edfLess(a, b task.Job) bool {
	if a.Deadline != b.Deadline {
		return a.Deadline < b.Deadline
	}
	if a.Release != b.Release {
		return a.Release < b.Release
	}
	if a.TaskID != b.TaskID {
		return a.TaskID < b.TaskID
	}
	return a.Index < b.Index
}

// utilizationFeasible is the §V-B best-case-utilization prune: with the
// error budgets spent as aggressively as possible, the remaining jobs'
// minimum workload must still fit between the state's time and the super
// period's end.
func utilizationFeasible(s *task.Set, st *dpState, totalJobs []int32, sp task.Time) bool {
	var workMin task.Time
	for l := 0; l < s.Len(); l++ {
		m := int64(totalJobs[l] - st.nextIdx[l])
		if m <= 0 {
			continue
		}
		tk := s.Task(l)
		b := int64(tk.MaxConsecutiveImprecise)
		var accurate int64
		if b > 0 {
			free := b - int64(st.consec[l]) // imprecise runs available before an accurate is forced
			if free < 0 {
				free = 0
			}
			if m > free {
				accurate = (m - free + b) / (b + 1) // ceil((m-free)/(b+1))
			}
		}
		workMin += task.Time(accurate)*tk.WCETAccurate + task.Time(m-accurate)*tk.WCETImprecise
	}
	return st.t+workMin <= sp
}

// pruneDominated removes states dominated within their (jobs, finish-time)
// group: S_i is dominated by S_j when every cumulative counter of S_j is no
// larger.
func pruneDominated(states []*dpState, stats *SearchStats) []*dpState {
	return pruneDominatedHash(states, stats, (*dpState).key)
}

// pruneDominatedHash is pruneDominated with an injectable hash (tests pass a
// constant function to force every state through the collision chain).
// Groups are keyed by hash but membership is confirmed with sameGroup, so a
// 64-bit collision merely costs an extra comparison; group order is
// first-seen order, keeping the surviving-state sequence deterministic
// instead of depending on map iteration.
func pruneDominatedHash(states []*dpState, stats *SearchStats, hash func(*dpState) uint64) []*dpState {
	byHash := make(map[uint64][]int32, len(states))
	var groups [][]*dpState // kept states per group, in first-seen order
	var reps []*dpState     // group representative for true-key equality
	for _, cand := range states {
		h := hash(cand)
		gi := int32(-1)
		for _, i := range byHash[h] {
			if sameGroup(reps[i], cand) {
				gi = i
				break
			}
		}
		if gi == -1 {
			gi = int32(len(groups))
			groups = append(groups, nil)
			reps = append(reps, cand)
			byHash[h] = append(byHash[h], gi)
		}
		kept := groups[gi]
		dominated := false
		for _, k := range kept {
			if dominates(k, cand) {
				dominated = true
				break
			}
		}
		if dominated {
			stats.PrunedDom++
			continue
		}
		// Remove previously kept states the candidate dominates.
		filtered := kept[:0]
		for _, k := range kept {
			if dominates(cand, k) {
				stats.PrunedDom++
				continue
			}
			filtered = append(filtered, k)
		}
		groups[gi] = append(filtered, cand)
	}
	out := states[:0]
	for _, kept := range groups {
		out = append(out, kept...)
	}
	return out
}

// ReplayPolicy executes a DP(C) assignment cyclically: planned order,
// planned modes, ASAP starts. It satisfies sim.Policy.
type ReplayPolicy struct {
	Label string
	Plan  *Assignment

	pos      int
	cycle    int64
	perCycle []int // jobs per super period per task
}

// NewReplay wraps an assignment for simulation.
func NewReplay(plan *Assignment) *ReplayPolicy {
	return &ReplayPolicy{Label: "DP(C)", Plan: plan}
}

// Name implements sim.Policy.
func (p *ReplayPolicy) Name() string { return p.Label }

// Reset implements sim.Policy.
func (p *ReplayPolicy) Reset(st *sim.State) {
	p.pos, p.cycle = 0, 0
	p.perCycle = make([]int, st.Set().Len())
	for l := range p.perCycle {
		p.perCycle[l] = int(p.Plan.SuperPeriod / st.Set().Task(l).Period)
	}
}

// Pick replays the planned job in the current super-period cycle.
func (p *ReplayPolicy) Pick(st *sim.State) (sim.Decision, bool) {
	if p.pos >= len(p.Plan.Jobs) {
		p.pos = 0
		p.cycle++
	}
	j := p.Plan.Jobs[p.pos]
	offset := p.cycle * p.Plan.SuperPeriod
	job := task.Job{
		TaskID:   j.TaskID,
		Index:    j.Index + int(p.cycle)*p.perCycle[j.TaskID],
		Release:  j.Release + offset,
		Deadline: j.Deadline + offset,
	}
	if job.Deadline > st.Horizon() {
		return sim.Decision{}, false
	}
	return sim.Decision{Job: job, Mode: p.Plan.Modes[p.pos]}, true
}

// JobFinished implements sim.Policy.
func (p *ReplayPolicy) JobFinished(*sim.State, sim.Decision, task.Time, task.Time) {
	p.pos++
}

// CyclicSafe reports whether the assignment can repeat back-to-back
// forever: re-running the plan with the consecutive-imprecision counters
// carried over from the end of the previous super period must still satisfy
// every budget, and the WCET timeline must not drift (the last job must
// finish within the super period so the next cycle starts cleanly). The
// §V-B super period covers every *phase* of the budgets; this check closes
// the loop for the specific plan found.
func (a *Assignment) CyclicSafe() bool {
	n := a.Set.Len()
	carry := make([]int, n)
	for cycle := 0; cycle < 2; cycle++ {
		var clock task.Time
		for k, j := range a.Jobs {
			tk := a.Set.Task(j.TaskID)
			start := clock
			if j.Release > start {
				start = j.Release
			}
			var dur task.Time
			if a.Modes[k] == task.Imprecise {
				carry[j.TaskID]++
				if b := tk.MaxConsecutiveImprecise; b > 0 && carry[j.TaskID] > b {
					return false
				}
				dur = tk.WCETImprecise
			} else {
				carry[j.TaskID] = 0
				dur = tk.WCETAccurate
			}
			f := start + dur
			if f > j.Deadline {
				return false
			}
			clock = f
		}
		if clock > a.SuperPeriod {
			return false
		}
		// carry persists into the next cycle.
	}
	return true
}
