package lp

import (
	"math"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

// Classic: maximize 3x+5y s.t. x<=4, 2y<=12, 3x+2y<=18 → x=2,y=6,obj=36.
// As minimization: minimize -3x-5y.
func TestTextbookMaximization(t *testing.T) {
	p := NewProblem(2)
	p.C = []float64{-3, -5}
	p.AddConstraint([]float64{1, 0}, LE, 4, "x<=4")
	p.AddConstraint([]float64{0, 2}, LE, 12, "2y<=12")
	p.AddConstraint([]float64{3, 2}, LE, 18, "3x+2y<=18")
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !almost(sol.X[0], 2) || !almost(sol.X[1], 6) {
		t.Errorf("x = %v, want [2 6]", sol.X)
	}
	if !almost(sol.Objective, -36) {
		t.Errorf("objective = %g, want -36", sol.Objective)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// minimize x+y  s.t. x+y >= 3, x = 1 → x=1, y=2, obj=3.
	p := NewProblem(2)
	p.C = []float64{1, 1}
	p.AddConstraint([]float64{1, 1}, GE, 3, "")
	p.AddConstraint([]float64{1, 0}, EQ, 1, "")
	sol := solveOK(t, p)
	if sol.Status != Optimal || !almost(sol.Objective, 3) {
		t.Fatalf("sol = %+v", sol)
	}
	if !almost(sol.X[0], 1) || !almost(sol.X[1], 2) {
		t.Errorf("x = %v", sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.C = []float64{1}
	p.AddConstraint([]float64{1}, LE, 1, "")
	p.AddConstraint([]float64{1}, GE, 2, "")
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.C = []float64{-1} // maximize x with no upper bound
	p.AddConstraint([]float64{1}, GE, 0, "")
	sol := solveOK(t, p)
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x <= -2  ≡  x >= 2; minimize x → 2.
	p := NewProblem(1)
	p.C = []float64{1}
	p.AddConstraint([]float64{-1}, LE, -2, "")
	sol := solveOK(t, p)
	if sol.Status != Optimal || !almost(sol.X[0], 2) {
		t.Errorf("sol = %+v", sol)
	}
}

func TestDegenerateProblemTerminates(t *testing.T) {
	// Beale's classic cycling example (under certain pivot rules).
	p := NewProblem(4)
	p.C = []float64{-0.75, 150, -0.02, 6}
	p.AddConstraint([]float64{0.25, -60, -0.04, 9}, LE, 0, "")
	p.AddConstraint([]float64{0.5, -90, -0.02, 3}, LE, 0, "")
	p.AddConstraint([]float64{0, 0, 1, 0}, LE, 1, "")
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !almost(sol.Objective, -0.05) {
		t.Errorf("objective = %g, want -0.05", sol.Objective)
	}
}

func TestEqualityOnlySystem(t *testing.T) {
	// x+y=4, x-y=2 → x=3,y=1; objective irrelevant but must report it.
	p := NewProblem(2)
	p.C = []float64{1, 2}
	p.AddConstraint([]float64{1, 1}, EQ, 4, "")
	p.AddConstraint([]float64{1, -1}, EQ, 2, "")
	sol := solveOK(t, p)
	if sol.Status != Optimal || !almost(sol.X[0], 3) || !almost(sol.X[1], 1) {
		t.Fatalf("sol = %+v", sol)
	}
	if !almost(sol.Objective, 5) {
		t.Errorf("objective = %g", sol.Objective)
	}
}

func TestRedundantConstraints(t *testing.T) {
	// Duplicated equality rows must not break phase 1 cleanup.
	p := NewProblem(2)
	p.C = []float64{1, 1}
	p.AddConstraint([]float64{1, 1}, EQ, 2, "")
	p.AddConstraint([]float64{1, 1}, EQ, 2, "dup")
	p.AddConstraint([]float64{2, 2}, EQ, 4, "scaled dup")
	sol := solveOK(t, p)
	if sol.Status != Optimal || !almost(sol.Objective, 2) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestAddBound(t *testing.T) {
	p := NewProblem(2)
	p.C = []float64{-1, -1}
	p.AddConstraint([]float64{1, 1}, LE, 10, "")
	p.AddBound(0, LE, 3, "x0<=3")
	p.AddBound(1, LE, 4, "x1<=4")
	sol := solveOK(t, p)
	if !almost(sol.X[0], 3) || !almost(sol.X[1], 4) {
		t.Errorf("x = %v", sol.X)
	}
}

func TestObjectiveLengthValidation(t *testing.T) {
	p := &Problem{NumVars: 3, C: []float64{1}}
	if _, err := Solve(p); err == nil {
		t.Error("mismatched objective accepted")
	}
}

func TestSenseAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || EQ.String() != "==" || GE.String() != ">=" || Sense(9).String() != "?" {
		t.Error("Sense strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || Status(9).String() != "?" {
		t.Error("Status strings wrong")
	}
}

// A small scheduling-shaped model: three jobs in fixed order with start
// times s_k, chain constraints s_{k+1} >= s_k + dur_k, deadlines, and
// minimize total start time. Mirrors how internal/offline builds models.
func TestChainModel(t *testing.T) {
	// durations 2,3,2; releases 0,1,4; deadlines 5, 8, 10.
	p := NewProblem(3)
	p.C = []float64{1, 1, 1}
	p.AddBound(0, GE, 0, "r0")
	p.AddBound(1, GE, 1, "r1")
	p.AddBound(2, GE, 4, "r2")
	p.AddConstraint([]float64{-1, 1, 0}, GE, 2, "chain01")
	p.AddConstraint([]float64{0, -1, 1}, GE, 3, "chain12")
	p.AddBound(0, LE, 3, "d0")
	p.AddBound(1, LE, 5, "d1")
	p.AddBound(2, LE, 8, "d2")
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	want := []float64{0, 2, 5}
	for i := range want {
		if !almost(sol.X[i], want[i]) {
			t.Errorf("s[%d] = %g, want %g", i, sol.X[i], want[i])
		}
	}
}

// Property: for random feasible box-constrained LPs, the reported optimum
// respects all constraints and is not worse than a feasible corner we know.
func TestRandomBoxProblems(t *testing.T) {
	f := func(c1, c2 int8, b1, b2 uint8) bool {
		ub1 := float64(b1%20) + 1
		ub2 := float64(b2%20) + 1
		p := NewProblem(2)
		p.C = []float64{float64(c1), float64(c2)}
		p.AddBound(0, LE, ub1, "")
		p.AddBound(1, LE, ub2, "")
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			return false
		}
		// The optimum of min c·x over a box with x>=0 picks 0 or ub per sign.
		want := 0.0
		if c1 < 0 {
			want += float64(c1) * ub1
		}
		if c2 < 0 {
			want += float64(c2) * ub2
		}
		return almost(sol.Objective, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
