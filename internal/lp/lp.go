// Package lp is a from-scratch dense linear-programming solver: a two-phase
// primal simplex with Bland's anti-cycling rule. It is the substrate under
// internal/ilp, which the paper's offline ILP scheduling (§IV) runs on.
//
// Problems are stated over non-negative variables:
//
//	minimize   c·x
//	subject to a_k·x (≤ | = | ≥) b_k,  x ≥ 0.
//
// The implementation favours clarity and numerical robustness over speed:
// the scheduling models it solves have a few hundred rows and columns, where
// dense tableaus are perfectly adequate.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is a constraint relation.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // a·x ≤ b
	EQ              // a·x = b
	GE              // a·x ≥ b
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	}
	return "?"
}

// Constraint is one row a·x (sense) b. Coef must have the problem's variable
// count; missing trailing zeros are allowed.
type Constraint struct {
	Coef  []float64
	Sense Sense
	RHS   float64
	Name  string // optional, for diagnostics
}

// Problem is an LP over n non-negative variables.
type Problem struct {
	NumVars int
	C       []float64 // minimize C·x; len == NumVars
	Rows    []Constraint
}

// NewProblem returns an empty minimization problem over n variables.
func NewProblem(n int) *Problem {
	return &Problem{NumVars: n, C: make([]float64, n)}
}

// AddConstraint appends a row; coef may be shorter than NumVars.
func (p *Problem) AddConstraint(coef []float64, s Sense, rhs float64, name string) {
	row := make([]float64, p.NumVars)
	copy(row, coef)
	p.Rows = append(p.Rows, Constraint{Coef: row, Sense: s, RHS: rhs, Name: name})
}

// AddBound appends the single-variable constraint x_j (sense) v.
func (p *Problem) AddBound(j int, s Sense, v float64, name string) {
	row := make([]float64, p.NumVars)
	row[j] = 1
	p.Rows = append(p.Rows, Constraint{Coef: row, Sense: s, RHS: v, Name: name})
}

// Status is a solve outcome.
type Status int8

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "?"
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64 // primal values (valid when Optimal)
	Objective float64   // c·x (valid when Optimal)
	Pivots    int       // simplex iterations used
}

const (
	eps       = 1e-9
	maxPivots = 200000
)

// ErrPivotLimit is returned when the simplex exceeds its iteration budget,
// which on these models indicates a modelling bug rather than a hard LP.
var ErrPivotLimit = errors.New("lp: pivot limit exceeded")

// tableau is the dense simplex tableau.
//
// Layout: rows 0..m-1 are constraints, each ending with the RHS in column
// ncols-1; row m is the objective (reduced costs, with the negated objective
// value in the RHS cell).
type tableau struct {
	m, n  int // constraint rows, total structural+slack+artificial columns
	a     [][]float64
	basis []int // basis[i] = column basic in row i
	obj   []float64
}

// Solve runs the two-phase simplex.
func Solve(p *Problem) (*Solution, error) {
	if len(p.C) != p.NumVars {
		return nil, fmt.Errorf("lp: objective has %d coefficients for %d variables", len(p.C), p.NumVars)
	}
	m := len(p.Rows)
	n := p.NumVars

	// Normalize rows to b >= 0.
	type rowT struct {
		coef  []float64
		sense Sense
		rhs   float64
	}
	rows := make([]rowT, m)
	for i, r := range p.Rows {
		coef := make([]float64, n)
		copy(coef, r.Coef)
		sense, rhs := r.Sense, r.RHS
		if rhs < 0 {
			for j := range coef {
				coef[j] = -coef[j]
			}
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		rows[i] = rowT{coef, sense, rhs}
	}

	// Column layout: [structural | slacks/surplus | artificials | RHS].
	nSlack := 0
	for _, r := range rows {
		if r.sense != EQ {
			nSlack++
		}
	}
	nArt := 0
	for _, r := range rows {
		if r.sense != LE {
			nArt++
		}
	}
	total := n + nSlack + nArt
	t := &tableau{m: m, n: total, basis: make([]int, m)}
	t.a = make([][]float64, m+1)
	for i := range t.a {
		t.a[i] = make([]float64, total+1)
	}

	slackAt, artAt := n, n+nSlack
	artCols := make([]int, 0, nArt)
	for i, r := range rows {
		copy(t.a[i], r.coef)
		t.a[i][total] = r.rhs
		switch r.sense {
		case LE:
			t.a[i][slackAt] = 1
			t.basis[i] = slackAt
			slackAt++
		case GE:
			t.a[i][slackAt] = -1
			slackAt++
			t.a[i][artAt] = 1
			t.basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		case EQ:
			t.a[i][artAt] = 1
			t.basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		}
	}

	sol := &Solution{}

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		phase1 := t.a[m]
		for j := range phase1 {
			phase1[j] = 0
		}
		for _, c := range artCols {
			phase1[c] = 1
		}
		// Price out the basic artificials.
		for i := 0; i < m; i++ {
			if t.a[m][t.basis[i]] != 0 {
				t.subtractRow(m, i, t.a[m][t.basis[i]])
			}
		}
		status, err := t.iterate(&sol.Pivots)
		if err != nil {
			return nil, err
		}
		if status == Unbounded {
			// Phase-1 objective is bounded below by 0; unbounded means a bug.
			return nil, errors.New("lp: phase-1 reported unbounded")
		}
		if -t.a[m][total] > 1e-7 {
			sol.Status = Infeasible
			return sol, nil
		}
		// Drive any lingering artificials out of the basis.
		for i := 0; i < m; i++ {
			if t.basis[i] < n+nSlack {
				continue
			}
			pivoted := false
			for j := 0; j < n+nSlack; j++ {
				if math.Abs(t.a[i][j]) > eps {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: harmless, artificial stays basic at 0.
				_ = pivoted
			}
		}
		// Blank artificial columns so they can never re-enter.
		for _, c := range artCols {
			for i := 0; i <= m; i++ {
				t.a[i][c] = 0
			}
		}
	}

	// Phase 2: restore the real objective and price out the basis.
	objRow := t.a[m]
	for j := range objRow {
		objRow[j] = 0
	}
	copy(objRow, p.C)
	for i := 0; i < m; i++ {
		if c := t.a[m][t.basis[i]]; c != 0 {
			t.subtractRow(m, i, c)
		}
	}
	status, err := t.iterate(&sol.Pivots)
	if err != nil {
		return nil, err
	}
	if status == Unbounded {
		sol.Status = Unbounded
		return sol, nil
	}

	sol.Status = Optimal
	sol.X = make([]float64, p.NumVars)
	for i := 0; i < m; i++ {
		if t.basis[i] < p.NumVars {
			sol.X[t.basis[i]] = t.a[i][total]
		}
	}
	sol.Objective = -t.a[m][total]
	return sol, nil
}

// subtractRow does a[target] -= factor * a[row], including the RHS.
func (t *tableau) subtractRow(target, row int, factor float64) {
	tr, sr := t.a[target], t.a[row]
	for j := 0; j <= t.n; j++ {
		tr[j] -= factor * sr[j]
	}
}

// pivot makes column col basic in row row.
func (t *tableau) pivot(row, col int) {
	pr := t.a[row]
	pv := pr[col]
	for j := 0; j <= t.n; j++ {
		pr[j] /= pv
	}
	pr[col] = 1 // exact
	for i := 0; i <= t.m; i++ {
		if i == row {
			continue
		}
		if f := t.a[i][col]; math.Abs(f) > 0 {
			t.subtractRow(i, row, f)
			t.a[i][col] = 0 // exact
		}
	}
	t.basis[row] = col
}

// iterate runs primal simplex to optimality, unboundedness or the pivot cap.
// Dantzig pricing with a fallback to Bland's rule after a stall threshold
// prevents cycling on degenerate schedules.
func (t *tableau) iterate(pivots *int) (Status, error) {
	stall := 0
	lastObj := math.Inf(1)
	for {
		if *pivots >= maxPivots {
			return Optimal, ErrPivotLimit
		}
		bland := stall > 2*(t.m+t.n)

		// Entering column: most negative reduced cost (Dantzig) or first
		// negative (Bland).
		col := -1
		best := -eps
		for j := 0; j < t.n; j++ {
			rc := t.a[t.m][j]
			if rc < -eps {
				if bland {
					col = j
					break
				}
				if rc < best {
					best, col = rc, j
				}
			}
		}
		if col == -1 {
			return Optimal, nil
		}

		// Leaving row: ratio test; Bland tie-break on basis index.
		row := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][col]
			if aij > eps {
				ratio := t.a[i][t.n] / aij
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && (row == -1 || t.basis[i] < t.basis[row])) {
					bestRatio, row = ratio, i
				}
			}
		}
		if row == -1 {
			return Unbounded, nil
		}

		t.pivot(row, col)
		*pivots++

		obj := -t.a[t.m][t.n]
		if obj < lastObj-eps {
			stall = 0
			lastObj = obj
		} else {
			stall++
		}
	}
}
