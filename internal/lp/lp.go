// Package lp is a from-scratch dense linear-programming solver: a two-phase
// primal simplex with bounded variables and a Dantzig→Bland anti-cycling
// pricing fallback. It is the substrate under internal/ilp, which the
// paper's offline ILP scheduling (§IV) runs on.
//
// Problems are stated over box-bounded variables:
//
//	minimize   c·x
//	subject to a_k·x (≤ | = | ≥) b_k,  lo ≤ x ≤ up,
//
// with lo = 0 and up = +∞ by default (the classic non-negative form).
// Variable bounds are handled natively by the simplex — a bound never
// becomes a tableau row — which is what lets the branch-and-bound in
// internal/ilp tighten bounds at every tree node without growing the
// tableau with tree depth.
//
// The implementation favours clarity and numerical robustness over speed:
// the scheduling models it solves have a few hundred rows and columns, where
// dense tableaus are perfectly adequate. A Solver can be reused across
// solves to pool the tableau allocation (the branch-and-bound hot loop).
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is a constraint relation.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // a·x ≤ b
	EQ              // a·x = b
	GE              // a·x ≥ b
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	}
	return "?"
}

// Constraint is one row a·x (sense) b. Coef must have the problem's variable
// count; missing trailing zeros are allowed.
type Constraint struct {
	Coef  []float64
	Sense Sense
	RHS   float64
	Name  string // optional, for diagnostics
}

// Problem is an LP over n box-bounded variables. Lo and Up are optional:
// nil means every variable ranges over [0, +∞). When set they must have
// length NumVars; Lo entries must be finite (Up may be +Inf).
type Problem struct {
	NumVars int
	C       []float64 // minimize C·x; len == NumVars
	Rows    []Constraint
	Lo, Up  []float64 // variable bounds; nil = default [0, +Inf)
}

// NewProblem returns an empty minimization problem over n variables.
func NewProblem(n int) *Problem {
	return &Problem{NumVars: n, C: make([]float64, n)}
}

// AddConstraint appends a row; coef may be shorter than NumVars.
func (p *Problem) AddConstraint(coef []float64, s Sense, rhs float64, name string) {
	row := make([]float64, p.NumVars)
	copy(row, coef)
	p.Rows = append(p.Rows, Constraint{Coef: row, Sense: s, RHS: rhs, Name: name})
}

// AddBound appends the single-variable constraint x_j (sense) v as a dense
// row. Prefer SetBounds, which the simplex handles natively; AddBound is
// retained for the row-encoded legacy path that internal/ilp keeps for
// differential testing.
func (p *Problem) AddBound(j int, s Sense, v float64, name string) {
	row := make([]float64, p.NumVars)
	row[j] = 1
	p.Rows = append(p.Rows, Constraint{Coef: row, Sense: s, RHS: v, Name: name})
}

// ensureBounds materializes the Lo/Up arrays at their defaults.
func (p *Problem) ensureBounds() {
	if p.Lo == nil {
		p.Lo = make([]float64, p.NumVars)
	}
	if p.Up == nil {
		p.Up = make([]float64, p.NumVars)
		for j := range p.Up {
			p.Up[j] = math.Inf(1)
		}
	}
}

// SetBounds sets lo ≤ x_j ≤ up. Use math.Inf(1) for an unbounded top.
func (p *Problem) SetBounds(j int, lo, up float64) {
	p.ensureBounds()
	p.Lo[j], p.Up[j] = lo, up
}

// Status is a solve outcome.
type Status int8

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "?"
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64 // primal values (valid when Optimal)
	Objective float64   // c·x (valid when Optimal)
	Pivots    int       // simplex iterations used (bound flips included)
}

const (
	eps       = 1e-9
	maxPivots = 200000
)

// ErrPivotLimit is returned when the simplex exceeds its iteration budget,
// which on these models indicates a modelling bug rather than a hard LP.
var ErrPivotLimit = errors.New("lp: pivot limit exceeded")

// Solve runs the two-phase simplex with a throwaway Solver. Callers with a
// hot loop (internal/ilp solves thousands of closely related LPs) should
// allocate one Solver and reuse it.
func Solve(p *Problem) (*Solution, error) {
	return new(Solver).Solve(p)
}

// Solver is a reusable dense simplex. The zero value is ready to use; all
// scratch state (tableau backing array, basis, bound bookkeeping) is pooled
// across Solve calls, so a warm Solver allocates only the returned Solution.
// A Solver is not safe for concurrent use; give each goroutine its own.
type Solver struct {
	m, n int // constraint rows; total structural+slack+artificial columns

	flat  []float64   // backing storage for the tableau
	a     [][]float64 // row views into flat; a[m] is the objective row
	basis []int       // basis[i] = column basic in row i

	ub   []float64 // per-column upper bound in shifted space (slack/art: +Inf)
	flip []bool    // column j is expressed as u_j − x_j (nonbasic at upper)
	lo   []float64 // structural lower bounds (the shift)

	rowCoef  []float64 // normalized row coefficients, m×n
	rowRHS   []float64
	rowSense []Sense
	artCols  []int
}

// Solve runs the two-phase bounded-variable simplex.
//
// Internally every structural variable is shifted by its lower bound
// (x = lo + x̃, 0 ≤ x̃ ≤ up−lo) and nonbasic variables rest at either end of
// their range; a variable sitting at its upper bound is represented by the
// substitution x̃ → u − x̃ (the column and its reduced cost are negated), so
// the textbook "all nonbasic at zero" pivot rules apply unchanged. The
// ratio test gains two cases: a basic variable may leave at its *upper*
// bound, and the entering variable may hit its own opposite bound first —
// a bound flip that re-substitutes the column without any pivot.
func (sv *Solver) Solve(p *Problem) (*Solution, error) {
	if len(p.C) != p.NumVars {
		return nil, fmt.Errorf("lp: objective has %d coefficients for %d variables", len(p.C), p.NumVars)
	}
	if p.Lo != nil && len(p.Lo) != p.NumVars {
		return nil, fmt.Errorf("lp: Lo has %d entries for %d variables", len(p.Lo), p.NumVars)
	}
	if p.Up != nil && len(p.Up) != p.NumVars {
		return nil, fmt.Errorf("lp: Up has %d entries for %d variables", len(p.Up), p.NumVars)
	}
	m := len(p.Rows)
	n := p.NumVars
	sol := &Solution{}

	// Shift structural variables to lower bound zero and reject empty boxes.
	sv.lo = resize(sv.lo, n)
	for j := 0; j < n; j++ {
		lo := 0.0
		if p.Lo != nil {
			lo = p.Lo[j]
		}
		if math.IsInf(lo, -1) || math.IsNaN(lo) {
			return nil, fmt.Errorf("lp: variable %d has non-finite lower bound %g", j, lo)
		}
		sv.lo[j] = lo
		up := math.Inf(1)
		if p.Up != nil {
			up = p.Up[j]
		}
		if up < lo-eps {
			sol.Status = Infeasible
			return sol, nil
		}
	}

	// Normalize rows: substitute the shift into the RHS, then flip rows to
	// b ≥ 0 so phase 1 can start from the slack/artificial basis.
	sv.rowCoef = resize(sv.rowCoef, m*n)
	sv.rowRHS = resize(sv.rowRHS, m)
	if cap(sv.rowSense) < m {
		sv.rowSense = make([]Sense, m)
	}
	sv.rowSense = sv.rowSense[:m]
	for i, r := range p.Rows {
		coef := sv.rowCoef[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			if j < len(r.Coef) {
				coef[j] = r.Coef[j]
			} else {
				coef[j] = 0
			}
		}
		rhs := r.RHS
		for j := 0; j < n; j++ {
			rhs -= coef[j] * sv.lo[j]
		}
		sense := r.Sense
		if rhs < 0 {
			for j := range coef {
				coef[j] = -coef[j]
			}
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		sv.rowRHS[i], sv.rowSense[i] = rhs, sense
	}

	// Column layout: [structural | slacks/surplus | artificials | RHS].
	nSlack, nArt := 0, 0
	for _, s := range sv.rowSense {
		if s != EQ {
			nSlack++
		}
		if s != LE {
			nArt++
		}
	}
	total := n + nSlack + nArt
	sv.m, sv.n = m, total
	sv.flat = resize(sv.flat, (m+1)*(total+1))
	for i := range sv.flat {
		sv.flat[i] = 0
	}
	if cap(sv.a) < m+1 {
		sv.a = make([][]float64, m+1)
	}
	sv.a = sv.a[:m+1]
	for i := range sv.a {
		sv.a[i] = sv.flat[i*(total+1) : (i+1)*(total+1)]
	}
	sv.basis = resizeInt(sv.basis, m)
	sv.ub = resize(sv.ub, total)
	if cap(sv.flip) < total {
		sv.flip = make([]bool, total)
	}
	sv.flip = sv.flip[:total]
	for j := 0; j < total; j++ {
		sv.flip[j] = false
		if j < n {
			up := math.Inf(1)
			if p.Up != nil {
				up = p.Up[j]
			}
			u := up - sv.lo[j]
			if u < 0 {
				u = 0
			}
			sv.ub[j] = u
		} else {
			sv.ub[j] = math.Inf(1)
		}
	}

	slackAt, artAt := n, n+nSlack
	sv.artCols = sv.artCols[:0]
	for i := 0; i < m; i++ {
		copy(sv.a[i], sv.rowCoef[i*n:(i+1)*n])
		sv.a[i][total] = sv.rowRHS[i]
		switch sv.rowSense[i] {
		case LE:
			sv.a[i][slackAt] = 1
			sv.basis[i] = slackAt
			slackAt++
		case GE:
			sv.a[i][slackAt] = -1
			slackAt++
			sv.a[i][artAt] = 1
			sv.basis[i] = artAt
			sv.artCols = append(sv.artCols, artAt)
			artAt++
		case EQ:
			sv.a[i][artAt] = 1
			sv.basis[i] = artAt
			sv.artCols = append(sv.artCols, artAt)
			artAt++
		}
	}

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		phase1 := sv.a[m]
		for _, c := range sv.artCols {
			phase1[c] = 1
		}
		// Price out the basic artificials.
		for i := 0; i < m; i++ {
			if sv.a[m][sv.basis[i]] != 0 {
				sv.subtractRow(m, i, sv.a[m][sv.basis[i]])
			}
		}
		status, err := sv.iterate(&sol.Pivots)
		if err != nil {
			return nil, err
		}
		if status == Unbounded {
			// Phase-1 objective is bounded below by 0; unbounded means a bug.
			return nil, errors.New("lp: phase-1 reported unbounded")
		}
		if -sv.a[m][total] > 1e-7 {
			sol.Status = Infeasible
			return sol, nil
		}
		// Drive any lingering artificials out of the basis.
		for i := 0; i < m; i++ {
			if sv.basis[i] < n+nSlack {
				continue
			}
			for j := 0; j < n+nSlack; j++ {
				if math.Abs(sv.a[i][j]) > eps {
					sv.pivot(i, j)
					break
				}
			}
			// A redundant row is harmless: its artificial stays basic at 0.
		}
		// Blank artificial columns so they can never re-enter.
		for _, c := range sv.artCols {
			for i := 0; i <= m; i++ {
				sv.a[i][c] = 0
			}
			sv.ub[c] = 0
		}
	}

	// Phase 2: restore the real objective in shifted/flipped space and price
	// out the basis. The objective row's RHS cell tracks only the varying
	// part; the true objective is recomputed as c·x on extraction.
	objRow := sv.a[m]
	for j := range objRow {
		objRow[j] = 0
	}
	for j := 0; j < n; j++ {
		if sv.flip[j] {
			objRow[j] = -p.C[j]
		} else {
			objRow[j] = p.C[j]
		}
	}
	for i := 0; i < m; i++ {
		if c := sv.a[m][sv.basis[i]]; c != 0 {
			sv.subtractRow(m, i, c)
		}
	}
	status, err := sv.iterate(&sol.Pivots)
	if err != nil {
		return nil, err
	}
	if status == Unbounded {
		sol.Status = Unbounded
		return sol, nil
	}

	// Extract: basic variables read the RHS column, nonbasic sit at zero;
	// un-substitute flips and un-shift lower bounds.
	sol.Status = Optimal
	sol.X = make([]float64, n)
	for j := 0; j < n; j++ {
		v := 0.0
		if sv.flip[j] {
			v = sv.ub[j]
		}
		sol.X[j] = sv.lo[j] + v
	}
	for i := 0; i < m; i++ {
		if j := sv.basis[i]; j < n {
			v := sv.a[i][total]
			if sv.flip[j] {
				v = sv.ub[j] - v
			}
			sol.X[j] = sv.lo[j] + v
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.C[j] * sol.X[j]
	}
	sol.Objective = obj
	return sol, nil
}

// subtractRow does a[target] -= factor * a[row], including the RHS.
func (sv *Solver) subtractRow(target, row int, factor float64) {
	tr, sr := sv.a[target], sv.a[row]
	for j := 0; j <= sv.n; j++ {
		tr[j] -= factor * sr[j]
	}
}

// pivot makes column col basic in row row.
func (sv *Solver) pivot(row, col int) {
	pr := sv.a[row]
	pv := pr[col]
	for j := 0; j <= sv.n; j++ {
		pr[j] /= pv
	}
	pr[col] = 1 // exact
	for i := 0; i <= sv.m; i++ {
		if i == row {
			continue
		}
		if f := sv.a[i][col]; math.Abs(f) > 0 {
			sv.subtractRow(i, row, f)
			sv.a[i][col] = 0 // exact
		}
	}
	sv.basis[row] = col
}

// flipColumn re-substitutes column col between x̃ and u−x̃: the RHS column
// absorbs u·a[i][col] and the column negates, moving the nonbasic variable
// from one bound to the other without a pivot.
func (sv *Solver) flipColumn(col int) {
	u := sv.ub[col]
	for i := 0; i <= sv.m; i++ {
		if c := sv.a[i][col]; c != 0 {
			sv.a[i][sv.n] -= c * u
			sv.a[i][col] = -c
		}
	}
	sv.flip[col] = !sv.flip[col]
}

// flipLeavingRow substitutes the basic variable of row r by its
// upper-bound complement before a pivot in which it leaves at its upper
// bound: the whole row negates (its own unit coefficient restored to +1)
// and the RHS becomes u − rhs, so the standard pivot arithmetic applies.
func (sv *Solver) flipLeavingRow(r int) {
	l := sv.basis[r]
	u := sv.ub[l]
	row := sv.a[r]
	for j := 0; j <= sv.n; j++ {
		row[j] = -row[j]
	}
	row[l] = 1
	row[sv.n] += u
	sv.flip[l] = !sv.flip[l]
}

// iterate runs primal simplex to optimality, unboundedness or the pivot cap.
//
// Anti-cycling: Dantzig pricing (most negative reduced cost) is used while
// the objective makes progress; after 2(m+n) stalled iterations the pricing
// falls back to Bland's rule (first eligible column, smallest basis index on
// ratio-test ties), which provably terminates on degenerate tableaus. Bound
// flips move a variable by its full range u > 0 and are therefore never
// degenerate, so Bland's argument carries over to the bounded simplex.
func (sv *Solver) iterate(pivots *int) (Status, error) {
	stall := 0
	lastObj := math.Inf(1)
	for {
		if *pivots >= maxPivots {
			return Optimal, ErrPivotLimit
		}
		bland := stall > 2*(sv.m+sv.n)

		// Entering column: most negative reduced cost (Dantzig) or first
		// negative (Bland). Columns with an empty range (fixed variables,
		// blanked artificials) can never move and are skipped.
		col := -1
		best := -eps
		for j := 0; j < sv.n; j++ {
			rc := sv.a[sv.m][j]
			if rc < -eps && sv.ub[j] > eps {
				if bland {
					col = j
					break
				}
				if rc < best {
					best, col = rc, j
				}
			}
		}
		if col == -1 {
			return Optimal, nil
		}

		// Ratio test over three limits: a basic variable reaching its lower
		// bound (a>0), a basic variable reaching its finite upper bound
		// (a<0), or the entering variable reaching its own upper bound.
		// Bland tie-break on basis index among rows; the entering variable's
		// own bound wins near-ties (a flip is cheaper than a pivot and
		// strictly advances).
		row := -1
		leaveAtUpper := false
		bestRatio := sv.ub[col]
		for i := 0; i < sv.m; i++ {
			aij := sv.a[i][col]
			if aij > eps {
				ratio := sv.a[i][sv.n] / aij
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && row != -1 && sv.basis[i] < sv.basis[row]) {
					bestRatio, row, leaveAtUpper = ratio, i, false
				}
			} else if aij < -eps {
				ubB := sv.ub[sv.basis[i]]
				if math.IsInf(ubB, 1) {
					continue
				}
				ratio := (ubB - sv.a[i][sv.n]) / -aij
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && row != -1 && sv.basis[i] < sv.basis[row]) {
					bestRatio, row, leaveAtUpper = ratio, i, true
				}
			}
		}
		if row == -1 {
			if math.IsInf(bestRatio, 1) {
				return Unbounded, nil
			}
			sv.flipColumn(col)
		} else {
			if leaveAtUpper {
				sv.flipLeavingRow(row)
			}
			sv.pivot(row, col)
		}
		*pivots++

		obj := -sv.a[sv.m][sv.n]
		if obj < lastObj-eps {
			stall = 0
			lastObj = obj
		} else {
			stall++
		}
	}
}

// resize returns s with length n, reusing capacity.
func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
