package lp

import (
	"math"
	"testing"

	"nprt/internal/rng"
)

// TestNativeBoundsBasics exercises SetBounds end to end: shifted lower
// bounds, finite upper bounds, and a variable fixed by lo == up.
func TestNativeBoundsBasics(t *testing.T) {
	// min -x - 2y  s.t. x + y <= 10, 1 <= x <= 3, 2 <= y <= 4.
	p := NewProblem(2)
	p.C = []float64{-1, -2}
	p.AddConstraint([]float64{1, 1}, LE, 10, "")
	p.SetBounds(0, 1, 3)
	p.SetBounds(1, 2, 4)
	sol := solveOK(t, p)
	if sol.Status != Optimal || !almost(sol.X[0], 3) || !almost(sol.X[1], 4) {
		t.Fatalf("sol = %+v", sol)
	}
	if !almost(sol.Objective, -11) {
		t.Errorf("objective = %g, want -11", sol.Objective)
	}

	// Fixing a variable: lo == up.
	p = NewProblem(2)
	p.C = []float64{1, 1}
	p.AddConstraint([]float64{1, 1}, GE, 5, "")
	p.SetBounds(0, 2, 2)
	sol = solveOK(t, p)
	if sol.Status != Optimal || !almost(sol.X[0], 2) || !almost(sol.X[1], 3) {
		t.Fatalf("fixed-var sol = %+v", sol)
	}
}

// TestNativeBoundsInfeasibleBox rejects lo > up without touching the
// simplex.
func TestNativeBoundsInfeasibleBox(t *testing.T) {
	p := NewProblem(1)
	p.C = []float64{1}
	p.SetBounds(0, 3, 2)
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

// TestNativeBoundsUnbounded: a bound on one variable must not mask
// unboundedness in another.
func TestNativeBoundsUnbounded(t *testing.T) {
	p := NewProblem(2)
	p.C = []float64{-1, 0}
	p.SetBounds(1, 0, 5)
	sol := solveOK(t, p)
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

// TestNegativeLowerBounds: shifting handles lo < 0 (free-ish variables).
func TestNegativeLowerBounds(t *testing.T) {
	// min x + y  s.t. x + y >= -3, -5 <= x <= 5, -5 <= y <= 5 → obj -3.
	p := NewProblem(2)
	p.C = []float64{1, 1}
	p.AddConstraint([]float64{1, 1}, GE, -3, "")
	p.SetBounds(0, -5, 5)
	p.SetBounds(1, -5, 5)
	sol := solveOK(t, p)
	if sol.Status != Optimal || !almost(sol.Objective, -3) {
		t.Fatalf("sol = %+v", sol)
	}
}

// TestBoundsMatchRowEncoding is the LP-level differential: on randomized
// box-constrained problems, solving with native bounds must agree in status
// and objective with the same problem whose bounds are spelled as dense
// rows (the pre-bounded-simplex encoding).
func TestBoundsMatchRowEncoding(t *testing.T) {
	r := rng.New(20260806)
	for trial := 0; trial < 300; trial++ {
		n := 2 + int(r.Uint64()%4)  // 2..5 vars
		mr := 1 + int(r.Uint64()%4) // 1..4 rows
		native := NewProblem(n)
		rows := NewProblem(n)
		for j := 0; j < n; j++ {
			c := float64(int(r.Uint64()%21)) - 10
			native.C[j], rows.C[j] = c, c
			lo := float64(int(r.Uint64() % 4))
			up := lo + float64(int(r.Uint64()%6))
			native.SetBounds(j, lo, up)
			rows.AddBound(j, GE, lo, "")
			rows.AddBound(j, LE, up, "")
		}
		for i := 0; i < mr; i++ {
			coef := make([]float64, n)
			for j := range coef {
				coef[j] = float64(int(r.Uint64()%11)) - 5
			}
			sense := Sense(r.Uint64() % 3)
			rhs := float64(int(r.Uint64()%41)) - 10
			native.AddConstraint(coef, sense, rhs, "")
			rows.AddConstraint(coef, sense, rhs, "")
		}
		a, err := Solve(native)
		if err != nil {
			t.Fatalf("trial %d: native: %v", trial, err)
		}
		b, err := Solve(rows)
		if err != nil {
			t.Fatalf("trial %d: rows: %v", trial, err)
		}
		if a.Status != b.Status {
			t.Fatalf("trial %d: status native=%v rows=%v", trial, a.Status, b.Status)
		}
		if a.Status != Optimal {
			continue
		}
		if math.Abs(a.Objective-b.Objective) > 1e-6 {
			t.Fatalf("trial %d: objective native=%g rows=%g", trial, a.Objective, b.Objective)
		}
		// The native solution must respect its box exactly.
		for j := 0; j < n; j++ {
			if a.X[j] < native.Lo[j]-1e-7 || a.X[j] > native.Up[j]+1e-7 {
				t.Fatalf("trial %d: x[%d]=%g outside [%g,%g]", trial, j, a.X[j], native.Lo[j], native.Up[j])
			}
		}
	}
}

// TestSolverReuse: a pooled Solver must give the same answers as fresh
// solves across a sequence of differently shaped problems.
func TestSolverReuse(t *testing.T) {
	sv := new(Solver)
	r := rng.New(7)
	for trial := 0; trial < 100; trial++ {
		n := 1 + int(r.Uint64()%5)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.C[j] = float64(int(r.Uint64()%13)) - 6
			p.SetBounds(j, 0, float64(r.Uint64()%8))
		}
		if r.Uint64()%2 == 0 {
			coef := make([]float64, n)
			for j := range coef {
				coef[j] = float64(int(r.Uint64()%7)) - 3
			}
			p.AddConstraint(coef, Sense(r.Uint64()%3), float64(int(r.Uint64()%15))-4, "")
		}
		pooled, err := sv.Solve(p)
		if err != nil {
			t.Fatalf("trial %d: pooled: %v", trial, err)
		}
		fresh, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: fresh: %v", trial, err)
		}
		if pooled.Status != fresh.Status {
			t.Fatalf("trial %d: status pooled=%v fresh=%v", trial, pooled.Status, fresh.Status)
		}
		if pooled.Status == Optimal && math.Abs(pooled.Objective-fresh.Objective) > 1e-9 {
			t.Fatalf("trial %d: objective pooled=%g fresh=%g", trial, pooled.Objective, fresh.Objective)
		}
	}
}

// TestZeroRHSDegenerateRows locks the pivot behaviour on GE/EQ rows with a
// zero right-hand side: phase 1 starts with the artificial basic at value 0
// (a fully degenerate vertex) and must still drive it out and terminate.
func TestZeroRHSDegenerateRows(t *testing.T) {
	// min x + y  s.t. x - y >= 0, x + y >= 0, x - 2y = 0, x <= 4.
	p := NewProblem(2)
	p.C = []float64{1, 1}
	p.AddConstraint([]float64{1, -1}, GE, 0, "ge0")
	p.AddConstraint([]float64{1, 1}, GE, 0, "ge0b")
	p.AddConstraint([]float64{1, -2}, EQ, 0, "eq0")
	p.AddBound(0, LE, 4, "")
	sol := solveOK(t, p)
	if sol.Status != Optimal || !almost(sol.Objective, 0) {
		t.Fatalf("sol = %+v", sol)
	}

	// Same shape but the optimum is pushed off the degenerate vertex.
	p = NewProblem(2)
	p.C = []float64{-1, -1}
	p.AddConstraint([]float64{1, -1}, GE, 0, "")
	p.AddConstraint([]float64{1, -2}, EQ, 0, "")
	p.AddConstraint([]float64{1, 1}, LE, 9, "")
	sol = solveOK(t, p)
	if sol.Status != Optimal || !almost(sol.Objective, -9) {
		t.Fatalf("sol = %+v", sol)
	}
	if !almost(sol.X[0], 6) || !almost(sol.X[1], 3) {
		t.Errorf("x = %v, want [6 3]", sol.X)
	}
}

// TestRatioTestTiesTerminate builds tableaus whose ratio tests tie on
// every pivot (the cycling-prone configuration): many identical rows, so
// several basic variables hit zero simultaneously. The Dantzig→Bland stall
// fallback must terminate with the right optimum.
func TestRatioTestTiesTerminate(t *testing.T) {
	// min -x1 - x2 with five copies of x1 + x2 <= 6 and crossing rows that
	// tie at the same vertex.
	p := NewProblem(2)
	p.C = []float64{-1, -1}
	for i := 0; i < 5; i++ {
		p.AddConstraint([]float64{1, 1}, LE, 6, "dup")
	}
	p.AddConstraint([]float64{2, 2}, LE, 12, "scaled")
	p.AddConstraint([]float64{1, 0}, LE, 6, "")
	p.AddConstraint([]float64{0, 1}, LE, 6, "")
	sol := solveOK(t, p)
	if sol.Status != Optimal || !almost(sol.Objective, -6) {
		t.Fatalf("sol = %+v", sol)
	}

	// Kuhn's degenerate example (a classic cycler under pure Dantzig with
	// arbitrary tie-breaks); every RHS is zero except the bounding row.
	p = NewProblem(4)
	p.C = []float64{-2, -3, 1, 12}
	p.AddConstraint([]float64{-2, -9, 1, 9}, LE, 0, "")
	p.AddConstraint([]float64{1.0 / 3, 1, -1.0 / 3, -2}, LE, 0, "")
	p.AddConstraint([]float64{1, 1, 1, 1}, LE, 10, "box")
	sol = solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v (cycling not broken?)", sol.Status)
	}
	if sol.Objective > -1e-6 {
		t.Errorf("objective = %g, want < 0", sol.Objective)
	}
}

// TestBoundFlipPath forces the entering variable to hit its own upper bound
// before any basic variable leaves (the bound-flip step, no pivot).
func TestBoundFlipPath(t *testing.T) {
	// min -x  s.t. x + y <= 100, x <= 2 (native). The flip of x to its
	// upper bound is the whole solve.
	p := NewProblem(2)
	p.C = []float64{-1, 0}
	p.AddConstraint([]float64{1, 1}, LE, 100, "")
	p.SetBounds(0, 0, 2)
	sol := solveOK(t, p)
	if sol.Status != Optimal || !almost(sol.X[0], 2) {
		t.Fatalf("sol = %+v", sol)
	}

	// And a basic variable leaving at its *upper* bound: maximize y subject
	// to y <= x + 1 with x capped at 3 → x=3 (leaves at upper), y=4.
	p = NewProblem(2)
	p.C = []float64{0, -1}
	p.AddConstraint([]float64{-1, 1}, LE, 1, "")
	p.SetBounds(0, 0, 3)
	p.SetBounds(1, 0, 10)
	sol = solveOK(t, p)
	if sol.Status != Optimal || !almost(sol.X[1], 4) {
		t.Fatalf("sol = %+v", sol)
	}
}
