package lp

import (
	"math"
	"testing"

	"nprt/internal/rng"
)

// vertexOracle solves a 2-variable LP (min c·x, a_k·x <= b_k, x >= 0) by
// enumerating all intersections of constraint boundary pairs (including the
// axes) and taking the best feasible vertex. For a bounded feasible region
// the LP optimum is attained at such a vertex, so this is an exact oracle.
func vertexOracle(c [2]float64, rows [][3]float64) (obj float64, feasible bool) {
	// Boundary lines: each row a1 x + a2 y = b, plus x = 0 and y = 0.
	lines := make([][3]float64, 0, len(rows)+2)
	lines = append(lines, rows...)
	lines = append(lines, [3]float64{1, 0, 0}, [3]float64{0, 1, 0})

	best := math.Inf(1)
	found := false
	feasibleAt := func(x, y float64) bool {
		if x < -1e-9 || y < -1e-9 {
			return false
		}
		for _, r := range rows {
			if r[0]*x+r[1]*y > r[2]+1e-7 {
				return false
			}
		}
		return true
	}
	for i := 0; i < len(lines); i++ {
		for j := i + 1; j < len(lines); j++ {
			a1, b1, c1 := lines[i][0], lines[i][1], lines[i][2]
			a2, b2, c2 := lines[j][0], lines[j][1], lines[j][2]
			det := a1*b2 - a2*b1
			if math.Abs(det) < 1e-12 {
				continue
			}
			x := (c1*b2 - c2*b1) / det
			y := (a1*c2 - a2*c1) / det
			if feasibleAt(x, y) {
				v := c[0]*x + c[1]*y
				if v < best {
					best = v
					found = true
				}
			}
		}
	}
	return best, found
}

// TestSimplexMatchesVertexEnumeration fuzzes the simplex on random bounded
// 2-variable LPs against the geometric oracle.
func TestSimplexMatchesVertexEnumeration(t *testing.T) {
	r := rng.New(8675309)
	tested := 0
	for trial := 0; trial < 500; trial++ {
		nRows := 1 + r.Intn(5)
		rows := make([][3]float64, 0, nRows+2)
		for k := 0; k < nRows; k++ {
			rows = append(rows, [3]float64{
				r.Float64()*4 - 1, // allow some negative coefficients
				r.Float64()*4 - 1,
				r.Float64() * 10,
			})
		}
		// Bounding box keeps every instance bounded.
		rows = append(rows, [3]float64{1, 0, 5 + r.Float64()*10})
		rows = append(rows, [3]float64{0, 1, 5 + r.Float64()*10})
		c := [2]float64{r.Float64()*4 - 2, r.Float64()*4 - 2}

		want, feasible := vertexOracle(c, rows)

		p := NewProblem(2)
		p.C = []float64{c[0], c[1]}
		for _, row := range rows {
			p.AddConstraint([]float64{row[0], row[1]}, LE, row[2], "")
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !feasible {
			if sol.Status == Optimal {
				t.Fatalf("trial %d: simplex found %g on oracle-infeasible LP", trial, sol.Objective)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: simplex says %v, oracle found %g", trial, sol.Status, want)
		}
		if math.Abs(sol.Objective-want) > 1e-6*math.Max(1, math.Abs(want)) {
			t.Fatalf("trial %d: simplex %g != oracle %g", trial, sol.Objective, want)
		}
		// The reported point must satisfy every constraint.
		for k, row := range rows {
			if row[0]*sol.X[0]+row[1]*sol.X[1] > row[2]+1e-6 {
				t.Fatalf("trial %d: solution violates row %d", trial, k)
			}
		}
		tested++
	}
	if tested < 300 {
		t.Fatalf("only %d feasible instances exercised", tested)
	}
}

// TestSimplexRandomEqualities fuzzes mixed LE/GE/EQ systems where a known
// feasible point is planted, so feasibility is guaranteed and the optimum
// must not exceed the planted point's objective.
func TestSimplexRandomEqualities(t *testing.T) {
	r := rng.New(1234)
	for trial := 0; trial < 300; trial++ {
		n := 2 + r.Intn(3)
		point := make([]float64, n)
		for i := range point {
			point[i] = r.Float64() * 5
		}
		p := NewProblem(n)
		for i := range p.C {
			p.C[i] = r.Float64()*4 - 2
		}
		nRows := 1 + r.Intn(4)
		for k := 0; k < nRows; k++ {
			coef := make([]float64, n)
			v := 0.0
			for i := range coef {
				coef[i] = r.Float64()*2 - 0.5
				v += coef[i] * point[i]
			}
			switch r.Intn(3) {
			case 0:
				p.AddConstraint(coef, LE, v+r.Float64(), "")
			case 1:
				p.AddConstraint(coef, GE, v-r.Float64(), "")
			default:
				p.AddConstraint(coef, EQ, v, "")
			}
		}
		// Bound the box so minimization is never unbounded.
		for i := 0; i < n; i++ {
			p.AddBound(i, LE, 20, "")
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v with a planted feasible point", trial, sol.Status)
		}
		plantedObj := 0.0
		for i := range point {
			plantedObj += p.C[i] * point[i]
		}
		if sol.Objective > plantedObj+1e-6 {
			t.Fatalf("trial %d: optimum %g worse than planted point %g", trial, sol.Objective, plantedObj)
		}
	}
}
