package runtime

import (
	"nprt/internal/esr"
	"nprt/internal/sim"
	"nprt/internal/task"
)

// guardedESR is the runtime's online policy: the paper's EDF+ESR dispatch
// with one additional guard on slack spending.
//
// The churn soak found a genuine non-preemptive anomaly in the unguarded
// rule (see ALGORITHMS.md §9.1 and TestGuardBlocksInterSlackAnomaly): a
// chain of early-finishing jobs accumulates inter-job slack, a
// long-deadline job dispatched just before a burst of short-deadline
// releases spends that slack on an accurate run, and the burst then finds
// the processor blocked for longer than Theorem 1's condition 2 ever
// accounted — the blocking term in the analysis used x_i, the extended run
// used up to w_i. The admission controller's guarantee would be void.
//
// The guard restores soundness while keeping reclamation: inherited
// earliness (inter-job slack) may only fund an extension that completes
// before the next release, so an extended run can never overlap an
// arrival it would block anomalously. Individual slack is exempt — it is
// backed by the γ_min margin, which scales the blocking term of condition
// 2 along with everything else — and idle slack already ends before the
// next release by construction.
type guardedESR struct {
	tracker *esr.Tracker
}

// Name implements sim.Policy; the label keeps guarded epochs
// distinguishable from the paper's policy in reports and digests.
func (p *guardedESR) Name() string { return "EDF+ESR+guard" }

// Reset implements sim.Policy.
func (p *guardedESR) Reset(st *sim.State) { p.tracker = esr.NewTracker(st.Set()) }

// Pick is esr.Policy.Pick plus the arrival guard on the mode choice.
func (p *guardedESR) Pick(st *sim.State) (sim.Decision, bool) {
	j, ok := st.EDFPick()
	if !ok {
		return sim.Decision{}, false
	}
	s := p.tracker.Evaluate(st, j)
	tk := st.Set().Task(j.TaskID)
	now := st.Now()
	rNext, haveNext := st.NextReleaseTime(j.Key())
	deepest := tk.WCET(task.Deepest)
	safe := s.Individual + s.Idle // spendable across arrivals
	total := s.Total()

	mode := tk.ClampMode(task.Deepest)
	for m := task.Accurate; int(m) < tk.NumModes(); m++ {
		w := tk.WCET(m)
		gap := w - deepest
		if gap > total || now+w > j.Deadline {
			continue
		}
		if gap > safe && haveNext && now+w > rNext {
			continue // inter-slack-funded extension would cross an arrival
		}
		mode = m
		break
	}
	p.tracker.Commit(s)
	return sim.Decision{Job: j, Mode: mode}, true
}

// JobFinished implements sim.Policy.
func (p *guardedESR) JobFinished(_ *sim.State, _ sim.Decision, _, finish task.Time) {
	p.tracker.Finished(finish)
}

// shedPolicy wraps the runtime's base policy while the governor has
// accuracy shed: decisions for tasks in the forced set are demoted to the
// task's deepest declared imprecise level. Demotion only ever shortens a
// job's worst case, so it can never invalidate a guarantee the base policy
// was relying on; it frees processor time, which is the point.
//
// The wrapper forwards the optional Validator and DropAware extensions so
// an offline-planned base policy keeps its pre-run checks and its
// lost-release handling while shed.
type shedPolicy struct {
	inner  sim.Policy
	forced []bool // by task ID of the current set
}

// Name labels results so a shed epoch is distinguishable in reports and in
// the runtime digest.
func (p *shedPolicy) Name() string { return p.inner.Name() + "+shed" }

// Reset implements sim.Policy.
func (p *shedPolicy) Reset(st *sim.State) { p.inner.Reset(st) }

// Pick demotes forced tasks to their deepest level.
func (p *shedPolicy) Pick(st *sim.State) (sim.Decision, bool) {
	d, ok := p.inner.Pick(st)
	if !ok {
		return d, ok
	}
	if d.Job.TaskID < len(p.forced) && p.forced[d.Job.TaskID] {
		d.Mode = st.Set().Task(d.Job.TaskID).ClampMode(task.Deepest)
	}
	return d, ok
}

// JobFinished implements sim.Policy.
func (p *shedPolicy) JobFinished(st *sim.State, d sim.Decision, start, finish task.Time) {
	p.inner.JobFinished(st, d, start, finish)
}

// ValidateFor forwards the base policy's pre-run compatibility check.
func (p *shedPolicy) ValidateFor(s *task.Set) error {
	if v, ok := p.inner.(sim.Validator); ok {
		return v.ValidateFor(s)
	}
	return nil
}

// JobDropped forwards lost-release notifications to a DropAware base.
func (p *shedPolicy) JobDropped(st *sim.State, j task.Job) {
	if da, ok := p.inner.(sim.DropAware); ok {
		da.JobDropped(st, j)
	}
}
