// Package runtime is the long-running scheduler service wrapped around the
// sim/ESR/offline stack: a task set that churns while the scheduler is live.
//
// It has three cooperating pieces:
//
//   - an admission controller — every Add/Remove request is screened online
//     against the Theorem-1 bound (internal/feasibility) in both the
//     accurate and the deepest-imprecise profile, producing a structured
//     admit / admit-degraded / reject verdict instead of silently breaking
//     guarantees, with re-planning through offline.ResilientPlan when the
//     hyper-period plan must be rebuilt;
//   - an overload governor — a hysteretic control loop (see Governor) that
//     watches a sliding window of miss rate and lateness and monotonically
//     sheds accuracy (forcing tasks to their deepest imprecise level,
//     lowest criticality first) under sustained overload, restoring it with
//     separate thresholds and a dwell time so the system never flaps;
//   - checkpoint/restore — versioned JSON snapshots of the full runtime
//     state (task set, shed modes, governor window, ESR slack table, RNG
//     state, running digest) such that kill-and-restore resumes
//     bit-identically to an uninterrupted run (see checkpoint.go).
//
// Time is divided into epochs of EpochHyperperiods hyper-periods each; one
// sim.Run per epoch. Task churn takes effect at epoch boundaries — the
// non-preemptive hyper-period plan is the unit of commitment, so a change
// mid-plan would void exactly the guarantees admission exists to protect.
// Overload is injected as seeded WCET-overrun faults (sim.FaultPlan), which
// is how a real system experiences load it did not plan for.
package runtime

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"nprt/internal/feasibility"
	"nprt/internal/ilp"
	"nprt/internal/offline"
	"nprt/internal/rng"
	"nprt/internal/sim"
	"nprt/internal/task"
)

// PlannerKind selects how the runtime rebuilds its policy after an
// admission change.
type PlannerKind uint8

const (
	// PlanOnline runs pure EDF+ESR: no offline plan, nothing to rebuild,
	// fully deterministic. The churn soak uses this.
	PlanOnline PlannerKind = iota
	// PlanResilient rebuilds through offline.ResilientPlan's degradation
	// chain on every admission change, recording provenance. Configure
	// Options.Resilient with deterministic budgets (node limits, or
	// StartRung ≥ RungFlippedEDF) when bit-identical restore matters.
	PlanResilient
)

// String names the planner kind.
func (k PlannerKind) String() string {
	switch k {
	case PlanOnline:
		return "online"
	case PlanResilient:
		return "resilient"
	}
	return fmt.Sprintf("planner%d", uint8(k))
}

// ResilientConfig is the serializable subset of offline.ResilientOptions —
// the budget knobs a checkpoint can carry. (offline.ResilientOptions itself
// holds an ilp.Options with a callback field, which JSON cannot round-trip.)
type ResilientConfig struct {
	// MaxNodes / TimeLimit / Workers bound the first ILP attempt; see
	// ilp.Options. A TimeLimit is wall-clock and therefore breaks
	// bit-identical restore — runtimes that need it set StartRung past the
	// ILP rung or bound MaxNodes instead.
	MaxNodes  int           `json:"max_nodes,omitempty"`
	TimeLimit time.Duration `json:"time_limit,omitempty"`
	Workers   int           `json:"workers,omitempty"`
	// Retries / Backoff / StartRung as in offline.ResilientOptions.
	Retries   int          `json:"retries,omitempty"`
	Backoff   float64      `json:"backoff,omitempty"`
	StartRung offline.Rung `json:"start_rung,omitempty"`
}

// options converts to the planner's native options.
func (c ResilientConfig) options() offline.ResilientOptions {
	return offline.ResilientOptions{
		ILP: ilp.Options{
			MaxNodes:  c.MaxNodes,
			TimeLimit: c.TimeLimit,
			Workers:   c.Workers,
		},
		Retries:   c.Retries,
		Backoff:   c.Backoff,
		StartRung: c.StartRung,
	}
}

// TaskSpec is one admitted task plus its runtime metadata.
type TaskSpec struct {
	Task task.Task `json:"task"`
	// Criticality orders governor shedding: lower values are shed first.
	// Ties break by name, ascending.
	Criticality int `json:"criticality"`
}

// Options parameterizes a Runtime. The zero value is usable: seed 1,
// indexed engine, one hyper-period per epoch, online planner, default
// governor.
type Options struct {
	Seed              uint64          `json:"seed"`
	Engine            sim.EngineKind  `json:"engine"`
	EpochHyperperiods int             `json:"epoch_hyperperiods"`
	Planner           PlannerKind     `json:"planner"`
	Resilient         ResilientConfig `json:"resilient"`
	Governor          GovernorConfig  `json:"governor"`
	Containment       sim.Containment `json:"containment"`
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.EpochHyperperiods <= 0 {
		o.EpochHyperperiods = 1
	}
	o.Governor = o.Governor.withDefaults()
	return o
}

// Validate rejects meaningless options.
func (o Options) Validate() error {
	if o.Engine != sim.EngineIndexed && o.Engine != sim.EngineLinearScan {
		return fmt.Errorf("runtime: unknown engine %d", o.Engine)
	}
	if o.Planner != PlanOnline && o.Planner != PlanResilient {
		return fmt.Errorf("runtime: unknown planner %d", o.Planner)
	}
	if o.Containment > sim.DowngradeOnOverrun {
		return fmt.Errorf("runtime: unknown containment %d", o.Containment)
	}
	if o.EpochHyperperiods < 0 {
		return fmt.Errorf("runtime: epoch hyper-periods %d must be non-negative", o.EpochHyperperiods)
	}
	return o.Governor.Validate()
}

// Verdict is the admission controller's decision class.
type Verdict uint8

const (
	// Rejected: admitting the task would break the deepest-imprecise
	// Theorem-1 bound — no guarantee would survive. State is unchanged.
	Rejected Verdict = iota
	// Admitted: the set passes Theorem 1 even with every job accurate.
	Admitted
	// AdmittedDegraded: the set passes only in the deepest-imprecise
	// profile. The zero-miss guarantee holds, but it leans on imprecision —
	// accurate-mode execution is a best-effort upgrade.
	AdmittedDegraded
)

// String names the verdict (JSON/log key).
func (v Verdict) String() string {
	switch v {
	case Rejected:
		return "rejected"
	case Admitted:
		return "admitted"
	case AdmittedDegraded:
		return "admitted-degraded"
	}
	return fmt.Sprintf("verdict%d", uint8(v))
}

// Decision is the structured outcome of one admission-controller request.
type Decision struct {
	Op      string  `json:"op"` // "add", "remove" or "overload"
	Task    string  `json:"task,omitempty"`
	Verdict Verdict `json:"verdict"`
	Reason  string  `json:"reason,omitempty"`

	// Theorem-1 screening summary for the candidate (add) or remaining
	// (remove) set, both profiles.
	AccurateOK       bool    `json:"accurate_ok"`
	AccurateUtil     float64 `json:"accurate_util"`
	AccurateGammaMin float64 `json:"accurate_gamma_min"`
	DeepestOK        bool    `json:"deepest_ok"`
	DeepestUtil      float64 `json:"deepest_util"`
	DeepestGammaMin  float64 `json:"deepest_gamma_min"`

	// Replanned reports that the hyper-period plan was rebuilt; PlanRung is
	// the resilient chain's landing rung when the planner is PlanResilient.
	Replanned bool   `json:"replanned"`
	PlanRung  string `json:"plan_rung,omitempty"`
}

// fillProfiles copies the Theorem-1 screening scalars into the decision.
func (d *Decision) fillProfiles(acc, deep feasibility.Report) {
	d.AccurateOK = acc.Schedulable
	d.AccurateUtil = acc.Utilization
	d.AccurateGammaMin = acc.GammaMin
	d.DeepestOK = deep.Schedulable
	d.DeepestUtil = deep.Utilization
	d.DeepestGammaMin = deep.GammaMin
}

// Structured request errors.
var (
	// ErrDuplicateTask rejects an Add whose name is already admitted.
	ErrDuplicateTask = errors.New("runtime: task name already admitted")
	// ErrUnknownTask rejects a Remove of a name that is not admitted.
	ErrUnknownTask = errors.New("runtime: unknown task")
	// ErrUnnamedTask rejects an Add without a name (Remove is by name).
	ErrUnnamedTask = errors.New("runtime: task must be named")
)

// Metrics accumulates the runtime's lifetime counters.
type Metrics struct {
	Epochs         int64 `json:"epochs"`
	Jobs           int64 `json:"jobs"`
	Misses         int64 `json:"misses"`
	MissesDegraded int64 `json:"misses_degraded"` // inside governor-declared degraded epochs
	MissesClean    int64 `json:"misses_clean"`    // outside them (zero when guarantees hold)

	Admits         int64 `json:"admits"`
	AdmitsDegraded int64 `json:"admits_degraded"`
	Rejects        int64 `json:"rejects"`
	Removes        int64 `json:"removes"`
	Overloads      int64 `json:"overloads"`
	Replans        int64 `json:"replans"`

	Sheds    int64 `json:"sheds"`
	Restores int64 `json:"restores"`
}

// validate rejects negative counters (checkpoint corruption).
func (m Metrics) validate() error {
	for _, v := range []int64{m.Epochs, m.Jobs, m.Misses, m.MissesDegraded, m.MissesClean,
		m.Admits, m.AdmitsDegraded, m.Rejects, m.Removes, m.Overloads, m.Replans,
		m.Sheds, m.Restores} {
		if v < 0 {
			return fmt.Errorf("runtime: negative metric in checkpoint")
		}
	}
	return nil
}

// Runtime is the long-running scheduler service. It is not safe for
// concurrent use; serialize access externally (cmd/impserve runs one
// goroutine).
type Runtime struct {
	opt Options

	specs  []TaskSpec // admitted tasks, insertion order, unique names
	set    *task.Set  // effective set; nil while empty
	policy sim.Policy // base policy for the current set; nil while empty
	prov   *offline.PlanProvenance

	gov  *Governor
	shed []string // names forced deepest, in shed order (LIFO restore)

	overloadLeft  int
	overloadRates sim.FaultRates

	root   *rng.Stream
	epoch  int64
	digest uint64
	met    Metrics
}

// New builds an empty runtime.
func New(opt Options) (*Runtime, error) {
	opt = opt.withDefaults()
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	gov, err := NewGovernor(opt.Governor)
	if err != nil {
		return nil, err
	}
	opt.Governor = gov.Config()
	return &Runtime{
		opt:    opt,
		gov:    gov,
		root:   rng.New(opt.Seed ^ rootSeedSalt),
		digest: fnvOffset,
	}, nil
}

// rootSeedSalt decorrelates the runtime's seed-derivation stream from the
// plain sampler streams other components derive from the same user seed.
const rootSeedSalt = 0x5ca1ab1e0ddba11

// Epoch returns the number of completed epochs.
func (r *Runtime) Epoch() int64 { return r.epoch }

// Digest returns the running FNV-1a digest over every admission decision
// and epoch result. Two runs (or a checkpointed and an uninterrupted run)
// are bit-identical iff their digests match at every step.
func (r *Runtime) Digest() uint64 { return r.digest }

// Metrics returns the lifetime counters (governor actions included).
func (r *Runtime) Metrics() Metrics {
	m := r.met
	m.Sheds, m.Restores = r.gov.Sheds(), r.gov.Restores()
	return m
}

// Set returns the current effective task set (nil while empty). Read-only.
func (r *Runtime) Set() *task.Set { return r.set }

// Tasks returns the admitted specs in insertion order (copy).
func (r *Runtime) Tasks() []TaskSpec {
	out := make([]TaskSpec, len(r.specs))
	copy(out, r.specs)
	return out
}

// ShedTasks returns the names currently forced to their deepest level, in
// shed order (copy).
func (r *Runtime) ShedTasks() []string {
	out := make([]string, len(r.shed))
	copy(out, r.shed)
	return out
}

// Provenance returns the last re-plan's provenance (nil under PlanOnline or
// before any admission).
func (r *Runtime) Provenance() *offline.PlanProvenance { return r.prov }

// Governor exposes the control loop (diagnostics, tests).
func (r *Runtime) Governor() *Governor { return r.gov }

// Add screens the task against Theorem 1 in both profiles and admits it iff
// the deepest-imprecise profile stays schedulable. A malformed request
// (invalid task, missing or duplicate name) returns an error and changes
// nothing; a well-formed request that fails screening returns a Rejected
// decision and changes nothing. Admission rebuilds the plan.
func (r *Runtime) Add(spec TaskSpec) (Decision, error) {
	d := Decision{Op: "add", Task: spec.Task.Name}
	if spec.Task.Name == "" {
		return d, ErrUnnamedTask
	}
	if err := spec.Task.Validate(); err != nil {
		return d, err
	}
	if r.findSpec(spec.Task.Name) >= 0 {
		return d, fmt.Errorf("%w: %q", ErrDuplicateTask, spec.Task.Name)
	}

	cand := make([]task.Task, 0, len(r.specs)+1)
	for i := range r.specs {
		cand = append(cand, r.specs[i].Task)
	}
	cand = append(cand, spec.Task)
	candSet, err := task.New(cand)
	if err != nil {
		// Structurally inadmissible (e.g. hyper-period overflow): a valid
		// request whose admission is impossible, not a malformed request.
		d.Verdict = Rejected
		d.Reason = err.Error()
		r.met.Rejects++
		r.foldDecision(d)
		return d, nil
	}

	acc, deep := feasibility.Profiles(candSet)
	d.fillProfiles(acc, deep)
	if !deep.Schedulable {
		d.Verdict = Rejected
		d.Reason = "deepest-imprecise profile fails Theorem 1: no guarantee would survive admission"
		r.met.Rejects++
		r.foldDecision(d)
		return d, nil
	}

	newSpecs := append(append([]TaskSpec(nil), r.specs...), spec)
	if err := r.rebuild(newSpecs, candSet, &d); err != nil {
		return d, err
	}
	if acc.Schedulable {
		d.Verdict = Admitted
		r.met.Admits++
	} else {
		d.Verdict = AdmittedDegraded
		d.Reason = "accurate profile fails Theorem 1: admission leans on imprecise execution"
		r.met.AdmitsDegraded++
	}
	r.foldDecision(d)
	return d, nil
}

// Remove withdraws an admitted task. Removal can only relax the Theorem-1
// conditions, so it always succeeds for a known name; the decision still
// carries the remaining set's screening summary for observability. The plan
// is rebuilt.
func (r *Runtime) Remove(name string) (Decision, error) {
	d := Decision{Op: "remove", Task: name, Verdict: Admitted}
	i := r.findSpec(name)
	if i < 0 {
		return d, fmt.Errorf("%w: %q", ErrUnknownTask, name)
	}
	newSpecs := append(append([]TaskSpec(nil), r.specs[:i]...), r.specs[i+1:]...)

	var newSet *task.Set
	if len(newSpecs) > 0 {
		cand := make([]task.Task, len(newSpecs))
		for j := range newSpecs {
			cand[j] = newSpecs[j].Task
		}
		var err error
		newSet, err = task.New(cand)
		if err != nil {
			return d, fmt.Errorf("runtime: rebuilding set after remove: %w", err)
		}
		acc, deep := feasibility.Profiles(newSet)
		d.fillProfiles(acc, deep)
	}
	if err := r.rebuild(newSpecs, newSet, &d); err != nil {
		return d, err
	}
	// Drop the removed task from the shed set, preserving shed order.
	kept := r.shed[:0]
	for _, n := range r.shed {
		if n != name {
			kept = append(kept, n)
		}
	}
	r.shed = kept
	r.met.Removes++
	r.foldDecision(d)
	return d, nil
}

// Overload declares an overload window: for the next `epochs` epochs the
// runtime injects seeded WCET-violation faults at the given rates
// (last-writer-wins with any window still open). This is the load the
// governor exists to absorb.
func (r *Runtime) Overload(rates sim.FaultRates, epochs int) (Decision, error) {
	d := Decision{Op: "overload", Verdict: Admitted}
	if epochs <= 0 {
		return d, fmt.Errorf("runtime: overload epochs %d must be positive", epochs)
	}
	if err := rates.Validate(); err != nil {
		return d, err
	}
	r.overloadRates = rates
	r.overloadLeft = epochs
	r.met.Overloads++
	d.Reason = fmt.Sprintf("overrun p=%g ×%g, abort p=%g, drop p=%g for %d epochs",
		rates.OverrunProb, rates.OverrunFactor, rates.AbortProb, rates.DropProb, epochs)
	r.foldDecision(d)
	return d, nil
}

// findSpec returns the index of the named spec, or -1.
func (r *Runtime) findSpec(name string) int {
	for i := range r.specs {
		if r.specs[i].Task.Name == name {
			return i
		}
	}
	return -1
}

// rebuild commits a new spec list and effective set, re-planning the policy.
// On planner failure the runtime keeps its previous state and the error is
// returned (admission must be atomic).
func (r *Runtime) rebuild(specs []TaskSpec, set *task.Set, d *Decision) error {
	var pol sim.Policy
	var prov *offline.PlanProvenance
	if set != nil {
		switch r.opt.Planner {
		case PlanResilient:
			var err error
			pol, prov, err = offline.ResilientPlan(set, r.opt.Resilient.options())
			if err != nil {
				return fmt.Errorf("runtime: re-planning: %w", err)
			}
			d.PlanRung = prov.Rung.String()
		default:
			pol = &guardedESR{}
		}
		d.Replanned = true
		r.met.Replans++
	}
	r.specs, r.set, r.policy, r.prov = specs, set, pol, prov
	return nil
}

// EpochReport summarizes one epoch.
type EpochReport struct {
	Epoch    int64  `json:"epoch"`
	Seed     uint64 `json:"seed"` // the epoch's sampler seed, for standalone reproduction
	Idle     bool   `json:"idle"` // no tasks admitted; nothing ran
	Degraded bool   `json:"degraded"`
	Policy   string `json:"policy,omitempty"`

	Jobs        int64     `json:"jobs"`
	Misses      int64     `json:"misses"`
	MissPct     float64   `json:"miss_pct"`
	MeanError   float64   `json:"mean_error"`
	MaxLateness task.Time `json:"max_lateness"`
	Accurate    int64     `json:"accurate"`
	Imprecise   int64     `json:"imprecise"`

	Action       Action   `json:"-"`
	ActionName   string   `json:"action,omitempty"`
	ShedTask     string   `json:"shed_task,omitempty"`
	RestoredTask string   `json:"restored_task,omitempty"`
	Shed         []string `json:"shed,omitempty"` // shed set after the action
	WindowMean   float64  `json:"window_mean"`
}

// RunEpoch simulates one epoch of the current task set, feeds the result to
// the governor, applies its action, and folds everything into the digest.
//
// An epoch is **degraded** when, at its start, the governor has accuracy
// shed or an overload window is open — the windows inside which deadline
// misses are declared expectable. Outside them, an admitted (hence
// deepest-imprecise-schedulable) set under EDF+ESR must not miss; the churn
// soak asserts exactly that.
func (r *Runtime) RunEpoch() (EpochReport, error) {
	seed := r.root.Uint64()
	rep := EpochReport{Epoch: r.epoch, Seed: seed}
	r.epoch++
	r.met.Epochs++

	overloaded := r.overloadLeft > 0
	rep.Degraded = overloaded || len(r.shed) > 0

	if r.set == nil {
		rep.Idle = true
		if overloaded {
			r.overloadLeft--
		}
		r.foldEpoch(seed, &rep, nil)
		return rep, nil
	}

	cfg := sim.Config{
		Hyperperiods: r.opt.EpochHyperperiods,
		Sampler:      sim.NewRandomSampler(r.set, seed),
		Engine:       r.opt.Engine,
		Containment:  r.opt.Containment,
	}
	if overloaded {
		cfg.Faults = sim.NewFaultPlan(seed^faultSeedSalt, r.overloadRates)
		r.overloadLeft--
	}
	pol := r.policy
	if len(r.shed) > 0 {
		pol = &shedPolicy{inner: r.policy, forced: r.forcedIDs()}
	}
	res, err := sim.Run(r.set, pol, cfg)
	if err != nil {
		return rep, fmt.Errorf("runtime: epoch %d: %w", rep.Epoch, err)
	}

	rep.Policy = res.Policy
	rep.Jobs = res.Jobs
	rep.Misses = res.Misses.Events
	rep.MissPct = res.MissPercent()
	rep.MeanError = res.MeanError()
	rep.MaxLateness = res.MaxLateness
	rep.Accurate = res.Accurate
	rep.Imprecise = res.Imprecise

	r.met.Jobs += res.Jobs
	r.met.Misses += res.Misses.Events
	if rep.Degraded {
		r.met.MissesDegraded += res.Misses.Events
	} else {
		r.met.MissesClean += res.Misses.Events
	}

	rep.Action = r.gov.Observe(rep.MissPct, rep.MaxLateness,
		len(r.shed) < len(r.specs), len(r.shed) > 0)
	rep.ActionName = rep.Action.String()
	switch rep.Action {
	case ActionShed:
		victim := r.shedVictim()
		r.shed = append(r.shed, victim)
		rep.ShedTask = victim
	case ActionRestore:
		rep.RestoredTask = r.shed[len(r.shed)-1]
		r.shed = r.shed[:len(r.shed)-1]
	}
	rep.Shed = r.ShedTasks()
	rep.WindowMean = r.gov.WindowMean()

	r.foldEpoch(seed, &rep, res)
	return rep, nil
}

// faultSeedSalt separates the per-epoch fault-plan stream from the sampler
// stream derived from the same epoch seed.
const faultSeedSalt = 0xfa117_5eed

// shedVictim picks the next task to force deepest: lowest criticality
// first, ties by name ascending, among tasks not already shed. Must only be
// called when such a task exists.
func (r *Runtime) shedVictim() string {
	isShed := make(map[string]bool, len(r.shed))
	for _, n := range r.shed {
		isShed[n] = true
	}
	type cand struct {
		name string
		crit int
	}
	var cands []cand
	for i := range r.specs {
		if !isShed[r.specs[i].Task.Name] {
			cands = append(cands, cand{r.specs[i].Task.Name, r.specs[i].Criticality})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].crit != cands[b].crit {
			return cands[a].crit < cands[b].crit
		}
		return cands[a].name < cands[b].name
	})
	return cands[0].name
}

// forcedIDs maps the shed names onto the current set's dense task IDs.
func (r *Runtime) forcedIDs() []bool {
	forced := make([]bool, r.set.Len())
	for _, n := range r.shed {
		for i := 0; i < r.set.Len(); i++ {
			if r.set.Task(i).Name == n {
				forced[i] = true
				break
			}
		}
	}
	return forced
}

// --- digest ----------------------------------------------------------------

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// foldWord FNV-1a-folds one 64-bit word, little-endian byte order.
func (r *Runtime) foldWord(v uint64) {
	d := r.digest
	for i := 0; i < 8; i++ {
		d ^= v & 0xff
		d *= fnvPrime
		v >>= 8
	}
	r.digest = d
}

// foldString folds a length-prefixed string.
func (r *Runtime) foldString(s string) {
	r.foldWord(uint64(len(s)))
	d := r.digest
	for i := 0; i < len(s); i++ {
		d ^= uint64(s[i])
		d *= fnvPrime
	}
	r.digest = d
}

// foldDecision makes admission outcomes part of the run identity.
func (r *Runtime) foldDecision(d Decision) {
	r.foldString(d.Op)
	r.foldString(d.Task)
	r.foldWord(uint64(d.Verdict))
	r.foldWord(uint64(math.Float64bits(d.DeepestGammaMin)))
	r.foldString(d.PlanRung)
}

// foldEpoch makes epoch results part of the run identity. res is nil for
// idle epochs.
func (r *Runtime) foldEpoch(seed uint64, rep *EpochReport, res *sim.Result) {
	r.foldWord(seed)
	r.foldWord(uint64(rep.Epoch))
	if rep.Degraded {
		r.foldWord(1)
	} else {
		r.foldWord(0)
	}
	if res == nil {
		r.foldString("idle")
		return
	}
	r.foldString(res.Policy)
	r.foldWord(uint64(res.Jobs))
	r.foldWord(uint64(res.Misses.Events))
	r.foldWord(math.Float64bits(res.Error.Mean()))
	r.foldWord(math.Float64bits(res.Error.StdDev()))
	r.foldWord(uint64(res.Busy))
	r.foldWord(uint64(res.MaxLateness))
	r.foldWord(uint64(res.Accurate))
	r.foldWord(uint64(res.Imprecise))
	if res.Faults != nil {
		t := res.Faults.Total
		r.foldWord(uint64(t.Overruns))
		r.foldWord(uint64(t.WatchdogKills))
		r.foldWord(uint64(t.Aborts))
		r.foldWord(uint64(t.DroppedReleases))
		r.foldWord(uint64(t.Downgrades))
		r.foldWord(uint64(t.FaultedMisses))
		r.foldWord(uint64(t.CascadedMisses))
		r.foldWord(uint64(res.Faults.OverrunTime))
	}
	r.foldWord(uint64(rep.Action))
	r.foldString(rep.ShedTask)
	r.foldString(rep.RestoredTask)
}
