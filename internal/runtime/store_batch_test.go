package runtime

import (
	"fmt"
	"testing"

	"nprt/internal/sim"
	"nprt/internal/task"
)

// batchTape is storeTape's busier sibling: multiple events share epochs so
// the batched driver forms real multi-record commit groups, including
// groups that mix admissions, rejections and stale requests.
func batchTape() *Tape {
	spec := func(name string, p, w, x task.Time, crit int) *TaskSpec {
		t := mkTask(name, p, w, x)
		return &TaskSpec{Task: t, Criticality: crit}
	}
	return &Tape{Events: []Event{
		{Epoch: 0, Op: "add", Task: spec("a", 20, 6, 2, 2)},
		{Epoch: 0, Op: "add", Task: spec("b", 40, 10, 3, 0)},
		{Epoch: 0, Op: "add", Task: spec("c", 40, 12, 4, 1)},
		{Epoch: 2, Op: "overload", Overload: &OverloadSpec{
			Rates:  sim.FaultRates{OverrunProb: 0.3, OverrunFactor: 3},
			Epochs: 4,
		}},
		{Epoch: 2, Op: "remove", Name: "ghost"}, // stale: never admitted
		{Epoch: 4, Op: "remove", Name: "b"},
		{Epoch: 4, Op: "add", Task: spec("d", 20, 18, 2, 3)}, // degraded or rejected
		{Epoch: 4, Op: "add", Task: spec("a", 20, 6, 2, 2)},  // stale: duplicate
		{Epoch: 6, Op: "add", Task: spec("e", 80, 9, 3, 1)},
	}}
}

// playStoreBatched drives the tape through ApplyBatch — all of an epoch's
// due events in one commit group — with the same epoch cadence, checkpoint
// rhythm, and stale tolerance as playStore. The resume cursor is
// EventsApplied, exactly like PlayTape: every tape event is journaled
// (stale ones fail only at apply), so the count restarts the tape
// mid-epoch after a crash.
func playStoreBatched(s *Store, tp *Tape, horizon int64) error {
	i := int(s.EventsApplied())
	if i > len(tp.Events) {
		return fmt.Errorf("store applied %d events, tape has %d", i, len(tp.Events))
	}
	for s.Epoch() < horizon {
		var batch []Event
		for i < len(tp.Events) && tp.Events[i].Epoch <= s.Epoch() {
			batch = append(batch, tp.Events[i])
			i++
		}
		if len(batch) > 0 {
			_, errs, err := s.ApplyBatch(batch)
			if err != nil {
				return err
			}
			for j, e := range errs {
				if e != nil && !IsStaleRequest(e) {
					return fmt.Errorf("batched event %d: %w", j, e)
				}
			}
		}
		rep, err := s.RunEpoch()
		if err != nil {
			return err
		}
		if rep.Epoch%3 == 2 {
			if _, err := s.Checkpoint(); err != nil {
				return err
			}
		}
	}
	return nil
}

// TestStoreApplyBatchParity: a batched run must be indistinguishable from
// the serial run of the same tape — same digest as serial Apply on a
// second store AND as a plain in-memory runtime — while actually
// amortizing (more records than syncs).
func TestStoreApplyBatchParity(t *testing.T) {
	tp := batchTape()
	opt := StoreOptions{NoSync: true}
	tol := func(ev Event, err error) error {
		if IsStaleRequest(err) {
			return nil
		}
		return err
	}

	serial, err := OpenStore(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.PlayTape(tp, storeHorizon, nil, nil, tol); err != nil {
		t.Fatal(err)
	}
	want := serial.Digest()
	wantEvents := serial.EventsApplied()
	serial.Close()

	r := mkRuntime(t, opt.Runtime)
	if err := r.Play(tp, storeHorizon, nil, nil, tol); err != nil {
		t.Fatal(err)
	}
	if r.Digest() != want {
		t.Fatalf("serial store digest %016x != in-memory %016x", want, r.Digest())
	}

	batched, err := OpenStore(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()
	if err := playStoreBatched(batched, tp, storeHorizon); err != nil {
		t.Fatal(err)
	}
	if batched.Digest() != want {
		t.Fatalf("batched digest %016x != serial %016x — ApplyBatch changed the run", batched.Digest(), want)
	}
	if batched.EventsApplied() != wantEvents {
		t.Fatalf("batched journaled %d events, serial %d", batched.EventsApplied(), wantEvents)
	}
	st := batched.CommitStats()
	if st.RecordsPerSync() <= 1 {
		t.Fatalf("batched run never amortized: %+v", st)
	}
	if st.MaxGroup < 3 {
		t.Fatalf("largest commit group %d, want ≥3 (epoch-0 batch)", st.MaxGroup)
	}
}

// TestStoreCrashSweepBatched extends the crash-point sweep to batched
// commit boundaries: kill the store at EVERY fsync of a batched-ingest
// run — including the syncs covering multi-record groups — reopen, finish
// the run (batched), and require the digest of the SERIAL uncrashed run.
// Recovery cannot tell batched frames from serial ones; this proves it.
func TestStoreCrashSweepBatched(t *testing.T) {
	tp := batchTape()
	tol := func(ev Event, err error) error {
		if IsStaleRequest(err) {
			return nil
		}
		return err
	}
	for _, eng := range []sim.EngineKind{sim.EngineIndexed, sim.EngineLinearScan} {
		t.Run(fmt.Sprintf("engine=%d", eng), func(t *testing.T) {
			opt := StoreOptions{Runtime: Options{Engine: eng}}

			// Serial uncrashed baseline digest.
			s, err := OpenStore(t.TempDir(), StoreOptions{Runtime: opt.Runtime, NoSync: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.PlayTape(tp, storeHorizon, nil, nil, tol); err != nil {
				t.Fatal(err)
			}
			want := s.Digest()
			s.Close()

			// Count the batched run's fsync boundaries.
			total := 0
			countOpt := opt
			countOpt.AfterSync = func() { total++ }
			s, err = OpenStore(t.TempDir(), countOpt)
			if err != nil {
				t.Fatal(err)
			}
			if err := playStoreBatched(s, tp, storeHorizon); err != nil {
				t.Fatal(err)
			}
			if got := s.Digest(); got != want {
				t.Fatalf("uncrashed batched digest %016x != serial %016x", got, want)
			}
			st := s.CommitStats()
			if st.MaxGroup < 3 {
				t.Fatalf("sweep would not cross a multi-record boundary: %+v", st)
			}
			s.Close()
			if total < 20 {
				t.Fatalf("only %d fsync boundaries — batched tape not exercising the WAL", total)
			}

			for point := 1; point <= total; point++ {
				point := point
				t.Run(fmt.Sprintf("kill@%d", point), func(t *testing.T) {
					dir := t.TempDir()
					crashOpt := opt
					n := 0
					crashOpt.AfterSync = func() {
						n++
						if n == point {
							panic(crashNow{point})
						}
					}

					func() {
						defer func() {
							r := recover()
							if r == nil {
								t.Fatalf("kill point %d never reached (total %d)", point, total)
							}
							if _, ok := r.(crashNow); !ok {
								panic(r)
							}
						}()
						s, err := OpenStore(dir, crashOpt)
						if err != nil {
							t.Fatal(err)
						}
						_ = playStoreBatched(s, tp, storeHorizon)
						t.Fatalf("run with kill point %d finished without crashing", point)
					}()

					s, err := OpenStore(dir, opt)
					if err != nil {
						t.Fatalf("recovery after kill %d: %v", point, err)
					}
					if err := playStoreBatched(s, tp, storeHorizon); err != nil {
						t.Fatalf("resume after kill %d: %v", point, err)
					}
					if s.Digest() != want {
						t.Errorf("kill point %d: digest %016x, uncrashed serial %016x",
							point, s.Digest(), want)
					}
					s.Close()
				})
			}
		})
	}
}

// TestStoreApplyBatchRejectsInvalid: a structurally invalid event must be
// rejected per-event without touching the journal, while the rest of the
// batch commits and applies.
func TestStoreApplyBatchRejectsInvalid(t *testing.T) {
	s, err := OpenStore(t.TempDir(), StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	good := Event{Op: "add", Task: &TaskSpec{Task: mkTask("a", 20, 6, 2)}}
	bad := Event{Op: "launch-the-missiles"}
	decs, errs, err := s.ApplyBatch([]Event{good, bad})
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil {
		t.Fatalf("valid event rejected: %v", errs[0])
	}
	if decs[0].Verdict == Rejected {
		t.Fatalf("valid event got no admission: %+v", decs[0])
	}
	if errs[1] == nil {
		t.Fatal("invalid op accepted")
	}
	if s.LastIndex() != 1 {
		t.Fatalf("journal has %d records, want 1 — the invalid event must not be journaled", s.LastIndex())
	}
	if s.EventsApplied() != 1 {
		t.Fatalf("eventsApplied %d, want 1", s.EventsApplied())
	}
}
