package runtime

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Tape linting: decode-time rejection of scripts that would only fail
// epochs later, mid-replay. The plain DecodeTape accepts stale requests
// (remove of a never-admitted name, re-add of a live one) because churn
// generators produce them deliberately and the runtime absorbs them; a
// hand-written operational tape, though, almost certainly *means* every
// event, so impserve's -strict mode runs LintTape and rejects the tape
// with the offending line number instead of surfacing an ErrUnknownTask
// at epoch 4000.
//
// The lint is static: it assumes every well-formed add is admitted (it
// does not re-run Theorem-1 screening), so a tape that intentionally
// re-adds a name whose first add the controller rejected will lint as a
// duplicate. That is the right trade for a strict mode — such a tape is
// relying on runtime state to discard events, which is exactly the
// ambiguity strictness exists to forbid.

// TapeIssue is one strict-mode finding, tied to its source location.
type TapeIssue struct {
	Event int   // index into Tape.Events
	Line  int   // 1-based line in the decoded document; 0 when unknown
	Err   error // the underlying complaint
}

// Error renders "line L, event E: problem".
func (i TapeIssue) Error() string {
	if i.Line > 0 {
		return fmt.Sprintf("line %d, event %d: %v", i.Line, i.Event, i.Err)
	}
	return fmt.Sprintf("event %d: %v", i.Event, i.Err)
}

func (i TapeIssue) Unwrap() error { return i.Err }

// Lint-specific complaints (ErrBadEvent covers the structural ones).
var (
	// ErrDuplicateAdd flags an add whose name is already live on the tape.
	ErrDuplicateAdd = errors.New("duplicate add: task name is already live")
	// ErrRemoveUnknown flags a remove of a name no prior add made live.
	ErrRemoveUnknown = errors.New("remove of unknown task: no live add for this name")
	// ErrEpochRegression flags an event scheduled before its predecessor.
	ErrEpochRegression = errors.New("non-monotonic epoch")
)

// LintTape statically checks a tape: per-event structural validity
// (Event.Validate plus task validation on adds), epoch monotonicity, and
// the add/remove name discipline. lines, when non-nil, carries the
// 1-based source line of each event (from DecodeTapeLines) and must be
// the same length as tp.Events.
func LintTape(tp *Tape, lines []int) []TapeIssue {
	var issues []TapeIssue
	report := func(i int, err error) {
		line := 0
		if lines != nil && i < len(lines) {
			line = lines[i]
		}
		issues = append(issues, TapeIssue{Event: i, Line: line, Err: err})
	}

	live := make(map[string]bool)
	last := int64(0)
	for i := range tp.Events {
		ev := &tp.Events[i]
		if err := ev.Validate(); err != nil {
			report(i, err)
			continue
		}
		if ev.Epoch < last {
			report(i, fmt.Errorf("%w: epoch %d after %d", ErrEpochRegression, ev.Epoch, last))
		} else {
			last = ev.Epoch
		}
		switch ev.Op {
		case "add":
			name := ev.Task.Task.Name
			if err := ev.Task.Task.Validate(); err != nil {
				report(i, err)
				continue
			}
			if live[name] {
				report(i, fmt.Errorf("%w: %q", ErrDuplicateAdd, name))
				continue
			}
			live[name] = true
		case "remove":
			if !live[ev.Name] {
				report(i, fmt.Errorf("%w: %q", ErrRemoveUnknown, ev.Name))
				continue
			}
			delete(live, ev.Name)
		}
	}
	return issues
}

// DecodeTapeLines decodes a tape while recording the 1-based source line
// each event starts on. Unknown fields are rejected, as in DecodeTape;
// unlike DecodeTape it does NOT run Tape.Validate — it exists for the
// strict path, which wants every complaint tied to a line.
func DecodeTapeLines(rd io.Reader) (*Tape, []int, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return nil, nil, fmt.Errorf("runtime: reading tape: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()

	expectDelim := func(d rune) error {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("runtime: decoding tape: %w", err)
		}
		if delim, ok := tok.(json.Delim); !ok || delim != json.Delim(d) {
			return fmt.Errorf("runtime: decoding tape: expected %q, found %v", d, tok)
		}
		return nil
	}

	if err := expectDelim('{'); err != nil {
		return nil, nil, err
	}
	tp := &Tape{}
	var lines []int
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return nil, nil, fmt.Errorf("runtime: decoding tape: %w", err)
		}
		key, _ := tok.(string)
		if key != "events" {
			return nil, nil, fmt.Errorf("runtime: decoding tape: unknown field %q", tok)
		}
		tok, err = dec.Token()
		if err != nil {
			return nil, nil, fmt.Errorf("runtime: decoding tape: %w", err)
		}
		if tok == nil { // "events": null
			continue
		}
		if delim, ok := tok.(json.Delim); !ok || delim != '[' {
			return nil, nil, fmt.Errorf("runtime: decoding tape: events must be an array, found %v", tok)
		}
		for dec.More() {
			line := lineAt(data, dec.InputOffset())
			var ev Event
			if err := dec.Decode(&ev); err != nil {
				return nil, nil, fmt.Errorf("runtime: decoding tape: line %d: %w", line, err)
			}
			tp.Events = append(tp.Events, ev)
			lines = append(lines, line)
		}
		if err := expectDelim(']'); err != nil {
			return nil, nil, err
		}
	}
	if err := expectDelim('}'); err != nil {
		return nil, nil, err
	}
	return tp, lines, nil
}

// lineAt returns the 1-based line of the first non-whitespace byte at or
// after off.
func lineAt(data []byte, off int64) int {
	i := int(off)
	for i < len(data) && (data[i] == ' ' || data[i] == '\t' || data[i] == '\n' || data[i] == '\r' || data[i] == ',') {
		i++
	}
	if i > len(data) {
		i = len(data)
	}
	return 1 + bytes.Count(data[:i], []byte{'\n'})
}

// DecodeTapeStrict is the -strict entry point: decode with line tracking,
// lint, and reject the tape if anything surfaced. The error enumerates up
// to eight issues (line and event index each) so a broken script is fixed
// in one round trip, not eight.
func DecodeTapeStrict(rd io.Reader) (*Tape, error) {
	tp, lines, err := DecodeTapeLines(rd)
	if err != nil {
		return nil, err
	}
	issues := LintTape(tp, lines)
	if len(issues) == 0 {
		return tp, nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "runtime: strict tape validation failed (%d issue(s)):", len(issues))
	for i, issue := range issues {
		if i == 8 {
			fmt.Fprintf(&b, "\n  ... and %d more", len(issues)-i)
			break
		}
		fmt.Fprintf(&b, "\n  %v", issue)
	}
	return nil, fmt.Errorf("%s", b.String())
}
