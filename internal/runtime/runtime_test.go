package runtime

import (
	"errors"
	"testing"

	"nprt/internal/offline"
	"nprt/internal/sim"
	"nprt/internal/task"
)

// mkTask builds a valid two-mode task with the given WCETs.
func mkTask(name string, p, w, x task.Time) task.Task {
	return task.Task{
		Name: name, Period: p, WCETAccurate: w, WCETImprecise: x,
		ExecAccurate:  task.Dist{Mean: float64(w) / 2, Sigma: float64(w) / 8, Min: 1, Max: float64(w)},
		ExecImprecise: task.Dist{Mean: float64(x) / 2, Sigma: float64(x) / 8, Min: 1, Max: float64(x)},
		Error:         task.Dist{Mean: 2, Sigma: 0.5},
	}
}

func mkRuntime(t *testing.T, opt Options) *Runtime {
	t.Helper()
	r, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustAdd(t *testing.T, r *Runtime, spec TaskSpec) Decision {
	t.Helper()
	d, err := r.Add(spec)
	if err != nil {
		t.Fatalf("Add(%s): %v", spec.Task.Name, err)
	}
	return d
}

func TestAdmissionVerdicts(t *testing.T) {
	r := mkRuntime(t, Options{})

	// Accurate profile passes: plain admit.
	d := mustAdd(t, r, TaskSpec{Task: mkTask("a", 20, 8, 2)})
	if d.Verdict != Admitted {
		t.Fatalf("a: verdict %v, want admitted (%+v)", d.Verdict, d)
	}
	if !d.AccurateOK || !d.DeepestOK || !d.Replanned {
		t.Errorf("a: profile flags %+v", d)
	}

	// Pushes the accurate profile over Theorem 1 but leaves the deepest
	// profile schedulable: admit-degraded.
	d = mustAdd(t, r, TaskSpec{Task: mkTask("b", 20, 14, 2)})
	if d.Verdict != AdmittedDegraded {
		t.Fatalf("b: verdict %v, want admitted-degraded (acc util %g, deep util %g)",
			d.Verdict, d.AccurateUtil, d.DeepestUtil)
	}
	if d.AccurateOK || !d.DeepestOK || d.Reason == "" {
		t.Errorf("b: profile flags %+v", d)
	}

	// Breaks even the deepest profile: reject, and the set is unchanged.
	d = mustAdd(t, r, TaskSpec{Task: mkTask("c", 10, 10, 9)})
	if d.Verdict != Rejected {
		t.Fatalf("c: verdict %v, want rejected (deep util %g)", d.Verdict, d.DeepestUtil)
	}
	if d.Replanned {
		t.Error("c: rejection replanned")
	}
	if got := len(r.Tasks()); got != 2 {
		t.Fatalf("rejected task changed the set: %d tasks", got)
	}

	m := r.Metrics()
	if m.Admits != 1 || m.AdmitsDegraded != 1 || m.Rejects != 1 {
		t.Errorf("metrics %+v, want 1 admit / 1 degraded / 1 reject", m)
	}
}

func TestAddRequestErrors(t *testing.T) {
	r := mkRuntime(t, Options{})
	mustAdd(t, r, TaskSpec{Task: mkTask("a", 20, 8, 2)})

	if _, err := r.Add(TaskSpec{Task: mkTask("", 20, 8, 2)}); !errors.Is(err, ErrUnnamedTask) {
		t.Errorf("unnamed add: %v", err)
	}
	if _, err := r.Add(TaskSpec{Task: mkTask("a", 40, 8, 2)}); !errors.Is(err, ErrDuplicateTask) {
		t.Errorf("duplicate add: %v", err)
	}
	bad := mkTask("z", 20, 8, 2)
	bad.Period = -5
	if _, err := r.Add(TaskSpec{Task: bad}); !errors.Is(err, task.ErrNonPositivePeriod) {
		t.Errorf("invalid task add: %v", err)
	}
	if got := len(r.Tasks()); got != 1 {
		t.Fatalf("failed adds changed the set: %d tasks", got)
	}
}

func TestRemove(t *testing.T) {
	r := mkRuntime(t, Options{})
	mustAdd(t, r, TaskSpec{Task: mkTask("a", 20, 8, 2)})
	mustAdd(t, r, TaskSpec{Task: mkTask("b", 40, 8, 4)})

	if _, err := r.Remove("ghost"); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("unknown remove: %v", err)
	}
	d, err := r.Remove("a")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Replanned || !d.DeepestOK {
		t.Errorf("remove decision %+v", d)
	}
	if got := r.Tasks(); len(got) != 1 || got[0].Task.Name != "b" {
		t.Fatalf("set after remove: %+v", got)
	}

	// Removing the last task leaves an idle runtime that still runs epochs.
	if _, err := r.Remove("b"); err != nil {
		t.Fatal(err)
	}
	rep, err := r.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Idle {
		t.Error("empty runtime epoch not idle")
	}
}

func TestOverloadValidation(t *testing.T) {
	r := mkRuntime(t, Options{})
	if _, err := r.Overload(sim.FaultRates{OverrunProb: 0.5}, 0); err == nil {
		t.Error("zero-epoch overload accepted")
	}
	if _, err := r.Overload(sim.FaultRates{OverrunProb: 1.5}, 3); err == nil {
		t.Error("invalid rates accepted")
	}
	if _, err := r.Overload(sim.FaultRates{OverrunProb: 0.5, OverrunFactor: 2}, 3); err != nil {
		t.Errorf("valid overload rejected: %v", err)
	}
}

// TestCleanEpochsNeverMiss: an admitted set (deepest profile passes
// Theorem 1) under EDF+ESR must not miss a deadline in any clean epoch —
// the guarantee the admission controller exists to protect.
func TestCleanEpochsNeverMiss(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		r := mkRuntime(t, Options{Seed: seed})
		mustAdd(t, r, TaskSpec{Task: mkTask("a", 20, 8, 2)})
		mustAdd(t, r, TaskSpec{Task: mkTask("b", 20, 14, 2)}) // admit-degraded
		mustAdd(t, r, TaskSpec{Task: mkTask("c", 40, 8, 4)})
		for i := 0; i < 50; i++ {
			rep, err := r.RunEpoch()
			if err != nil {
				t.Fatal(err)
			}
			if rep.Degraded {
				t.Fatalf("seed %d epoch %d: clean epoch marked degraded", seed, i)
			}
			if rep.Misses != 0 {
				t.Fatalf("seed %d epoch %d: %d misses in a clean epoch", seed, i, rep.Misses)
			}
		}
		if m := r.Metrics(); m.MissesClean != 0 || m.Misses != 0 {
			t.Fatalf("seed %d: metrics %+v", seed, m)
		}
	}
}

// TestOverloadShedsAndRestores drives the full governor arc: overload
// faults cause misses, the governor sheds accuracy (lowest criticality
// first), the shed set caps the damage, and after the overload clears the
// governor restores in LIFO order.
func TestOverloadShedsAndRestores(t *testing.T) {
	r := mkRuntime(t, Options{
		Seed: 3,
		Governor: GovernorConfig{
			Window: 2, ShedThreshold: 0.5, RestoreThreshold: 0.1, DwellEpochs: 1,
		},
	})
	mustAdd(t, r, TaskSpec{Task: mkTask("hi", 20, 8, 2), Criticality: 2})
	mustAdd(t, r, TaskSpec{Task: mkTask("lo", 20, 8, 2), Criticality: 1})
	mustAdd(t, r, TaskSpec{Task: mkTask("mid", 40, 8, 4), Criticality: 1})

	if _, err := r.Overload(sim.FaultRates{OverrunProb: 0.9, OverrunFactor: 4}, 12); err != nil {
		t.Fatal(err)
	}

	var firstShed string
	for i := 0; i < 12; i++ {
		rep, err := r.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Degraded {
			t.Fatalf("epoch %d inside overload window not degraded", i)
		}
		if rep.Action == ActionShed && firstShed == "" {
			firstShed = rep.ShedTask
		}
	}
	if firstShed == "" {
		t.Fatal("sustained overload never shed")
	}
	// Criticality 1 ties between "lo" and "mid"; name order breaks the tie.
	if firstShed != "lo" {
		t.Errorf("first victim %q, want lowest-criticality first alphabetical %q", firstShed, "lo")
	}

	// Overload has cleared; clean epochs must drain the window and restore
	// everything.
	for i := 0; i < 60 && len(r.ShedTasks()) > 0; i++ {
		if _, err := r.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.ShedTasks(); len(got) != 0 {
		t.Fatalf("shed set never drained: %v", got)
	}
	m := r.Metrics()
	if m.Sheds == 0 || m.Restores != m.Sheds {
		t.Errorf("sheds=%d restores=%d, want equal and positive", m.Sheds, m.Restores)
	}
	if m.MissesClean != 0 {
		t.Errorf("%d misses leaked outside degraded windows", m.MissesClean)
	}
}

// TestDigestDeterminismAcrossEngines: the same request sequence on the
// indexed and the linear-scan engine must produce identical digests after
// every epoch — the runtime inherits the simulator's bit-identity.
func TestDigestDeterminismAcrossEngines(t *testing.T) {
	run := func(engine sim.EngineKind) []uint64 {
		r := mkRuntime(t, Options{Seed: 11, Engine: engine,
			Governor: GovernorConfig{Window: 2, ShedThreshold: 0.5, RestoreThreshold: 0.1, DwellEpochs: 1}})
		mustAdd(t, r, TaskSpec{Task: mkTask("a", 20, 8, 2)})
		mustAdd(t, r, TaskSpec{Task: mkTask("b", 40, 8, 4), Criticality: 1})
		var digests []uint64
		for i := 0; i < 30; i++ {
			switch i {
			case 5:
				if _, err := r.Overload(sim.FaultRates{OverrunProb: 0.8, OverrunFactor: 3}, 8); err != nil {
					t.Fatal(err)
				}
			case 20:
				if _, err := r.Remove("b"); err != nil {
					t.Fatal(err)
				}
			case 21:
				mustAdd(t, r, TaskSpec{Task: mkTask("c", 20, 6, 3)})
			}
			if _, err := r.RunEpoch(); err != nil {
				t.Fatal(err)
			}
			digests = append(digests, r.Digest())
		}
		return digests
	}

	indexed := run(sim.EngineIndexed)
	linear := run(sim.EngineLinearScan)
	for i := range indexed {
		if indexed[i] != linear[i] {
			t.Fatalf("digest diverged at epoch %d: indexed %x, linear %x", i, indexed[i], linear[i])
		}
	}
	// And a different seed must not collide.
	other := mkRuntime(t, Options{Seed: 12})
	mustAdd(t, other, TaskSpec{Task: mkTask("a", 20, 8, 2)})
	if _, err := other.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if other.Digest() == indexed[0] {
		t.Error("different seeds produced identical digests")
	}
}

// TestPlanResilientReplans: under the resilient planner every admission
// change rebuilds through the degradation chain and records provenance;
// StartRung keeps it deterministic by skipping the wall-clock ILP rung.
func TestPlanResilientReplans(t *testing.T) {
	r := mkRuntime(t, Options{
		Planner:   PlanResilient,
		Resilient: ResilientConfig{StartRung: offline.RungFlippedEDF},
	})
	d := mustAdd(t, r, TaskSpec{Task: mkTask("a", 20, 8, 2)})
	if d.PlanRung != offline.RungFlippedEDF.String() {
		t.Fatalf("plan rung %q, want %q", d.PlanRung, offline.RungFlippedEDF)
	}
	pv := r.Provenance()
	if pv == nil || pv.Rung != offline.RungFlippedEDF || pv.Degraded {
		t.Fatalf("provenance %+v", pv)
	}
	rep, err := r.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Misses != 0 {
		t.Errorf("planned epoch missed %d deadlines", rep.Misses)
	}
	if m := r.Metrics(); m.Replans != 1 {
		t.Errorf("replans = %d, want 1", m.Replans)
	}
}

// TestShedPolicyForcesDeepest: while a task is shed, every one of its
// executions must be imprecise even when slack would have allowed accurate.
func TestShedPolicyForcesDeepest(t *testing.T) {
	r := mkRuntime(t, Options{Seed: 5})
	mustAdd(t, r, TaskSpec{Task: mkTask("only", 40, 8, 2)})
	// Force the shed by hand: huge slack means ESR would always run
	// accurate, so any imprecise execution proves the wrapper demoted it.
	r.shed = []string{"only"}
	rep, err := r.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Error("shed epoch not degraded")
	}
	if rep.Policy != "EDF+ESR+guard+shed" {
		t.Errorf("policy label %q", rep.Policy)
	}
	if rep.Jobs == 0 {
		t.Fatal("no jobs ran")
	}
	if rep.Accurate != 0 {
		t.Errorf("%d accurate executions while shed, want 0 (imprecise %d)", rep.Accurate, rep.Imprecise)
	}
}
