package runtime

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"nprt/internal/esr"
	"nprt/internal/rng"
	"nprt/internal/sim"
	"nprt/internal/task"
)

// CheckpointVersion is the snapshot format version. The policy is strict:
// a reader accepts exactly the versions it knows (currently only 1) and
// rejects everything else with ErrCheckpointVersion — silent best-effort
// decoding of a future format is how state corruption gets into a
// restarted scheduler. Additive format changes still bump the version.
const CheckpointVersion = 1

// Checkpoint errors.
var (
	// ErrCheckpointVersion rejects snapshots from an unknown format version.
	ErrCheckpointVersion = errors.New("runtime: unsupported checkpoint version")
	// ErrCheckpointCorrupt wraps every internal-consistency rejection.
	ErrCheckpointCorrupt = errors.New("runtime: corrupt checkpoint")
)

// Checkpoint is the versioned, serializable snapshot of a Runtime between
// two epochs. Restoring it yields a runtime whose subsequent epochs,
// decisions and digests are bit-identical to the snapshotted one's — the
// differential test in checkpoint_test.go holds the proof obligation.
//
// The ESR field carries the canonical slack table for the current set.
// Between epochs the online half of the tracker is always at its reset
// state (policies are Reset at the start of every sim.Run), so the table is
// recomputable from the task set; it is stored anyway and cross-checked on
// restore as a corruption tripwire for the task specs themselves.
type Checkpoint struct {
	Version int     `json:"version"`
	Options Options `json:"options"`

	Epoch int64      `json:"epoch"`
	Tasks []TaskSpec `json:"tasks"`
	Shed  []string   `json:"shed,omitempty"`

	OverloadLeft  int            `json:"overload_left,omitempty"`
	OverloadRates sim.FaultRates `json:"overload_rates,omitempty"`

	Governor GovernorState    `json:"governor"`
	RNG      rng.State        `json:"rng"`
	ESR      esr.TrackerState `json:"esr"`

	Digest  uint64  `json:"digest"`
	Metrics Metrics `json:"metrics"`
}

// Checkpoint snapshots the runtime. Call it only between epochs (which is
// the only place single-threaded callers can call it).
func (r *Runtime) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		Version:       CheckpointVersion,
		Options:       r.opt,
		Epoch:         r.epoch,
		Tasks:         r.Tasks(),
		Shed:          r.ShedTasks(),
		OverloadLeft:  r.overloadLeft,
		OverloadRates: r.overloadRates,
		Governor:      r.gov.State(),
		RNG:           r.root.State(),
		Digest:        r.digest,
		Metrics:       r.Metrics(), // governor action counters merged in
	}
	if r.set != nil {
		cp.ESR = esr.NewTracker(r.set).State()
	}
	return cp
}

// EncodeCheckpoint writes the snapshot as indented JSON.
func EncodeCheckpoint(w io.Writer, cp *Checkpoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cp)
}

// Restore reconstructs a runtime from a snapshot, validating every field —
// truncated, mutated or adversarial input must produce an error, never a
// panic and never a silently wrong runtime. The task set is re-validated
// through task.New, the plan is rebuilt (plans are derived state, not
// snapshot state), and the stored ESR slack table is cross-checked against
// recomputation.
func Restore(rd io.Reader) (*Runtime, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	var cp Checkpoint
	if err := dec.Decode(&cp); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}
	return FromCheckpoint(&cp)
}

// FromCheckpoint is Restore on an already-decoded snapshot.
func FromCheckpoint(cp *Checkpoint) (*Runtime, error) {
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("%w: %d (reader knows %d)",
			ErrCheckpointVersion, cp.Version, CheckpointVersion)
	}
	r, err := New(cp.Options)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}
	if cp.Epoch < 0 {
		return nil, fmt.Errorf("%w: negative epoch %d", ErrCheckpointCorrupt, cp.Epoch)
	}
	if err := cp.Metrics.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}

	// Task specs: individually valid, unique names, and jointly admissible
	// as a set.
	seen := make(map[string]bool, len(cp.Tasks))
	for i := range cp.Tasks {
		name := cp.Tasks[i].Task.Name
		if name == "" {
			return nil, fmt.Errorf("%w: task %d unnamed", ErrCheckpointCorrupt, i)
		}
		if seen[name] {
			return nil, fmt.Errorf("%w: duplicate task %q", ErrCheckpointCorrupt, name)
		}
		seen[name] = true
		if err := cp.Tasks[i].Task.Validate(); err != nil {
			return nil, fmt.Errorf("%w: task %q: %v", ErrCheckpointCorrupt, name, err)
		}
	}
	var set *task.Set
	if len(cp.Tasks) > 0 {
		ts := make([]task.Task, len(cp.Tasks))
		for i := range cp.Tasks {
			ts[i] = cp.Tasks[i].Task
		}
		set, err = task.New(ts)
		if err != nil {
			return nil, fmt.Errorf("%w: task set: %v", ErrCheckpointCorrupt, err)
		}
	}

	// Shed set: a subset of the admitted names, no duplicates.
	shedSeen := make(map[string]bool, len(cp.Shed))
	for _, n := range cp.Shed {
		if !seen[n] {
			return nil, fmt.Errorf("%w: shed task %q not admitted", ErrCheckpointCorrupt, n)
		}
		if shedSeen[n] {
			return nil, fmt.Errorf("%w: task %q shed twice", ErrCheckpointCorrupt, n)
		}
		shedSeen[n] = true
	}

	if cp.OverloadLeft < 0 {
		return nil, fmt.Errorf("%w: negative overload window %d", ErrCheckpointCorrupt, cp.OverloadLeft)
	}
	if cp.OverloadLeft > 0 {
		if err := cp.OverloadRates.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
		}
	}

	gov, err := GovernorFromState(r.opt.Governor, cp.Governor)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}
	root, err := rng.FromState(cp.RNG)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}

	// ESR cross-check: the stored slack table must match what the restored
	// task set implies. A mismatch means the specs or the table were
	// corrupted — either way the snapshot does not describe a runtime that
	// ever existed.
	if set != nil {
		want := esr.NewTracker(set).State()
		if len(cp.ESR.Slacks) != len(want.Slacks) {
			return nil, fmt.Errorf("%w: ESR slack table has %d entries for %d tasks",
				ErrCheckpointCorrupt, len(cp.ESR.Slacks), len(want.Slacks))
		}
		for i := range want.Slacks {
			if cp.ESR.Slacks[i] != want.Slacks[i] {
				return nil, fmt.Errorf("%w: ESR slack for task %d is %d, set implies %d",
					ErrCheckpointCorrupt, i, cp.ESR.Slacks[i], want.Slacks[i])
			}
		}
	} else if len(cp.ESR.Slacks) != 0 {
		return nil, fmt.Errorf("%w: ESR slack table without tasks", ErrCheckpointCorrupt)
	}

	// Rebuild the derived plan for the restored set.
	var d Decision
	if err := r.rebuild(cp.Tasks, set, &d); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}
	r.met = cp.Metrics // rebuild bumped Replans; the snapshot's counters win
	r.shed = append([]string(nil), cp.Shed...)
	r.overloadLeft = cp.OverloadLeft
	r.overloadRates = cp.OverloadRates
	r.gov = gov
	r.root = root
	r.epoch = cp.Epoch
	r.digest = cp.Digest
	return r, nil
}
