package runtime

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nprt/internal/sim"
	"nprt/internal/task"
)

// soakOptions is the configuration the checkpoint tests exercise:
// a governor twitchy enough to act within short runs.
func soakOptions(seed uint64) Options {
	return Options{
		Seed: seed,
		Governor: GovernorConfig{
			Window: 2, ShedThreshold: 0.5, RestoreThreshold: 0.1, DwellEpochs: 1,
		},
	}
}

// testTape is a small but eventful script: churn, a rejection, a stale
// remove, and an overload window that forces governor action.
func testTape() *Tape {
	spec := func(name string, p, w, x task.Time, crit int) *TaskSpec {
		t := mkTask(name, p, w, x)
		return &TaskSpec{Task: t, Criticality: crit}
	}
	return &Tape{Events: []Event{
		{Epoch: 0, Op: "add", Task: spec("a", 20, 8, 2, 2)},
		{Epoch: 0, Op: "add", Task: spec("b", 20, 8, 2, 1)},
		{Epoch: 2, Op: "add", Task: spec("fat", 10, 10, 9, 0)}, // rejected
		{Epoch: 3, Op: "remove", Name: "ghost"},                // stale: ErrUnknownTask
		{Epoch: 4, Op: "overload", Overload: &OverloadSpec{
			Rates: sim.FaultRates{OverrunProb: 0.9, OverrunFactor: 4}, Epochs: 8}},
		{Epoch: 16, Op: "remove", Name: "b"},
		{Epoch: 18, Op: "add", Task: spec("c", 40, 8, 4, 3)},
	}}
}

// tolerateStale lets Play continue over deterministic request errors the
// way the soak does; anything else still aborts.
func tolerateStale(_ Event, err error) error {
	if IsStaleRequest(err) {
		return nil
	}
	return err
}

func TestCheckpointRoundTrip(t *testing.T) {
	r := mkRuntime(t, soakOptions(9))
	if err := r.Play(testTape(), 12, nil, nil, tolerateStale); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := EncodeCheckpoint(&buf, r.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	r2, err := Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	if r2.Epoch() != r.Epoch() || r2.Digest() != r.Digest() {
		t.Fatalf("restored epoch/digest %d/%x, want %d/%x",
			r2.Epoch(), r2.Digest(), r.Epoch(), r.Digest())
	}
	if got, want := r2.Metrics(), r.Metrics(); got != want {
		t.Fatalf("restored metrics %+v, want %+v", got, want)
	}
	if got, want := r2.ShedTasks(), r.ShedTasks(); len(got) != len(want) {
		t.Fatalf("restored shed set %v, want %v", got, want)
	}
}

// TestKillRestoreDifferential is the tentpole proof obligation: kill the
// runtime at an arbitrary epoch, restore from the checkpoint, play the
// rest of the tape — the digest at every subsequent epoch must equal the
// uninterrupted run's. The kill point sweeps the whole horizon, so the cut
// lands inside overload windows, shed periods and churn alike.
func TestKillRestoreDifferential(t *testing.T) {
	const horizon = 24
	tape := testTape()

	// Reference: uninterrupted run, digest after every epoch.
	ref := mkRuntime(t, soakOptions(9))
	var refDigests []uint64
	if err := ref.Play(tape, horizon, func(EpochReport) {
		refDigests = append(refDigests, ref.Digest())
	}, nil, tolerateStale); err != nil {
		t.Fatal(err)
	}

	for kill := int64(1); kill < horizon; kill += 3 {
		r := mkRuntime(t, soakOptions(9))
		if err := r.Play(tape, kill, nil, nil, tolerateStale); err != nil {
			t.Fatal(err)
		}

		var buf bytes.Buffer
		if err := EncodeCheckpoint(&buf, r.Checkpoint()); err != nil {
			t.Fatal(err)
		}
		r2, err := Restore(&buf)
		if err != nil {
			t.Fatalf("kill@%d: restore: %v", kill, err)
		}

		epoch := r2.Epoch()
		if err := r2.Play(tape, horizon, func(rep EpochReport) {
			if want := refDigests[rep.Epoch]; r2.Digest() != want {
				t.Fatalf("kill@%d: digest diverged at epoch %d: %x, want %x",
					kill, rep.Epoch, r2.Digest(), want)
			}
		}, nil, tolerateStale); err != nil {
			t.Fatal(err)
		}
		if epoch != kill {
			t.Fatalf("kill@%d: restored at epoch %d", kill, epoch)
		}
		if r2.Digest() != ref.Digest() {
			t.Fatalf("kill@%d: final digest %x, want %x", kill, r2.Digest(), ref.Digest())
		}
	}
}

// TestRestoreRejectsCorrupt walks targeted corruptions of a valid
// snapshot; each must produce an error, never a panic, never a runtime.
func TestRestoreRejectsCorrupt(t *testing.T) {
	r := mkRuntime(t, soakOptions(9))
	if err := r.Play(testTape(), 10, nil, nil, tolerateStale); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeCheckpoint(&buf, r.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	reencode := func(mutate func(*Checkpoint)) string {
		var cp Checkpoint
		if err := json.Unmarshal([]byte(good), &cp); err != nil {
			t.Fatal(err)
		}
		mutate(&cp)
		out, err := json.Marshal(&cp)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}

	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"truncated", good[:len(good)/2]},
		{"not json", "][ nope"},
		{"unknown field", `{"version":1,"bogus":3}`},
		{"future version", reencode(func(cp *Checkpoint) { cp.Version = 99 })},
		{"negative epoch", reencode(func(cp *Checkpoint) { cp.Epoch = -4 })},
		{"zero rng", reencode(func(cp *Checkpoint) { cp.RNG.S = [4]uint64{} })},
		{"unnamed task", reencode(func(cp *Checkpoint) { cp.Tasks[0].Task.Name = "" })},
		{"invalid task", reencode(func(cp *Checkpoint) { cp.Tasks[0].Task.Period = -1 })},
		{"duplicate task", reencode(func(cp *Checkpoint) { cp.Tasks[1] = cp.Tasks[0] })},
		{"phantom shed", reencode(func(cp *Checkpoint) { cp.Shed = []string{"ghost"} })},
		{"double shed", reencode(func(cp *Checkpoint) { cp.Shed = []string{"a", "a"} })},
		{"negative overload", reencode(func(cp *Checkpoint) { cp.OverloadLeft = -1 })},
		{"bad overload rates", reencode(func(cp *Checkpoint) {
			cp.OverloadLeft = 2
			cp.OverloadRates.OverrunProb = 7
		})},
		{"governor window mismatch", reencode(func(cp *Checkpoint) { cp.Governor.Window = nil })},
		{"negative metric", reencode(func(cp *Checkpoint) { cp.Metrics.Jobs = -1 })},
		{"slack table mismatch", reencode(func(cp *Checkpoint) { cp.ESR.Slacks[0] += 1 })},
		{"slack table truncated", reencode(func(cp *Checkpoint) { cp.ESR.Slacks = cp.ESR.Slacks[:1] })},
		{"bad options", reencode(func(cp *Checkpoint) { cp.Options.Engine = 99 })},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Restore(strings.NewReader(c.in)); err == nil {
				t.Fatal("corrupt snapshot restored successfully")
			}
		})
	}

	// The pristine snapshot must still restore (the corruptions above were
	// real, not artifacts of re-encoding).
	if _, err := Restore(strings.NewReader(good)); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	if _, err := Restore(strings.NewReader(reencode(func(*Checkpoint) {}))); err != nil {
		t.Fatalf("re-encoded snapshot rejected: %v", err)
	}
}

// FuzzRestore: arbitrary bytes into Restore must error or produce a
// runtime that can immediately re-checkpoint — and never panic.
func FuzzRestore(f *testing.F) {
	r, err := New(soakOptions(9))
	if err != nil {
		f.Fatal(err)
	}
	if err := r.Play(testTape(), 10, nil, nil, tolerateStale); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeCheckpoint(&buf, r.Checkpoint()); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()

	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte("{}"))
	f.Add([]byte(`{"version":1}`))
	f.Add(bytes.Replace(good, []byte(`"epoch"`), []byte(`"epoxy"`), 1))
	f.Add(bytes.Replace(good, []byte("1"), []byte("-1"), 1))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Restore(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever restored must be internally consistent enough to
		// snapshot again and to run. The run check is skipped for
		// legitimately-huge configurations (a fuzzed snapshot may carry an
		// enormous epoch length — slow, not wrong).
		var out bytes.Buffer
		if err := EncodeCheckpoint(&out, r.Checkpoint()); err != nil {
			t.Fatalf("restored runtime cannot re-checkpoint: %v", err)
		}
		cheap := r.opt.EpochHyperperiods <= 8 &&
			(r.set == nil || r.set.Hyperperiod() <= 1<<20)
		if cheap {
			if _, err := r.RunEpoch(); err != nil {
				t.Fatalf("restored runtime cannot run: %v", err)
			}
		}
	})
}
