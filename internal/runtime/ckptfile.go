package runtime

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Checkpoint *files* wrap the JSON snapshot in a fixed header — magic,
// format version, payload length, CRC32C — so a truncated or bit-flipped
// file is rejected as ErrCorruptCheckpoint before the JSON decoder ever
// sees it (a raw decode error cannot distinguish "corrupt" from "not a
// checkpoint", and worse, a flipped digit inside a JSON number decodes
// fine). The durable Store keeps several generations and falls back to the
// previous good one when the newest fails this check.
//
// Layout: magic "NPRTCKP1" (8 bytes) · u32 LE file-format version ·
// u64 LE payload length · u32 LE CRC32C(payload) · payload (JSON).

// CheckpointFileVersion is the framed-file format version (independent of
// CheckpointVersion, which versions the JSON payload inside).
const CheckpointFileVersion = 1

const ckptHeaderSize = 24

var ckptMagic = [8]byte{'N', 'P', 'R', 'T', 'C', 'K', 'P', '1'}

// ErrCorruptCheckpoint reports file-level corruption of a framed
// checkpoint: bad magic, truncation, length mismatch, or checksum failure.
// (ErrCheckpointCorrupt, by contrast, reports a well-framed snapshot whose
// *content* is inconsistent.)
var ErrCorruptCheckpoint = errors.New("runtime: corrupt checkpoint file")

// FileCheckpoint is what a framed checkpoint file carries: the snapshot
// plus its durable-store cursor — the journal index the snapshot covers
// and the lifetime count of journaled events, which lets a tape-driven
// restart skip exactly the events it already applied.
type FileCheckpoint struct {
	WALIndex      uint64 `json:"wal_index"`
	EventsApplied uint64 `json:"events_applied"`
	// MaxSeq is the highest Event.Seq this store has journaled (0 when the
	// store has never seen sequenced events) — the cluster tape cursor.
	MaxSeq     uint64      `json:"max_seq,omitempty"`
	Checkpoint *Checkpoint `json:"checkpoint"`
}

// EncodeCheckpointFile frames one snapshot.
func EncodeCheckpointFile(fc *FileCheckpoint) ([]byte, error) {
	payload, err := json.MarshalIndent(fc, "", "  ")
	if err != nil {
		return nil, err
	}
	buf := make([]byte, ckptHeaderSize+len(payload))
	copy(buf, ckptMagic[:])
	binary.LittleEndian.PutUint32(buf[8:], CheckpointFileVersion)
	binary.LittleEndian.PutUint64(buf[12:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(buf[20:], crc32.Checksum(payload, castagnoliCkpt))
	copy(buf[ckptHeaderSize:], payload)
	return buf, nil
}

var castagnoliCkpt = crc32.MakeTable(crc32.Castagnoli)

// DecodeCheckpointFile validates the frame and payload checksum, then
// decodes and semantically validates the snapshot (FromCheckpoint rules
// apply — the returned FileCheckpoint is only handed out after the
// embedded checkpoint restored successfully).
//
// A payload that begins with '{' where the magic should be is accepted as
// a legacy unframed checkpoint (pre-journal snapshots), so old state files
// still restore; they just lack the corruption tripwire.
func DecodeCheckpointFile(data []byte) (*FileCheckpoint, *Runtime, error) {
	if len(data) > 0 && data[0] == '{' {
		// Legacy raw-JSON snapshot: no cursor, journal starts from zero.
		r, err := Restore(bytes.NewReader(data))
		if err != nil {
			return nil, nil, err
		}
		cp := r.Checkpoint()
		return &FileCheckpoint{Checkpoint: cp}, r, nil
	}
	if len(data) < ckptHeaderSize {
		return nil, nil, fmt.Errorf("%w: %d bytes is shorter than the header", ErrCorruptCheckpoint, len(data))
	}
	if [8]byte(data[:8]) != ckptMagic {
		return nil, nil, fmt.Errorf("%w: bad magic", ErrCorruptCheckpoint)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != CheckpointFileVersion {
		return nil, nil, fmt.Errorf("%w: file version %d (reader knows %d)",
			ErrCheckpointVersion, v, CheckpointFileVersion)
	}
	n := binary.LittleEndian.Uint64(data[12:])
	if n != uint64(len(data)-ckptHeaderSize) {
		return nil, nil, fmt.Errorf("%w: header says %d payload bytes, file has %d",
			ErrCorruptCheckpoint, n, len(data)-ckptHeaderSize)
	}
	payload := data[ckptHeaderSize:]
	if crc32.Checksum(payload, castagnoliCkpt) != binary.LittleEndian.Uint32(data[20:]) {
		return nil, nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptCheckpoint)
	}
	var fc FileCheckpoint
	if err := json.Unmarshal(payload, &fc); err != nil {
		// The checksum passed, so this is a writer bug, not bit rot — but
		// the caller's recovery (fall back a generation) is the same.
		return nil, nil, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, err)
	}
	if fc.Checkpoint == nil {
		return nil, nil, fmt.Errorf("%w: no snapshot in payload", ErrCorruptCheckpoint)
	}
	r, err := FromCheckpoint(fc.Checkpoint)
	if err != nil {
		return nil, nil, err
	}
	return &fc, r, nil
}

// ReadCheckpointFile loads and validates one framed checkpoint file.
func ReadCheckpointFile(path string) (*FileCheckpoint, *Runtime, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return DecodeCheckpointFile(data)
}

// WriteCheckpointFile frames and writes a snapshot atomically and durably:
// temp file in the same directory, write, fsync, rename, fsync directory.
// afterSync (optional) fires after each of the two fsyncs — the crash-point
// hook, shared with the journal.
func WriteCheckpointFile(path string, fc *FileCheckpoint, afterSync func()) error {
	buf, err := EncodeCheckpointFile(fc)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	cleanup := func() { tmp.Close(); os.Remove(tmp.Name()) }
	if _, err := tmp.Write(buf); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if afterSync != nil {
		afterSync()
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	if err := d.Close(); err != nil {
		return err
	}
	if afterSync != nil {
		afterSync()
	}
	return nil
}
