package runtime

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nprt/internal/sim"
	"nprt/internal/task"
)

// storeTape builds a small but eventful tape: admissions, a rejection, an
// overload window, removals (one stale), and enough epochs after the last
// event for governor activity to settle.
func storeTape() *Tape {
	spec := func(name string, p, w, x task.Time, crit int) *TaskSpec {
		t := mkTask(name, p, w, x)
		return &TaskSpec{Task: t, Criticality: crit}
	}
	return &Tape{Events: []Event{
		{Epoch: 0, Op: "add", Task: spec("a", 20, 6, 2, 2)},
		{Epoch: 1, Op: "add", Task: spec("b", 40, 10, 3, 0)},
		{Epoch: 2, Op: "add", Task: spec("c", 40, 12, 4, 1)},
		{Epoch: 3, Op: "overload", Overload: &OverloadSpec{
			Rates:  sim.FaultRates{OverrunProb: 0.3, OverrunFactor: 3},
			Epochs: 4,
		}},
		{Epoch: 5, Op: "remove", Name: "ghost"}, // stale: never admitted
		{Epoch: 6, Op: "remove", Name: "b"},
		{Epoch: 7, Op: "add", Task: spec("d", 20, 18, 2, 3)}, // degraded or rejected
		{Epoch: 8, Op: "add", Task: spec("a", 20, 6, 2, 2)},  // stale: duplicate
	}}
}

const storeHorizon = 12

// playStore drives a store over the tape to the horizon, checkpointing
// every 3 epochs, tolerating stale requests.
func playStore(s *Store, tp *Tape) error {
	return s.PlayTape(tp, storeHorizon, func(rep EpochReport) {
		if rep.Epoch%3 == 2 {
			if _, err := s.Checkpoint(); err != nil {
				panic(fmt.Sprintf("checkpoint: %v", err))
			}
		}
	}, nil, func(ev Event, err error) error {
		if IsStaleRequest(err) {
			return nil
		}
		return err
	})
}

// uncrashedDigest plays the tape on a fresh store and returns the final
// digest, cross-checked against a plain in-memory runtime: journaling must
// be invisible to the run identity.
func uncrashedDigest(t *testing.T, opt StoreOptions) uint64 {
	t.Helper()
	tp := storeTape()

	s, err := OpenStore(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := playStore(s, tp); err != nil {
		t.Fatal(err)
	}
	durable := s.Digest()
	s.Close()

	r := mkRuntime(t, opt.Runtime)
	err = r.Play(tp, storeHorizon, nil, nil, func(ev Event, err error) error {
		if IsStaleRequest(err) {
			return nil
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Digest() != durable {
		t.Fatalf("durable digest %016x != in-memory digest %016x — journaling changed the run",
			durable, r.Digest())
	}
	return durable
}

func TestStoreUncrashedMatchesInMemory(t *testing.T) {
	uncrashedDigest(t, StoreOptions{NoSync: true})
}

func TestStoreReopenResumes(t *testing.T) {
	dir := t.TempDir()
	tp := storeTape()
	opt := StoreOptions{NoSync: true}
	want := uncrashedDigest(t, opt)

	// Run to epoch 5, close cleanly, reopen, finish.
	s, err := OpenStore(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PlayTape(tp, 5, nil, nil, tolerateStale); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s, err = OpenStore(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	rec := s.Recovery()
	if rec.Epoch != 5 {
		t.Fatalf("recovered to epoch %d, want 5 (%+v)", rec.Epoch, rec)
	}
	if rec.ReplayedEvents == 0 && rec.ReplayedEpochs == 0 && rec.FromCheckpoint == "" {
		t.Fatalf("recovery found nothing: %+v", rec)
	}
	if err := playStore(s, tp); err != nil {
		t.Fatal(err)
	}
	if s.Digest() != want {
		t.Fatalf("resumed digest %016x, uncrashed %016x", s.Digest(), want)
	}
	s.Close()
}

// crashNow is the sentinel the in-process crash sweep panics with.
type crashNow struct{ point int }

// TestStoreCrashSweep is the in-process half of the acceptance criterion:
// kill the store (via a panic out of the fsync hook) at EVERY durability
// boundary along the tape, reopen, finish the run, and require the final
// digest to be bit-identical to the uncrashed run's. The process-level
// half (SIGKILL between fsyncs, both engines) lives in cmd/impserve's
// sweep mode and the e2e test.
func TestStoreCrashSweep(t *testing.T) {
	for _, eng := range []sim.EngineKind{sim.EngineIndexed, sim.EngineLinearScan} {
		t.Run(fmt.Sprintf("engine=%d", eng), func(t *testing.T) {
			opt := StoreOptions{Runtime: Options{Engine: eng}}
			want := uncrashedDigest(t, opt)

			// Count the fsync boundaries of an uncrashed run.
			total := 0
			countOpt := opt
			countOpt.AfterSync = func() { total++ }
			s, err := OpenStore(t.TempDir(), countOpt)
			if err != nil {
				t.Fatal(err)
			}
			if err := playStore(s, storeTape()); err != nil {
				t.Fatal(err)
			}
			s.Close()
			if total < 20 {
				t.Fatalf("only %d fsync boundaries — the tape is not exercising the WAL", total)
			}

			for point := 1; point <= total; point++ {
				point := point
				t.Run(fmt.Sprintf("kill@%d", point), func(t *testing.T) {
					dir := t.TempDir()
					crashOpt := opt
					n := 0
					crashOpt.AfterSync = func() {
						n++
						if n == point {
							panic(crashNow{point})
						}
					}

					func() {
						defer func() {
							r := recover()
							if r == nil {
								t.Fatalf("kill point %d never reached (total %d)", point, total)
							}
							if _, ok := r.(crashNow); !ok {
								panic(r)
							}
						}()
						s, err := OpenStore(dir, crashOpt)
						if err != nil {
							t.Fatal(err)
						}
						// No Close: a crash leaks the fd, exactly like a
						// real kill. The reopen below works regardless.
						_ = playStore(s, storeTape())
						t.Fatalf("run with kill point %d finished without crashing", point)
					}()

					s, err := OpenStore(dir, opt)
					if err != nil {
						t.Fatalf("recovery after kill %d: %v", point, err)
					}
					if err := playStore(s, storeTape()); err != nil {
						t.Fatalf("resume after kill %d: %v", point, err)
					}
					if s.Digest() != want {
						t.Errorf("kill point %d: digest %016x, uncrashed %016x",
							point, s.Digest(), want)
					}
					s.Close()
				})
			}
		})
	}
}

// TestStoreCheckpointFallback corrupts the newest checkpoint generation
// and requires recovery to fall back to the previous good one and still
// reach the uncrashed digest.
func TestStoreCheckpointFallback(t *testing.T) {
	dir := t.TempDir()
	opt := StoreOptions{NoSync: true, Generations: 3}
	want := uncrashedDigest(t, opt)

	s, err := OpenStore(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PlayTape(storeTape(), 9, func(rep EpochReport) {
		if _, err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}, nil, tolerateStale); err != nil {
		t.Fatal(err)
	}
	s.Close()

	paths, err := listCheckpoints(dir)
	if err != nil || len(paths) < 2 {
		t.Fatalf("need ≥2 checkpoint generations, have %d (%v)", len(paths), err)
	}
	// Flip one bit inside the newest generation's payload.
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0x04
	if err := os.WriteFile(paths[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err = OpenStore(dir, opt)
	if err != nil {
		t.Fatalf("recovery with corrupt newest checkpoint: %v", err)
	}
	rec := s.Recovery()
	if rec.CheckpointFallbacks != 1 {
		t.Errorf("fallbacks %d, want 1 (%+v)", rec.CheckpointFallbacks, rec)
	}
	if rec.FromCheckpoint != paths[1] {
		t.Errorf("recovered from %s, want %s", rec.FromCheckpoint, paths[1])
	}
	if err := playStore(s, storeTape()); err != nil {
		t.Fatal(err)
	}
	if s.Digest() != want {
		t.Fatalf("fallback digest %016x, uncrashed %016x", s.Digest(), want)
	}
	s.Close()
}

// TestStoreRejectsWrongTape: the persisted event cursor must catch a
// restart against a shorter (wrong) tape.
func TestStoreRejectsWrongTape(t *testing.T) {
	dir := t.TempDir()
	opt := StoreOptions{NoSync: true}
	s, err := OpenStore(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := playStore(s, storeTape()); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s, err = OpenStore(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	short := &Tape{Events: storeTape().Events[:2]}
	if err := s.PlayTape(short, storeHorizon+5, nil, nil, tolerateStale); err == nil ||
		!strings.Contains(err.Error(), "wrong tape") {
		t.Fatalf("short tape accepted: %v", err)
	}
}

// TestStoreReplayDivergence: a journal whose epoch record lies about the
// digest must be refused with ErrReplayDivergence, not silently served.
func TestStoreReplayDivergence(t *testing.T) {
	dir := t.TempDir()
	opt := StoreOptions{NoSync: true}
	s, err := OpenStore(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PlayTape(storeTape(), 4, nil, nil, tolerateStale); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Corrupt a digest inside an epoch record — but re-frame it so the
	// CRC is valid (simulating code-version skew rather than bit rot).
	// Easiest valid-CRC mutation: replay against a different seed.
	opt2 := opt
	opt2.Runtime.Seed = 999
	if _, err := OpenStore(dir, opt2); !errors.Is(err, ErrReplayDivergence) {
		t.Fatalf("divergent replay error %v, want ErrReplayDivergence", err)
	}
}

// TestCheckpointFileCorruption is the satellite's contract on the framed
// format itself: truncation and bit flips anywhere must come back as
// ErrCorruptCheckpoint (or the version error), never a raw JSON error or
// a silently-wrong runtime.
func TestCheckpointFileCorruption(t *testing.T) {
	r := mkRuntime(t, Options{})
	mustAdd(t, r, TaskSpec{Task: mkTask("a", 20, 6, 2)})
	if _, err := r.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	fc := &FileCheckpoint{WALIndex: 7, EventsApplied: 1, Checkpoint: r.Checkpoint()}
	path := filepath.Join(t.TempDir(), "x.ckpt")
	if err := WriteCheckpointFile(path, fc, nil); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Round trip.
	fc2, rt2, err := DecodeCheckpointFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if fc2.WALIndex != 7 || fc2.EventsApplied != 1 || rt2.Digest() != r.Digest() {
		t.Fatalf("round trip changed state: %+v digest %016x want %016x",
			fc2, rt2.Digest(), r.Digest())
	}

	for name, mutate := range map[string]func([]byte) []byte{
		"truncated-header":  func(b []byte) []byte { return b[:10] },
		"truncated-payload": func(b []byte) []byte { return b[:len(b)-30] },
		"empty":             func(b []byte) []byte { return nil },
		"bad-magic":         func(b []byte) []byte { b[0] ^= 0xff; return b },
		"bit-flip-payload":  func(b []byte) []byte { b[len(b)-40] ^= 0x10; return b },
		"bit-flip-length":   func(b []byte) []byte { b[13] ^= 0x01; return b },
	} {
		t.Run(name, func(t *testing.T) {
			data := mutate(append([]byte(nil), good...))
			_, _, err := DecodeCheckpointFile(data)
			if !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("corrupt file (%s) returned %v, want ErrCorruptCheckpoint", name, err)
			}
		})
	}

	// Unknown file-format version is the version error, not corruption.
	vdata := append([]byte(nil), good...)
	vdata[8] = 99
	if _, _, err := DecodeCheckpointFile(vdata); !errors.Is(err, ErrCheckpointVersion) {
		t.Fatalf("future version returned %v, want ErrCheckpointVersion", err)
	}

	// Legacy raw-JSON snapshots still restore.
	var legacy strings.Builder
	if err := EncodeCheckpoint(&legacy, r.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	_, rt3, err := DecodeCheckpointFile([]byte(legacy.String()))
	if err != nil {
		t.Fatalf("legacy snapshot rejected: %v", err)
	}
	if rt3.Digest() != r.Digest() {
		t.Fatalf("legacy restore digest %016x, want %016x", rt3.Digest(), r.Digest())
	}
}
