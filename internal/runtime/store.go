package runtime

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"nprt/internal/journal"
)

// Store is the durable, crash-only wrapper around a Runtime: every state
// mutation is journaled to a write-ahead log *before* it is applied, and
// periodic checkpoints fold the sealed journal prefix into a framed
// snapshot. Killing the process at any instruction and reopening the store
// recovers a runtime bit-identical to one that was never killed — the
// crash-point sweep in cmd/impserve holds that proof obligation at every
// fsync boundary.
//
// The write-ahead discipline per mutation kind:
//
//   - requests (add/remove/overload): validate → journal → fsync → apply.
//     A crash after the fsync replays the request on recovery; a crash
//     before it never happened. Either way the journal and the state agree.
//   - epochs: run → journal {epoch, digest, governor action} → fsync.
//     An epoch is a pure function of the state before it, so a crash
//     mid-epoch (or before the record lands) simply reruns it on recovery
//     and must reproduce the recorded digest — the replay cross-checks
//     this, turning silent divergence (bit rot, version skew) into a
//     structured ErrReplayDivergence.
//   - checkpoints: framed snapshot (see ckptfile.go) written atomically,
//     then the journal is compacted to the snapshot's index. The snapshot
//     names the last journal index it covers, so recovery = newest good
//     checkpoint + replay of the records past it.
//
// Layout under the store directory:
//
//	wal/seg-*.wal          journal segments
//	ckpt-<index>.ckpt      framed snapshots, named by covered journal index
//
// A Store, like the Runtime it wraps, is not safe for concurrent use.
type Store struct {
	dir string
	opt StoreOptions

	rt  *Runtime
	wal *journal.Writer
	gc  *journal.GroupCommitter

	eventsApplied uint64 // lifetime count of journaled requests
	maxSeq        uint64 // highest Event.Seq journaled (cluster tape cursor)
	rec           RecoveryInfo
}

// StoreOptions parameterizes OpenStore.
type StoreOptions struct {
	// Runtime configures a fresh runtime when no checkpoint exists.
	Runtime Options
	// SegmentBytes is the journal rotation threshold (journal.Options).
	SegmentBytes int64
	// Generations is how many checkpoint files to keep (≥1; default 2).
	// The extras are the fallback chain when the newest is corrupt.
	Generations int
	// AfterSync fires after every fsync the store performs — journal
	// segments, checkpoint temp files, directory entries. The crash-point
	// sweep kills the process inside this hook.
	AfterSync func()
	// NoSync disables fsync (fast tests; no durability).
	NoSync bool
	// Inject, when non-nil, intercepts the journal's writes and fsyncs for
	// deterministic storage-fault injection (journal.FaultFS). Checkpoint
	// files are not injected: the WAL is the durability-critical path, and
	// a lost checkpoint only costs replay distance, never state.
	Inject journal.Injector
	// CommitBatch caps the records per commit group
	// (journal.GroupOptions.MaxBatch; default 64).
	CommitBatch int
	// CommitDelay is the group-commit stall window
	// (journal.GroupOptions.MaxDelay; 0 defaults to 500µs, negative
	// disables the stall).
	CommitDelay time.Duration
	// Clock supplies time for the journal's per-op latency capture
	// (journal.Options.Clock). Defaults to the wall clock.
	Clock journal.Clock
	// Observe, when non-nil, receives the sojourn of every WAL write
	// (sync=false) and fsync (sync=true) — the latency-health feed.
	Observe func(sync bool, d time.Duration)
}

func (o StoreOptions) withDefaults() StoreOptions {
	if o.Generations <= 0 {
		o.Generations = 2
	}
	return o
}

// RecoveryInfo reports what OpenStore found and rebuilt.
type RecoveryInfo struct {
	// FromCheckpoint is the path of the snapshot used, "" when none.
	FromCheckpoint string `json:"from_checkpoint,omitempty"`
	// CheckpointFallbacks counts newer snapshots rejected as corrupt
	// before a good one was found.
	CheckpointFallbacks int `json:"checkpoint_fallbacks,omitempty"`
	// ReplayedEvents / ReplayedEpochs count journal records re-applied.
	ReplayedEvents int `json:"replayed_events"`
	ReplayedEpochs int `json:"replayed_epochs"`
	// Epoch and Digest are the recovered runtime position.
	Epoch  int64  `json:"epoch"`
	Digest uint64 `json:"digest"`
}

// ErrReplayDivergence reports that rerunning a journaled epoch produced a
// different digest than the journal recorded — the store's data does not
// describe a run that ever happened (corruption the checksums cannot see,
// or a code-version skew), so recovery must stop rather than serve it.
var ErrReplayDivergence = errors.New("runtime: journal replay diverged from recorded state")

// epochRecord is the TypeEpoch payload: the epoch's identity plus the
// governor transition it triggered, cross-checked on replay.
type epochRecord struct {
	Epoch    int64  `json:"epoch"`
	Seed     uint64 `json:"seed"`
	Digest   uint64 `json:"digest"`
	Action   string `json:"action,omitempty"`
	Shed     string `json:"shed,omitempty"`
	Restored string `json:"restored,omitempty"`
}

// markRecord is the TypeMark payload (observability only).
type markRecord struct {
	Epoch    int64  `json:"epoch"`
	WALIndex uint64 `json:"wal_index"`
}

const ckptSuffix = ".ckpt"

// ckptName formats a checkpoint file name from the journal index it
// covers; fixed-width hex keeps lexicographic order equal to recency.
func ckptName(idx uint64) string {
	return fmt.Sprintf("ckpt-%016x%s", idx, ckptSuffix)
}

// listCheckpoints returns checkpoint paths, newest first.
func listCheckpoints(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "ckpt-") && strings.HasSuffix(e.Name(), ckptSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	paths := make([]string, len(names))
	for i, n := range names {
		paths[i] = filepath.Join(dir, n)
	}
	return paths, nil
}

// OpenStore recovers (or initializes) the durable runtime in dir:
// newest good checkpoint — falling back a generation when one is corrupt —
// plus a replay of every journal record past it, digest-cross-checked.
func OpenStore(dir string, opt StoreOptions) (*Store, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	s := &Store{dir: dir, opt: opt}

	// 1. Newest good checkpoint, if any.
	var fc *FileCheckpoint
	paths, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	for _, p := range paths {
		cand, rt, err := ReadCheckpointFile(p)
		if err != nil {
			// Corrupt or unreadable generation: fall back to the previous
			// one. This is the crash-only bargain — a torn checkpoint
			// write costs one generation of replay distance, never the
			// store.
			s.rec.CheckpointFallbacks++
			continue
		}
		fc, s.rt = cand, rt
		s.rec.FromCheckpoint = p
		break
	}
	if s.rt == nil {
		rt, err := New(opt.Runtime)
		if err != nil {
			return nil, err
		}
		s.rt = rt
		fc = &FileCheckpoint{}
	}
	s.eventsApplied = fc.EventsApplied
	s.maxSeq = fc.MaxSeq

	// 2. Journal: repair (truncate torn tail, drop unreachable segments)
	// and position for append.
	wal, err := journal.Open(filepath.Join(dir, "wal"), journal.Options{
		SegmentBytes: opt.SegmentBytes,
		AfterSync:    opt.AfterSync,
		NoSync:       opt.NoSync,
		Inject:       opt.Inject,
		Clock:        opt.Clock,
		Observe:      opt.Observe,
	})
	if err != nil {
		return nil, err
	}
	s.wal = wal
	if wal.LastIndex() < fc.WALIndex {
		// The journal ends before the checkpoint's coverage: its tail was
		// lost (or the whole log was). Everything missing is inside the
		// snapshot, so nothing is gone — but appends must continue the
		// index sequence the snapshot expects.
		if err := wal.Reset(fc.WALIndex); err != nil {
			wal.Close()
			return nil, err
		}
	}
	// All request/epoch journaling goes through the group committer: a lone
	// caller degenerates to Append+Sync, concurrent admissions (ApplyBatch,
	// or Commit callers racing) share multi-record writes and fsyncs.
	s.gc = journal.NewGroupCommitter(wal, journal.GroupOptions{
		MaxBatch: opt.CommitBatch,
		MaxDelay: opt.CommitDelay,
	})

	// 3. Replay the suffix, write-ahead semantics in reverse: requests are
	// re-applied, epochs are re-run and must reproduce their recorded
	// digests.
	_, err = journal.Replay(filepath.Join(dir, "wal"), fc.WALIndex, func(r journal.Record) error {
		switch r.Type {
		case journal.TypeEvent:
			var ev Event
			if err := json.Unmarshal(r.Payload, &ev); err != nil {
				return fmt.Errorf("record %d: %w", r.Index, err)
			}
			s.eventsApplied++
			if ev.Seq > s.maxSeq {
				s.maxSeq = ev.Seq
			}
			s.rec.ReplayedEvents++
			if _, err := s.rt.Apply(ev); err != nil && !IsStaleRequest(err) {
				return fmt.Errorf("record %d: %w", r.Index, err)
			}
			return nil
		case journal.TypeEpoch:
			var er epochRecord
			if err := json.Unmarshal(r.Payload, &er); err != nil {
				return fmt.Errorf("record %d: %w", r.Index, err)
			}
			rep, err := s.rt.RunEpoch()
			if err != nil {
				return fmt.Errorf("record %d: %w", r.Index, err)
			}
			s.rec.ReplayedEpochs++
			if rep.Epoch != er.Epoch || s.rt.Digest() != er.Digest {
				return fmt.Errorf("%w: record %d says epoch %d digest %016x, replay produced epoch %d digest %016x",
					ErrReplayDivergence, r.Index, er.Epoch, er.Digest, rep.Epoch, s.rt.Digest())
			}
			return nil
		default: // TypeMark: informational
			return nil
		}
	})
	if err != nil {
		wal.Close()
		return nil, err
	}
	s.rec.Epoch = s.rt.Epoch()
	s.rec.Digest = s.rt.Digest()
	return s, nil
}

// InspectStore rebuilds the runtime a recovery of dir would produce —
// newest good checkpoint plus a replay of the journal suffix — WITHOUT
// opening the journal for append or repairing it. This is the
// checkpoint-handoff export path: a failed shard's last durable task state
// can be read even while its writer is wedged (the injector only
// intercepts writer I/O; reads go straight to the files), and reading
// never races an appender because the caller has already fenced the shard.
// A torn journal tail simply ends the replay, exactly where Open's repair
// would truncate.
func InspectStore(dir string, opt StoreOptions) (*Runtime, error) {
	opt = opt.withDefaults()
	var rt *Runtime
	fc := &FileCheckpoint{}
	paths, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	for _, p := range paths {
		cand, r, err := ReadCheckpointFile(p)
		if err != nil {
			continue
		}
		fc, rt = cand, r
		break
	}
	if rt == nil {
		r, err := New(opt.Runtime)
		if err != nil {
			return nil, err
		}
		rt = r
	}
	_, err = journal.Replay(filepath.Join(dir, "wal"), fc.WALIndex, func(r journal.Record) error {
		switch r.Type {
		case journal.TypeEvent:
			var ev Event
			if err := json.Unmarshal(r.Payload, &ev); err != nil {
				return fmt.Errorf("record %d: %w", r.Index, err)
			}
			if _, err := rt.Apply(ev); err != nil && !IsStaleRequest(err) {
				return fmt.Errorf("record %d: %w", r.Index, err)
			}
		case journal.TypeEpoch:
			var er epochRecord
			if err := json.Unmarshal(r.Payload, &er); err != nil {
				return fmt.Errorf("record %d: %w", r.Index, err)
			}
			rep, err := rt.RunEpoch()
			if err != nil {
				return fmt.Errorf("record %d: %w", r.Index, err)
			}
			if rep.Epoch != er.Epoch || rt.Digest() != er.Digest {
				return fmt.Errorf("%w: record %d says epoch %d digest %016x, replay produced epoch %d digest %016x",
					ErrReplayDivergence, r.Index, er.Epoch, er.Digest, rep.Epoch, rt.Digest())
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rt, nil
}

// Runtime exposes the recovered runtime (read-only use; mutate through the
// store or the journal will miss the mutation).
func (s *Store) Runtime() *Runtime { return s.rt }

// Recovery reports what OpenStore rebuilt.
func (s *Store) Recovery() RecoveryInfo { return s.rec }

// EventsApplied returns the lifetime count of journaled requests — the
// tape cursor for tape-driven drivers.
func (s *Store) EventsApplied() uint64 { return s.eventsApplied }

// MaxSeq returns the highest Event.Seq this store has journaled — the
// per-shard cluster tape cursor, persisted through WAL replay and
// checkpoints. Zero when the store has never seen sequenced events.
func (s *Store) MaxSeq() uint64 { return s.maxSeq }

// LastIndex returns the journal position (last appended record index).
func (s *Store) LastIndex() uint64 { return s.wal.LastIndex() }

// Epoch and Digest proxy the runtime's position.
func (s *Store) Epoch() int64   { return s.rt.Epoch() }
func (s *Store) Digest() uint64 { return s.rt.Digest() }

// Apply journals the request, makes it durable, then applies it. A request
// that fails structural validation is rejected before it touches the
// journal (it would poison every future replay); stale-request errors
// happen after journaling, exactly as they would on replay.
func (s *Store) Apply(ev Event) (Decision, error) {
	if err := ev.Validate(); err != nil {
		return Decision{Op: ev.Op}, err
	}
	payload, err := json.Marshal(ev)
	if err != nil {
		return Decision{Op: ev.Op}, err
	}
	if _, err := s.gc.Commit(journal.TypeEvent, payload); err != nil {
		return Decision{Op: ev.Op}, err
	}
	s.eventsApplied++
	if ev.Seq > s.maxSeq {
		s.maxSeq = ev.Seq
	}
	return s.rt.Apply(ev)
}

// ApplyBatch journals every structurally valid event of the batch under ONE
// multi-record write and ONE covering fsync, then applies them in order —
// the group-commit ingest path: N admissions, ~1 disk sync. Per-event
// results come back positionally: decs[i]/errs[i] mirror evs[i], where
// errs[i] is a validation or stale-request rejection of that event alone.
// The returned error is fatal (journal write/sync failure, or an apply
// error replay would also refuse): the batch's durability or the store's
// integrity is in doubt and the caller must stop.
//
// Ordering is exactly serial Apply semantics: invalid events are rejected
// before touching the journal, valid ones land in the journal in slice
// order and are applied in that same order after the covering sync.
func (s *Store) ApplyBatch(evs []Event) ([]Decision, []error, error) {
	decs := make([]Decision, len(evs))
	errs := make([]error, len(evs))
	recs := make([]journal.Pending, 0, len(evs))
	idx := make([]int, 0, len(evs)) // positions of journaled events
	for i := range evs {
		decs[i] = Decision{Op: evs[i].Op}
		if err := evs[i].Validate(); err != nil {
			errs[i] = err
			continue
		}
		payload, err := json.Marshal(evs[i])
		if err != nil {
			errs[i] = err
			continue
		}
		recs = append(recs, journal.Pending{Type: journal.TypeEvent, Payload: payload})
		idx = append(idx, i)
	}
	if len(recs) == 0 {
		return decs, errs, nil
	}
	if _, err := s.gc.CommitAll(recs); err != nil {
		return decs, errs, err
	}
	s.eventsApplied += uint64(len(recs))
	for _, i := range idx {
		if evs[i].Seq > s.maxSeq {
			s.maxSeq = evs[i].Seq
		}
	}
	for _, i := range idx {
		d, err := s.rt.Apply(evs[i])
		if err != nil {
			if IsStaleRequest(err) {
				errs[i] = err
				continue
			}
			// A journaled event replay would also fail on: recovery and the
			// live state have diverged, stop before serving either.
			return decs, errs, err
		}
		decs[i] = d
	}
	return decs, errs, nil
}

// CommitStats reports the group committer's amortization counters
// (records per sync, stalls, sealed groups) for /state observability.
func (s *Store) CommitStats() journal.GroupStats { return s.gc.Stats() }

// RunEpoch runs one epoch and journals its result (epoch number, digest,
// governor transition). The record is the epoch's commit: recovery re-runs
// any epoch whose record did not land, and cross-checks the digest of any
// that did.
func (s *Store) RunEpoch() (EpochReport, error) {
	rep, err := s.rt.RunEpoch()
	if err != nil {
		return rep, err
	}
	payload, err := json.Marshal(epochRecord{
		Epoch:    rep.Epoch,
		Seed:     rep.Seed,
		Digest:   s.rt.Digest(),
		Action:   rep.ActionName,
		Shed:     rep.ShedTask,
		Restored: rep.RestoredTask,
	})
	if err != nil {
		return rep, err
	}
	_, err = s.gc.Commit(journal.TypeEpoch, payload)
	return rep, err
}

// Checkpoint writes a framed snapshot covering the journal so far, prunes
// old generations beyond Generations, and compacts sealed journal
// segments the snapshot made redundant. Crash-safe at every step: the
// snapshot write is atomic, pruning and compaction only destroy data the
// new snapshot already covers.
func (s *Store) Checkpoint() (string, error) {
	idx := s.wal.LastIndex()
	path := filepath.Join(s.dir, ckptName(idx))
	fc := &FileCheckpoint{
		WALIndex:      idx,
		EventsApplied: s.eventsApplied,
		MaxSeq:        s.maxSeq,
		Checkpoint:    s.rt.Checkpoint(),
	}
	sync := s.opt.AfterSync
	if s.opt.NoSync {
		sync = nil
	}
	if err := writeCheckpointMaybeSync(path, fc, sync, s.opt.NoSync); err != nil {
		return "", err
	}

	// Mark the checkpoint in the log (observability; replay ignores it).
	if payload, err := json.Marshal(markRecord{Epoch: s.rt.Epoch(), WALIndex: idx}); err == nil {
		if _, err := s.gc.Commit(journal.TypeMark, payload); err != nil {
			return "", err
		}
	}

	// Prune old checkpoint generations.
	paths, err := listCheckpoints(s.dir)
	if err != nil {
		return "", err
	}
	for i, p := range paths {
		if i >= s.opt.Generations {
			if err := os.Remove(p); err != nil {
				return "", err
			}
		}
	}

	return path, s.wal.CompactTo(idx)
}

// writeCheckpointMaybeSync is WriteCheckpointFile with fsync elided under
// NoSync (tests that measure logic, not durability).
func writeCheckpointMaybeSync(path string, fc *FileCheckpoint, afterSync func(), noSync bool) error {
	if !noSync {
		return WriteCheckpointFile(path, fc, afterSync)
	}
	buf, err := EncodeCheckpointFile(fc)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// PlayTape advances a tape-driven store to the horizon: pending tape
// events fire (durably) before the epoch they are scheduled at, epochs run
// durably, and the store's event cursor — persisted in every checkpoint —
// resumes the tape exactly where the previous process died, even mid-epoch
// between two events. Precondition: every request this store has ever
// applied came from this tape, in order (impserve's tape mode guarantees
// it). onEpoch/onDecision/onDecisionErr as in Runtime.Play.
func (s *Store) PlayTape(tp *Tape, horizon int64,
	onEpoch func(EpochReport), onDecision func(Event, Decision),
	onDecisionErr func(Event, error) error) error {
	if s.eventsApplied > uint64(len(tp.Events)) {
		return fmt.Errorf("runtime: store has applied %d events but the tape has %d — wrong tape?",
			s.eventsApplied, len(tp.Events))
	}
	i := int(s.eventsApplied)
	for s.rt.Epoch() < horizon {
		for i < len(tp.Events) && tp.Events[i].Epoch <= s.rt.Epoch() {
			ev := tp.Events[i]
			i++
			d, err := s.Apply(ev)
			if err != nil {
				if onDecisionErr == nil {
					return fmt.Errorf("runtime: event at epoch %d: %w", ev.Epoch, err)
				}
				if err := onDecisionErr(ev, err); err != nil {
					return err
				}
				continue
			}
			if onDecision != nil {
				onDecision(ev, d)
			}
		}
		rep, err := s.RunEpoch()
		if err != nil {
			return err
		}
		if onEpoch != nil {
			onEpoch(rep)
		}
	}
	return nil
}

// Close flushes any open commit group — no record a caller was promised
// durable (or is still waiting on) is abandoned — then syncs and releases
// the journal. The store must not be used after.
func (s *Store) Close() error {
	err := s.gc.Close()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	return err
}
