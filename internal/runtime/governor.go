package runtime

import (
	"fmt"

	"nprt/internal/task"
)

// GovernorConfig parameterizes the overload governor: a control loop that
// watches a sliding window of per-epoch miss rates (and, optionally, a
// lateness budget) and trades accuracy for schedulability when the system is
// in sustained overload.
//
// The loop is hysteretic by construction: shedding triggers at
// ShedThreshold, restoring only at RestoreThreshold (strictly below it),
// and every action is followed by DwellEpochs of enforced inaction. A
// transient miss spike therefore sheds at most one task per dwell period,
// and the system cannot flap between shed and restore — the window mean
// would have to cross the full gap between the two thresholds within one
// dwell, monotonically, in both directions.
type GovernorConfig struct {
	// Window is the sliding-window length in epochs. Default 8.
	Window int `json:"window"`
	// ShedThreshold is the windowed mean miss percentage at or above which
	// the governor sheds accuracy (forces one more task to its deepest
	// imprecise level). Default 1.0 (%).
	ShedThreshold float64 `json:"shed_threshold"`
	// RestoreThreshold is the windowed mean miss percentage at or below
	// which the governor restores accuracy (un-sheds one task). Must be
	// strictly below ShedThreshold. Default 0.1 (%).
	RestoreThreshold float64 `json:"restore_threshold"`
	// DwellEpochs is the minimum number of epochs between two governor
	// actions, in either direction. Default 4.
	DwellEpochs int `json:"dwell_epochs"`
	// LatenessBudget, when positive, treats an epoch whose MaxLateness
	// exceeds it as a full overload signal (the epoch scores as
	// ShedThreshold even if its miss percentage was lower). Zero disables
	// the lateness channel.
	LatenessBudget task.Time `json:"lateness_budget"`
}

// withDefaults fills zero fields with the documented defaults.
func (c GovernorConfig) withDefaults() GovernorConfig {
	if c.Window == 0 {
		c.Window = 8
	}
	if c.ShedThreshold == 0 {
		c.ShedThreshold = 1.0
	}
	if c.RestoreThreshold == 0 {
		c.RestoreThreshold = 0.1
	}
	if c.DwellEpochs == 0 {
		c.DwellEpochs = 4
	}
	return c
}

// Validate rejects configurations whose hysteresis is broken.
func (c GovernorConfig) Validate() error {
	c = c.withDefaults()
	switch {
	case c.Window <= 0:
		return fmt.Errorf("runtime: governor window %d must be positive", c.Window)
	case c.ShedThreshold <= 0 || c.ShedThreshold > 100:
		return fmt.Errorf("runtime: shed threshold %g outside (0,100]", c.ShedThreshold)
	case c.RestoreThreshold < 0:
		return fmt.Errorf("runtime: restore threshold %g must be non-negative", c.RestoreThreshold)
	case c.RestoreThreshold >= c.ShedThreshold:
		return fmt.Errorf("runtime: restore threshold %g must be strictly below shed threshold %g (hysteresis)",
			c.RestoreThreshold, c.ShedThreshold)
	case c.DwellEpochs < 0:
		return fmt.Errorf("runtime: dwell %d must be non-negative", c.DwellEpochs)
	case c.LatenessBudget < 0:
		return fmt.Errorf("runtime: lateness budget %d must be non-negative", c.LatenessBudget)
	}
	return nil
}

// Action is the governor's per-epoch recommendation.
type Action uint8

const (
	// ActionNone: stay the course.
	ActionNone Action = iota
	// ActionShed: force one more task (lowest criticality first) to its
	// deepest imprecise level.
	ActionShed
	// ActionRestore: return the most recently shed task to its normal mode
	// selection.
	ActionRestore
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionShed:
		return "shed"
	case ActionRestore:
		return "restore"
	}
	return fmt.Sprintf("action%d", uint8(a))
}

// Governor is the overload control loop. It owns only the observation
// window and the hysteresis state; the Runtime owns the shed set and decides
// which task an action lands on.
type Governor struct {
	cfg GovernorConfig

	win      []float64 // ring buffer of per-epoch overload scores
	idx      int       // next write position
	n        int       // filled entries (<= len(win))
	cooldown int       // epochs until the next action is allowed

	sheds    int64
	restores int64
}

// NewGovernor builds a governor; the config is defaulted and must validate.
func NewGovernor(cfg GovernorConfig) (*Governor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Governor{cfg: cfg, win: make([]float64, cfg.Window)}, nil
}

// Config returns the defaulted configuration.
func (g *Governor) Config() GovernorConfig { return g.cfg }

// WindowMean returns the mean overload score over the filled window.
func (g *Governor) WindowMean() float64 {
	if g.n == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < g.n; i++ {
		sum += g.win[i]
	}
	return sum / float64(g.n)
}

// Observe feeds one epoch's miss percentage and max lateness into the window
// and returns the governor's recommendation. canShed/canRestore tell the
// governor whether the runtime has anything left to shed or restore, so the
// action counters only count actions that take effect.
func (g *Governor) Observe(missPct float64, maxLateness task.Time, canShed, canRestore bool) Action {
	score := missPct
	if g.cfg.LatenessBudget > 0 && maxLateness > g.cfg.LatenessBudget && score < g.cfg.ShedThreshold {
		score = g.cfg.ShedThreshold
	}
	if g.n < len(g.win) {
		g.n++
	}
	g.win[g.idx] = score
	g.idx = (g.idx + 1) % len(g.win)

	if g.cooldown > 0 {
		g.cooldown--
		return ActionNone
	}
	mean := g.WindowMean()
	switch {
	case mean >= g.cfg.ShedThreshold && canShed:
		g.cooldown = g.cfg.DwellEpochs
		g.sheds++
		return ActionShed
	case mean <= g.cfg.RestoreThreshold && canRestore:
		g.cooldown = g.cfg.DwellEpochs
		g.restores++
		return ActionRestore
	}
	return ActionNone
}

// Sheds returns the number of shed actions issued.
func (g *Governor) Sheds() int64 { return g.sheds }

// Restores returns the number of restore actions issued.
func (g *Governor) Restores() int64 { return g.restores }

// GovernorState is the serializable snapshot of the control loop, carried
// inside runtime checkpoints.
type GovernorState struct {
	Window   []float64 `json:"window"`
	Idx      int       `json:"idx"`
	N        int       `json:"n"`
	Cooldown int       `json:"cooldown"`
	Sheds    int64     `json:"sheds"`
	Restores int64     `json:"restores"`
}

// State snapshots the governor (the window is copied).
func (g *Governor) State() GovernorState {
	win := make([]float64, len(g.win))
	copy(win, g.win)
	return GovernorState{
		Window: win, Idx: g.idx, N: g.n, Cooldown: g.cooldown,
		Sheds: g.sheds, Restores: g.restores,
	}
}

// GovernorFromState reconstructs a governor mid-flight. The state must be
// internally consistent with the configuration or an error is returned
// (checkpoint corruption must never panic).
func GovernorFromState(cfg GovernorConfig, st GovernorState) (*Governor, error) {
	g, err := NewGovernor(cfg)
	if err != nil {
		return nil, err
	}
	switch {
	case len(st.Window) != len(g.win):
		return nil, fmt.Errorf("runtime: governor window length %d does not match config %d",
			len(st.Window), len(g.win))
	case st.N < 0 || st.N > len(g.win):
		return nil, fmt.Errorf("runtime: governor fill count %d outside [0,%d]", st.N, len(g.win))
	case st.Idx < 0 || st.Idx >= len(g.win):
		return nil, fmt.Errorf("runtime: governor ring index %d outside [0,%d)", st.Idx, len(g.win))
	case st.Cooldown < 0:
		return nil, fmt.Errorf("runtime: governor cooldown %d must be non-negative", st.Cooldown)
	case st.Sheds < 0 || st.Restores < 0:
		return nil, fmt.Errorf("runtime: governor action counters must be non-negative")
	}
	copy(g.win, st.Window)
	g.idx, g.n, g.cooldown = st.Idx, st.N, st.Cooldown
	g.sheds, g.restores = st.Sheds, st.Restores
	return g, nil
}
