package runtime

import (
	"testing"

	"nprt/internal/esr"
	"nprt/internal/feasibility"
	"nprt/internal/sim"
	"nprt/internal/task"
)

// anomalySet is a concrete counterexample found by the churn soak (tape
// seed 1, epoch 1305): a 19-task set whose deepest-imprecise profile
// passes Theorem 1 with margin (util 0.956, γ_min ≈ 1.05), yet the
// paper's unguarded EDF+ESR misses three deadlines on it with the sampler
// seed below. The mechanism: jobs finishing early build up inter-job
// slack; the long-deadline t00622 is dispatched at t=34 — just before the
// period-40 burst releases at t=40 — and spends that slack on an accurate
// run to t=56, blocking the burst for 22 ticks where condition 2 of the
// admission analysis budgeted at most x=9. Every field matters: the exec
// distributions drive the sampler draws that produce the earliness.
func anomalySet(t *testing.T) *task.Set {
	t.Helper()
	tasks := []task.Task{
		{Name: "t00524", Period: 40, WCETAccurate: 5, WCETImprecise: 1,
			ExecAccurate:  task.Dist{Mean: 2.5, Sigma: 0.625, Min: 1, Max: 5},
			ExecImprecise: task.Dist{Mean: 0.5, Sigma: 0.125, Min: 1, Max: 1},
			Error:         task.Dist{Mean: 4.329671361147069, Sigma: 0.5}},
		{Name: "t00544", Period: 40, WCETAccurate: 9, WCETImprecise: 4,
			ExecAccurate:  task.Dist{Mean: 4.5, Sigma: 1.125, Min: 1, Max: 9},
			ExecImprecise: task.Dist{Mean: 2, Sigma: 0.5, Min: 1, Max: 4},
			Error:         task.Dist{Mean: 4.478499975961556, Sigma: 0.5}},
		{Name: "t00552", Period: 40, WCETAccurate: 5, WCETImprecise: 2,
			ExecAccurate:  task.Dist{Mean: 2.5, Sigma: 0.625, Min: 1, Max: 5},
			ExecImprecise: task.Dist{Mean: 1, Sigma: 0.25, Min: 1, Max: 2},
			Error:         task.Dist{Mean: 2.4326878000474226, Sigma: 0.5}},
		{Name: "t00565", Period: 40, WCETAccurate: 8, WCETImprecise: 3,
			ExecAccurate:  task.Dist{Mean: 4, Sigma: 1, Min: 1, Max: 8},
			ExecImprecise: task.Dist{Mean: 1.5, Sigma: 0.375, Min: 1, Max: 3},
			Error:         task.Dist{Mean: 4.709494309073593, Sigma: 0.5}},
		{Name: "t00589", Period: 40, WCETAccurate: 10, WCETImprecise: 2,
			ExecAccurate:  task.Dist{Mean: 5, Sigma: 1.25, Min: 1, Max: 10},
			ExecImprecise: task.Dist{Mean: 1, Sigma: 0.25, Min: 1, Max: 2},
			Error:         task.Dist{Mean: 3.6790679784242535, Sigma: 0.5}},
		{Name: "t00598", Period: 40, WCETAccurate: 5, WCETImprecise: 1,
			ExecAccurate:  task.Dist{Mean: 2.5, Sigma: 0.625, Min: 1, Max: 5},
			ExecImprecise: task.Dist{Mean: 0.5, Sigma: 0.125, Min: 1, Max: 1},
			Error:         task.Dist{Mean: 3.682173778147633, Sigma: 0.5}},
		{Name: "t00600", Period: 40, WCETAccurate: 5, WCETImprecise: 1,
			ExecAccurate:  task.Dist{Mean: 2.5, Sigma: 0.625, Min: 1, Max: 5},
			ExecImprecise: task.Dist{Mean: 0.5, Sigma: 0.125, Min: 1, Max: 1},
			Error:         task.Dist{Mean: 2.9910041611320426, Sigma: 0.5}},
		{Name: "t00607", Period: 40, WCETAccurate: 9, WCETImprecise: 4,
			ExecAccurate:  task.Dist{Mean: 4.5, Sigma: 1.125, Min: 1, Max: 9},
			ExecImprecise: task.Dist{Mean: 2, Sigma: 0.5, Min: 1, Max: 4},
			Error:         task.Dist{Mean: 1.420081368886645, Sigma: 0.5}},
		{Name: "t00612", Period: 40, WCETAccurate: 5, WCETImprecise: 2,
			ExecAccurate:  task.Dist{Mean: 2.5, Sigma: 0.625, Min: 1, Max: 5},
			ExecImprecise: task.Dist{Mean: 1, Sigma: 0.25, Min: 1, Max: 2},
			Error:         task.Dist{Mean: 3.183773682951343, Sigma: 0.5}},
		{Name: "t00614", Period: 40, WCETAccurate: 7, WCETImprecise: 1,
			ExecAccurate:  task.Dist{Mean: 3.5, Sigma: 0.875, Min: 1, Max: 7},
			ExecImprecise: task.Dist{Mean: 0.5, Sigma: 0.125, Min: 1, Max: 1},
			Error:         task.Dist{Mean: 2.6750557299388826, Sigma: 0.5}},
		{Name: "t00550", Period: 80, WCETAccurate: 10, WCETImprecise: 3,
			ExecAccurate:  task.Dist{Mean: 5, Sigma: 1.25, Min: 1, Max: 10},
			ExecImprecise: task.Dist{Mean: 1.5, Sigma: 0.375, Min: 1, Max: 3},
			Error:         task.Dist{Mean: 2.786429542155791, Sigma: 0.5}},
		{Name: "t00575", Period: 80, WCETAccurate: 17, WCETImprecise: 4,
			ExecAccurate:  task.Dist{Mean: 8.5, Sigma: 2.125, Min: 1, Max: 17},
			ExecImprecise: task.Dist{Mean: 2, Sigma: 0.5, Min: 1, Max: 4},
			Error:         task.Dist{Mean: 2.118842162490054, Sigma: 0.5}},
		{Name: "t00601", Period: 80, WCETAccurate: 11, WCETImprecise: 2,
			ExecAccurate:  task.Dist{Mean: 5.5, Sigma: 1.375, Min: 1, Max: 11},
			ExecImprecise: task.Dist{Mean: 1, Sigma: 0.25, Min: 1, Max: 2},
			Error:         task.Dist{Mean: 3.2577338237471967, Sigma: 0.5}},
		{Name: "t00618", Period: 80, WCETAccurate: 20, WCETImprecise: 5,
			ExecAccurate:  task.Dist{Mean: 10, Sigma: 2.5, Min: 1, Max: 20},
			ExecImprecise: task.Dist{Mean: 2.5, Sigma: 0.625, Min: 1, Max: 5},
			Error:         task.Dist{Mean: 3.9496856039848334, Sigma: 0.5}},
		{Name: "t00619", Period: 80, WCETAccurate: 18, WCETImprecise: 4,
			ExecAccurate:  task.Dist{Mean: 9, Sigma: 2.25, Min: 1, Max: 18},
			ExecImprecise: task.Dist{Mean: 2, Sigma: 0.5, Min: 1, Max: 4},
			Error:         task.Dist{Mean: 4.3725367386051746, Sigma: 0.5}},
		{Name: "t00597", Period: 160, WCETAccurate: 23, WCETImprecise: 6,
			ExecAccurate:  task.Dist{Mean: 11.5, Sigma: 2.875, Min: 1, Max: 23},
			ExecImprecise: task.Dist{Mean: 3, Sigma: 0.75, Min: 1, Max: 6},
			Error:         task.Dist{Mean: 4.318165202497945, Sigma: 0.5}},
		{Name: "t00611", Period: 160, WCETAccurate: 34, WCETImprecise: 10,
			ExecAccurate:  task.Dist{Mean: 17, Sigma: 4.25, Min: 1, Max: 34},
			ExecImprecise: task.Dist{Mean: 5, Sigma: 1.25, Min: 1, Max: 10},
			Error:         task.Dist{Mean: 1.7274301880349796, Sigma: 0.5}},
		{Name: "t00613", Period: 160, WCETAccurate: 35, WCETImprecise: 14,
			ExecAccurate:  task.Dist{Mean: 17.5, Sigma: 4.375, Min: 1, Max: 35},
			ExecImprecise: task.Dist{Mean: 7, Sigma: 1.75, Min: 1, Max: 14},
			Error:         task.Dist{Mean: 3.6512114188296536, Sigma: 0.5}},
		{Name: "t00622", Period: 160, WCETAccurate: 37, WCETImprecise: 9,
			ExecAccurate:  task.Dist{Mean: 18.5, Sigma: 4.625, Min: 1, Max: 37},
			ExecImprecise: task.Dist{Mean: 4.5, Sigma: 1.125, Min: 1, Max: 9},
			Error:         task.Dist{Mean: 2.5719530033613367, Sigma: 0.5}},
	}
	s, err := task.New(tasks)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// anomalySeed is the sampler seed under which the unguarded policy misses
// on anomalySet.
const anomalySeed = 4206870795343872286

// TestGuardBlocksInterSlackAnomaly pins the counterexample that motivated
// guardedESR. Three facts, in order: the set is deepest-imprecise
// schedulable by Theorem 1 (so admission control accepts it and promises
// zero misses), the paper's unguarded EDF+ESR nevertheless misses on it,
// and the guarded policy does not. If the first ever fails the set no
// longer proves anything; if the second ever fails the upstream policy
// changed and the guard may be obsolete — both are worth knowing.
func TestGuardBlocksInterSlackAnomaly(t *testing.T) {
	s := anomalySet(t)

	_, deepest := feasibility.Profiles(s)
	if !deepest.Schedulable {
		t.Fatalf("counterexample set is not deepest-schedulable: %+v", deepest)
	}

	run := func(p sim.Policy) *sim.Result {
		res, err := sim.Run(s, p, sim.Config{
			Hyperperiods: 1,
			Sampler:      sim.NewRandomSampler(s, anomalySeed),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	unguarded := run(esr.New())
	if unguarded.Misses.Events == 0 {
		t.Error("unguarded EDF+ESR no longer misses on the anomaly set; the guard's premise changed")
	}
	guarded := run(&guardedESR{})
	if guarded.Misses.Events != 0 {
		t.Errorf("guarded EDF+ESR missed %d deadlines on a deepest-schedulable set", guarded.Misses.Events)
	}
}

// TestGuardKeepsReclamation: the guard must block the anomaly, not the
// reclamation. On a moderately loaded set (where slack genuinely exists)
// the guarded policy still has to run a substantial share of jobs
// accurately — if it collapses to all-deepest, it is not ESR any more. The
// near-saturated anomaly set is deliberately not used here: at util 0.96
// even the unguarded policy upgrades only a few percent of jobs.
func TestGuardKeepsReclamation(t *testing.T) {
	s, err := task.New([]task.Task{
		mkTask("a", 40, 12, 4),
		mkTask("b", 40, 10, 3),
		mkTask("c", 80, 16, 6),
		mkTask("d", 160, 30, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(s, &guardedESR{}, sim.Config{
		Hyperperiods: 8,
		Sampler:      sim.NewRandomSampler(s, 17),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses.Events != 0 {
		t.Fatalf("guarded policy missed %d deadlines on a lightly loaded set", res.Misses.Events)
	}
	frac := float64(res.Accurate) / float64(res.Jobs)
	if frac < 1.0/3 {
		t.Errorf("guarded policy upgraded only %.1f%% of jobs on a lightly loaded set", 100*frac)
	}
}
