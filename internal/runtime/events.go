package runtime

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"nprt/internal/sim"
)

// Event is one entry of a churn tape: a request the outside world makes of
// the runtime at a given epoch. Tapes are the runtime's scripting surface —
// cmd/impserve replays them against a live daemon and the churn soak
// generates them by the thousand.
type Event struct {
	// Epoch at which the event fires, non-decreasing along a tape.
	Epoch int64 `json:"epoch"`
	// Op is "add", "remove" or "overload".
	Op string `json:"op"`
	// Task carries the spec for "add".
	Task *TaskSpec `json:"task,omitempty"`
	// Name identifies the target for "remove".
	Name string `json:"name,omitempty"`
	// Overload carries the window for "overload".
	Overload *OverloadSpec `json:"overload,omitempty"`
	// Seq is an optional strictly-positive cluster sequence number stamped
	// by the sharded router (internal/cluster) before an event reaches a
	// shard store. A durable Store tracks the maximum Seq it has applied
	// (Store.MaxSeq) through its WAL and checkpoints, which is what lets a
	// recovering cluster locate its position in a shared tape without a
	// separate cursor. Zero means unsequenced; single-node paths never set
	// it.
	Seq uint64 `json:"seq,omitempty"`
}

// OverloadSpec is the payload of an "overload" event.
type OverloadSpec struct {
	Rates  sim.FaultRates `json:"rates"`
	Epochs int            `json:"epochs"`
}

// ErrBadEvent wraps every malformed-event rejection.
var ErrBadEvent = errors.New("runtime: malformed event")

// IsStaleRequest reports whether err is a request error that a churning
// client produces in normal operation — removing a task that was never
// admitted (or already removed), or re-adding a name that is still live.
// Long-running drivers tolerate these and count them; everything else is a
// real failure.
func IsStaleRequest(err error) bool {
	return errors.Is(err, ErrUnknownTask) || errors.Is(err, ErrDuplicateTask)
}

// Validate rejects structurally malformed events before they reach a
// runtime.
func (ev *Event) Validate() error {
	if ev.Epoch < 0 {
		return fmt.Errorf("%w: negative epoch %d", ErrBadEvent, ev.Epoch)
	}
	switch ev.Op {
	case "add":
		if ev.Task == nil {
			return fmt.Errorf("%w: add without task", ErrBadEvent)
		}
	case "remove":
		if ev.Name == "" {
			return fmt.Errorf("%w: remove without name", ErrBadEvent)
		}
	case "overload":
		if ev.Overload == nil {
			return fmt.Errorf("%w: overload without spec", ErrBadEvent)
		}
	default:
		return fmt.Errorf("%w: unknown op %q", ErrBadEvent, ev.Op)
	}
	return nil
}

// Apply dispatches one event to the runtime. Admission-screening rejections
// are Decisions, not errors; the error return is for malformed events and
// requests the runtime cannot interpret (unknown remove target, invalid
// task). Every decision — including rejections — is folded into the
// digest, so the sequence of requests is part of the run identity.
func (r *Runtime) Apply(ev Event) (Decision, error) {
	if err := ev.Validate(); err != nil {
		return Decision{Op: ev.Op}, err
	}
	switch ev.Op {
	case "add":
		return r.Add(*ev.Task)
	case "remove":
		return r.Remove(ev.Name)
	default: // "overload", by Validate
		return r.Overload(ev.Overload.Rates, ev.Overload.Epochs)
	}
}

// Tape is an event script: a sequence of events ordered by epoch.
type Tape struct {
	Events []Event `json:"events"`
}

// Validate checks every event and the epoch ordering.
func (tp *Tape) Validate() error {
	last := int64(0)
	for i := range tp.Events {
		if err := tp.Events[i].Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
		if tp.Events[i].Epoch < last {
			return fmt.Errorf("%w: event %d goes back in time (epoch %d after %d)",
				ErrBadEvent, i, tp.Events[i].Epoch, last)
		}
		last = tp.Events[i].Epoch
	}
	return nil
}

// EncodeTape writes the tape as indented JSON.
func EncodeTape(w io.Writer, tp *Tape) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tp)
}

// DecodeTape reads and validates a tape. Unknown fields are rejected so a
// typo'd script fails loudly instead of silently doing nothing.
func DecodeTape(rd io.Reader) (*Tape, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	var tp Tape
	if err := dec.Decode(&tp); err != nil {
		return nil, fmt.Errorf("runtime: decoding tape: %w", err)
	}
	if err := tp.Validate(); err != nil {
		return nil, err
	}
	return &tp, nil
}

// Play runs the runtime through the tape: events scheduled for an epoch
// fire immediately before that epoch runs, and epochs advance through
// horizon (exclusive). Events earlier than the runtime's current epoch are
// skipped — on a runtime restored from a checkpoint taken at epoch E they
// are exactly the events that already fired, so resuming a tape needs no
// bookkeeping beyond the checkpoint itself. onEpoch, when non-nil,
// observes every epoch report (the daemon's logging hook); onDecision
// likewise observes every decision. Request-level errors from events
// (duplicate add, unknown remove) are routed to onDecisionErr if non-nil
// and abort the replay otherwise.
func (r *Runtime) Play(tp *Tape, horizon int64,
	onEpoch func(EpochReport), onDecision func(Event, Decision),
	onDecisionErr func(Event, error) error) error {
	i := 0
	for i < len(tp.Events) && tp.Events[i].Epoch < r.Epoch() {
		i++
	}
	for r.Epoch() < horizon {
		for i < len(tp.Events) && tp.Events[i].Epoch <= r.Epoch() {
			ev := tp.Events[i]
			i++
			d, err := r.Apply(ev)
			if err != nil {
				if onDecisionErr == nil {
					return fmt.Errorf("runtime: event at epoch %d: %w", ev.Epoch, err)
				}
				if err := onDecisionErr(ev, err); err != nil {
					return err
				}
				continue
			}
			if onDecision != nil {
				onDecision(ev, d)
			}
		}
		rep, err := r.RunEpoch()
		if err != nil {
			return err
		}
		if onEpoch != nil {
			onEpoch(rep)
		}
	}
	return nil
}
