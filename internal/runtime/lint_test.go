package runtime

import (
	"errors"
	"strings"
	"testing"
)

// strictTape is a hand-written tape with one issue per line-numbered
// event: a duplicate add (event 2), a remove of an unknown name (event 3),
// and an epoch regression (event 4).
const strictTapeJSON = `{
  "events": [
    {"epoch": 0, "op": "add", "task": {"task": {"Name": "a", "Period": 20,
      "WCETAccurate": 6, "WCETImprecise": 2,
      "ExecAccurate": {"Mean": 3, "Sigma": 1, "Min": 1, "Max": 6},
      "ExecImprecise": {"Mean": 1, "Sigma": 0.2, "Min": 1, "Max": 2},
      "Error": {"Mean": 2, "Sigma": 0.5}}}},
    {"epoch": 1, "op": "remove", "name": "a"},
    {"epoch": 2, "op": "add", "task": {"task": {"Name": "a", "Period": 20,
      "WCETAccurate": 6, "WCETImprecise": 2,
      "ExecAccurate": {"Mean": 3, "Sigma": 1, "Min": 1, "Max": 6},
      "ExecImprecise": {"Mean": 1, "Sigma": 0.2, "Min": 1, "Max": 2},
      "Error": {"Mean": 2, "Sigma": 0.5}}}}
  ]
}
`

func TestDecodeTapeLinesTracksLines(t *testing.T) {
	tp, lines, err := DecodeTapeLines(strings.NewReader(strictTapeJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.Events) != 3 || len(lines) != 3 {
		t.Fatalf("decoded %d events, %d lines", len(tp.Events), len(lines))
	}
	if lines[0] != 3 || lines[1] != 8 || lines[2] != 9 {
		t.Errorf("lines %v, want [3 8 9]", lines)
	}
}

func TestDecodeTapeStrictAcceptsCleanTape(t *testing.T) {
	tp, err := DecodeTapeStrict(strings.NewReader(strictTapeJSON))
	if err != nil {
		t.Fatalf("clean add/remove/re-add tape rejected: %v", err)
	}
	if len(tp.Events) != 3 {
		t.Fatalf("decoded %d events, want 3", len(tp.Events))
	}
}

func TestLintTapeFindsEveryIssueClass(t *testing.T) {
	spec := func(name string) *TaskSpec {
		tk := mkTask(name, 20, 6, 2)
		return &TaskSpec{Task: tk}
	}
	tp := &Tape{Events: []Event{
		{Epoch: 0, Op: "add", Task: spec("a")},
		{Epoch: 1, Op: "add", Task: spec("a")}, // duplicate add
		{Epoch: 2, Op: "remove", Name: "nope"}, // unknown remove
		{Epoch: 1, Op: "remove", Name: "a"},    // epoch regression (still removes a)
		{Epoch: 3, Op: "remove", Name: "a"},    // unknown again: a was removed
		{Epoch: 4, Op: "frobnicate"},           // structural
	}}
	issues := LintTape(tp, []int{10, 20, 30, 40, 50, 60})
	if len(issues) != 5 {
		t.Fatalf("found %d issues, want 5: %v", len(issues), issues)
	}
	wantErrs := []error{ErrDuplicateAdd, ErrRemoveUnknown, ErrEpochRegression, ErrRemoveUnknown, ErrBadEvent}
	wantEvents := []int{1, 2, 3, 4, 5}
	wantLines := []int{20, 30, 40, 50, 60}
	for i, issue := range issues {
		if !errors.Is(issue, wantErrs[i]) {
			t.Errorf("issue %d: %v, want %v", i, issue.Err, wantErrs[i])
		}
		if issue.Event != wantEvents[i] || issue.Line != wantLines[i] {
			t.Errorf("issue %d at event %d line %d, want event %d line %d",
				i, issue.Event, issue.Line, wantEvents[i], wantLines[i])
		}
	}
}

func TestDecodeTapeStrictRejectsWithLineNumbers(t *testing.T) {
	bad := strings.Replace(strictTapeJSON,
		`{"epoch": 1, "op": "remove", "name": "a"},`,
		`{"epoch": 1, "op": "remove", "name": "ghost"},`, 1)
	_, err := DecodeTapeStrict(strings.NewReader(bad))
	if err == nil {
		t.Fatal("tape with unknown remove and duplicate add accepted")
	}
	msg := err.Error()
	// The ghost remove is on line 8; the now-duplicate re-add of "a"
	// starts on line 9.
	for _, want := range []string{"line 8", "line 9", "unknown task", "duplicate add"} {
		if !strings.Contains(msg, want) {
			t.Errorf("strict error missing %q:\n%s", want, msg)
		}
	}
}

func TestDecodeTapeStrictRejectsUnknownField(t *testing.T) {
	if _, err := DecodeTapeStrict(strings.NewReader(`{"events": [], "extra": 1}`)); err == nil {
		t.Error("unknown top-level field accepted")
	}
	if _, err := DecodeTapeStrict(strings.NewReader(`{"events": null}`)); err != nil {
		t.Errorf("null events rejected: %v", err)
	}
	if _, err := DecodeTapeStrict(strings.NewReader(`{"events": [{"epoch": 0, "op": "add", "typo": 1}]}`)); err == nil {
		t.Error("unknown event field accepted")
	}
}
