package runtime

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// The admit benchmarks model the serve architecture honestly: a closed
// loop of `conc` clients, each with ONE outstanding request (like an HTTP
// caller awaiting its Decision), a bounded ticket queue, and a single
// engine goroutine that owns the store — exactly the shape of
// serve.Server. Serial mode applies tickets one at a time (one fsync
// each); group mode drains the queue and commits the batch under one
// fsync. Real fsyncs (b.TempDir), so fsyncs/admit and admits/s are the
// acceptance-criterion numbers.

type benchTicket struct {
	ev    Event
	reply chan struct{}
}

// benchEvent alternates add/remove over a small cyclic name set so the
// runtime's working set stays bounded; duplicate adds and unknown removes
// are stale requests, which the ingest path journals like any other.
func benchEvent(i uint64) Event {
	name := fmt.Sprintf("w%d", (i/2)%8)
	if i%2 == 0 {
		return Event{Op: "add", Task: &TaskSpec{Task: mkTask(name, 40, 10, 3)}}
	}
	return Event{Op: "remove", Name: name}
}

func benchAdmit(b *testing.B, conc int, batched bool) {
	var syncs atomic.Uint64
	s, err := OpenStore(b.TempDir(), StoreOptions{
		AfterSync: func() { syncs.Add(1) },
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	const maxBatch = 64
	queue := make(chan benchTicket, 4*maxBatch)
	engineDone := make(chan struct{})
	go func() {
		defer close(engineDone)
		tickets := make([]benchTicket, 0, maxBatch)
		evs := make([]Event, 0, maxBatch)
		for t := range queue {
			tickets = append(tickets[:0], t)
			if batched {
				// Greedy drain, then the engine-level commit_delay: a batch
				// that already has company may stall briefly to fill (the
				// waiting clients' resubmissions are racing this drain); a
				// lone ticket commits immediately.
				drain := func() {
					for len(tickets) < maxBatch {
						select {
						case t2, ok := <-queue:
							if !ok {
								return
							}
							tickets = append(tickets, t2)
						default:
							return
						}
					}
				}
				drain()
				if len(tickets) == 1 {
					runtime.Gosched() // let racing submitters land
					drain()
				}
				if len(tickets) > 1 {
					for empty := 0; len(tickets) < maxBatch && empty < 4; {
						before := len(tickets)
						runtime.Gosched()
						drain()
						if len(tickets) == before {
							empty++
						} else {
							empty = 0
						}
					}
				}
				evs = evs[:0]
				for _, t := range tickets {
					evs = append(evs, t.ev)
				}
				if _, _, err := s.ApplyBatch(evs); err != nil {
					b.Error(err)
					return
				}
			} else {
				for _, t := range tickets {
					if _, err := s.Apply(t.ev); err != nil && !IsStaleRequest(err) {
						b.Error(err)
						return
					}
				}
			}
			for _, t := range tickets {
				t.reply <- struct{}{}
			}
		}
	}()

	startSyncs := syncs.Load() // exclude store-open fsyncs
	b.ResetTimer()
	var next atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reply := make(chan struct{}, 1)
			for {
				i := next.Add(1) - 1
				if i >= uint64(b.N) {
					return
				}
				queue <- benchTicket{ev: benchEvent(i), reply: reply}
				<-reply
			}
		}()
	}
	wg.Wait()
	close(queue)
	<-engineDone
	b.StopTimer()

	n := float64(b.N)
	b.ReportMetric(float64(syncs.Load()-startSyncs)/n, "fsyncs/admit")
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(n/sec, "admits/s")
	}
}

func BenchmarkAdmitSerial(b *testing.B) {
	for _, conc := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("conc=%d", conc), func(b *testing.B) {
			benchAdmit(b, conc, false)
		})
	}
}

func BenchmarkAdmitGroupCommit(b *testing.B) {
	for _, conc := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("conc=%d", conc), func(b *testing.B) {
			benchAdmit(b, conc, true)
		})
	}
}
