package runtime

import (
	"testing"
)

func mkGov(t *testing.T, cfg GovernorConfig) *Governor {
	t.Helper()
	g, err := NewGovernor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGovernorConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  GovernorConfig
		ok   bool
	}{
		{"defaults", GovernorConfig{}, true},
		{"explicit", GovernorConfig{Window: 4, ShedThreshold: 5, RestoreThreshold: 1, DwellEpochs: 2}, true},
		{"restore==shed breaks hysteresis", GovernorConfig{ShedThreshold: 2, RestoreThreshold: 2}, false},
		{"restore>shed", GovernorConfig{ShedThreshold: 1, RestoreThreshold: 3}, false},
		{"negative restore", GovernorConfig{RestoreThreshold: -1}, false},
		{"shed>100", GovernorConfig{ShedThreshold: 150}, false},
		{"negative shed", GovernorConfig{ShedThreshold: -1}, false},
		{"negative window", GovernorConfig{Window: -3}, false},
		{"negative dwell", GovernorConfig{DwellEpochs: -1}, false},
		{"negative lateness budget", GovernorConfig{LatenessBudget: -5}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewGovernor(c.cfg)
			if (err == nil) != c.ok {
				t.Fatalf("NewGovernor(%+v) err=%v, want ok=%v", c.cfg, err, c.ok)
			}
		})
	}
}

// TestGovernorShedsUnderSustainedOverload: a miss rate held above the shed
// threshold sheds — but only once the window mean crosses it, and then at
// most once per dwell period.
func TestGovernorShedsUnderSustainedOverload(t *testing.T) {
	g := mkGov(t, GovernorConfig{Window: 4, ShedThreshold: 2, RestoreThreshold: 0.5, DwellEpochs: 3})

	var actions []Action
	for i := 0; i < 12; i++ {
		actions = append(actions, g.Observe(10, 0, true, false))
	}
	// Epoch 0 already has window mean 10 >= 2: shed immediately, then 3
	// epochs of enforced dwell, then shed again...
	want := []Action{ActionShed, ActionNone, ActionNone, ActionNone,
		ActionShed, ActionNone, ActionNone, ActionNone,
		ActionShed, ActionNone, ActionNone, ActionNone}
	for i := range want {
		if actions[i] != want[i] {
			t.Fatalf("epoch %d: action %v, want %v (full: %v)", i, actions[i], want[i], actions)
		}
	}
	if g.Sheds() != 3 {
		t.Errorf("sheds = %d, want 3", g.Sheds())
	}
}

// TestGovernorHysteresisNoFlap: a miss rate sitting between the two
// thresholds triggers nothing in either direction.
func TestGovernorHysteresisNoFlap(t *testing.T) {
	g := mkGov(t, GovernorConfig{Window: 4, ShedThreshold: 5, RestoreThreshold: 1, DwellEpochs: 2})
	for i := 0; i < 50; i++ {
		if a := g.Observe(3, 0, true, true); a != ActionNone {
			t.Fatalf("epoch %d: mid-band miss rate triggered %v", i, a)
		}
	}
	if g.Sheds() != 0 || g.Restores() != 0 {
		t.Errorf("mid-band run acted: sheds=%d restores=%d", g.Sheds(), g.Restores())
	}
}

// TestGovernorRestores: after overload clears, the window must drain below
// the restore threshold before accuracy comes back.
func TestGovernorRestores(t *testing.T) {
	g := mkGov(t, GovernorConfig{Window: 4, ShedThreshold: 5, RestoreThreshold: 1, DwellEpochs: 3})

	if a := g.Observe(50, 0, true, true); a != ActionShed {
		t.Fatalf("overloaded epoch: %v, want shed", a)
	}
	// Clean epochs. Window still holds the 50 for the next 3 observations
	// (means 25, 16.7, 12.5 — all still above the shed threshold, which the
	// dwell must absorb); on the 4th the 50 rotates out, the mean drops to
	// 0 ≤ restore threshold, and accuracy comes back.
	want := []Action{ActionNone, ActionNone, ActionNone, ActionRestore}
	for i, w := range want {
		if a := g.Observe(0, 0, true, true); a != w {
			t.Fatalf("clean epoch %d: %v, want %v (mean %v)", i, a, w, g.WindowMean())
		}
	}
	if g.Sheds() != 1 || g.Restores() != 1 {
		t.Errorf("sheds=%d restores=%d, want 1/1", g.Sheds(), g.Restores())
	}
}

// TestGovernorLatenessChannel: lateness over budget scores as a full
// overload signal even at zero misses.
func TestGovernorLatenessChannel(t *testing.T) {
	g := mkGov(t, GovernorConfig{Window: 2, ShedThreshold: 5, RestoreThreshold: 1, DwellEpochs: 1, LatenessBudget: 100})
	if a := g.Observe(0, 50, true, false); a != ActionNone {
		t.Fatalf("lateness under budget acted: %v", a)
	}
	g2 := mkGov(t, GovernorConfig{Window: 1, ShedThreshold: 5, RestoreThreshold: 1, DwellEpochs: 1, LatenessBudget: 100})
	if a := g2.Observe(0, 101, true, false); a != ActionShed {
		t.Fatalf("lateness over budget did not shed: %v", a)
	}
}

// TestGovernorRespectsCanFlags: a governor with nothing to shed (or
// restore) must not count phantom actions.
func TestGovernorRespectsCanFlags(t *testing.T) {
	g := mkGov(t, GovernorConfig{Window: 1, ShedThreshold: 1, RestoreThreshold: 0.1, DwellEpochs: 0})
	for i := 0; i < 5; i++ {
		if a := g.Observe(50, 0, false, false); a != ActionNone {
			t.Fatalf("nothing to shed but acted: %v", a)
		}
	}
	for i := 0; i < 5; i++ {
		if a := g.Observe(0, 0, false, false); a != ActionNone {
			t.Fatalf("nothing to restore but acted: %v", a)
		}
	}
	if g.Sheds() != 0 || g.Restores() != 0 {
		t.Errorf("phantom actions counted: sheds=%d restores=%d", g.Sheds(), g.Restores())
	}
}

// TestGovernorStateRoundTrip: a restored governor must continue exactly
// like the original.
func TestGovernorStateRoundTrip(t *testing.T) {
	cfg := GovernorConfig{Window: 4, ShedThreshold: 5, RestoreThreshold: 1, DwellEpochs: 3}
	a := mkGov(t, cfg)
	inputs := []float64{0, 50, 30, 0, 0, 10}
	for _, m := range inputs {
		a.Observe(m, 0, true, true)
	}

	b, err := GovernorFromState(cfg, a.State())
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range []float64{0, 0, 0, 0, 40, 0, 0, 0, 0, 0} {
		ga, gb := a.Observe(m, 0, true, true), b.Observe(m, 0, true, true)
		if ga != gb {
			t.Fatalf("step %d: original %v, restored %v", i, ga, gb)
		}
	}
	if a.Sheds() != b.Sheds() || a.Restores() != b.Restores() {
		t.Errorf("counters diverged: %d/%d vs %d/%d", a.Sheds(), a.Restores(), b.Sheds(), b.Restores())
	}

	// State copies must not alias governor storage.
	st := a.State()
	st.Window[0] = -999
	if a.State().Window[0] == -999 {
		t.Error("State window aliases governor storage")
	}
}

// TestGovernorFromStateRejectsCorrupt: every inconsistent snapshot errors,
// never panics.
func TestGovernorFromStateRejectsCorrupt(t *testing.T) {
	cfg := GovernorConfig{Window: 4, ShedThreshold: 5, RestoreThreshold: 1}
	good := mkGov(t, cfg).State()
	mutate := []struct {
		name string
		fn   func(*GovernorState)
	}{
		{"window too short", func(s *GovernorState) { s.Window = s.Window[:2] }},
		{"window too long", func(s *GovernorState) { s.Window = append(s.Window, 0) }},
		{"nil window", func(s *GovernorState) { s.Window = nil }},
		{"fill over capacity", func(s *GovernorState) { s.N = 9 }},
		{"negative fill", func(s *GovernorState) { s.N = -1 }},
		{"index out of range", func(s *GovernorState) { s.Idx = 4 }},
		{"negative index", func(s *GovernorState) { s.Idx = -1 }},
		{"negative cooldown", func(s *GovernorState) { s.Cooldown = -1 }},
		{"negative sheds", func(s *GovernorState) { s.Sheds = -1 }},
		{"negative restores", func(s *GovernorState) { s.Restores = -1 }},
	}
	for _, m := range mutate {
		t.Run(m.name, func(t *testing.T) {
			st := good
			st.Window = append([]float64(nil), good.Window...)
			m.fn(&st)
			if _, err := GovernorFromState(cfg, st); err == nil {
				t.Fatal("corrupt state accepted")
			}
		})
	}
}
