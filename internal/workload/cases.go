// Package workload constructs the paper's testcases. The authors published
// only the characteristics of their random task sets (Table I: task count,
// accurate-mode utilization, jobs per hyper-period, Theorem-1 verdicts),
// so this package *constructs* deterministic task sets that match those
// characteristics exactly where legible and plausibly where the scan is
// garbled — the substitution recorded in DESIGN.md. Every case is verified
// against its targets by the package tests.
//
// Error statistics come from the accuracy-configurable approximate adder
// characterization (internal/imprecise), mirroring the paper's use of
// accuracy-configurable circuit data; execution-time distributions follow
// the paper's recipe: Gaussian with WCET = μ + 6σ plus a margin and
// WCET/BCET ≈ 10.
package workload

import (
	"fmt"
	"sort"

	"nprt/internal/feasibility"
	"nprt/internal/imprecise"
	"nprt/internal/rng"
	"nprt/internal/task"
)

// Case is one benchmark testcase with its published target characteristics.
type Case struct {
	Name string
	// Targets from Table I.
	WantTasks        int
	WantUtilAccurate float64
	WantJobsPerHyper int
	WantImpreciseOK  bool // Theorem-1 verdict with imprecise WCETs
	UtilTolerance    float64
	tasks            []task.Task
}

// Set materializes the task set.
func (c *Case) Set() (*task.Set, error) { return task.New(c.tasks) }

// MustSet materializes or panics (the constructions are verified by tests).
func (c *Case) MustSet() *task.Set { return task.MustNew(c.tasks) }

// baseHyper is the base hyper-period of the random cases: highly composite
// so job-count targets can be met with divisor periods.
const baseHyper = task.Time(2520)

// divisors of baseHyper in ascending order, capped at 64 so periods stay
// ≥ baseHyper/64 and condition-2 scans stay cheap.
var divisors = func() []task.Time {
	var ds []task.Time
	for d := task.Time(1); d <= 64; d++ {
		if baseHyper%d == 0 {
			ds = append(ds, d)
		}
	}
	return ds
}()

// pickJobCounts selects n job counts (each a divisor of baseHyper, at least
// one equal to 1 so the hyper-period is exactly baseHyper) summing to total.
func pickJobCounts(n, total int, r *rng.Stream) ([]task.Time, error) {
	if total < n {
		return nil, fmt.Errorf("workload: %d jobs cannot cover %d tasks", total, n)
	}
	counts := make([]task.Time, n)
	counts[n-1] = 1 // period = baseHyper, pins the hyper-period
	remaining := total - 1
	for i := n - 2; i >= 0; i-- {
		tasksLeft := i // tasks still to fill after this one
		maxHere := remaining - tasksLeft
		// Candidate divisors ≤ maxHere.
		hi := 0
		for hi < len(divisors) && int(divisors[hi]) <= maxHere {
			hi++
		}
		if hi == 0 {
			return nil, fmt.Errorf("workload: cannot split %d jobs over %d tasks", remaining, tasksLeft+1)
		}
		// Bias toward larger counts early so the spread is wide.
		pick := divisors[r.Intn(hi)]
		if i == 0 {
			// Last slot must absorb the exact remainder — and it must be a
			// divisor.
			pick = task.Time(remaining)
			ok := false
			for _, d := range divisors {
				if d == pick {
					ok = true
					break
				}
			}
			if !ok {
				return nil, fmt.Errorf("workload: remainder %d is not a divisor", remaining)
			}
		}
		counts[i] = pick
		remaining -= int(pick)
	}
	if remaining != 0 {
		return nil, fmt.Errorf("workload: counts leave %d jobs unassigned", remaining)
	}
	// Descending counts → ascending periods.
	sort.Slice(counts, func(a, b int) bool { return counts[a] > counts[b] })
	return counts, nil
}

// adderErrorDist derives a task's error statistics from the approximate
// adder with the given low-bit configuration, scaled into the error
// magnitudes of Table II.
func adderErrorDist(bits int, seed uint64) task.Dist {
	ch := imprecise.CharacterizeAdder(imprecise.ApproxAdder{Width: 16, ApproxBits: bits}, 4000, seed)
	const scale = 1.0 / 16
	return task.Dist{Mean: ch.MeanError * scale, Sigma: ch.ErrStdDev * scale}
}

// execDist builds the paper's execution-time model for a WCET: Gaussian
// with WCET = μ + 6σ plus a 10% margin, and best case ≈ WCET/10. The mean
// sits low (≈0.2·WCET), which is what makes the WCET model pessimistic and
// gives the online methods their slack — exactly the effect the paper
// exploits.
func execDist(w task.Time) task.Dist {
	fw := float64(w)
	return task.Dist{
		Mean:  fw * 0.45,
		Sigma: fw * 0.075, // 0.45 + 6·0.075 = 0.9, leaving a 10% margin
		Min:   fw * 0.1,
		Max:   fw,
	}
}

// buildRandomCase constructs one RndN case matching the targets. It retries
// deterministic seeds until the verified characteristics hold.
func buildRandomCase(name string, n, jobsPerP int, utilAcc float64, impOK bool, baseSeed uint64) (*Case, error) {
	for attempt := uint64(0); attempt < 64; attempt++ {
		c, err := tryBuildRandomCase(name, n, jobsPerP, utilAcc, impOK, baseSeed+attempt)
		if err == nil {
			return c, nil
		}
	}
	return nil, fmt.Errorf("workload: %s: no attempt satisfied the targets", name)
}

func tryBuildRandomCase(name string, n, jobsPerP int, utilAcc float64, impOK bool, seed uint64) (*Case, error) {
	r := rng.New(seed)
	counts, err := pickJobCounts(n, jobsPerP, r)
	if err != nil {
		return nil, err
	}
	periods := make([]task.Time, n)
	for i, cnt := range counts {
		periods[i] = baseHyper / cnt
	}
	p1 := periods[0]

	// Imprecise utilization target.
	uImp := utilAcc * 0.30
	if !impOK {
		uImp = 1.15 // overload: condition 1 fails outright
	} else {
		if uImp > 0.80 {
			uImp = 0.80
		}
		if uImp < 0.10 {
			uImp = 0.10
		}
	}

	// Distribute U_imp with random weights; cap x_i to avoid accidental
	// condition-2 blocking when the case must be imprecise-feasible.
	weights := make([]float64, n)
	sum := 0.0
	for i := range weights {
		weights[i] = 0.4 + r.Float64()
		sum += weights[i]
	}
	xs := make([]task.Time, n)
	for i := range xs {
		x := task.Time(uImp * weights[i] / sum * float64(periods[i]))
		if x < 1 {
			x = 1
		}
		if impOK {
			if lim := p1 * 2 / 5; x > lim && i > 0 {
				x = lim
			}
		}
		if x >= periods[i] {
			x = periods[i] - 1
		}
		xs[i] = x
	}

	// Accurate WCETs scale the imprecise ones up to the utilization target.
	curImp := 0.0
	for i := range xs {
		curImp += float64(xs[i]) / float64(periods[i])
	}
	ratio := utilAcc / curImp
	if ratio <= 1.05 {
		return nil, fmt.Errorf("workload: %s: accurate/imprecise ratio %.2f too tight", name, ratio)
	}
	ws := make([]task.Time, n)
	for i := range ws {
		w := task.Time(ratio * float64(xs[i]))
		if w > periods[i] {
			w = periods[i] // clamp; the shortfall is redistributed below
		}
		if w <= xs[i] {
			w = xs[i] + 1
		}
		ws[i] = w
	}
	// Redistribute clamped utilization onto unclamped tasks.
	for pass := 0; pass < 8; pass++ {
		cur := 0.0
		for i := range ws {
			cur += float64(ws[i]) / float64(periods[i])
		}
		deficit := utilAcc - cur
		if deficit < 0.01 {
			break
		}
		for i := range ws {
			if deficit <= 0 {
				break
			}
			room := periods[i] - ws[i]
			if room <= 0 {
				continue
			}
			add := task.Time(deficit * float64(periods[i]))
			if add > room {
				add = room
			}
			ws[i] += add
			deficit -= float64(add) / float64(periods[i])
		}
	}

	tasks := make([]task.Task, n)
	for i := range tasks {
		tasks[i] = task.Task{
			Name:                    fmt.Sprintf("%s-t%d", name, i),
			Period:                  periods[i],
			WCETAccurate:            ws[i],
			WCETImprecise:           xs[i],
			ExecAccurate:            execDist(ws[i]),
			ExecImprecise:           execDist(xs[i]),
			Error:                   adderErrorDist(4+i%8, seed+uint64(i)),
			MaxConsecutiveImprecise: 1 + i%6, // B_i ∈ [1,6] per Table III
		}
	}
	c := &Case{
		Name: name, WantTasks: n, WantUtilAccurate: utilAcc,
		WantJobsPerHyper: jobsPerP, WantImpreciseOK: impOK,
		UtilTolerance: 0.05, tasks: tasks,
	}
	return c, c.verify()
}

// verify checks the constructed set against every target characteristic.
func (c *Case) verify() error {
	s, err := task.New(c.tasks)
	if err != nil {
		return err
	}
	if s.Len() != c.WantTasks {
		return fmt.Errorf("workload: %s: %d tasks, want %d", c.Name, s.Len(), c.WantTasks)
	}
	if got := s.JobsPerHyperperiod(); got != c.WantJobsPerHyper {
		return fmt.Errorf("workload: %s: %d jobs/P, want %d", c.Name, got, c.WantJobsPerHyper)
	}
	if got := s.UtilizationAccurate(); got < c.WantUtilAccurate-c.UtilTolerance ||
		got > c.WantUtilAccurate+c.UtilTolerance {
		return fmt.Errorf("workload: %s: U_acc %.3f, want %.3f±%.2f",
			c.Name, got, c.WantUtilAccurate, c.UtilTolerance)
	}
	if feasibility.Schedulable(s, task.Accurate) {
		return fmt.Errorf("workload: %s: unexpectedly schedulable in accurate mode", c.Name)
	}
	if got := feasibility.Schedulable(s, task.Imprecise); got != c.WantImpreciseOK {
		return fmt.Errorf("workload: %s: imprecise schedulability %v, want %v",
			c.Name, got, c.WantImpreciseOK)
	}
	return nil
}

// rnd5 is the special low-utilization case: U_acc ≈ 0.45 yet accurate mode
// fails Theorem 1 because the long-period task's accurate WCET blocks the
// short-period task (condition 2) — the classic non-preemptive pathology.
func rnd5() (*Case, error) {
	// Jobs/P: 2520/252 + 2520/420 + 2520/2520 = 10 + 6 + 1 = 17.
	// U_acc = 40/252 + 70/420 + 300/2520 ≈ 0.444. The blocker's accurate
	// WCET (300) exceeds the smallest period (252), so condition 2 fails at
	// L = 253 (demand 300 + 40 = 340 > 253) despite the low utilization.
	// Imprecise WCETs are small everywhere, so imprecise mode passes.
	tasks := []task.Task{
		{Name: "rnd5-t0", Period: 252, WCETAccurate: 40, WCETImprecise: 14},
		{Name: "rnd5-t1", Period: 420, WCETAccurate: 70, WCETImprecise: 24},
		{Name: "rnd5-t2", Period: 2520, WCETAccurate: 300, WCETImprecise: 60},
	}
	for i := range tasks {
		tasks[i].ExecAccurate = execDist(tasks[i].WCETAccurate)
		tasks[i].ExecImprecise = execDist(tasks[i].WCETImprecise)
		tasks[i].Error = adderErrorDist(5+2*i, 5000+uint64(i))
		tasks[i].MaxConsecutiveImprecise = 1 + i%6
	}
	c := &Case{
		Name: "Rnd5", WantTasks: 3, WantUtilAccurate: 0.45,
		WantJobsPerHyper: 17, WantImpreciseOK: true,
		UtilTolerance: 0.05, tasks: tasks,
	}
	return c, c.verify()
}

// Cases returns the full benchmark suite: Rnd1–Rnd13 plus the IDCT case,
// in Table I order. Construction is deterministic; errors indicate a bug
// (the tests lock the characteristics).
func Cases() ([]*Case, error) {
	specs := []struct {
		name    string
		n       int
		utilAcc float64
		jobs    int
		impOK   bool
	}{
		{"Rnd1", 2, 1.13, 13, true},
		{"Rnd2", 3, 1.88, 3, false},
		{"Rnd3", 5, 1.93, 15, true},
		{"Rnd4", 3, 1.20, 16, true},
		// Rnd5 handled specially below.
		{"Rnd6", 6, 2.20, 38, true},
		{"Rnd7", 8, 4.43, 38, true},
		{"Rnd8", 12, 2.91, 60, true},
		{"Rnd9", 15, 1.93, 24, true},
		{"Rnd10", 17, 4.99, 126, true},
		{"Rnd11", 20, 3.57, 105, true},
		{"Rnd12", 22, 5.47, 130, true},
		{"Rnd13", 25, 7.12, 163, true},
	}
	var out []*Case
	for i, sp := range specs {
		c, err := buildRandomCase(sp.name, sp.n, sp.jobs, sp.utilAcc, sp.impOK, uint64(1000*(i+1)))
		if err != nil {
			return nil, err
		}
		out = append(out, c)
		if sp.name == "Rnd4" {
			c5, err := rnd5()
			if err != nil {
				return nil, err
			}
			out = append(out, c5)
		}
	}
	idct, err := IDCTCase()
	if err != nil {
		return nil, err
	}
	out = append(out, idct)
	return out, nil
}

// CaseByName returns one case from the suite.
func CaseByName(name string) (*Case, error) {
	cs, err := Cases()
	if err != nil {
		return nil, err
	}
	for _, c := range cs {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown case %q", name)
}
