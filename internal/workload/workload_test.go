package workload

import (
	"strings"
	"testing"

	"nprt/internal/feasibility"
	"nprt/internal/rng"
	"nprt/internal/task"
)

// TestTableICharacteristics locks every reconstructed Table I column: task
// count, accurate utilization, jobs per hyper-period, and both Theorem-1
// verdicts.
func TestTableICharacteristics(t *testing.T) {
	cases, err := CachedCases()
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 14 {
		t.Fatalf("suite has %d cases, want 14 (Rnd1–Rnd13 + IDCT)", len(cases))
	}
	wantOrder := []string{"Rnd1", "Rnd2", "Rnd3", "Rnd4", "Rnd5", "Rnd6", "Rnd7",
		"Rnd8", "Rnd9", "Rnd10", "Rnd11", "Rnd12", "Rnd13", "IDCT"}
	for i, c := range cases {
		if c.Name != wantOrder[i] {
			t.Errorf("case %d is %s, want %s", i, c.Name, wantOrder[i])
		}
		s, err := c.Set()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if s.Len() != c.WantTasks {
			t.Errorf("%s: %d tasks, want %d", c.Name, s.Len(), c.WantTasks)
		}
		if got := s.JobsPerHyperperiod(); got != c.WantJobsPerHyper {
			t.Errorf("%s: %d jobs/P, want %d", c.Name, got, c.WantJobsPerHyper)
		}
		u := s.UtilizationAccurate()
		if u < c.WantUtilAccurate-c.UtilTolerance || u > c.WantUtilAccurate+c.UtilTolerance {
			t.Errorf("%s: U_acc = %.3f, want %.3f±%.2f", c.Name, u, c.WantUtilAccurate, c.UtilTolerance)
		}
		if feasibility.Schedulable(s, task.Accurate) {
			t.Errorf("%s: schedulable accurate — Table I says No for every case", c.Name)
		}
		if got := feasibility.Schedulable(s, task.Imprecise); got != c.WantImpreciseOK {
			t.Errorf("%s: imprecise schedulable = %v, want %v", c.Name, got, c.WantImpreciseOK)
		}
	}
}

func TestCasesDeterministic(t *testing.T) {
	a, err := Cases()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cases()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		sa, sb := a[i].MustSet(), b[i].MustSet()
		for j := 0; j < sa.Len(); j++ {
			ta, tb := sa.Task(j), sb.Task(j)
			if ta.Period != tb.Period || ta.WCETAccurate != tb.WCETAccurate ||
				ta.WCETImprecise != tb.WCETImprecise || ta.Error != tb.Error {
				t.Fatalf("%s task %d differs between constructions", a[i].Name, j)
			}
		}
	}
}

func TestTaskModelDetails(t *testing.T) {
	cases, err := CachedCases()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		s := c.MustSet()
		for i := 0; i < s.Len(); i++ {
			tk := s.Task(i)
			if tk.Error.Mean <= 0 {
				t.Errorf("%s/%s: non-positive mean error", c.Name, tk.Name)
			}
			if tk.ExecAccurate.IsZero() || tk.ExecImprecise.IsZero() {
				t.Errorf("%s/%s: missing execution-time distribution", c.Name, tk.Name)
			}
			// WCET/BCET ≈ 10 (the distribution's lower truncation).
			if ratio := float64(tk.WCETAccurate) / tk.ExecAccurate.Min; ratio < 8 || ratio > 12 {
				t.Errorf("%s/%s: WCET/BCET = %.1f, want ≈10", c.Name, tk.Name, ratio)
			}
			// μ + 6σ within WCET (the margin).
			if tk.ExecAccurate.Mean+6*tk.ExecAccurate.Sigma > float64(tk.WCETAccurate)+1e-9 {
				t.Errorf("%s/%s: μ+6σ exceeds WCET", c.Name, tk.Name)
			}
			if tk.MaxConsecutiveImprecise < 1 || tk.MaxConsecutiveImprecise > 6 {
				t.Errorf("%s/%s: B = %d outside Table III's [1,6]", c.Name, tk.Name, tk.MaxConsecutiveImprecise)
			}
		}
	}
}

func TestCaseByName(t *testing.T) {
	c, err := CaseByName("Rnd7")
	if err != nil || c.Name != "Rnd7" {
		t.Fatalf("CaseByName(Rnd7) = %v, %v", c, err)
	}
	if _, err := CaseByName("nope"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("unknown case error = %v", err)
	}
}

func TestIDCTCaseStructure(t *testing.T) {
	c, err := IDCTCase()
	if err != nil {
		t.Fatal(err)
	}
	s := c.MustSet()
	// The imprecise/accurate cost ratio must reflect the 6/8 truncation.
	for i := 0; i < s.Len(); i++ {
		tk := s.Task(i)
		ratio := float64(tk.WCETImprecise) / float64(tk.WCETAccurate)
		if ratio < 0.70 || ratio > 0.80 {
			t.Errorf("%s: x/w = %.2f, want ≈0.75 (6 of 8 rows kept)", tk.Name, ratio)
		}
	}
	// Imprecise mode must fail Theorem 1 (Table I's IDCT row).
	if feasibility.Schedulable(s, task.Imprecise) {
		t.Error("IDCT case schedulable imprecise; Table I says No")
	}
}

func TestNewtonCaseTableIV(t *testing.T) {
	c, infos, err := NewtonCase()
	if err != nil {
		t.Fatal(err)
	}
	s := c.MustSet()
	if s.Len() != 3 || len(infos) != 3 {
		t.Fatalf("Newton case has %d tasks / %d infos", s.Len(), len(infos))
	}
	// Accurate WCETs reproduce Table IV (0.96 s, 1.21 s, 2.01 s).
	want := []task.Time{960000, 1210000, 2010000}
	for i, info := range infos {
		if info.AccurateWCET != want[i] {
			t.Errorf("%s: accurate WCET %d, want %d", info.Name, info.AccurateWCET, want[i])
		}
		if info.ImpreciseWCET >= info.AccurateWCET || info.ImpreciseWCET < 1 {
			t.Errorf("%s: imprecise WCET %d out of range", info.Name, info.ImpreciseWCET)
		}
		if info.MeanError <= 0 {
			t.Errorf("%s: zero mean error", info.Name)
		}
	}
	// τ2 is the well-behaved equation: its imprecise/accurate ratio must be
	// the smallest of the three (the paper calls out exactly this).
	ratio := func(i int) float64 {
		return float64(infos[i].ImpreciseWCET) / float64(infos[i].AccurateWCET)
	}
	if !(ratio(1) < ratio(0) && ratio(1) < ratio(2)) {
		t.Errorf("τ2 ratio %.2f not the smallest (τ1 %.2f, τ3 %.2f)", ratio(1), ratio(0), ratio(2))
	}
}

func TestUtilizationSweep(t *testing.T) {
	c, err := CaseByName("Rnd7")
	if err != nil {
		t.Fatal(err)
	}
	s := c.MustSet()
	targets := []float64{1.1, 1.5, 2.0, 3.0}
	sets, err := UtilizationSweep(s, targets)
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range sets {
		got := sc.UtilizationAccurate()
		if got < targets[i]*0.93 || got > targets[i]*1.07 {
			t.Errorf("sweep[%d]: U = %.3f, want ≈%.2f", i, got, targets[i])
		}
		if sc.Hyperperiod() != s.Hyperperiod() {
			t.Errorf("sweep[%d]: hyper-period changed", i)
		}
		// The imprecise/accurate structure must be preserved.
		for j := 0; j < sc.Len(); j++ {
			if sc.Task(j).WCETImprecise >= sc.Task(j).WCETAccurate {
				t.Errorf("sweep[%d] task %d: WCET ordering broken", i, j)
			}
		}
	}
}

func TestPickJobCountsInvariants(t *testing.T) {
	r := newTestStream()
	for _, tc := range []struct{ n, total int }{{2, 13}, {5, 15}, {8, 38}, {25, 163}} {
		counts, err := pickJobCounts(tc.n, tc.total, r)
		if err != nil {
			t.Fatalf("pickJobCounts(%d,%d): %v", tc.n, tc.total, err)
		}
		sum := task.Time(0)
		hasOne := false
		for _, c := range counts {
			sum += c
			if baseHyper%c != 0 {
				t.Errorf("count %d does not divide the base hyper-period", c)
			}
			if c == 1 {
				hasOne = true
			}
		}
		if int(sum) != tc.total {
			t.Errorf("counts sum to %d, want %d", sum, tc.total)
		}
		if !hasOne {
			t.Error("no task pins the hyper-period")
		}
	}
	if _, err := pickJobCounts(5, 3, r); err == nil {
		t.Error("total below task count accepted")
	}
}

// newTestStream gives tests deterministic randomness without reaching into
// the rng package's internals.
func newTestStream() *rng.Stream { return rng.New(424242) }

func TestGenerateErrors(t *testing.T) {
	// Impossible: fewer jobs than tasks.
	if _, err := Generate(RandomSpec{Tasks: 5, JobsPerHyperperiod: 3,
		UtilizationAccurate: 1.5, ImpreciseFeasible: true, Seed: 1}); err == nil {
		t.Error("jobs < tasks accepted")
	}
	// Unreachable utilization: far above what n tasks can carry.
	if _, err := Generate(RandomSpec{Tasks: 2, JobsPerHyperperiod: 4,
		UtilizationAccurate: 50, ImpreciseFeasible: true, Seed: 1}); err == nil {
		t.Error("absurd utilization accepted")
	}
	// Default name applies.
	s, err := Generate(RandomSpec{Tasks: 2, JobsPerHyperperiod: 6,
		UtilizationAccurate: 1.3, ImpreciseFeasible: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Task(0).Name; len(got) < 3 || got[:3] != "gen" {
		t.Errorf("default name prefix missing: %q", got)
	}
}
