package workload

import (
	"fmt"

	"nprt/internal/task"
)

// SyntheticStress builds an n-task set designed to keep the simulator's
// pending queue deep, for dispatch-engine benchmarks. All tasks share one
// period of 4n and are released simultaneously, so every hyper-period
// starts with all n jobs pending and the queue drains linearly; the mean
// queue depth is about n/2. Imprecise utilization is 0.75 (3/(4n) per
// task), accurate utilization 1.5, so a fixed-imprecise policy is busy but
// schedulable while queue pressure stays high. Error means vary per task
// so the error accumulators do real floating-point work.
func SyntheticStress(n int) (*task.Set, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: SyntheticStress needs n >= 1, got %d", n)
	}
	period := task.Time(4 * n)
	tasks := make([]task.Task, n)
	for i := range tasks {
		tasks[i] = task.Task{
			Name:          fmt.Sprintf("stress%04d", i),
			Period:        period,
			WCETAccurate:  6,
			WCETImprecise: 3,
			Error:         task.Dist{Mean: 1 + float64(i%7)*0.25},
		}
	}
	return task.New(tasks)
}
