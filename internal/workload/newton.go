package workload

import (
	"fmt"

	"nprt/internal/imprecise"
	"nprt/internal/task"
)

// Newton–Raphson case (§VI-B / Table IV): three periodic tasks, each
// solving a family of nonlinear equations with a tight convergence
// criterion in accurate mode and a loose one in imprecise mode. WCETs come
// from the paper's own procedure — the longest runtime over many random
// instances plus a margin — with iteration counts converted to virtual time
// by a per-iteration cost calibrated against the accurate WCETs the paper
// measured on its ARM Cortex-A53 (0.96 s, 1.21 s, 2.01 s).

// NRToleranceAccurate is ε̂_accurate of Table IV.
const NRToleranceAccurate = 1e-5

// NRTolerancesImprecise are ε̂_imprecise of Table IV, per task.
var NRTolerancesImprecise = []float64{20, 0.5, 5}

// nrAccurateWCET are the paper's measured accurate WCETs in virtual
// microseconds (Table IV, seconds × 1e6).
var nrAccurateWCET = []task.Time{960000, 1210000, 2010000}

// nrPeriods place the three solvers on a 12-second hyper-period.
var nrPeriods = []task.Time{3000000, 4000000, 6000000}

// NRTaskInfo reports the derived per-task profile (the Table IV columns).
type NRTaskInfo struct {
	Name             string
	AccurateWCET     task.Time
	ImpreciseWCET    task.Time
	TolAccurate      float64
	TolImprecise     float64
	MeanError        float64
	IterCostMicros   float64 // virtual µs per Newton iteration
	MaxIterAccurate  int
	MaxIterImprecise int
}

// NewtonCase builds the prototype testcase and returns the per-task
// profiles alongside. The characterization margin (10%) matches the
// paper's "augmenting with additional margin".
func NewtonCase() (*Case, []NRTaskInfo, error) {
	eqs := imprecise.NewtonEquations()
	if len(eqs) != len(nrAccurateWCET) {
		return nil, nil, fmt.Errorf("workload: %d equations for %d WCET rows", len(eqs), len(nrAccurateWCET))
	}
	tasks := make([]task.Task, len(eqs))
	infos := make([]NRTaskInfo, len(eqs))
	for i, eq := range eqs {
		tight := imprecise.CharacterizeNR(eq, NRToleranceAccurate, 1e-9, 500, 7100+uint64(i))
		loose := imprecise.CharacterizeNR(eq, NRTolerancesImprecise[i], 1e-9, 500, 7100+uint64(i))
		if tight.MaxIterations == 0 || loose.MaxIterations == 0 {
			return nil, nil, fmt.Errorf("workload: %s characterization degenerate", eq.Name)
		}
		// Calibrate per-iteration cost so the accurate WCET (max iterations
		// plus 10% margin) reproduces the measured value.
		iterCost := float64(nrAccurateWCET[i]) / (float64(tight.MaxIterations) * 1.1)
		w := nrAccurateWCET[i]
		x := task.Time(float64(loose.MaxIterations) * 1.1 * iterCost)
		if x >= w {
			x = w - 1
		}
		if x < 1 {
			x = 1
		}
		tasks[i] = task.Task{
			Name:          fmt.Sprintf("nr-%s", eq.Name),
			Period:        nrPeriods[i],
			WCETAccurate:  w,
			WCETImprecise: x,
			// Newton runtimes vary with the drawn instance; model the usual
			// spread with the generic recipe.
			ExecAccurate:  execDist(w),
			ExecImprecise: execDist(x),
			Error:         task.Dist{Mean: loose.MeanError, Sigma: loose.ErrStdDev},
		}
		infos[i] = NRTaskInfo{
			Name:             tasks[i].Name,
			AccurateWCET:     w,
			ImpreciseWCET:    x,
			TolAccurate:      NRToleranceAccurate,
			TolImprecise:     NRTolerancesImprecise[i],
			MeanError:        loose.MeanError,
			IterCostMicros:   iterCost,
			MaxIterAccurate:  tight.MaxIterations,
			MaxIterImprecise: loose.MaxIterations,
		}
	}
	c := &Case{
		Name: "Newton", WantTasks: len(tasks),
		WantJobsPerHyper: 4 + 3 + 2,
		// U_acc = 0.96/3 + 1.21/4 + 2.01/6 ≈ 0.96 — under 1 but
		// non-preemptively infeasible is not guaranteed here, so the Newton
		// case does not assert Table I columns; it asserts its own.
		WantUtilAccurate: 0.96, UtilTolerance: 0.05,
		WantImpreciseOK: true,
		tasks:           tasks,
	}
	s, err := c.Set()
	if err != nil {
		return nil, nil, err
	}
	if got := s.JobsPerHyperperiod(); got != c.WantJobsPerHyper {
		return nil, nil, fmt.Errorf("workload: Newton jobs/P = %d", got)
	}
	return c, infos, nil
}
