package workload

import (
	"fmt"
	"sync"

	"nprt/internal/task"
)

// UtilizationSweep returns copies of the set scaled to each accurate-mode
// utilization target (the x-axis of Figures 3 and 5). Scaling multiplies
// both WCET columns and the execution-time distributions, so the
// imprecise/accurate ratio — and therefore the error statistics — are
// preserved while the load varies.
func UtilizationSweep(s *task.Set, targets []float64) ([]*task.Set, error) {
	base := s.UtilizationAccurate()
	if base <= 0 {
		return nil, fmt.Errorf("workload: set has zero utilization")
	}
	out := make([]*task.Set, 0, len(targets))
	for _, u := range targets {
		scaled, err := s.Scale(u / base)
		if err != nil {
			return nil, fmt.Errorf("workload: scaling to U=%.2f: %w", u, err)
		}
		out = append(out, scaled)
	}
	return out, nil
}

var (
	casesOnce sync.Once
	casesMemo []*Case
	casesErr  error
)

// CachedCases memoizes Cases(): the suite construction characterizes
// adders and transforms, which is cheap but not free, and the experiment
// harness asks for the suite repeatedly.
func CachedCases() ([]*Case, error) {
	casesOnce.Do(func() { casesMemo, casesErr = Cases() })
	return casesMemo, casesErr
}

// RandomSpec parameterizes a synthetic task set in the style of the
// paper's random testcases.
type RandomSpec struct {
	Name                string  // label prefix for task names
	Tasks               int     // number of periodic tasks
	JobsPerHyperperiod  int     // Σ P/p_i target (periods divide 2520)
	UtilizationAccurate float64 // Σ w_i/p_i target (±0.05)
	ImpreciseFeasible   bool    // whether Theorem 1 must pass at imprecise WCETs
	Seed                uint64  // deterministic construction seed
}

// Generate builds a task set matching the spec, with execution-time
// distributions following the paper's WCET = μ+6σ+margin / WCET÷BCET ≈ 10
// recipe and error statistics characterized from the approximate adder.
// The construction is deterministic in the seed; an error means no nearby
// seed satisfies every target.
func Generate(spec RandomSpec) (*task.Set, error) {
	name := spec.Name
	if name == "" {
		name = "gen"
	}
	c, err := buildRandomCase(name, spec.Tasks, spec.JobsPerHyperperiod,
		spec.UtilizationAccurate, spec.ImpreciseFeasible, spec.Seed)
	if err != nil {
		return nil, err
	}
	return c.Set()
}
