package workload

import (
	"fmt"

	"nprt/internal/imprecise"
	"nprt/internal/task"
)

// IDCT case construction (§VI-A's realistic case): five periodic decoding
// tasks over grayscale and RGB frames of various resolutions. WCETs derive
// from the transform's multiply counts (accurate = full 8×8 inverse DCT,
// imprecise = coefficient-truncated), and error statistics from measuring
// the truncated transform against the exact one on synthetic frames —
// "obtained from actual measurement" as in the paper.

// IDCTKeep is the truncation level of the imprecise decode: a 6×8-row
// truncated inverse keeps the cost at 75% of accurate, which (deliberately)
// leaves the set unschedulable even in imprecise mode, matching the IDCT
// row of Table I.
const IDCTKeep = 6

// idctSpecs are the five frame workloads.
var idctSpecs = []imprecise.ImageSpec{
	{Name: "gray-qqvga", Width: 160, Height: 120, Channels: 1},
	{Name: "gray-qvga", Width: 320, Height: 240, Channels: 1},
	{Name: "rgb-qvga", Width: 320, Height: 240, Channels: 3},
	{Name: "gray-vga", Width: 640, Height: 480, Channels: 1},
	{Name: "rgb-vga", Width: 640, Height: 480, Channels: 3},
}

// idctPeriods pair each frame stream with a virtual-time period; the
// hyper-period is 3600 and the job count 12+10+6+4+3 = 35 (Table I).
var idctPeriods = []task.Time{300, 360, 600, 900, 1200}

// opCost converts transform multiplies to virtual microseconds, calibrated
// so the accurate-mode utilization lands at Table I's 1.02.
const opCost = 3.6e-5

// IDCTCase builds the IDCT testcase.
func IDCTCase() (*Case, error) {
	n := len(idctSpecs)
	tasks := make([]task.Task, n)
	for i, spec := range idctSpecs {
		ch := imprecise.CharacterizeIDCT(spec, IDCTKeep, 150, 4200+uint64(i))
		w := task.Time(float64(ch.AccurateOps) * opCost)
		x := task.Time(float64(ch.ImpreciseOps) * opCost)
		if x >= w {
			x = w - 1
		}
		tasks[i] = task.Task{
			Name:                    "idct-" + spec.Name,
			Period:                  idctPeriods[i],
			WCETAccurate:            w,
			WCETImprecise:           x,
			ExecAccurate:            execDist(w),
			ExecImprecise:           execDist(x),
			Error:                   task.Dist{Mean: ch.MeanError, Sigma: ch.ErrStdDev},
			MaxConsecutiveImprecise: 1 + i%6,
		}
	}
	c := &Case{
		Name: "IDCT", WantTasks: n, WantUtilAccurate: 1.02,
		WantJobsPerHyper: 35, WantImpreciseOK: false,
		UtilTolerance: 0.05, tasks: tasks,
	}
	if err := c.verify(); err != nil {
		return nil, fmt.Errorf("IDCT case: %w", err)
	}
	return c, nil
}
