package cli

import (
	"strings"
	"testing"

	"nprt/internal/sim"
	"nprt/internal/task"
)

func TestMethodsListStable(t *testing.T) {
	ms := Methods()
	if len(ms) != 8 {
		t.Fatalf("%d methods", len(ms))
	}
	want := []string{"EDF-Accurate", "EDF-Imprecise", "EDF+ESR",
		"ILP+OA", "ILP+Post+OA", "Flipped EDF", "EDF+ESR(C)", "DP(C)"}
	for i := range want {
		if ms[i] != want[i] {
			t.Errorf("method[%d] = %q, want %q", i, ms[i], want[i])
		}
	}
}

func TestBuildPolicyAllMethods(t *testing.T) {
	s, err := task.New([]task.Task{
		{Name: "a", Period: 20, WCETAccurate: 8, WCETImprecise: 3,
			Error: task.Dist{Mean: 1}, MaxConsecutiveImprecise: 2},
		{Name: "b", Period: 40, WCETAccurate: 12, WCETImprecise: 5,
			Error: task.Dist{Mean: 2}, MaxConsecutiveImprecise: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Methods() {
		p, err := BuildPolicy(m, s)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		res, err := sim.Run(s, p, sim.Config{Hyperperiods: 5})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.Jobs == 0 {
			t.Errorf("%s: executed nothing", m)
		}
	}
	if _, err := BuildPolicy("bogus", s); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("bogus method error = %v", err)
	}
}

func TestBuildPolicyDPInfeasible(t *testing.T) {
	// B=1 with an impossible budget: DP(C) must refuse.
	s, err := task.New([]task.Task{
		{Name: "a", Period: 10, WCETAccurate: 9, WCETImprecise: 3,
			Error: task.Dist{Mean: 1}, MaxConsecutiveImprecise: 1},
		{Name: "b", Period: 10, WCETAccurate: 9, WCETImprecise: 3,
			Error: task.Dist{Mean: 1}, MaxConsecutiveImprecise: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildPolicy("DP(C)", s); err == nil {
		t.Error("DP(C) accepted an infeasible set")
	}
}

func TestLoadSetBuiltins(t *testing.T) {
	for _, name := range []string{"Rnd1", "IDCT", "Newton"} {
		s, err := LoadSet(name, "")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Len() == 0 {
			t.Errorf("%s: empty set", name)
		}
	}
	if _, err := LoadSet("nope", ""); err == nil {
		t.Error("unknown case accepted")
	}
	if _, err := LoadSet("Rnd1", "also-a-file"); err == nil {
		t.Error("both -case and -file accepted")
	}
	if _, err := LoadSet("", ""); err == nil {
		t.Error("neither -case nor -file accepted")
	}
	if _, err := LoadSet("", "/nonexistent/tasks.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadSetJSONRoundTrip(t *testing.T) {
	s, err := LoadSetJSON(strings.NewReader(`[
	  {"Name":"a","Period":10,"WCETAccurate":4,"WCETImprecise":2}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := s.EncodeJSON(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSetJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("re-decoding encoded set: %v\n%s", err, sb.String())
	}
	if back.Len() != s.Len() || back.Hyperperiod() != s.Hyperperiod() {
		t.Error("round trip changed the set")
	}
}

func TestCaseNames(t *testing.T) {
	names, err := CaseNames()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 15 || names[len(names)-1] != "Newton" {
		t.Errorf("CaseNames = %v", names)
	}
}

func TestSortedSeriesNames(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedSeriesNames(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("SortedSeriesNames = %v", got)
	}
}
