// Package cli holds the plumbing shared by the command-line tools:
// resolving task sets (built-in testcases or JSON files), the method
// registry mapping the paper's method names to policy constructors, and
// small formatting helpers. Keeping it out of package main makes the CLI
// behaviour unit-testable.
package cli

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"sync/atomic"
	"syscall"

	"nprt/internal/cumulative"
	"nprt/internal/esr"
	"nprt/internal/offline"
	"nprt/internal/policy"
	"nprt/internal/sim"
	"nprt/internal/task"
	"nprt/internal/workload"
)

// Methods lists every schedulable method name, in presentation order.
func Methods() []string {
	return []string{
		"EDF-Accurate", "EDF-Imprecise", "EDF+ESR",
		"ILP+OA", "ILP+Post+OA", "Flipped EDF",
		"EDF+ESR(C)", "DP(C)",
	}
}

// BuildPolicy constructs a fresh policy by its method name. Offline methods
// use the best-effort fallback so every built-in case produces a run.
func BuildPolicy(method string, s *task.Set) (sim.Policy, error) {
	switch method {
	case "EDF-Accurate":
		return policy.NewEDFAccurate(), nil
	case "EDF-Imprecise":
		return policy.NewEDFImprecise(), nil
	case "EDF+ESR":
		return esr.New(), nil
	case "ILP+OA":
		return offline.NewILPOABestEffort(s)
	case "ILP+Post+OA":
		return offline.NewILPPostOABestEffort(s)
	case "Flipped EDF":
		return offline.NewFlippedEDFBestEffort(s)
	case "EDF+ESR(C)":
		return cumulative.NewESR(), nil
	case "DP(C)":
		plan, stats, err := cumulative.Solve(s, cumulative.Options{SuperPeriodFactorCap: 4})
		if err != nil {
			return nil, err
		}
		if !stats.Feasible {
			return nil, fmt.Errorf("DP(C): no feasible precision assignment (truncated=%v)", stats.Truncated)
		}
		return cumulative.NewReplay(plan), nil
	default:
		return nil, fmt.Errorf("unknown method %q (available: %v)", method, Methods())
	}
}

// LoadSet resolves a task set from a built-in case name or a JSON file
// (exactly one of the two must be non-empty). The JSON format is an array
// of task.Task objects.
func LoadSet(caseName, file string) (*task.Set, error) {
	switch {
	case caseName != "" && file != "":
		return nil, fmt.Errorf("use either -case or -file, not both")
	case caseName == "Newton":
		c, _, err := workload.NewtonCase()
		if err != nil {
			return nil, err
		}
		return c.Set()
	case caseName != "":
		c, err := workload.CaseByName(caseName)
		if err != nil {
			return nil, err
		}
		return c.Set()
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return LoadSetJSON(f)
	default:
		return nil, fmt.Errorf("specify -case <name> or -file <tasks.json>")
	}
}

// LoadSetJSON decodes a JSON task array from a reader.
func LoadSetJSON(r io.Reader) (*task.Set, error) {
	return task.DecodeJSON(r)
}

// CaseNames lists the built-in testcases, including the prototype case.
func CaseNames() ([]string, error) {
	cases, err := workload.CachedCases()
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(cases)+1)
	for _, c := range cases {
		names = append(names, c.Name)
	}
	names = append(names, "Newton")
	return names, nil
}

// SortedSeriesNames returns a figure's series names in stable order (used
// by table renderers).
func SortedSeriesNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Interrupted installs a SIGINT/SIGTERM handler and returns a polling
// function for the tools' graceful-shutdown convention: the first signal
// only raises the flag — the tool finishes its current unit of work,
// flushes partial results and exits with code 4 — while a second signal
// aborts immediately with the conventional 130. Call once, early in main.
func Interrupted() func() bool {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	var fired atomic.Bool
	go func() {
		<-ch
		fired.Store(true)
		fmt.Fprintln(os.Stderr,
			"interrupt: finishing current work and flushing partial results (interrupt again to abort)")
		<-ch
		os.Exit(130)
	}()
	return fired.Load
}

// ExitInterrupted is the exit code shared by the tools when a run was cut
// short by a signal but partial results were flushed cleanly. It extends
// the schedcheck code convention (0 ok, 1 internal, 2 invalid input,
// 3 unschedulable).
const ExitInterrupted = 4
