package esr

import (
	"testing"

	"nprt/internal/feasibility"
	"nprt/internal/policy"
	"nprt/internal/sim"
	"nprt/internal/task"
	"nprt/internal/trace"
)

func mkSet(t *testing.T, tasks ...task.Task) *task.Set {
	t.Helper()
	s, err := task.New(tasks)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// impreciseFeasibleSet is not schedulable accurate (U=1.35) but comfortably
// schedulable imprecise.
func impreciseFeasibleSet(t *testing.T) *task.Set {
	return mkSet(t,
		task.Task{
			Name: "a", Period: 20, WCETAccurate: 18, WCETImprecise: 4,
			ExecAccurate:  task.Dist{Mean: 8, Sigma: 2, Min: 2, Max: 18},
			ExecImprecise: task.Dist{Mean: 2, Sigma: 0.5, Min: 1, Max: 4},
			Error:         task.Dist{Mean: 3, Sigma: 1},
		},
		task.Task{
			Name: "b", Period: 40, WCETAccurate: 18, WCETImprecise: 5,
			ExecAccurate:  task.Dist{Mean: 9, Sigma: 2, Min: 2, Max: 18},
			ExecImprecise: task.Dist{Mean: 3, Sigma: 1, Min: 1, Max: 5},
			Error:         task.Dist{Mean: 6, Sigma: 2},
		},
	)
}

func TestNoDeadlineMissWhenImpreciseFeasible(t *testing.T) {
	s := impreciseFeasibleSet(t)
	if !feasibility.Schedulable(s, task.Imprecise) {
		t.Fatal("premise: set must be imprecise-feasible")
	}
	if feasibility.Schedulable(s, task.Accurate) {
		t.Fatal("premise: set must not be accurate-feasible")
	}
	for seed := uint64(1); seed <= 5; seed++ {
		res, err := sim.Run(s, New(), sim.Config{
			Hyperperiods: 200,
			Sampler:      sim.NewRandomSampler(s, seed),
			TraceLimit:   -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Misses.Events != 0 {
			t.Errorf("seed %d: EDF+ESR missed %d deadlines", seed, res.Misses.Events)
		}
		vs := trace.Validate(res.Trace, trace.Options{RequireDeadlines: true, WCETBounds: true, Set: s})
		if len(vs) != 0 {
			t.Errorf("seed %d: trace violations: %v", seed, vs[:minInt(3, len(vs))])
		}
	}
}

func TestESRBeatsEDFImpreciseOnError(t *testing.T) {
	s := impreciseFeasibleSet(t)
	cfg := func(seed uint64) sim.Config {
		return sim.Config{Hyperperiods: 500, Sampler: sim.NewRandomSampler(s, seed)}
	}
	esrRes, err := sim.Run(s, New(), cfg(42))
	if err != nil {
		t.Fatal(err)
	}
	impRes, err := sim.Run(s, policy.NewEDFImprecise(), cfg(42))
	if err != nil {
		t.Fatal(err)
	}
	if esrRes.MeanError() >= impRes.MeanError() {
		t.Errorf("EDF+ESR error %g not below EDF-Imprecise %g",
			esrRes.MeanError(), impRes.MeanError())
	}
	if esrRes.Accurate == 0 {
		t.Error("EDF+ESR never reclaimed enough slack for an accurate run")
	}
}

func TestLowUtilizationRunsAllAccurate(t *testing.T) {
	// γ_min is large: individual slack alone covers w−x for every job.
	s := mkSet(t,
		task.Task{Name: "a", Period: 100, WCETAccurate: 8, WCETImprecise: 6,
			Error: task.Dist{Mean: 5}},
		task.Task{Name: "b", Period: 200, WCETAccurate: 10, WCETImprecise: 8,
			Error: task.Dist{Mean: 5}},
	)
	res, err := sim.Run(s, New(), sim.Config{Hyperperiods: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Imprecise != 0 {
		t.Errorf("%d imprecise executions on a trivially slack set", res.Imprecise)
	}
	if res.MeanError() != 0 {
		t.Errorf("mean error %g, want 0", res.MeanError())
	}
}

func TestTightSetStaysMostlyImprecise(t *testing.T) {
	// Imprecise-mode utilization very close to 1 and deterministic WCET
	// execution: no earliness, no idle, γ_min ≈ 1 → imprecise everywhere.
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 9, WCETImprecise: 5,
			Error: task.Dist{Mean: 1}},
		task.Task{Name: "b", Period: 20, WCETAccurate: 18, WCETImprecise: 9,
			Error: task.Dist{Mean: 1}},
	)
	// U_imp = 0.5 + 0.45 = 0.95; WorstCaseSampler: every exec at WCET.
	res, err := sim.Run(s, New(), sim.Config{Hyperperiods: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses.Events != 0 {
		t.Errorf("missed %d deadlines", res.Misses.Events)
	}
	if res.Accurate > res.Imprecise {
		t.Errorf("tight set upgraded too often: acc=%d imp=%d", res.Accurate, res.Imprecise)
	}
}

func TestInterJobSlackEnablesUpgrade(t *testing.T) {
	// Single task, period 10, w=9, x=5; actual imprecise execution takes 1.
	// With deterministic early finishes, the inter-job slack from job k is
	// f_k − max(r_{k+1}, f'_k). Jobs never queue (period 10, exec ≤ 9), so
	// r_{k+1} ≥ f_k and inter-job slack is 0 here; idle slack does the work:
	// nominal finish = r + 5, idle = min(d, r_next) − (r+5) = 10 − 5 = 5 ≥ 4.
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 9, WCETImprecise: 5,
			ExecAccurate:  task.Dist{Mean: 2, Sigma: 0, Min: 2, Max: 2},
			ExecImprecise: task.Dist{Mean: 1, Sigma: 0, Min: 1, Max: 1},
			Error:         task.Dist{Mean: 1}},
	)
	res, err := sim.Run(s, New(), sim.Config{Hyperperiods: 5, Sampler: sim.NewRandomSampler(s, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Imprecise != 0 {
		t.Errorf("idle slack should upgrade every job: acc=%d imp=%d",
			res.Accurate, res.Imprecise)
	}
}

func TestAblationsReduceUpgrades(t *testing.T) {
	s := impreciseFeasibleSet(t)
	full, err := sim.Run(s, New(), sim.Config{Hyperperiods: 300, Sampler: sim.NewRandomSampler(s, 3)})
	if err != nil {
		t.Fatal(err)
	}
	all := &Policy{DisableIndividual: true, DisableIdle: true, DisableInter: true, Label: "ESR-none"}
	none, err := sim.Run(s, all, sim.Config{Hyperperiods: 300, Sampler: sim.NewRandomSampler(s, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if none.Accurate != 0 {
		t.Errorf("all-disabled ESR still upgraded %d jobs", none.Accurate)
	}
	if full.Accurate == 0 {
		t.Error("full ESR upgraded nothing")
	}
	for _, ablate := range []*Policy{
		{DisableIdle: true, Label: "ESR-noidle"},
		{DisableInter: true, Label: "ESR-nointer"},
		{DisableIndividual: true, Label: "ESR-noind"},
	} {
		r, err := sim.Run(s, ablate, sim.Config{Hyperperiods: 300, Sampler: sim.NewRandomSampler(s, 3)})
		if err != nil {
			t.Fatal(err)
		}
		if r.Accurate > full.Accurate {
			t.Errorf("%s upgraded more (%d) than full ESR (%d)", ablate.Label, r.Accurate, full.Accurate)
		}
		if r.Misses.Events != 0 {
			t.Errorf("%s missed deadlines", ablate.Label)
		}
	}
}

func TestDecisionCountsTrackModes(t *testing.T) {
	s := impreciseFeasibleSet(t)
	p := New()
	res, err := sim.Run(s, p, sim.Config{Hyperperiods: 50, Sampler: sim.NewRandomSampler(s, 9)})
	if err != nil {
		t.Fatal(err)
	}
	if p.Decisions.Accurate != res.Accurate || p.Decisions.Imprecise != res.Imprecise {
		t.Errorf("decision counters (%d/%d) disagree with engine (%d/%d)",
			p.Decisions.Accurate, p.Decisions.Imprecise, res.Accurate, res.Imprecise)
	}
}

func TestNameAndLabel(t *testing.T) {
	if New().Name() != "EDF+ESR" {
		t.Errorf("default name = %q", New().Name())
	}
	if (&Policy{Label: "X"}).Name() != "X" {
		t.Error("label override broken")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Jeffay's conditions are sufficient for sporadic tasks too (the period is
// the minimum inter-release separation), so EDF+ESR keeps its no-miss
// guarantee under release jitter.
func TestNoDeadlineMissUnderSporadicReleases(t *testing.T) {
	s := impreciseFeasibleSet(t)
	dists := []task.Dist{
		{Mean: 3, Sigma: 2, Min: 0, Max: 10},
		{Mean: 6, Sigma: 4, Min: 0, Max: 20},
	}
	for seed := uint64(1); seed <= 3; seed++ {
		res, err := sim.Run(s, New(), sim.Config{
			Hyperperiods: 200,
			Sampler:      sim.NewRandomSampler(s, seed),
			Jitter:       sim.NewRandomJitter(s, dists, seed),
			TraceLimit:   -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Misses.Events != 0 {
			t.Errorf("seed %d: %d misses under jitter", seed, res.Misses.Events)
		}
		vs := trace.Validate(res.Trace, trace.Options{RequireDeadlines: true, WCETBounds: true, Set: s})
		if len(vs) != 0 {
			t.Errorf("seed %d: %v", seed, vs[0])
		}
	}
}
