package esr

import (
	"testing"

	"nprt/internal/sim"
	"nprt/internal/task"
)

// probe lets tests observe Tracker.Evaluate output at chosen engine states
// by acting as a policy that records slack breakdowns per dispatch.
type probe struct {
	tracker *Tracker
	slacks  []Slacks
	jobs    []task.Job
}

func (p *probe) Name() string { return "probe" }
func (p *probe) Reset(st *sim.State) {
	p.tracker = NewTracker(st.Set())
	p.slacks, p.jobs = nil, nil
}
func (p *probe) Pick(st *sim.State) (sim.Decision, bool) {
	j, ok := st.EDFPick()
	if !ok {
		return sim.Decision{}, false
	}
	s := p.tracker.Evaluate(st, j)
	p.tracker.Commit(s)
	p.slacks = append(p.slacks, s)
	p.jobs = append(p.jobs, j)
	return sim.Decision{Job: j, Mode: task.Imprecise}, true
}
func (p *probe) JobFinished(_ *sim.State, _ sim.Decision, _, finish task.Time) {
	p.tracker.Finished(finish)
}

// Deterministic single-task scenario, p=10, x=4, actual imprecise exec 2.
//
// Job 0 dispatched at t=0: inter = 0 (no predecessor), nominal = 0+4 = 4,
// idle = min(d=10, r_next=10) − 4 = 6.
// Job 0 finishes at 2. Job 1 dispatched at t=10 (release):
// inter = max(nominal_0 − max(r_1=10, f'_0=2), 0) = max(4 − 10, 0) = 0,
// nominal = 14, idle = min(20, 20) − 14 = 6.
func TestTrackerIdleAndInterValues(t *testing.T) {
	s := mkSet(t, task.Task{
		Name: "a", Period: 10, WCETAccurate: 8, WCETImprecise: 4,
		ExecImprecise: task.Dist{Mean: 2, Sigma: 0, Min: 2, Max: 2},
		ExecAccurate:  task.Dist{Mean: 2, Sigma: 0, Min: 2, Max: 2},
		Error:         task.Dist{Mean: 1},
	})
	p := &probe{}
	if _, err := sim.Run(s, p, sim.Config{Hyperperiods: 2, Sampler: sim.NewRandomSampler(s, 1)}); err != nil {
		t.Fatal(err)
	}
	if len(p.slacks) != 2 {
		t.Fatalf("%d dispatches", len(p.slacks))
	}
	if p.slacks[0].Inter != 0 || p.slacks[0].Nominal != 4 || p.slacks[0].Idle != 6 {
		t.Errorf("job 0 slacks = %+v, want inter 0, nominal 4, idle 6", p.slacks[0])
	}
	if p.slacks[1].Inter != 0 || p.slacks[1].Nominal != 14 || p.slacks[1].Idle != 6 {
		t.Errorf("job 1 slacks = %+v, want inter 0, nominal 14, idle 6", p.slacks[1])
	}
}

// Two tasks so a successor can be released before its predecessor's nominal
// finish: inter-job slack must equal nominal − max(release, actual).
//
// a: p=20, x=6, exec 2. b: p=20, x=4, exec 2. At t=0 EDF picks a (tie by
// task id): nominal_a = 0+6 = 6, finishes at 2. Then b (released at 0):
// inter = max(6 − max(0, 2), 0) = 4; nominal_b = 2 + 4 + 4 = 10.
func TestTrackerInterJobSlackFromEarlyFinish(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "a", Period: 20, WCETAccurate: 10, WCETImprecise: 6,
			ExecImprecise: task.Dist{Mean: 2, Sigma: 0, Min: 2, Max: 2},
			ExecAccurate:  task.Dist{Mean: 2, Sigma: 0, Min: 2, Max: 2},
			Error:         task.Dist{Mean: 1}},
		task.Task{Name: "b", Period: 20, WCETAccurate: 8, WCETImprecise: 4,
			ExecImprecise: task.Dist{Mean: 2, Sigma: 0, Min: 2, Max: 2},
			ExecAccurate:  task.Dist{Mean: 2, Sigma: 0, Min: 2, Max: 2},
			Error:         task.Dist{Mean: 1}},
	)
	p := &probe{}
	if _, err := sim.Run(s, p, sim.Config{Hyperperiods: 1, Sampler: sim.NewRandomSampler(s, 1)}); err != nil {
		t.Fatal(err)
	}
	if len(p.jobs) != 2 || p.jobs[0].TaskID != 0 || p.jobs[1].TaskID != 1 {
		t.Fatalf("dispatch order: %v", p.jobs)
	}
	if p.slacks[1].Inter != 4 {
		t.Errorf("inter-job slack = %d, want 4 (%+v)", p.slacks[1].Inter, p.slacks[1])
	}
	if p.slacks[1].Nominal != 10 {
		t.Errorf("nominal = %d, want 10", p.slacks[1].Nominal)
	}
}

// Individual slack values come straight from the γ_min analysis; the
// tracker must expose them per task.
func TestTrackerIndividualSlackExposure(t *testing.T) {
	// From the feasibility tests: γ_min = 1.375 → ψ = (0.375·x).
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 5, WCETImprecise: 2},
		task.Task{Name: "b", Period: 30, WCETAccurate: 20, WCETImprecise: 6},
	)
	tr := NewTracker(s)
	if tr.IndividualSlack(0) != 0 || tr.IndividualSlack(1) != 2 {
		t.Errorf("individual slacks = %d/%d, want 0/2",
			tr.IndividualSlack(0), tr.IndividualSlack(1))
	}
}

// A tracker restored from a snapshot must evaluate identically to the
// original at every subsequent dispatch, and the snapshot must be a value
// (later mutation of the source tracker must not leak into it).
func TestTrackerStateRoundTrip(t *testing.T) {
	s := task.MustNew([]task.Task{
		{Name: "a", Period: 20, WCETAccurate: 8, WCETImprecise: 2},
		{Name: "b", Period: 40, WCETAccurate: 12, WCETImprecise: 3},
	})
	tr := NewTracker(s)
	tr.Commit(Slacks{Nominal: 17})
	tr.Finished(15)

	st := tr.State()
	clone := TrackerFromState(st)
	if clone.prevNominal != tr.prevNominal || clone.prevActual != tr.prevActual ||
		clone.curNominal != tr.curNominal {
		t.Fatalf("restored finish pair differs: %+v vs clone %+v", tr, clone)
	}
	for i := range tr.slacks {
		if clone.IndividualSlack(i) != tr.IndividualSlack(i) {
			t.Fatalf("restored slack %d differs", i)
		}
	}

	// Snapshot is a value: mutating the original must not alter it.
	tr.slacks[0] = 999
	if st.Slacks[0] == 999 {
		t.Error("snapshot aliases tracker slack storage")
	}
	// And the restored tracker owns its own storage too.
	st.Slacks[1] = 777
	if clone.IndividualSlack(1) == 777 {
		t.Error("restored tracker aliases snapshot storage")
	}
}
