// Package esr implements §III of the paper: online EDF scheduling with
// Explicit Slack Reclamation for periodic tasks with independent errors.
//
// When a job is dispatched the policy adds up three slack sources and runs
// the job in accurate mode iff the total covers the accurate/imprecise WCET
// gap w_i − x_i:
//
//   - individual slack ψ_{i,j} = (γ_min − 1)·x_i, from the margin by which
//     the imprecise-mode task set passes Theorem 1 (computed once, offline);
//   - idle-time slack ψ_idle = min(d_{i,j}, r_next) − f_{i,j}, the processor
//     idleness that would follow the job's nominal completion;
//   - inter-job slack ψ^{k,l}_{i,j} = max(f_{k,l} − max(r_{i,j}, f'_{k,l}), 0),
//     earliness inherited from the previous job's actual completion f'
//     relative to its nominal completion f.
//
// The nominal finish time is f_{i,j} = now + x_i + ψ_inter, per the paper.
// The accuracy check is O(1) per dispatch.
//
// The slack bookkeeping is exposed as Tracker so the cumulative-error
// heuristic of §V-A (internal/cumulative) can run the same schedulability
// check.
package esr

import (
	"nprt/internal/feasibility"
	"nprt/internal/sim"
	"nprt/internal/task"
)

// Slacks is the slack breakdown for one dispatch.
type Slacks struct {
	Individual task.Time // ψ_{i,j}
	Idle       task.Time // ψ_idle
	Inter      task.Time // ψ^{k,l}_{i,j}
	Nominal    task.Time // f_{i,j} = now + x_i + ψ_inter
}

// Total returns the summed reclaimable slack.
func (s Slacks) Total() task.Time { return s.Individual + s.Idle + s.Inter }

// Tracker maintains the explicit-slack-reclamation state across dispatches:
// per-task individual slacks and the previous job's nominal/actual finish.
type Tracker struct {
	slacks      []task.Time
	prevNominal task.Time
	prevActual  task.Time
	curNominal  task.Time
}

// NewTracker computes the individual slacks for the set (zero for every
// task when the imprecise-mode Theorem-1 check fails — ESR then runs purely
// best-effort) and returns a fresh tracker.
func NewTracker(s *task.Set) *Tracker {
	return &Tracker{slacks: feasibility.IndividualSlacks(s)}
}

// Evaluate computes the slack breakdown for dispatching job j now. It does
// not change tracker state; call Commit with the returned Slacks when the
// job is actually dispatched.
func (tr *Tracker) Evaluate(st *sim.State, j task.Job) Slacks {
	tk := st.Set().Task(j.TaskID)
	now := st.Now()

	inter := tr.prevNominal - max64(j.Release, tr.prevActual)
	if inter < 0 {
		inter = 0
	}
	nominal := now + tk.WCET(task.Deepest) + inter

	var idle task.Time
	bound := j.Deadline
	if rNext, ok := st.NextReleaseTime(j.Key()); ok && rNext < bound {
		bound = rNext
	}
	if bound > nominal {
		idle = bound - nominal
	}

	return Slacks{
		Individual: tr.slacks[j.TaskID],
		Idle:       idle,
		Inter:      inter,
		Nominal:    nominal,
	}
}

// AccurateFits reports whether the slack total covers the task's mode gap
// w−x, i.e. whether the job may run accurately without endangering the
// imprecise-mode schedulability guarantee.
func AccurateFits(st *sim.State, j task.Job, s Slacks) bool {
	tk := st.Set().Task(j.TaskID)
	return s.Total() >= tk.WCETAccurate-tk.WCET(task.Deepest)
}

// BestMode returns the most accurate level whose WCET gap over the task's
// deepest level is covered by the slack total and whose worst case still
// meets the job's own deadline from `now` — the multi-level generalization
// the paper sketches in §II-C. With two levels this is the paper's
// accurate-iff-ψ_total ≥ w−x rule; the explicit deadline guard matters once
// individual slacks grow large relative to the level gaps.
func BestMode(tk *task.Task, j task.Job, now task.Time, total task.Time) task.Mode {
	deepest := tk.WCET(task.Deepest)
	for m := task.Accurate; int(m) < tk.NumModes(); m++ {
		if tk.WCET(m)-deepest <= total && now+tk.WCET(m) <= j.Deadline {
			return m
		}
	}
	return tk.ClampMode(task.Deepest)
}

// Commit records the dispatch of a job whose slacks were Evaluated.
func (tr *Tracker) Commit(s Slacks) { tr.curNominal = s.Nominal }

// Finished records the actual completion of the committed job; the pair
// (nominal, actual) seeds the next dispatch's inter-job slack.
func (tr *Tracker) Finished(actual task.Time) {
	tr.prevNominal = tr.curNominal
	tr.prevActual = actual
}

// IndividualSlack exposes ψ for one task (tests, diagnostics).
func (tr *Tracker) IndividualSlack(taskID int) task.Time { return tr.slacks[taskID] }

// TrackerState is a serializable snapshot of the reclamation bookkeeping:
// the per-task individual slacks ψ (the offline part, a pure function of
// the task set) and the previous job's nominal/actual finish pair (the
// online part). The long-running runtime's checkpoints carry this so a
// restored process resumes with exactly the slack state the killed one had.
type TrackerState struct {
	Slacks      []task.Time `json:"slacks"`
	PrevNominal task.Time   `json:"prev_nominal"`
	PrevActual  task.Time   `json:"prev_actual"`
	CurNominal  task.Time   `json:"cur_nominal"`
}

// State snapshots the tracker. The slack slice is copied; the snapshot does
// not alias tracker storage.
func (tr *Tracker) State() TrackerState {
	s := make([]task.Time, len(tr.slacks))
	copy(s, tr.slacks)
	return TrackerState{
		Slacks:      s,
		PrevNominal: tr.prevNominal,
		PrevActual:  tr.prevActual,
		CurNominal:  tr.curNominal,
	}
}

// TrackerFromState reconstructs a tracker that continues exactly where the
// snapshotted one left off. The slack slice is copied.
func TrackerFromState(st TrackerState) *Tracker {
	s := make([]task.Time, len(st.Slacks))
	copy(s, st.Slacks)
	return &Tracker{
		slacks:      s,
		prevNominal: st.PrevNominal,
		prevActual:  st.PrevActual,
		curNominal:  st.CurNominal,
	}
}

// Policy is the EDF+ESR scheduler. The Disable* switches support the slack
// ablation study; leave them false for the paper's algorithm.
type Policy struct {
	DisableIndividual bool
	DisableIdle       bool
	DisableInter      bool
	Label             string // defaults to "EDF+ESR"

	tracker *Tracker

	// Decisions counts accuracy choices for diagnostics.
	Decisions struct {
		Accurate, Imprecise int64
	}
}

// New returns the paper's EDF+ESR policy.
func New() *Policy { return &Policy{} }

// Name implements sim.Policy.
func (p *Policy) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "EDF+ESR"
}

// Reset computes the individual slacks from the Theorem-1 margin γ_min of
// the imprecise-mode analysis.
func (p *Policy) Reset(st *sim.State) {
	p.tracker = NewTracker(st.Set())
	p.Decisions.Accurate, p.Decisions.Imprecise = 0, 0
}

// Pick dispatches the EDF job and selects its mode by the slack check.
func (p *Policy) Pick(st *sim.State) (sim.Decision, bool) {
	j, ok := st.EDFPick()
	if !ok {
		return sim.Decision{}, false
	}
	s := p.tracker.Evaluate(st, j)
	total := task.Time(0)
	if !p.DisableIndividual {
		total += s.Individual
	}
	if !p.DisableIdle {
		total += s.Idle
	}
	if !p.DisableInter {
		total += s.Inter
	}

	tk := st.Set().Task(j.TaskID)
	mode := BestMode(tk, j, st.Now(), total)
	if mode == task.Accurate {
		p.Decisions.Accurate++
	} else {
		p.Decisions.Imprecise++
	}
	p.tracker.Commit(s)
	return sim.Decision{Job: j, Mode: mode}, true
}

// JobFinished records the nominal/actual finish pair that seeds the next
// job's inter-job slack.
func (p *Policy) JobFinished(_ *sim.State, _ sim.Decision, _, finish task.Time) {
	p.tracker.Finished(finish)
}

func max64(a, b task.Time) task.Time {
	if a > b {
		return a
	}
	return b
}
