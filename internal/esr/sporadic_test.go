package esr

import (
	"testing"

	"nprt/internal/feasibility"
	"nprt/internal/sim"
	"nprt/internal/task"
	"nprt/internal/trace"
)

// TestSporadicZeroJitterKeepsGuarantee: with an all-zero jitter distribution
// the sporadic engine is the periodic engine, so the Theorem-1 guarantee
// carries over verbatim — EDF+ESR misses nothing on an imprecise-feasible
// set, and the runs are bit-identical.
func TestSporadicZeroJitterKeepsGuarantee(t *testing.T) {
	s := impreciseFeasibleSet(t)
	cfg := func(jit sim.JitterSampler) sim.Config {
		return sim.Config{
			Hyperperiods: 100,
			Sampler:      sim.NewRandomSampler(s, 11),
			TraceLimit:   -1,
			Jitter:       jit,
		}
	}
	periodic, err := sim.Run(s, New(), cfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	sporadic, err := sim.Run(s, New(), cfg(sim.NewRandomJitter(s, make([]task.Dist, s.Len()), 11)))
	if err != nil {
		t.Fatal(err)
	}
	if sporadic.Misses.Events != 0 {
		t.Errorf("zero-jitter sporadic run missed %d deadlines", sporadic.Misses.Events)
	}
	if periodic.Jobs != sporadic.Jobs || periodic.MeanError() != sporadic.MeanError() {
		t.Errorf("zero-jitter run diverged from periodic: jobs %d/%d error %g/%g",
			periodic.Jobs, sporadic.Jobs, periodic.MeanError(), sporadic.MeanError())
	}
	for i := range periodic.Trace.Entries {
		if periodic.Trace.Entries[i] != sporadic.Trace.Entries[i] {
			t.Fatalf("trace entry %d differs under zero jitter", i)
		}
	}
}

// TestSporadicJitterKeepsGuarantee: release jitter only delays work (the
// period stays the minimum inter-release separation and each deadline moves
// with its release), so a jittered arrival sequence is no denser than the
// periodic one Theorem 1 certifies. EDF+ESR must therefore stay miss-free on
// an imprecise-feasible set even under aggressive jitter, and every executed
// window must still be exactly one period long.
func TestSporadicJitterKeepsGuarantee(t *testing.T) {
	s := impreciseFeasibleSet(t)
	if !feasibility.Schedulable(s, task.Imprecise) {
		t.Fatal("premise: set must be imprecise-feasible")
	}
	dists := []task.Dist{
		{Mean: 4, Sigma: 3, Min: 0, Max: 10},
		{Mean: 8, Sigma: 5, Min: 0, Max: 20},
	}
	for seed := uint64(1); seed <= 3; seed++ {
		res, err := sim.Run(s, New(), sim.Config{
			Hyperperiods: 100,
			Sampler:      sim.NewRandomSampler(s, seed),
			Jitter:       sim.NewRandomJitter(s, dists, seed),
			TraceLimit:   -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Misses.Events != 0 {
			t.Errorf("seed %d: EDF+ESR missed %d/%d deadlines under jitter",
				seed, res.Misses.Events, res.Jobs)
		}
		if vs := trace.Validate(res.Trace, trace.Options{
			RequireDeadlines: true, WCETBounds: true, Set: s,
		}); len(vs) != 0 {
			t.Errorf("seed %d: trace violations: %v", seed, vs[0])
		}
		for _, e := range res.Trace.Entries {
			if e.Job.Deadline-e.Job.Release != s.Task(e.Job.TaskID).Period {
				t.Fatalf("seed %d: job %v window is not one period", seed, e.Job)
			}
		}
	}
}

// TestSporadicOverloadMissesAttributed: when the premise fails (the set is
// not imprecise-feasible) the guarantee does not hold — the engine must then
// count every late completion, and the trace must agree with the aggregate.
func TestSporadicOverloadMissesAttributed(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 9, WCETImprecise: 7,
			Error: task.Dist{Mean: 2}},
		task.Task{Name: "b", Period: 20, WCETAccurate: 12, WCETImprecise: 9,
			Error: task.Dist{Mean: 4}},
	)
	if feasibility.Schedulable(s, task.Imprecise) {
		t.Fatal("premise: overload set must not be imprecise-feasible")
	}
	dists := []task.Dist{{Mean: 2, Sigma: 1, Min: 0, Max: 5}, {Mean: 3, Sigma: 2, Min: 0, Max: 8}}
	res, err := sim.Run(s, New(), sim.Config{
		Hyperperiods: 50,
		Sampler:      sim.NewRandomSampler(s, 3),
		Jitter:       sim.NewRandomJitter(s, dists, 3),
		TraceLimit:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses.Events == 0 {
		t.Fatal("overloaded sporadic set shows no misses; premise broken")
	}
	if got := int64(res.Trace.DeadlineMisses()); got != res.Misses.Events {
		t.Errorf("aggregate misses %d disagree with trace misses %d", res.Misses.Events, got)
	}
	// Attribution: per-task late entries in the trace account for every miss.
	perTask := make([]int64, s.Len())
	for _, e := range res.Trace.Entries {
		if e.Finish > e.Job.Deadline {
			perTask[e.Job.TaskID]++
		}
	}
	var sum int64
	for _, n := range perTask {
		sum += n
	}
	if sum != res.Misses.Events {
		t.Errorf("per-task misses sum to %d, want %d", sum, res.Misses.Events)
	}
}
