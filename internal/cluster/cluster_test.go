package cluster_test

import (
	"errors"
	"fmt"
	"testing"

	"nprt/internal/cluster"
	"nprt/internal/experiments"
	"nprt/internal/feasibility"
	schedrt "nprt/internal/runtime"
	"nprt/internal/task"
)

const clusterSeed = 2018

// clusterTape is the shared churn script for the cluster tests: the same
// generator the soak uses, small enough for the kill sweep to visit every
// fsync boundary.
func clusterTape(events int) *schedrt.Tape {
	return experiments.GenerateChurnTape(clusterSeed, events)
}

func tapeHorizon(tp *schedrt.Tape) int64 {
	h := int64(8)
	if n := len(tp.Events); n > 0 {
		h += tp.Events[n-1].Epoch
	}
	return h
}

// playCluster drives the tape to its horizon, checkpointing every 5 ticks,
// tolerating the stale requests churn tapes deliberately contain.
func playCluster(c *cluster.Cluster, tp *schedrt.Tape, parallel bool) error {
	return c.PlayTape(tp, tapeHorizon(tp), parallel, 5, nil, nil,
		func(ev schedrt.Event, err error) error {
			if schedrt.IsStaleRequest(err) {
				return nil
			}
			return err
		})
}

// openCluster opens (and registers cleanup for) a cluster in dir.
func openCluster(t *testing.T, dir string, opt cluster.Options) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// runFresh plays the tape on a fresh cluster and returns its final digests
// and partition map.
func runFresh(t *testing.T, opt cluster.Options, tp *schedrt.Tape, parallel bool) ([]uint64, map[string]int) {
	t.Helper()
	c := openCluster(t, t.TempDir(), opt)
	if err := playCluster(c, tp, parallel); err != nil {
		t.Fatal(err)
	}
	return c.Digests(), c.Owners()
}

func sameOwners(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func sameDigests(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestClusterParallelMatchesSerial is the soak invariant at test scale:
// routing is serial and each shard applies its bucket in route order, so
// the concurrent group-commit path must be bit-identical to N serial
// Apply calls — same per-shard digests, same partition map.
func TestClusterParallelMatchesSerial(t *testing.T) {
	tp := clusterTape(400)
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			opt := cluster.Options{Shards: shards, Store: schedrt.StoreOptions{NoSync: true}}
			serialD, serialO := runFresh(t, opt, tp, false)
			parD, parO := runFresh(t, opt, tp, true)
			if !sameDigests(serialD, parD) {
				t.Errorf("parallel digests %x != serial %x", parD, serialD)
			}
			if !sameOwners(serialO, parO) {
				t.Errorf("parallel owners diverged from serial (%d vs %d entries)", len(parO), len(serialO))
			}
		})
	}
}

// TestPlayTapeReentry: driving the tape one epoch per PlayTape call (the
// CLI's signal-boundary loop) must be bit-identical to one call covering
// the whole horizon. Regression: a re-entry used to rescan from the
// minimum shard MaxSeq — which an empty shard pins at zero — and re-route
// events whose add/remove pair had already resolved, re-applying them.
func TestPlayTapeReentry(t *testing.T) {
	tp := clusterTape(200)
	opt := cluster.Options{Shards: 3, Store: schedrt.StoreOptions{NoSync: true}}
	oneShot, oneOwners := runFresh(t, opt, tp, false)

	c := openCluster(t, t.TempDir(), opt)
	horizon := tapeHorizon(tp)
	for c.Epoch() < horizon {
		err := c.PlayTape(tp, c.Epoch()+1, false, 0, nil, nil,
			func(ev schedrt.Event, err error) error {
				if schedrt.IsStaleRequest(err) {
					return nil
				}
				return err
			})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sameDigests(oneShot, c.Digests()) {
		t.Errorf("epoch-at-a-time digests %x != one-shot %x", c.Digests(), oneShot)
	}
	if !sameOwners(oneOwners, c.Owners()) {
		t.Errorf("epoch-at-a-time owners diverged (%d vs %d entries)", len(c.Owners()), len(oneOwners))
	}
}

// TestPlacementDeterminism: the partition map is a pure function of
// (seed, tape, policy) — two fresh runs agree exactly, in both drive
// modes, for every policy.
func TestPlacementDeterminism(t *testing.T) {
	tp := clusterTape(250)
	for _, policy := range cluster.PolicyNames() {
		t.Run(policy, func(t *testing.T) {
			opt := cluster.Options{Shards: 3, Placement: policy, Store: schedrt.StoreOptions{NoSync: true}}
			d1, o1 := runFresh(t, opt, tp, false)
			d2, o2 := runFresh(t, opt, tp, false)
			if !sameDigests(d1, d2) || !sameOwners(o1, o2) {
				t.Fatalf("two serial runs diverged under %s", policy)
			}
			d3, o3 := runFresh(t, opt, tp, true)
			if !sameDigests(d1, d3) || !sameOwners(o1, o3) {
				t.Fatalf("parallel run diverged from serial under %s", policy)
			}
		})
	}
}

// TestMirrorMatchesShardTruth: after a churn run, every router mirror must
// agree with its shard's actual task set, and Probe must be verdict-
// identical to a full two-profile feasibility analysis over that set plus
// the candidate — the incremental screen is an optimization, never an
// approximation.
func TestMirrorMatchesShardTruth(t *testing.T) {
	tp := clusterTape(300)
	c := openCluster(t, t.TempDir(), cluster.Options{Shards: 4, Store: schedrt.StoreOptions{NoSync: true}})
	if err := playCluster(c, tp, false); err != nil {
		t.Fatal(err)
	}
	candidates := []task.Task{
		{Name: "probe-sm", Period: 80, WCETAccurate: 4, WCETImprecise: 1},
		{Name: "probe-md", Period: 160, WCETAccurate: 40, WCETImprecise: 8},
		{Name: "probe-lg", Period: 40, WCETAccurate: 30, WCETImprecise: 10},
	}
	total := 0
	for _, sh := range c.Shards() {
		specs := sh.Store.Runtime().Tasks()
		if sh.Resident() != len(specs) {
			t.Errorf("shard %d mirror holds %d tasks, store holds %d", sh.ID, sh.Resident(), len(specs))
		}
		total += len(specs)
		for _, cand := range candidates {
			cand := cand
			accGot, deepGot := sh.Probe(&cand)
			tasks := make([]task.Task, 0, len(specs)+1)
			for _, sp := range specs {
				tasks = append(tasks, sp.Task)
			}
			tasks = append(tasks, cand)
			set, err := task.New(tasks)
			if err != nil {
				t.Fatal(err)
			}
			acc, deep := feasibility.Profiles(set)
			if accGot != acc.Schedulable || deepGot != deep.Schedulable {
				t.Errorf("shard %d probe(%s) = (%v,%v), full analysis = (%v,%v)",
					sh.ID, cand.Name, accGot, deepGot, acc.Schedulable, deep.Schedulable)
			}
		}
	}
	if total == 0 {
		t.Fatal("churn run left no resident tasks — the tape is not exercising admission")
	}
	if len(c.Owners()) != total {
		t.Errorf("partition map has %d entries, shards hold %d tasks", len(c.Owners()), total)
	}
}

// TestClusterReopenResumes: a clean shutdown mid-tape must recover the
// partition map and resume to the uncrashed digests.
func TestClusterReopenResumes(t *testing.T) {
	tp := clusterTape(120)
	opt := cluster.Options{Shards: 3, Store: schedrt.StoreOptions{NoSync: true}}
	wantD, wantO := runFresh(t, opt, tp, false)

	dir := t.TempDir()
	c, err := cluster.Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PlayTape(tp, tapeHorizon(tp)/2, false, 5, nil, nil,
		func(ev schedrt.Event, err error) error {
			if schedrt.IsStaleRequest(err) {
				return nil
			}
			return err
		}); err != nil {
		t.Fatal(err)
	}
	midOwners := c.Owners()
	c.Close()

	c = openCluster(t, dir, opt)
	rec := c.Recovery()
	if rec.Cursor == 0 {
		t.Fatalf("recovery found no durable prefix: %+v", rec)
	}
	if len(rec.Shards) != 3 {
		t.Fatalf("recovery has %d shard reports, want 3", len(rec.Shards))
	}
	if !sameOwners(midOwners, c.Owners()) {
		t.Fatalf("recovered map %v != pre-close map %v", c.Owners(), midOwners)
	}
	if err := playCluster(c, tp, false); err != nil {
		t.Fatal(err)
	}
	if !sameDigests(c.Digests(), wantD) {
		t.Errorf("resumed digests %x, uncrashed %x", c.Digests(), wantD)
	}
	if !sameOwners(c.Owners(), wantO) {
		t.Errorf("resumed owners diverged from uncrashed run")
	}
}

// crashNow is the sentinel the kill sweep panics with out of the fsync hook.
type crashNow struct{ point int }

// TestClusterKillSweep is the tentpole's durability criterion: kill the
// whole cluster (a panic out of the fsync hook — any shard journal, the
// meta journal, a checkpoint, the meta snapshot) at every durability
// boundary along the tape, reopen, finish the run, and require every
// shard's digest and the partition map to be bit-identical to the
// uncrashed run's.
func TestClusterKillSweep(t *testing.T) {
	tp := clusterTape(30)
	opt := cluster.Options{Shards: 3, Placement: "first-fit", Store: schedrt.StoreOptions{}}
	wantD, wantO := runFresh(t, opt, tp, false)

	// Count the fsync boundaries of an uncrashed strict-sync run.
	total := 0
	countOpt := opt
	countOpt.Store.AfterSync = func() { total++ }
	{
		c := openCluster(t, t.TempDir(), countOpt)
		if err := playCluster(c, tp, false); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	if total < 30 {
		t.Fatalf("only %d fsync boundaries — the tape is not exercising the WALs", total)
	}

	// Visit every boundary when cheap, stride when the tape is chatty.
	stride := 1
	if total > 120 {
		stride = total/120 + 1
	}
	for point := 1; point <= total; point += stride {
		point := point
		t.Run(fmt.Sprintf("kill@%d", point), func(t *testing.T) {
			dir := t.TempDir()
			crashOpt := opt
			n := 0
			crashOpt.Store.AfterSync = func() {
				n++
				if n == point {
					panic(crashNow{point})
				}
			}

			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatalf("kill point %d never reached (total %d)", point, total)
					}
					if _, ok := r.(crashNow); !ok {
						panic(r)
					}
				}()
				c, err := cluster.Open(dir, crashOpt)
				if err != nil {
					t.Fatal(err)
				}
				// No Close: a crash leaks the fds, exactly like a real kill.
				_ = playCluster(c, tp, false)
				t.Fatalf("run with kill point %d finished without crashing", point)
			}()

			c, err := cluster.Open(dir, opt)
			if err != nil {
				t.Fatalf("recovery after kill %d: %v", point, err)
			}
			defer c.Close()
			if err := playCluster(c, tp, false); err != nil {
				t.Fatalf("resume after kill %d: %v", point, err)
			}
			if !sameDigests(c.Digests(), wantD) {
				t.Errorf("kill point %d: digests %x, uncrashed %x", point, c.Digests(), wantD)
			}
			if !sameOwners(c.Owners(), wantO) {
				t.Errorf("kill point %d: partition map diverged (recovered %v, want %v)",
					point, c.Owners(), wantO)
			}
		})
	}
}

// TestClusterRefusesFewerShards: shrinking the shard count on reopen would
// strand tasks outside the router — it must be refused loudly.
func TestClusterRefusesFewerShards(t *testing.T) {
	dir := t.TempDir()
	opt := cluster.Options{Shards: 3, Store: schedrt.StoreOptions{NoSync: true}}
	c, err := cluster.Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	opt.Shards = 2
	if _, err := cluster.Open(dir, opt); err == nil {
		t.Fatal("reopen with fewer shards accepted")
	}

	// Growing is fine: the new shard starts empty.
	opt.Shards = 5
	c, err = cluster.Open(dir, opt)
	if err != nil {
		t.Fatalf("reopen with more shards: %v", err)
	}
	if len(c.Shards()) != 5 {
		t.Errorf("grew to %d shards, want 5", len(c.Shards()))
	}
	c.Close()
}

// TestClusterRejectsWrongTape: the durable sequence cursor must catch a
// restart against a shorter tape.
func TestClusterRejectsWrongTape(t *testing.T) {
	dir := t.TempDir()
	tp := clusterTape(80)
	opt := cluster.Options{Shards: 2, Store: schedrt.StoreOptions{NoSync: true}}
	c, err := cluster.Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := playCluster(c, tp, false); err != nil {
		t.Fatal(err)
	}
	c.Close()

	c = openCluster(t, dir, opt)
	short := &schedrt.Tape{Events: tp.Events[:3]}
	if err := c.PlayTape(short, tapeHorizon(tp), false, 0, nil, nil, nil); !errors.Is(err, cluster.ErrWrongTape) {
		t.Fatalf("short tape accepted: %v", err)
	}
}
