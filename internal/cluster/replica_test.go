package cluster_test

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"nprt/internal/cluster"
	"nprt/internal/journal"
	schedrt "nprt/internal/runtime"
	"nprt/internal/sim"
)

// replicated returns Options for a 2-shard, 1-follower cluster whose
// shard-0 drives are individually wedgeable: prim is slot 0's injector,
// fol is slot 1's. Other drives run uninjected.
func replicated(prim, fol journal.Injector) cluster.Options {
	return cluster.Options{
		Shards:    2,
		Replicas:  1,
		Placement: "first-fit",
		Store:     schedrt.StoreOptions{NoSync: true},
		Inject: func(si int) journal.Injector {
			if si == 0 {
				return prim
			}
			return nil
		},
		InjectReplica: func(si, slot int) journal.Injector {
			if si == 0 && slot == 1 {
				return fol
			}
			return nil
		},
		Retry: cluster.RetryOptions{MaxAttempts: 3, Sleep: noSleep},
	}
}

// TestReplicaShipAndPromote: the zero-shed failover path end to end. A
// wedged primary drive used to mean ErrShardFailed and shed traffic
// (TestShardFailureContainment); with a follower the same wedge promotes
// mid-op, the caller sees plain success, and nothing acked is lost.
func TestReplicaShipAndPromote(t *testing.T) {
	prim := &flakyInjector{}
	c := openCluster(t, t.TempDir(), replicated(prim, nil))

	for i := 0; i < 3; i++ {
		if _, err := c.Apply(addEvent(fmt.Sprintf("s%d", i), 100, 10, 2)); err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
	}
	// Synchronous shipping: every acked op is already on the follower.
	reps := c.Replicas(0)
	if len(reps) != 1 || reps[0].Slot != 1 || !reps[0].InSync {
		t.Fatalf("follower set after seeding: %+v", reps)
	}

	// Kill the primary drive and route another event at shard 0.
	prim.wedged = true
	res, err := c.Apply(addEvent("after-failover", 100, 10, 2))
	if err != nil {
		t.Fatalf("apply across failover: %v", err)
	}
	if res.Shard != 0 {
		t.Fatalf("first-fit routed to shard %d, want 0", res.Shard)
	}
	if slot := c.PrimarySlot(0); slot != 1 {
		t.Fatalf("primary slot after failover: %d, want 1", slot)
	}
	h := c.Health(0)
	if h.Promotions != 1 {
		t.Fatalf("health after failover: %+v", h)
	}
	if h.State == cluster.Failed {
		t.Fatalf("shard failed despite an in-sync follower: %+v", h)
	}
	// Every task — the seeds and the op that crossed the failover — is
	// live on the promoted store.
	owners := c.Owners()
	for _, name := range []string{"s0", "s1", "s2", "after-failover"} {
		if si, ok := owners[name]; !ok || si != 0 {
			t.Fatalf("task %q lost across failover (owner %d/%v)", name, si, ok)
		}
	}
	// The demoted old primary is out-of-sync until its drive is replaced.
	reps = c.Replicas(0)
	if len(reps) != 1 || reps[0].Slot != 0 || reps[0].InSync {
		t.Fatalf("old primary not demoted: %+v", reps)
	}

	// Operator replaces the drive: re-seed restores full redundancy, and
	// the shard survives a second failover back to slot 0.
	prim.wedged = false
	n, err := c.ReseedReplicas(0)
	if err != nil || n != 1 {
		t.Fatalf("reseed: n=%d err=%v", n, err)
	}
	if reps = c.Replicas(0); !reps[0].InSync {
		t.Fatalf("old primary not in-sync after reseed: %+v", reps)
	}
	if _, err := c.Apply(addEvent("steady", 100, 10, 2)); err != nil {
		t.Fatalf("apply after reseed: %v", err)
	}
}

// TestPromotionDeterminism: failover is a pure function of (health state,
// replica high-water marks) — two runs of the same wedge scenario land on
// the same promoted slot, the same digests, and the same owner map.
func TestPromotionDeterminism(t *testing.T) {
	run := func() ([]uint64, map[string]int, int) {
		prim := &flakyInjector{}
		c := openCluster(t, t.TempDir(), replicated(prim, nil))
		for i := 0; i < 4; i++ {
			if _, err := c.Apply(addEvent(fmt.Sprintf("d%d", i), 100, 10, 2)); err != nil {
				t.Fatalf("seed %d: %v", i, err)
			}
		}
		prim.wedged = true
		for i := 0; i < 3; i++ {
			if _, err := c.Apply(addEvent(fmt.Sprintf("post%d", i), 100, 10, 2)); err != nil {
				t.Fatalf("post-wedge apply %d: %v", i, err)
			}
		}
		return c.Digests(), c.Owners(), c.PrimarySlot(0)
	}
	d1, o1, s1 := run()
	d2, o2, s2 := run()
	if s1 != s2 {
		t.Fatalf("promotion picked slot %d then slot %d for the same scenario", s1, s2)
	}
	if !sameDigests(d1, d2) {
		t.Fatalf("repeated failover runs diverged: %x vs %x", d1, d2)
	}
	if !sameOwners(o1, o2) {
		t.Fatalf("repeated failover runs disagree on owners: %v vs %v", o1, o2)
	}
}

// TestFollowerDivergence: a silent bit flip on the follower drive — the
// write succeeds, the bytes are wrong — must be caught by the checkpoint
// scrub, demote the follower, and re-seed it back to byte-identity.
func TestFollowerDivergence(t *testing.T) {
	dir := t.TempDir()
	fol := journal.NewFaultFS(7, journal.FaultRates{})
	c := openCluster(t, dir, replicated(nil, fol))

	for i := 0; i < 3; i++ {
		if _, err := c.Apply(addEvent(fmt.Sprintf("f%d", i), 100, 10, 2)); err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
	}
	seedReseeds := c.Health(0).ReplicaReseeds

	// Arm one silent flip: the next shipped frame lands corrupted, and
	// nothing notices at write time.
	fol.ArmFlip()
	if _, err := c.Apply(addEvent("flipped", 100, 10, 2)); err != nil {
		t.Fatalf("apply with armed flip: %v", err)
	}
	if st := fol.Stats(); st.BitFlips != 1 {
		t.Fatalf("flip did not land: %+v", st)
	}
	if reps := c.Replicas(0); !reps[0].InSync {
		t.Fatalf("flip was not silent — follower demoted before any scrub: %+v", reps)
	}

	// The checkpoint doubles as the scrub point: byte-verify catches the
	// divergence, demotes, and the re-seed restores identity in the same
	// pass.
	if err := c.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	h := c.Health(0)
	if h.ReplicaDemotions == 0 {
		t.Fatalf("silent corruption survived the scrub: %+v", h)
	}
	if h.ReplicaReseeds != seedReseeds+1 {
		t.Fatalf("demoted follower not re-seeded: %+v", h)
	}
	reps := c.Replicas(0)
	if !reps[0].InSync {
		t.Fatalf("follower not back in-sync after re-seed: %+v", reps)
	}
	// And the restored follower holds the primary's exact bytes again.
	primDir := filepath.Join(dir, "shard-000")
	if err := journal.VerifyReplica(primDir, primDir+".r1"); err != nil {
		t.Fatalf("re-seeded follower not byte-identical: %v", err)
	}
}

// TestPromotionPersistsAcrossReopen: the fsynced promote meta record is
// the commit point — a clean close/reopen after failover must come back
// with the same slot as primary and the old primary re-seeded as a
// follower, never with two primaries.
func TestPromotionPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	prim := &flakyInjector{}
	opt := replicated(prim, nil)
	c := openCluster(t, dir, opt)
	for i := 0; i < 3; i++ {
		if _, err := c.Apply(addEvent(fmt.Sprintf("r%d", i), 100, 10, 2)); err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
	}
	prim.wedged = true
	if _, err := c.Apply(addEvent("promoteme", 100, 10, 2)); err != nil {
		t.Fatalf("apply across failover: %v", err)
	}
	if slot := c.PrimarySlot(0); slot != 1 {
		t.Fatalf("primary slot: %d, want 1", slot)
	}
	owners := c.Owners()
	prim.wedged = false // drive replaced before shutdown
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	c2 := openCluster(t, dir, opt)
	if slot := c2.PrimarySlot(0); slot != 1 {
		t.Fatalf("reopen forgot the promotion: primary slot %d, want 1", slot)
	}
	if !sameOwners(owners, c2.Owners()) {
		t.Fatalf("owners across reopen: %v != %v", c2.Owners(), owners)
	}
	reps := c2.Replicas(0)
	if len(reps) != 1 || reps[0].Slot != 0 || !reps[0].InSync {
		t.Fatalf("old primary not re-seeded as follower on reopen: %+v", reps)
	}
	if _, err := c2.Apply(addEvent("after-reopen", 100, 10, 2)); err != nil {
		t.Fatalf("apply after reopen: %v", err)
	}
}

// TestClusterRefusesFewerReplicas: reopening with a smaller replica count
// would silently strand follower directories — and, after a failover, the
// directory currently holding the primary. It must be refused loudly.
func TestClusterRefusesFewerReplicas(t *testing.T) {
	dir := t.TempDir()
	opt := cluster.Options{Shards: 2, Replicas: 1, Store: schedrt.StoreOptions{NoSync: true}}
	c := openCluster(t, dir, opt)
	if _, err := c.Apply(addEvent("x", 100, 10, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	opt.Replicas = 0
	if _, err := cluster.Open(dir, opt); err == nil ||
		!strings.Contains(err.Error(), "replica") {
		t.Fatalf("reopen with fewer replicas: %v, want refusal", err)
	}
}

// TestPromotionCrashSweep kills the cluster (panic out of the fsync hook)
// at EVERY fsync boundary across a forced failover and requires recovery
// to come back with exactly one primary per shard and every acked task
// live exactly once — on both scheduler engines. The promote meta record
// is the commit point: killed before it, recovery serves from the old
// primary's acked prefix; killed after, from the byte-identical promoted
// follower. No boundary may yield zero or two holders of any task.
func TestPromotionCrashSweep(t *testing.T) {
	for _, eng := range []sim.EngineKind{sim.EngineIndexed, sim.EngineLinearScan} {
		eng := eng
		t.Run(fmt.Sprintf("engine=%d", eng), func(t *testing.T) {
			base := func(prim journal.Injector) cluster.Options {
				o := replicated(prim, nil)
				o.Store.NoSync = false // strict sync: the sweep counts real boundaries
				o.Store.Runtime.Engine = eng
				return o
			}

			// seed opens a strict-sync replicated cluster with three acked
			// tasks on shard 0, then wedges the primary drive and arms the
			// fsync hook, so every counted boundary belongs to the failover.
			seed := func(t *testing.T, dir string, prim *flakyInjector, hook func()) *cluster.Cluster {
				armed := false
				o := base(prim)
				o.Store.AfterSync = func() {
					if armed {
						hook()
					}
				}
				c := openCluster(t, dir, o)
				for i := 0; i < 3; i++ {
					if _, err := c.Apply(addEvent(fmt.Sprintf("c%d", i), 100, 10, 2)); err != nil {
						t.Fatalf("seed %d: %v", i, err)
					}
				}
				prim.wedged = true
				armed = true
				return c
			}

			// Count the fsync boundaries of one uncrashed failover.
			total := 0
			{
				prim := &flakyInjector{}
				c := seed(t, t.TempDir(), prim, func() { total++ })
				if _, err := c.Apply(addEvent("p1", 100, 10, 2)); err != nil {
					t.Fatalf("uncrashed failover: %v", err)
				}
				if c.Health(0).Promotions != 1 {
					t.Fatalf("uncrashed run did not promote: %+v", c.Health(0))
				}
				prim.wedged = false
				c.Close()
			}
			if total < 2 {
				t.Fatalf("only %d fsync boundaries in a failover — promotion is not journaling", total)
			}

			for point := 1; point <= total; point++ {
				dir := t.TempDir()
				prim := &flakyInjector{}
				n := 0
				func() {
					defer func() {
						r := recover()
						if r == nil {
							t.Fatalf("kill point %d/%d never reached", point, total)
						}
						if _, ok := r.(crashNow); !ok {
							panic(r)
						}
					}()
					c := seed(t, dir, prim, func() {
						n++
						if n == point {
							panic(crashNow{point})
						}
					})
					// No Close: a crash leaks the fds, exactly like a real kill.
					_, _ = c.Apply(addEvent("p1", 100, 10, 2))
					t.Fatalf("failover with kill point %d finished without crashing", point)
				}()

				// The operator replaces the dead drive, then recovery runs.
				prim.wedged = false
				c, err := cluster.Open(dir, base(prim))
				if err != nil {
					t.Fatalf("kill point %d: reopen: %v", point, err)
				}
				// Exactly one primary: recovery picked one slot, and its
				// follower re-seeds to byte-identity — no split brain.
				slot := c.PrimarySlot(0)
				if slot != 0 && slot != 1 {
					t.Fatalf("kill point %d: primary slot %d", point, slot)
				}
				if reps := c.Replicas(0); len(reps) != 1 || !reps[0].InSync {
					t.Fatalf("kill point %d: follower set did not converge: %+v", point, reps)
				}
				// Every acked task is live exactly once, and the owner map
				// agrees with shard truth — including the in-flight p1,
				// which may be present (its append became durable) or
				// absent (it died with the crash), but never duplicated.
				holders := make(map[string]int)
				for _, sh := range c.Shards() {
					for _, spec := range sh.Store.Runtime().Tasks() {
						holders[spec.Task.Name]++
						if si := c.Owners()[spec.Task.Name]; si != sh.ID {
							t.Fatalf("kill point %d: %q live on shard %d, owner map says %d",
								point, spec.Task.Name, sh.ID, si)
						}
					}
				}
				for _, name := range []string{"c0", "c1", "c2"} {
					if holders[name] != 1 {
						t.Fatalf("kill point %d: acked task %q live on %d shards", point, name, holders[name])
					}
				}
				if holders["p1"] > 1 {
					t.Fatalf("kill point %d: in-flight task duplicated across failover", point)
				}
				// The recovered shard serves.
				if _, err := c.Apply(addEvent(fmt.Sprintf("fresh%d", point), 100, 10, 2)); err != nil {
					t.Fatalf("kill point %d: apply after recovery: %v", point, err)
				}
				c.Close()
			}
		})
	}
}
