// Per-shard replication: every shard can carry R synchronous followers —
// byte-identical copies of the primary's store directory, maintained by
// journal.Mirror frame shipping after every acknowledged shard op. When
// the primary exhausts its retry budget, the health machine promotes a
// follower instead of declaring the shard Failed: the partition keeps
// serving through a dead disk, and the shed path (503) becomes the
// fallback of last resort rather than the failure handling.
//
// The failover argument, in three invariants:
//
//  1. Acked ⇒ shipped. runShardOp ships to every in-sync follower
//     before an op's success is returned, so any acknowledged event is
//     on every in-sync follower's disk. A ship failure demotes the
//     follower (out of the candidate set) rather than failing the op.
//  2. Promotion is deterministic: the candidate is the in-sync follower
//     with the highest replicated WAL high-water mark, lowest slot on
//     ties — a pure function of (health state, replica HWMs), pinned by
//     the parallel==serial chaos drives. The commit point is a fsynced
//     "promote" meta record; recovery replays it, so the cluster can
//     never reopen with two primaries for one shard.
//  3. Exactly-once across failover: the promoted store holds exactly
//     the acked prefix. An in-flight (unacked) op retries against it
//     under the same MaxSeq dedup guard as any reopen retry; bytes the
//     dying primary landed but never acked die with its demotion — the
//     old primary dir re-enters as an out-of-sync follower and is wiped
//     by re-seed before it can serve anything.
package cluster

import (
	"fmt"
	"os"
	"time"

	"nprt/internal/journal"
	"nprt/internal/runtime"
)

// replica is one follower slot of one shard.
type replica struct {
	slot    int // directory slot (0 = the base shard dir)
	mirror  *journal.Mirror
	inSync  bool
	lastErr string
}

// ReplicaInfo is a follower's state for /state and diagnostics.
type ReplicaInfo struct {
	Slot      int    `json:"slot"`
	InSync    bool   `json:"in_sync"`
	LastError string `json:"last_error,omitempty"`
}

// replDir names shard si's slot directory: slot 0 is the original shard
// directory (so unreplicated layouts are the degenerate case), slot k ≥ 1
// is "<shard>.rk" beside it.
func replDir(dir string, si, slot int) string {
	if slot == 0 {
		return shardDir(dir, si)
	}
	return shardDir(dir, si) + fmt.Sprintf(".r%d", slot)
}

// primaryDir is the directory shard si's primary store currently lives
// in — slot 0 until a promotion moves it.
func (c *Cluster) primaryDir(si int) string {
	return replDir(c.dir, si, c.primary[si])
}

// PrimarySlot reports which slot directory currently holds shard si's
// primary (0 when replication is off).
func (c *Cluster) PrimarySlot(si int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.primary[si]
}

// slotInjector resolves the fault injector for one (shard, slot) drive.
func (c *Cluster) slotInjector(si, slot int) journal.Injector {
	if slot == 0 {
		if c.opt.Inject != nil {
			return c.opt.Inject(si)
		}
		return nil
	}
	if c.opt.InjectReplica != nil {
		return c.opt.InjectReplica(si, slot)
	}
	return nil
}

// newReplicaMirror builds the shipping stream for one follower slot,
// sourced from the shard's current primary directory.
func (c *Cluster) newReplicaMirror(si, slot int) *journal.Mirror {
	return journal.NewMirror(c.primaryDir(si), replDir(c.dir, si, slot), journal.MirrorOptions{
		Inject:    c.slotInjector(si, slot),
		NoSync:    c.opt.Store.NoSync,
		AfterSync: c.opt.Store.AfterSync,
	})
}

// initReplicasLocked builds shard si's follower set at open: one replica
// per slot that is not the primary. Followers that already hold the
// primary's exact bytes are adopted in-sync; anything else — missing,
// diverged, or the demoted old primary after a failover — is re-seeded.
// A follower whose drive refuses the re-seed enters out-of-sync rather
// than failing Open: the primary must come up even with a dead follower
// disk.
func (c *Cluster) initReplicasLocked(si int) {
	var reps []*replica
	for slot := 0; slot <= c.opt.Replicas; slot++ {
		if slot == c.primary[si] {
			continue
		}
		r := &replica{slot: slot, mirror: c.newReplicaMirror(si, slot)}
		if err := r.mirror.Verify(); err == nil {
			r.inSync = true
		} else if err := c.reseedReplicaLocked(si, r); err != nil {
			r.lastErr = err.Error()
			c.health[si].ReplicaDemotions++
		}
		reps = append(reps, r)
	}
	c.replicas[si] = reps
}

// shipShardLocked streams the primary's new bytes to every in-sync
// follower. Called with c.mu held, after (and only after) a successful
// shard op — this is what makes the replication synchronous: the op's
// success is not returned until each in-sync follower holds its bytes. A
// failed ship demotes that follower; it never fails the primary op.
func (c *Cluster) shipShardLocked(si int) {
	for _, r := range c.replicas[si] {
		if !r.inSync {
			continue
		}
		if err := r.mirror.Sync(); err != nil {
			r.inSync = false
			r.lastErr = err.Error()
			c.health[si].ReplicaDemotions++
		}
	}
}

// reseedReplicaLocked rebuilds one follower from the primary's last
// checkpoint + WAL tail: wipe, ship everything through a fresh mirror,
// verify byte-identity, and prove the copy actually recovers by opening
// it read-only (InspectStore) and cross-checking the runtime digest
// against the live primary. On success the follower is in-sync.
func (c *Cluster) reseedReplicaLocked(si int, r *replica) error {
	dst := replDir(c.dir, si, r.slot)
	if err := os.RemoveAll(dst); err != nil {
		return err
	}
	r.mirror = c.newReplicaMirror(si, r.slot)
	r.inSync = false
	if err := r.mirror.Sync(); err != nil {
		return err
	}
	if err := r.mirror.Verify(); err != nil {
		return err
	}
	so := c.shardStoreOptions(si)
	so.Inject = nil // read-only pass; the scan consumes no device ops
	rt, err := runtime.InspectStore(dst, so)
	if err != nil {
		return fmt.Errorf("re-seeded replica does not recover: %w", err)
	}
	if sh := c.shards[si]; !sh.closed {
		if got, want := rt.Digest(), sh.Store.Digest(); got != want {
			return fmt.Errorf("re-seeded replica recovers to digest %016x, primary is %016x", got, want)
		}
	}
	r.inSync = true
	r.lastErr = ""
	c.health[si].ReplicaReseeds++
	return nil
}

// reseedReplicasLocked re-seeds every out-of-sync follower of shard si,
// returning how many came back. Failures leave the follower out-of-sync
// with the error recorded.
func (c *Cluster) reseedReplicasLocked(si int) int {
	n := 0
	for _, r := range c.replicas[si] {
		if r.inSync {
			continue
		}
		if err := c.reseedReplicaLocked(si, r); err != nil {
			r.lastErr = err.Error()
			continue
		}
		n++
	}
	return n
}

// ReseedReplicas is the maintenance entry point: re-seed every
// out-of-sync follower of shard si from the primary. The chaos driver
// calls it after healing a follower drive; operators would call it after
// replacing one.
func (c *Cluster) ReseedReplicas(si int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if si < 0 || si >= len(c.shards) {
		return 0, fmt.Errorf("cluster: reseed: no shard %d", si)
	}
	if c.shards[si].closed {
		return 0, fmt.Errorf("cluster: reseed shard %d: primary store is closed", si)
	}
	return c.reseedReplicasLocked(si), nil
}

// verifyReplicasLocked digest-checks every in-sync follower against the
// primary's bytes, demoting any that diverged (silent follower-disk
// corruption — the bit-rot case Verify exists for).
func (c *Cluster) verifyReplicasLocked(si int) {
	for _, r := range c.replicas[si] {
		if !r.inSync {
			continue
		}
		if err := r.mirror.Verify(); err != nil {
			r.inSync = false
			r.lastErr = err.Error()
			c.health[si].ReplicaDemotions++
		}
	}
}

// Replicas reports shard si's follower states, by slot order.
func (c *Cluster) Replicas(si int) []ReplicaInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replicaInfoLocked(si)
}

func (c *Cluster) replicaInfoLocked(si int) []ReplicaInfo {
	var out []ReplicaInfo
	for _, r := range c.replicas[si] {
		out = append(out, ReplicaInfo{Slot: r.slot, InSync: r.inSync, LastError: r.lastErr})
	}
	return out
}

// promoteShardLocked is the failover: called with c.mu held when shard
// si's primary has exhausted its retry budget. It deterministically picks
// the in-sync follower with the highest replicated WAL high-water mark
// (lowest slot on ties), opens a store on its directory, commits the role
// change with a fsynced "promote" meta record, and swaps it in as the
// primary; the old primary's directory re-enters the set as an
// out-of-sync follower awaiting re-seed. Returns false (leaving the
// Failed path to the caller) when no in-sync follower exists or none can
// be opened.
func (c *Cluster) promoteShardLocked(si int) bool {
	reps := c.replicas[si]
	if len(reps) == 0 {
		return false
	}
	// Rank candidates: every in-sync follower, by (HWM desc, slot asc).
	type cand struct {
		r   *replica
		hwm uint64
	}
	var cands []cand
	for _, r := range reps {
		if !r.inSync {
			continue
		}
		hwm, err := journal.HighWater(replDir(c.dir, si, r.slot))
		if err != nil {
			r.inSync = false
			r.lastErr = err.Error()
			c.health[si].ReplicaDemotions++
			continue
		}
		cands = append(cands, cand{r, hwm})
	}
	for len(cands) > 0 {
		best := 0
		for i := 1; i < len(cands); i++ {
			if cands[i].hwm > cands[best].hwm ||
				(cands[i].hwm == cands[best].hwm && cands[i].r.slot < cands[best].r.slot) {
				best = i
			}
		}
		pick := cands[best]
		cands = append(cands[:best], cands[best+1:]...)

		newSlot := pick.r.slot
		st, err := runtime.OpenStore(replDir(c.dir, si, newSlot), c.slotStoreOptions(si, newSlot))
		if err != nil {
			// The follower's bytes verified but its store won't open —
			// demote it and try the next candidate.
			pick.r.inSync = false
			pick.r.lastErr = fmt.Sprintf("promotion open failed: %v", err)
			c.health[si].ReplicaDemotions++
			continue
		}
		// Commit point: the promote record. Before it is durable, recovery
		// opens the old primary (the acked prefix); after it, the new one
		// (the identical acked prefix). Either side of the boundary is
		// exactly-once.
		if err := c.metaAppendSynced(metaRecord{Kind: "promote", Seq: c.seq, Shard: si, To: newSlot}); err != nil {
			st.Close()
			return false // meta journal failure: no role change, shard fails
		}
		sh := c.shards[si]
		if !sh.closed {
			sh.Store.Close() // error already accounted by the failed op
			sh.closed = true
		}
		oldSlot := c.primary[si]
		sh.Store, sh.closed = st, false
		c.primary[si] = newSlot

		// Rebuild the follower set around the new primary: the old primary
		// dir becomes an out-of-sync follower (it may hold unacked bytes
		// past the acked prefix — only a re-seed wipe makes it safe);
		// surviving in-sync followers stay in-sync (their bytes equal the
		// new primary's) with mirrors re-pointed at the new source.
		var next []*replica
		for _, r := range reps {
			if r.slot == newSlot {
				continue
			}
			r.mirror = c.newReplicaMirror(si, r.slot)
			next = append(next, r)
		}
		next = append(next, &replica{
			slot:    oldSlot,
			mirror:  c.newReplicaMirror(si, oldSlot),
			lastErr: "demoted by failover; awaiting re-seed",
		})
		c.replicas[si] = next

		h := &c.health[si]
		h.Promotions++
		h.LastError = fmt.Sprintf("promoted follower slot %d after: %s", newSlot, h.LastError)
		return true
	}
	return false
}

// slotStoreOptions is shardStoreOptions pinned to an explicit slot drive
// (promotion opens a store on a follower slot before primary[] is
// updated).
func (c *Cluster) slotStoreOptions(si, slot int) runtime.StoreOptions {
	so := c.opt.Store
	so.Runtime.Seed = c.opt.Store.Runtime.Seed + uint64(si+1)*shardSeedSalt
	if inj := c.slotInjector(si, slot); inj != nil {
		so.Inject = inj
	}
	if c.opt.Clock != nil {
		so.Clock = c.opt.Clock(si)
	}
	// Latency capture follows the primary ROLE, not the drive: only the
	// primary's WAL writer is opened through this path, so after a
	// promotion the tracker automatically samples the new device. Mirror
	// ships never pass through here and never pollute the samples.
	if c.lat != nil {
		t := c.lat[si]
		so.Observe = func(sync bool, d time.Duration) { t.Record(d) }
	}
	return so
}

// RetryAfterHint derives a client backoff hint from shard si's actual
// containment state: the deterministic delay the retry loop itself would
// wait before the shard's next attempt, given its consecutive-error
// count. Healthy shards hint the first-attempt delay. The serve layer
// turns this into Retry-After on partition-scoped 503s, so clients back
// off in step with the recovery machinery instead of a fixed constant.
func (c *Cluster) RetryAfterHint(si int) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if si < 0 || si >= len(c.health) {
		return 0
	}
	attempt := c.health[si].ConsecErrs
	if attempt < 1 {
		attempt = 1
	}
	if attempt > c.retry.MaxAttempts {
		attempt = c.retry.MaxAttempts
	}
	return c.retry.delay(si, attempt)
}
