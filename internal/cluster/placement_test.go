package cluster

import (
	"testing"

	"nprt/internal/feasibility"
	"nprt/internal/task"
)

// ptask builds a minimal valid task for placement probing (only the timing
// fields matter to the Jeffay screen).
func ptask(name string, p, w, x task.Time) task.Task {
	return task.Task{Name: name, Period: p, WCETAccurate: w, WCETImprecise: x}
}

// mkShards fabricates router-side shards (mirror only, no store) holding
// the given task sets — placement policies never touch the store.
func mkShards(sets ...[]task.Task) []*Shard {
	out := make([]*Shard, len(sets))
	for i, set := range sets {
		out[i] = &Shard{ID: i, inc: feasibility.NewIncremental(set)}
	}
	return out
}

func TestParsePolicy(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ParsePolicy(%q).Name() = %q", name, p.Name())
		}
	}
	if p, err := ParsePolicy(""); err != nil || p.Name() != "first-fit" {
		t.Errorf("default policy = %v, %v; want first-fit", p, err)
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy(bogus) accepted")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	shards := mkShards(nil, nil, nil)
	c := ptask("c", 40, 4, 1)
	p, _ := ParsePolicy("round-robin")
	for rr := uint64(0); rr < 7; rr++ {
		if got, want := p.Place(&c, shards, rr), int(rr%3); got != want {
			t.Errorf("rr=%d placed on %d, want %d", rr, got, want)
		}
	}
}

func TestLeastUtilPicksEmptiest(t *testing.T) {
	shards := mkShards(
		[]task.Task{ptask("a", 40, 20, 4)}, // util 0.5
		[]task.Task{ptask("b", 40, 4, 1)},  // util 0.1
		[]task.Task{ptask("c", 40, 10, 2)}, // util 0.25
	)
	c := ptask("new", 40, 4, 1)
	p, _ := ParsePolicy("least-util")
	if got := p.Place(&c, shards, 0); got != 1 {
		t.Errorf("least-util placed on %d, want 1", got)
	}
}

func TestAffinityIsStable(t *testing.T) {
	shards := mkShards(nil, nil, nil, nil)
	p, _ := ParsePolicy("affinity")
	hit := make(map[int]bool)
	for _, name := range []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"} {
		c := ptask(name, 40, 4, 1)
		first := p.Place(&c, shards, 0)
		for i := 0; i < 5; i++ {
			if got := p.Place(&c, shards, uint64(i)); got != first {
				t.Fatalf("affinity(%q) moved: %d then %d", name, first, got)
			}
		}
		hit[first] = true
	}
	if len(hit) < 2 {
		t.Errorf("affinity sent 6 names to %d shard(s) — hash not spreading", len(hit))
	}
}

func TestFirstFitSkipsFullShards(t *testing.T) {
	// Shard 0 is saturated (util 1.0): nothing fits. Shard 1 has room.
	shards := mkShards(
		[]task.Task{ptask("big", 40, 40, 4)},
		[]task.Task{ptask("sm", 40, 4, 1)},
	)
	c := ptask("new", 40, 8, 2)
	p, _ := ParsePolicy("first-fit")
	if got := p.Place(&c, shards, 0); got != 1 {
		t.Errorf("first-fit placed on %d, want 1 (shard 0 is full)", got)
	}

	// An accurate fit anywhere beats a deep-only fit earlier in the order:
	// shard 0 can hold the candidate only in its deepest-imprecise profile,
	// shard 1 holds it fully accurate.
	shards = mkShards(
		[]task.Task{ptask("l", 40, 36, 2)}, // 0.9 utilized: w=8 fails, x=2 fits
		[]task.Task{ptask("s", 40, 8, 2)},
	)
	if got := p.Place(&c, shards, 0); got != 1 {
		t.Errorf("first-fit preferred a degraded fit on 0 over accurate on 1 (got %d)", got)
	}

	// Nowhere fits at all: fall back to the least-utilized shard, which
	// records the deterministic rejection.
	shards = mkShards(
		[]task.Task{ptask("f0", 40, 40, 38)},
		[]task.Task{ptask("f1", 40, 38, 36)},
	)
	huge := ptask("huge", 40, 39, 38)
	if got := p.Place(&huge, shards, 0); got != 1 {
		t.Errorf("first-fit fallback placed on %d, want least-util shard 1", got)
	}
}

func TestBestFitPacksTightest(t *testing.T) {
	// Both shards fit the candidate accurately; best-fit takes the fuller.
	shards := mkShards(
		[]task.Task{ptask("a", 40, 8, 2)},  // util 0.2
		[]task.Task{ptask("b", 40, 20, 4)}, // util 0.5
		nil,                                // util 0
	)
	c := ptask("new", 40, 8, 2)
	p, _ := ParsePolicy("best-fit")
	if got := p.Place(&c, shards, 0); got != 1 {
		t.Errorf("best-fit placed on %d, want the tightest fit 1", got)
	}
}

// TestPoliciesAreDeterministic: same candidate, same mirrors, same cursor
// — every policy must return the same shard on repeat calls (the property
// the tape-level determinism test scales up).
func TestPoliciesAreDeterministic(t *testing.T) {
	shards := mkShards(
		[]task.Task{ptask("a", 40, 8, 2)},
		[]task.Task{ptask("b", 80, 30, 5)},
		[]task.Task{ptask("c", 160, 20, 3)},
	)
	for _, name := range PolicyNames() {
		p, _ := ParsePolicy(name)
		for i := 0; i < 4; i++ {
			c := ptask("cand", 80, 12, 3)
			first := p.Place(&c, shards, 7)
			if again := p.Place(&c, shards, 7); again != first {
				t.Errorf("%s: repeat placement %d != %d", name, again, first)
			}
		}
	}
}
