// Shard health: the failure-containment state machine and the transient-
// error retry loop around every shard store operation.
//
// Failure model. A shard store fails through its journal: an fsync is
// refused, a write tears, the disk fills or wedges. After any such error
// the WAL writer poisons itself (journal.ErrJournalPoisoned) — the only
// legal continuation is a reopen, which re-derives the durable prefix from
// the bytes actually on disk. The router therefore treats every shard
// store error the same way: degrade the shard, reopen it (recovery IS the
// repair path), and retry the operation against the recovered state, with
// bounded exponential backoff and deterministic jitter between attempts.
// A shard that keeps failing past the attempt budget transitions to
// Failed: the router fences it (no placements, no removes, no broadcasts
// reach it) and sheds only the events routed to it — the healthy
// partitions keep serving. A Failed shard leaves that state only through
// EvacuateShard (migrate.go), which drains its tasks to survivors and
// re-images it empty.
//
//	Healthy ──op error──▶ Degraded ──budget exhausted──▶ Failed
//	   ▲                      │                             │
//	   └──────op success──────┘            Healthy ◀── evacuate+re-image
package cluster

import (
	"errors"
	"fmt"
	"time"

	"nprt/internal/rng"
	"nprt/internal/runtime"
	"nprt/internal/task"
)

// HealthState is a shard's position in the containment state machine.
type HealthState uint8

const (
	// Healthy: serving normally.
	Healthy HealthState = iota
	// Degraded: at least one recent op failed; the retry loop is (or was)
	// reopening the store. Still serving — the next success heals it.
	Degraded
	// Failed: the retry budget was exhausted (or the driver declared the
	// shard dead). Fenced from routing until evacuated and re-imaged.
	Failed
	// Slow: the shard serves correctly but its WAL p99 sojourn breached
	// the latency SLO (gray failure), or its engine is stuck inside one op
	// (watchdog). Fenced from placement; existing tasks still served.
	// Cleared by the latency check once p99 recovers or by a proactive
	// promotion away from the slow primary. Appended after Failed so the
	// numeric values of the original states are stable.
	Slow
)

// String names the state.
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	case Slow:
		return "slow"
	}
	return fmt.Sprintf("state%d", uint8(s))
}

// ShardHealth is one shard's containment state, exposed through
// Cluster.Health and the serve layer's /state.
type ShardHealth struct {
	State HealthState `json:"-"`
	// StateName is State rendered for JSON consumers (loadgen, /state).
	StateName string `json:"state"`
	// ConsecErrs counts consecutive failed ops (reset on success).
	ConsecErrs int `json:"consec_errs,omitempty"`
	// TotalErrs counts lifetime failed ops.
	TotalErrs uint64 `json:"total_errs,omitempty"`
	// Reopens counts store reopen-recoveries the retry loop performed.
	Reopens uint64 `json:"reopens,omitempty"`
	// Reimages counts evacuate-and-re-image cycles.
	Reimages uint64 `json:"reimages,omitempty"`
	// Promotions counts follower promotions (failovers) on this shard.
	Promotions uint64 `json:"promotions,omitempty"`
	// ReplicaDemotions counts followers dropped out of sync (ship
	// failures, digest divergence, failover demotions of old primaries);
	// ReplicaReseeds counts followers rebuilt back into sync.
	ReplicaDemotions uint64 `json:"replica_demotions,omitempty"`
	ReplicaReseeds   uint64 `json:"replica_reseeds,omitempty"`
	// SlowEvents counts latency-SLO breaches (and watchdog triggers) that
	// transitioned the shard into Slow.
	SlowEvents uint64 `json:"slow_events,omitempty"`
	// DeadlineSheds counts events shed at routing because the shard was
	// Slow and the cluster's admit deadline could not be met.
	DeadlineSheds uint64 `json:"deadline_sheds,omitempty"`
	// LatencyP99Ms is the last evaluated WAL p99 sojourn in milliseconds
	// (0 until the latency tracker has enough samples).
	LatencyP99Ms float64 `json:"latency_p99_ms,omitempty"`
	// LastError is the most recent op error, "" when none.
	LastError string `json:"last_error,omitempty"`
}

// ErrShardFailed reports that an event was routed to (or an operation
// targeted) a shard in the Failed state. The serve layer maps it to
// partition-scoped load shedding: 503 + Retry-After for this event only.
var ErrShardFailed = errors.New("cluster: shard failed")

// ErrShardSlow reports that an event targeting a Slow shard was shed
// because the cluster's admit deadline could not be met at the shard's
// current latency. Like ErrShardFailed, the serve layer maps it to a
// partition-scoped 503 — but the shard is alive, so Retry-After hints at
// the promotion/recovery horizon rather than evacuation.
var ErrShardSlow = errors.New("cluster: shard over latency SLO")

// RetryOptions bounds the transient-failure containment loop.
type RetryOptions struct {
	// MaxAttempts is the total tries per shard op before the shard is
	// declared Failed (default 4: one try + three reopen-retries).
	MaxAttempts int
	// BackoffBase/BackoffCap bound the exponential backoff between
	// attempts (defaults 5ms / 250ms).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Seed keys the deterministic jitter (pure in seed, shard, attempt).
	Seed uint64
	// Sleep is the delay function; injectable so deterministic soaks spend
	// no wall-clock. Defaults to time.Sleep.
	Sleep func(time.Duration)
}

func (o RetryOptions) withDefaults() RetryOptions {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 5 * time.Millisecond
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 250 * time.Millisecond
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// delay computes the backoff before retry `attempt` (1-based): exponential
// from BackoffBase, capped, with deterministic jitter in [50%, 100%] keyed
// by (seed, shard, attempt) — the same pure-in-index discipline as every
// other random draw in the system.
func (o RetryOptions) delay(shard, attempt int) time.Duration {
	d := o.BackoffBase
	for i := 1; i < attempt && d < o.BackoffCap; i++ {
		d *= 2
	}
	if d > o.BackoffCap {
		d = o.BackoffCap
	}
	key := o.Seed ^ uint64(shard+1)*0x9e3779b97f4a7c15 ^ uint64(attempt)*0xd1b54a32d192ed03
	j := rng.New(key).Float64() // [0, 1)
	return d/2 + time.Duration(float64(d/2)*j)
}

// Health returns shard si's containment state.
func (c *Cluster) Health(si int) ShardHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.healthLocked(si)
}

// Healths returns every shard's containment state, by shard index.
func (c *Cluster) Healths() []ShardHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ShardHealth, len(c.health))
	for i := range c.health {
		out[i] = c.healthLocked(i)
	}
	return out
}

func (c *Cluster) healthLocked(si int) ShardHealth {
	h := c.health[si]
	h.StateName = h.State.String()
	return h
}

// setHealthStateLocked transitions shard si to state s, maintaining the
// fenced-shard counters (c.failed, c.slow) that route() consults. The only
// legal way to change a shard's State field.
func (c *Cluster) setHealthStateLocked(si int, s HealthState) {
	h := &c.health[si]
	if h.State == s {
		return
	}
	switch h.State {
	case Failed:
		c.failed--
	case Slow:
		c.slow--
	}
	switch s {
	case Failed:
		c.failed++
	case Slow:
		c.slow++
	}
	h.State = s
}

// FailShard declares shard si Failed without consuming the retry budget —
// the driver-side path for a failure detected outside an op (the chaos
// soak wedging a device it owns, or an operator decision). Idempotent.
func (c *Cluster) FailShard(si int, cause string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.setHealthStateLocked(si, Failed)
	c.health[si].LastError = cause
}

// NoteStuck flags shard si as Slow from outside the op path — the serve
// layer's per-shard watchdog calls it when an engine goroutine has been
// inside a single store op longer than its stuck threshold. Idempotent
// while already Slow or Failed.
func (c *Cluster) NoteStuck(si int, cause string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := &c.health[si]
	if h.State != Healthy && h.State != Degraded {
		return
	}
	c.setHealthStateLocked(si, Slow)
	h.SlowEvents++
	h.LastError = cause
}

// runShardOp drives one store operation through the containment loop:
// run the op; on error, degrade the shard, reopen its store (recovery is
// the repair — torn tails truncate, poisoned writers are replaced), back
// off with deterministic jitter, and retry the op against the recovered
// state. Exhausting MaxAttempts marks the shard Failed and returns
// ErrShardFailed (wrapped around the last cause).
//
// locked says the caller already holds c.mu (the serial Apply path and
// migration handoffs); the batch/epoch paths run unlocked so independent
// shards retry concurrently. rebuilt reports that at least one reopen
// happened — the shard's mirror was re-derived from recovered state, so
// the caller's optimistic mirror deltas may have been discarded (complete
// reconciles by membership, not by memory, for exactly this reason).
func (c *Cluster) runShardOp(si int, locked bool, op func(st *runtime.Store) error) (rebuilt bool, err error) {
	lock := func() {
		if !locked {
			c.mu.Lock()
		}
	}
	unlock := func() {
		if !locked {
			c.mu.Unlock()
		}
	}
	lock()
	if c.health[si].State == Failed {
		cause := c.health[si].LastError
		unlock()
		return false, fmt.Errorf("%w: shard %d: %s", ErrShardFailed, si, cause)
	}
	ro := c.retry
	unlock()

	for attempt := 1; ; attempt++ {
		err = nil
		if attempt > 1 {
			if rerr := c.reopenShard(si, locked); rerr != nil {
				err = fmt.Errorf("shard %d reopen: %w", si, rerr)
			} else {
				rebuilt = true
			}
		}
		if err == nil {
			lock()
			st := c.shards[si].Store
			unlock()
			err = op(st)
		}
		lock()
		h := &c.health[si]
		if err == nil {
			h.ConsecErrs = 0
			// Slow is NOT healed here: op success says nothing about
			// latency; only the latency check (p99 back under SLO, or a
			// promotion away from the slow device) clears it.
			if h.State == Degraded {
				c.setHealthStateLocked(si, Healthy)
			}
			if rebuilt {
				c.rebuildMirrorLocked(si)
			}
			// Synchronous replication: the op is not acknowledged until
			// every in-sync follower holds its bytes (acked ⇒ shipped, the
			// failover's exactly-once invariant). Ship failures demote the
			// follower, never the op.
			c.shipShardLocked(si)
			unlock()
			return rebuilt, nil
		}
		h.ConsecErrs++
		h.TotalErrs++
		h.LastError = err.Error()
		if h.State == Healthy || h.State == Slow {
			c.setHealthStateLocked(si, Degraded)
		}
		if attempt >= ro.MaxAttempts {
			// Before declaring the shard Failed, try failover: promote an
			// in-sync follower and retry the op against it with a fresh
			// budget. The promoted store holds exactly the acked prefix, so
			// the retry falls under the same MaxSeq dedup guard as any
			// reopen retry.
			if c.promoteShardLocked(si) {
				rebuilt = true
				attempt = 0
				unlock()
				continue
			}
			c.setHealthStateLocked(si, Failed)
			if rebuilt {
				c.rebuildMirrorLocked(si)
			}
			unlock()
			return rebuilt, fmt.Errorf("%w: shard %d after %d attempt(s): %v", ErrShardFailed, si, attempt, err)
		}
		unlock()
		ro.Sleep(ro.delay(si, attempt))
	}
}

// reopenShard replaces shard si's store with a fresh recovery of its
// directory. The old writer is closed first (two appenders on one WAL
// would be corruption, and its close error is exactly what brought us
// here); if the reopen itself fails the old store object stays in place —
// closed for writes, but its in-memory runtime still answers reads — and
// the retry loop will try again.
func (c *Cluster) reopenShard(si int, locked bool) error {
	if !locked {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	sh := c.shards[si]
	if !sh.closed {
		sh.Store.Close() // error already accounted by the failed op
		sh.closed = true
	}
	st, err := runtime.OpenStore(c.primaryDir(si), c.shardStoreOptions(si))
	if err != nil {
		return err
	}
	sh.Store, sh.closed = st, false
	c.health[si].Reopens++
	return nil
}

// rebuildMirrorLocked re-derives shard si's feasibility mirror from its
// store's (recovered) task set — the post-reopen resync.
func (c *Cluster) rebuildMirrorLocked(si int) {
	specs := c.shards[si].Store.Runtime().Tasks()
	tasks := make([]task.Task, len(specs))
	for j := range specs {
		tasks[j] = specs[j].Task
	}
	c.shards[si].inc.Reset(tasks)
}

// CrashShard simulates a shard process kill and restart at a quiescent
// boundary: the store is closed and re-recovered from disk — checkpoint
// plus WAL replay, exactly the path a real restart takes. Deterministic
// chaos drivers call it at tick boundaries (where every acked write is on
// disk), so serial and batched drives see identical recoveries.
func (c *Cluster) CrashShard(si int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.reopenShard(si, true); err != nil {
		return fmt.Errorf("cluster: crash-restart shard %d: %w", si, err)
	}
	c.rebuildMirrorLocked(si)
	return nil
}

// synthRecovered answers an event that is already durable on st: it was
// journaled by an attempt whose "failed" sync had in fact landed the bytes
// (fsyncgate ambiguity), and the reopen replayed it. Re-applying would
// double it in the WAL, so the decision is reconstructed from recovered
// state instead — the same answer replay itself settled on.
func synthRecovered(st *runtime.Store, ev *runtime.Event) runtime.Decision {
	switch ev.Op {
	case "add":
		name := ev.Task.Task.Name
		d := runtime.Decision{Op: "add", Task: name, Reason: "recovered during shard retry"}
		for _, sp := range st.Runtime().Tasks() {
			if sp.Task.Name == name {
				d.Verdict = runtime.Admitted
				return d
			}
		}
		d.Verdict = runtime.Rejected
		return d
	case "remove":
		return runtime.Decision{Op: "remove", Task: ev.Name, Verdict: runtime.Admitted,
			Reason: "recovered during shard retry"}
	default:
		return runtime.Decision{Op: ev.Op, Verdict: runtime.Admitted,
			Reason: "recovered during shard retry"}
	}
}

// shardApply is Store.Apply under the containment loop, with the
// already-durable dedup guard. Returns the decision, the per-event
// (stale-request) error, whether a reopen happened, and the fatal error.
//
// The guard is consulted only on RETRY attempts. On the first attempt the
// event is by construction new to the shard, and the Seq-vs-MaxSeq test is
// not a membership test: a migration handoff stamps the moved add with a
// fresh router sequence, which can push the target's MaxSeq far past
// events still in flight from older stamps — deduping those on arrival
// would swallow them whole. After a reopen the test is sound, because the
// only record in question is the one this very op just tried to append.
func (c *Cluster) shardApply(si int, locked bool, ev runtime.Event) (runtime.Decision, error, bool, error) {
	var dec runtime.Decision
	var evErr error
	tried := false
	rebuilt, err := c.runShardOp(si, locked, func(st *runtime.Store) error {
		if tried && ev.Seq != 0 && ev.Seq <= st.MaxSeq() {
			dec, evErr = synthRecovered(st, &ev), nil
			return nil
		}
		tried = true
		d, aerr := st.Apply(ev)
		if aerr != nil && !runtime.IsStaleRequest(aerr) {
			return aerr
		}
		dec, evErr = d, aerr
		return nil
	})
	return dec, evErr, rebuilt, err
}

// shardApplyBatch is Store.ApplyBatch under the containment loop. On a
// retry after reopen, events the recovered store already holds (their
// batch's sync "failed" after the bytes landed, or a torn write kept a
// prefix) are answered from recovered state; only the genuinely missing
// suffix is re-applied.
func (c *Cluster) shardApplyBatch(si int, evs []runtime.Event) ([]runtime.Decision, []error, bool, error) {
	decs := make([]runtime.Decision, len(evs))
	errs := make([]error, len(evs))
	tried := false
	rebuilt, err := c.runShardOp(si, false, func(st *runtime.Store) error {
		pend := make([]runtime.Event, 0, len(evs))
		pendIdx := make([]int, 0, len(evs))
		max := st.MaxSeq()
		for i := range evs {
			// Retry-only, like shardApply: on the first attempt nothing in
			// this batch can be durable yet, and migration-inflated MaxSeq
			// must not swallow fresh events.
			if tried && evs[i].Seq != 0 && evs[i].Seq <= max {
				decs[i], errs[i] = synthRecovered(st, &evs[i]), nil
				continue
			}
			pend = append(pend, evs[i])
			pendIdx = append(pendIdx, i)
		}
		tried = true
		if len(pend) == 0 {
			return nil
		}
		d, e, fatal := st.ApplyBatch(pend)
		if fatal != nil {
			return fatal
		}
		for j, i := range pendIdx {
			decs[i], errs[i] = d[j], e[j]
		}
		return nil
	})
	return decs, errs, rebuilt, err
}

// shardEpoch is Store.RunEpoch under the containment loop. The target
// epoch is captured on the first attempt: if a retry's recovered store is
// already there, the epoch record landed despite the reported failure and
// replay has re-run it — synthesize the report instead of running it
// twice.
func (c *Cluster) shardEpoch(si int) (runtime.EpochReport, error) {
	var rep runtime.EpochReport
	want := int64(-1)
	_, err := c.runShardOp(si, false, func(st *runtime.Store) error {
		if want < 0 {
			want = st.Epoch() + 1
		}
		if st.Epoch() >= want {
			rep = runtime.EpochReport{Epoch: st.Epoch()}
			return nil
		}
		r, rerr := st.RunEpoch()
		if rerr != nil {
			return rerr
		}
		rep = r
		return nil
	})
	return rep, err
}
