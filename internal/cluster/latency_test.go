package cluster_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"nprt/internal/cluster"
	"nprt/internal/journal"
	schedrt "nprt/internal/runtime"
)

// TestLatencyTrackerWindowEviction pins the tracker's epoch-boundary
// semantics: which samples survive each Advance, when a jump clears the
// whole window, that backwards advances are no-ops, and that Reset drops
// samples without moving the epoch position. Quantiles are the bucket
// upper bounds (log2 histogram), so the expected values are powers of two.
func TestLatencyTrackerWindowEviction(t *testing.T) {
	const (
		ms1  = time.Millisecond       // bucket upper bound 2^20 ns
		ms16 = 16 * time.Millisecond  // bucket upper bound 2^24 ns
		ub1  = time.Duration(1) << 20 // Quantile's answer for a 1ms sample
		ub16 = time.Duration(1) << 24 // Quantile's answer for a 16ms sample
	)
	type op struct {
		rec   time.Duration // > 0: Record this sample
		adv   int64         // > 0: Advance to this epoch
		reset bool
	}
	cases := []struct {
		name      string
		window    int
		ops       []op
		wantCount uint64
		wantQ99   time.Duration
	}{
		{
			name:   "window1-evicts-every-epoch",
			window: 1,
			ops:    []op{{rec: ms1}, {rec: ms1}, {rec: ms16}, {adv: 1}},
		},
		{
			name:      "window2-retains-previous-epoch",
			window:    2,
			ops:       []op{{rec: ms1}, {adv: 1}, {rec: ms16}},
			wantCount: 2,
			wantQ99:   ub16,
		},
		{
			name:      "window2-evicts-oldest-on-step",
			window:    2,
			ops:       []op{{rec: ms16}, {adv: 1}, {rec: ms1}, {adv: 2}},
			wantCount: 1,
			wantQ99:   ub1,
		},
		{
			name:   "window2-drains-empty-two-steps-later",
			window: 2,
			ops:    []op{{rec: ms1}, {adv: 1}, {rec: ms16}, {adv: 3}},
		},
		{
			name:   "jump-of-window-or-more-clears-all",
			window: 4,
			ops:    []op{{rec: ms1}, {adv: 1}, {rec: ms1}, {adv: 2}, {rec: ms16}, {adv: 6}},
		},
		{
			name:      "advance-backwards-is-a-noop",
			window:    2,
			ops:       []op{{adv: 5}, {rec: ms16}, {adv: 3}},
			wantCount: 1,
			wantQ99:   ub16,
		},
		{
			name:      "reset-drops-samples-keeps-epoch",
			window:    2,
			ops:       []op{{adv: 3}, {rec: ms16}, {reset: true}, {rec: ms1}, {adv: 3}},
			wantCount: 1,
			wantQ99:   ub1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := cluster.NewLatencyTracker(tc.window)
			for i, o := range tc.ops {
				switch {
				case o.reset:
					tr.Reset()
				case o.adv > 0:
					tr.Advance(o.adv)
				default:
					if o.rec <= 0 {
						t.Fatalf("op %d: empty step", i)
					}
					tr.Record(o.rec)
				}
			}
			if got := tr.Count(); got != tc.wantCount {
				t.Fatalf("Count = %d, want %d", got, tc.wantCount)
			}
			if got := tr.Quantile(0.99); got != tc.wantQ99 {
				t.Fatalf("Quantile(0.99) = %v, want %v", got, tc.wantQ99)
			}
		})
	}
}

// graySlowOptions builds a deterministic gray-failure test cluster: every
// shard's WAL runs on its own virtual clock, shard 0's primary drive is
// the returned FaultFS (brown it to make the shard slow), and — when slo
// is set — the latency health machine is armed with a 1-epoch window so a
// breach is detected at the very next epoch sweep.
func graySlowOptions(shards, replicas int, slo bool) (cluster.Options, *journal.FaultFS) {
	clocks := make([]*journal.VirtualClock, shards)
	for i := range clocks {
		clocks[i] = journal.NewVirtualClock()
	}
	prim := journal.NewFaultFS(1, journal.FaultRates{})
	prim.SetClock(clocks[0])
	opt := cluster.Options{
		Shards:    shards,
		Replicas:  replicas,
		Placement: "first-fit",
		Store:     schedrt.StoreOptions{NoSync: true},
		Inject: func(si int) journal.Injector {
			if si == 0 {
				return prim
			}
			return nil
		},
		Clock: func(si int) journal.Clock { return clocks[si] },
		Retry: cluster.RetryOptions{MaxAttempts: 3, Sleep: noSleep},
	}
	if slo {
		opt.LatencySLO = 2 * time.Millisecond
		opt.LatencyWindow = 1
		opt.AdmitDeadline = 5 * time.Millisecond
	}
	return opt, prim
}

// TestSlowShardFencedAndDeadlineShed: the unreplicated gray-failure
// contract. A browned drive makes shard 0 breach the SLO at the next
// epoch sweep: the shard turns Slow (fenced — new placements land
// elsewhere), removes targeting it are shed with ErrShardSlow without
// mutating anything, and once the brownout ends the next sweep's fast
// samples lift the fence so the shed op succeeds on retry.
func TestSlowShardFencedAndDeadlineShed(t *testing.T) {
	opt, prim := graySlowOptions(2, 0, true)
	c := openCluster(t, t.TempDir(), opt)

	if res, err := c.Apply(addEvent("a0", 100, 10, 2)); err != nil || res.Shard != 0 {
		t.Fatalf("seed: shard %d err %v, want shard 0", res.Shard, err)
	}
	prim.Brownout(10 * time.Millisecond)
	if _, err := c.Apply(addEvent("a1", 100, 10, 2)); err != nil {
		t.Fatalf("browned apply (delay, not error): %v", err)
	}
	if _, err := c.RunEpoch(false); err != nil {
		t.Fatalf("epoch: %v", err)
	}

	h := c.Health(0)
	if h.State != cluster.Slow || h.SlowEvents != 1 {
		t.Fatalf("after browned epoch: %+v, want Slow with 1 slow event", h)
	}
	if h.LatencyP99Ms <= 2 {
		t.Fatalf("recorded p99 %.3fms does not show the 10ms brownout", h.LatencyP99Ms)
	}
	// Placement fences the slow shard: first-fit would pick 0, but 0 is
	// over the SLO, so the add must land on shard 1.
	res, err := c.Apply(addEvent("a2", 100, 10, 2))
	if err != nil || res.Shard != 1 {
		t.Fatalf("add while slow: shard %d err %v, want fenced onto shard 1", res.Shard, err)
	}
	// Deadline propagation: the remove's owner is slow, so serving it
	// would miss the admit deadline — shed, nothing mutated.
	if _, err := c.Apply(schedrt.Event{Op: "remove", Name: "a0"}); !errors.Is(err, cluster.ErrShardSlow) {
		t.Fatalf("remove against slow owner: %v, want ErrShardSlow", err)
	}
	if h := c.Health(0); h.DeadlineSheds != 1 {
		t.Fatalf("deadline sheds = %d, want 1", h.DeadlineSheds)
	}
	if si, ok := c.Owners()["a0"]; !ok || si != 0 {
		t.Fatalf("shed remove mutated ownership: owner %d/%v", si, ok)
	}

	// The brownout ends; the next epoch's own WAL writes are fast, the
	// 1-epoch window has evicted the slow samples, and the sweep heals.
	prim.Brownout(0)
	if _, err := c.RunEpoch(false); err != nil {
		t.Fatalf("healing epoch: %v", err)
	}
	if h := c.Health(0); h.State != cluster.Healthy {
		t.Fatalf("after brownout ended: %+v, want Healthy", h)
	}
	if _, err := c.Apply(schedrt.Event{Op: "remove", Name: "a0"}); err != nil {
		t.Fatalf("remove after heal: %v", err)
	}
}

// TestSlowPrimaryProactivePromotion is the acceptance pin for the
// replicated path: with one follower, a brownout on the primary drive is
// detected at the next epoch sweep and resolved by promoting the in-sync
// follower — BEFORE any op fails — restoring p99 below the SLO with every
// acked task intact. The blind control run (no -latency-slo) proves the
// promotion is driven by the latency signal, not by the brownout itself.
func TestSlowPrimaryProactivePromotion(t *testing.T) {
	run := func(slo bool) *cluster.Cluster {
		opt, prim := graySlowOptions(1, 1, slo)
		c := openCluster(t, t.TempDir(), opt)
		for i := 0; i < 3; i++ {
			if _, err := c.Apply(addEvent(fmt.Sprintf("a%d", i), 100, 10, 2)); err != nil {
				t.Fatalf("seed %d: %v", i, err)
			}
		}
		if reps := c.Replicas(0); len(reps) != 1 || !reps[0].InSync {
			t.Fatalf("follower not in sync before brownout: %+v", reps)
		}
		prim.Brownout(10 * time.Millisecond)
		if _, err := c.Apply(addEvent("a3", 100, 10, 2)); err != nil {
			t.Fatalf("browned apply: %v", err)
		}
		if _, err := c.RunEpoch(false); err != nil {
			t.Fatalf("epoch: %v", err)
		}
		return c
	}

	c := run(true)
	h := c.Health(0)
	if h.Promotions != 1 || h.SlowEvents != 1 {
		t.Fatalf("armed run after sweep: %+v, want 1 slow event resolved by 1 promotion", h)
	}
	if h.State != cluster.Healthy {
		t.Fatalf("promotion must clear Slow: %+v", h)
	}
	if slot := c.PrimarySlot(0); slot != 1 {
		t.Fatalf("primary slot %d, want promoted follower slot 1", slot)
	}
	owners := c.Owners()
	for _, name := range []string{"a0", "a1", "a2", "a3"} {
		if si, ok := owners[name]; !ok || si != 0 {
			t.Fatalf("task %q lost across proactive promotion (owner %d/%v)", name, si, ok)
		}
	}
	// The promoted store serves fast: the next epoch's samples keep p99
	// under the SLO (the tracker was reset with the demoted device).
	if _, err := c.Apply(addEvent("a4", 100, 10, 2)); err != nil {
		t.Fatalf("apply after promotion: %v", err)
	}
	if _, err := c.RunEpoch(false); err != nil {
		t.Fatalf("post-promotion epoch: %v", err)
	}
	if p99 := c.ShardLatencyP99(0); p99 > 2*time.Millisecond {
		t.Fatalf("p99 %v still over SLO after promoting away from the slow drive", p99)
	}
	if h := c.Health(0); h.State != cluster.Healthy || h.Promotions != 1 {
		t.Fatalf("steady state after promotion: %+v", h)
	}

	// Blind control: same brownout, no latency SLO — nobody promotes,
	// the slow drive keeps serving every op.
	cb := run(false)
	if h := cb.Health(0); h.Promotions != 0 || h.SlowEvents != 0 {
		t.Fatalf("blind run acted on a signal it does not have: %+v", h)
	}
	if slot := cb.PrimarySlot(0); slot != 0 {
		t.Fatalf("blind run moved the primary to slot %d", slot)
	}
}
