package cluster

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	schedrt "nprt/internal/runtime"
)

// TestWatchdogFlagsStuckEngine pins the scan itself (white-box, no timer):
// an engine whose current store op started longer than StuckOpAfter ago is
// reported Slow via NoteStuck; idle engines and fresh ops are left alone,
// and a second scan over the same stuck op does not double-count.
func TestWatchdogFlagsStuckEngine(t *testing.T) {
	c, err := Open(t.TempDir(), Options{
		Shards: 2,
		Store:  schedrt.StoreOptions{NoSync: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// White-box server: wire the watchdog's inputs without starting the
	// engines — opStart is exactly the heartbeat the engines would bump.
	s := NewServer(ServeOptions{StuckOpAfter: 50 * time.Millisecond})
	s.c = c
	s.opStart = make([]atomic.Int64, 2)

	now := time.Now()
	s.opStart[0].Store(now.Add(-time.Second).UnixNano()) // stuck for 1s
	s.opStart[1].Store(now.Add(-time.Millisecond).UnixNano())

	s.scanStuck(now)
	h := c.Health(0)
	if h.State != Slow || h.SlowEvents != 1 {
		t.Fatalf("stuck engine not flagged: %+v", h)
	}
	if !strings.Contains(h.LastError, "stuck") {
		t.Fatalf("cause does not name the watchdog: %q", h.LastError)
	}
	if h := c.Health(1); h.State != Healthy || h.SlowEvents != 0 {
		t.Fatalf("fresh op misflagged: %+v", h)
	}

	// Shard 1's op completes normally before the next pass.
	s.opStart[1].Store(0)

	// Re-scan while still stuck: NoteStuck is idempotent on a Slow shard.
	s.scanStuck(now.Add(time.Second))
	if h := c.Health(0); h.SlowEvents != 1 {
		t.Fatalf("re-scan double-counted: %+v", h)
	}

	// The op returns; the next scan sees an idle engine and flags nothing
	// new (healing is the latency check's job, not the watchdog's).
	s.opStart[0].Store(0)
	s.scanStuck(now.Add(2 * time.Second))
	if h := c.Health(1); h.State != Healthy {
		t.Fatalf("idle engine flagged: %+v", h)
	}
}
