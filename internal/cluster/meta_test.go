package cluster_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"nprt/internal/cluster"
	schedrt "nprt/internal/runtime"
)

// copyTree copies a cluster directory so each truncation case starts from
// the same bits.
func copyTree(t testing.TB, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return os.WriteFile(out, b, info.Mode())
	})
	if err != nil {
		t.Fatalf("copy %s -> %s: %v", src, dst, err)
	}
}

// metaSegments returns the cluster's meta journal segment files, sorted.
func metaSegments(t testing.TB, dir string) []string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "meta", "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no meta segments in %s (err %v)", dir, err)
	}
	return segs
}

// seedMetaCluster builds a cluster whose meta journal holds placements,
// removes, and a committed migration — the full record vocabulary the
// replay path has to survive truncation of.
func seedMetaCluster(t *testing.T, dir string) (opt cluster.Options) {
	opt = cluster.Options{Shards: 2, Placement: "round-robin",
		Store: schedrt.StoreOptions{NoSync: true}}
	c := openCluster(t, dir, opt)
	for i := 0; i < 6; i++ {
		if _, err := c.Apply(addEvent(fmt.Sprintf("mt%d", i), 100, 10, 2)); err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
	}
	if _, err := c.Apply(schedrt.Event{Op: "remove", Name: "mt3"}); err != nil {
		t.Fatalf("remove: %v", err)
	}
	from := c.Owners()["mt0"]
	if mv, err := c.MigrateTask("mt0", 1-from); err != nil || !mv.Moved {
		t.Fatalf("migrate: %+v, %v", mv, err)
	}
	// No Checkpoint(): everything stays in the meta journal, nothing in
	// meta.snap, so truncation bites the whole router history.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return opt
}

// auditConvergence opens the (possibly mutilated) cluster and requires the
// adopt/drop reconcile invariant: the owner map and the union of shard
// truths are identical — no task lost, no task double-owned, no ghost
// entries — regardless of how much meta history survived.
func auditConvergence(t testing.TB, dir string, opt cluster.Options, label string) {
	c, err := cluster.Open(dir, opt)
	if err != nil {
		t.Fatalf("%s: reopen: %v", label, err)
	}
	defer c.Close()
	liveOn := make(map[string]int)
	for _, sh := range c.Shards() {
		for _, spec := range sh.Store.Runtime().Tasks() {
			if prev, dup := liveOn[spec.Task.Name]; dup {
				t.Fatalf("%s: task %q live on shards %d and %d", label, spec.Task.Name, prev, sh.ID)
			}
			liveOn[spec.Task.Name] = sh.ID
		}
	}
	owners := c.Owners()
	if len(owners) != len(liveOn) {
		t.Fatalf("%s: owner map has %d entries, shards hold %d tasks\n  owners %v\n  live   %v",
			label, len(owners), len(liveOn), owners, liveOn)
	}
	for name, si := range owners {
		if liveOn[name] != si {
			t.Fatalf("%s: owner map says %q on %d, shard truth says %d", label, name, si, liveOn[name])
		}
	}
}

// TestMetaTruncationEveryByte truncates the meta journal at every byte
// boundary and requires Open to recover (torn-tail truncation) and
// converge: shard truth is authoritative, the router map is rebuilt to
// match it exactly.
func TestMetaTruncationEveryByte(t *testing.T) {
	golden := t.TempDir()
	opt := seedMetaCluster(t, golden)
	segs := metaSegments(t, golden)
	seg := segs[len(segs)-1]
	rel, err := filepath.Rel(golden, seg)
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	size := info.Size()
	if size < 64 {
		t.Fatalf("meta segment only %d bytes — seed is not journaling", size)
	}
	stride := int64(1)
	if size > 2048 {
		stride = size / 2048 // visit ~2k boundaries on chatty segments
	}
	for cut := int64(0); cut <= size; cut += stride {
		dir := t.TempDir()
		copyTree(t, golden, dir)
		if err := os.Truncate(filepath.Join(dir, rel), cut); err != nil {
			t.Fatal(err)
		}
		auditConvergence(t, dir, opt, fmt.Sprintf("cut=%d/%d", cut, size))
	}
}

// FuzzMetaReplay fuzzes the truncation offset (and a flipped tail byte)
// against the same convergence audit.
func FuzzMetaReplay(f *testing.F) {
	golden := f.TempDir()
	var opt cluster.Options
	// Seeding needs *testing.T-shaped helpers; do it inline.
	func() {
		opt = cluster.Options{Shards: 2, Placement: "round-robin",
			Store: schedrt.StoreOptions{NoSync: true}}
		c, err := cluster.Open(golden, opt)
		if err != nil {
			f.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			if _, err := c.Apply(addEvent(fmt.Sprintf("mt%d", i), 100, 10, 2)); err != nil {
				f.Fatalf("seed %d: %v", i, err)
			}
		}
		if _, err := c.Apply(schedrt.Event{Op: "remove", Name: "mt3"}); err != nil {
			f.Fatalf("remove: %v", err)
		}
		from := c.Owners()["mt0"]
		if mv, err := c.MigrateTask("mt0", 1-from); err != nil || !mv.Moved {
			f.Fatalf("migrate: %+v, %v", mv, err)
		}
		if err := c.Close(); err != nil {
			f.Fatal(err)
		}
	}()
	segs := metaSegments(f, golden)
	seg := segs[len(segs)-1]
	rel, err := filepath.Rel(golden, seg)
	if err != nil {
		f.Fatal(err)
	}
	info, err := os.Stat(seg)
	if err != nil {
		f.Fatal(err)
	}
	size := info.Size()
	f.Add(uint64(0), false)
	f.Add(uint64(size/2), true)
	f.Add(uint64(size-1), false)
	f.Fuzz(func(t *testing.T, cut uint64, flip bool) {
		off := int64(cut % uint64(size+1))
		dir := t.TempDir()
		copyTree(t, golden, dir)
		target := filepath.Join(dir, rel)
		if err := os.Truncate(target, off); err != nil {
			t.Fatal(err)
		}
		if flip && off > 0 {
			b, err := os.ReadFile(target)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)-1] ^= 0x40 // corrupt the torn tail's last byte
			if err := os.WriteFile(target, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		auditConvergence(t, dir, opt, fmt.Sprintf("cut=%d flip=%v", off, flip))
	})
}
