package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"nprt/internal/cluster"
	"nprt/internal/journal"
	schedrt "nprt/internal/runtime"
	"nprt/internal/sim"
	"nprt/internal/task"
)

func addEventJSON(t *testing.T, name string, w task.Time) []byte {
	t.Helper()
	ev := schedrt.Event{Op: "add", Task: &schedrt.TaskSpec{Task: task.Task{
		Name: name, Period: 40, WCETAccurate: w, WCETImprecise: w / 4,
		ExecAccurate:  task.Dist{Mean: float64(w) / 2, Sigma: 1, Min: 1, Max: float64(w)},
		ExecImprecise: task.Dist{Mean: float64(w) / 8, Sigma: 0.2, Min: 1, Max: float64(w) / 4},
		Error:         task.Dist{Mean: 2, Sigma: 0.5},
	}}}
	buf, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func post(t *testing.T, url string, body []byte) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(b)
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(b)
}

type entry struct {
	Shard    int              `json:"shard"`
	Decision schedrt.Decision `json:"decision"`
	Error    string           `json:"error,omitempty"`
}

// startServer opens a fresh cluster, attaches a server, and returns both
// with the test HTTP endpoint.
func startServer(t *testing.T, dir string, shards int, sopt cluster.ServeOptions) (*cluster.Server, *cluster.Cluster, *httptest.Server) {
	t.Helper()
	c, err := cluster.Open(dir, cluster.Options{
		Shards:      shards,
		Placement:   "round-robin", // deterministic spread for the assertions below
		Store:       schedrt.StoreOptions{NoSync: true},
		RelaxedMeta: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := cluster.NewServer(sopt)
	s.Attach(c)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
		c.Close()
	})
	return s, c, ts
}

// TestServerRoutesAcrossShards: /admit spreads round-robin placements over
// every shard, duplicates and unknown removes come back 409 without
// touching a shard, and /state aggregates per-shard rows.
func TestServerRoutesAcrossShards(t *testing.T) {
	_, c, ts := startServer(t, t.TempDir(), 3, cluster.ServeOptions{})

	hit := make(map[int]int)
	for i := 0; i < 6; i++ {
		resp, body := post(t, ts.URL+"/admit", addEventJSON(t, fmt.Sprintf("t%d", i), 8))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("admit t%d: %d: %s", i, resp.StatusCode, body)
		}
		var e entry
		if err := json.Unmarshal([]byte(body), &e); err != nil {
			t.Fatal(err)
		}
		if e.Decision.Verdict == schedrt.Rejected {
			t.Fatalf("admit t%d rejected: %s", i, body)
		}
		hit[e.Shard]++
	}
	if len(hit) != 3 || hit[0] != 2 || hit[1] != 2 || hit[2] != 2 {
		t.Errorf("round-robin spread %v, want 2 per shard", hit)
	}

	// Duplicate add: synthesized at the router, 409, no shard named.
	if resp, body := post(t, ts.URL+"/admit", addEventJSON(t, "t0", 8)); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate admit: %d, want 409: %s", resp.StatusCode, body)
	}
	// Unknown remove: same.
	rm, _ := json.Marshal(schedrt.Event{Op: "remove", Name: "nobody"})
	if resp, body := post(t, ts.URL+"/admit", rm); resp.StatusCode != http.StatusConflict {
		t.Errorf("unknown remove: %d, want 409: %s", resp.StatusCode, body)
	}
	// Real remove routes to the owner.
	rm, _ = json.Marshal(schedrt.Event{Op: "remove", Name: "t3"})
	resp, body := post(t, ts.URL+"/admit", rm)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove t3: %d: %s", resp.StatusCode, body)
	}
	var e entry
	json.Unmarshal([]byte(body), &e)
	if e.Shard != 0 {
		t.Errorf("remove t3 served by shard %d, want its round-robin owner 0", e.Shard)
	}

	// Overload broadcasts: shard -1, every store sees it.
	ov, _ := json.Marshal(schedrt.Event{Op: "overload", Overload: &schedrt.OverloadSpec{
		Rates: sim.FaultRates{OverrunProb: 0.2, OverrunFactor: 2}, Epochs: 3,
	}})
	resp, body = post(t, ts.URL+"/admit", ov)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("overload: %d: %s", resp.StatusCode, body)
	}
	json.Unmarshal([]byte(body), &e)
	if e.Shard != -1 {
		t.Errorf("overload shard %d, want -1 (broadcast)", e.Shard)
	}
	for _, sh := range c.Shards() {
		if got := sh.Store.Runtime().Metrics().Overloads; got != 1 {
			t.Errorf("shard %d saw %d overloads, want 1", sh.ID, got)
		}
	}

	resp, body = get(t, ts.URL+"/state")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("state: %d", resp.StatusCode)
	}
	var st cluster.ClusterState
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Ready || st.Shards != 3 || st.Placement != "round-robin" {
		t.Errorf("state header: %+v", st)
	}
	// 6 adds + 1 remove + 1 overload applied; duplicate and ghost rejected.
	if st.Tasks != 5 || st.Admitted != 8 || st.Rejected < 2 {
		t.Errorf("state counters: tasks=%d admitted=%d rejected=%d", st.Tasks, st.Admitted, st.Rejected)
	}
	if len(st.PerShard) != 3 {
		t.Fatalf("state has %d shard rows, want 3", len(st.PerShard))
	}
	for _, row := range st.PerShard {
		if row.Digest == "" || row.QueueCap == 0 {
			t.Errorf("shard row %d incomplete: %+v", row.Shard, row)
		}
	}
}

// TestServerBatchAdmit: one /admit/batch call spanning adds for several
// shards, a duplicate, and an overload comes back fully resolved and
// positionally aligned.
func TestServerBatchAdmit(t *testing.T) {
	_, c, ts := startServer(t, t.TempDir(), 2, cluster.ServeOptions{})

	mk := func(name string) schedrt.Event {
		var ev schedrt.Event
		if err := json.Unmarshal(addEventJSON(t, name, 8), &ev); err != nil {
			t.Fatal(err)
		}
		return ev
	}
	batch := []schedrt.Event{
		mk("b0"), mk("b1"), mk("b2"),
		mk("b0"), // duplicate: synthesized 409-style entry
		{Op: "overload", Overload: &schedrt.OverloadSpec{
			Rates: sim.FaultRates{OverrunProb: 0.1, OverrunFactor: 2}, Epochs: 2,
		}},
		{Op: "remove", Name: "b1"},
	}
	body, _ := json.Marshal(batch)
	resp, out := post(t, ts.URL+"/admit/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d: %s", resp.StatusCode, out)
	}
	var got struct {
		Decisions []entry `json:"decisions"`
	}
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Decisions) != len(batch) {
		t.Fatalf("%d decisions for %d events", len(got.Decisions), len(batch))
	}
	for i := 0; i < 3; i++ {
		if got.Decisions[i].Error != "" || got.Decisions[i].Decision.Verdict == schedrt.Rejected {
			t.Errorf("batch add %d failed: %+v", i, got.Decisions[i])
		}
	}
	if got.Decisions[3].Error == "" {
		t.Errorf("duplicate in batch accepted: %+v", got.Decisions[3])
	}
	if got.Decisions[4].Shard != -1 || got.Decisions[4].Error != "" {
		t.Errorf("overload entry: %+v", got.Decisions[4])
	}
	if got.Decisions[5].Error != "" {
		t.Errorf("remove b1 failed: %+v", got.Decisions[5])
	}
	owners := c.Owners()
	if len(owners) != 2 {
		t.Errorf("owners after batch: %v, want b0 and b2", owners)
	}

	// Oversized batches are refused before any routing.
	big := make([]schedrt.Event, 300)
	for i := range big {
		big[i] = mk(fmt.Sprintf("big%d", i))
	}
	body, _ = json.Marshal(big)
	if resp, out := post(t, ts.URL+"/admit/batch", body); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: %d, want 400: %s", resp.StatusCode, out)
	}
}

// TestServerDrainAndRestart: shutdown refuses new admissions, and a fresh
// cluster+server over the same directory recovers the partition map and
// serves reads of the same state.
func TestServerDrainAndRestart(t *testing.T) {
	dir := t.TempDir()
	c, err := cluster.Open(dir, cluster.Options{
		Shards: 2, Placement: "round-robin",
		Store: schedrt.StoreOptions{NoSync: true}, RelaxedMeta: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := cluster.NewServer(cluster.ServeOptions{})
	s.Attach(c)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 4; i++ {
		if resp, body := post(t, ts.URL+"/admit", addEventJSON(t, fmt.Sprintf("p%d", i), 8)); resp.StatusCode != http.StatusOK {
			t.Fatalf("admit p%d: %d: %s", i, resp.StatusCode, body)
		}
	}
	owners := c.Owners()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if resp, _ := post(t, ts.URL+"/admit", addEventJSON(t, "late", 8)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("admit after shutdown: %d, want 503", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after shutdown: %d, want 503", resp.StatusCode)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := cluster.Open(dir, cluster.Options{
		Shards: 2, Placement: "round-robin",
		Store: schedrt.StoreOptions{NoSync: true}, RelaxedMeta: true,
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer c2.Close()
	if !sameOwners(owners, c2.Owners()) {
		t.Fatalf("recovered owners %v, want %v", c2.Owners(), owners)
	}

	s2 := cluster.NewServer(cluster.ServeOptions{})
	s2.Attach(c2)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Shutdown(context.Background())
	_, body := get(t, ts2.URL+"/state")
	var st cluster.ClusterState
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 4 {
		t.Errorf("restarted /state tasks = %d, want 4", st.Tasks)
	}
}

// TestServerEpochsAndCheckpoints: timed epochs advance every shard and the
// checkpoint cadence snapshots the router meta state.
func TestServerEpochsAndCheckpoints(t *testing.T) {
	s, c, ts := startServer(t, t.TempDir(), 2, cluster.ServeOptions{
		EpochInterval: time.Millisecond, CheckpointEvery: 2,
	})
	if resp, body := post(t, ts.URL+"/admit", addEventJSON(t, "e0", 8)); resp.StatusCode != http.StatusOK {
		t.Fatalf("admit: %d: %s", resp.StatusCode, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().Epoch < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("engines stuck at epoch %d", s.Snapshot().Epoch)
		}
		time.Sleep(time.Millisecond)
	}
	st := s.Snapshot()
	if len(st.PerShard) != 2 {
		t.Fatalf("snapshot rows: %d", len(st.PerShard))
	}
	for _, row := range st.PerShard {
		if row.Epoch < 4 {
			t.Errorf("shard %d stuck at epoch %d", row.Shard, row.Epoch)
		}
	}
	_ = c
}

// TestServerNameReuseConsistency hammers /admit from concurrent clients
// with a small, heavily reused name pool — the workload the tape churn
// suites never produce. Per-shard engines complete out of sequence order
// across shards, so a remove and a re-add of the same name can resolve on
// different shards in either order; the partition map and the feasibility
// mirrors must still end exactly where the shard stores ended. Before
// owner mutations were sequenced, this stranded tasks outside the map and
// leaked mirror entries until admission collapsed.
func TestServerNameReuseConsistency(t *testing.T) {
	s, c, ts := startServer(t, t.TempDir(), 4, cluster.ServeOptions{QueueDepth: 64})

	const workers, iters, names = 8, 150, 12
	addSpec := func(name string, w task.Time) schedrt.Event {
		return schedrt.Event{Op: "add", Task: &schedrt.TaskSpec{Task: task.Task{
			Name: name, Period: 40, WCETAccurate: w, WCETImprecise: w / 4,
			ExecAccurate:  task.Dist{Mean: float64(w) / 2, Sigma: 1, Min: 1, Max: float64(w)},
			ExecImprecise: task.Dist{Mean: float64(w) / 8, Sigma: 0.2, Min: 1, Max: float64(w) / 4},
			Error:         task.Dist{Mean: 2, Sigma: 0.5},
		}}}
	}
	var wg sync.WaitGroup
	client := ts.Client()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Remove-then-re-add pairs in one batch: the re-add routes
				// round-robin to a different shard than the remove, so the two
				// engines resolve the same name concurrently — the widest
				// complete-interleaving window the wire surface can produce.
				var evs []schedrt.Event
				for k := 0; k < 4; k++ {
					name := fmt.Sprintf("r%d", (w+i+k*3)%names)
					evs = append(evs, schedrt.Event{Op: "remove", Name: name},
						addSpec(name, task.Time(8+(i+k)%5)))
				}
				body, _ := json.Marshal(evs)
				resp, err := client.Post(ts.URL+"/admit/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					continue // shutdown races are not the point here
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close() // 409 dup/stale and 503 shed are part of the workload
			}
		}(w)
	}
	wg.Wait()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Shard stores are the truth; the router's map and mirrors are caches.
	owners := c.Owners()
	live := make(map[string]int)
	for i, sh := range c.Shards() {
		specs := sh.Store.Runtime().Tasks()
		for _, sp := range specs {
			if prev, dup := live[sp.Task.Name]; dup {
				t.Errorf("task %s resident on shards %d and %d", sp.Task.Name, prev, i)
			}
			live[sp.Task.Name] = i
		}
		if got, want := sh.Resident(), len(specs); got != want {
			t.Errorf("shard %d mirror holds %d tasks, store holds %d", i, got, want)
		}
	}
	if len(owners) != len(live) {
		t.Errorf("partition map has %d entries, shards hold %d tasks", len(owners), len(live))
	}
	for name, si := range live {
		if oi, ok := owners[name]; !ok {
			t.Errorf("task %s on shard %d missing from partition map", name, si)
		} else if oi != si {
			t.Errorf("partition map says %s is on shard %d, store says %d", name, oi, si)
		}
	}
}

// TestServerReplicationSurface: the serve layer over a replicated cluster.
// /state carries per-shard replica rows, a primary wedge promotes without
// a single 503 (zero-shed), /readyz reports the failover, and once every
// drive of a partition is dead the 503s carry a Retry-After derived from
// that shard's live containment backoff instead of the fixed default.
func TestServerReplicationSurface(t *testing.T) {
	prim, fol := &flakyInjector{}, &flakyInjector{}
	c, err := cluster.Open(t.TempDir(), cluster.Options{
		Shards: 2, Replicas: 1, Placement: "round-robin",
		Store:       schedrt.StoreOptions{NoSync: true},
		RelaxedMeta: true,
		Inject: func(si int) journal.Injector {
			if si == 0 {
				return prim
			}
			return nil
		},
		InjectReplica: func(si, slot int) journal.Injector {
			if si == 0 && slot == 1 {
				return fol
			}
			return nil
		},
		Retry: cluster.RetryOptions{MaxAttempts: 2, Sleep: noSleep},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := cluster.NewServer(cluster.ServeOptions{})
	s.Attach(c)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
		c.Close()
	})

	for i := 0; i < 4; i++ {
		if resp, body := post(t, ts.URL+"/admit", addEventJSON(t, fmt.Sprintf("t%d", i), 8)); resp.StatusCode != http.StatusOK {
			t.Fatalf("admit t%d: %d: %s", i, resp.StatusCode, body)
		}
	}
	var st cluster.ClusterState
	if _, body := get(t, ts.URL+"/state"); json.Unmarshal([]byte(body), &st) != nil || len(st.PerShard) != 2 {
		t.Fatalf("state: %s", body)
	}
	for _, row := range st.PerShard {
		if row.PrimarySlot != 0 || len(row.Replicas) != 1 ||
			row.Replicas[0].Slot != 1 || !row.Replicas[0].InSync {
			t.Fatalf("shard %d replica row before failover: %+v", row.Shard, row)
		}
	}

	// Kill the shard-0 primary drive: admissions keep succeeding through
	// the promoted follower — the zero-shed path.
	prim.wedged = true
	for i := 0; i < 4; i++ {
		if resp, body := post(t, ts.URL+"/admit", addEventJSON(t, fmt.Sprintf("w%d", i), 8)); resp.StatusCode != http.StatusOK {
			t.Fatalf("admit w%d across failover: %d: %s", i, resp.StatusCode, body)
		}
	}
	if slot := c.PrimarySlot(0); slot != 1 {
		t.Fatalf("shard 0 primary slot after wedge: %d, want 1", slot)
	}
	resp, body := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after failover: %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains([]byte(body), []byte("promotions=1")) {
		t.Fatalf("readyz does not report the failover: %s", body)
	}
	if _, body := get(t, ts.URL+"/state"); json.Unmarshal([]byte(body), &st) != nil ||
		st.PerShard[0].PrimarySlot != 1 {
		t.Fatalf("state after failover: %s", body)
	}

	// Now kill the promoted drive too: with no in-sync follower left the
	// shard fails for real, and the 503 carries the shard's own backoff.
	fol.wedged = true
	saw503 := false
	for i := 0; i < 6 && !saw503; i++ {
		resp, body := post(t, ts.URL+"/admit", addEventJSON(t, fmt.Sprintf("x%d", i), 8))
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusServiceUnavailable:
			saw503 = true
			if resp.Header.Get("Retry-After") == "" || resp.Header.Get("Retry-After-Ms") == "" {
				t.Fatalf("shed without backoff hint: %v: %s", resp.Header, body)
			}
			if !bytes.Contains([]byte(body), []byte("retry_after_ms")) {
				t.Fatalf("shed body lacks retry_after_ms: %s", body)
			}
		default:
			t.Fatalf("admit x%d with both drives dead: %d: %s", i, resp.StatusCode, body)
		}
	}
	if !saw503 {
		t.Fatal("shard with every drive dead never shed")
	}
	// Route-time sheds (remove of a task owned by the fenced shard) carry
	// the same shard-derived hint.
	name := ""
	for n, si := range c.Owners() {
		if si == 0 {
			name = n
			break
		}
	}
	if name == "" {
		t.Fatal("no task owned by shard 0")
	}
	rm, _ := json.Marshal(schedrt.Event{Op: "remove", Name: name})
	resp, body = post(t, ts.URL+"/admit", rm)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After-Ms") == "" {
		t.Fatalf("route-time shed: %d %v: %s", resp.StatusCode, resp.Header, body)
	}
}
