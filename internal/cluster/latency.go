package cluster

import (
	"math/bits"
	"sync"
	"time"
)

// LatencyTracker aggregates per-op WAL sojourn samples into a sliding
// window of per-epoch buckets and answers quantile queries over the
// window. Samples land in log2 histogram buckets (same shape as loadgen's
// hist), so Record is O(1) and the tracker never allocates after
// construction. The window advances on epoch boundaries: Advance(e)
// retires the bucket that falls out of the window and folds its counts out
// of the running aggregate. Evaluate quantiles BEFORE advancing past the
// epoch whose samples you want included.
//
// Safe for concurrent use: Record fires from the journal Observe hook on
// whatever goroutine drives the shard's WAL, while Advance/Quantile run
// under the cluster lock.
type LatencyTracker struct {
	mu     sync.Mutex
	window int // buckets retained (epochs), >= 1
	epoch  int64
	ring   []latBucket
	head   int // ring slot holding the current epoch
	agg    [64]uint64
	n      uint64
}

type latBucket struct {
	epoch int64
	hist  [64]uint64
	n     uint64
	used  bool
}

// NewLatencyTracker builds a tracker retaining `window` epochs of samples
// (minimum 1; window 1 means "the current epoch only" — per-tick p99).
func NewLatencyTracker(window int) *LatencyTracker {
	if window < 1 {
		window = 1
	}
	return &LatencyTracker{window: window, ring: make([]latBucket, window)}
}

// latBucketIdx maps a duration to its log2 bucket.
func latBucketIdx(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	i := bits.Len64(uint64(d)) - 1
	if i > 63 {
		i = 63
	}
	return i
}

// latBucketValue is the conservative (upper-bound) duration for bucket i.
func latBucketValue(i int) time.Duration {
	if i >= 63 {
		return time.Duration(1) << 62
	}
	return time.Duration(1) << uint(i+1)
}

// Record adds one sample to the current epoch's bucket.
func (t *LatencyTracker) Record(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.ring[t.head]
	if !b.used {
		b.used = true
		b.epoch = t.epoch
	}
	i := latBucketIdx(d)
	b.hist[i]++
	b.n++
	t.agg[i]++
	t.n++
}

// Advance moves the tracker to epoch e, retiring buckets that fall out of
// the window. A no-op when e is not past the current epoch. A jump of
// `window` or more epochs clears everything.
func (t *LatencyTracker) Advance(e int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e <= t.epoch {
		return
	}
	steps := e - t.epoch
	if steps >= int64(t.window) {
		for i := range t.ring {
			t.ring[i] = latBucket{}
		}
		t.agg = [64]uint64{}
		t.n = 0
		t.epoch = e
		t.head = 0
		return
	}
	for s := int64(0); s < steps; s++ {
		t.head = (t.head + 1) % t.window
		b := &t.ring[t.head]
		if b.used {
			for i, c := range b.hist {
				t.agg[i] -= c
			}
			t.n -= b.n
			*b = latBucket{}
		}
	}
	t.epoch = e
}

// Quantile returns the q-quantile (0 < q <= 1) over the window, as the
// upper bound of the bucket holding that rank. Zero when no samples.
func (t *LatencyTracker) Quantile(q float64) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n == 0 {
		return 0
	}
	rank := uint64(q * float64(t.n))
	if rank >= t.n {
		rank = t.n - 1
	}
	var seen uint64
	for i, c := range t.agg {
		seen += c
		if seen > rank {
			return latBucketValue(i)
		}
	}
	return latBucketValue(63)
}

// Count returns the number of samples currently in the window.
func (t *LatencyTracker) Count() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Reset drops all samples but keeps the epoch position — used after a
// promotion replaces the device the samples described.
func (t *LatencyTracker) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.ring {
		t.ring[i] = latBucket{}
	}
	t.agg = [64]uint64{}
	t.n = 0
	t.head = 0
}
