package cluster_test

import (
	"fmt"
	"testing"

	"nprt/internal/cluster"
	schedrt "nprt/internal/runtime"
	"nprt/internal/sim"
)

// TestMigrateTaskMovesOwnership: a live handoff re-admits the task on the
// target through the screen, flips the owner map, removes the source copy,
// and all of it survives a close/reopen.
func TestMigrateTaskMovesOwnership(t *testing.T) {
	dir := t.TempDir()
	opt := cluster.Options{Shards: 2, Placement: "first-fit",
		Store: schedrt.StoreOptions{NoSync: true}}
	c := openCluster(t, dir, opt)
	for i := 0; i < 3; i++ {
		if _, err := c.Apply(addEvent(fmt.Sprintf("m%d", i), 100, 10, 2)); err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
	}
	// first-fit packs everything onto shard 0.
	if si := c.Owners()["m1"]; si != 0 {
		t.Fatalf("first-fit placed m1 on shard %d, want 0", si)
	}

	mv, err := c.MigrateTask("m1", 1)
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if !mv.Moved || mv.Evicted || mv.From != 0 || mv.To != 1 {
		t.Fatalf("unexpected move: %+v", mv)
	}
	if si := c.Owners()["m1"]; si != 1 {
		t.Fatalf("owner map after migrate: m1 on %d, want 1", si)
	}
	live := func(c *cluster.Cluster, si int, name string) bool {
		for _, spec := range c.Shards()[si].Store.Runtime().Tasks() {
			if spec.Task.Name == name {
				return true
			}
		}
		return false
	}
	if live(c, 0, "m1") || !live(c, 1, "m1") {
		t.Fatalf("shard truth after migrate: src=%v dst=%v", live(c, 0, "m1"), live(c, 1, "m1"))
	}
	// Migrating to the current owner is a no-op, not an error.
	if mv, err := c.MigrateTask("m1", 1); err != nil || !mv.Moved {
		t.Fatalf("self-migrate: %+v, %v", mv, err)
	}
	if _, err := c.MigrateTask("ghost", 1); err == nil {
		t.Fatal("migrating an unknown task succeeded")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := openCluster(t, dir, opt)
	if si := c2.Owners()["m1"]; si != 1 {
		t.Fatalf("owner map after reopen: m1 on %d, want 1", si)
	}
	if live(c2, 0, "m1") || !live(c2, 1, "m1") {
		t.Fatal("shard truth did not survive reopen")
	}
	// The moved task still schedules: run a few epochs on both engines' state.
	if _, err := c2.RunEpoch(false); err != nil {
		t.Fatalf("epoch after migrate: %v", err)
	}
}

// TestRebalanceHysteresis: first-fit piles all load on shard 0; Rebalance
// spreads it until skew drops under the low-water mark, and a second call
// (inside the hysteresis band) makes zero moves.
func TestRebalanceHysteresis(t *testing.T) {
	c := openCluster(t, t.TempDir(), cluster.Options{Shards: 2, Placement: "first-fit",
		Store: schedrt.StoreOptions{NoSync: true}})
	// Eight tasks at 10% accurate utilization each, all first-fit onto shard 0.
	for i := 0; i < 8; i++ {
		if _, err := c.Apply(addEvent(fmt.Sprintf("r%d", i), 100, 10, 2)); err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
	}
	skew := func() float64 {
		shs := c.Shards()
		u0, u1 := shs[0].Util(0), shs[1].Util(0)
		if u0 > u1 {
			return u0 - u1
		}
		return u1 - u0
	}
	before := skew()
	moves, err := c.Rebalance(cluster.RebalanceOptions{})
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if len(moves) == 0 {
		t.Fatalf("rebalance made no moves at skew %.2f", before)
	}
	after := skew()
	if after >= before {
		t.Fatalf("rebalance did not reduce skew: %.2f -> %.2f", before, after)
	}
	for _, mv := range moves {
		if !mv.Moved || mv.Evicted {
			t.Fatalf("rebalance move was not a clean handoff: %+v", mv)
		}
		if si := c.Owners()[mv.Name]; si != mv.To {
			t.Fatalf("owner map disagrees with move %+v (owner %d)", mv, si)
		}
	}
	// Inside the hysteresis band: no churn.
	again, err := c.Rebalance(cluster.RebalanceOptions{})
	if err != nil {
		t.Fatalf("second rebalance: %v", err)
	}
	if len(again) != 0 {
		t.Fatalf("rebalance churned inside the hysteresis band: %+v", again)
	}
	// Nothing lost: every task still owned exactly once.
	if n := len(c.Owners()); n != 8 {
		t.Fatalf("owner map holds %d tasks after rebalance, want 8", n)
	}
}

// TestMigrationCrashSweep kills the cluster (panic out of the fsync hook)
// at EVERY fsync boundary inside an in-flight migration and requires
// recovery to converge to exactly one owner — never zero (lost), never two
// (duplicated) — on both scheduler engines. Digest equality cannot be the
// criterion here: recovery legitimately aborts a migration whose commit
// record never became durable, so the final owner may be source OR target.
// Exactly-once ownership is the invariant the meta-journal protocol owes.
func TestMigrationCrashSweep(t *testing.T) {
	for _, eng := range []sim.EngineKind{sim.EngineIndexed, sim.EngineLinearScan} {
		eng := eng
		t.Run(fmt.Sprintf("engine=%d", eng), func(t *testing.T) {
			opt := cluster.Options{Shards: 2, Placement: "first-fit", Store: schedrt.StoreOptions{}}
			opt.Store.Runtime.Engine = eng

			// seed opens a strict-sync cluster with three tasks on shard 0.
			// The fsync hook is armed only around the migration itself, so
			// every counted boundary is part of the handoff protocol.
			seed := func(t *testing.T, dir string, hook func()) *cluster.Cluster {
				armed := false
				o := opt
				o.Store.AfterSync = func() {
					if armed {
						hook()
					}
				}
				c := openCluster(t, dir, o)
				for i := 0; i < 3; i++ {
					if _, err := c.Apply(addEvent(fmt.Sprintf("c%d", i), 100, 10, 2)); err != nil {
						t.Fatalf("seed %d: %v", i, err)
					}
				}
				armed = true
				return c
			}

			// Count the fsync boundaries of one uncrashed migration.
			total := 0
			{
				c := seed(t, t.TempDir(), func() { total++ })
				if mv, err := c.MigrateTask("c1", 1); err != nil || !mv.Moved {
					t.Fatalf("uncrashed migration: %+v, %v", mv, err)
				}
				c.Close()
			}
			if total < 3 {
				t.Fatalf("only %d fsync boundaries in a migration — protocol not exercising the journals", total)
			}

			for point := 1; point <= total; point++ {
				dir := t.TempDir()
				n := 0
				func() {
					defer func() {
						r := recover()
						if r == nil {
							t.Fatalf("kill point %d/%d never reached", point, total)
						}
						if _, ok := r.(crashNow); !ok {
							panic(r)
						}
					}()
					c := seed(t, dir, func() {
						n++
						if n == point {
							panic(crashNow{point})
						}
					})
					// No Close: a crash leaks the fds, exactly like a real kill.
					_, _ = c.MigrateTask("c1", 1)
					t.Fatalf("migration with kill point %d finished without crashing", point)
				}()

				// Recover and audit ownership.
				c, err := cluster.Open(dir, opt)
				if err != nil {
					t.Fatalf("kill point %d: reopen: %v", point, err)
				}
				holders := 0
				holder := -1
				for _, sh := range c.Shards() {
					for _, spec := range sh.Store.Runtime().Tasks() {
						if spec.Task.Name == "c1" {
							holders++
							holder = sh.ID
						}
					}
				}
				if holders != 1 {
					t.Fatalf("kill point %d: task live on %d shards, want exactly 1", point, holders)
				}
				if si, ok := c.Owners()["c1"]; !ok || si != holder {
					t.Fatalf("kill point %d: owner map says %d/%v, shard truth says %d", point, si, ok, holder)
				}
				// The untouched tasks must be unharmed.
				for _, name := range []string{"c0", "c2"} {
					if si, ok := c.Owners()[name]; !ok || si != 0 {
						t.Fatalf("kill point %d: bystander %s owner %d/%v", point, name, si, ok)
					}
				}
				c.Close()
			}
		})
	}
}
