package cluster_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"nprt/internal/cluster"
	"nprt/internal/journal"
	schedrt "nprt/internal/runtime"
	"nprt/internal/task"
)

// flakyInjector is a controllable journal.Injector for containment tests:
// it can fail the next N syncs, or wedge entirely.
type flakyInjector struct {
	failSyncs int
	wedged    bool
}

func (f *flakyInjector) Write(n int) (int, error) {
	if f.wedged {
		return 0, journal.ErrInjectedWedge
	}
	return n, nil
}

func (f *flakyInjector) Sync() error {
	if f.wedged {
		return journal.ErrInjectedWedge
	}
	if f.failSyncs > 0 {
		f.failSyncs--
		return journal.ErrInjectedSync
	}
	return nil
}

// specTask builds a valid small task for admission tests.
func specTask(name string, period, wA, wI task.Time) *schedrt.TaskSpec {
	return &schedrt.TaskSpec{Task: task.Task{
		Name: name, Period: period, WCETAccurate: wA, WCETImprecise: wI,
		ExecAccurate:  task.Dist{Mean: float64(wA) / 2, Sigma: float64(wA) / 8, Min: 1, Max: float64(wA)},
		ExecImprecise: task.Dist{Mean: float64(wI) / 2, Sigma: float64(wI) / 8, Min: 1, Max: float64(wI)},
		Error:         task.Dist{Mean: 1, Sigma: 0.2},
	}}
}

func addEvent(name string, period, wA, wI task.Time) schedrt.Event {
	return schedrt.Event{Op: "add", Task: specTask(name, period, wA, wI)}
}

// noSleep makes retry backoff free for tests.
var noSleep = func(time.Duration) {}

// TestShardRetryHealsTransientFault: a sync failure poisons the shard's
// journal; the containment loop must reopen-recover and retry so the
// caller sees success, the shard ends Healthy, and the final state is
// bit-identical to an unfaulted run.
func TestShardRetryHealsTransientFault(t *testing.T) {
	run := func(inject func(int) journal.Injector) ([]uint64, map[string]int, cluster.ShardHealth) {
		c := openCluster(t, t.TempDir(), cluster.Options{
			Shards: 2,
			Store:  schedrt.StoreOptions{NoSync: true},
			Inject: inject,
			Retry:  cluster.RetryOptions{Sleep: noSleep},
		})
		for i := 0; i < 6; i++ {
			res, err := c.Apply(addEvent(fmt.Sprintf("t%d", i), 100, 10, 2))
			if err != nil {
				t.Fatalf("apply %d: %v", i, err)
			}
			if res.Decision.Verdict == schedrt.Rejected {
				t.Fatalf("apply %d: unexpectedly rejected", i)
			}
		}
		return c.Digests(), c.Owners(), c.Health(0)
	}

	cleanD, cleanO, _ := run(nil)

	// An attached but quiescent injector must not change behavior.
	faultyD, faultyO, h := run(func(si int) journal.Injector {
		if si != 0 {
			return nil
		}
		return &flakyInjector{}
	})
	// Re-run with a mid-stream fault: fail one sync after a few admissions.
	inj2 := &flakyInjector{}
	c := openCluster(t, t.TempDir(), cluster.Options{
		Shards: 2,
		Store:  schedrt.StoreOptions{NoSync: true},
		Inject: func(si int) journal.Injector {
			if si == 0 {
				return inj2
			}
			return nil
		},
		Retry: cluster.RetryOptions{Sleep: noSleep},
	})
	for i := 0; i < 6; i++ {
		if i == 3 {
			inj2.failSyncs = 1 // next shard-0 sync fails once, then heals
		}
		if _, err := c.Apply(addEvent(fmt.Sprintf("t%d", i), 100, 10, 2)); err != nil {
			t.Fatalf("apply %d under fault: %v", i, err)
		}
	}
	if !sameDigests(cleanD, faultyD) || !sameOwners(cleanO, faultyO) {
		t.Fatalf("no-fault injected run diverged from clean run")
	}
	if h.State != cluster.Healthy {
		t.Fatalf("shard 0 health after clean injected run: %+v", h)
	}
	h0 := c.Health(0)
	if h0.State != cluster.Healthy {
		t.Fatalf("shard 0 did not heal after transient fault: %+v", h0)
	}
	if h0.Reopens == 0 || h0.TotalErrs == 0 {
		t.Fatalf("transient fault left no containment trace: %+v", h0)
	}
	if !sameDigests(c.Digests(), cleanD) || !sameOwners(c.Owners(), cleanO) {
		t.Fatalf("faulted run diverged from clean run:\n  faulted %x %v\n  clean   %x %v",
			c.Digests(), c.Owners(), cleanD, cleanO)
	}
	// The mirror must agree with shard truth after the reopen.
	for _, sh := range c.Shards() {
		if sh.Resident() != len(sh.Store.Runtime().Tasks()) {
			t.Fatalf("shard %d mirror out of sync after retry", sh.ID)
		}
	}
}

// TestShardFailureContainment: a wedged shard exhausts the retry budget
// and transitions to Failed — its events shed with ErrShardFailed while
// the other shard keeps serving — and evacuation drains it back to
// Healthy with every task re-admitted elsewhere.
func TestShardFailureContainment(t *testing.T) {
	inj := &flakyInjector{}
	c := openCluster(t, t.TempDir(), cluster.Options{
		Shards:    2,
		Placement: "round-robin",
		Store:     schedrt.StoreOptions{NoSync: true},
		Inject: func(si int) journal.Injector {
			if si == 0 {
				return inj
			}
			return nil
		},
		Retry: cluster.RetryOptions{MaxAttempts: 3, Sleep: noSleep},
	})

	// Seed both shards.
	for i := 0; i < 4; i++ {
		if _, err := c.Apply(addEvent(fmt.Sprintf("seed%d", i), 100, 10, 2)); err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
	}
	owners := c.Owners()
	var onZero []string
	for name, si := range owners {
		if si == 0 {
			onZero = append(onZero, name)
		}
	}
	if len(onZero) == 0 {
		t.Fatal("round-robin left shard 0 empty — test cannot proceed")
	}

	// Wedge shard 0's device permanently: the next event routed there must
	// burn the budget and fail the shard.
	inj.wedged = true
	sawFail := false
	for i := 0; i < 4 && !sawFail; i++ {
		_, err := c.Apply(addEvent(fmt.Sprintf("w%d", i), 100, 10, 2))
		if errors.Is(err, cluster.ErrShardFailed) {
			sawFail = true
		} else if err != nil {
			t.Fatalf("wedged apply %d: unexpected error %v", i, err)
		}
	}
	if !sawFail {
		t.Fatal("wedged shard never exhausted its retry budget")
	}
	if h := c.Health(0); h.State != cluster.Failed {
		t.Fatalf("shard 0 health after budget exhaustion: %+v", h)
	}

	// Containment: placements now avoid shard 0 entirely...
	for i := 0; i < 4; i++ {
		res, err := c.Apply(addEvent(fmt.Sprintf("post%d", i), 100, 10, 2))
		if err != nil {
			t.Fatalf("post-failure apply %d: %v", i, err)
		}
		if res.Shard == 0 {
			t.Fatalf("post-failure apply %d routed to the failed shard", i)
		}
	}
	// ...and removes of shard-0 tasks shed with ErrShardFailed, retaining
	// the task for evacuation rather than silently dropping it.
	if _, err := c.Apply(schedrt.Event{Op: "remove", Name: onZero[0]}); !errors.Is(err, cluster.ErrShardFailed) {
		t.Fatalf("remove on failed shard: got %v, want ErrShardFailed", err)
	}
	if _, still := c.Owners()[onZero[0]]; !still {
		t.Fatal("shed remove dropped the owner entry — task would be lost")
	}

	// Heal the device and evacuate: every shard-0 task must be migrated to
	// shard 1 (re-screened) or explicitly evicted, and the shard re-images
	// back to Healthy.
	inj.wedged = false
	rep, err := c.EvacuateShard(0)
	if err != nil {
		t.Fatalf("evacuate: %v", err)
	}
	if rep.Migrated+rep.Evicted != len(onZero) {
		t.Fatalf("evacuation accounted for %d+%d tasks, shard held %d",
			rep.Migrated, rep.Evicted, len(onZero))
	}
	if h := c.Health(0); h.State != cluster.Healthy || h.Reimages != 1 {
		t.Fatalf("shard 0 after evacuation: %+v", h)
	}
	evicted := make(map[string]bool)
	for _, mv := range rep.Moves {
		if mv.Evicted {
			evicted[mv.Name] = true
		}
	}
	final := c.Owners()
	for _, name := range onZero {
		if evicted[name] {
			if _, ok := final[name]; ok {
				t.Fatalf("evicted task %q still owned", name)
			}
			continue
		}
		if si, ok := final[name]; !ok || si != 1 {
			t.Fatalf("task %q not re-homed to shard 1 (owner %v, ok %v)", name, si, ok)
		}
	}
	// The failed shard is empty and serving again.
	if n := len(c.Shards()[0].Store.Runtime().Tasks()); n != 0 {
		t.Fatalf("re-imaged shard still holds %d tasks", n)
	}
	if _, err := c.Apply(addEvent("fresh", 100, 10, 2)); err != nil {
		t.Fatalf("apply after re-image: %v", err)
	}
}
