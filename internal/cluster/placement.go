package cluster

import (
	"fmt"

	"nprt/internal/task"
)

// A Policy picks the shard that receives a new task. Policies are pure,
// deterministic functions of the candidate, the per-shard feasibility
// mirrors, and the router's placement cursor — the property the placement
// determinism test pins down: the same tape through the same policy always
// produces the same partition map.
//
// The policy only *suggests*; every shard re-screens the candidate against
// Theorem 1 itself before admitting. A policy may therefore return a shard
// the task does not fit (the shard records a deterministic rejection), but
// it must always return a valid index.
type Policy interface {
	// Name is the stable identifier used by -placement flags and /state.
	Name() string
	// Place returns the shard index for candidate c. rr is the number of
	// successful placements so far (the round-robin cursor).
	Place(c *task.Task, shards []*Shard, rr uint64) int
}

// PolicyNames lists the built-in policies in flag-help order.
func PolicyNames() []string {
	return []string{"round-robin", "least-util", "affinity", "first-fit", "best-fit"}
}

// ParsePolicy maps a policy name to its implementation. The empty string
// selects first-fit, the default: it is the cheapest policy that still
// consults the Jeffay bound before spending a placement.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "", "first-fit":
		return firstFit{}, nil
	case "round-robin":
		return roundRobin{}, nil
	case "least-util":
		return leastUtil{}, nil
	case "affinity":
		return affinity{}, nil
	case "best-fit":
		return bestFit{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown placement policy %q (have %v)", name, PolicyNames())
}

// roundRobin sprays tasks across shards in placement order, blind to load.
// It is the baseline the feasibility-aware policies are measured against.
type roundRobin struct{}

func (roundRobin) Name() string { return "round-robin" }
func (roundRobin) Place(_ *task.Task, shards []*Shard, rr uint64) int {
	return int(rr % uint64(len(shards)))
}

// leastUtil places on the shard with the lowest accurate-mode utilization
// (worst-fit by residual capacity), ties broken by lowest index. It
// balances load without probing the Jeffay bound.
type leastUtil struct{}

func (leastUtil) Name() string { return "least-util" }
func (leastUtil) Place(_ *task.Task, shards []*Shard, _ uint64) int {
	return argLeastUtil(shards)
}

func argLeastUtil(shards []*Shard) int {
	best, bestU := 0, shards[0].Util(task.Accurate)
	for i := 1; i < len(shards); i++ {
		if u := shards[i].Util(task.Accurate); u < bestU {
			best, bestU = i, u
		}
	}
	return best
}

// affinity hashes the task name (FNV-1a) onto a shard, so re-adds of the
// same name always land on the same shard regardless of interleaving —
// the policy for workloads where a name is a session key.
type affinity struct{}

func (affinity) Name() string { return "affinity" }
func (affinity) Place(c *task.Task, shards []*Shard, _ uint64) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(c.Name); i++ {
		h ^= uint32(c.Name[i])
		h *= prime32
	}
	return int(h % uint32(len(shards)))
}

// firstFit probes shards in index order against the incremental Jeffay
// bound and takes the first that fits. Two tiers: a shard where the
// candidate passes with every job accurate beats any shard where only the
// deepest-imprecise profile passes (a degraded admission). When no shard
// fits either way, it falls back to the least-utilized shard, which
// records the rejection deterministically.
type firstFit struct{}

func (firstFit) Name() string { return "first-fit" }
func (firstFit) Place(c *task.Task, shards []*Shard, _ uint64) int {
	firstDeep := -1
	for i, sh := range shards {
		acc, deep := sh.Probe(c)
		if acc {
			return i
		}
		if deep && firstDeep < 0 {
			firstDeep = i
		}
	}
	if firstDeep >= 0 {
		return firstDeep
	}
	return argLeastUtil(shards)
}

// bestFit probes every shard and takes the *tightest* fit: among shards
// where the candidate passes accurate, the one with the highest accurate
// utilization (ties lowest index); failing that, the same rule over
// deepest-profile fits; failing that, the least-util fallback. Packing
// tight leaves whole shards empty for future large tasks — the classical
// bin-packing argument.
type bestFit struct{}

func (bestFit) Name() string { return "best-fit" }
func (bestFit) Place(c *task.Task, shards []*Shard, _ uint64) int {
	bestAcc, bestDeep := -1, -1
	var uAcc, uDeep float64
	for i, sh := range shards {
		acc, deep := sh.Probe(c)
		u := sh.Util(task.Accurate)
		if acc && (bestAcc < 0 || u > uAcc) {
			bestAcc, uAcc = i, u
		}
		if deep && (bestDeep < 0 || u > uDeep) {
			bestDeep, uDeep = i, u
		}
	}
	if bestAcc >= 0 {
		return bestAcc
	}
	if bestDeep >= 0 {
		return bestDeep
	}
	return argLeastUtil(shards)
}
