// Package cluster partitions the scheduler across N durable shard runtimes
// behind a placement-aware router. Each shard is a full runtime.Store — its
// own WAL, checkpoints, guarded EDF+ESR engine — so the cluster's admission
// capacity and journal bandwidth scale with the shard count while every
// per-shard guarantee (zero clean misses, crash-only recovery, digest
// determinism) is inherited unchanged.
//
// The router owns three pieces of state the shards cannot see:
//
//   - the partition map (task name → shard), which makes removes routable
//     and add names cluster-unique;
//   - a per-shard incremental Theorem-1 mirror (feasibility.Incremental)
//     that placement policies probe without touching the shards; and
//   - the cluster sequence counter, stamped into every routed event
//     (Event.Seq) before it reaches a shard WAL.
//
// Durability of the router state is write-behind: placements are journaled
// to a meta log *after* the shard admission they describe is durable, so a
// crash between the two leaves a task that is live on a shard but missing
// from the map — recovery reconciles by adopting it (the shard state is
// authoritative; the map is an index, never the truth). The sequence
// counter needs no log of its own: each shard persists the maximum Seq it
// has journaled (Store.MaxSeq), and because the serial router makes event
// n durable before stamping n+1, max over shards of MaxSeq is exactly the
// durable prefix of the event sequence — the cluster's tape cursor.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"nprt/internal/feasibility"
	"nprt/internal/journal"
	"nprt/internal/runtime"
	"nprt/internal/task"
)

// Shard is one partition: a durable store plus the router's incremental
// feasibility mirror of its admitted set. The mirror is rebuilt from the
// store on open and maintained by the router on every admission result, so
// placement probes never touch the shard itself.
type Shard struct {
	ID    int
	Store *runtime.Store
	inc   *feasibility.Incremental

	// closed marks the Store's writer as closed (reopen in progress or
	// permanently failed); guards against double-close in the retry loop.
	closed bool
}

// Probe asks the incremental Jeffay screen whether c fits this shard, in
// the accurate and deepest-imprecise profiles (verdict-identical to a full
// feasibility.Profiles over the shard set plus c).
func (s *Shard) Probe(c *task.Task) (accurateOK, deepestOK bool) { return s.inc.Probe(c) }

// Util returns the mirror's utilization in mode m.
func (s *Shard) Util(m task.Mode) float64 { return s.inc.Utilization(m) }

// Resident returns the mirror's task count.
func (s *Shard) Resident() int { return s.inc.Len() }

// Options parameterizes Open.
type Options struct {
	// Shards is the partition count (default 1). Reopening a directory with
	// fewer shards than it holds is refused — tasks would be stranded.
	Shards int
	// Placement names the policy (see ParsePolicy; default first-fit).
	Placement string
	// Store is the per-shard store template. Runtime.Seed is decorrelated
	// per shard; NoSync/AfterSync/commit options apply to every shard and
	// to the meta journal.
	Store runtime.StoreOptions
	// RelaxedMeta skips the per-record fsync on the meta journal (the
	// serving path: a lost meta suffix only costs adoptions on recovery).
	// Tape and sweep drivers leave it false. Migration-protocol records
	// are always fsynced regardless — their ordering carries the
	// exactly-once handoff argument.
	RelaxedMeta bool
	// Inject, when non-nil, supplies a per-shard storage-fault injector
	// for the shard WALs (deterministic chaos testing). The meta journal
	// is never injected: router durability is a separate failure domain,
	// and reconciliation already covers its loss.
	Inject func(shard int) journal.Injector
	// Replicas is the synchronous follower count per shard (default 0:
	// replication off). Each shard keeps Replicas byte-identical copies
	// of its store directory, shipped after every acknowledged op; when
	// the primary exhausts its retry budget the health machine promotes a
	// follower instead of failing the shard (see replica.go). Reopening a
	// directory with fewer replicas than it holds is refused.
	Replicas int
	// InjectReplica, when non-nil, supplies the follower-drive injector
	// for (shard, slot), slot ≥ 1 — slot 0 is the primary drive (Inject).
	// The injector follows the DRIVE (the slot directory), not the role:
	// after a promotion the store opened from slot k keeps slot k's
	// injector.
	InjectReplica func(shard, slot int) journal.Injector
	// Retry bounds the per-shard transient-failure containment loop.
	Retry RetryOptions

	// LatencySLO, when > 0, arms the gray-failure health machine: each
	// shard's WAL write/fsync sojourns feed a windowed p99 tracker, and a
	// shard whose p99 breaches the SLO transitions to Slow — fenced from
	// placement, and (when replicas exist) proactively failed over via the
	// promotion path.
	LatencySLO time.Duration
	// LatencyWindow is the tracker's sliding window in epochs (default 4;
	// 1 means "current epoch only" — the deterministic-soak setting).
	LatencyWindow int
	// LatencyMinSamples gates the SLO evaluation: fewer samples in the
	// window than this and the check abstains (default 2).
	LatencyMinSamples int
	// AdmitDeadline, when > 0 with LatencySLO armed, sheds events routed
	// to a Slow shard with ErrShardSlow when no fast candidate exists —
	// the cluster-level deadline propagation for drivers that bypass the
	// serve layer.
	AdmitDeadline time.Duration
	// Clock, when non-nil, supplies the per-shard journal clock
	// (runtime.StoreOptions.Clock) so deterministic soaks share one
	// virtual clock between a shard's injectors and its WAL writer.
	Clock func(shard int) journal.Clock
}

// Recovery reports what Open rebuilt.
type Recovery struct {
	// Shards holds each store's own recovery report, by shard index.
	Shards []runtime.RecoveryInfo `json:"shards"`
	// ReplayedPlacements counts place records applied from the meta log.
	ReplayedPlacements int `json:"replayed_placements"`
	// Adopted counts tasks found live on a shard but absent from the
	// replayed map (the write-behind crash window); Dropped counts map
	// entries whose task was not live on its shard (a lost unplace).
	Adopted int `json:"adopted"`
	Dropped int `json:"dropped"`
	// Cursor is the durable event-sequence prefix (tape resume point).
	Cursor uint64 `json:"cursor"`
	// MigrationsCompleted / MigrationsAborted count in-flight migration
	// handoffs recovery rolled forward (task live on target) or back.
	MigrationsCompleted int `json:"migrations_completed,omitempty"`
	MigrationsAborted   int `json:"migrations_aborted,omitempty"`
	// ResetsReplayed counts evacuation re-images recovery re-executed.
	ResetsReplayed int `json:"resets_replayed,omitempty"`
}

// Result is the router's answer to one event: the shard that served it
// (-1 when the event was broadcast, or synthesized at the router without
// touching any shard) and that shard's decision.
type Result struct {
	Shard    int              `json:"shard"`
	Decision runtime.Decision `json:"decision"`
}

// Cluster is the partition-aware router. Apply/ApplyBatch/RunEpoch are safe
// for concurrent callers (one internal mutex guards router state; shard
// stores are only ever driven from one goroutine at a time by construction
// of the apply paths).
type Cluster struct {
	dir    string
	opt    Options
	policy Policy
	shards []*Shard

	mu      sync.Mutex
	meta    *journal.Writer
	seq     uint64         // last stamped event sequence number
	rr      uint64         // successful placements (round-robin cursor)
	owner   map[string]int // partition map: task name → shard
	pending map[string]int // routed-but-unresolved adds (concurrent path)
	// ownerSeq is the sequence number of the event that last resolved each
	// name's owner entry. Completes from different shards interleave in
	// arbitrary order, so every owner mutation is last-writer-wins by
	// sequence — a stale add's complete must not clobber the placement a
	// later re-add (of the same, reused name) already confirmed elsewhere.
	ownerSeq map[string]uint64
	cursor   uint64 // resolved tape prefix: durable at open, advanced by PlayTape
	rec      Recovery

	retry  RetryOptions
	health []ShardHealth // containment state, by shard index (under mu)
	failed int           // shards currently in the Failed state (under mu)
	slow   int           // shards currently in the Slow state (under mu)

	// lat[si] tracks shard si's WAL sojourn p99 (nil when LatencySLO is
	// unset). The trackers are internally locked: Record fires from the
	// journal Observe hook on whatever goroutine drives the shard.
	lat []*LatencyTracker

	// primary[si] is the slot directory currently holding shard si's
	// primary store (0 until a promotion moves it); replicas[si] is its
	// follower set. Both under mu; see replica.go.
	primary  []int
	replicas [][]*replica
}

// metaRecord is one meta-journal entry. Kind "place" binds a name to a
// shard at a sequence number; "unplace" releases it. The migration
// protocol (migrate.go) adds five kinds: "mbegin" declares an in-flight
// handoff Shard→To, "mcommit" marks the target copy durable, "mabort"
// rolls an uncommitted handoff back, "mevict" records an explicit
// eviction (no surviving shard could re-admit the task), and "mreset"
// fences an evacuation's re-image (Seq is the fence: the wipe re-executes
// on recovery only while the shard's durable state is still ≤ it).
type metaRecord struct {
	Kind  string `json:"kind"`
	Seq   uint64 `json:"seq"`
	Name  string `json:"name,omitempty"`
	Shard int    `json:"shard"`
	To    int    `json:"to,omitempty"`
}

// metaSnap is the meta journal's checkpoint (dir/meta.snap): router state
// as of meta-journal index Index, after which the journal is reset.
type metaSnap struct {
	Index uint64         `json:"index"`
	Seq   uint64         `json:"seq"`
	RR    uint64         `json:"rr"`
	Owner map[string]int `json:"owner"`
	// Roles is each shard's primary slot (omitted while all are 0), so a
	// promoted cluster reopens on the promoted stores even after the meta
	// journal's promote records are compacted into the snapshot.
	Roles []int `json:"roles,omitempty"`
}

const metaSnapName = "meta.snap"

// shardSeedSalt decorrelates per-shard runtime seeds (splitmix increment).
const shardSeedSalt = 0x9e3779b97f4a7c15

func shardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
}

// shardStoreOptions instantiates the per-shard store template: the seed is
// decorrelated per shard (identical across that shard's replica slots —
// the slots are one logical shard), and the current primary slot's fault
// injector (if any) is attached. Reopen/recovery paths use the same
// construction so a recovered shard is configured identically to a
// freshly opened one.
func (c *Cluster) shardStoreOptions(i int) runtime.StoreOptions {
	return c.slotStoreOptions(i, c.primary[i])
}

// Open recovers (or initializes) a sharded cluster in dir: every shard
// store recovers independently, the partition map replays from the meta
// snapshot and journal, and the map is reconciled against the shards —
// entries whose task is gone are dropped, live-but-unmapped tasks are
// adopted. The shard stores are the truth; the router state is derived.
func Open(dir string, opt Options) (*Cluster, error) {
	if opt.Shards <= 0 {
		opt.Shards = 1
	}
	policy, err := ParsePolicy(opt.Placement)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// Refuse to strand shards: reopening with fewer shards than exist on
	// disk would orphan their tasks outside the router.
	for i := opt.Shards; ; i++ {
		if _, err := os.Stat(shardDir(dir, i)); err != nil {
			break
		}
		return nil, fmt.Errorf("cluster: %s exists but only %d shards requested", shardDir(dir, i), opt.Shards)
	}
	// Likewise replicas: a follower slot past the requested count could be
	// the promoted primary of a previous incarnation.
	if opt.Replicas < 0 {
		opt.Replicas = 0
	}
	for i := 0; i < opt.Shards; i++ {
		if _, err := os.Stat(replDir(dir, i, opt.Replicas+1)); err == nil {
			return nil, fmt.Errorf("cluster: %s exists but only %d replicas requested",
				replDir(dir, i, opt.Replicas+1), opt.Replicas)
		}
	}

	c := &Cluster{
		dir:      dir,
		opt:      opt,
		policy:   policy,
		owner:    make(map[string]int),
		pending:  make(map[string]int),
		ownerSeq: make(map[string]uint64),
		retry:    opt.Retry.withDefaults(),
		health:   make([]ShardHealth, opt.Shards),
		primary:  make([]int, opt.Shards),
		replicas: make([][]*replica, opt.Shards),
	}
	// Latency trackers exist BEFORE the shard stores open: the stores'
	// Observe hooks (wired in slotStoreOptions) capture recovery I/O too.
	if opt.LatencySLO > 0 {
		win := opt.LatencyWindow
		if win <= 0 {
			win = 4
		}
		c.lat = make([]*LatencyTracker, opt.Shards)
		for i := range c.lat {
			c.lat[i] = NewLatencyTracker(win)
		}
	}
	closeAll := func() {
		for _, sh := range c.shards {
			sh.Store.Close()
		}
		if c.meta != nil {
			c.meta.Close()
		}
	}

	// Meta BEFORE the shard stores: the roles (snapshot + replayed promote
	// records) decide which slot directory each shard's primary opens from.
	snap, err := readMetaSnap(filepath.Join(dir, metaSnapName))
	if err != nil {
		closeAll()
		return nil, err
	}
	meta, err := journal.Open(filepath.Join(dir, "meta"), journal.Options{
		SegmentBytes: opt.Store.SegmentBytes,
		AfterSync:    opt.Store.AfterSync,
		NoSync:       opt.Store.NoSync,
	})
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("cluster: meta journal: %w", err)
	}
	c.meta = meta
	if meta.LastIndex() < snap.Index {
		// The journal was reset (or lost) behind the snapshot; appends must
		// continue the numbering the snapshot covers.
		if err := meta.Reset(snap.Index); err != nil {
			closeAll()
			return nil, err
		}
	}
	c.seq, c.rr = snap.Seq, snap.RR
	for name, si := range snap.Owner {
		c.owner[name] = si
	}
	for i, slot := range snap.Roles {
		if i >= opt.Shards {
			break
		}
		if slot < 0 || slot > opt.Replicas {
			closeAll()
			return nil, fmt.Errorf("cluster: shard %d primary is slot %d but only %d replicas requested", i, slot, opt.Replicas)
		}
		c.primary[i] = slot
	}
	seen := make(map[uint64]bool)
	nameSeq := make(map[string]uint64)
	// Migration-protocol records are collected in journal order and
	// completed after shard truth is known (completeMigrationsLocked):
	// migs keeps each name's LAST protocol record, resets every "mreset"
	// fence in order.
	migs := make(map[string]metaRecord)
	var migNames []string // insertion order, for deterministic completion
	var resets []metaRecord
	_, err = journal.Replay(filepath.Join(dir, "meta"), snap.Index, func(r journal.Record) error {
		if r.Type != journal.TypeEvent {
			return nil
		}
		var mr metaRecord
		if err := json.Unmarshal(r.Payload, &mr); err != nil {
			return fmt.Errorf("meta record %d: %w", r.Index, err)
		}
		switch mr.Kind {
		case "place":
			if mr.Seq != 0 && seen[mr.Seq] {
				return nil // replayed duplicate: one placement, one rr slot
			}
			seen[mr.Seq] = true
			// Records land in complete order, which in the concurrent serve
			// path can trail sequence order across shards — resolve each
			// name last-writer-wins by sequence, same as the live map.
			if mr.Seq >= nameSeq[mr.Name] {
				nameSeq[mr.Name] = mr.Seq
				c.owner[mr.Name] = mr.Shard
			}
			c.rr++
			c.rec.ReplayedPlacements++
		case "unplace":
			if mr.Seq >= nameSeq[mr.Name] {
				nameSeq[mr.Name] = mr.Seq
				delete(c.owner, mr.Name)
			}
		case "mbegin", "mcommit", "mabort", "mevict":
			if _, ok := migs[mr.Name]; !ok {
				migNames = append(migNames, mr.Name)
			}
			migs[mr.Name] = mr
		case "mreset":
			resets = append(resets, mr)
		case "promote":
			if mr.Shard < 0 || mr.Shard >= opt.Shards {
				return fmt.Errorf("meta record %d: promote for unknown shard %d", r.Index, mr.Shard)
			}
			if mr.To < 0 || mr.To > opt.Replicas {
				return fmt.Errorf("meta record %d: shard %d promoted to slot %d but only %d replicas requested",
					r.Index, mr.Shard, mr.To, opt.Replicas)
			}
			c.primary[mr.Shard] = mr.To
		}
		if mr.Seq > c.seq {
			c.seq = mr.Seq
		}
		return nil
	})
	if err != nil {
		closeAll()
		return nil, err
	}

	// With roles settled, recover every shard's primary store from its
	// current slot directory.
	for i := 0; i < opt.Shards; i++ {
		st, err := runtime.OpenStore(replDir(dir, i, c.primary[i]), c.shardStoreOptions(i))
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		specs := st.Runtime().Tasks()
		tasks := make([]task.Task, len(specs))
		for j := range specs {
			tasks[j] = specs[j].Task
		}
		c.shards = append(c.shards, &Shard{ID: i, Store: st, inc: feasibility.NewIncremental(tasks)})
		c.rec.Shards = append(c.rec.Shards, st.Recovery())
	}
	// Build the follower sets: adopt byte-identical followers in-sync,
	// re-seed the rest (including a demoted old primary after failover).
	if opt.Replicas > 0 {
		for i := 0; i < opt.Shards; i++ {
			c.initReplicasLocked(i)
		}
	}

	// Complete interrupted evacuations and migrations against shard truth,
	// BEFORE reconciliation derives the owner map — the physical fixes
	// (re-image fenced shards, finish or roll back in-flight handoffs)
	// must land first so reconciliation sees exactly one copy per task.
	if err := c.replayResetsLocked(resets); err != nil {
		closeAll()
		return nil, err
	}
	if err := c.completeMigrationsLocked(migNames, migs); err != nil {
		closeAll()
		return nil, err
	}

	// Reconcile the derived map against the authoritative shard sets.
	live := make(map[string]int)
	for i, sh := range c.shards {
		for _, sp := range sh.Store.Runtime().Tasks() {
			live[sp.Task.Name] = i
		}
	}
	for name, si := range c.owner {
		li, ok := live[name]
		if !ok {
			delete(c.owner, name) // remove was durable, unplace was not
			c.rec.Dropped++
		} else if li != si {
			c.owner[name] = li
		}
	}
	for name, si := range live {
		if _, ok := c.owner[name]; !ok {
			c.owner[name] = si // admission was durable, place was not
			c.rr++
			c.rec.Adopted++
		}
	}

	for _, sh := range c.shards {
		if ms := sh.Store.MaxSeq(); ms > c.cursor {
			c.cursor = ms
		}
	}
	if c.cursor > c.seq {
		c.seq = c.cursor
	}
	c.rec.Cursor = c.cursor
	return c, nil
}

// readMetaSnap loads the meta snapshot, returning a zero snapshot when the
// file does not exist. The write is atomic (temp + rename), so a torn
// write leaves the previous generation readable.
func readMetaSnap(path string) (metaSnap, error) {
	var snap metaSnap
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return snap, nil
		}
		return snap, err
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return snap, fmt.Errorf("cluster: corrupt meta snapshot %s: %w", path, err)
	}
	return snap, nil
}

// Shards exposes the shard slice (read via Probe/Util/Store accessors; the
// router's apply paths are the only writers).
func (c *Cluster) Shards() []*Shard { return c.shards }

// Policy returns the active placement policy.
func (c *Cluster) Policy() Policy { return c.policy }

// Recovery reports what Open rebuilt.
func (c *Cluster) Recovery() Recovery { return c.rec }

// Cursor returns the resolved event-sequence prefix — the durable prefix
// found at open, advanced past each tick PlayTape completes. It is the
// tape position a (re-)entering PlayTape resumes from.
func (c *Cluster) Cursor() uint64 { return c.cursor }

// Seq returns the last stamped sequence number.
func (c *Cluster) Seq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seq
}

// RR returns the placement cursor (successful placements so far).
func (c *Cluster) RR() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rr
}

// Owners returns a copy of the partition map.
func (c *Cluster) Owners() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.owner))
	for k, v := range c.owner {
		out[k] = v
	}
	return out
}

// Epoch returns the cluster clock: the minimum epoch over non-Failed
// shards. Shards advance past it transiently inside RunEpoch (and across
// a mid-loop crash), never behind it. Failed shards are excluded — their
// clock is frozen until evacuation re-images them (after which they
// rejoin at epoch 0 and RunEpoch's min-rule walks them back to lockstep).
// With every shard failed the raw minimum is returned.
func (c *Cluster) Epoch() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epochLocked()
}

func (c *Cluster) epochLocked() int64 {
	min, got := int64(0), false
	for i, sh := range c.shards {
		if c.failed > 0 && c.health[i].State == Failed {
			continue
		}
		if e := sh.Store.Epoch(); !got || e < min {
			min, got = e, true
		}
	}
	if !got {
		for _, sh := range c.shards {
			if e := sh.Store.Epoch(); !got || e < min {
				min, got = e, true
			}
		}
	}
	return min
}

// Digests returns every shard's digest, by shard index — the cluster's run
// identity for determinism tests.
func (c *Cluster) Digests() []uint64 {
	out := make([]uint64, len(c.shards))
	for i, sh := range c.shards {
		out[i] = sh.Store.Digest()
	}
	return out
}

// Metrics sums the shard runtimes' lifetime counters.
func (c *Cluster) Metrics() runtime.Metrics {
	var m runtime.Metrics
	for _, sh := range c.shards {
		sm := sh.Store.Runtime().Metrics()
		m.Epochs += sm.Epochs
		m.Jobs += sm.Jobs
		m.Misses += sm.Misses
		m.MissesDegraded += sm.MissesDegraded
		m.MissesClean += sm.MissesClean
		m.Admits += sm.Admits
		m.AdmitsDegraded += sm.AdmitsDegraded
		m.Rejects += sm.Rejects
		m.Removes += sm.Removes
		m.Overloads += sm.Overloads
		m.Replans += sm.Replans
		m.Sheds += sm.Sheds
		m.Restores += sm.Restores
	}
	return m
}

// ticket is the router's record of one routed event, carried from route to
// complete. mirrored records whether route applied an optimistic mirror
// update that complete may need to reconcile against the shard's verdict.
type ticket struct {
	shard    int
	name     string
	op       string // "add" | "remove" | "overload"
	mirrored bool
	err      error // synthesized rejection; shard < 0
	sick     int   // the fenced shard when err is ErrShardFailed (-1: none specific)
}

// route picks the event's shard and stamps its sequence number, under the
// router lock. Synthesized results (duplicate add, unknown remove, unnamed
// add) return a ticket with shard < 0 and never touch a shard or consume a
// live-mode sequence number — re-processing them is free, which is what
// makes tape resume idempotent. For adds the target's mirror is updated
// optimistically when the probe predicts admission; complete reconciles
// the prediction against the shard's actual verdict.
//
// gate, when non-nil, is consulted with the resolved target before ANY
// router state is mutated; a false answer aborts the route (shed=true)
// with nothing to roll back — the serving path's backpressure hook.
func (c *Cluster) route(ev *runtime.Event, gate func(si int) bool) (tk ticket, shed bool) {
	switch ev.Op {
	case "overload":
		c.stamp(ev)
		return ticket{shard: -1, op: "overload"}, false
	case "add":
		name := ev.Task.Task.Name
		if name == "" {
			return ticket{shard: -1, op: "add", err: runtime.ErrUnnamedTask}, false
		}
		if _, dup := c.owner[name]; dup {
			return ticket{shard: -1, op: "add", name: name, err: runtime.ErrDuplicateTask}, false
		}
		if _, dup := c.pending[name]; dup {
			return ticket{shard: -1, op: "add", name: name, err: runtime.ErrDuplicateTask}, false
		}
		// Failed shards are fenced from placement: the policy sees only the
		// alive subset (indices mapped back through Shard.ID). Slow shards
		// are fenced too — placements prefer shards meeting the SLO — but
		// fall back into candidacy when nothing fast remains, unless an
		// admit deadline says a slow placement is worse than a shed. With
		// no shard alive the event is shed, not silently dropped.
		candidates := c.shards
		if c.failed > 0 || c.slow > 0 {
			candidates = c.fastShardsLocked()
			if len(candidates) == 0 {
				if c.opt.AdmitDeadline > 0 && c.slow > 0 && len(c.aliveShardsLocked()) > 0 {
					c.shedSlowLocked(-1)
					return ticket{shard: -1, op: "add", name: name, err: ErrShardSlow, sick: -1}, false
				}
				candidates = c.aliveShardsLocked()
			}
			if len(candidates) == 0 {
				return ticket{shard: -1, op: "add", name: name, err: ErrShardFailed, sick: -1}, false
			}
		}
		si := c.policy.Place(&ev.Task.Task, candidates, c.rr)
		if si < 0 || si >= len(candidates) {
			si = 0 // a broken policy must not crash the router
		}
		si = candidates[si].ID
		if gate != nil && !gate(si) {
			return ticket{}, true
		}
		c.stamp(ev)
		_, deepOK := c.shards[si].Probe(&ev.Task.Task)
		c.pending[name] = si
		if deepOK {
			// The probe is verdict-identical to the shard's own screen, so
			// mirror and placement cursor advance now — later routes in the
			// same batch must see them (round-robin would otherwise pin a
			// whole batch to one shard). complete reconciles if the shard
			// disagrees after all.
			c.shards[si].inc.Add(&ev.Task.Task)
			c.rr++
		}
		return ticket{shard: si, op: "add", name: name, mirrored: deepOK}, false
	default: // "remove", by Validate
		name := ev.Name
		si, ok := c.owner[name]
		if !ok {
			si, ok = c.pending[name] // remove races a routed add: same shard, FIFO
		}
		if !ok {
			return ticket{shard: -1, op: "remove", name: name, err: runtime.ErrUnknownTask}, false
		}
		if c.health[si].State == Failed {
			// Partition-scoped shed: the owning shard is fenced, so this
			// remove cannot be served — but nothing is mutated, so the task
			// is retained for evacuation rather than silently dropped.
			return ticket{shard: -1, op: "remove", name: name, err: ErrShardFailed, sick: si}, false
		}
		if c.health[si].State == Slow && c.opt.AdmitDeadline > 0 {
			// Deadline propagation: the owner is over the latency SLO, so
			// this op would miss the admit deadline — shed it now (nothing
			// mutated; the client retries after promotion/recovery).
			c.shedSlowLocked(si)
			return ticket{shard: -1, op: "remove", name: name, err: ErrShardSlow, sick: si}, false
		}
		if gate != nil && !gate(si) {
			return ticket{}, true
		}
		c.stamp(ev)
		mirrored := c.shards[si].inc.Remove(name)
		delete(c.owner, name)
		c.ownerSeq[name] = ev.Seq
		return ticket{shard: si, op: "remove", name: name, mirrored: mirrored}, false
	}
}

// aliveShardsLocked returns the shards not in the Failed state.
func (c *Cluster) aliveShardsLocked() []*Shard {
	alive := make([]*Shard, 0, len(c.shards))
	for i, sh := range c.shards {
		if c.health[i].State != Failed {
			alive = append(alive, sh)
		}
	}
	return alive
}

// fastShardsLocked returns the shards in neither Failed nor Slow state —
// the placement candidates meeting the latency SLO.
func (c *Cluster) fastShardsLocked() []*Shard {
	fast := make([]*Shard, 0, len(c.shards))
	for i, sh := range c.shards {
		if c.health[i].State != Failed && c.health[i].State != Slow {
			fast = append(fast, sh)
		}
	}
	return fast
}

// shedSlowLocked accounts one deadline shed against shard si, or — for
// placement sheds with no single culprit (si < 0) — against the first
// Slow shard, deterministically.
func (c *Cluster) shedSlowLocked(si int) {
	if si < 0 {
		for i := range c.health {
			if c.health[i].State == Slow {
				si = i
				break
			}
		}
	}
	if si >= 0 {
		c.health[si].DeadlineSheds++
	}
}

// stamp assigns the next sequence number, or folds a pre-stamped one
// (tape mode) into the counter.
func (c *Cluster) stamp(ev *runtime.Event) {
	if ev.Seq == 0 {
		c.seq++
		ev.Seq = c.seq
	} else if ev.Seq > c.seq {
		c.seq = ev.Seq
	}
}

// complete reconciles router state with the shard's actual result and
// journals the placement (write-behind: the shard admission is already
// durable). Must run under the router lock, in each shard's apply order.
func (c *Cluster) complete(tk ticket, ev *runtime.Event, dec runtime.Decision, applyErr error) error {
	switch tk.op {
	case "add":
		admitted := applyErr == nil && dec.Verdict != runtime.Rejected
		delete(c.pending, tk.name)
		if admitted {
			// Mirror by membership, cursor by prediction: a retry-reopen may
			// have rebuilt the mirror from recovered state (which already
			// holds this task), so the Add is membership-guarded — but rr
			// must advance exactly once per admitted add regardless of drive
			// mode, so it keeps following the route-time prediction.
			if !c.shards[tk.shard].inc.Has(tk.name) {
				c.shards[tk.shard].inc.Add(&ev.Task.Task)
			}
			if !tk.mirrored {
				c.rr++
			}
			// Last-writer-wins by sequence: a remove (or re-add of the same
			// reused name) with a higher sequence may already have resolved
			// this name — possibly on another shard, whose completes
			// interleave with ours — and a stale placement must not clobber
			// it. The shard's admission stands either way; only the map
			// entry is gated.
			if ev.Seq >= c.ownerSeq[tk.name] {
				c.ownerSeq[tk.name] = ev.Seq
				c.owner[tk.name] = tk.shard
			}
			return c.metaAppend(metaRecord{Kind: "place", Seq: ev.Seq, Name: tk.name, Shard: tk.shard})
		}
		if tk.mirrored {
			c.shards[tk.shard].inc.Remove(tk.name) // no-op if a rebuild dropped it
			c.rr--
		}
	case "remove":
		if applyErr == nil {
			// A retry-reopen rebuild may have restored the mirror entry that
			// route removed optimistically; the remove is now durable, so
			// re-drop it (no-op when already absent).
			c.shards[tk.shard].inc.Remove(tk.name)
			// route already deleted the map entry, but an add complete from
			// an interleaved batch may have re-inserted it — resolve again
			// here under the same sequence order, so the map ends where the
			// highest-sequence event left it.
			if ev.Seq >= c.ownerSeq[tk.name] {
				c.ownerSeq[tk.name] = ev.Seq
				delete(c.owner, tk.name)
			}
			return c.metaAppend(metaRecord{Kind: "unplace", Seq: ev.Seq, Name: tk.name, Shard: tk.shard})
		}
		// Stale at the shard: route's optimistic map/mirror deletion already
		// matches the truth (the task is not there).
	}
	return nil
}

// metaAppend journals one placement record, fsynced unless RelaxedMeta.
func (c *Cluster) metaAppend(mr metaRecord) error {
	payload, err := json.Marshal(mr)
	if err != nil {
		return err
	}
	if _, err := c.meta.Append(journal.TypeEvent, payload); err != nil {
		return err
	}
	if c.opt.RelaxedMeta {
		return nil
	}
	return c.meta.Sync()
}

// synthResult builds the Result for a router-synthesized rejection.
func synthResult(ev *runtime.Event, tk ticket) Result {
	d := runtime.Decision{Op: ev.Op, Task: tk.name}
	return Result{Shard: -1, Decision: d}
}

// Apply routes one event: broadcasts go to every shard, removes to the
// owning shard, adds to the shard the placement policy picks. Stale
// requests the router can answer itself (duplicate add, unknown remove)
// are synthesized without touching any shard — the same deterministic
// errors a single runtime returns, minus the journal write. The returned
// error is either a stale-request rejection (IsStaleRequest) or fatal.
func (c *Cluster) Apply(ev runtime.Event) (Result, error) {
	if err := ev.Validate(); err != nil {
		return Result{Shard: -1, Decision: runtime.Decision{Op: ev.Op}}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ev.Op == "overload" {
		return c.broadcastLocked(&ev)
	}
	tk, _ := c.route(&ev, nil)
	if tk.shard < 0 {
		return synthResult(&ev, tk), tk.err
	}
	dec, evErr, _, err := c.shardApply(tk.shard, true, ev)
	if err != nil {
		// The shard exhausted its retry budget mid-event. complete with a
		// failed outcome rolls back the optimistic router state (pending
		// entry, mirror delta); for removes the task stays live on the
		// fenced shard — retained for evacuation, never silently lost.
		c.complete(tk, &ev, dec, err)
		return Result{Shard: tk.shard, Decision: dec}, err
	}
	err = evErr
	if cerr := c.complete(tk, &ev, dec, err); cerr != nil && err == nil {
		err = cerr
	}
	return Result{Shard: tk.shard, Decision: dec}, err
}

// broadcastLocked applies an overload window to every shard that has not
// journaled it yet. The per-shard MaxSeq guard is what makes a partially
// applied broadcast resumable: shards that committed the event before a
// crash skip it, laggards catch up, and every shard's event subsequence —
// hence its digest — is unchanged.
func (c *Cluster) broadcastLocked(ev *runtime.Event) (Result, error) {
	c.stamp(ev)
	var first runtime.Decision
	got := false
	for _, sh := range c.shards {
		if c.health[sh.ID].State == Failed {
			continue // fenced; it rejoins empty after evacuation anyway
		}
		if sh.Store.MaxSeq() >= ev.Seq {
			continue
		}
		dec, evErr, _, err := c.shardApply(sh.ID, true, *ev)
		if err == nil {
			err = evErr
		}
		if err != nil {
			return Result{Shard: sh.ID, Decision: dec}, err
		}
		if !got {
			first, got = dec, true
		}
	}
	return Result{Shard: -1, Decision: first}, nil
}

// batchItem carries one routed event through a shard's apply bucket.
type batchItem struct {
	pos int // index in the caller's slice
	ev  runtime.Event
	tk  ticket
}

// ApplyBatch routes the whole slice serially (placement is inherently
// sequential — each decision conditions the next probe), then drives every
// shard's bucket concurrently, each under ONE group-committed journal
// write. Per-event results come back positionally, exactly like
// runtime.Store.ApplyBatch; the final error is fatal.
//
// Because routing is serial and each shard applies its bucket in route
// order, the per-shard event subsequences — and therefore every shard
// digest — are identical to N serial Apply calls. The cluster soak holds
// that equivalence as an invariant; the concurrency only buys wall-clock.
func (c *Cluster) ApplyBatch(evs []runtime.Event) ([]Result, []error, error) {
	results := make([]Result, len(evs))
	errs := make([]error, len(evs))
	buckets := make([][]batchItem, len(c.shards))

	c.mu.Lock()
	for i := range evs {
		ev := evs[i] // copy: stamping must not mutate the caller's slice
		results[i] = Result{Shard: -1, Decision: runtime.Decision{Op: ev.Op}}
		if err := ev.Validate(); err != nil {
			errs[i] = err
			continue
		}
		if ev.Op == "overload" {
			c.stamp(&ev)
			for si := range c.shards {
				if c.health[si].State == Failed {
					continue
				}
				if c.shards[si].Store.MaxSeq() >= ev.Seq {
					continue
				}
				buckets[si] = append(buckets[si], batchItem{pos: i, ev: ev, tk: ticket{shard: si, op: "overload"}})
			}
			continue
		}
		tk, _ := c.route(&ev, nil)
		if tk.shard < 0 {
			results[i] = synthResult(&ev, tk)
			errs[i] = tk.err
			continue
		}
		buckets[tk.shard] = append(buckets[tk.shard], batchItem{pos: i, ev: ev, tk: tk})
	}
	c.mu.Unlock()

	// Apply every bucket concurrently; each shard group-commits its whole
	// bucket under one fsync.
	shardErrs := make([]error, len(c.shards))
	shardDecs := make([][]runtime.Decision, len(c.shards))
	shardEvErrs := make([][]error, len(c.shards))
	var wg sync.WaitGroup
	for si := range c.shards {
		if len(buckets[si]) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			bucket := buckets[si]
			sevs := make([]runtime.Event, len(bucket))
			for j := range bucket {
				sevs[j] = bucket[j].ev
			}
			shardDecs[si], shardEvErrs[si], _, shardErrs[si] = c.shardApplyBatch(si, sevs)
		}(si)
	}
	wg.Wait()

	// Reconcile in shard order, each bucket in apply order. A shard that
	// exhausted its retry budget fails ONLY its own bucket (partition-
	// scoped containment): each of its events completes as failed — the
	// optimistic router state rolls back — and carries the shard error,
	// while every other bucket's results stand.
	c.mu.Lock()
	defer c.mu.Unlock()
	var fatal error
	overloadDone := make(map[int]bool)
	for si := range c.shards {
		shardErr := shardErrs[si]
		if shardErr != nil && !errors.Is(shardErr, ErrShardFailed) && fatal == nil {
			fatal = fmt.Errorf("cluster: shard %d: %w", si, shardErr)
		}
		for j, it := range buckets[si] {
			if shardDecs[si] == nil {
				continue // shard died before producing results
			}
			dec, aerr := shardDecs[si][j], shardEvErrs[si][j]
			if shardErr != nil {
				aerr = shardErr
			}
			if it.tk.op == "overload" {
				if !overloadDone[it.pos] && aerr == nil {
					results[it.pos] = Result{Shard: -1, Decision: dec}
					overloadDone[it.pos] = true
				}
				if aerr != nil {
					errs[it.pos] = aerr
				}
				continue
			}
			if cerr := c.complete(it.tk, &it.ev, dec, aerr); cerr != nil && fatal == nil {
				fatal = cerr
			}
			results[it.pos] = Result{Shard: it.tk.shard, Decision: dec}
			errs[it.pos] = aerr
		}
	}
	return results, errs, fatal
}

// ShardEpoch is one shard's epoch report.
type ShardEpoch struct {
	Shard  int                 `json:"shard"`
	Report runtime.EpochReport `json:"report"`
}

// RunEpoch advances the cluster clock by one tick: every shard sitting at
// the minimum epoch runs (and journals) one epoch. After an uninterrupted
// tick all shards are level; after a mid-tick crash the survivors are one
// ahead, and the next call advances only the laggards — which is exactly
// how a resumed run converges back to lockstep.
func (c *Cluster) RunEpoch(parallel bool) ([]ShardEpoch, error) {
	c.mu.Lock()
	min := c.epochLocked()
	var due []*Shard
	for _, sh := range c.shards {
		if c.health[sh.ID].State == Failed {
			continue // fenced; evacuation re-images it before it re-ticks
		}
		if sh.Store.Epoch() == min {
			due = append(due, sh)
		}
	}
	c.mu.Unlock()
	reps := make([]ShardEpoch, len(due))
	if !parallel {
		for i, sh := range due {
			rep, err := c.shardEpoch(sh.ID)
			if err != nil {
				return nil, fmt.Errorf("cluster: shard %d epoch: %w", sh.ID, err)
			}
			reps[i] = ShardEpoch{Shard: sh.ID, Report: rep}
		}
		c.latencySweep(due, min+1)
		return reps, nil
	}
	errs := make([]error, len(due))
	var wg sync.WaitGroup
	for i, sh := range due {
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			rep, err := c.shardEpoch(sh.ID)
			if err != nil {
				errs[i] = fmt.Errorf("cluster: shard %d epoch: %w", sh.ID, err)
				return
			}
			reps[i] = ShardEpoch{Shard: sh.ID, Report: rep}
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	c.latencySweep(due, min+1)
	return reps, nil
}

// latencySweep runs the latency-SLO check for every shard that just
// ticked, in shard order under the cluster lock — AFTER the tick's I/O
// completed in both serial and parallel drive modes, so health decisions
// land at identical boundaries regardless of execution mode.
func (c *Cluster) latencySweep(due []*Shard, epoch int64) {
	if c.lat == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sh := range due {
		c.checkLatencyLocked(sh.ID, epoch)
	}
}

// checkLatencyLocked evaluates shard si's windowed WAL p99 against the
// SLO, drives the Healthy⇄Slow transitions, and — when replicas exist —
// proactively promotes away from a slow primary. The tracker advances to
// `epoch` afterwards, so the evaluation always covers the window ENDING at
// the epoch that just ran.
func (c *Cluster) checkLatencyLocked(si int, epoch int64) {
	t := c.lat[si]
	defer t.Advance(epoch)
	h := &c.health[si]
	minSamples := c.opt.LatencyMinSamples
	if minSamples <= 0 {
		minSamples = 2
	}
	if t.Count() < uint64(minSamples) {
		return // abstain: not enough signal to judge the device
	}
	p99 := t.Quantile(0.99)
	h.LatencyP99Ms = float64(p99) / float64(time.Millisecond)
	if p99 <= c.opt.LatencySLO {
		if h.State == Slow {
			// The device recovered on its own (brownout ended, queue
			// drained): lift the fence.
			c.setHealthStateLocked(si, Healthy)
			h.LastError = ""
		}
		return
	}
	if h.State == Healthy {
		c.setHealthStateLocked(si, Slow)
		h.SlowEvents++
		h.LastError = fmt.Sprintf("WAL p99 %v over latency SLO %v", p99, c.opt.LatencySLO)
	}
	// Proactive failover: a slow primary with an in-sync follower is
	// replaced now, before clients miss deadlines — the gray-failure
	// counterpart of the exhausted-retry promotion in runShardOp.
	if h.State == Slow && len(c.replicas[si]) > 0 && c.promoteShardLocked(si) {
		t.Reset() // the samples described the demoted device
		c.rebuildMirrorLocked(si)
		c.setHealthStateLocked(si, Healthy)
		h.ConsecErrs = 0
	}
}

// CheckLatency runs the latency-SLO check for shard si at its current
// epoch — the serve layer's per-engine hook, where each shard ticks on its
// own clock instead of through RunEpoch.
func (c *Cluster) CheckLatency(si int) {
	if c.lat == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if si < 0 || si >= len(c.shards) {
		return
	}
	c.checkLatencyLocked(si, c.shards[si].Store.Epoch())
}

// ShardLatencyP99 reports shard si's current windowed WAL p99 sojourn
// (zero when latency tracking is off or the window is empty).
func (c *Cluster) ShardLatencyP99(si int) time.Duration {
	if c.lat == nil || si < 0 || si >= len(c.lat) {
		return 0
	}
	return c.lat[si].Quantile(0.99)
}

// Checkpoint snapshots every shard store (compacting its WAL) and then the
// router's meta state: the partition map, placement cursor and sequence
// counter land in meta.snap atomically, after which the meta journal is
// reset. Ordering matters — the shard checkpoints persist MaxSeq first, so
// a crash anywhere inside Checkpoint leaves the usual recovery path
// (snapshot + replay + reconcile) fully informed.
func (c *Cluster) Checkpoint() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sh := range c.shards {
		if c.health[sh.ID].State == Failed {
			continue // fenced; its durable state is whatever the failure left
		}
		_, err := c.runShardOp(sh.ID, true, func(st *runtime.Store) error {
			_, cerr := st.Checkpoint()
			return cerr
		})
		if err != nil {
			if errors.Is(err, ErrShardFailed) {
				continue // containment: the failed shard awaits evacuation
			}
			return fmt.Errorf("cluster: shard %d checkpoint: %w", sh.ID, err)
		}
		// Checkpoint doubles as the replica scrub point: the shard is
		// quiescent and freshly shipped, so digest-verify every in-sync
		// follower (demoting silent divergence) and re-seed the demoted.
		if c.opt.Replicas > 0 {
			c.verifyReplicasLocked(sh.ID)
			c.reseedReplicasLocked(sh.ID)
		}
	}
	return c.snapshotMetaLocked()
}

func (c *Cluster) snapshotMetaLocked() error {
	if err := c.meta.Sync(); err != nil { // relaxed-mode records become durable here
		return err
	}
	idx := c.meta.LastIndex()
	snap := metaSnap{Index: idx, Seq: c.seq, RR: c.rr, Owner: c.owner}
	for _, slot := range c.primary {
		if slot != 0 {
			snap.Roles = append([]int(nil), c.primary...)
			break
		}
	}
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(c.dir, metaSnapName), data, c.opt.Store.NoSync, c.opt.Store.AfterSync); err != nil {
		return err
	}
	return c.meta.Reset(idx)
}

// writeFileAtomic is temp + write + fsync + rename + dir fsync, with the
// crash hook fired after each sync (sweep coverage), syncs elided under
// NoSync.
func writeFileAtomic(path string, data []byte, noSync bool, afterSync func()) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	cleanup := func() { tmp.Close(); os.Remove(tmp.Name()) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if !noSync {
		if err := tmp.Sync(); err != nil {
			cleanup()
			return err
		}
		if afterSync != nil {
			afterSync()
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if noSync {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	if err := d.Close(); err != nil {
		return err
	}
	if afterSync != nil {
		afterSync()
	}
	return nil
}

// ErrWrongTape mirrors the store's wrong-tape guard at cluster scope.
var ErrWrongTape = errors.New("cluster: store is ahead of the tape — wrong tape?")

// PlayTape drives the cluster through a shared churn tape to the horizon.
// Event i carries sequence number i+1, so the durable prefix found at open
// (Cursor) is also the resume position: events at or below it are skipped
// (their shards hold them), broadcasts re-apply only to lagging shards,
// and synthesized events re-synthesize for free. Epochs advance through
// RunEpoch's min-epoch rule, so a crash mid-tick converges back to
// lockstep before new events fire. checkpointEvery > 0 checkpoints the
// cluster after every that-many ticks.
func (c *Cluster) PlayTape(tp *runtime.Tape, horizon int64, parallel bool, checkpointEvery int,
	onEpoch func(ShardEpoch), onDecision func(runtime.Event, Result),
	onDecisionErr func(runtime.Event, error) error) error {
	if c.cursor > uint64(len(tp.Events)) {
		return fmt.Errorf("%w: durable prefix %d, tape has %d events", ErrWrongTape, c.cursor, len(tp.Events))
	}
	// Skip the fully-applied prefix: every shard's MaxSeq is at least the
	// minimum, so events up to it need no re-routing at all. Between the
	// minimum and the global cursor, broadcasts may still be partially
	// applied — those flow through the per-shard guard below.
	minSeq := c.shards[0].Store.MaxSeq()
	for _, sh := range c.shards[1:] {
		if ms := sh.Store.MaxSeq(); ms < minSeq {
			minSeq = ms
		}
	}
	i := int(minSeq)
	// The cursor covers events resolved by an EARLIER PlayTape call in this
	// process too (epoch-at-a-time drivers re-enter here): without it, a
	// re-entry would rescan from minSeq — which an empty shard pins at 0 —
	// and re-route events whose add/remove pair has already resolved,
	// re-applying them as if new.
	ticks := 0
	for c.Epoch() < horizon {
		start := i
		for i < len(tp.Events) && tp.Events[i].Epoch <= c.Epoch() {
			i++
		}
		due := make([]runtime.Event, 0, i-start)
		for j := start; j < i; j++ {
			ev := tp.Events[j]
			ev.Seq = uint64(j + 1)
			if ev.Op != "overload" && ev.Seq <= c.cursor {
				continue // durable on its shard already
			}
			due = append(due, ev)
		}
		if parallel {
			results, errs, err := c.ApplyBatch(due)
			if err != nil {
				return err
			}
			for j := range due {
				if errs[j] != nil {
					if onDecisionErr == nil {
						return fmt.Errorf("cluster: event at epoch %d: %w", due[j].Epoch, errs[j])
					}
					if err := onDecisionErr(due[j], errs[j]); err != nil {
						return err
					}
					continue
				}
				if onDecision != nil {
					onDecision(due[j], results[j])
				}
			}
		} else {
			for _, ev := range due {
				res, err := c.Apply(ev)
				if err != nil {
					if !runtime.IsStaleRequest(err) {
						return fmt.Errorf("cluster: event at epoch %d: %w", ev.Epoch, err)
					}
					if onDecisionErr == nil {
						return fmt.Errorf("cluster: event at epoch %d: %w", ev.Epoch, err)
					}
					if err := onDecisionErr(ev, err); err != nil {
						return err
					}
					continue
				}
				if onDecision != nil {
					onDecision(ev, res)
				}
			}
		}
		// Every event through index i is resolved — applied, synthesized
		// stale, or already durable on its shard — so the cursor advances to
		// keep a later re-entry from routing them again.
		c.mu.Lock()
		if uint64(i) > c.cursor {
			c.cursor = uint64(i)
		}
		c.mu.Unlock()
		reps, err := c.RunEpoch(parallel)
		if err != nil {
			return err
		}
		if onEpoch != nil {
			for _, rep := range reps {
				onEpoch(rep)
			}
		}
		ticks++
		if checkpointEvery > 0 && ticks%checkpointEvery == 0 {
			if err := c.Checkpoint(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close flushes the meta journal and closes every shard store. Shards whose
// writer the retry loop already closed (reopen in progress when the budget
// ran out) are skipped.
func (c *Cluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	if c.meta != nil {
		err = c.meta.Close()
	}
	for _, sh := range c.shards {
		if sh.closed {
			continue
		}
		sh.closed = true
		if cerr := sh.Store.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
