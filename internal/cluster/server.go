package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	goruntime "runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nprt/internal/runtime"
	"nprt/internal/serve"
	"nprt/internal/task"
)

// Server is the HTTP control plane over a sharded cluster. It is the
// multi-lane version of serve.Server: one engine goroutine *per shard*,
// each owning that shard's store, fed through its own bounded queue. The
// handler routes every event to its shard at the door (placement policy
// for adds, partition map for removes), so N independent engines journal,
// group-commit and fsync concurrently — the parallelism the sharding
// exists to buy — while the router's mutex only covers the microseconds of
// placement itself.
//
// Queueing contract per shard, identical to the single-node server: a full
// queue sheds with 503 + Retry-After at the door, and everything accepted
// is applied before the engine exits (drain-on-shutdown).
type Server struct {
	opt ServeOptions
	c   *Cluster

	mu       sync.Mutex // guards draining and the accept/drain race
	draining bool

	queues []chan sticket
	rows   []atomic.Pointer[ShardRow]
	ctls   []*serve.QueueCtl // per-shard drain-rate + adaptive admission

	// opStart[si] is the wall-clock nanos when shard si's engine entered
	// its current store op (0 while idle) — the watchdog's heartbeat. An
	// engine stuck inside ONE op (a device that neither errors nor
	// returns) never trips the error-driven health machine; the watchdog
	// flags it Slow from outside.
	opStart []atomic.Int64

	ready       atomic.Bool
	stop        chan struct{}
	enginesDone sync.WaitGroup
	fatal       chan error

	admitted     atomic.Uint64
	rejected     atomic.Uint64
	shed         atomic.Uint64
	deadlineShed atomic.Uint64
	codelShed    atomic.Uint64
	lastErr      atomic.Pointer[string]
}

// ServeOptions parameterizes NewServer.
type ServeOptions struct {
	// QueueDepth bounds each shard's admission queue, in events
	// (default 256 — a cluster queue slot is one event, not one request).
	QueueDepth int
	// RequestTimeout bounds how long a handler waits for engine replies
	// (default 5s).
	RequestTimeout time.Duration
	// RetryAfter is the hint sent with every 503 (default 1s).
	RetryAfter time.Duration
	// EpochInterval, when positive, has every shard engine run epochs on a
	// timer. Zero disables automatic epochs.
	EpochInterval time.Duration
	// CheckpointEvery checkpoints a shard after every Nth of its epochs
	// (0 = never). Shard 0 also snapshots the router meta state.
	CheckpointEvery int
	// MaxBatchEvents caps /admit/batch (default 256).
	MaxBatchEvents int
	// CoDelTarget/CoDelInterval arm per-shard CoDel-style adaptive queue
	// control (see serve.Options; zero target disables).
	CoDelTarget   time.Duration
	CoDelInterval time.Duration
	// StuckOpAfter, when positive, arms the per-shard watchdog: an engine
	// goroutine inside a single store op longer than this is flagged Slow
	// via Cluster.NoteStuck (0 = watchdog off).
	StuckOpAfter time.Duration
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

func (o ServeOptions) withDefaults() ServeOptions {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.MaxBatchEvents <= 0 {
		o.MaxBatchEvents = 256
	}
	return o
}

// sticket is one routed event in flight to a shard engine. Broadcast
// events put one sticket on every queue, sharing a reply channel buffered
// for all of them.
type sticket struct {
	ev    runtime.Event
	tk    ticket
	pos   int // caller's slot, echoed in the reply
	reply chan sreply
	enq   time.Time // when the sticket entered the shard queue
}

// sreply is one engine's answer for one sticket.
type sreply struct {
	pos   int
	shard int
	dec   runtime.Decision
	err   error // per-event (stale) or fatal store error
	fatal bool
}

// ShardRow is one shard's slice of /state, published atomically by its
// engine so readers never touch the store.
type ShardRow struct {
	Shard         int     `json:"shard"`
	Epoch         int64   `json:"epoch"`
	Digest        string  `json:"digest"`
	Tasks         int     `json:"tasks"`
	UtilAccurate  float64 `json:"util_accurate"`
	EventsApplied uint64  `json:"events_applied"`
	WALIndex      uint64  `json:"wal_index"`
	MaxSeq        uint64  `json:"max_seq"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCap      int     `json:"queue_cap"`

	// Health is the shard's containment state (health.go): state name,
	// consecutive/lifetime error counts, reopen and re-image counts, and
	// the most recent error string.
	Health ShardHealth `json:"health"`

	// PrimarySlot and Replicas surface the failover state (replica.go):
	// which slot directory currently serves the partition, and each
	// follower's sync state. Replicas is absent when replication is off.
	PrimarySlot int           `json:"primary_slot"`
	Replicas    []ReplicaInfo `json:"replicas,omitempty"`

	// WALP99Ms is the shard's windowed WAL p99 sojourn in milliseconds
	// (0 when latency tracking is off); QueueWaitMs / DrainPerSec are the
	// shard queue's last observed sojourn and measured drain rate.
	WALP99Ms    float64 `json:"wal_p99_ms,omitempty"`
	QueueWaitMs float64 `json:"queue_wait_ms,omitempty"`
	DrainPerSec float64 `json:"drain_per_sec,omitempty"`

	Commit *serve.CommitState `json:"commit,omitempty"`
}

// ClusterState is the /state document: aggregated router counters plus one
// row per shard.
type ClusterState struct {
	Ready     bool   `json:"ready"`
	Draining  bool   `json:"draining"`
	Shards    int    `json:"shards"`
	Placement string `json:"placement"`
	Epoch     int64  `json:"epoch"` // cluster clock: min shard epoch
	Tasks     int    `json:"tasks"` // partition-map size
	Pending   int    `json:"pending"`
	RR        uint64 `json:"rr"`
	Seq       uint64 `json:"seq"`

	// FailedShards counts shards currently fenced in the Failed state;
	// their partitions shed (503) until evacuation while the rest serve.
	FailedShards int `json:"failed_shards,omitempty"`
	// SlowShards counts shards currently fenced in the Slow state (over
	// the latency SLO); they serve removes but take no new placements.
	SlowShards int `json:"slow_shards,omitempty"`

	Admitted  uint64 `json:"admitted"`
	Rejected  uint64 `json:"rejected"`
	LoadShed  uint64 `json:"load_shed"`
	LastError string `json:"last_error,omitempty"`

	// DeadlineShed / CoDelShed break out the enqueue-gate sheds by cause.
	DeadlineShed uint64 `json:"deadline_shed,omitempty"`
	CoDelShed    uint64 `json:"codel_shed,omitempty"`

	PerShard []ShardRow `json:"per_shard"`
}

// NewServer builds the serving layer in the not-ready state; Attach hands
// it the recovered cluster and starts the shard engines.
func NewServer(opt ServeOptions) *Server {
	opt = opt.withDefaults()
	return &Server{
		opt:   opt,
		stop:  make(chan struct{}),
		fatal: make(chan error, 1),
	}
}

// Attach hands the server a recovered cluster, starts one engine per
// shard, and flips readiness. Call exactly once.
func (s *Server) Attach(c *Cluster) {
	s.c = c
	n := len(c.shards)
	s.queues = make([]chan sticket, n)
	s.rows = make([]atomic.Pointer[ShardRow], n)
	s.ctls = make([]*serve.QueueCtl, n)
	s.opStart = make([]atomic.Int64, n)
	for i := 0; i < n; i++ {
		s.queues[i] = make(chan sticket, s.opt.QueueDepth)
		s.ctls[i] = serve.NewQueueCtl(s.opt.CoDelTarget, s.opt.CoDelInterval)
		s.publishShard(i)
		s.enginesDone.Add(1)
		go s.engine(i)
	}
	if s.opt.StuckOpAfter > 0 {
		go s.watchdog()
	}
	s.ready.Store(true)
}

// watchdog periodically scans every shard engine's in-op heartbeat and
// flags the ones stuck inside a single store op. It exits with the server.
func (s *Server) watchdog() {
	period := s.opt.StuckOpAfter / 2
	if period <= 0 {
		period = time.Millisecond
	}
	tk := time.NewTicker(period)
	defer tk.Stop()
	for {
		select {
		case <-tk.C:
			s.scanStuck(time.Now())
		case <-s.stop:
			return
		}
	}
}

// scanStuck is one watchdog pass (split out for tests): any engine whose
// current op began more than StuckOpAfter ago is reported to the health
// machine as Slow.
func (s *Server) scanStuck(now time.Time) {
	for si := range s.opStart {
		start := s.opStart[si].Load()
		if start == 0 {
			continue
		}
		if stuck := now.Sub(time.Unix(0, start)); stuck > s.opt.StuckOpAfter {
			s.c.NoteStuck(si, fmt.Sprintf("engine stuck in one store op for %v", stuck))
		}
	}
}

// enterOp/leaveOp bracket a shard engine's store ops for the watchdog.
func (s *Server) enterOp(si int) { s.opStart[si].Store(time.Now().UnixNano()) }
func (s *Server) leaveOp(si int) { s.opStart[si].Store(0) }

// Fatal delivers at most one unrecoverable engine error.
func (s *Server) Fatal() <-chan error { return s.fatal }

// Shutdown bars the door, lets every engine drain its queue, and waits.
// The cluster is left open — the caller closes it after Shutdown returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	s.ready.Store(false)
	if already || s.c == nil {
		return nil
	}
	close(s.stop)
	done := make(chan struct{})
	go func() {
		s.enginesDone.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// engine owns shard si's store: admissions from the queue, timed epochs,
// checkpoints. Router state (mirrors, map, meta journal) is only touched
// under the cluster mutex, in this shard's apply order.
func (s *Server) engine(si int) {
	defer s.enginesDone.Done()
	q := s.queues[si]
	var tick <-chan time.Time
	if s.opt.EpochInterval > 0 {
		tk := time.NewTicker(s.opt.EpochInterval)
		defer tk.Stop()
		tick = tk.C
	}
	epochs := 0
	buf := make([]sticket, 0, cap(q))
	for {
		select {
		case t := <-q:
			if !s.serveBatch(si, s.gather(buf[:0], t, q)) {
				return
			}
		case <-tick:
			s.enterOp(si)
			_, err := s.c.shardEpoch(si)
			s.leaveOp(si)
			s.c.CheckLatency(si) // latency health rides the epoch cadence
			if err != nil {
				if errors.Is(err, ErrShardFailed) {
					// Containment: this shard is fenced and sheds until an
					// operator evacuates it; the other engines keep serving.
					s.logf("shard %d epoch skipped: %v", si, err)
					s.publishShard(si)
					continue
				}
				s.fail(fmt.Errorf("shard %d epoch: %w", si, err))
				return
			}
			epochs++
			if s.opt.CheckpointEvery > 0 && epochs%s.opt.CheckpointEvery == 0 {
				s.enterOp(si)
				_, err := s.c.runShardOp(si, false, func(st *runtime.Store) error {
					_, cerr := st.Checkpoint()
					return cerr
				})
				s.leaveOp(si)
				if err != nil && !errors.Is(err, ErrShardFailed) {
					s.fail(fmt.Errorf("shard %d checkpoint: %w", si, err))
					return
				}
				if si == 0 {
					s.c.mu.Lock()
					err := s.c.snapshotMetaLocked()
					s.c.mu.Unlock()
					if err != nil {
						s.fail(fmt.Errorf("meta snapshot: %w", err))
						return
					}
				}
			}
			s.publishShard(si)
		case <-s.stop:
			for {
				select {
				case t := <-q:
					if !s.serveBatch(si, s.gather(buf[:0], t, q)) {
						return
					}
				default:
					return
				}
			}
		}
	}
}

// gather collects one commit group: the waking ticket, everything queued,
// and a brief yield-spin for stragglers once it has company (the same
// batching heuristic as the single-node engine).
func (s *Server) gather(batch []sticket, t sticket, q chan sticket) []sticket {
	batch = append(batch, t)
	drain := func() {
		for len(batch) < cap(batch) {
			select {
			case t2 := <-q:
				batch = append(batch, t2)
			default:
				return
			}
		}
	}
	drain()
	if len(batch) == 1 {
		goruntime.Gosched()
		drain()
	}
	if len(batch) > 1 {
		for empty := 0; len(batch) < cap(batch) && empty < 4; {
			before := len(batch)
			goruntime.Gosched()
			drain()
			if len(batch) == before {
				empty++
			} else {
				empty = 0
			}
		}
	}
	return batch
}

// serveBatch applies one gathered batch to shard si under one covering
// fsync — through the containment loop, so a transient journal fault is
// reopened-and-retried and a shard that exhausts its budget fails only
// this partition — reconciles the router (in apply order, under the
// cluster mutex), publishes, then replies. false = a genuinely fatal,
// non-containable failure.
func (s *Server) serveBatch(si int, batch []sticket) bool {
	start := time.Now()
	epoch := s.c.shards[si].Store.Epoch()
	evs := make([]runtime.Event, len(batch))
	for i := range batch {
		evs[i] = batch[i].ev
		evs[i].Epoch = epoch // journaled events replay at the live position
	}
	s.enterOp(si)
	decs, errs, _, err := s.c.shardApplyBatch(si, evs)
	s.leaveOp(si)
	now := time.Now()
	s.ctls[si].Observe(len(batch), now.Sub(start), start.Sub(batch[0].enq), now)
	if err != nil && !errors.Is(err, ErrShardFailed) {
		s.fail(fmt.Errorf("shard %d admit: %w", si, err))
		for i := range batch {
			batch[i].reply <- sreply{pos: batch[i].pos, shard: si, err: err, fatal: true}
		}
		return false
	}
	if err != nil {
		// Partition-scoped containment: this shard's batch failed as a
		// unit. Each event completes as failed (the optimistic router state
		// rolls back; removes stay owned for evacuation) and the client
		// sees a retryable shard failure, not a server death.
		s.logf("shard %d failed, shedding its batch: %v", si, err)
		s.c.mu.Lock()
		for i := range batch {
			if batch[i].tk.op == "overload" {
				continue
			}
			s.c.complete(batch[i].tk, &evs[i], decs[i], err)
		}
		s.c.mu.Unlock()
		s.publishShard(si)
		for i := range batch {
			s.shed.Add(1)
			batch[i].reply <- sreply{pos: batch[i].pos, shard: si, err: err}
		}
		return true
	}
	s.c.mu.Lock()
	var cerr error
	for i := range batch {
		if batch[i].tk.op == "overload" {
			continue // broadcasts carry no router state
		}
		if e := s.c.complete(batch[i].tk, &evs[i], decs[i], errs[i]); e != nil && cerr == nil {
			cerr = e
		}
	}
	s.c.mu.Unlock()
	if cerr != nil {
		s.fail(fmt.Errorf("shard %d meta journal: %w", si, cerr))
		for i := range batch {
			batch[i].reply <- sreply{pos: batch[i].pos, shard: si, err: cerr, fatal: true}
		}
		return false
	}
	for i := range batch {
		if batch[i].tk.op == "overload" {
			continue // counted once at route time, not per broadcast leg
		}
		if errs[i] != nil || decs[i].Verdict == runtime.Rejected {
			s.rejected.Add(1)
		} else {
			s.admitted.Add(1)
		}
	}
	s.publishShard(si)
	for i := range batch {
		batch[i].reply <- sreply{pos: batch[i].pos, shard: si, dec: decs[i], err: errs[i]}
	}
	return true
}

// publishShard refreshes shard si's /state row from its engine's view.
func (s *Server) publishShard(si int) {
	sh := s.c.shards[si]
	cs := sh.Store.CommitStats()
	row := &ShardRow{
		Shard:         si,
		Epoch:         sh.Store.Epoch(),
		Digest:        fmt.Sprintf("%016x", sh.Store.Digest()),
		Tasks:         len(sh.Store.Runtime().Tasks()),
		EventsApplied: sh.Store.EventsApplied(),
		WALIndex:      sh.Store.LastIndex(),
		MaxSeq:        sh.Store.MaxSeq(),
		QueueDepth:    len(s.queues[si]),
		QueueCap:      cap(s.queues[si]),
		Commit:        &serve.CommitState{GroupStats: cs, RecordsPerSync: cs.RecordsPerSync()},
	}
	if s.ctls != nil {
		row.QueueWaitMs = float64(s.ctls[si].LastSojourn()) / float64(time.Millisecond)
		row.DrainPerSec = s.ctls[si].DrainPerSec()
	}
	row.WALP99Ms = float64(s.c.ShardLatencyP99(si)) / float64(time.Millisecond)
	// Mirror, health, and replica roles are router state: read them under
	// the router lock.
	s.c.mu.Lock()
	row.UtilAccurate = sh.Util(task.Accurate)
	row.Health = s.c.healthLocked(si)
	row.PrimarySlot = s.c.primary[si]
	row.Replicas = s.c.replicaInfoLocked(si)
	s.c.mu.Unlock()
	s.rows[si].Store(row)
}

func (s *Server) fail(err error) {
	s.logf("engine: fatal: %v", err)
	s.ready.Store(false)
	msg := err.Error()
	s.lastErr.Store(&msg)
	select {
	case s.fatal <- err:
	default:
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// Snapshot composes the current /state document.
func (s *Server) Snapshot() ClusterState {
	st := ClusterState{Ready: s.ready.Load()}
	s.mu.Lock()
	st.Draining = s.draining
	s.mu.Unlock()
	st.Admitted = s.admitted.Load()
	st.Rejected = s.rejected.Load()
	st.LoadShed = s.shed.Load()
	st.DeadlineShed = s.deadlineShed.Load()
	st.CoDelShed = s.codelShed.Load()
	if msg := s.lastErr.Load(); msg != nil {
		st.LastError = *msg
	}
	if s.c == nil {
		return st
	}
	st.Shards = len(s.c.shards)
	st.Placement = s.c.policy.Name()
	s.c.mu.Lock()
	st.Tasks = len(s.c.owner)
	st.Pending = len(s.c.pending)
	st.RR = s.c.rr
	st.Seq = s.c.seq
	st.FailedShards = s.c.failed
	st.SlowShards = s.c.slow
	s.c.mu.Unlock()
	first := true
	for i := range s.rows {
		row := s.rows[i].Load()
		if row == nil {
			continue
		}
		row.QueueDepth = len(s.queues[i]) // refresh the only live field
		st.PerShard = append(st.PerShard, *row)
		if first || row.Epoch < st.Epoch {
			st.Epoch = row.Epoch
			first = false
		}
	}
	return st
}

// errAdmitDeadline is the serve-layer deadline shed: the predicted queue
// wait at the target shard already exceeds the client's X-Deadline-Ms.
var errAdmitDeadline = errors.New("cluster: predicted queue wait exceeds request deadline")

// errAdmitCoDel is the adaptive shed: the target shard's queue has been
// standing over the CoDel target, and this arrival drew the paced drop.
var errAdmitCoDel = errors.New("cluster: admission queue standing over target")

// routeIn routes one decoded event under the router locks and fans it out
// to the shard queues. Returns the reply channel and how many replies to
// expect; synthesized results come back immediately in synth. shed=true
// means the event was not accepted: sick names the fenced shard when the
// shed is partition-scoped (-1 otherwise), and shedErr distinguishes the
// cause (ErrShardFailed / ErrShardSlow / errAdmitDeadline / errAdmitCoDel;
// nil for queue-full-or-draining), so the handler can derive the right
// Retry-After. deadline is the client's propagated budget (0 = none): the
// enqueue gate sheds when the target shard's predicted queue wait
// (measured drain rate × depth) already exceeds it.
func (s *Server) routeIn(ev runtime.Event, pos int, reply chan sreply, deadline time.Duration) (expect int, synth *sreply, sick int, shedErr error, shed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return 0, nil, -1, nil, true
	}
	now := time.Now()
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	if ev.Op == "overload" {
		// Failed shards are fenced from the fan-out (broadcastLocked skips
		// them too — they rejoin empty after evacuation). Broadcasts carry
		// no deadline gate: they are control events, not client admissions.
		targets := make([]int, 0, len(s.queues))
		for si, q := range s.queues {
			if s.c.health[si].State == Failed {
				continue
			}
			if len(q) == cap(q) {
				return 0, nil, -1, nil, true
			}
			targets = append(targets, si)
		}
		if len(targets) == 0 {
			return 0, nil, -1, nil, true
		}
		s.c.stamp(&ev)
		for _, si := range targets {
			s.queues[si] <- sticket{ev: ev, tk: ticket{shard: si, op: "overload"}, pos: pos, reply: reply, enq: now}
		}
		s.admitted.Add(1)
		return len(targets), nil, -1, nil, false
	}
	var gateErr error
	gate := func(si int) bool {
		if len(s.queues[si]) >= cap(s.queues[si]) {
			return false
		}
		reason, _ := s.ctls[si].Admit(now, len(s.queues[si]), deadline)
		switch reason {
		case "deadline":
			gateErr = errAdmitDeadline
			return false
		case "codel":
			gateErr = errAdmitCoDel
			return false
		}
		return true
	}
	tk, routeShed := s.c.route(&ev, gate)
	if routeShed {
		return 0, nil, -1, gateErr, true
	}
	if tk.shard < 0 {
		if errors.Is(tk.err, ErrShardFailed) || errors.Is(tk.err, ErrShardSlow) {
			// Partition-scoped load shedding: only events routed to a sick
			// (dead or over-SLO) shard are shed; the rest keep serving.
			return 0, nil, tk.sick, tk.err, true
		}
		res := synthResult(&ev, tk)
		return 0, &sreply{pos: pos, shard: -1, dec: res.Decision, err: tk.err}, -1, nil, false
	}
	// Space was gated above and only lock-holders enqueue, so this send
	// cannot block.
	s.queues[tk.shard] <- sticket{ev: ev, tk: tk, pos: pos, reply: reply, enq: now}
	return 1, nil, -1, nil, false
}

// Handler returns the control-plane mux — the same surface as the
// single-node server (healthz/readyz/state/admit/admit/batch), with
// /state extended to per-shard rows.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			s.unavailable(w, "not ready")
			return
		}
		// Per-shard health: ready (200) while ANY shard can serve — failed
		// partitions shed individually — and 503 only when none can.
		healths := s.c.Healths()
		alive := 0
		for _, h := range healths {
			if h.State != Failed {
				alive++
			}
		}
		if alive == 0 {
			s.unavailable(w, "no healthy shards")
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ready %d/%d shards serving\n", alive, len(healths))
		// Degraded shards are reported; so are shards serving from a
		// promoted follower — ready, but with reduced redundancy until the
		// demoted drive is re-seeded.
		for i, h := range healths {
			if h.State != Healthy || h.Promotions > 0 {
				fmt.Fprintf(w, "shard %d: %s slot=%d promotions=%d consec_errs=%d last_error=%q\n",
					i, h.StateName, s.c.PrimarySlot(i), h.Promotions, h.ConsecErrs, h.LastError)
			}
		}
	})
	mux.HandleFunc("GET /state", func(w http.ResponseWriter, r *http.Request) {
		st := s.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(&st)
	})
	mux.HandleFunc("POST /admit", s.handleAdmit)
	mux.HandleFunc("POST /admit/batch", s.handleAdmitBatch)
	return mux
}

// decisionEntry is one per-event result in an admit response.
type decisionEntry struct {
	Shard    int              `json:"shard"`
	Decision runtime.Decision `json:"decision"`
	Error    string           `json:"error,omitempty"`
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		s.shed.Add(1)
		s.unavailable(w, "not ready")
		return
	}
	// Pooled zero-allocation decode; the event's Task/Overload payloads
	// alias the decoder scratch, so it is recycled only after the engine's
	// reply — and leaked to the GC on timeout, as in the single-node path.
	d := serve.GetDecoder()
	evs, err := d.Decode(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		serve.PutDecoder(d)
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding event: %v", err))
		return
	}
	ev := evs[0]
	ev.Epoch = 0 // each shard engine stamps its live epoch
	if err := ev.Validate(); err != nil {
		serve.PutDecoder(d)
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	deadline := serve.DeadlineMs(r)
	reply := make(chan sreply, len(s.queues))
	expect, synth, sick, shedErr, shedded := s.routeIn(ev, 0, reply, deadline)
	if shedded {
		serve.PutDecoder(d)
		s.shed.Add(1)
		switch {
		case sick >= 0:
			s.unavailableShard(w, sick, shedErr.Error())
		case errors.Is(shedErr, errAdmitDeadline):
			s.deadlineShed.Add(1)
			s.unavailable(w, shedErr.Error())
		case errors.Is(shedErr, errAdmitCoDel):
			s.codelShed.Add(1)
			s.unavailable(w, shedErr.Error())
		case shedErr != nil:
			s.unavailable(w, shedErr.Error())
		default:
			s.unavailable(w, "admission queue full or draining")
		}
		return
	}
	if synth != nil {
		serve.PutDecoder(d)
		s.rejected.Add(1)
		writeEntry(w, http.StatusConflict, decisionEntry{Shard: -1, Decision: synth.dec, Error: synth.err.Error()})
		return
	}

	wait := s.opt.RequestTimeout
	if deadline > 0 && deadline < wait {
		wait = deadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	var got sreply
	for i := 0; i < expect; i++ {
		select {
		case rep := <-reply:
			if rep.fatal {
				serve.PutDecoder(d)
				httpError(w, http.StatusInternalServerError, rep.err.Error())
				return
			}
			if i == 0 {
				got = rep
			}
		case <-ctx.Done():
			s.shed.Add(1)
			s.unavailable(w, "engine saturated; accepted admission still pending")
			return
		}
	}
	serve.PutDecoder(d)
	if errors.Is(got.err, ErrShardFailed) || errors.Is(got.err, ErrShardSlow) {
		// The owning shard exhausted its containment budget (or fell over
		// the latency SLO) mid-request: retryable partition-scoped
		// failure, not a server error.
		s.unavailableShard(w, got.shard, got.err.Error())
		return
	}
	if got.err != nil && !runtime.IsStaleRequest(got.err) {
		httpError(w, http.StatusInternalServerError, got.err.Error())
		return
	}
	status := http.StatusOK
	out := decisionEntry{Shard: got.shard, Decision: got.dec}
	if ev.Op == "overload" {
		out.Shard = -1
	}
	if got.err != nil {
		status = http.StatusConflict
		out.Error = got.err.Error()
	}
	writeEntry(w, status, out)
}

func (s *Server) handleAdmitBatch(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		s.shed.Add(1)
		s.unavailable(w, "not ready")
		return
	}
	var evs []runtime.Event
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&evs); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding events: %v", err))
		return
	}
	if len(evs) > s.opt.MaxBatchEvents {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d events exceeds the %d-event limit", len(evs), s.opt.MaxBatchEvents))
		return
	}
	out := struct {
		Decisions []decisionEntry `json:"decisions"`
	}{Decisions: make([]decisionEntry, len(evs))}
	if len(evs) == 0 {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
		return
	}

	deadline := serve.DeadlineMs(r)
	reply := make(chan sreply, len(evs)*maxInt2(1, len(s.queues)))
	expect := 0
	for i := range evs {
		evs[i].Epoch = 0
		if err := evs[i].Validate(); err != nil {
			out.Decisions[i] = decisionEntry{Shard: -1, Decision: runtime.Decision{Op: evs[i].Op}, Error: err.Error()}
			continue
		}
		n, synth, sick, shedErr, shedded := s.routeIn(evs[i], i, reply, deadline)
		switch {
		case shedded:
			s.shed.Add(1)
			msg := "load shed: queue full or draining"
			switch {
			case sick >= 0:
				// Partition-scoped: tell the client how long the fenced
				// shard's own containment machinery will wait.
				msg = fmt.Sprintf("load shed: %v; retry after %dms",
					shedErr, s.c.RetryAfterHint(sick).Milliseconds())
			case errors.Is(shedErr, errAdmitDeadline):
				s.deadlineShed.Add(1)
				msg = "load shed: " + shedErr.Error()
			case errors.Is(shedErr, errAdmitCoDel):
				s.codelShed.Add(1)
				msg = "load shed: " + shedErr.Error()
			case shedErr != nil:
				msg = "load shed: " + shedErr.Error()
			}
			out.Decisions[i] = decisionEntry{Shard: -1, Decision: runtime.Decision{Op: evs[i].Op}, Error: msg}
		case synth != nil:
			s.rejected.Add(1)
			out.Decisions[i] = decisionEntry{Shard: -1, Decision: synth.dec, Error: synth.err.Error()}
		default:
			expect += n
		}
	}

	wait := s.opt.RequestTimeout
	if deadline > 0 && deadline < wait {
		wait = deadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	seen := make(map[int]bool)
	for got := 0; got < expect; got++ {
		select {
		case rep := <-reply:
			if rep.fatal {
				httpError(w, http.StatusInternalServerError, rep.err.Error())
				return
			}
			if seen[rep.pos] {
				continue // later broadcast legs: first reply wins
			}
			seen[rep.pos] = true
			e := decisionEntry{Shard: rep.shard, Decision: rep.dec}
			if evs[rep.pos].Op == "overload" {
				e.Shard = -1
			}
			if rep.err != nil {
				e.Error = rep.err.Error()
			}
			out.Decisions[rep.pos] = e
		case <-ctx.Done():
			s.shed.Add(1)
			s.unavailable(w, "engine saturated; accepted batch still pending")
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

func writeEntry(w http.ResponseWriter, status int, e decisionEntry) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(e)
}

// unavailable writes a generic load-shedding 503: Retry-After in whole
// seconds (ceiling, minimum 1 — a sub-second hint must never round down
// to "retry immediately") plus Retry-After-Ms with the real value.
func (s *Server) unavailable(w http.ResponseWriter, msg string) {
	hint := s.opt.RetryAfter
	secs := int((hint + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	ms := hint.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set("Retry-After-Ms", strconv.FormatInt(ms, 10))
	httpError(w, http.StatusServiceUnavailable, msg)
}

// unavailableShard sheds with Retry-After derived from shard si's live
// containment state (Cluster.RetryAfterHint): the deterministic delay the
// retry loop itself would wait before the shard's next attempt, so
// clients back off in step with the recovery machinery instead of a fixed
// constant. The HTTP header has 1-second resolution, so the sub-second
// truth rides in Retry-After-Ms and the JSON body's retry_after_ms.
func (s *Server) unavailableShard(w http.ResponseWriter, si int, msg string) {
	hint := s.opt.RetryAfter
	if si >= 0 {
		if h := s.c.RetryAfterHint(si); h > 0 {
			hint = h
		}
	}
	secs := int((hint + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set("Retry-After-Ms", strconv.FormatInt(hint.Milliseconds(), 10))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(map[string]any{"error": msg, "retry_after_ms": hint.Milliseconds()})
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func maxInt2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
