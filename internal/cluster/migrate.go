// Live task migration: checkpoint-handoff of tasks between shards, the
// evacuation path that drains a Failed shard, and the skew-triggered
// rebalancer that reuses the same handoff.
//
// Protocol. A handoff of task T from shard F to shard S is a three-phase
// write fenced by the meta journal (migration records are ALWAYS fsynced,
// even under RelaxedMeta — their ordering carries the exactly-once
// argument):
//
//	mbegin(T, F→S)  fsync     declare intent; nothing physical yet
//	add T on S      durable   re-screened by S's own Theorem-1 admission,
//	                          journaled in S's WAL under a fresh sequence
//	mcommit(T, F→S) fsync     the target copy is durable; T's home is S
//	remove T on F   durable   source copy released (skipped when F is a
//	                          wedged shard being evacuated — the re-image
//	                          wipes it wholesale)
//
// A crash at any boundary recovers to exactly one live copy
// (completeMigrationsLocked): after mbegin alone, the target either holds
// T (the add was durable — roll forward: append mcommit, remove the source
// copy) or it does not (roll back: append mabort; the source copy, if any,
// stands). After mcommit, the source copy — if the remove was lost — is
// removed. The screen can also reject T on S: the handoff then aborts
// (mabort) with the source intact, or — when the source is a dead shard
// being evacuated — records an explicit eviction (mevict) so the loss is
// an auditable decision, never silence.
//
// Evacuation ends with mreset(F, fence) + re-image: the shard directory is
// deleted and a fresh empty store opened. The fence is the cluster
// sequence at reset time; recovery re-executes the wipe only while the
// shard's durable state is still at or below it (replayResetsLocked), so a
// re-imaged shard that has since admitted new work is never wiped again.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"

	"nprt/internal/journal"
	"nprt/internal/runtime"
	"nprt/internal/task"
)

// Move reports one attempted handoff.
type Move struct {
	Name string `json:"name"`
	From int    `json:"from"`
	To   int    `json:"to"`
	// Moved: the target re-admitted the task (its copy is durable and it
	// now owns the name). Evicted: no shard could take it — the task was
	// explicitly dropped (mevict), never silently lost.
	Moved   bool `json:"moved"`
	Evicted bool `json:"evicted"`
	// Decision is the target shard's admission verdict.
	Decision runtime.Decision `json:"decision"`
}

// EvacReport summarizes one EvacuateShard.
type EvacReport struct {
	Shard    int    `json:"shard"`
	Moves    []Move `json:"moves"`
	Migrated int    `json:"migrated"`
	Evicted  int    `json:"evicted"`
}

// RebalanceOptions tunes the skew-triggered rebalancer. Hysteresis: moves
// start only at skew ≥ HighSkew and stop at skew ≤ LowSkew, so a cluster
// hovering at the threshold does not thrash tasks back and forth.
type RebalanceOptions struct {
	// HighSkew triggers rebalancing: max−min accurate utilization over the
	// alive shards (default 0.4).
	HighSkew float64
	// LowSkew is the stop target (default HighSkew/2).
	LowSkew float64
	// MaxMoves bounds one Rebalance call (default 8).
	MaxMoves int
}

func (o RebalanceOptions) withDefaults() RebalanceOptions {
	if o.HighSkew <= 0 {
		o.HighSkew = 0.4
	}
	if o.LowSkew <= 0 {
		o.LowSkew = o.HighSkew / 2
	}
	if o.MaxMoves <= 0 {
		o.MaxMoves = 8
	}
	return o
}

// metaAppendSynced journals one migration-protocol record and fsyncs it
// unconditionally: the handoff's crash-safety argument is an ordering
// argument over these records, so RelaxedMeta does not apply to them.
func (c *Cluster) metaAppendSynced(mr metaRecord) error {
	payload, err := json.Marshal(mr)
	if err != nil {
		return err
	}
	if _, err := c.meta.Append(journal.TypeEvent, payload); err != nil {
		return err
	}
	return c.meta.Sync()
}

// stampSeqLocked allocates the next cluster sequence number.
func (c *Cluster) stampSeqLocked() uint64 {
	c.seq++
	return c.seq
}

// taskLiveLocked reports whether shard si's runtime holds name.
func (c *Cluster) taskLiveLocked(si int, name string) bool {
	for _, sp := range c.shards[si].Store.Runtime().Tasks() {
		if sp.Task.Name == name {
			return true
		}
	}
	return false
}

// findSpecLocked returns shard si's live spec for name.
func (c *Cluster) findSpecLocked(si int, name string) (runtime.TaskSpec, bool) {
	for _, sp := range c.shards[si].Store.Runtime().Tasks() {
		if sp.Task.Name == name {
			return sp, true
		}
	}
	return runtime.TaskSpec{}, false
}

// handoffLocked runs the migration protocol for one task under c.mu.
// srcLive=true is the live path (source shard serving: remove the source
// copy durably after commit); srcLive=false is evacuation (the source is
// Failed — its copy is disposed of wholesale by the re-image, and a target
// rejection becomes an explicit eviction rather than an abort).
func (c *Cluster) handoffLocked(spec runtime.TaskSpec, from, to int, srcLive bool) (Move, error) {
	mv := Move{Name: spec.Task.Name, From: from, To: to}

	// Phase 1: declare intent. The add's sequence number doubles as the
	// migration's identity — recovery matches target state by name, but the
	// fence keeps the meta clock monotone across crashes.
	addSeq := c.stampSeqLocked()
	if err := c.metaAppendSynced(metaRecord{Kind: "mbegin", Seq: addSeq, Name: mv.Name, Shard: from, To: to}); err != nil {
		return mv, err
	}

	// Phase 2: durable, re-screened admission on the target. The event goes
	// through the containment loop like any routed add; Seq-dedup protects a
	// retry whose first attempt was durable after all.
	ev := runtime.Event{
		Epoch: c.shards[to].Store.Epoch(),
		Op:    "add",
		Task:  &spec,
		Seq:   addSeq,
	}
	dec, evErr, _, err := c.shardApply(to, true, ev)
	if err != nil {
		// Target shard failed mid-handoff: roll back so the source copy (or
		// the evacuation's eviction accounting) stays the single truth.
		if aerr := c.metaAppendSynced(metaRecord{Kind: "mabort", Seq: addSeq, Name: mv.Name, Shard: from, To: to}); aerr != nil {
			return mv, aerr
		}
		return mv, err
	}
	mv.Decision = dec
	admitted := evErr == nil && dec.Verdict != runtime.Rejected
	if !admitted {
		if !srcLive {
			// Evacuation with no shard able to take the task: explicit,
			// journaled eviction. The source copy disappears with the
			// re-image; the owner entry goes now.
			if err := c.metaAppendSynced(metaRecord{Kind: "mevict", Seq: addSeq, Name: mv.Name, Shard: from, To: to}); err != nil {
				return mv, err
			}
			if addSeq >= c.ownerSeq[mv.Name] {
				c.ownerSeq[mv.Name] = addSeq
				delete(c.owner, mv.Name)
			}
			mv.Evicted = true
			return mv, nil
		}
		if err := c.metaAppendSynced(metaRecord{Kind: "mabort", Seq: addSeq, Name: mv.Name, Shard: from, To: to}); err != nil {
			return mv, err
		}
		return mv, nil // source copy stands; not an error
	}

	// Phase 3: commit. From here on, recovery rolls the handoff forward.
	if err := c.metaAppendSynced(metaRecord{Kind: "mcommit", Seq: addSeq, Name: mv.Name, Shard: from, To: to}); err != nil {
		return mv, err
	}
	mv.Moved = true
	if !c.shards[to].inc.Has(mv.Name) {
		c.shards[to].inc.Add(&spec.Task)
	}
	if addSeq >= c.ownerSeq[mv.Name] {
		c.ownerSeq[mv.Name] = addSeq
		c.owner[mv.Name] = to
	}

	// Phase 4: release the source copy (live path only).
	if srcLive {
		rmSeq := c.stampSeqLocked()
		rmEv := runtime.Event{
			Epoch: c.shards[from].Store.Epoch(),
			Op:    "remove",
			Name:  mv.Name,
			Seq:   rmSeq,
		}
		_, rmEvErr, _, rmErr := c.shardApply(from, true, rmEv)
		c.shards[from].inc.Remove(mv.Name)
		if rmErr != nil {
			// The move is committed — the target owns the task — but the
			// source shard failed before releasing its copy. Recovery (or the
			// shard's eventual evacuation) finishes the release; surface the
			// shard failure without undoing the move.
			return mv, rmErr
		}
		_ = rmEvErr // stale remove: the copy was already gone — fine
	}
	return mv, nil
}

// MigrateTask moves one live task to the given shard through the handoff
// protocol. A no-op when the task already lives there.
func (c *Cluster) MigrateTask(name string, to int) (Move, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if to < 0 || to >= len(c.shards) {
		return Move{Name: name, To: to}, fmt.Errorf("cluster: migrate %q: no shard %d", name, to)
	}
	from, ok := c.owner[name]
	if !ok {
		return Move{Name: name, To: to}, runtime.ErrUnknownTask
	}
	if from == to {
		return Move{Name: name, From: from, To: to, Moved: true}, nil
	}
	if c.health[to].State == Failed {
		return Move{Name: name, From: from, To: to}, fmt.Errorf("%w: migrate %q target shard %d", ErrShardFailed, name, to)
	}
	spec, ok := c.findSpecLocked(from, name)
	if !ok {
		return Move{Name: name, From: from, To: to}, runtime.ErrUnknownTask
	}
	return c.handoffLocked(spec, from, to, true)
}

// EvacuateShard drains a dead shard: its last durable state is recovered
// read-only (newest good checkpoint + WAL replay — no writer is opened on
// the possibly-wedged directory), every task is handed off to a surviving
// shard under that shard's own admission screen (or explicitly evicted
// when none accepts), and the shard is re-imaged empty behind an mreset
// fence. The shard rejoins the cluster Healthy at epoch 0; RunEpoch's
// min-rule walks it back to lockstep.
func (c *Cluster) EvacuateShard(si int) (EvacReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := EvacReport{Shard: si}
	if si < 0 || si >= len(c.shards) {
		return rep, fmt.Errorf("cluster: evacuate: no shard %d", si)
	}
	if len(c.shards) == 1 {
		return rep, fmt.Errorf("cluster: evacuate shard %d: single-shard cluster has nowhere to drain", si)
	}
	if c.health[si].State != Failed {
		c.setHealthStateLocked(si, Failed)
		if c.health[si].LastError == "" {
			c.health[si].LastError = "evacuated by operator"
		}
	}

	// Export from the last durable state, read-only. The live store object
	// may be poisoned or mid-reopen; disk is the truth.
	rt, err := runtime.InspectStore(c.primaryDir(si), c.shardStoreOptions(si))
	if err != nil {
		return rep, fmt.Errorf("cluster: evacuate shard %d: inspect: %w", si, err)
	}

	for _, spec := range rt.Tasks() {
		name := spec.Task.Name
		// Target: the policy's preference among survivors, then any survivor
		// whose mirror deep-accepts; with none accepting we still run the
		// handoff against the policy choice so the rejection (and eviction)
		// is the shard screen's durable decision, not the router's guess.
		cands := make([]*Shard, 0, len(c.shards)-1)
		for j, sh := range c.shards {
			if j == si || c.health[j].State == Failed {
				continue
			}
			cands = append(cands, sh)
		}
		if len(cands) == 0 {
			seq := c.stampSeqLocked()
			if err := c.metaAppendSynced(metaRecord{Kind: "mevict", Seq: seq, Name: name, Shard: si}); err != nil {
				return rep, err
			}
			if seq >= c.ownerSeq[name] {
				c.ownerSeq[name] = seq
				delete(c.owner, name)
			}
			rep.Moves = append(rep.Moves, Move{Name: name, From: si, To: -1, Evicted: true})
			rep.Evicted++
			continue
		}
		pi := c.policy.Place(&spec.Task, cands, c.rr)
		if pi < 0 || pi >= len(cands) {
			pi = 0
		}
		target := cands[pi]
		if _, deepOK := target.Probe(&spec.Task); !deepOK {
			for _, alt := range cands {
				if alt.ID == target.ID {
					continue
				}
				if _, ok := alt.Probe(&spec.Task); ok {
					target = alt
					break
				}
			}
		}
		mv, err := c.handoffLocked(spec, si, target.ID, false)
		if err != nil {
			return rep, err
		}
		rep.Moves = append(rep.Moves, mv)
		if mv.Moved {
			rep.Migrated++
		}
		if mv.Evicted {
			rep.Evicted++
		}
	}

	// Fence + re-image. The fence is the current cluster sequence: every
	// event the old incarnation ever journaled is at or below it, and every
	// event the fresh incarnation will journal is above it — which is what
	// lets recovery decide whether the wipe still applies.
	if err := c.metaAppendSynced(metaRecord{Kind: "mreset", Seq: c.seq, Shard: si}); err != nil {
		return rep, err
	}
	if err := c.reimageShardLocked(si); err != nil {
		return rep, err
	}
	return rep, nil
}

// reimageShardLocked wipes shard si's directory and opens a fresh empty
// store in its place, returning the shard to Healthy.
func (c *Cluster) reimageShardLocked(si int) error {
	sh := c.shards[si]
	if !sh.closed {
		sh.Store.Close() // poisoned writers close without flushing; fine
		sh.closed = true
	}
	if err := os.RemoveAll(c.primaryDir(si)); err != nil {
		return fmt.Errorf("cluster: re-image shard %d: %w", si, err)
	}
	st, err := runtime.OpenStore(c.primaryDir(si), c.shardStoreOptions(si))
	if err != nil {
		return fmt.Errorf("cluster: re-image shard %d: %w", si, err)
	}
	sh.Store, sh.closed = st, false
	sh.inc.Reset(nil)
	c.setHealthStateLocked(si, Healthy)
	h := &c.health[si]
	h.ConsecErrs = 0
	h.LastError = ""
	h.Reimages++
	// Followers mirror the re-image: their old bytes describe a store
	// that no longer exists, so demote and re-seed from the fresh primary.
	for _, r := range c.replicas[si] {
		if r.inSync {
			r.inSync = false
			h.ReplicaDemotions++
		}
	}
	c.reseedReplicasLocked(si)
	return nil
}

// Rebalance runs the skew-triggered rebalancer: while the accurate-
// utilization spread (max−min over alive shards) is at or above HighSkew,
// migrate tasks from the most- to the least-loaded shard through the live
// handoff path, stopping at LowSkew, MaxMoves, or when no candidate task
// both shrinks the gap and passes the receiver's screen.
func (c *Cluster) Rebalance(opt RebalanceOptions) ([]Move, error) {
	opt = opt.withDefaults()
	c.mu.Lock()
	defer c.mu.Unlock()
	var moves []Move
	for len(moves) < opt.MaxMoves {
		donor, recv := -1, -1
		var maxU, minU float64
		for i := range c.shards {
			if c.health[i].State == Failed {
				continue
			}
			u := c.shards[i].Util(task.Accurate)
			if donor < 0 || u > maxU {
				donor, maxU = i, u
			}
			if recv < 0 || u < minU {
				recv, minU = i, u
			}
		}
		if donor < 0 || donor == recv {
			break
		}
		skew := maxU - minU
		if len(moves) == 0 && skew < opt.HighSkew {
			break // below trigger: hysteresis leaves the cluster alone
		}
		if skew <= opt.LowSkew {
			break // reached the stop target
		}
		// First donor task that strictly shrinks the gap and fits the
		// receiver (deep profile — the admission screen's own bar).
		var cand runtime.TaskSpec
		found := false
		for _, sp := range c.shards[donor].Store.Runtime().Tasks() {
			u := float64(sp.Task.WCET(task.Accurate)) / float64(sp.Task.Period)
			if u >= skew {
				continue // moving it would overshoot into reverse skew
			}
			if _, deepOK := c.shards[recv].Probe(&sp.Task); !deepOK {
				continue
			}
			cand, found = sp, true
			break
		}
		if !found {
			break
		}
		mv, err := c.handoffLocked(cand, donor, recv, true)
		if err != nil {
			return moves, err
		}
		moves = append(moves, mv)
		if !mv.Moved {
			break
		}
	}
	return moves, nil
}

// replayResetsLocked re-executes evacuation re-images whose wipe may have
// been lost: an mreset fence means "shard si restarts empty after sequence
// fence". If the shard's durable state is still at or below the fence and
// non-empty, the crash hit between the fence and the wipe — re-execute it.
// A shard already re-imaged (empty, or holding post-fence admissions) is
// left alone.
func (c *Cluster) replayResetsLocked(resets []metaRecord) error {
	for _, mr := range resets {
		si := mr.Shard
		if si < 0 || si >= len(c.shards) {
			continue
		}
		st := c.shards[si].Store
		if st.MaxSeq() > mr.Seq {
			continue // fresh incarnation has journaled past the fence
		}
		if len(st.Runtime().Tasks()) == 0 && st.MaxSeq() == 0 {
			continue // already empty: the wipe (or a fresh image) completed
		}
		if err := c.reimageShardLocked(si); err != nil {
			return err
		}
		c.rec.ResetsReplayed++
	}
	return nil
}

// completeMigrationsLocked rolls in-flight handoffs forward or back against
// shard truth during Open, before map reconciliation. For each name, only
// its LAST protocol record matters:
//
//	mbegin:  target holds the task → the add was durable: append mcommit
//	         and release any source copy (roll forward). Otherwise append
//	         mabort (roll back; the source copy, if any, stands).
//	mcommit: release the source copy if the post-commit remove was lost.
//	mabort / mevict: nothing physical. (An mevict whose evacuation never
//	         reached its mreset leaves the source copy live; reconciliation
//	         adopts it back — conservative retention, never silent loss.)
//
// Runs after replayResetsLocked so a completed evacuation's wipe cannot be
// mistaken for a lost target copy.
func (c *Cluster) completeMigrationsLocked(migNames []string, migs map[string]metaRecord) error {
	removeFrom := func(si int, name string) error {
		if si < 0 || si >= len(c.shards) || !c.taskLiveLocked(si, name) {
			return nil
		}
		ev := runtime.Event{
			Epoch: c.shards[si].Store.Epoch(),
			Op:    "remove",
			Name:  name,
			Seq:   c.stampSeqLocked(),
		}
		_, _, _, err := c.shardApply(si, true, ev)
		if err != nil {
			return err
		}
		c.shards[si].inc.Remove(name)
		return nil
	}
	for _, name := range migNames {
		mr := migs[name]
		switch mr.Kind {
		case "mbegin":
			if mr.To >= 0 && mr.To < len(c.shards) && c.taskLiveLocked(mr.To, name) {
				if err := c.metaAppendSynced(metaRecord{Kind: "mcommit", Seq: mr.Seq, Name: name, Shard: mr.Shard, To: mr.To}); err != nil {
					return err
				}
				if err := removeFrom(mr.Shard, name); err != nil {
					return err
				}
				c.rec.MigrationsCompleted++
			} else {
				if err := c.metaAppendSynced(metaRecord{Kind: "mabort", Seq: mr.Seq, Name: name, Shard: mr.Shard, To: mr.To}); err != nil {
					return err
				}
				c.rec.MigrationsAborted++
			}
		case "mcommit":
			if mr.To >= 0 && mr.To < len(c.shards) && c.taskLiveLocked(mr.To, name) && c.taskLiveLocked(mr.Shard, name) {
				if err := removeFrom(mr.Shard, name); err != nil {
					return err
				}
				c.rec.MigrationsCompleted++
			}
		case "mabort", "mevict":
			// Nothing physical to do; reconciliation derives the map.
		}
	}
	return nil
}
