// Package rng is nprt's deterministic random substrate. Simulation results
// must be bit-reproducible across runs and Go releases, so instead of
// math/rand (whose stream changed across versions and whose global state is
// shared) this package implements SplitMix64 for seeding and xoshiro256**
// for generation, plus Gaussian and truncated-Gaussian samplers.
//
// Each task in a simulation draws from its own Stream, split off a root seed
// by task ID, so adding a task or reordering dispatches never perturbs
// another task's samples.
//
// # Panic contract
//
// This package panics only on programmer error — arguments that no valid
// caller can produce (Intn with n <= 0) or use of a zero-value Stream.
// It never panics on the statistical content of a distribution: degenerate
// or mis-parameterized task.Dist values are clamped or rejected with a
// bounded fallback (see TruncNormal) so that fault-injection campaigns and
// fuzzed task sets cannot stall or crash a simulation through this layer.
// Callers validating external input should do so before sampling; by the
// time a Dist reaches this package it is taken as trusted.
package rng

import (
	"errors"
	"math"

	"nprt/internal/task"
)

// splitMix64 advances the seed-expansion state and returns the next value.
// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
// generators", OOPSLA 2014.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is a xoshiro256** generator. The zero value is not usable;
// construct with New or Split.
type Stream struct {
	s [4]uint64
	// cached second Gaussian from the Box–Muller pair
	gauss    float64
	hasGauss bool
}

// New returns a Stream seeded from the given seed via SplitMix64.
func New(seed uint64) *Stream {
	st := &Stream{}
	sm := seed
	for i := range st.s {
		st.s[i] = splitMix64(&sm)
	}
	// xoshiro must not be seeded all-zero; SplitMix64 of any seed never
	// produces four zeros, but guard anyway.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 1
	}
	return st
}

// Split derives an independent child stream keyed by id. Children with
// distinct ids (or from streams with distinct seeds) are statistically
// independent for simulation purposes.
func (r *Stream) Split(id uint64) *Stream {
	// Mix the parent's state with the id through SplitMix64.
	sm := r.s[0] ^ (r.s[2] << 1) ^ (id * 0x9e3779b97f4a7c15)
	return New(splitMix64(&sm))
}

// State is a serializable snapshot of a Stream: the four xoshiro256** words
// plus the cached Box–Muller half. Restoring it with FromState resumes the
// stream bit-identically — the hook the long-running runtime's
// checkpoint/restore (internal/runtime) builds on.
type State struct {
	S        [4]uint64 `json:"s"`
	Gauss    float64   `json:"gauss"`
	HasGauss bool      `json:"has_gauss"`
}

// ErrZeroState rejects the all-zero xoshiro state, which the generator can
// never reach from a valid seed and would emit only zeros.
var ErrZeroState = errors.New("rng: all-zero stream state")

// State snapshots the stream. The snapshot is a value; mutating the stream
// afterwards does not affect it.
func (r *Stream) State() State {
	return State{S: r.s, Gauss: r.gauss, HasGauss: r.hasGauss}
}

// FromState reconstructs a Stream that continues exactly where the
// snapshotted one left off. The all-zero state is rejected: it is not
// reachable from New/Split and would lock the generator at zero.
func FromState(st State) (*Stream, error) {
	if st.S[0]|st.S[1]|st.S[2]|st.S[3] == 0 {
		return nil, ErrZeroState
	}
	return &Stream{s: st.S, gauss: st.Gauss, hasGauss: st.HasGauss}, nil
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Stream) Uint64() uint64 {
	res := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return res
}

// Float64 returns a uniform sample in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). Panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Gaussian returns a standard-normal sample via Box–Muller, caching the
// second member of each generated pair.
func (r *Stream) Gaussian() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	v = r.Float64()
	m := math.Sqrt(-2 * math.Log(u))
	r.gauss = m * math.Sin(2*math.Pi*v)
	r.hasGauss = true
	return m * math.Cos(2*math.Pi*v)
}

// Normal returns a Gaussian sample with the given mean and sigma.
func (r *Stream) Normal(mean, sigma float64) float64 {
	return mean + sigma*r.Gaussian()
}

// TruncNormal samples N(mean, sigma) truncated to [min, max] by rejection,
// falling back to clamping after a bounded number of rejections so a
// mis-parameterized distribution cannot stall a simulation. If max <= min
// only the lower bound is applied.
func (r *Stream) TruncNormal(mean, sigma, min, max float64) float64 {
	if sigma <= 0 {
		v := mean
		if v < min {
			v = min
		}
		if max > min && v > max {
			v = max
		}
		return v
	}
	for i := 0; i < 64; i++ {
		v := r.Normal(mean, sigma)
		if v < min {
			continue
		}
		if max > min && v > max {
			continue
		}
		return v
	}
	v := mean
	if v < min {
		v = min
	}
	if max > min && v > max {
		v = max
	}
	return v
}

// SampleDist draws from a task.Dist (truncated Gaussian parameters).
func (r *Stream) SampleDist(d task.Dist) float64 {
	return r.TruncNormal(d.Mean, d.Sigma, d.Min, d.Max)
}

// SampleDuration draws a task.Dist sample rounded to a positive virtual
// duration of at least 1 and, when cap > 0, at most cap. Execution-time
// sampling uses this with cap = the mode's WCET so an "actual" execution can
// never exceed its declared worst case.
func (r *Stream) SampleDuration(d task.Dist, cap task.Time) task.Time {
	if d.IsZero() {
		if cap > 0 {
			return cap
		}
		return 1
	}
	v := task.Time(math.Round(r.SampleDist(d)))
	if v < 1 {
		v = 1
	}
	if cap > 0 && v > cap {
		v = cap
	}
	return v
}

// SampleError draws the single-valued error of one imprecise execution:
// |N(mean, sigma)| truncated by the Dist bounds when present. Errors are
// magnitudes, hence non-negative.
func (r *Stream) SampleError(d task.Dist) float64 {
	v := r.SampleDist(d)
	return math.Abs(v)
}
